// dvx_perf — wall-clock microbenchmarks of the simulator's hot paths.
//
// Three rates bound how large a simulated experiment can be:
//   * engine_event_storm      — DES dispatch throughput (events/s): a seeded
//     storm of plain callbacks interleaved with coroutine delay chains, so
//     both payload kinds (side-slab callbacks, handle slab) are exercised.
//   * engine_parallel_storm   — sharded-engine throughput (events/s): 8
//     shards of rescheduling chains with periodic cross-shard sends under
//     a 1 us conservative lookahead window (DESIGN.md §12); the dispatch
//     trajectory is thread-count-independent, the wall clock is not.
//   * switch_drain_congested  — cycle-accurate switch throughput (cycles/s)
//     draining a deep uniform-random backlog on a 256-port fabric: deep port
//     queues, saturated occupancy, then the sparse drain tail.
//   * fabric_burst            — analytic FabricModel bursts/s.
//   * fabric_torus            — 3D-torus timing model messages/s.
//   * cluster_gups_sharded    — end-to-end sharded cluster rate (updates/s):
//     64-node Data Vortex GUPS through runtime::Cluster at engine_threads=4
//     (shards = 4), with a threads=1 pass first to pin the determinism
//     contract (both layouts must produce the same virtual trajectory).
//   * arrival_storm           — serving-layer arrival generation + token
//     bucket admission (requests/s): the host-side cost of planning an
//     open-loop multi-tenant serving point (dvx::serve, DESIGN.md §14).
//
// These are wall-clock measurements of the *simulator* (the one place host
// time is allowed); the measured work is fully deterministic (fixed seeds,
// fixed counts), so rates are comparable run-to-run on one machine. Results
// are emitted as a dvx-perf/v1 JSON document; CI compares them against the
// committed BENCH_PERF.json baseline with a generous threshold (see
// tools/check_perf_regression.py) so every perf PR has a measured
// trajectory.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/gups.hpp"
#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "runtime/cluster.hpp"
#include "runtime/report.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "torus/fabric.hpp"

namespace {

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
namespace runtime = dvx::runtime;

using Clock = std::chrono::steady_clock;  // det-lint: allow(system_clock) -- host repetition timing only, never feeds a report field

struct BenchResult {
  std::string name;
  std::string unit;
  double work = 0;     // units processed per repetition
  double seconds = 0;  // best (fastest) repetition
  double rate = 0;     // work / seconds of the best repetition
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// DES dispatch throughput under a deep pending-event population: 2^20
/// one-shot callbacks pre-loaded at seeded random times across a 1 ms
/// window (the event heap stays ~10^6 entries deep through most of the
/// run — the regime a large fabric simulation with many outstanding
/// packets puts the scheduler in), plus a handful of coroutine delay
/// chains so the handle path is exercised too.
BenchResult engine_event_storm() {
  constexpr std::uint64_t kBurst = 1 << 20;
  constexpr int kCoros = 16;
  constexpr int kHops = 256;

  const auto t0 = Clock::now();
  sim::Engine engine;
  engine.set_audit_interval(0);
  sim::Xoshiro256 rng(42);
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    engine.schedule(sim::ns(static_cast<double>(rng.below(1u << 20))), [] {});
  }
  for (int c = 0; c < kCoros; ++c) {
    engine.spawn([](sim::Engine& eng, sim::Xoshiro256 coro_rng) -> sim::Coro<void> {
      for (int h = 0; h < kHops; ++h) {
        co_await eng.delay(sim::ns(static_cast<double>(1 + coro_rng.below(256))));
      }
    }(engine, sim::Xoshiro256(static_cast<std::uint64_t>(c) + 1)));
  }
  engine.run();
  const double s = seconds_since(t0);
  const double work = static_cast<double>(engine.events_processed());
  return {"engine_event_storm", "events/s", work, s, work / s};
}

/// Cycle-accurate switch throughput draining a congested 256-port fabric:
/// 4096 uniform-random packets queued per port, injected under backpressure
/// until the backlog clears, then the in-flight tail.
BenchResult switch_drain_congested() {
  constexpr int kRounds = 4096;
  const dvnet::Geometry g = dvnet::Geometry::for_ports(256, 4);

  const auto t0 = Clock::now();
  dvnet::CycleSwitch sw(g);
  sim::Xoshiro256 rng(7);
  const auto ports = static_cast<std::uint64_t>(g.ports());
  for (int r = 0; r < kRounds; ++r) {
    for (int p = 0; p < g.ports(); ++p) {
      sw.inject(p, static_cast<int>(rng.below(ports)));
    }
  }
  if (!sw.drain(100'000'000)) {
    std::cerr << "dvx_perf: switch_drain_congested failed to drain\n";
    std::exit(1);
  }
  const double s = seconds_since(t0);
  const double work = static_cast<double>(sw.cycle());
  return {"switch_drain_congested", "cycles/s", work, s, work / s};
}

/// Analytic fabric-model throughput: 2^20 eight-word bursts between seeded
/// random port pairs at a steady virtual injection cadence.
BenchResult fabric_burst() {
  constexpr std::uint64_t kBursts = 1 << 20;

  const auto t0 = Clock::now();
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  sim::Xoshiro256 rng(2);
  sim::Time now = 0;
  for (std::uint64_t i = 0; i < kBursts; ++i) {
    fm.send_burst(static_cast<int>(rng.below(32)), static_cast<int>(rng.below(32)), 8,
                  now);
    now += sim::ns(10);
  }
  const double s = seconds_since(t0);
  const double work = static_cast<double>(kBursts);
  return {"fabric_burst", "bursts/s", work, s, work / s};
}

/// 3D-torus timing-model throughput: 2^19 4-KiB messages between seeded
/// random node pairs on a 64-node (4x4x4) torus at a steady virtual
/// injection cadence — the dimension-order path walk plus per-link
/// serialization bookkeeping is the whole cost.
BenchResult fabric_torus() {
  constexpr std::uint64_t kMsgs = 1 << 19;

  const auto t0 = Clock::now();
  dvx::torus::Fabric fabric(64);
  sim::Xoshiro256 rng(3);
  sim::Time now = 0;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    fabric.send_message(static_cast<int>(rng.below(64)),
                        static_cast<int>(rng.below(64)), 4096, now);
    now += sim::ns(100);
  }
  const double s = seconds_since(t0);
  const double work = static_cast<double>(kMsgs);
  return {"fabric_torus", "msgs/s", work, s, work / s};
}

/// Sharded-engine dispatch throughput: 8 event-ordering shards, each loaded
/// with seeded callback chains that mostly reschedule locally (inside the
/// 1 us lookahead window) and periodically send cross-shard (landing beyond
/// the window, as the conservative contract requires). The workload fixes
/// shards = 8 and lookahead = 1 us so the dispatch trajectory is identical
/// at any worker count; threads = min(4, hardware_concurrency) supplies the
/// parallelism the acceptance gate measures on multi-core hardware.
BenchResult engine_parallel_storm() {
  constexpr int kShards = 8;
  constexpr int kChainsPerShard = 64;
  constexpr int kFiresPerChain = 2048;
  const int threads = std::max(
      1, std::min(4, static_cast<int>(std::thread::hardware_concurrency())));

  const auto t0 = Clock::now();
  sim::Engine engine;
  engine.set_audit_interval(0);
  engine.configure_sharding(
      {.shards = kShards, .threads = threads, .lookahead = sim::us(1)});

  // Each chain is a self-rescheduling callback: shared_ptr keeps the state
  // alive across hops; every 64th fire also posts a cross-shard callback to
  // the next shard at now + lookahead (+ jitter), which always satisfies the
  // conservative bound because now >= the window floor.
  struct Chain {
    sim::Engine* engine;
    sim::Xoshiro256 rng;
    int shard;
    int fires_left;
    void fire() {
      if (--fires_left <= 0) return;
      if (fires_left % 64 == 0) {
        const int dst = (shard + 1) % kShards;
        engine->schedule(
            engine->now() + sim::us(1) + sim::ns(static_cast<double>(rng.below(64))),
            [] {}, dst);
      }
      engine->schedule(
          engine->now() + sim::ns(static_cast<double>(1 + rng.below(256))),
          [this] { fire(); }, shard);
    }
  };
  std::vector<std::shared_ptr<Chain>> chains;
  chains.reserve(kShards * kChainsPerShard);
  for (int s = 0; s < kShards; ++s) {
    for (int c = 0; c < kChainsPerShard; ++c) {
      auto chain = std::make_shared<Chain>(
          Chain{&engine,
                sim::Xoshiro256(static_cast<std::uint64_t>(s * kChainsPerShard + c) + 1),
                s, kFiresPerChain});
      chains.push_back(chain);
      engine.schedule(sim::ns(static_cast<double>(1 + chain->rng.below(256))),
                      [chain] { chain->fire(); }, s);
    }
  }
  engine.run();
  const double s = seconds_since(t0);
  const double work = static_cast<double>(engine.events_processed());
  return {"engine_parallel_storm", "events/s", work, s, work / s};
}

/// End-to-end sharded-cluster throughput (ISSUE 10 canary): a 64-node
/// Data Vortex GUPS run through runtime::Cluster at engine_threads = 1
/// (the windowed serial lower bound) and then at engine_threads = 4
/// (shards = 4 partitioned fabric). The reported rate is the sharded run's
/// host-side update throughput; the serial pass guards determinism — both
/// layouts must land on the exact same virtual-time trajectory, so any
/// divergence aborts the bench. On >= 4-core hardware the sharded pass is
/// the speedup the partitioning work exists to buy; on fewer cores it
/// degrades to oversubscribed-but-correct.
BenchResult cluster_gups_sharded() {
  namespace apps = dvx::apps;
  apps::GupsParams params;
  params.local_table_words = 1 << 14;
  params.updates_per_node = 1 << 12;

  auto run_at = [&](int threads) {
    runtime::ClusterConfig cfg;
    cfg.nodes = 64;
    cfg.engine_threads = threads;
    runtime::Cluster cluster(cfg);
    return apps::run_gups_dv(cluster, params);
  };

  const apps::GupsResult serial = run_at(1);
  const auto t0 = Clock::now();
  const apps::GupsResult sharded = run_at(4);
  const double s = seconds_since(t0);
  if (serial.seconds != sharded.seconds) {
    std::cerr << "dvx_perf: cluster_gups_sharded trajectories diverged "
                 "(shards=1 roi " << serial.seconds << " s vs shards=4 roi "
              << sharded.seconds << " s)\n";
    std::exit(1);
  }
  const double work = sharded.total_updates;
  return {"cluster_gups_sharded", "updates/s", work, s, work / s};
}

/// Serving-layer arrival planning throughput: generate the canonical
/// multi-tenant trace for a large open-loop point (64 nodes, default
/// four-tenant mix, ~2^20 requests) and push every request through a
/// per-(tenant, node) token bucket — the host-side hot loop every serving
/// sweep point pays before the first simulated picosecond.
BenchResult arrival_storm() {
  namespace serve = dvx::serve;
  serve::ArrivalConfig cfg;
  cfg.seed = 11;
  cfg.nodes = 64;
  cfg.horizon_us = 400.0;
  cfg.unit_rate_rps = 5.0e8;  // ~2^20 requests over the default mix

  const auto t0 = Clock::now();
  const serve::ArrivalTrace trace = serve::generate_arrivals(cfg);
  // One bucket per (tenant, node), refilled in virtual time at half the
  // tenant's offered rate so both the accept and the shed paths stay hot.
  const double horizon_ps = cfg.horizon_us * 1e6;
  std::vector<serve::TokenBucket> buckets;
  buckets.reserve(trace.tenants.size() * static_cast<std::size_t>(cfg.nodes));
  for (std::size_t ti = 0; ti < trace.tenants.size(); ++ti) {
    const double rate = 0.5 * static_cast<double>(trace.offered_per_tenant[ti]) /
                        (horizon_ps * cfg.nodes);
    for (int n = 0; n < cfg.nodes; ++n) buckets.emplace_back(rate, 16.0);
  }
  std::uint64_t accepted = 0;
  for (const serve::Request& r : trace.requests) {
    const std::size_t b = r.tenant * static_cast<std::size_t>(cfg.nodes) + r.home;
    accepted += buckets[b].try_take(r.arrival) ? 1 : 0;
  }
  if (accepted == 0 || accepted >= trace.offered()) {
    std::cerr << "dvx_perf: arrival_storm admission degenerate (" << accepted
              << "/" << trace.offered() << ")\n";
    std::exit(1);
  }
  const double s = seconds_since(t0);
  const double work = static_cast<double>(trace.offered());
  return {"arrival_storm", "requests/s", work, s, work / s};
}

using BenchFn = BenchResult (*)();
struct BenchEntry {
  const char* name;
  BenchFn fn;
};
constexpr BenchEntry kBenches[] = {
    {"engine_event_storm", engine_event_storm},
    {"engine_parallel_storm", engine_parallel_storm},
    {"switch_drain_congested", switch_drain_congested},
    {"fabric_burst", fabric_burst},
    {"fabric_torus", fabric_torus},
    {"cluster_gups_sharded", cluster_gups_sharded},
    {"arrival_storm", arrival_storm},
};

int usage(int code) {
  std::cout << "dvx_perf — simulator hot-path microbenchmarks (dvx-perf/v1)\n\n"
               "usage: dvx_perf [--repeat N] [--filter SUBSTR] [--json PATH]"
               " [--list]\n\n"
               "  --repeat N      repetitions per benchmark; the fastest is"
               " reported (default 3)\n"
               "  --filter SUBSTR run only benchmarks whose name contains"
               " SUBSTR\n"
               "  --json PATH     write the dvx-perf/v1 document to PATH\n"
               "  --list          list benchmark names and exit\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  int repeat = 3;
  std::string filter;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dvx_perf: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list") {
      for (const auto& b : kBenches) std::cout << b.name << "\n";
      return 0;
    }
    if (arg == "--repeat") {
      repeat = std::atoi(value());
      if (repeat < 1) {
        std::cerr << "dvx_perf: --repeat must be >= 1\n";
        return 2;
      }
    } else if (arg == "--filter") {
      filter = value();
    } else if (arg == "--json") {
      json_path = value();
    } else {
      std::cerr << "dvx_perf: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }

  std::vector<BenchResult> results;
  for (const auto& bench : kBenches) {
    if (!filter.empty() && std::string(bench.name).find(filter) == std::string::npos) {
      continue;
    }
    BenchResult best;
    for (int r = 0; r < repeat; ++r) {
      BenchResult one = bench.fn();
      if (r == 0 || one.seconds < best.seconds) best = one;
    }
    std::cout << best.name << ": " << static_cast<std::uint64_t>(best.rate) << " "
              << best.unit << "  (" << best.work << " in " << best.seconds << " s, best of "
              << repeat << ")\n";
    results.push_back(best);
  }
  if (results.empty()) {
    std::cerr << "dvx_perf: no benchmark matches filter '" << filter << "'\n";
    return 2;
  }

  if (!json_path.empty()) {
    runtime::Json doc = runtime::Json::object();
    doc["schema"] = "dvx-perf/v1";
    doc["repeat"] = repeat;
    runtime::Json benches = runtime::Json::array();
    for (const auto& r : results) {
      runtime::Json b = runtime::Json::object();
      b["name"] = r.name;
      b["unit"] = r.unit;
      b["work"] = r.work;
      b["seconds"] = r.seconds;
      b["rate"] = r.rate;
      benches.push_back(std::move(b));
    }
    doc["benchmarks"] = std::move(benches);
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "dvx_perf: cannot write " << json_path << "\n";
      return 1;
    }
    out << doc.dump(2) << "\n";
  }
  return 0;
}
