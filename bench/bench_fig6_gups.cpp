// Figure 6 — GUPS at scale (paper §VI).
//
// (a) updates per second per processing element: ideally flat under weak
// scaling; the MPI/IB implementation declines steadily from 4 to 32 nodes
// while the Data Vortex implementation stays roughly flat.
// (b) aggregate MUPS: DV far above IB, with the gap widening with nodes.

#include <iostream>

#include "apps/gups.hpp"
#include "bench_util.hpp"

namespace runtime = dvx::runtime;

int main() {
  using runtime::fmt;
  runtime::figure_banner(std::cout, "Figure 6 — GUPS (weak scaling, 1024-update buffers)",
                         "DV per-PE rate ~flat; IB declines with node count; aggregate "
                         "gap widens");
  const bool fast = dvx::bench::fast_mode();
  dvx::apps::GupsParams gp{
      .local_table_words = 1u << 16,
      .updates_per_node = fast ? (1u << 13) : (1u << 16),
  };

  runtime::Table per_pe("Fig 6a — updates per second per PE (MUPS)",
                        {"nodes", "Data Vortex", "Infiniband"});
  runtime::Table agg("Fig 6b — aggregated updates per second (MUPS)",
                     {"nodes", "Data Vortex", "Infiniband", "DV/IB"});
  for (int n : dvx::bench::paper_node_counts(4)) {
    auto cluster = dvx::bench::make_cluster(n);
    const auto dv = dvx::apps::run_gups_dv(cluster, gp);
    const auto ib = dvx::apps::run_gups_mpi(cluster, gp);
    per_pe.row({std::to_string(n), fmt(dv.mups_per_pe(n)), fmt(ib.mups_per_pe(n))});
    agg.row({std::to_string(n), fmt(dv.gups() * 1e3), fmt(ib.gups() * 1e3),
             fmt(dv.gups() / ib.gups())});
  }
  per_pe.print(std::cout);
  agg.print(std::cout);
  std::cout << "\npaper anchors: IB per-PE MUPS decrease steadily 4 -> 32 nodes;\n"
               "DV stays ~constant (small dip 4 -> 8); the aggregate gap grows\n"
               "with node count.\n";
  return 0;
}
