// Legacy wrapper — Figure 6 now lives in the dvx::exp registry
// (src/exp/workloads/gups.cpp). Equivalent to `dvx_bench --figure fig6`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig6"}); }
