// Figure 7 — distributed FFT-1D aggregate GFLOPS (paper §VI).
//
// Six-step 1-D FFT; the three distributed transposes carry all of the
// communication. The Data Vortex folds the redistribution into the network
// operation (scatter into VIC memory with cached headers); MPI packs,
// alltoalls, and unpacks. Paper: DV above IB with a gap that widens with
// node count. (Paper size 2^33 points; reproduction default 2^20.)

#include <iostream>

#include "apps/fft1d.hpp"
#include "bench_util.hpp"

namespace runtime = dvx::runtime;

int main() {
  using runtime::fmt;
  const bool fast = dvx::bench::fast_mode();
  const int log_size = fast ? 16 : 20;
  runtime::figure_banner(std::cout, "Figure 7 — FFT-1D aggregate GFLOPS",
                         "DV wins and the gap widens with nodes (paper ran 2^33 points; "
                         "this run uses 2^" + std::to_string(log_size) + ")");
  dvx::apps::FftParams fp{.log_size = log_size};

  runtime::Table t("Fig 7 — aggregate GFLOPS vs nodes",
                   {"nodes", "Data Vortex", "Infiniband", "DV/IB"});
  for (int n : dvx::bench::paper_node_counts()) {
    auto cluster = dvx::bench::make_cluster(n);
    const auto dv = dvx::apps::run_fft_dv(cluster, fp);
    const auto ib = dvx::apps::run_fft_mpi(cluster, fp);
    t.row({std::to_string(n), fmt(dv.gflops()), fmt(ib.gflops()),
           fmt(dv.gflops() / ib.gflops())});
  }
  t.print(std::cout);
  std::cout << "\npaper anchors: both curves rise with node count; DV consistently\n"
               "above IB and the DV/IB ratio grows with nodes.\n";
  return 0;
}
