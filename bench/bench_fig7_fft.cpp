// Legacy wrapper — Figure 7 now lives in the dvx::exp registry
// (src/exp/workloads/fft1d.cpp). Equivalent to `dvx_bench --figure fig7`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig7"}); }
