// Legacy wrapper — this ablation now lives in the dvx::exp registry
// (src/exp/workloads/ablation_fabric.cpp). Equivalent to
// `dvx_bench --figure ablation_fabric`; kept so existing scripts and
// EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"ablation_fabric"}); }
