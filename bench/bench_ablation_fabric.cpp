// Ablation — cycle-accurate switch vs analytic fabric model (DESIGN.md §5).
//
// Applications run on the O(1)-per-burst FabricModel; this bench validates
// that choice by comparing it against the cycle-accurate deflection-routing
// simulator on the same offered traffic: uncontended latency, latency under
// uniform load, and hotspot behaviour.

#include <iostream>

#include "bench_util.hpp"
#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "sim/rng.hpp"

namespace {

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
namespace runtime = dvx::runtime;

struct LoadPoint {
  double offered;
  double cycle_latency;     // cycles, mean, cycle-accurate switch
  double cycle_deflections; // mean deflections per packet
  double analytic_latency;  // cycles, FabricModel equivalent
};

LoadPoint measure(double load, std::uint64_t cycles) {
  dvnet::Geometry g{8, 4};
  LoadPoint out{load, 0, 0, 0};
  // Cycle-accurate measurement.
  {
    dvnet::CycleSwitch sw(g);
    sim::Xoshiro256 rng(7);
    for (std::uint64_t c = 0; c < cycles; ++c) {
      for (int p = 0; p < g.ports(); ++p) {
        if (rng.uniform() < load) {
          sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))));
        }
      }
      sw.step();
    }
    sw.drain(10'000'000);
    out.cycle_latency = sw.latency_stats().mean();
    out.cycle_deflections = sw.deflection_stats().mean();
  }
  // Analytic equivalent: same per-port word rate; latency in cycle units.
  {
    dvnet::FabricParams fp{.geometry = g};
    dvnet::FabricModel fm(fp);
    sim::Xoshiro256 rng(7);
    sim::RunningStats lat;
    sim::Time now = 0;
    const auto word = fm.word_time();
    for (std::uint64_t c = 0; c < cycles; ++c) {
      for (int p = 0; p < g.ports(); ++p) {
        if (rng.uniform() < load) {
          const auto t = fm.send_burst(
              p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))), 1,
              now);
          lat.add(static_cast<double>(t.first_arrival - now) / static_cast<double>(word));
        }
      }
      now += word;
    }
    out.analytic_latency = lat.mean();
  }
  return out;
}

}  // namespace

int main() {
  using runtime::fmt;
  runtime::figure_banner(std::cout, "Ablation — cycle-accurate switch vs analytic model",
                         "validates running applications on the O(1) FabricModel");
  const std::uint64_t cycles = dvx::bench::fast_mode() ? 400 : 2000;
  runtime::Table t("uniform random traffic, 32-port (H=8, A=4) switch",
                   {"offered load", "cycle lat (cyc)", "defl/pkt", "analytic lat (cyc)",
                    "ratio"});
  for (double load : {0.02, 0.05, 0.10, 0.15, 0.20}) {
    const auto p = measure(load, cycles);
    t.row({fmt(p.offered), fmt(p.cycle_latency, 1), fmt(p.cycle_deflections),
           fmt(p.analytic_latency, 1), fmt(p.analytic_latency / p.cycle_latency)});
  }
  t.print(std::cout);
  std::cout <<
      "\nreading: below saturation (~0.2 packets/port/fabric-cycle) the analytic\n"
      "model tracks the cycle-accurate switch within tens of percent while being\n"
      "orders of magnitude cheaper; in-fabric latency stays flat under load\n"
      "(deflection smoothing), which is what the constant-plus-penalty analytic\n"
      "form assumes. Applications never drive the per-port word rate past the\n"
      "PCIe-limited injection rates, so they sit in the validated regime.\n";
  return 0;
}
