// Component microbenchmarks (google-benchmark): raw rates of the simulator
// building blocks. These are wall-clock benchmarks of the *simulator*, not
// virtual-time results — they bound how large a simulated experiment can be.

#include <benchmark/benchmark.h>

#include <vector>

#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "kernels/fft.hpp"
#include "kernels/gups_table.hpp"
#include "kernels/kronecker.hpp"
#include "kernels/stencil.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
namespace kernels = dvx::kernels;

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      engine.schedule(sim::ns(i), [] {});
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1 << 14);

void BM_CoroutineSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn([](sim::Engine& eng, std::int64_t hops) -> sim::Coro<void> {
      for (std::int64_t i = 0; i < hops; ++i) co_await eng.delay(1);
    }(engine, state.range(0)));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSwitch)->Arg(1 << 14);

void BM_CycleSwitchStep(benchmark::State& state) {
  dvnet::CycleSwitch sw(dvnet::Geometry{8, 4});
  sim::Xoshiro256 rng(1);
  for (auto _ : state) {
    for (int p = 0; p < 32; ++p) sw.inject(p, static_cast<int>(rng.below(32)));
    sw.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sw.delivered_total()));
}
BENCHMARK(BM_CycleSwitchStep);

void BM_FabricModelBurst(benchmark::State& state) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  sim::Xoshiro256 rng(2);
  sim::Time now = 0;
  for (auto _ : state) {
    fm.send_burst(static_cast<int>(rng.below(32)), static_cast<int>(rng.below(32)), 8,
                  now);
    now += sim::ns(10);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricModelBurst);

void BM_LocalFft(benchmark::State& state) {
  const std::size_t n = 1u << static_cast<unsigned>(state.range(0));
  std::vector<kernels::Complex> data(n, kernels::Complex(1.0, -0.5));
  for (auto _ : state) {
    kernels::fft(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalFft)->Arg(10)->Arg(14);

void BM_KroneckerEdges(benchmark::State& state) {
  kernels::KroneckerGenerator gen({.scale = 16, .edge_factor = 16});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.edge(i++ % gen.edges()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KroneckerEdges);

void BM_GupsLfsr(benchmark::State& state) {
  std::uint64_t a = kernels::gups_start(1);
  for (auto _ : state) {
    a = kernels::gups_next(a);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GupsLfsr);

void BM_Xoshiro(benchmark::State& state) {
  sim::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_HeatStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  kernels::HaloGrid3 a(n, n, n), b(n, n, n);
  a.at(n / 2, n / 2, n / 2) = 100.0;
  for (auto _ : state) {
    kernels::heat_step(a, b, 1.0 / 6.0);
    std::swap(a, b);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n * n);
}
BENCHMARK(BM_HeatStep)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
