// Legacy wrapper — Figure 8 now lives in the dvx::exp registry
// (src/exp/workloads/bfs.cpp). Equivalent to `dvx_bench --figure fig8`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig8"}); }
