// Figure 8 — Graph500 BFS harmonic-mean TEPS (paper §VI).
//
// Kronecker graph, level-synchronous BFS over multiple random roots.
// MPI aggregates candidates per destination (alltoall); the Data Vortex
// streams single-packet candidates with source-only aggregation. Paper:
// DV consistently above IB, gap widening with nodes. (Paper runs 64
// searches on the largest graph that fits; reproduction scales down.)

#include <iostream>

#include "apps/bfs.hpp"
#include "bench_util.hpp"

namespace runtime = dvx::runtime;

int main() {
  using runtime::fmt;
  const bool fast = dvx::bench::fast_mode();
  runtime::figure_banner(std::cout, "Figure 8 — BFS harmonic-mean TEPS (Graph500)",
                         "DV consistently above IB; the gap widens with node count");
  dvx::apps::BfsParams bp{.scale = fast ? 13 : 15,
                          .edge_factor = 16,
                          .searches = fast ? 2 : 4};

  runtime::Table t("Fig 8 — harmonic-mean MTEPS vs nodes",
                   {"nodes", "Data Vortex", "Infiniband", "DV/IB"});
  for (int n : dvx::bench::paper_node_counts()) {
    auto cluster = dvx::bench::make_cluster(n);
    const auto dv = dvx::apps::run_bfs_dv(cluster, bp);
    const auto ib = dvx::apps::run_bfs_mpi(cluster, bp);
    t.row({std::to_string(n), fmt(dv.harmonic_mean_teps / 1e6),
           fmt(ib.harmonic_mean_teps / 1e6),
           fmt(dv.harmonic_mean_teps / ib.harmonic_mean_teps)});
  }
  t.print(std::cout);
  std::cout << "\npaper anchors: DV TEPS above IB at every node count, and the\n"
               "DV/IB ratio grows as nodes are added.\n";
  return 0;
}
