// dvx_bench — the unified experiment driver. All workload logic lives in
// src/exp/ (registry + per-figure adapters); this binary is just the CLI.

#include "bench_util.hpp"  // keeps the legacy helper header compiling
#include "exp/driver.hpp"

int main(int argc, char** argv) { return dvx::exp::run_cli(argc, argv); }
