// Figure 5 — GUPS execution trace (paper §VI).
//
// The paper instruments the HPCC MPI GUPS with Extrae and shows (a) the
// whole run and (b) a zoom: computation interleaved with MPI exchanges and
// message lines with "no exploitable regularity for aggregating messages
// directed to the same destination". This bench reproduces the trace with
// the built-in tracer: an ASCII timeline, per-state time breakdown, and a
// destination-regularity statistic (1.0 = perfectly aggregatable, ~1/(P-1)
// = uniformly scattered). The full trace is also written as CSV.

#include <iostream>

#include <algorithm>
#include <array>

#include "apps/gups.hpp"
#include "kernels/gups_table.hpp"
#include "bench_util.hpp"

namespace runtime = dvx::runtime;
namespace sim = dvx::sim;

int main() {
  runtime::figure_banner(std::cout, "Figure 5 — GUPS execution trace (MPI/IB, 8 nodes)",
                         "computation (blue in the paper) interleaved with MPI; "
                         "messages show no destination regularity");
  const bool fast = dvx::bench::fast_mode();
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 8, .trace = true});
  dvx::apps::GupsParams gp{.local_table_words = 1u << 14,
                           .updates_per_node = fast ? (1u << 12) : (1u << 14)};
  dvx::apps::run_gups_mpi(cluster, gp);

  const auto& tracer = cluster.tracer();
  std::cout << "\n-- execution timeline (Fig 5a analogue) --\n"
            << tracer.ascii_timeline(100);

  std::cout << "\n-- per-node state breakdown --\n";
  for (const auto& [node, summary] : tracer.state_summary()) {
    std::cout << "node " << node << ":";
    for (int s = 0; s < 5; ++s) {
      std::cout << "  " << sim::to_string(static_cast<sim::NodeState>(s)) << "="
                << runtime::fmt(100.0 * summary.fraction(static_cast<sim::NodeState>(s)), 1)
                << "%";
    }
    std::cout << "\n";
  }

  std::cout << "\n-- message statistics (Fig 5b analogue) --\n";
  std::cout << "messages traced:        " << tracer.messages().size() << "\n";
  const double reg = tracer.destination_regularity(16);
  std::cout << "destination regularity: " << runtime::fmt(reg, 3)
            << "  (1.0 = aggregatable by destination; "
            << runtime::fmt(1.0 / 7.0, 3) << " = uniform scatter over 7 peers)\n";

  // Update-level irregularity, independent of how the runtime batches them:
  // the fraction of a 1024-update HPCC bucket aimed at the most popular of
  // the 7 remote nodes.
  {
    std::uint64_t a = dvx::kernels::gups_start(0);
    double acc = 0.0;
    const int kWindows = 64;
    for (int w = 0; w < kWindows; ++w) {
      std::array<int, 8> count{};
      for (int i = 0; i < 1024; ++i) {
        a = dvx::kernels::gups_next(a);
        ++count[static_cast<std::size_t>(
            dvx::kernels::gups_target(a, 8, gp.local_table_words).owner)];
      }
      acc += *std::max_element(count.begin(), count.end()) / 1024.0;
    }
    std::cout << "update-level regularity: " << runtime::fmt(acc / kWindows, 3)
              << "  (HPCC rule caps buffering at 1024 updates, so no\n"
                 "                         destination accumulates a useful batch)\n";
  }

  const std::string csv = "fig5_gups_trace.csv";
  tracer.write_csv(csv);
  std::cout << "full trace written to " << csv << "\n";
  std::cout << "\npaper anchor: the zoomed trace shows messages to ever-changing\n"
               "destinations — exactly the low regularity measured above.\n";
  return 0;
}
