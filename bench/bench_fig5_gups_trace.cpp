// Legacy wrapper — Figure 5 now lives in the dvx::exp registry
// (src/exp/workloads/gups_trace.cpp). Equivalent to `dvx_bench --figure fig5`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig5"}); }
