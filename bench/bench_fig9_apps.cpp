// Legacy wrapper — Figure 9 now lives in the dvx::exp registry
// (src/exp/workloads/apps.cpp). Equivalent to `dvx_bench --figure fig9`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig9"}); }
