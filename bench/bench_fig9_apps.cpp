// Figure 9 — application speedup, Data Vortex vs MPI-over-InfiniBand
// (paper §VII).
//
// Three applications at 32 nodes:
//   SNAP      — best-effort port (aggregated puts + counters): paper 1.19x
//   Vorticity — aggressive restructuring (spectral solver whose transposes
//               scatter straight into VIC memory)
//   Heat      — aggressive restructuring (one DMA batch for all halos +
//               counter completion)
// The paper reports "between 2.46x and 3.41x" for Vorticity and Heat
// without binding either number to either application; EXPERIMENTS.md
// records the mapping this reproduction observes.

#include <iostream>

#include "apps/heat.hpp"
#include "apps/snap.hpp"
#include "apps/vorticity.hpp"
#include "bench_util.hpp"

namespace runtime = dvx::runtime;

int main() {
  using runtime::fmt;
  runtime::figure_banner(std::cout,
                         "Figure 9 — application speedup w.r.t. MPI-over-Infiniband",
                         "SNAP 1.19x (best-effort port); Vorticity/Heat 2.46x-3.41x "
                         "(restructured)");
  const bool fast = dvx::bench::fast_mode();
  const int nodes = 32;
  auto cluster = dvx::bench::make_cluster(nodes);

  runtime::Table t("Fig 9 — Data Vortex speedup over MPI/IB (32 nodes)",
                   {"application", "DV time", "MPI time", "speedup", "paper"});

  {
    dvx::apps::SnapParams sp{.max_outer = fast ? 2 : 4};
    const auto dv = dvx::apps::run_snap_dv(cluster, sp);
    const auto mpi = dvx::apps::run_snap_mpi(cluster, sp);
    t.row({"SNAP", runtime::fmt_us(dv.seconds * 1e6), runtime::fmt_us(mpi.seconds * 1e6),
           fmt(mpi.seconds / dv.seconds), "1.19"});
  }
  {
    dvx::apps::VorticityParams vp{.n = 256, .steps = fast ? 3 : 8};
    const auto dv = dvx::apps::run_vorticity_dv(cluster, vp);
    const auto mpi = dvx::apps::run_vorticity_mpi(cluster, vp);
    t.row({"Vorticity", runtime::fmt_us(dv.seconds * 1e6),
           runtime::fmt_us(mpi.seconds * 1e6), fmt(mpi.seconds / dv.seconds), "3.41"});
  }
  {
    dvx::apps::HeatParams hp{.global_nx = 24, .global_ny = 24, .global_nz = 24,
                             .steps = fast ? 10 : 40};
    const auto dv = dvx::apps::run_heat_dv(cluster, hp);
    const auto mpi = dvx::apps::run_heat_mpi(cluster, hp);
    t.row({"Heat", runtime::fmt_us(dv.seconds * 1e6), runtime::fmt_us(mpi.seconds * 1e6),
           fmt(mpi.seconds / dv.seconds), "2.46"});
  }
  t.print(std::cout);
  std::cout << "\npaper anchors: the best-effort SNAP port yields the smallest gain\n"
               "(1.19x); the two restructured applications land in the 2.5-3.5x\n"
               "band. The 2.46/3.41 assignment to Vorticity/Heat is this\n"
               "reproduction's reading of the unlabeled range in the text.\n";
  return 0;
}
