// Figure 4 — global-barrier latency at scale (paper §V).
//
// Three implementations: the Data Vortex API intrinsic (two reserved group
// counters, completed inside the VICs — nearly flat in node count), the
// in-house all-to-all "FastBarrier", and MPI over InfiniBand (grows
// markedly with node count; ~13 us at 32 nodes in the paper).

#include <iostream>

#include "bench_util.hpp"
#include "dvapi/context.hpp"
#include "mpi/comm.hpp"

namespace {

namespace sim = dvx::sim;
namespace runtime = dvx::runtime;
using dvx::bench::make_cluster;
using sim::Coro;

constexpr int kReps = 10;

double dv_barrier_us(int nodes, bool fast_barrier) {
  auto cluster = make_cluster(nodes);
  double out = 0.0;
  cluster.run_dv([&](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    // Warm-up (priming for FastBarrier), then timed repetitions.
    if (fast_barrier) {
      co_await ctx.fast_barrier();
    } else {
      co_await ctx.barrier();
    }
    const sim::Time t0 = node.now();
    for (int r = 0; r < kReps; ++r) {
      if (fast_barrier) {
        co_await ctx.fast_barrier();
      } else {
        co_await ctx.barrier();
      }
    }
    if (ctx.rank() == 0) out = sim::to_us(node.now() - t0) / kReps;
  });
  return out;
}

double mpi_barrier_us(int nodes) {
  auto cluster = make_cluster(nodes);
  double out = 0.0;
  cluster.run_mpi([&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
    co_await comm.barrier();
    const sim::Time t0 = node.now();
    for (int r = 0; r < kReps; ++r) co_await comm.barrier();
    if (comm.rank() == 0) out = sim::to_us(node.now() - t0) / kReps;
  });
  return out;
}

}  // namespace

int main() {
  using dvx::runtime::fmt;
  runtime::figure_banner(std::cout, "Figure 4 — global barrier latency at scale",
                         "DV barrier nearly flat (~1 us); MPI/IB grows to ~13 us at 32 "
                         "nodes");
  runtime::Table t("Fig 4 — barrier latency (us) vs nodes",
                   {"nodes", "Data Vortex", "FastBarrier", "Infiniband"});
  for (int n : dvx::bench::paper_node_counts()) {
    t.row({std::to_string(n), fmt(dv_barrier_us(n, false)), fmt(dv_barrier_us(n, true)),
           fmt(mpi_barrier_us(n))});
  }
  t.print(std::cout);
  std::cout << "\npaper anchors: DV nearly constant with node count; MPI rises\n"
               "steeply past 8 nodes, reaching low-teens of microseconds at 32.\n";
  return 0;
}
