// Legacy wrapper — Figure 4 now lives in the dvx::exp registry
// (src/exp/workloads/barrier.cpp). Equivalent to `dvx_bench --figure fig4`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig4"}); }
