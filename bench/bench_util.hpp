#pragma once
// Shared helpers for the figure-reproduction bench binaries.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/constants.hpp"
#include "runtime/report.hpp"

namespace dvx::bench {

/// True when DVX_BENCH_FAST is set: benches shrink their problem sizes so a
/// full `for b in build/bench/*; do $b; done` sweep stays quick.
inline bool fast_mode() {
  const char* v = std::getenv("DVX_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline runtime::Cluster make_cluster(int nodes, bool trace = false) {
  return runtime::Cluster(runtime::ClusterConfig{.nodes = nodes, .trace = trace});
}

/// The node counts the paper sweeps (Figs. 4 and 6-8).
inline std::vector<int> paper_node_counts(int first = 2) {
  std::vector<int> out;
  for (int n = first; n <= runtime::paper::kMaxNodes; n *= 2) out.push_back(n);
  return out;
}

}  // namespace dvx::bench
