// Figure 3 — ping-pong network bandwidth vs message size (paper §V).
//
// Reproduces both panels: (a) absolute bandwidth for the three Data Vortex
// send paths (DWr/NoCached, DWr/Cached, DMA/Cached) and MPI-over-IB;
// (b) the same as a percentage of each network's nominal peak (DV 4.4 GB/s,
// IB 6.8 GB/s). Paper anchors: DV DMA reaches 99.4% of peak at 256 Ki
// words; IB reaches only ~72%; direct writes plateau at the 0.5 GB/s PCIe
// lane limit; IB leads in the 32-128-word range and beyond 512 words.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "dvapi/collectives.hpp"
#include "dvapi/context.hpp"
#include "mpi/comm.hpp"

namespace {

namespace sim = dvx::sim;
namespace vic = dvx::vic;
namespace dvapi = dvx::dvapi;
namespace runtime = dvx::runtime;
using dvx::bench::make_cluster;
using sim::Coro;

enum class Path { kDirect, kCached, kDma, kMpi };

/// One-way bandwidth of a ping-pong with `words`-word messages.
double pingpong_bw(Path path, std::int64_t words, int reps) {
  auto cluster = make_cluster(2);
  double out = 0.0;
  constexpr int kCtr = dvapi::kFirstFreeCounter;

  if (path == Path::kMpi) {
    cluster.run_mpi([&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
      std::vector<std::uint64_t> payload(static_cast<std::size_t>(words), 7);
      co_await comm.barrier();
      const sim::Time t0 = node.now();
      for (int r = 0; r < reps; ++r) {
        if (comm.rank() == 0) {
          co_await comm.send(1, 0, payload);
          auto back = co_await comm.recv(1, 1);
          payload = std::move(back.data);
        } else {
          auto msg = co_await comm.recv(0, 0);
          co_await comm.send(0, 1, std::move(msg.data));
        }
      }
      if (comm.rank() == 0) {
        const double rtts = sim::to_seconds(node.now() - t0) / reps;
        out = static_cast<double>(words * 8) / (rtts / 2.0);
      }
    });
    return out;
  }

  cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    const int peer = 1 - ctx.rank();
    std::vector<vic::Packet> batch(static_cast<std::size_t>(words));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].header = vic::Header{static_cast<std::uint16_t>(peer),
                                    vic::DestKind::kDvMemory,
                                    static_cast<std::uint8_t>(kCtr),
                                    dvapi::kFirstFreeDvWord + static_cast<std::uint32_t>(i)};
      batch[i].payload = i;
    }
    auto send_one = [&]() -> Coro<void> {
      switch (path) {
        case Path::kDirect: co_await ctx.send_direct_batch(batch); break;
        case Path::kCached: co_await ctx.send_cached_batch(batch); break;
        default: co_await ctx.send_dma_batch(batch); break;
      }
    };
    co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
    co_await ctx.barrier();
    const sim::Time t0 = node.now();
    for (int r = 0; r < reps; ++r) {
      if (ctx.rank() == 0) {
        co_await send_one();
        co_await ctx.counter_wait_zero(kCtr);
        co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
        // Copy the received words back to host memory (paper's rule: the
        // whole message must land in host memory each hop). Multi-buffered:
        // the drain DMA overlaps the next iteration's traffic; successive
        // drains queue on the engine, so sustained rates stay honest.
        std::vector<std::uint64_t> host(static_cast<std::size_t>(words));
        ctx.dma_read_dv_async(dvapi::kFirstFreeDvWord, host);
      } else {
        co_await ctx.counter_wait_zero(kCtr);
        co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
        std::vector<std::uint64_t> host(static_cast<std::size_t>(words));
        ctx.dma_read_dv_async(dvapi::kFirstFreeDvWord, host);
        co_await send_one();
      }
    }
    if (ctx.rank() == 0) {
      const double rtts = sim::to_seconds(node.now() - t0) / reps;
      out = static_cast<double>(words * 8) / (rtts / 2.0);
    }
    co_await ctx.barrier();
  });
  return out;
}

}  // namespace

int main() {
  using dvx::runtime::fmt;
  runtime::figure_banner(std::cout, "Figure 3 — ping-pong bandwidth vs message size",
                         "DV DMA/Cached hits 99.4% of 4.4 GB/s at 256Ki words; IB ~72% "
                         "of 6.8 GB/s; direct writes capped by the 0.5 GB/s PCIe lane");
  const int max_log = dvx::bench::fast_mode() ? 14 : 18;
  const int reps = 3;

  runtime::Table abs("Fig 3a — absolute ping-pong bandwidth (GB/s)",
                     {"words", "DWr/NoCached", "DWr/Cached", "DMA/Cached", "MPI"});
  runtime::Table rel("Fig 3b — percentage of nominal peak bandwidth",
                     {"words", "DWr/NoCached", "DWr/Cached", "DMA/Cached", "MPI"});
  for (int lg = 0; lg <= max_log; lg += 2) {
    const std::int64_t words = 1LL << lg;
    const double d = pingpong_bw(Path::kDirect, words, reps);
    const double c = pingpong_bw(Path::kCached, words, reps);
    const double m = pingpong_bw(Path::kDma, words, reps);
    const double i = pingpong_bw(Path::kMpi, words, reps);
    abs.row({std::to_string(words), fmt(d / 1e9, 3), fmt(c / 1e9, 3), fmt(m / 1e9, 3),
             fmt(i / 1e9, 3)});
    const double dvp = dvx::runtime::paper::kDvPeakBw;
    const double ibp = dvx::runtime::paper::kIbPeakBw;
    rel.row({std::to_string(words), fmt(100 * d / dvp, 1), fmt(100 * c / dvp, 1),
             fmt(100 * m / dvp, 1), fmt(100 * i / ibp, 1)});
  }
  abs.print(std::cout);
  rel.print(std::cout);
  std::cout << "\npaper anchors: DV DMA 99.4% @256Ki words; IB ~72% @256Ki words;\n"
               "direct-write plateau ~0.5 GB/s; IB leads for 32-128 and >512 words.\n";
  return 0;
}
