// Legacy wrapper — Figure 3 now lives in the dvx::exp registry
// (src/exp/workloads/pingpong.cpp). Equivalent to `dvx_bench --figure fig3`;
// kept so existing scripts and EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"fig3"}); }
