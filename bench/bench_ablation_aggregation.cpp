// Ablation — how much the paper's "lessons learned" optimizations matter.
//
//  1. Source aggregation (GUPS): sweep the update-buffer size. Small
//     buffers mean one PCIe DMA per few packets — the I/O latency is not
//     amortized and the DV advantage collapses (paper §VI: batches "can be
//     aggregated for transfer across the PCIe bus").
//  2. Send-path choice (bulk puts): the same 64 KiB put issued through the
//     three API paths — the DMA/Cached path is the only one that feeds the
//     fabric at line rate (paper §V).

#include <iostream>
#include <vector>

#include "apps/gups.hpp"
#include "bench_util.hpp"
#include "dvapi/collectives.hpp"
#include "dvapi/context.hpp"

namespace {

namespace sim = dvx::sim;
namespace vic = dvx::vic;
namespace dvapi = dvx::dvapi;
namespace runtime = dvx::runtime;
using sim::Coro;

double put_path_seconds(int which, std::int64_t words) {
  auto cluster = dvx::bench::make_cluster(2);
  double out = 0.0;
  constexpr int kCtr = dvapi::kFirstFreeCounter;
  cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    if (ctx.rank() == 1) {
      co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
    }
    co_await ctx.barrier();
    const sim::Time t0 = node.now();
    if (ctx.rank() == 0) {
      std::vector<vic::Packet> batch(static_cast<std::size_t>(words));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].header =
            vic::Header{1, vic::DestKind::kDvMemory, static_cast<std::uint8_t>(kCtr),
                        dvapi::kFirstFreeDvWord + static_cast<std::uint32_t>(i)};
        batch[i].payload = i;
      }
      switch (which) {
        case 0: co_await ctx.send_direct_batch(batch); break;
        case 1: co_await ctx.send_cached_batch(batch); break;
        default: co_await ctx.send_dma_batch(batch); break;
      }
    } else {
      co_await ctx.counter_wait_zero(kCtr);
      out = sim::to_seconds(node.now() - t0);
    }
    co_await ctx.barrier();
  });
  return out;
}

}  // namespace

int main() {
  using runtime::fmt;
  runtime::figure_banner(std::cout, "Ablation — aggregation and send-path choices",
                         "quantifies the paper's 'lessons learned'");
  const bool fast = dvx::bench::fast_mode();

  runtime::Table t1("GUPS-DV vs PCIe aggregation (16 nodes): update-buffer sweep",
                    {"buffer (updates)", "aggregate MUPS", "vs 1024-buffer"});
  {
    double base = 0.0;
    std::vector<int> buffers = {1024, 128, 16};
    for (int buf : buffers) {
      auto cluster = dvx::bench::make_cluster(16);
      dvx::apps::GupsParams gp{.local_table_words = 1u << 14,
                               .updates_per_node = fast ? (1u << 12) : (1u << 14),
                               .buffer_limit = buf};
      const auto res = dvx::apps::run_gups_dv(cluster, gp);
      const double mups = res.gups() * 1e3;
      if (buf == 1024) base = mups;
      t1.row({std::to_string(buf), fmt(mups), fmt(mups / base)});
    }
  }
  t1.print(std::cout);

  runtime::Table t2("64 Ki-word put through each send path (receiver-visible time)",
                    {"path", "time", "effective bandwidth"});
  const std::int64_t words = 64 * 1024;
  const char* names[3] = {"DWr/NoCached", "DWr/Cached", "DMA/Cached"};
  for (int p = 0; p < 3; ++p) {
    const double s = put_path_seconds(p, words);
    t2.row({names[p], runtime::fmt_us(s * 1e6),
            runtime::fmt_gbs(static_cast<double>(words * 8) / s)});
  }
  t2.print(std::cout);

  std::cout << "\nreading: shrinking the source-side batch multiplies per-DMA\n"
               "setup costs into the update stream; PIO paths cap at the PCIe\n"
               "lane rate regardless of batching. Both effects motivate the\n"
               "paper's 'aggregation at source' restructuring.\n";
  return 0;
}
