// Legacy wrapper — this ablation now lives in the dvx::exp registry
// (src/exp/workloads/ablation_aggregation.cpp). Equivalent to
// `dvx_bench --figure ablation_aggregation`; kept so existing scripts and
// EXPERIMENTS.md commands keep working.

#include "exp/driver.hpp"

int main() { return dvx::exp::run_figures({"ablation_aggregation"}); }
