// 3-D heat diffusion example: the same physics on both networks.
//
// Solves the heat equation in an insulated box (Gaussian hot spot) on 8
// simulated nodes, verifies conservation and agreement with a serial
// reference, and compares the restructured Data Vortex halo exchange (one
// DMA batch + counters per step) with conventional MPI Sendrecv halos.
//
// Run: ./build/examples/heat3d [grid] [steps]

#include <cstdio>
#include <cstdlib>

#include "apps/heat.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  const int g = argc > 1 ? std::atoi(argv[1]) : 24;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  dvx::runtime::Cluster cluster(dvx::runtime::ClusterConfig{.nodes = 8});
  dvx::apps::HeatParams hp{.global_nx = g, .global_ny = g, .global_nz = g,
                           .steps = steps, .verify = true};

  std::printf("heat equation, %d^3 insulated box, %d steps, 8 nodes\n", g, steps);

  const auto dv = dvx::apps::run_heat_dv(cluster, hp);
  std::printf("  Data Vortex : %9.1f us   total heat %.6f   residual %.2e   "
              "|serial diff| %.2e\n",
              dv.seconds * 1e6, dv.total_heat, dv.final_residual, dv.max_serial_diff);

  const auto mpi = dvx::apps::run_heat_mpi(cluster, hp);
  std::printf("  MPI over IB : %9.1f us   total heat %.6f   residual %.2e   "
              "|serial diff| %.2e\n",
              mpi.seconds * 1e6, mpi.total_heat, mpi.final_residual,
              mpi.max_serial_diff);

  std::printf("  speedup     : %9.2fx   (identical physics: heat diff %.2e)\n",
              mpi.seconds / dv.seconds, dv.total_heat - mpi.total_heat);
  const bool ok = dv.max_serial_diff < 1e-10 && mpi.max_serial_diff < 1e-10;
  std::printf("  verification: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
