// Kelvin-Helmholtz example: the paper's ideal-incompressible-flow problem.
//
// A perturbed double shear layer on a periodic box, evolved with the
// pseudo-spectral vorticity solver (five 2-D FFTs per right-hand side, each
// one distributed transpose). Prints the conserved quantities over time —
// inviscid Euler flow must hold energy and enstrophy nearly constant while
// the shear layers roll up.
//
// Run: ./build/examples/kelvin_helmholtz [n] [steps]

#include <cstdio>
#include <cstdlib>

#include "apps/vorticity.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int total_steps = argc > 2 ? std::atoi(argv[2]) : 12;
  dvx::runtime::Cluster cluster(dvx::runtime::ClusterConfig{.nodes = 8});

  std::printf("Kelvin-Helmholtz roll-up, %dx%d periodic box, 8 nodes\n", n, n);
  std::printf("%6s  %14s  %14s  %12s\n", "steps", "energy", "enstrophy", "drift");
  double base_energy = 0.0;
  for (int steps = 0; steps <= total_steps; steps += 4) {
    dvx::apps::VorticityParams vp{.n = n, .steps = steps == 0 ? 1 : steps};
    const auto r = dvx::apps::run_vorticity_dv(cluster, vp);
    if (steps == 0) base_energy = r.energy0;
    std::printf("%6d  %14.6e  %14.6e  %11.2e%%\n", vp.steps, r.energy1, r.enstrophy1,
                100.0 * r.energy_drift());
  }

  dvx::apps::VorticityParams vp{.n = n, .steps = total_steps};
  const auto dv = dvx::apps::run_vorticity_dv(cluster, vp);
  const auto mpi = dvx::apps::run_vorticity_mpi(cluster, vp);
  std::printf("\n%d steps: DV %.1f us, MPI %.1f us -> speedup %.2fx\n", total_steps,
              dv.seconds * 1e6, mpi.seconds * 1e6, mpi.seconds / dv.seconds);
  std::printf("cross-backend |omega| checksum diff: %.3e (should be ~0)\n",
              dv.omega_checksum - mpi.omega_checksum);
  const bool ok = dv.energy_drift() < 1e-3 && base_energy > 0.0;
  std::printf("conservation: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
