// Quickstart: the Data Vortex programming model in a nutshell.
//
// Spins up a simulated 4-node cluster (each node has a VIC and an IB HCA,
// like the paper's testbed) and walks the §III API surface: remote
// DV-memory puts with group-counter completion, host-free query/reply
// reads, surprise-FIFO messaging, and both barriers. Prints what happened
// and the virtual time everything took.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "dvapi/collectives.hpp"
#include "dvapi/context.hpp"
#include "runtime/cluster.hpp"

namespace sim = dvx::sim;
namespace vic = dvx::vic;
namespace dvapi = dvx::dvapi;
namespace runtime = dvx::runtime;
using sim::Coro;

int main() {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});

  const auto run = cluster.run_dv(
      [](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
        const int rank = ctx.rank();
        const int n = ctx.nodes();
        constexpr int kCtr = dvapi::kFirstFreeCounter;
        constexpr std::uint32_t kSlot = dvapi::kFirstFreeDvWord;

        // 1. Remote put: every rank writes 4 words into its right neighbor's
        //    DV memory; the neighbor knows completion via a group counter.
        co_await ctx.counter_set_local(kCtr, 4);
        co_await ctx.barrier();  // no packet may race the preset
        const int right = (rank + 1) % n;
        std::vector<std::uint64_t> gift = {100u + static_cast<unsigned>(rank), 2, 3, 4};
        co_await ctx.put(right, kSlot, gift, kCtr);
        co_await ctx.counter_wait_zero(kCtr);
        std::vector<std::uint64_t> got(4);
        co_await ctx.dma_read_dv(kSlot, got);
        std::printf("[rank %d] put from left neighbor arrived: %llu ...\n", rank,
                    static_cast<unsigned long long>(got[0]));

        // 2. Query: read a word from rank 0's DV memory with no host help on
        //    the remote side.
        co_await ctx.barrier();
        if (rank != 0) {
          const auto v = co_await ctx.query(0, kSlot);
          std::printf("[rank %d] query(rank0) -> %llu\n", rank,
                      static_cast<unsigned long long>(v));
        }

        // 3. Surprise FIFO: unscheduled messages, no pre-arranged address.
        co_await ctx.barrier();
        if (rank != 0) {
          co_await ctx.send_fifo(0, 0xC0FFEE00u + static_cast<unsigned>(rank));
        } else {
          int seen = 0;
          while (seen < n - 1) {
            auto batch = co_await ctx.fifo_wait();
            for (const auto& p : batch) {
              std::printf("[rank 0] surprise packet: %#llx\n",
                          static_cast<unsigned long long>(p.payload));
              ++seen;
            }
          }
        }

        // 4. Word collectives built from puts + counters.
        const auto total =
            co_await dvapi::allreduce_sum(ctx, static_cast<std::uint64_t>(rank + 1));
        if (rank == 0) {
          std::printf("[rank 0] allreduce_sum(1..%d) = %llu\n", n,
                      static_cast<unsigned long long>(total));
        }
        co_await ctx.fast_barrier();  // the in-house all-to-all barrier
        node.roi_end();
      });

  std::printf("\nvirtual time for the whole program: %.2f us\n",
              sim::to_us(run.finished));
  return 0;
}
