// Graph analytics example: Graph500-style BFS on both networks.
//
// Builds a Kronecker (power-law) graph, distributes it over 8 simulated
// nodes, runs validated breadth-first searches on the Data Vortex and on
// MPI-over-InfiniBand, and reports TEPS — the kind of irregular,
// fine-grained workload the paper argues the Data Vortex is built for.
//
// Run: ./build/examples/graph_analytics [scale]

#include <cstdio>
#include <cstdlib>

#include "apps/bfs.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 13;
  dvx::runtime::Cluster cluster(dvx::runtime::ClusterConfig{.nodes = 8});
  dvx::apps::BfsParams bp{.scale = scale, .edge_factor = 16, .searches = 3,
                          .validate = true};

  std::printf("BFS on a scale-%d Kronecker graph (%llu vertices, %llu edges), 8 nodes\n",
              bp.scale, 1ull << bp.scale,
              (1ull << bp.scale) * static_cast<unsigned long long>(bp.edge_factor));

  const auto dv = dvx::apps::run_bfs_dv(cluster, bp);
  std::printf("  Data Vortex : %8.2f MTEPS (harmonic mean over %zu searches)  %s\n",
              dv.harmonic_mean_teps / 1e6, dv.teps.size(),
              dv.validated ? "[tree validated]" : dv.validation_error.c_str());

  const auto mpi = dvx::apps::run_bfs_mpi(cluster, bp);
  std::printf("  MPI over IB : %8.2f MTEPS (harmonic mean over %zu searches)  %s\n",
              mpi.harmonic_mean_teps / 1e6, mpi.teps.size(),
              mpi.validated ? "[tree validated]" : mpi.validation_error.c_str());

  std::printf("  speedup     : %8.2fx (paper: irregular traffic favors the DV)\n",
              dv.harmonic_mean_teps / mpi.harmonic_mean_teps);
  return (dv.validated && mpi.validated) ? 0 : 1;
}
