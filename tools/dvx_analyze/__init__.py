"""dvx_analyze: static shard-safety & layering analysis (DESIGN.md §13).

Rule engine over a lightweight C++ tokenizer — no libclang — driven by the
declarative manifest rules.toml. Run as `python3 tools/dvx_analyze`.
"""
