#!/usr/bin/env python3
"""Self-test for the dvx_analyze tokenizer and rule engine.

Plain python3 — no pytest in the build image. Each case builds a throwaway
tree under a tempdir, runs the engine over it, and asserts on the findings.
Run directly (`python3 tools/dvx_analyze/selftest.py`) or via the
`dvx_analyze_selftest` ctest. Exit status: 0 pass, 1 fail.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import traceback

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from dvx_analyze import cli, rules, tokenizer  # noqa: E402

_RULES_TOML = pathlib.Path(__file__).resolve().parent / "rules.toml"

_CASES = []


def case(fn):
    _CASES.append(fn)
    return fn


def _run_tree(tmp: pathlib.Path, files: dict[str, str],
              groups: list[str]) -> rules.Context:
    for rel, body in files.items():
        p = tmp / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(body, encoding="utf-8")
    roots = sorted({str(tmp / pathlib.Path(rel).parts[0]) for rel in files})
    return cli.run(roots, groups, _RULES_TOML, tmp)


def _rules_of(ctx: rules.Context) -> list[str]:
    return [f.rule for f in ctx.findings]


# --------------------------------------------------------------------------
# tokenizer
# --------------------------------------------------------------------------

@case
def tokenizer_strips_comments_and_strings():
    stripped, comments = tokenizer.strip_lines([
        'int x = 1; // trailing rand( note',
        'const char* s = "rand( inside string // not a comment";',
        '/* block rand( */ int y = 2; /* open',
        'still comment */ int z = 3;',
    ])
    assert "rand(" not in "\n".join(stripped), stripped
    assert "int x = 1;" in stripped[0]
    assert "int y = 2;" in stripped[2]
    assert "int z = 3;" in stripped[3]
    assert "trailing rand( note" in comments[1]
    assert 2 not in comments, comments  # the // lived inside a string
    assert "block rand(" in comments[3]
    # Columns preserved: 'int z' sits after the blanked comment tail.
    assert stripped[3].index("int z") == 17, stripped[3]


@case
def tokenizer_finds_classes_methods_and_annotation():
    stripped, comments = tokenizer.strip_lines([
        "// dvx-analyze: shared-across-shards",
        "class Widget {",
        " public:",
        "  void poke() { state_ += 1; }",
        "  int peek() const;",
        " private:",
        "  int state_ = 0;",
        "};",
        "struct Plain { void go() {} };",
    ])
    classes = tokenizer._collect_classes(
        stripped, comments, "dvx-analyze: shared-across-shards")
    assert [c.name for c in classes] == ["Widget", "Plain"], classes
    widget, plain = classes
    assert widget.annotated and not plain.annotated
    byname = {m.name: m for m in widget.methods}
    assert byname["poke"].access == "public" and byname["poke"].body
    assert byname["peek"].body is None
    assert "state_ += 1" in byname["poke"].body
    assert plain.methods[0].access == "public"  # struct default


@case
def tokenizer_out_of_line_definitions():
    raw = [
        "#include \"widget.hpp\"",
        "void Widget::poke() {",
        "  state_ += 1;",
        "}",
        "int Widget::peek() const { return state_; }",
    ]
    stripped, comments = tokenizer.strip_lines(raw)
    scan = tokenizer.FileScan(pathlib.Path("w.cpp"), raw, stripped,
                              comments, [], [])
    defs = tokenizer.out_of_line_definitions(scan)
    assert [(d.class_name, d.method, d.line) for d in defs] == \
        [("Widget", "poke", 2), ("Widget", "peek", 5)], defs
    assert "state_ += 1" in defs[0].body


# --------------------------------------------------------------------------
# layering
# --------------------------------------------------------------------------

@case
def layering_forbidden_include_caught():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/mpi/comm.cpp": '#include "ib/topology.hpp"\nint x;\n',
        }, ["layering"])
        assert _rules_of(ctx) == ["layering"], ctx.findings
        f = ctx.findings[0]
        assert f.line == 1 and "must never include" in f.message, f


@case
def layering_unreachable_vs_allowed():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            # sim -> vic: not reachable (and forbidden); sim -> check: fine.
            "src/sim/engine.cpp":
                '#include "vic/vic.hpp"\n#include "check/check.hpp"\n',
            # tests/ are exempt from layering entirely.
            "tests/test_x.cpp": '#include "ib/topology.hpp"\n',
        }, ["layering"])
        assert len(ctx.findings) == 1, ctx.findings
        assert ctx.findings[0].path == "src/sim/engine.cpp"


@case
def layering_suppression_honored():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/net/bridge.hpp":
                "// dvx-analyze: allow(layering) -- transitional shim, torn"
                " out with PR 9\n"
                '#include "mpi/comm.hpp"\n',
        }, ["layering"])
        assert not ctx.findings, ctx.findings
        assert len(ctx.suppressions) == 1
        assert ctx.suppressions[0].justification.startswith("transitional")


@case
def layering_serve_is_backend_neutral():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            # serve -> ib is a hard negative edge (backend neutrality);
            # serve -> dvapi rides the facade and is fine.
            "src/serve/session.cpp":
                '#include "ib/topology.hpp"\n'
                '#include "dvapi/dv.hpp"\n',
        }, ["layering"])
        assert _rules_of(ctx) == ["layering"], ctx.findings
        f = ctx.findings[0]
        assert f.line == 1 and "must never include" in f.message, f


# --------------------------------------------------------------------------
# shard-safety
# --------------------------------------------------------------------------

_ANNOT = "// dvx-analyze: shared-across-shards\n"

_GUARDED_CLASS = _ANNOT + """\
class Box {
 public:
  void put(int v) {
    DVX_SHARD_GUARDED("x.Box", -1);
    items_.push_back(v);
  }
  int size() const { return n_; }
 private:
  void grow() { items_.resize(n_ * 2); }
  std::vector<int> items_;
  int n_ = 0;
};
"""

_UNGUARDED_CLASS = _ANNOT + """\
class Box {
 public:
  void put(int v) { items_.push_back(v); }
 private:
  std::vector<int> items_;
};
"""


@case
def shard_safety_unguarded_mutation_caught():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {"src/vic/box.hpp": _UNGUARDED_CLASS},
                        ["shard-safety"])
        assert _rules_of(ctx) == ["shard-safety"], ctx.findings
        assert "'Box::put'" in ctx.findings[0].message


@case
def shard_safety_guarded_and_private_clean():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {"src/vic/box.hpp": _GUARDED_CLASS},
                        ["shard-safety"])
        # put() is guarded, size() is const, grow() is private: all clean.
        assert not ctx.findings, ctx.findings


@case
def shard_safety_unannotated_class_exempt():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/vic/box.hpp": _UNGUARDED_CLASS.replace(_ANNOT, ""),
        }, ["shard-safety"])
        assert not ctx.findings, ctx.findings


@case
def shard_safety_out_of_line_definition_caught():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/vic/box.hpp": _ANNOT + (
                "class Box {\n"
                " public:\n"
                "  void put(int v);\n"
                " private:\n"
                "  int n_ = 0;\n"
                "};\n"),
            "src/vic/box.cpp":
                '#include "vic/box.hpp"\n'
                "void Box::put(int v) { n_ = v; }\n",
        }, ["shard-safety"])
        assert _rules_of(ctx) == ["shard-safety"], ctx.findings
        assert ctx.findings[0].path == "src/vic/box.cpp"


@case
def shard_safety_suppression_needs_justification():
    suppressed = _UNGUARDED_CLASS.replace(
        "  void put(int v)",
        "  // dvx-analyze: allow(shard-safety) -- config-time only\n"
        "  void put(int v)")
    bare = _UNGUARDED_CLASS.replace(
        "  void put(int v)",
        "  // dvx-analyze: allow(shard-safety)\n"
        "  void put(int v)")
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {"src/vic/box.hpp": suppressed}, ["shard-safety"])
        assert not ctx.findings and len(ctx.suppressions) == 1, ctx.findings
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {"src/vic/box.hpp": bare}, ["shard-safety"])
        # Bare allow: both the original finding AND the bare-suppression one.
        got = sorted(_rules_of(ctx))
        assert got == ["shard-safety", "shard-safety"], ctx.findings
        assert any("without a justification" in f.message
                   for f in ctx.findings), ctx.findings


# --------------------------------------------------------------------------
# shard-partitioned
# --------------------------------------------------------------------------

_PART_ANNOT = "// dvx-analyze: shard-partitioned\n"


@case
def shard_partitioned_unguarded_mutation_caught():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/vic/box.hpp": _UNGUARDED_CLASS.replace(_ANNOT, _PART_ANNOT),
        }, ["shard-partitioned"])
        assert _rules_of(ctx) == ["shard-partitioned"], ctx.findings
        f = ctx.findings[0]
        assert "'Box::put'" in f.message and "shard-partitioned" in f.message, f


@case
def shard_partitioned_guarded_clean_and_group_selection():
    guarded = _GUARDED_CLASS.replace(_ANNOT, _PART_ANNOT).replace(
        'DVX_SHARD_GUARDED("x.Box", -1)', 'DVX_SHARD_GUARDED("x.Box", node)')
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {"src/vic/box.hpp": guarded},
                        ["shard-partitioned"])
        assert not ctx.findings, ctx.findings
    # A partitioned class is NOT shard-safety's business: scanning with only
    # the other group enabled must stay silent (and vice versa).
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/vic/box.hpp": _UNGUARDED_CLASS.replace(_ANNOT, _PART_ANNOT),
        }, ["shard-safety"])
        assert not ctx.findings, ctx.findings


@case
def shard_rules_coexist_with_distinct_rule_names():
    shared = _UNGUARDED_CLASS
    part = _UNGUARDED_CLASS.replace(_ANNOT, _PART_ANNOT).replace(
        "class Box", "class Cell")
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/vic/box.hpp": shared,
            "src/vic/cell.hpp": part,
        }, ["shard-safety", "shard-partitioned"])
        got = sorted(_rules_of(ctx))
        assert got == ["shard-partitioned", "shard-safety"], ctx.findings
        by_rule = {f.rule: f for f in ctx.findings}
        assert "'Cell::put'" in by_rule["shard-partitioned"].message
        assert "'Box::put'" in by_rule["shard-safety"].message


@case
def shard_partitioned_out_of_line_definition_caught():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/vic/box.hpp": _PART_ANNOT + (
                "class Box {\n"
                " public:\n"
                "  void put(int v);\n"
                " private:\n"
                "  int n_ = 0;\n"
                "};\n"),
            "src/vic/box.cpp":
                '#include "vic/box.hpp"\n'
                "void Box::put(int v) { n_ = v; }\n",
        }, ["shard-partitioned"])
        assert _rules_of(ctx) == ["shard-partitioned"], ctx.findings
        assert ctx.findings[0].path == "src/vic/box.cpp"


@case
def tokenizer_records_annotation_kind():
    stripped, comments = tokenizer.strip_lines([
        "// dvx-analyze: shard-partitioned",
        "class Cell { public: void go() {} };",
        "// dvx-analyze: shared-across-shards",
        "class Box { public: void go() {} };",
        "",
        "class Plain {};",
    ])
    classes = tokenizer._collect_classes(stripped, comments, [
        "dvx-analyze: shared-across-shards", "dvx-analyze: shard-partitioned"])
    kinds = {c.name: c.annotation for c in classes}
    assert kinds == {
        "Cell": "dvx-analyze: shard-partitioned",
        "Box": "dvx-analyze: shared-across-shards",
        "Plain": None,
    }, kinds


# --------------------------------------------------------------------------
# determinism (folded det-lint) + report-determinism
# --------------------------------------------------------------------------

@case
def determinism_banned_token_and_allow():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/sim/bad.cpp":
                "int a = rand();\n"
                "auto t0 = std::chrono::steady_clock::now();"
                "  // det-lint: allow(system_clock) -- host progress only\n"
                "// rand( in a comment is fine\n",
        }, ["determinism"])
        assert _rules_of(ctx) == ["determinism"], ctx.findings
        assert "'rand('" in ctx.findings[0].message
        assert len(ctx.suppressions) == 1


@case
def report_determinism_range_for_caught():
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx = _run_tree(tmp, {
            "src/obs/agg.cpp":
                "std::unordered_map<int, int> hist;  "
                "// det-lint: allow(std::unordered_*) -- sorted before emit\n"
                "void emit() {\n"
                "  for (const auto& kv : hist) { use(kv); }\n"
                "}\n",
        }, ["report-determinism"])
        assert _rules_of(ctx) == ["report-determinism"], ctx.findings
        assert "'hist'" in ctx.findings[0].message


@case
def findings_sorted_and_deterministic():
    files = {
        "src/sim/b.cpp": "int a = rand();\nint b = rand();\n",
        "src/sim/a.cpp": "int c = rand();\n",
    }
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx1 = _run_tree(tmp, files, ["determinism"])
        texts1 = [f.text() for f in ctx1.findings]
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        ctx2 = _run_tree(tmp, files, ["determinism"])
        texts2 = [f.text() for f in ctx2.findings]
    assert texts1 == texts2, (texts1, texts2)
    assert [f.path for f in ctx1.findings] == \
        ["src/sim/a.cpp", "src/sim/b.cpp", "src/sim/b.cpp"]


def main() -> int:
    failures = 0
    for fn in _CASES:
        try:
            fn()
            print(f"  PASS {fn.__name__}")
        except Exception:
            failures += 1
            print(f"  FAIL {fn.__name__}")
            traceback.print_exc()
    print(f"dvx_analyze selftest: {len(_CASES) - failures}/{len(_CASES)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
