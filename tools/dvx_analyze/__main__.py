import pathlib
import sys

if __package__ in (None, ""):
    # Directory execution (`python3 tools/dvx_analyze`): no package context,
    # so import ourselves absolutely from the parent directory.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from dvx_analyze.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
