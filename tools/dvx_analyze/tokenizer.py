"""Lightweight C++ tokenizer for the dvx_analyze rule engine.

Deliberately not a parser (no libclang in the build image, and the repo's
style is regular enough): it strips comments/strings column-preservingly,
extracts #include directives, and recovers just enough class structure —
annotated classes, access regions, public method heads, inline and
out-of-line bodies — for the shard-safety rule. Anything it cannot parse it
skips silently rather than mis-reporting; the dynamic recorder is the
backstop for what static heuristics miss.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


@dataclasses.dataclass
class Include:
    line: int  # 1-based
    col: int  # 1-based
    target: str  # the quoted path as written


@dataclasses.dataclass
class Method:
    name: str
    line: int  # 1-based line of the method head
    access: str  # "public" | "protected" | "private"
    body: str | None  # stripped inline body text, None for declarations
    body_line: int  # 1-based line where the body starts (== line if none)


@dataclasses.dataclass
class ClassInfo:
    name: str
    line: int  # 1-based line of the class head
    annotated: bool
    methods: list[Method]
    annotation: str | None = None  # which annotation string bound, if any

    def public_methods(self) -> set[str]:
        return {m.name for m in self.methods if m.access == "public"}


@dataclasses.dataclass
class FileScan:
    path: pathlib.Path
    raw_lines: list[str]
    stripped: list[str]  # comments/strings blanked, columns preserved
    comments: dict[int, str]  # 1-based line -> comment text on that line
    includes: list[Include]
    classes: list[ClassInfo]

    def stripped_text(self) -> str:
        return "\n".join(self.stripped)

    def line_of_offset(self, offset: int) -> tuple[int, int]:
        """(line, col), both 1-based, for an offset into stripped_text()."""
        upto = self.stripped_text()[:offset]
        line = upto.count("\n") + 1
        col = offset - (upto.rfind("\n") + 1) + 1
        return line, col


_STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"|\'(?:\\.|[^\'\\])*\'')


def strip_lines(raw_lines: list[str]) -> tuple[list[str], dict[int, str]]:
    """Blanks comments and string/char literals, preserving columns.

    Returns (stripped_lines, comments) where comments maps a 1-based line
    number to the concatenated comment text appearing on it (line comments
    and block comments; multi-line block comment interiors are recorded
    line by line).
    """
    stripped: list[str] = []
    comments: dict[int, str] = {}
    in_block = False
    for lineno, raw in enumerate(raw_lines, start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                comments[lineno] = comments.get(lineno, "") + line
                stripped.append(" " * len(line))
                continue
            comments[lineno] = comments.get(lineno, "") + line[:end]
            line = " " * (end + 2) + line[end + 2 :]
            in_block = False
        # Blank string/char literals first so a "//" inside one is inert,
        # then walk the comment markers left to right.
        code = list(_STRING_RE.sub(lambda m: " " * len(m.group(0)), line))
        i = 0
        while i < len(code) - 1:
            two = code[i] + code[i + 1]
            if two == "//":
                comments[lineno] = comments.get(lineno, "") + line[i + 2 :]
                for k in range(i, len(code)):
                    code[k] = " "
                break
            if two == "/*":
                end = "".join(code).find("*/", i + 2)
                if end < 0:
                    comments[lineno] = comments.get(lineno, "") + line[i + 2 :]
                    for k in range(i, len(code)):
                        code[k] = " "
                    in_block = True
                    break
                comments[lineno] = comments.get(lineno, "") + line[i + 2 : end]
                for k in range(i, end + 2):
                    code[k] = " "
                i = end + 2
                continue
            i += 1
        stripped.append("".join(code))
    return stripped, comments


_CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)")
_ACCESS_RE = re.compile(r"\b(public|protected|private)\s*:")
_METHOD_RE = re.compile(r"(~?[A-Za-z_]\w*)\s*\(")

# Keywords a _METHOD_RE hit can never be (control flow, declarators).
_NOT_METHODS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "static_assert", "decltype", "noexcept", "throw", "alignas", "new",
    "delete", "co_await", "co_return", "co_yield", "assert", "defined",
}


def _match_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] == '{' (-1: none)."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _parse_class_body(
    scan_text: str, body_start: int, body_end: int, default_access: str,
    line_of, out: list[Method],
) -> None:
    """Walks one class body (between braces), collecting depth-1 methods."""
    access = default_access
    i = body_start
    while i < body_end:
        c = scan_text[i]
        if c == "{":  # nested aggregate init / member class we did not claim
            end = _match_brace(scan_text, i)
            i = end if end > 0 else i + 1
            continue
        am = _ACCESS_RE.match(scan_text, i)
        if am is not None:
            access = am.group(1)
            i = am.end()
            continue
        mm = _METHOD_RE.match(scan_text, i)
        if mm is not None and mm.group(1) not in _NOT_METHODS:
            # Require the identifier to start a token (not `foo.bar(`).
            prev = scan_text[i - 1] if i > 0 else " "
            if prev.isalnum() or prev in "_.:>":
                i += 1
                continue
            name = mm.group(1)
            close = _find_paren_close(scan_text, mm.end() - 1)
            if close < 0:
                i = mm.end()
                continue
            head_line, _ = line_of(i)
            # Scan the trailer for `{` (definition), `;` (declaration) or
            # `=` (deleted/defaulted/pure) — whichever comes first.
            j = close
            while j < body_end and scan_text[j] not in "{;=":
                j += 1
            if j < body_end and scan_text[j] == "{":
                end = _match_brace(scan_text, j)
                if end < 0:
                    i = j + 1
                    continue
                body_line, _ = line_of(j)
                out.append(Method(name, head_line, access,
                                  scan_text[j:end], body_line))
                i = end
                continue
            out.append(Method(name, head_line, access, None, head_line))
            i = j + 1
            continue
        i += 1


def _find_paren_close(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _collect_classes(
    stripped: list[str], comments: dict[int, str],
    annotations: str | list[str],
) -> list[ClassInfo]:
    if isinstance(annotations, str):
        annotations = [annotations]
    text = "\n".join(stripped)

    # Precompute line starts for offset -> line translation.
    line_starts = [0]
    for line in stripped:
        line_starts.append(line_starts[-1] + len(line) + 1)

    def line_of(offset: int) -> tuple[int, int]:
        lo, hi = 0, len(line_starts) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid
        return lo + 1, offset - line_starts[lo] + 1

    # Longest annotation string wins per line, so "shard-partitioned" is not
    # shadowed by a shorter annotation that happens to be its substring.
    annotated_lines: dict[int, str] = {}
    for ln, c in comments.items():
        hits = [a for a in annotations if a in c]
        if hits:
            annotated_lines[ln] = max(hits, key=len)

    classes: list[ClassInfo] = []
    for m in _CLASS_RE.finditer(text):
        head_line, _ = line_of(m.start())
        # Annotation binds to the class whose head is within two lines below
        # it (allowing one doc-comment line in between).
        bound: str | None = None
        for ln in range(head_line - 2, head_line):
            if ln in annotated_lines:
                bound = annotated_lines[ln]
        annotated = bound is not None
        # Find the body opener; a `;` first means forward declaration.
        k = m.end()
        while k < len(text) and text[k] not in "{;":
            k += 1
        if k >= len(text) or text[k] == ";":
            continue
        end = _match_brace(text, k)
        if end < 0:
            continue
        kind = text[m.start() : m.start() + 6]
        default_access = "public" if kind.startswith("struct") else "private"
        methods: list[Method] = []
        _parse_class_body(text, k + 1, end - 1, default_access, line_of, methods)
        classes.append(ClassInfo(m.group(1), head_line, annotated, methods, bound))
    return classes


_OUT_OF_LINE_RE = re.compile(r"\b([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\(")


@dataclasses.dataclass
class OutOfLineDef:
    class_name: str
    method: str
    line: int  # 1-based line of the definition head
    body: str  # stripped body text


def out_of_line_definitions(scan: FileScan) -> list[OutOfLineDef]:
    """`Ret Class::method(...) ... { body }` definitions in this file."""
    text = scan.stripped_text()
    out: list[OutOfLineDef] = []
    for m in _OUT_OF_LINE_RE.finditer(text):
        close = _find_paren_close(text, m.end() - 1)
        if close < 0:
            continue
        j = close
        while j < len(text) and text[j] not in "{;=":
            j += 1
        if j >= len(text) or text[j] != "{":
            continue
        end = _match_brace(text, j)
        if end < 0:
            continue
        line, _ = scan.line_of_offset(m.start())
        out.append(OutOfLineDef(m.group(1), m.group(2), line, text[j:end]))
    return out


def scan_file(path: pathlib.Path, annotations: str | list[str]) -> FileScan:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    stripped, comments = strip_lines(raw_lines)
    includes = []
    for lineno, line in enumerate(raw_lines, start=1):
        im = _INCLUDE_RE.match(line)
        if im is not None:
            includes.append(Include(lineno, im.start(1), im.group(1)))
    classes = _collect_classes(stripped, comments, annotations)
    return FileScan(path, raw_lines, stripped, comments, includes, classes)
