"""Minimal SARIF 2.1.0 emitter for dvx_analyze findings (CI annotation)."""

from __future__ import annotations

import json

from .rules import Finding

_RULE_DESCRIPTIONS = {
    "layering": "Include-layering DAG violation (rules.toml [layering])",
    "shard-safety": "Unguarded mutation of shared-across-shards state",
    "report-determinism": "Unordered-container iteration feeding a report path",
    "determinism": "Banned nondeterminism source (former det-lint)",
}


def to_sarif(findings: list[Finding]) -> str:
    rule_ids = sorted({f.rule for f in findings} | set(_RULE_DESCRIPTIONS))
    doc = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "dvx_analyze",
                    "informationUri": "tools/dvx_analyze/rules.toml",
                    "rules": [{
                        "id": rid,
                        "shortDescription": {
                            "text": _RULE_DESCRIPTIONS.get(rid, rid)},
                    } for rid in rule_ids],
                }
            },
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }],
            } for f in findings],
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
