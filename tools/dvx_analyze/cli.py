"""dvx_analyze command line: static shard-safety & layering analysis.

Usage:
    python3 tools/dvx_analyze [roots...] [--rule GROUP]... [--sarif FILE]

Walks the configured roots (default: the [analyze].roots of rules.toml),
runs the enabled rule groups, and prints findings as
`path:line:col: [rule] message`. Exit status: 0 clean, 1 findings,
2 usage/configuration error — the same contract the determinism lint has
had since PR 3 (tools/lint_determinism.py is now a thin wrapper over this
with `--rule determinism`).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tomllib

from . import rules, sarif, tokenizer

_PKG_DIR = pathlib.Path(__file__).resolve().parent


def _load_config(path: pathlib.Path) -> dict:
    with open(path, "rb") as f:
        return tomllib.load(f)


def _collect_files(roots: list[str], extensions: list[str]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for root in roots:
        p = pathlib.Path(root)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            for ext in extensions:
                files.extend(sorted(p.rglob(f"*{ext}")))
        else:
            raise FileNotFoundError(root)
    return sorted(set(files))


def run(
    roots: list[str],
    groups: list[str],
    config_path: pathlib.Path,
    repo_root: pathlib.Path,
) -> rules.Context:
    """Scans `roots` with the rule groups in `groups`; returns the context."""
    config = _load_config(config_path)
    extensions = config.get("analyze", {}).get("extensions", [".hpp", ".cpp"])
    annotations = rules.shard_annotations(config)

    ctx = rules.Context(config, repo_root.resolve())
    files = _collect_files(roots, extensions)
    for f in files:
        ctx.scans[f] = tokenizer.scan_file(f, annotations)

    shard_groups = {g for g in groups if g in rules.SHARD_RULES}

    # Pass 1 (whole tree): annotated-class registry, so out-of-line
    # definitions in .cpp files can be matched to headers scanned later.
    if shard_groups:
        for scan in ctx.scans.values():
            rules.collect_annotated(ctx, scan)

    # Pass 2: the rules themselves, file by file in sorted order.
    for f in files:
        scan = ctx.scans[f]
        if "layering" in groups:
            rules.check_layering(ctx, scan)
        if shard_groups:
            rules.check_shard_safety_inline(ctx, scan, shard_groups)
            rules.check_shard_safety_out_of_line(ctx, scan, shard_groups)
        if "report-determinism" in groups:
            rules.check_report_determinism(ctx, scan)
        if "determinism" in groups:
            rules.check_determinism(ctx, scan)

    ctx.findings.sort(key=lambda x: (x.path, x.line, x.col, x.rule, x.message))
    return ctx


def main(argv: list[str], legacy_det_lint: bool = False) -> int:
    parser = argparse.ArgumentParser(
        prog="dvx_analyze", description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*",
                        help="files or directories to scan "
                             "(default: [analyze].roots of rules.toml)")
    parser.add_argument("--rule", dest="groups", action="append",
                        choices=rules.RULE_GROUPS,
                        help="enable only this rule group (repeatable; "
                             "default: all groups)")
    parser.add_argument("--rules", dest="config",
                        default=str(_PKG_DIR / "rules.toml"),
                        help="rule manifest (default: the package's rules.toml)")
    parser.add_argument("--sarif", help="also write findings as SARIF 2.1.0")
    parser.add_argument("--repo-root", default=str(_PKG_DIR.parent.parent),
                        help="repository root findings are reported relative to")
    args = parser.parse_args(argv)

    config_path = pathlib.Path(args.config)
    if not config_path.is_file():
        print(f"error: no rule manifest at {config_path}", file=sys.stderr)
        return 2
    groups = args.groups or list(rules.RULE_GROUPS)
    roots = args.roots
    if not roots:
        cfg = _load_config(config_path)
        repo = pathlib.Path(args.repo_root)
        roots = [str(repo / r) for r in cfg.get("analyze", {}).get("roots", ["src"])
                 if (repo / r).exists()]

    try:
        ctx = run(roots, groups, config_path, pathlib.Path(args.repo_root))
    except FileNotFoundError as err:
        print(f"error: no such file or directory: {err}", file=sys.stderr)
        return 2

    for f in ctx.findings:
        if legacy_det_lint and f.rule == "determinism":
            # Preserve the historical det-lint output shape for editors/CI
            # that match on it.
            print(f"{f.path}:{f.line}:{f.col}: {f.message}")
        else:
            print(f.text())

    suppressions = sorted({(s.path, s.line, s.rule, s.justification)
                           for s in ctx.suppressions})
    summary_stream = sys.stderr if ctx.findings else sys.stdout
    print(f"dvx-analyze: {len(ctx.findings)} finding(s), "
          f"{len(suppressions)} justified suppression(s), "
          f"{len(ctx.scans)} file(s) scanned "
          f"[{', '.join(groups)}]", file=summary_stream)
    for path, line, rule, justification in suppressions:
        print(f"  suppressed [{rule}] {path}:{line} -- {justification}",
              file=summary_stream)

    if args.sarif:
        pathlib.Path(args.sarif).write_text(sarif.to_sarif(ctx.findings),
                                            encoding="utf-8")

    return 1 if ctx.findings else 0
