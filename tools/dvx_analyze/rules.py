"""Rule implementations for dvx_analyze, driven by rules.toml.

Every rule yields Finding objects; the CLI sorts, prints and summarizes
them. Suppressions share one grammar:

    // dvx-analyze: allow(<rule>) -- <justification>
    // det-lint: allow(<token>) -- <justification>        (legacy, determinism)

A suppression WITHOUT a justification is itself a finding: the analyzer's
contract is that every exception in the tree explains itself.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

from . import tokenizer

ALLOW_RE = re.compile(r"dvx-analyze:\s*allow\(([^)]*)\)\s*(.*)")
DET_ALLOW_RE = re.compile(r"det-lint:\s*allow\(([^)]*)\)\s*(.*)")


@dataclasses.dataclass
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Suppression:
    path: str
    line: int
    rule: str
    justification: str


class Context:
    """Shared scan state: config, per-file scans, findings, suppressions."""

    def __init__(self, config: dict, repo_root: pathlib.Path):
        self.config = config
        self.repo_root = repo_root
        self.findings: list[Finding] = []
        self.suppressions: list[Suppression] = []
        self.scans: dict[pathlib.Path, tokenizer.FileScan] = {}
        # class name -> (ClassInfo, defining FileScan) for annotated classes
        self.annotated: dict[str, tuple[tokenizer.ClassInfo, tokenizer.FileScan]] = {}
        self._bare_seen: set[tuple[str, int, str]] = set()

    def rel(self, path: pathlib.Path) -> str:
        try:
            return path.resolve().relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.as_posix()

    def add(self, path: pathlib.Path, line: int, col: int, rule: str, msg: str) -> None:
        self.findings.append(Finding(self.rel(path), line, col, rule, msg))

    # --- suppression helpers -------------------------------------------------

    def allows(self, scan: tokenizer.FileScan, lines: range, rule: str) -> bool:
        """True when a justified allow(<rule>) appears on any line in `lines`.

        Unjustified allows are recorded as findings exactly once (keyed on
        the comment line) and do NOT suppress.
        """
        for ln in lines:
            comment = scan.comments.get(ln)
            if not comment:
                continue
            m = ALLOW_RE.search(comment)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            if rule not in rules and "all" not in rules:
                continue
            justification = m.group(2).strip().lstrip("-— ").strip()
            if not justification:
                self._flag_bare(scan, ln, rule)
                return False
            self.suppressions.append(
                Suppression(self.rel(scan.path), ln, rule, justification))
            return True
        return False

    def det_allowed(self, scan: tokenizer.FileScan, line: int, token: str) -> bool:
        """Legacy det-lint allow tag; same justification contract."""
        comment = scan.comments.get(line)
        if not comment:
            return False
        m = DET_ALLOW_RE.search(comment)
        if m is None:
            return False
        tokens = {t.strip() for t in m.group(1).split(",")}
        if token not in tokens and "all" not in tokens:
            return False
        justification = m.group(2).strip().lstrip("-— ").strip()
        if not justification:
            self._flag_bare(scan, line, "determinism")
            return False
        self.suppressions.append(
            Suppression(self.rel(scan.path), line, "determinism", justification))
        return True

    def _flag_bare(self, scan: tokenizer.FileScan, line: int, rule: str) -> None:
        rel = self.rel(scan.path)
        marker = (rel, line, "suppression")
        if marker in self._bare_seen:
            return
        self._bare_seen.add(marker)
        self.findings.append(Finding(
            rel, line, 1, rule,
            "suppression without a justification: append `-- <why this is safe>`"))


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------

def _reachable(layers: dict[str, list[str]]) -> dict[str, set[str]]:
    """Reflexive-transitive closure of the declared direct edges."""
    reach = {name: {name} for name in layers}
    changed = True
    while changed:
        changed = False
        for name, direct in layers.items():
            for dep in direct:
                addition = reach.get(dep, {dep}) - reach[name]
                if addition:
                    reach[name] |= addition
                    changed = True
    return reach


def layer_of(ctx: Context, rel_path: str) -> str | None:
    """The layer a repo-relative src/ path belongs to (None: unlayered)."""
    overrides = ctx.config.get("layering", {}).get("file_overrides", {})
    if rel_path in overrides:
        return overrides[rel_path]
    parts = pathlib.PurePosixPath(rel_path).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def check_layering(ctx: Context, scan: tokenizer.FileScan) -> None:
    cfg = ctx.config.get("layering", {})
    layers: dict[str, list[str]] = cfg.get("layers", {})
    if not layers:
        return
    rel = ctx.rel(scan.path)
    src_layer = layer_of(ctx, rel)
    if src_layer is None or src_layer not in layers:
        return  # tests/bench/tools are applications of the whole stack
    reach = _reachable(layers)[src_layer]
    forbidden = set(cfg.get("forbidden", {}).get(src_layer, []))
    for inc in scan.includes:
        target_layer = layer_of(ctx, "src/" + inc.target)
        if target_layer is None or target_layer not in layers:
            continue  # relative or non-layered include
        if target_layer in forbidden:
            if not ctx.allows(scan, range(inc.line - 1, inc.line + 1), "layering"):
                ctx.add(scan.path, inc.line, inc.col + 1, "layering",
                        f"forbidden include: layer '{src_layer}' must never "
                        f"include layer '{target_layer}' ({inc.target})")
            continue
        if target_layer not in reach:
            if not ctx.allows(scan, range(inc.line - 1, inc.line + 1), "layering"):
                ctx.add(scan.path, inc.line, inc.col + 1, "layering",
                        f"layer '{src_layer}' may not include layer "
                        f"'{target_layer}' ({inc.target}); allowed: "
                        f"{', '.join(sorted(reach))} (see rules.toml)")


# ---------------------------------------------------------------------------
# shard-safety / shard-partitioned
#
# Two flavours of one discipline, told apart by the annotation a class
# carries. `shared-across-shards`: one instance, any shard may touch it —
# every mutating public method needs a guard macro naming the single shared
# instance. `shard-partitioned`: state is owned per shard — every mutating
# public method needs a guard macro naming the OWNING shard's instance (the
# node/rank/source index), which the dynamic ShardAccessRecorder checks for
# cross-shard writes at runtime. The static check is the same either way;
# only the rule name (and thus the allow() tag) differs.
# ---------------------------------------------------------------------------

# rule name -> (rules.toml table, default annotation string)
SHARD_RULES = {
    "shard-safety": ("shard_safety", "dvx-analyze: shared-across-shards"),
    "shard-partitioned": ("shard_partitioned", "dvx-analyze: shard-partitioned"),
}


def shard_annotations(config: dict) -> list[str]:
    """The annotation strings the tokenizer should recognize."""
    return [config.get(key, {}).get("annotation", default)
            for key, default in SHARD_RULES.values()]


def _shard_rule_of(config: dict, cls: tokenizer.ClassInfo) -> tuple[str, dict] | None:
    """(rule name, rule config table) the class's annotation selects."""
    for rule, (key, default) in SHARD_RULES.items():
        cfg = config.get(key, {})
        if cls.annotation == cfg.get("annotation", default):
            return rule, cfg
    return None


# Mutation heuristics over a stripped method body: assignment (or compound
# assignment / increment) of a trailing-underscore member, or a mutating
# container-method call on one. Conservative on purpose — private helpers
# and locals never match, `==`/`<=`/`>=` never match.
_MUTATE_RES = [
    re.compile(r"\b[A-Za-z_]\w*_(?:\s*\[[^\]]*\])?\s*(?:=(?!=)|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--)"),
    re.compile(r"(?:\+\+|--)\s*[A-Za-z_]\w*_\b"),
    re.compile(r"\b[A-Za-z_]\w*_\s*(?:\.|->)\s*"
               r"(?:push_back|emplace_back|pop_back|push_front|pop_front|push|pop|"
               r"emplace|clear|erase|insert|resize|assign|swap|reserve|fetch_add|"
               r"fetch_sub|store|notify_all|notify_one)\s*\("),
]


def _first_mutation(body: str) -> int | None:
    """Offset of the first mutation in a stripped body, or None."""
    best: int | None = None
    for rx in _MUTATE_RES:
        m = rx.search(body)
        if m is not None and (best is None or m.start() < best):
            best = m.start()
    return best


def _is_guarded(body: str, guard_macros: list[str]) -> bool:
    compact = re.sub(r"\s+", "", body)
    return any(g + "(" in compact for g in guard_macros)


def collect_annotated(ctx: Context, scan: tokenizer.FileScan) -> None:
    for cls in scan.classes:
        if cls.annotated:
            ctx.annotated[cls.name] = (cls, scan)


def check_shard_safety_inline(
    ctx: Context, scan: tokenizer.FileScan, enabled: set[str] | None = None,
) -> None:
    """Inline method bodies of annotated classes (typically in headers)."""
    for cls in scan.classes:
        if not cls.annotated:
            continue
        selected = _shard_rule_of(ctx.config, cls)
        if selected is None:
            continue
        rule, cfg = selected
        if enabled is not None and rule not in enabled:
            continue
        guards = cfg.get("guard_macros", ["DVX_SHARD_GUARDED", "DVX_SHARD_ACCESS"])
        for m in cls.methods:
            if m.access != "public" or m.body is None:
                continue
            if m.name == cls.name or m.name.startswith("~"):
                continue  # construction precedes dispatch
            if m.name.startswith("operator"):
                continue
            _check_method_body(ctx, scan, cls, m.name, m.line, m.body,
                               guards, rule)


def check_shard_safety_out_of_line(
    ctx: Context, scan: tokenizer.FileScan, enabled: set[str] | None = None,
) -> None:
    """`Class::method` definitions (typically in .cpp files)."""
    for d in tokenizer.out_of_line_definitions(scan):
        entry = ctx.annotated.get(d.class_name)
        if entry is None:
            continue
        cls, _ = entry
        selected = _shard_rule_of(ctx.config, cls)
        if selected is None:
            continue
        rule, cfg = selected
        if enabled is not None and rule not in enabled:
            continue
        guards = cfg.get("guard_macros", ["DVX_SHARD_GUARDED", "DVX_SHARD_ACCESS"])
        if d.method == d.class_name or d.method.startswith("~"):
            continue
        if d.method not in cls.public_methods():
            continue  # private/protected mutators: guarded surface above them
        _check_method_body(ctx, scan, cls, d.method, d.line, d.body, guards, rule)


def _check_method_body(
    ctx: Context, scan: tokenizer.FileScan, cls: tokenizer.ClassInfo,
    method: str, head_line: int, body: str, guards: list[str], rule: str,
) -> None:
    mut = _first_mutation(body)
    if mut is None:
        return
    if _is_guarded(body, guards):
        return
    # Suppression binds to the method head: the line before it, the head
    # line itself, or the first line of the body.
    if ctx.allows(scan, range(head_line - 1, head_line + 2), rule):
        return
    kind = (cls.annotation or "").split(": ")[-1] or "annotated"
    ctx.add(scan.path, head_line, 1, rule,
            f"public method '{cls.name}::{method}' mutates state of a "
            f"{kind} class without {guards[0]}(...) "
            f"(or a justified `dvx-analyze: allow({rule})` within one "
            "line of the method head)")


# ---------------------------------------------------------------------------
# report-determinism
# ---------------------------------------------------------------------------

def check_report_determinism(ctx: Context, scan: tokenizer.FileScan) -> None:
    cfg = ctx.config.get("report_determinism", {})
    pattern = cfg.get("container_pattern")
    if not pattern:
        return
    decl_re = re.compile(pattern + r"\s*<[^;{]*>\s+([A-Za-z_]\w*)")
    text = scan.stripped_text()
    names = {m.group(1) for m in decl_re.finditer(text)}
    if not names:
        return
    for name in sorted(names):
        for m in re.finditer(r"for\s*\([^();]*:\s*" + re.escape(name) + r"\b", text):
            line, col = scan.line_of_offset(m.start())
            if ctx.allows(scan, range(line - 1, line + 1), "report-determinism"):
                continue
            ctx.add(scan.path, line, col, "report-determinism",
                    f"range-for over unordered container '{name}': "
                    "implementation-defined iteration order leaks into any "
                    "report it feeds; sort into a vector or use std::map")


# ---------------------------------------------------------------------------
# determinism (the folded-in det-lint bans)
# ---------------------------------------------------------------------------

def check_determinism(ctx: Context, scan: tokenizer.FileScan) -> None:
    banned = ctx.config.get("determinism", {}).get("banned", [])
    for lineno, code in enumerate(scan.stripped, start=1):
        for entry in banned:
            for m in re.finditer(entry["pattern"], code):
                if ctx.det_allowed(scan, lineno, entry["token"]):
                    continue
                if ctx.allows(scan, range(lineno, lineno + 1), "determinism"):
                    continue
                ctx.add(scan.path, lineno, m.start() + 1, "determinism",
                        f"banned token '{entry['token']}': {entry['reason']}")


RULE_GROUPS = ["layering", "shard-safety", "shard-partitioned",
               "report-determinism", "determinism"]
