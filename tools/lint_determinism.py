#!/usr/bin/env python3
"""Ban nondeterminism sources from the simulator sources.

Since PR 8 this is a thin wrapper over the dvx_analyze rule engine
(tools/dvx_analyze, `determinism` rule group): the ban table lives in
tools/dvx_analyze/rules.toml and the engine's comment-aware tokenizer does
the matching. The CLI contract is unchanged — same roots arguments (default
`src tests`), same `// det-lint: allow(<token>) -- <justification>`
suppression tags, same exit status (0 clean, 1 findings, 2 usage error),
and findings still print as `path:line:col: banned token '<token>':
<reason>` so editors, the `lint_determinism` ctest, and CI keep working
without edits.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from dvx_analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:] or ["src", "tests"]
    sys.exit(main(["--rule", "determinism", *argv], legacy_det_lint=True))
