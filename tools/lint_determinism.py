#!/usr/bin/env python3
"""Ban nondeterminism sources from the simulator sources.

The whole repo's value rests on bit-reproducible runs: the same seed must
produce the same virtual-time trajectory and byte-identical BENCH_*.json
documents on every host. This lint rejects constructs that silently break
that promise:

  * `rand(` / `srand(`          — C PRNG, global hidden state, impl-defined.
  * `time(` / `clock(`          — wall-clock leaking into simulation logic.
  * `std::random_device`        — hardware entropy, different every run.
  * `std::chrono::system_clock` / `steady_clock` / `high_resolution_clock`
                                — wall-clock time (only the bench driver may
                                  measure host time, behind an allow tag).
  * `std::unordered_map` / `std::unordered_set` / `std::unordered_multimap` /
    `std::unordered_multiset`   — iteration order is implementation-defined;
                                  any loop over one that feeds output or
                                  floating-point accumulation is a
                                  nondeterminism bug. Use std::map/std::set
                                  or sort before iterating.

A finding on a line containing `// det-lint: allow(<token>)` is accepted:
the author is asserting the use cannot influence simulated behavior or any
report (e.g. host-side wall-clock progress display in the bench driver).

Exit status: 0 clean, 1 findings, 2 usage error. Findings print as
`path:line:col: banned token '<token>': <reason>` so editors and CI
annotate them directly.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# token -> (regex, reason)
BANNED: dict[str, tuple[str, str]] = {
    "rand(": (
        r"(?<![\w:.])s?rand\s*\(",
        "C PRNG with hidden global state; use sim::Xoshiro256 / SplitMix64",
    ),
    "time(": (
        r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&|\))",
        "wall-clock time in simulation logic; use sim::Engine::now()",
    ),
    "clock(": (
        r"(?<![\w:.])clock\s*\(\s*\)",
        "process CPU clock; use sim::Engine::now()",
    ),
    "std::random_device": (
        r"std\s*::\s*random_device",
        "hardware entropy is different every run; derive seeds via SplitMix64",
    ),
    "system_clock": (
        r"std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|high_resolution_clock)",
        "host wall-clock; only host-side tooling may use it, behind an allow tag",
    ),
    "std::unordered_*": (
        r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\b",
        "iteration order is implementation-defined and leaks into reports; "
        "use std::map/std::set or sort before iterating",
    ),
}

ALLOW_RE = re.compile(r"//\s*det-lint:\s*allow\(([^)]*)\)")

# Strings/comments generate false positives (e.g. this lint's own tables, or
# a doc comment mentioning rand()). Strip them before matching, preserving
# column positions by replacing with spaces.
_STRIP_RE = re.compile(
    r"""
      //[^\n]*            # line comment
    | /\*.*?\*/           # block comment (single line; multi handled by state)
    | "(?:\\.|[^"\\])*"   # string literal
    | '(?:\\.|[^'\\])*'   # char literal
    """,
    re.VERBOSE,
)


def _blank(match: re.Match[str]) -> str:
    return " " * len(match.group(0))


def scan_file(path: pathlib.Path) -> list[tuple[int, int, str, str]]:
    """Returns (line, col, token, reason) findings for one file."""
    findings: list[tuple[int, int, str, str]] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return findings
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = " " * (end + 2) + line[end + 2 :]
            in_block_comment = False
        allow = ALLOW_RE.search(raw)
        allowed = {t.strip() for t in allow.group(1).split(",")} if allow else set()
        code = _STRIP_RE.sub(_blank, line)
        opener = code.find("/*")
        if opener >= 0:  # unterminated block comment opens here
            code = code[:opener]
            in_block_comment = True
        for token, (pattern, reason) in BANNED.items():
            for m in re.finditer(pattern, code):
                if token in allowed or "all" in allowed:
                    continue
                findings.append((lineno, m.start() + 1, token, reason))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to scan (default: src tests)",
    )
    args = parser.parse_args(argv)

    files: list[pathlib.Path] = []
    for root in args.roots:
        p = pathlib.Path(root)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(
                f
                for ext in (".hpp", ".cpp", ".h", ".cc")
                for f in sorted(p.rglob(f"*{ext}"))
            )
        else:
            print(f"error: no such file or directory: {root}", file=sys.stderr)
            return 2

    total = 0
    for f in sorted(set(files)):
        for lineno, col, token, reason in scan_file(f):
            print(f"{f}:{lineno}:{col}: banned token '{token}': {reason}")
            total += 1
    if total:
        print(
            f"\ndet-lint: {total} finding(s). Suppress a justified use with "
            "`// det-lint: allow(<token>)` on the same line.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
