#!/usr/bin/env python3
"""Compare a dvx_perf run against the committed BENCH_PERF.json baseline.

Usage: check_perf_regression.py MEASURED_JSON [BASELINE_JSON] [--factor F]

Both files must be dvx-perf/v1 documents. The check fails when any benchmark
present in the baseline is missing from the measured run, or when its measured
rate falls below baseline_rate / F. The default factor (2.5) is deliberately
generous: CI machines are shared and noisy, and this gate exists to catch
order-of-magnitude regressions (an accidental O(n) reintroduced on a hot
path), not single-digit drift. Rates above the baseline are always fine.
"""

import argparse
import json
import sys

DEFAULT_FACTOR = 2.5
REQUIRED_BENCH_KEYS = ("name", "unit", "work", "seconds", "rate")


def load_perf_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "dvx-perf/v1":
        sys.exit(f"{path}: schema is {doc.get('schema')!r}, expected 'dvx-perf/v1'")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        sys.exit(f"{path}: 'benchmarks' must be a non-empty list")
    for b in benches:
        for key in REQUIRED_BENCH_KEYS:
            if key not in b:
                sys.exit(f"{path}: benchmark entry {b.get('name', '?')!r} lacks {key!r}")
        if not isinstance(b["rate"], (int, float)) or b["rate"] <= 0:
            sys.exit(f"{path}: benchmark {b['name']!r} has non-positive rate")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="dvx-perf/v1 JSON from the current run")
    parser.add_argument("baseline", nargs="?", default="BENCH_PERF.json",
                        help="committed baseline (default: BENCH_PERF.json)")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help=f"fail when measured < baseline/FACTOR "
                             f"(default {DEFAULT_FACTOR})")
    args = parser.parse_args()
    if args.factor < 1.0:
        sys.exit("--factor must be >= 1.0")

    measured = {b["name"]: b for b in load_perf_doc(args.measured)["benchmarks"]}
    baseline = load_perf_doc(args.baseline)["benchmarks"]

    failures = []
    for base in baseline:
        name = base["name"]
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        if got["unit"] != base["unit"]:
            failures.append(f"{name}: unit changed {base['unit']!r} -> {got['unit']!r}")
            continue
        floor = base["rate"] / args.factor
        verdict = "ok" if got["rate"] >= floor else "FAIL"
        print(f"{name}: measured {got['rate']:.0f} {got['unit']} "
              f"(baseline {base['rate']:.0f}, floor {floor:.0f}) {verdict}")
        if got["rate"] < floor:
            failures.append(f"{name}: {got['rate']:.0f} < floor {floor:.0f} "
                            f"(baseline {base['rate']:.0f} / {args.factor})")

    if failures:
        print("\nperf regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
