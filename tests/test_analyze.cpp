// Tests for the deterministic shard-access race detector (DESIGN.md §13).
//
// This translation unit pins DVX_CHECK_LEVEL to 2 so its own
// DVX_SHARD_ACCESS sites are compiled in regardless of the build-wide
// level (per-TU levels are ODR-clean, same as test_check_level0.cpp).
// Assertions about instrumentation living inside the *libraries* are gated
// on check::compiled_level() >= 2 — the level the libraries were actually
// built at — and GTEST_SKIP otherwise.

#undef DVX_CHECK_LEVEL
#define DVX_CHECK_LEVEL 2

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/recorder.hpp"
#include "analyze/shard_access.hpp"
#include "check/check.hpp"
#include "dvnet/cycle_switch.hpp"
#include "runtime/cluster.hpp"
#include "sim/engine.hpp"

namespace {

namespace analyze = dvx::analyze;
namespace check = dvx::check;
namespace dvnet = dvx::dvnet;
namespace sim = dvx::sim;

constexpr sim::Duration kLookahead = 100;

void configure(sim::Engine& engine, int shards) {
  engine.configure_sharding(
      {.shards = shards, .threads = 1, .lookahead = kLookahead});
}

void touch_at(sim::Engine& engine, sim::Time t, int shard, const char* object,
              int instance, bool write) {
  engine.schedule(
      t,
      [object, instance, write] {
        if (write) {
          DVX_SHARD_ACCESS(object, instance, kWrite);
        } else {
          DVX_SHARD_ACCESS(object, instance, kRead);
        }
      },
      shard);
}

TEST(ShardAccessRecorder, CrossShardWriteCaughtWithCorrectTuple) {
  analyze::ShardAccessRecorder recorder;
  sim::Engine engine;
  configure(engine, 2);
  {
    analyze::ScopedShardRecorder scoped(recorder);
    // Same lookahead window [0, 100): shard 0 writes at t=10, shard 1 at
    // t=20. This is exactly the aliasing that blocks shards > 1.
    touch_at(engine, 10, 0, "test.Obj", 7, /*write=*/true);
    touch_at(engine, 20, 1, "test.Obj", 7, /*write=*/true);
    engine.run();
  }
  const auto conflicts = recorder.conflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  const analyze::Conflict& c = conflicts.front();
  EXPECT_EQ(c.object, "test.Obj");
  EXPECT_EQ(c.instance, 7);
  EXPECT_EQ(c.shards, (std::vector<int>{0, 1}));
  // Sharded windows are 1-based (0 is reserved for "outside dispatch").
  EXPECT_GE(c.window, 1u);
  ASSERT_EQ(c.per_shard.size(), 2u);
  for (const auto& w : c.per_shard) {
    EXPECT_EQ(w.epoch, c.epoch);
    EXPECT_EQ(w.window, c.window);
    EXPECT_EQ(w.writes, 1u);
  }
}

TEST(ShardAccessRecorder, DifferentWindowsDoNotConflict) {
  analyze::ShardAccessRecorder recorder;
  sim::Engine engine;
  configure(engine, 2);
  {
    analyze::ScopedShardRecorder scoped(recorder);
    // 10 lookahead widths apart: both shards touch the object, but never
    // inside the same conservative window — windowed ownership hand-off is
    // precisely what the partitioning plan allows.
    touch_at(engine, 10, 0, "test.Obj", 0, /*write=*/true);
    touch_at(engine, 10 + 10 * kLookahead, 1, "test.Obj", 0, /*write=*/true);
    engine.run();
  }
  EXPECT_TRUE(recorder.conflicts().empty());
  const auto objects = recorder.objects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects.front().writes, 2u);
  EXPECT_EQ(objects.front().shards.size(), 2u);  // both shards, no overlap
}

TEST(ShardAccessRecorder, ReadOnlySharingIsNotAConflict) {
  analyze::ShardAccessRecorder recorder;
  sim::Engine engine;
  configure(engine, 2);
  {
    analyze::ScopedShardRecorder scoped(recorder);
    touch_at(engine, 10, 0, "test.Table", 0, /*write=*/false);
    touch_at(engine, 20, 1, "test.Table", 0, /*write=*/false);
    engine.run();
  }
  EXPECT_TRUE(recorder.conflicts().empty());
  const std::string report = recorder.report_json();
  // A never-written object must not appear in the blocking list.
  EXPECT_EQ(report.find("\"blocking_shards_gt1\": [\"test.Table"),
            std::string::npos)
      << report;
}

TEST(ShardAccessRecorder, CleanSingleShardSweepHasZeroConflicts) {
  analyze::ShardAccessRecorder recorder;
  sim::Engine engine;
  configure(engine, 1);
  {
    analyze::ScopedShardRecorder scoped(recorder);
    for (int i = 0; i < 16; ++i) {
      touch_at(engine, 10 * i, -1, "test.Obj", 0, /*write=*/true);
    }
    engine.run();
  }
  EXPECT_GE(recorder.total_records(), 16u);
  EXPECT_TRUE(recorder.conflicts().empty());
}

TEST(ShardAccessRecorder, EpochsSeparateSequentialRuns) {
  analyze::ShardAccessRecorder recorder;
  analyze::ScopedShardRecorder scoped(recorder);
  {
    // Run A: shard 0 writes in its first window.
    sim::Engine engine;
    configure(engine, 2);
    touch_at(engine, 10, 0, "test.Obj", 0, /*write=*/true);
    engine.run();
  }
  analyze::next_epoch();
  {
    // Run B restarts the engine's window counter at the same index; shard 1
    // writes there. Without epochs these would alias into a fake conflict.
    sim::Engine engine;
    configure(engine, 2);
    touch_at(engine, 10, 1, "test.Obj", 0, /*write=*/true);
    engine.run();
  }
  EXPECT_TRUE(recorder.conflicts().empty());
}

TEST(ShardAccessRecorder, ReportIsTaggedAndByteDeterministic) {
  auto run_once = [](analyze::ShardAccessRecorder& recorder) {
    sim::Engine engine;
    configure(engine, 2);
    analyze::ScopedShardRecorder scoped(recorder);
    touch_at(engine, 10, 0, "test.A", 1, /*write=*/true);
    touch_at(engine, 20, 1, "test.A", 1, /*write=*/true);
    touch_at(engine, 30, 1, "test.B", -1, /*write=*/false);
    engine.run();
  };
  analyze::ShardAccessRecorder r1;
  analyze::ShardAccessRecorder r2;
  run_once(r1);
  run_once(r2);
  const std::string report = r1.report_json();
  EXPECT_EQ(report, r2.report_json());
  EXPECT_NE(report.find("\"schema\": \"dvx-analyze/v1\""), std::string::npos);
  EXPECT_NE(report.find("\"test.A\""), std::string::npos);
  EXPECT_NE(report.find("\"blocking_shards_gt1\""), std::string::npos);
}

TEST(ShardAccessRecorder, PresenceDoesNotPerturbTheSimulation) {
  // The recorder observes and never steers: the virtual-time trajectory of
  // an instrumented program must be identical with and without one.
  auto run_program = [](bool with_recorder) {
    analyze::ShardAccessRecorder recorder;
    std::vector<std::pair<sim::Time, int>> trace;
    sim::Engine engine;
    configure(engine, 2);
    std::optional<analyze::ScopedShardRecorder> scoped;
    if (with_recorder) scoped.emplace(recorder);
    for (int i = 0; i < 64; ++i) {
      const int shard = i % 2;
      engine.schedule(
          7 * i, [&trace, &engine, i] {
            DVX_SHARD_ACCESS("test.Obj", 0, kWrite);
            trace.emplace_back(engine.now(), i);
          },
          shard);
    }
    const sim::Time finished = engine.run();
    return std::pair{finished, trace};
  };
  EXPECT_EQ(run_program(false), run_program(true));
}

TEST(ShardAccessRecorder, LibraryInstrumentationFeedsTheRecorder) {
  // The fabric libraries carry DVX_SHARD_ACCESS sites (CycleSwitch, VIC,
  // ib/torus, MpiWorld) — but compiled in only when the *build* is at
  // check level 2 (cmake -DDVX_CHECK_LEVEL=2), which the CI analyze job
  // uses. At lower build levels this test has nothing to observe.
  if (check::compiled_level() < 2) {
    GTEST_SKIP() << "libraries built with DVX_CHECK_LEVEL "
                 << check::compiled_level()
                 << "; DVX_SHARD_ACCESS is compiled out below 2";
  }
  analyze::ShardAccessRecorder recorder;
  {
    analyze::ScopedShardRecorder scoped(recorder);
    dvnet::CycleSwitch sw(dvnet::Geometry{4, 2});
    sw.inject(0, 3);
    ASSERT_TRUE(sw.drain(1000));
  }
  const auto objects = recorder.objects();
  bool saw_switch = false;
  for (const auto& o : objects) {
    if (o.object == "dvnet.CycleSwitch") {
      saw_switch = true;
      EXPECT_GT(o.writes, 0u);
      // Outside engine dispatch: everything lands in the shard -1 bucket,
      // which by construction can never conflict.
      ASSERT_FALSE(o.shards.empty());
      EXPECT_EQ(o.shards.front().shard, -1);
    }
  }
  EXPECT_TRUE(saw_switch);
  EXPECT_TRUE(recorder.conflicts().empty());
}

TEST(ShardAccessRecorder, ShardedClusterRunsHaveZeroConflicts) {
  // The ISSUE 10 acceptance gate at unit-test cost: real multi-rank
  // programs through runtime::Cluster at shards = 4 must produce zero
  // cross-shard write conflicts on every fabric — the partitioned models
  // stage cross-shard effects and resolve them on the coordinator, so no
  // two shards ever write one instance inside a window.
  if (check::compiled_level() < 2) {
    GTEST_SKIP() << "libraries built with DVX_CHECK_LEVEL "
                 << check::compiled_level()
                 << "; DVX_SHARD_ACCESS is compiled out below 2";
  }
  namespace runtime = dvx::runtime;
  using sim::Coro;
  analyze::ShardAccessRecorder recorder;
  {
    analyze::ScopedShardRecorder scoped(recorder);
    runtime::ClusterConfig cfg;
    cfg.nodes = 8;
    cfg.engine_threads = 4;
    runtime::Cluster dv_cluster(cfg);
    dv_cluster.run_dv(
        [](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
          node.roi_begin();
          for (int i = 0; i < 3; ++i) {
            co_await ctx.send_fifo((ctx.rank() + 1) % ctx.nodes(),
                                   static_cast<std::uint64_t>(ctx.rank()));
            co_await ctx.barrier();
          }
          node.roi_end();
        });
    recorder.advance_epoch();
    for (const auto fabric : {runtime::MpiFabric::kIb, runtime::MpiFabric::kTorus}) {
      cfg.mpi_fabric = fabric;
      runtime::Cluster mpi_cluster(cfg);
      mpi_cluster.run_mpi(
          [](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
            node.roi_begin();
            const std::uint64_t payload = static_cast<std::uint64_t>(comm.rank());
            co_await comm.send((comm.rank() + 1) % comm.size(), 0,
                               std::vector<std::uint64_t>(1, payload));
            co_await comm.recv();
            co_await comm.allreduce_sum(payload);
            node.roi_end();
          });
      recorder.advance_epoch();
    }
  }
  EXPECT_GT(recorder.total_records(), 0u);
  const auto conflicts = recorder.conflicts();
  EXPECT_TRUE(conflicts.empty());
  for (const auto& c : conflicts) {
    ADD_FAILURE() << "conflict: " << c.object << " instance " << c.instance
                  << " epoch " << c.epoch << " window " << c.window;
  }
}

}  // namespace
