// dvx::check framework tests (DESIGN.md §7).
//
// This TU forces DVX_CHECK_LEVEL=2 so the SOON macros are live regardless
// of the build's global level; test_check_level0.cpp in the same binary
// forces level 0 to prove the macros compile out. The libraries themselves
// are compiled at the build's global level, so tests that rely on checks
// inside libdvx_sim/libdvx_dvnet skip themselves when that level is 0.

#undef DVX_CHECK_LEVEL
#define DVX_CHECK_LEVEL 2
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dvnet/cycle_switch.hpp"
#include "dvnet/geometry.hpp"
#include "runtime/report.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dvx_test_check {
int level0_macro_level();
int level0_run_all_macros();
}  // namespace dvx_test_check

namespace {

namespace check = dvx::check;
namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
using sim::Coro;
using sim::Engine;

// ---------------------------------------------------------------------------
// Level gating
// ---------------------------------------------------------------------------

TEST(CheckLevels, ThisTuIsLevel2AndSoonMacrosAreLive) {
  EXPECT_EQ(DVX_CHECK_LEVEL, 2);
  EXPECT_THROW(DVX_CHECK_SOON(false), check::CheckError);
  EXPECT_THROW(DVX_CHECK_SOON_EQ(1, 2), check::CheckError);
}

TEST(CheckLevels, LevelZeroTuCompilesEverythingOut) {
  EXPECT_EQ(dvx_test_check::level0_macro_level(), 0);
  // Failing conditions with side effects: nothing throws, nothing runs.
  EXPECT_EQ(dvx_test_check::level0_run_all_macros(), 0);
}

TEST(CheckLevels, LiveConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto once = [&] {
    ++evaluations;
    return true;
  };
  DVX_CHECK(once());
  EXPECT_EQ(evaluations, 1);
}

// ---------------------------------------------------------------------------
// Failure contents
// ---------------------------------------------------------------------------

TEST(CheckFailure, CarriesExpressionFileLineAndStreamedMessage) {
  try {
    DVX_CHECK(2 + 2 == 5) << "streamed " << 42 << " ok";
    FAIL() << "DVX_CHECK(false) must throw";
  } catch (const check::CheckError& err) {
    const check::Failure& f = err.failure();
    EXPECT_EQ(f.expression, "2 + 2 == 5");
    EXPECT_NE(f.file.find("test_check.cpp"), std::string::npos);
    EXPECT_GT(f.line, 0);
    EXPECT_EQ(f.message, "streamed 42 ok");
    EXPECT_NE(std::string(err.what()).find("2 + 2 == 5"), std::string::npos);
  }
}

TEST(CheckFailure, EqReportsBothOperands) {
  try {
    const int lhs = 3, rhs = 7;
    DVX_CHECK_EQ(lhs, rhs) << "context. ";
    FAIL() << "DVX_CHECK_EQ must throw";
  } catch (const check::CheckError& err) {
    const std::string msg = err.failure().message;
    EXPECT_NE(msg.find("lhs = 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rhs = 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("context. "), std::string::npos) << msg;
  }
}

check::Failure g_captured;  // written by the capturing handler below

void capture_handler(const check::Failure& failure) { g_captured = failure; }

TEST(CheckFailure, HandlerSeesSimTimeNodeAndBackendContext) {
  if (check::compiled_level() < 1) {
    GTEST_SKIP() << "libdvx_sim built at level 0: no sim-time stamping";
  }
  const check::ScopedHandler swap(&capture_handler);
  g_captured = check::Failure{};
  Engine e;
  e.spawn([](Engine& eng) -> Coro<void> {
    co_await eng.delay(sim::us(3));
    const check::ScopedNode node(7);
    const check::ScopedBackend backend("dv");
    DVX_CHECK(false) << "deliberate";
  }(e));
  EXPECT_THROW(e.run(), check::CheckError);
  EXPECT_EQ(g_captured.sim_time_ps, sim::us(3));
  EXPECT_EQ(g_captured.node, 7);
  EXPECT_EQ(g_captured.backend, "dv");
  EXPECT_EQ(g_captured.message, "deliberate");
}

TEST(CheckFailure, ContextIsScopedAndRestored) {
  EXPECT_EQ(check::context().node, -1);
  {
    const check::ScopedNode outer(3);
    EXPECT_EQ(check::context().node, 3);
    {
      const check::ScopedNode inner(5);
      EXPECT_EQ(check::context().node, 5);
    }
    EXPECT_EQ(check::context().node, 3);
  }
  EXPECT_EQ(check::context().node, -1);
}

TEST(CheckFailure, JsonReportCarriesTheContextFields) {
  check::Failure f;
  f.expression = "a == b";
  f.file = "x.cpp";
  f.line = 12;
  f.message = "why";
  f.sim_time_ps = 1234;
  f.node = 3;
  f.backend = "dv";
  const std::string doc = dvx::runtime::check_failure_json(f).dump();
  EXPECT_NE(doc.find("\"schema\": \"dvx-check/v1\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"expression\": \"a == b\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"sim_time_ps\": 1234"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"node\": 3"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"backend\": \"dv\""), std::string::npos) << doc;
}

// ---------------------------------------------------------------------------
// Engine: out-of-order events and the audit cadence
// ---------------------------------------------------------------------------

TEST(EngineChecks, SchedulingIntoThePastIsCaught) {
  if (check::compiled_level() < 1) {
    GTEST_SKIP() << "libdvx_sim built at level 0";
  }
  Engine e;
  e.schedule(sim::us(1), [&e] {
    e.schedule(0, [] {});  // now() is 1us: this event is out of order
  });
  EXPECT_THROW(e.run(), check::CheckError);
}

class CountingAuditor : public check::InvariantAuditor {
 public:
  void audit(std::int64_t now_ps) override {
    ++calls;
    last_time = now_ps;
  }
  int calls = 0;
  std::int64_t last_time = -1;
};

TEST(EngineChecks, AuditorRunsAtTheConfiguredCadenceAndAtDrain) {
  Engine e;
  CountingAuditor auditor;
  e.add_auditor(&auditor);
  e.set_audit_interval(2);
  for (int i = 1; i <= 6; ++i) {
    e.schedule(sim::us(i), [] {});
  }
  e.run();
  // Sweeps after events 2, 4, 6 plus the drain-time sweep.
  EXPECT_EQ(auditor.calls, 4);
  EXPECT_EQ(e.audits_run(), 4u);
  EXPECT_EQ(auditor.last_time, sim::us(6));
  e.remove_auditor(&auditor);
  e.schedule(sim::us(7), [] {});
  e.run();
  EXPECT_EQ(auditor.calls, 4);  // removed: no further sweeps observed
}

TEST(EngineChecks, DefaultCadenceFollowsTheLibraryCheckLevel) {
  Engine e;
  EXPECT_EQ(e.audit_interval(), check::default_audit_interval());
  if (check::compiled_level() >= 2) {
    EXPECT_GT(e.audit_interval(), 0u);
  } else {
    EXPECT_EQ(e.audit_interval(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Seeded fault: a silently dropped packet must not survive an audit
// ---------------------------------------------------------------------------

TEST(CycleSwitchChecks, SeededPacketDropIsCaughtByConservationAudit) {
  if (check::compiled_level() < 1) {
    GTEST_SKIP() << "libdvx_dvnet built at level 0";
  }
  dvnet::Geometry g{8, 4};
  dvnet::CycleSwitch sw(g);
  for (int p = 0; p < g.ports(); ++p) sw.inject(p, (p + 3) % g.ports());
  sw.step();
  sw.step();
  ASSERT_GT(sw.in_flight(), 0u);
  sw.audit_invariants();  // healthy fabric: no throw
  ASSERT_TRUE(sw.corrupt_drop_one_for_test());
  EXPECT_THROW(sw.audit_invariants(), check::CheckError);
}

TEST(CycleSwitchChecks, SeededDropIsCaughtThroughTheEngineAuditorHook) {
  if (check::compiled_level() < 1) {
    GTEST_SKIP() << "libdvx_dvnet built at level 0";
  }
  dvnet::Geometry g{8, 4};
  dvnet::CycleSwitch sw(g);
  Engine e;
  e.add_auditor(&sw);
  e.set_audit_interval(1);  // audit after every event
  e.schedule(sim::us(1), [&sw] {
    for (int p = 0; p < sw.geometry().ports(); ++p) sw.inject(p, (p + 1) % 8);
    sw.step();
    sw.step();
    ASSERT_TRUE(sw.corrupt_drop_one_for_test());
  });
  EXPECT_THROW(e.run(), check::CheckError);
}

TEST(CycleSwitchChecks, HealthyTrafficPassesTheFullAudit) {
  dvnet::Geometry g{16, 4};
  dvnet::CycleSwitch sw(g);
  for (int burst = 0; burst < 4; ++burst) {
    for (int p = 0; p < g.ports(); ++p) {
      sw.inject(p, (p + 11 * burst + 1) % g.ports());
    }
  }
  ASSERT_TRUE(sw.drain());  // drain() audits at level >= 1 internally
  sw.audit_invariants();
  EXPECT_EQ(sw.injected_total(), sw.delivered_total());
  EXPECT_EQ(sw.injected_total(), static_cast<std::uint64_t>(4 * g.ports()));
}

}  // namespace
