// Cross-layer integration and property tests: distributed transpose
// identities, collective stress under sense reversal, determinism across
// the whole stack, tracer plumbing, and model cross-validation.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft1d.hpp"
#include "apps/gups.hpp"
#include "apps/transpose.hpp"
#include "dvapi/collectives.hpp"
#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "runtime/cluster.hpp"
#include "kernels/fft.hpp"
#include "sim/rng.hpp"

namespace sim = dvx::sim;
namespace apps = dvx::apps;
namespace dvapi = dvx::dvapi;
namespace runtime = dvx::runtime;

using sim::Coro;

namespace {

runtime::Cluster make_cluster(int nodes, bool trace = false) {
  return runtime::Cluster(runtime::ClusterConfig{.nodes = nodes, .trace = trace});
}

std::vector<dvx::kernels::Complex> random_matrix(std::int64_t elems, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<dvx::kernels::Complex> m(static_cast<std::size_t>(elems));
  for (auto& z : m) z = dvx::kernels::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return m;
}

class TransposeProperty : public ::testing::TestWithParam<int> {};

// Property: transposing twice returns the original distribution, on both
// backends, for non-square shapes.
TEST_P(TransposeProperty, DoubleTransposeIsIdentity) {
  const int p = GetParam();
  const std::int64_t rows = 16 * p, cols = 8 * p;

  // MPI backend.
  {
    auto cluster = make_cluster(p);
    double err = 0.0;
    cluster.run_mpi([&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
      const auto mine =
          random_matrix(rows / p * cols, 100 + static_cast<unsigned>(comm.rank()));
      auto t = co_await apps::transpose_mpi(comm, node, mine, rows, cols, 1);
      auto tt = co_await apps::transpose_mpi(comm, node, t, cols, rows, 2);
      err = std::max(err, dvx::kernels::max_abs_diff(tt, mine));
    });
    EXPECT_EQ(err, 0.0) << "MPI double transpose must be exact";
  }
  // Data Vortex backend.
  {
    auto cluster = make_cluster(p);
    double err = 0.0;
    cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
      const auto mine =
          random_matrix(rows / p * cols, 100 + static_cast<unsigned>(ctx.rank()));
      auto t = co_await apps::transpose_dv(ctx, node, mine, rows, cols,
                                           dvapi::kFirstFreeDvWord,
                                           dvapi::kFirstFreeCounter);
      auto tt = co_await apps::transpose_dv(ctx, node, t, cols, rows,
                                            dvapi::kFirstFreeDvWord,
                                            dvapi::kFirstFreeCounter);
      err = std::max(err, dvx::kernels::max_abs_diff(tt, mine));
    });
    EXPECT_EQ(err, 0.0) << "DV double transpose must be exact";
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, TransposeProperty, ::testing::Values(1, 2, 4, 8),
                         ::testing::PrintToStringParamName());

// Property: both backends compute the same transpose bit-for-bit.
TEST(TransposeProperty, BackendsAgreeExactly) {
  const int p = 4;
  const std::int64_t rows = 32, cols = 64;
  std::vector<std::vector<dvx::kernels::Complex>> mpi_out(p), dv_out(p);
  {
    auto cluster = make_cluster(p);
    cluster.run_mpi([&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
      const auto mine =
          random_matrix(rows / p * cols, 7 + static_cast<unsigned>(comm.rank()));
      mpi_out[static_cast<std::size_t>(comm.rank())] =
          co_await apps::transpose_mpi(comm, node, mine, rows, cols, 1);
    });
  }
  {
    auto cluster = make_cluster(p);
    cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
      const auto mine =
          random_matrix(rows / p * cols, 7 + static_cast<unsigned>(ctx.rank()));
      dv_out[static_cast<std::size_t>(ctx.rank())] = co_await apps::transpose_dv(
          ctx, node, mine, rows, cols, dvapi::kFirstFreeDvWord,
          dvapi::kFirstFreeCounter);
    });
  }
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(dvx::kernels::max_abs_diff(mpi_out[static_cast<std::size_t>(r)],
                                         dv_out[static_cast<std::size_t>(r)]),
              0.0);
  }
}

// Stress the sense-reversal collectives: many back-to-back collectives with
// skewed rank timing must neither deadlock nor mix phases.
TEST(Collectives, SenseReversalSurvivesSkewedStress) {
  auto cluster = make_cluster(8);
  cluster.run_dv([](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    sim::Xoshiro256 rng(static_cast<std::uint64_t>(ctx.rank()) + 17);
    for (int round = 0; round < 50; ++round) {
      co_await node.engine().delay(sim::ns(static_cast<double>(rng.below(3000))));
      const auto sum = co_await dvapi::allreduce_sum(
          ctx, static_cast<std::uint64_t>(round * 8 + ctx.rank()));
      // sum of round*8 + r for r in 0..7 = 64*round + 28
      EXPECT_EQ(sum, static_cast<std::uint64_t>(64 * round + 28)) << "round " << round;
      if (round % 7 == 0) co_await ctx.fast_barrier();
      if (round % 11 == 0) co_await ctx.barrier();
    }
  });
}

// Determinism across the full stack: two identical GUPS runs give identical
// virtual times and identical results.
TEST(Determinism, FullStackGupsIsBitStable) {
  apps::GupsParams gp{.local_table_words = 1 << 12, .updates_per_node = 1 << 12};
  auto c1 = make_cluster(8);
  auto c2 = make_cluster(8);
  const auto a = apps::run_gups_dv(c1, gp);
  const auto b = apps::run_gups_dv(c2, gp);
  EXPECT_EQ(a.seconds, b.seconds);
  const auto am = apps::run_gups_mpi(c1, gp);
  const auto bm = apps::run_gups_mpi(c2, gp);
  EXPECT_EQ(am.seconds, bm.seconds);
}

// Tracer plumbing: a traced DV FFT run produces compute and send intervals
// for every rank.
TEST(Tracing, DvRunsProduceStateIntervals) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4, .trace = true});
  apps::FftParams fp{.log_size = 12};
  apps::run_fft_dv(cluster, fp);
  const auto summary = cluster.tracer().state_summary();
  ASSERT_EQ(summary.size(), 4u);
  for (const auto& [rank, s] : summary) {
    EXPECT_GT(s.per_state[static_cast<int>(sim::NodeState::kCompute)], 0)
        << "rank " << rank;
    EXPECT_GT(s.per_state[static_cast<int>(sim::NodeState::kSend)], 0)
        << "rank " << rank;
  }
}

// Model cross-validation (the assertion version of bench_ablation_fabric):
// at light load the analytic model's base latency is within 40% of the
// cycle-accurate switch.
TEST(ModelValidation, AnalyticLatencyTracksCycleSwitchAtLightLoad) {
  dvx::dvnet::Geometry g{8, 4};
  dvx::dvnet::CycleSwitch sw(g);
  sim::Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    sw.inject(static_cast<int>(rng.below(32)), static_cast<int>(rng.below(32)));
    ASSERT_TRUE(sw.drain());
  }
  const double cyc = sw.latency_stats().mean();
  dvx::dvnet::FabricModel fm(dvx::dvnet::FabricParams{.geometry = g});
  const double analytic =
      static_cast<double>(fm.base_latency()) / static_cast<double>(fm.word_time());
  EXPECT_NEAR(analytic, cyc, 0.4 * cyc);
}

// The GUPS aggregation ablation, as a regression property: bigger source
// batches can never be slower in the model.
TEST(Ablation, SourceAggregationMonotonicallyHelpsGups) {
  apps::GupsParams base{.local_table_words = 1 << 12, .updates_per_node = 1 << 12};
  double prev = 0.0;
  for (int buf : {16, 128, 1024}) {
    auto cluster = make_cluster(8);
    auto gp = base;
    gp.buffer_limit = buf;
    const double gups = apps::run_gups_dv(cluster, gp).gups();
    EXPECT_GT(gups, prev) << "buffer " << buf;
    prev = gups;
  }
}

}  // namespace
