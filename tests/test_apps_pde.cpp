// End-to-end tests of the PDE applications (SNAP, heat, vorticity) on both
// network backends: physics invariants, serial references, decomposition
// invariance, and DV-vs-MPI agreement.

#include <gtest/gtest.h>

#include "apps/heat.hpp"
#include "apps/snap.hpp"
#include "apps/vorticity.hpp"
#include "runtime/cluster.hpp"

namespace apps = dvx::apps;
namespace runtime = dvx::runtime;

namespace {

runtime::Cluster make_cluster(int nodes) {
  return runtime::Cluster(runtime::ClusterConfig{.nodes = nodes});
}

apps::HeatParams small_heat() {
  return apps::HeatParams{.global_nx = 16,
                          .global_ny = 16,
                          .global_nz = 16,
                          .steps = 10,
                          .verify = true};
}

TEST(HeatApp, MpiMatchesSerialReferenceAndConservesHeat) {
  auto cluster = make_cluster(8);
  const auto res = apps::run_heat_mpi(cluster, small_heat());
  EXPECT_LT(res.max_serial_diff, 1e-12);
  EXPECT_GT(res.total_heat, 0.0);
  EXPECT_GT(res.final_residual, 0.0);
}

TEST(HeatApp, DvMatchesSerialReferenceAndConservesHeat) {
  auto cluster = make_cluster(8);
  const auto res = apps::run_heat_dv(cluster, small_heat());
  EXPECT_LT(res.max_serial_diff, 1e-12);
  EXPECT_GT(res.total_heat, 0.0);
}

TEST(HeatApp, DecompositionInvariance) {
  // The same problem on 1, 2, and 8 nodes must give identical physics.
  const auto p = small_heat();
  auto c1 = make_cluster(1);
  auto c2 = make_cluster(2);
  auto c8 = make_cluster(8);
  const auto a = apps::run_heat_mpi(c1, p);
  const auto b = apps::run_heat_mpi(c2, p);
  const auto c = apps::run_heat_dv(c8, p);
  EXPECT_NEAR(a.total_heat, b.total_heat, 1e-9);
  EXPECT_NEAR(a.total_heat, c.total_heat, 1e-9);
}

TEST(HeatApp, DataVortexRestructuringWins) {
  // Fig. 9: the restructured heat solver speeds up substantially on DV.
  apps::HeatParams hp{.global_nx = 24, .global_ny = 24, .global_nz = 24, .steps = 12};
  auto cluster = make_cluster(16);
  const auto dv = apps::run_heat_dv(cluster, hp);
  const auto mpi = apps::run_heat_mpi(cluster, hp);
  EXPECT_NEAR(dv.total_heat, mpi.total_heat, 1e-9) << "both must compute the same field";
  EXPECT_GT(mpi.seconds / dv.seconds, 1.5);
}

apps::SnapParams small_snap() {
  return apps::SnapParams{.nx = 8,
                          .ny = 8,
                          .nz = 8,
                          .nang = 4,
                          .ng = 1,
                          .ichunk = 4,
                          .max_outer = 3};
}

TEST(SnapApp, FluxIsPositiveAndConverging) {
  auto cluster = make_cluster(4);
  const auto res = apps::run_snap_mpi(cluster, small_snap());
  EXPECT_GT(res.flux_sum, 0.0);
  EXPECT_GE(res.min_flux, 0.0) << "diamond difference produced negative flux";
  EXPECT_GT(res.cell_angle_updates, 0);
  EXPECT_GT(res.residual, 0.0);
}

TEST(SnapApp, DvMatchesMpiExactly) {
  // Identical sweep arithmetic on both networks -> identical flux.
  auto cluster = make_cluster(4);
  const auto dv = apps::run_snap_dv(cluster, small_snap());
  const auto mpi = apps::run_snap_mpi(cluster, small_snap());
  EXPECT_DOUBLE_EQ(dv.flux_sum, mpi.flux_sum);
  EXPECT_DOUBLE_EQ(dv.residual, mpi.residual);
}

TEST(SnapApp, DecompositionInvariance) {
  auto c1 = make_cluster(1);
  auto c4 = make_cluster(4);
  auto c8 = make_cluster(8);
  const auto a = apps::run_snap_mpi(c1, small_snap());
  const auto b = apps::run_snap_mpi(c4, small_snap());
  const auto c = apps::run_snap_dv(c8, small_snap());
  EXPECT_NEAR(a.flux_sum, b.flux_sum, 1e-9 * std::abs(a.flux_sum));
  EXPECT_NEAR(a.flux_sum, c.flux_sum, 1e-9 * std::abs(a.flux_sum));
}

TEST(SnapApp, BestEffortPortGivesModestSpeedup) {
  // Fig. 9: SNAP's best-effort port lands around 1.19x, far below the
  // rewrite-level gains — it should win, but not by much.
  apps::SnapParams sp{.max_outer = 2};  // the paper-regime default mesh
  auto cluster = make_cluster(8);
  const auto dv = apps::run_snap_dv(cluster, sp);
  const auto mpi = apps::run_snap_mpi(cluster, sp);
  const double speedup = mpi.seconds / dv.seconds;
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(speedup, 2.0);
}

apps::VorticityParams small_vort() {
  return apps::VorticityParams{.n = 64, .steps = 4};
}

TEST(VorticityApp, ConservesEnergyAndEnstrophy) {
  auto cluster = make_cluster(4);
  const auto res = apps::run_vorticity_mpi(cluster, small_vort());
  EXPECT_GT(res.energy0, 0.0);
  EXPECT_GT(res.enstrophy0, 0.0);
  // Inviscid flow with dealiasing + RK2: small, bounded drift.
  EXPECT_LT(res.energy_drift(), 1e-3);
  EXPECT_LT(res.enstrophy_drift(), 2e-2);
}

TEST(VorticityApp, DvMatchesMpiNumerics) {
  auto cluster = make_cluster(4);
  const auto dv = apps::run_vorticity_dv(cluster, small_vort());
  const auto mpi = apps::run_vorticity_mpi(cluster, small_vort());
  EXPECT_NEAR(dv.omega_checksum, mpi.omega_checksum,
              1e-9 * std::abs(mpi.omega_checksum));
  EXPECT_NEAR(dv.energy1, mpi.energy1, 1e-9 * std::abs(mpi.energy1));
}

TEST(VorticityApp, DecompositionInvariance) {
  auto c1 = make_cluster(1);
  auto c8 = make_cluster(8);
  const auto a = apps::run_vorticity_mpi(c1, small_vort());
  const auto b = apps::run_vorticity_dv(c8, small_vort());
  EXPECT_NEAR(a.omega_checksum, b.omega_checksum, 1e-9 * std::abs(a.omega_checksum));
}

TEST(VorticityApp, RestructuredSolverWinsOnDataVortex) {
  apps::VorticityParams vp{.n = 128, .steps = 3};
  auto cluster = make_cluster(16);
  const auto dv = apps::run_vorticity_dv(cluster, vp);
  const auto mpi = apps::run_vorticity_mpi(cluster, vp);
  EXPECT_GT(mpi.seconds / dv.seconds, 1.3);
}

}  // namespace
