// Tests for the runtime layer: cost model, cluster harness, reporters.

#include <gtest/gtest.h>

#include <sstream>

#include "dvapi/collectives.hpp"
#include "runtime/cluster.hpp"
#include "runtime/constants.hpp"
#include "runtime/report.hpp"

namespace sim = dvx::sim;
namespace runtime = dvx::runtime;
using sim::Coro;

namespace {

TEST(CostModel, RatesMatchParams) {
  runtime::CostModel cm;
  EXPECT_EQ(cm.flops(2.4e10), sim::kSecond);
  EXPECT_EQ(cm.stream_bytes(5.0e10), sim::kSecond);
  // 8 random accesses resolve concurrently at MLP 8 -> one latency.
  EXPECT_EQ(cm.random_accesses(8), sim::ns(95));
  EXPECT_EQ(cm.flops(0), 0);
  EXPECT_EQ(cm.flops(-5), 0);
}

TEST(Cluster, DvProgramRunsOnAllRanks) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  int visits = 0;
  const auto res = cluster.run_dv(
      [&visits](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
        ++visits;
        node.roi_begin();
        co_await node.compute_flops(1e6);
        co_await ctx.barrier();
        node.roi_end();
      });
  EXPECT_EQ(visits, 4);
  EXPECT_GT(res.roi, 0);
  EXPECT_GE(res.finished, res.roi);
}

TEST(Cluster, MpiProgramRunsOnAllRanks) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  const auto res =
      cluster.run_mpi([](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
        node.roi_begin();
        const auto sum = co_await comm.allreduce_sum(1);
        EXPECT_EQ(sum, 4u);
        node.roi_end();
      });
  EXPECT_GT(res.roi, 0);
}

TEST(Cluster, SameProgramIsDeterministicAcrossRuns) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 8});
  auto program = [](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
    node.roi_begin();
    for (int i = 0; i < 3; ++i) co_await comm.barrier();
    node.roi_end();
  };
  const auto a = cluster.run_mpi(program);
  const auto b = cluster.run_mpi(program);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.roi, b.roi);
}

TEST(Cluster, ComputeChargesShowUpInTrace) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 2, .trace = true});
  cluster.run_dv([](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    co_await node.compute_stream(1e6);
    co_await ctx.barrier();
  });
  const auto sum = cluster.tracer().state_summary();
  EXPECT_GT(sum.at(0).per_state[static_cast<int>(sim::NodeState::kCompute)], 0);
  EXPECT_GT(sum.at(1).per_state[static_cast<int>(sim::NodeState::kBarrier)], 0);
}

TEST(Report, TableAlignsAndCsvRoundTrips) {
  runtime::Table t("demo", {"nodes", "GUPS"});
  t.row({"4", "0.12"}).row({"32", "1.20"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("32"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "nodes,GUPS\n4,0.12\n32,1.20\n");
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(Report, Formatters) {
  EXPECT_EQ(runtime::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(runtime::fmt_gbs(4.4e9), "4.400 GB/s");
  EXPECT_EQ(runtime::fmt_us(12.5), "12.50 us");
}

TEST(PaperConstants, SanityAgainstModelDefaults) {
  // The encoded defaults must reproduce the paper's headline rates.
  dvx::dvnet::FabricModel fm(dvx::dvnet::FabricParams{.geometry = {8, 4}});
  EXPECT_NEAR(fm.port_bandwidth(), runtime::paper::kDvPeakBw, 0.05e9);
  dvx::vic::PcieParams pcie;
  EXPECT_DOUBLE_EQ(pcie.direct_write_bw, runtime::paper::kPcieDirectWriteBw);
  dvx::ib::IbParams ibp;
  EXPECT_DOUBLE_EQ(ibp.link_bw, runtime::paper::kIbPeakBw);
}

}  // namespace
