// Tests for the runtime layer: cost model, cluster harness, reporters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "dvapi/collectives.hpp"
#include "runtime/cluster.hpp"
#include "runtime/constants.hpp"
#include "runtime/report.hpp"

namespace sim = dvx::sim;
namespace runtime = dvx::runtime;
using sim::Coro;

namespace {

TEST(CostModel, RatesMatchParams) {
  runtime::CostModel cm;
  EXPECT_EQ(cm.flops(2.4e10), sim::kSecond);
  EXPECT_EQ(cm.stream_bytes(5.0e10), sim::kSecond);
  // 8 random accesses resolve concurrently at MLP 8 -> one latency.
  EXPECT_EQ(cm.random_accesses(8), sim::ns(95));
  EXPECT_EQ(cm.flops(0), 0);
  EXPECT_EQ(cm.flops(-5), 0);
}

TEST(Cluster, DvProgramRunsOnAllRanks) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  int visits = 0;
  const auto res = cluster.run_dv(
      [&visits](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
        ++visits;
        node.roi_begin();
        co_await node.compute_flops(1e6);
        co_await ctx.barrier();
        node.roi_end();
      });
  EXPECT_EQ(visits, 4);
  EXPECT_GT(res.roi, 0);
  EXPECT_GE(res.finished, res.roi);
}

TEST(Cluster, MpiProgramRunsOnAllRanks) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  const auto res =
      cluster.run_mpi([](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
        node.roi_begin();
        const auto sum = co_await comm.allreduce_sum(1);
        EXPECT_EQ(sum, 4u);
        node.roi_end();
      });
  EXPECT_GT(res.roi, 0);
}

TEST(Cluster, SameProgramIsDeterministicAcrossRuns) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 8});
  auto program = [](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
    node.roi_begin();
    for (int i = 0; i < 3; ++i) co_await comm.barrier();
    node.roi_end();
  };
  const auto a = cluster.run_mpi(program);
  const auto b = cluster.run_mpi(program);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.roi, b.roi);
}

TEST(Cluster, ComputeChargesShowUpInTrace) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 2, .trace = true});
  cluster.run_dv([](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    co_await node.compute_stream(1e6);
    co_await ctx.barrier();
  });
  const auto sum = cluster.tracer().state_summary();
  EXPECT_GT(sum.at(0).per_state[static_cast<int>(sim::NodeState::kCompute)], 0);
  EXPECT_GT(sum.at(1).per_state[static_cast<int>(sim::NodeState::kBarrier)], 0);
}

TEST(Cluster, ShardMapIsDeterministicBalancedAndComplete) {
  // The node -> shard map is a pure function: contiguous balanced blocks,
  // every shard non-empty whenever shards <= nodes.
  for (const auto& [nodes, shards] : {std::pair{32, 4}, {7, 3}, {5, 5},
                                      {64, 1}, {3, 8}}) {
    const auto map = runtime::Cluster::shard_map(nodes, shards);
    ASSERT_EQ(static_cast<int>(map.size()), nodes);
    std::vector<int> count(static_cast<std::size_t>(shards), 0);
    for (int r = 0; r < nodes; ++r) {
      ASSERT_GE(map[static_cast<std::size_t>(r)], 0);
      ASSERT_LT(map[static_cast<std::size_t>(r)], shards);
      if (r > 0) {  // contiguous blocks: the map is nondecreasing
        EXPECT_GE(map[static_cast<std::size_t>(r)],
                  map[static_cast<std::size_t>(r - 1)]);
      }
      ++count[static_cast<std::size_t>(map[static_cast<std::size_t>(r)])];
    }
    if (shards <= nodes) {
      const auto [lo, hi] = std::minmax_element(count.begin(), count.end());
      EXPECT_GT(*lo, 0) << nodes << "/" << shards;
      EXPECT_LE(*hi - *lo, 1) << nodes << "/" << shards;  // balanced
    }
    EXPECT_EQ(map, runtime::Cluster::shard_map(nodes, shards));
  }
}

TEST(Cluster, ResolveShardingWindowsEveryPositiveLookahead) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.engine_threads = 4;
  const auto plan = runtime::Cluster::resolve_sharding(cfg, sim::ns(10));
  EXPECT_TRUE(plan.windowed);
  EXPECT_EQ(plan.shards, 4);
  EXPECT_EQ(plan.threads, 4);
  EXPECT_EQ(plan.lookahead, sim::ns(10));
  // More threads than nodes: shards clamp to the node count.
  cfg.engine_threads = 64;
  EXPECT_EQ(runtime::Cluster::resolve_sharding(cfg, sim::ns(10)).shards, 8);
  // Zero lookahead cannot window; the run stays serial on one shard.
  cfg.engine_threads = 4;
  const auto serial = runtime::Cluster::resolve_sharding(cfg, 0);
  EXPECT_FALSE(serial.windowed);
  EXPECT_EQ(serial.shards, 1);
}

// The tentpole contract of ISSUE 10: the virtual-time trajectory of a real
// multi-rank program is identical at shards = 1 and shards = 4 on every
// fabric backend. (The full byte-identity of sweeps, metrics and traces is
// covered end-to-end by test_obs and the CI diff job; this pins the
// per-backend RunResult equivalence at unit-test cost.)
TEST(Cluster, ShardedTrajectoryMatchesSerialOnEveryFabric) {
  auto mpi_program = [](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
    node.roi_begin();
    const int rank = comm.rank();
    const int peer = rank ^ 1;
    if (peer < comm.size()) {
      for (int i = 0; i < 4; ++i) {
        co_await node.compute_flops(1e5 * (1 + rank % 3));
        const std::uint64_t payload = static_cast<std::uint64_t>(rank * 100 + i);
        if (rank < peer) {
          co_await comm.send(peer, i, std::vector<std::uint64_t>(1, payload));
          co_await comm.allreduce_sum(payload);
        } else {
          const auto got = co_await comm.recv(peer, i);
          co_await comm.allreduce_sum(got.data.front());
        }
      }
    }
    co_await comm.barrier();
    node.roi_end();
  };
  auto dv_program = [](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    node.roi_begin();
    for (int i = 0; i < 4; ++i) {
      co_await node.compute_flops(1e5 * (1 + ctx.rank() % 3));
      const int dst = (ctx.rank() + 1 + i) % ctx.nodes();
      co_await ctx.send_fifo(dst, static_cast<std::uint64_t>(ctx.rank() * 1000 + i));
      co_await ctx.barrier();
    }
    node.roi_end();
  };
  auto run = [&](runtime::MpiFabric fabric, bool dv, int threads) {
    runtime::ClusterConfig cfg;
    cfg.nodes = 8;
    cfg.engine_threads = threads;
    cfg.mpi_fabric = fabric;
    runtime::Cluster cluster(cfg);
    return dv ? cluster.run_dv(dv_program) : cluster.run_mpi(mpi_program);
  };
  for (const bool dv : {true, false}) {
    for (const auto fabric : {runtime::MpiFabric::kIb, runtime::MpiFabric::kTorus}) {
      const auto serial = run(fabric, dv, 1);
      const auto sharded = run(fabric, dv, 4);
      EXPECT_EQ(serial.finished, sharded.finished)
          << (dv ? "dv" : runtime::to_string(fabric));
      EXPECT_EQ(serial.roi, sharded.roi)
          << (dv ? "dv" : runtime::to_string(fabric));
      if (dv) break;  // run_dv ignores mpi_fabric; once is enough
    }
  }
}

TEST(Report, TableAlignsAndCsvRoundTrips) {
  runtime::Table t("demo", {"nodes", "GUPS"});
  t.row({"4", "0.12"}).row({"32", "1.20"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("32"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "nodes,GUPS\n4,0.12\n32,1.20\n");
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(Report, Formatters) {
  EXPECT_EQ(runtime::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(runtime::fmt_gbs(4.4e9), "4.400 GB/s");
  EXPECT_EQ(runtime::fmt_us(12.5), "12.50 us");
}

TEST(PaperConstants, SanityAgainstModelDefaults) {
  // The encoded defaults must reproduce the paper's headline rates.
  dvx::dvnet::FabricModel fm(dvx::dvnet::FabricParams{.geometry = {8, 4}});
  EXPECT_NEAR(fm.port_bandwidth(), runtime::paper::kDvPeakBw, 0.05e9);
  dvx::vic::PcieParams pcie;
  EXPECT_DOUBLE_EQ(pcie.direct_write_bw, runtime::paper::kPcieDirectWriteBw);
  dvx::ib::IbParams ibp;
  EXPECT_DOUBLE_EQ(ibp.link_bw, runtime::paper::kIbPeakBw);
}

}  // namespace
