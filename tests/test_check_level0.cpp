// Level-0 translation unit for test_check: proves that DVX_CHECK_LEVEL=0
// compiles every macro out — the condition and the message stream are
// type-checked but never evaluated, so a failing condition with side
// effects leaves no trace. Linked into the same binary as the level-2 TU
// (the macros are per-TU by design; the inline support classes carry no
// level-dependent state, so mixing levels is ODR-clean).

#undef DVX_CHECK_LEVEL
#define DVX_CHECK_LEVEL 0
#include "check/check.hpp"

namespace dvx_test_check {

namespace {
int evaluations = 0;

bool bump_and_fail() {
  ++evaluations;
  return false;  // would throw at any live level
}
}  // namespace

int level0_macro_level() { return DVX_CHECK_LEVEL; }

// Returns the number of times any check operand was evaluated (must be 0).
int level0_run_all_macros() {
  evaluations = 0;
  DVX_CHECK(bump_and_fail()) << "streamed " << bump_and_fail();
  DVX_CHECK_EQ(bump_and_fail(), true);
  DVX_CHECK_SOON(bump_and_fail()) << "audit-only " << bump_and_fail();
  DVX_CHECK_SOON_EQ(bump_and_fail(), true);
  return evaluations;
}

}  // namespace dvx_test_check
