// Tests for the InfiniBand fabric model and MiniMPI.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <numeric>
#include <vector>

#include "ib/topology.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace sim = dvx::sim;
namespace ib = dvx::ib;
namespace mpi = dvx::mpi;
using sim::Coro;
using sim::Engine;

namespace {

// --- fabric timing -----------------------------------------------------------

TEST(IbFabric, LargeTransferEfficiencyNearPaperMeasured72Percent) {
  ib::Fabric fab(2);
  const std::int64_t bytes = 2 << 20;  // 256 Ki words
  const auto t = fab.send_message(0, 1, bytes, 0);
  const double bw = sim::rate_bytes_per_sec(bytes, t.last_arrival);
  // Paper Fig. 3b: IB reaches only ~72% of its 6.8 GB/s peak at this size.
  EXPECT_GT(bw, 0.60 * 6.8e9);
  EXPECT_LT(bw, 0.85 * 6.8e9);
}

TEST(IbFabric, SmallMessageLatencyIsMicrosecondScale) {
  ib::Fabric fab(2);
  const auto t = fab.send_message(0, 1, 64, 0);
  EXPECT_GT(t.last_arrival, sim::ns(500));
  EXPECT_LT(t.last_arrival, sim::us(3));
}

TEST(IbFabric, CrossLeafCostsMoreThanSameLeaf) {
  ib::Fabric fab(32);  // leaves of 8
  const auto same = fab.send_message(0, 1, 4096, 0);
  ib::Fabric fab2(32);
  const auto cross = fab2.send_message(0, 31, 4096, 0);
  EXPECT_GT(cross.last_arrival, same.last_arrival);
}

TEST(IbFabric, SharedSpineLinkCongests) {
  //

  // Two flows from different leaves to the same destination share the
  // spine->leaf and the destination down-link under static routing.
  ib::Fabric fab(32);
  const std::int64_t bytes = 1 << 20;
  const auto alone = fab.send_message(8, 0, bytes, 0);
  ib::Fabric fab2(32);
  const auto a = fab2.send_message(8, 0, bytes, 0);
  const auto b = fab2.send_message(16, 0, bytes, 0);
  const auto worst = std::max(a.last_arrival, b.last_arrival);
  EXPECT_GT(worst, alone.last_arrival + alone.last_arrival / 2)
      << "two converging flows should roughly halve per-flow bandwidth";
}

TEST(IbFabric, MessageRateGateLimitsTinyMessageRate) {
  ib::Fabric fab(2);
  sim::Time last = 0;
  const int kMsgs = 10000;
  for (int i = 0; i < kMsgs; ++i) last = fab.send_message(0, 1, 8, last).last_arrival;
  const double rate = kMsgs / sim::to_seconds(last);
  EXPECT_LT(rate, 110e6);  // "peak message rates of 100 Mref/s"
}

TEST(IbFabric, LoopbackUsesSharedMemory) {
  ib::Fabric fab(4);
  const auto self = fab.send_message(2, 2, 1 << 20, 0);
  const auto wire = fab.send_message(0, 1, 1 << 20, 0);
  EXPECT_LT(self.last_arrival, wire.last_arrival);
}

TEST(IbFabric, RejectsBadNodes) {
  ib::Fabric fab(4);
  EXPECT_THROW(fab.send_message(-1, 0, 8, 0), std::out_of_range);
  EXPECT_THROW(fab.send_message(0, 4, 8, 0), std::out_of_range);
  EXPECT_THROW(ib::Fabric(0), std::invalid_argument);
}

// --- MiniMPI harness ----------------------------------------------------------

template <typename Body>
sim::Time run_ranks(int n, Body body) {
  Engine engine;
  mpi::MpiWorld world(engine, std::make_unique<ib::Fabric>(n), n);
  for (int r = 0; r < n; ++r) engine.spawn(body(world.comm(r)));
  const auto t = engine.run();
  EXPECT_TRUE(engine.all_done()) << "a rank deadlocked";
  return t;
}

TEST(MiniMpi, BlockingSendRecvMovesData) {
  run_ranks(2, [](mpi::Comm comm) -> Coro<void> {
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> payload = {1, 2, 3};
      co_await comm.send(1, 7, std::move(payload));
    } else {
      auto msg = co_await comm.recv(0, 7);
      EXPECT_EQ(msg.src, 0);
      EXPECT_EQ(msg.tag, 7);
      EXPECT_EQ(msg.data, (std::vector<std::uint64_t>{1, 2, 3}));
    }
  });
}

TEST(MiniMpi, UnexpectedMessagesQueueUntilMatched) {
  run_ranks(2, [](mpi::Comm comm) -> Coro<void> {
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> a = {10};
      std::vector<std::uint64_t> b = {20};
      co_await comm.send(1, 1, std::move(a));
      co_await comm.send(1, 2, std::move(b));
    } else {
      co_await comm.engine().delay(sim::us(50));  // both already arrived
      auto second = co_await comm.recv(0, 2);     // match by tag out of order
      auto first = co_await comm.recv(0, 1);
      EXPECT_EQ(second.data.at(0), 20u);
      EXPECT_EQ(first.data.at(0), 10u);
    }
  });
}

TEST(MiniMpi, WildcardsMatchAnySourceAndTag) {
  run_ranks(4, [](mpi::Comm comm) -> Coro<void> {
    if (comm.rank() != 0) {
      std::vector<std::uint64_t> payload = {static_cast<std::uint64_t>(comm.rank())};
      co_await comm.send(0, 100 + comm.rank(), std::move(payload));
    } else {
      std::uint64_t sum = 0;
      for (int i = 0; i < 3; ++i) {
        auto msg = co_await comm.recv(mpi::kAnySource, mpi::kAnyTag);
        EXPECT_EQ(msg.tag, 100 + msg.src);
        sum += msg.data.at(0);
      }
      EXPECT_EQ(sum, 6u);
    }
  });
}

TEST(MiniMpi, RendezvousLargeMessage) {
  run_ranks(2, [](mpi::Comm comm) -> Coro<void> {
    const std::size_t kWords = 64 * 1024;  // 512 KB >> eager threshold
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> big(kWords);
      std::iota(big.begin(), big.end(), 0);
      const sim::Time t0 = comm.engine().now();
      co_await comm.send(1, 3, std::move(big));
      // Rendezvous sender blocks for the full transfer, not just a copy.
      EXPECT_GT(comm.engine().now() - t0, sim::us(50));
    } else {
      auto msg = co_await comm.recv(0, 3);
      EXPECT_EQ(msg.data.size(), kWords);
      EXPECT_EQ(msg.data[12345], 12345u);
    }
  });
}

TEST(MiniMpi, RendezvousUnexpectedRtsThenLateRecv) {
  run_ranks(2, [](mpi::Comm comm) -> Coro<void> {
    const std::size_t kWords = 32 * 1024;
    if (comm.rank() == 0) {
      co_await comm.send(1, 9, std::vector<std::uint64_t>(kWords, 42));
    } else {
      co_await comm.engine().delay(sim::ms(1));  // RTS sits unexpected
      auto msg = co_await comm.recv(0, 9);
      EXPECT_EQ(msg.data.size(), kWords);
      EXPECT_EQ(msg.data.front(), 42u);
    }
  });
}

TEST(MiniMpi, IsendIrecvOverlap) {
  run_ranks(2, [](mpi::Comm comm) -> Coro<void> {
    const int peer = 1 - comm.rank();
    auto r = comm.irecv(peer, 5);
    auto s = comm.isend(peer, 5, {static_cast<std::uint64_t>(comm.rank())});
    co_await comm.wait(s);
    co_await comm.wait(r);
    EXPECT_EQ(r->msg.data.at(0), static_cast<std::uint64_t>(peer));
  });
}

TEST(MiniMpi, SendrecvSwapsWithoutDeadlock) {
  run_ranks(6, [](mpi::Comm comm) -> Coro<void> {
    const int n = comm.size();
    const int right = (comm.rank() + 1) % n;
    const int left = (comm.rank() - 1 + n) % n;
    std::vector<std::uint64_t> payload = {static_cast<std::uint64_t>(comm.rank())};
    auto msg = co_await comm.sendrecv(right, 4, std::move(payload), left, 4);
    EXPECT_EQ(msg.data.at(0), static_cast<std::uint64_t>(left));
  });
}

class MiniMpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiCollectives, BarrierHoldsBackEarlyRanks) {
  const int n = GetParam();
  std::vector<sim::Time> exit_time;
  run_ranks(n, [&exit_time](mpi::Comm comm) -> Coro<void> {
    co_await comm.engine().delay(sim::us(comm.rank() == 0 ? 100 : 1));
    co_await comm.barrier();
    exit_time.push_back(comm.engine().now());
  });
  ASSERT_EQ(exit_time.size(), static_cast<std::size_t>(n));
  for (auto t : exit_time) EXPECT_GE(t, sim::us(100));
}

TEST_P(MiniMpiCollectives, BcastFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    run_ranks(n, [root](mpi::Comm comm) -> Coro<void> {
      std::vector<std::uint64_t> data;
      if (comm.rank() == root) data = {7, 8, 9};
      auto out = co_await comm.bcast(std::move(data), root);
      EXPECT_EQ(out, (std::vector<std::uint64_t>{7, 8, 9}));
    });
  }
}

TEST_P(MiniMpiCollectives, AllreduceSumAndMax) {
  const int n = GetParam();
  run_ranks(n, [n](mpi::Comm comm) -> Coro<void> {
    const auto sum =
        co_await comm.allreduce_sum(static_cast<std::uint64_t>(comm.rank() + 1));
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n + 1) / 2);
    const auto mx =
        co_await comm.allreduce_max(static_cast<std::uint64_t>(comm.rank() * 3));
    EXPECT_EQ(mx, static_cast<std::uint64_t>(3 * (n - 1)));
    const double dsum = co_await comm.allreduce_sum_double(0.5 * (comm.rank() + 1));
    EXPECT_DOUBLE_EQ(dsum, 0.5 * n * (n + 1) / 2);
  });
}

TEST_P(MiniMpiCollectives, GatherCollectsAllBlocks) {
  const int n = GetParam();
  run_ranks(n, [n](mpi::Comm comm) -> Coro<void> {
    std::vector<std::uint64_t> mine = {static_cast<std::uint64_t>(comm.rank() * 11)};
    auto out = co_await comm.gather(std::move(mine), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(out.size(), static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)].at(0),
                  static_cast<std::uint64_t>(i * 11));
      }
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(MiniMpiCollectives, AllgatherDeliversEveryBlockEverywhere) {
  const int n = GetParam();
  run_ranks(n, [n](mpi::Comm comm) -> Coro<void> {
    // Unequal block sizes: rank r contributes r+1 words.
    std::vector<std::uint64_t> mine(static_cast<std::size_t>(comm.rank() + 1),
                                    static_cast<std::uint64_t>(comm.rank()));
    auto out = co_await comm.allgather(std::move(mine));
    EXPECT_EQ(out.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto& blk = out[static_cast<std::size_t>(i)];
      EXPECT_EQ(blk.size(), static_cast<std::size_t>(i + 1));
      for (auto v : blk) EXPECT_EQ(v, static_cast<std::uint64_t>(i));
    }
  });
}

TEST_P(MiniMpiCollectives, AlltoallPersonalizedExchange) {
  const int n = GetParam();
  run_ranks(n, [n](mpi::Comm comm) -> Coro<void> {
    std::vector<std::vector<std::uint64_t>> send(static_cast<std::size_t>(n));
    for (int peer = 0; peer < n; ++peer) {
      send[static_cast<std::size_t>(peer)] = {
          static_cast<std::uint64_t>(comm.rank() * 1000 + peer)};
    }
    auto out = co_await comm.alltoall(std::move(send));
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(out[static_cast<std::size_t>(src)].at(0),
                static_cast<std::uint64_t>(src * 1000 + comm.rank()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MiniMpiCollectives, ::testing::Values(1, 2, 3, 5, 8, 9),
                         ::testing::PrintToStringParamName());

TEST(MiniMpi, BarrierLatencyGrowsWithNodeCount) {
  auto cost = [](int n) {
    return run_ranks(n, [](mpi::Comm comm) -> Coro<void> { co_await comm.barrier(); });
  };
  const auto t2 = cost(2);
  const auto t32 = cost(32);
  // Fig. 4: MPI-over-IB barrier grows markedly with node count and sits in
  // the multi-microsecond range at 32 nodes.
  EXPECT_GT(t32, 2 * t2);
  EXPECT_GT(sim::to_us(t32), 5.0);
  EXPECT_LT(sim::to_us(t32), 30.0);
}

}  // namespace
