// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "check/check.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace sim = dvx::sim;
using sim::Coro;
using sim::Engine;

namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(sim::ns(1), 1000);
  EXPECT_EQ(sim::us(2), 2'000'000);
  EXPECT_EQ(sim::seconds(1), sim::kSecond);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::kSecond), 1.0);
  EXPECT_DOUBLE_EQ(sim::to_us(sim::us(3.5)), 3.5);
}

TEST(Time, TransferTimeRoundsUp) {
  // 1 byte at 1 GB/s = 1 ns exactly.
  EXPECT_EQ(sim::transfer_time(1, 1e9), sim::kNanosecond);
  // 1 byte at 3 GB/s is not integral; must round up, never to zero.
  EXPECT_GT(sim::transfer_time(1, 3e9), 0);
  EXPECT_EQ(sim::transfer_time(0, 1e9), 0);
  EXPECT_EQ(sim::transfer_time(-5, 1e9), 0);
}

TEST(Time, RateRoundTrip) {
  const auto d = sim::transfer_time(1 << 20, 4.4e9);
  EXPECT_NEAR(sim::rate_bytes_per_sec(1 << 20, d), 4.4e9, 1e4);
}

TEST(Engine, DelayAdvancesVirtualTime) {
  Engine e;
  sim::Time seen = -1;
  e.spawn([](Engine& eng, sim::Time& out) -> Coro<void> {
    co_await eng.delay(sim::us(5));
    out = eng.now();
  }(e, seen));
  e.run();
  EXPECT_TRUE(e.all_done());
  EXPECT_EQ(seen, sim::us(5));
}

TEST(Engine, EventsFireInTimeThenSeqOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(sim::ns(10), [&] { order.push_back(2); });
  e.schedule(sim::ns(5), [&] { order.push_back(1); });
  e.schedule(sim::ns(10), [&] { order.push_back(3); });  // same time, later seq
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, MakeKeyGuardsSeqExhaustion) {
  // Force the insertion-seq counter to the edge of the representable range:
  // the last two representable keys must still schedule (and order)
  // correctly, the next one must abort loudly instead of silently wrapping
  // into the slot bits.
#if DVX_CHECK_LEVEL < 1
  GTEST_SKIP() << "the make_key guard is a DVX_CHECK, compiled out at level 0";
#endif
  Engine e;
  e.set_next_seq_for_test(Engine::kMaxSeq - 2);
  std::vector<int> order;
  e.schedule(sim::ns(5), [&] { order.push_back(1); });
  e.schedule(sim::ns(5), [&] { order.push_back(2); });  // same time, later seq
  EXPECT_THROW(e.schedule(sim::ns(7), [] {}), dvx::check::CheckError);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The drain reset the counter: scheduling works again without forgery.
  bool ran = false;
  e.schedule(e.now() + sim::ns(1), [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(ShardedEngine, ConfigValidation) {
#if DVX_CHECK_LEVEL < 1
  GTEST_SKIP() << "configuration guards are DVX_CHECKs, compiled out at level 0";
#endif
  Engine e;
  // shards > 1 without a lookahead bound cannot run conservatively.
  EXPECT_THROW(e.configure_sharding({.shards = 2, .threads = 1, .lookahead = 0}),
               dvx::check::CheckError);
  EXPECT_THROW(e.configure_sharding({.shards = 0, .threads = 1, .lookahead = sim::us(1)}),
               dvx::check::CheckError);
  // Reconfiguring with events pending would strand them.
  e.schedule(sim::ns(1), [] {});
  EXPECT_THROW(e.configure_sharding({.shards = 2, .threads = 1, .lookahead = sim::us(1)}),
               dvx::check::CheckError);
  e.run();
  // After the drain it is allowed again.
  e.configure_sharding({.shards = 2, .threads = 2, .lookahead = sim::us(1)});
  EXPECT_EQ(e.shards(), 2);
}

TEST(ShardedEngine, BoundaryMergeOrdersByTimeSourceThenStageOrder) {
  // Shards 1..3 each stage two callbacks onto shard 0 at the same absolute
  // time. The deterministic merge must fire them ordered by (time, source
  // shard, staging order) regardless of which shard dispatched first.
  Engine e;
  e.configure_sharding({.shards = 4, .threads = 1, .lookahead = sim::us(1)});
  std::vector<int> order;  // threads = 1: single-threaded, safe to share
  const sim::Time arrival = sim::us(2);  // >= window end (10 ns + 1 us)
  for (int s = 1; s < 4; ++s) {
    e.schedule(
        sim::ns(10),
        [&e, &order, s, arrival] {
          e.schedule(arrival, [&order, s] { order.push_back(10 * s + 0); }, 0);
          e.schedule(arrival, [&order, s] { order.push_back(10 * s + 1); }, 0);
        },
        s);
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31}));
}

TEST(ShardedEngine, CrossShardBelowWindowEndThrows) {
  // The conservative contract: an event staged from inside a window must
  // land at or after the window's end. Violations abort the run instead of
  // silently racing the destination shard.
#if DVX_CHECK_LEVEL < 1
  GTEST_SKIP() << "the window guard is a DVX_CHECK, compiled out at level 0";
#endif
  Engine e;
  e.configure_sharding({.shards = 2, .threads = 1, .lookahead = sim::us(1)});
  e.schedule(
      sim::ns(10), [&e] { e.schedule(e.now() + sim::ns(5), [] {}, 1); }, 0);
  EXPECT_THROW(e.run(), dvx::check::CheckError);
}

TEST(ShardedEngine, CoroutinesStayOnTheirShardAcrossThreadCounts) {
  // One delay-chain coroutine pinned to each shard; every wake must see its
  // own shard's clock. Identical virtual results at 1 and 3 workers.
  for (const int threads : {1, 3}) {
    Engine e;
    e.configure_sharding({.shards = 3, .threads = threads, .lookahead = sim::us(1)});
    std::array<sim::Time, 3> finish{};
    for (int s = 0; s < 3; ++s) {
      e.spawn([](Engine& eng, sim::Time& out) -> Coro<void> {
            for (int hop = 0; hop < 100; ++hop) co_await eng.delay(sim::ns(3));
            out = eng.now();
          }(e, finish[static_cast<std::size_t>(s)]),
          /*start=*/0, /*shard=*/s);
    }
    e.run();
    EXPECT_TRUE(e.all_done()) << "threads " << threads;
    for (const sim::Time t : finish) EXPECT_EQ(t, sim::ns(300));
    EXPECT_EQ(e.events_processed(), 3u * 101u) << "threads " << threads;
  }
}

TEST(Engine, NestedCoroutinesPropagateValues) {
  Engine e;
  int result = 0;
  auto leaf = [](Engine& eng) -> Coro<int> {
    co_await eng.delay(sim::ns(7));
    co_return 42;
  };
  e.spawn([](Engine& eng, auto leaf_fn, int& out) -> Coro<void> {
    const int a = co_await leaf_fn(eng);
    const int b = co_await leaf_fn(eng);
    out = a + b;
  }(e, leaf, result));
  const auto end = e.run();
  EXPECT_EQ(result, 84);
  EXPECT_EQ(end, sim::ns(14));
}

TEST(Engine, ExceptionsFromProcessesSurfaceInRun) {
  Engine e;
  e.spawn([](Engine& eng) -> Coro<void> {
    co_await eng.delay(1);
    throw std::runtime_error("boom");
  }(e));
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, ManyProcessesDeterministicFinishTime) {
  auto run_once = [] {
    Engine e;
    for (int i = 0; i < 64; ++i) {
      e.spawn([](Engine& eng, int id) -> Coro<void> {
        for (int k = 0; k < 10; ++k) co_await eng.delay(sim::ns(id + k));
      }(e, i));
    }
    return e.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, sim::ns(63 * 10 + 45));  // slowest process: sum of (63+k)
}

TEST(Condition, NotifyAllWakesEveryWaiterAtGivenTime) {
  Engine e;
  sim::Condition cond(e);
  std::vector<sim::Time> wakes;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](sim::Condition& c, Engine& eng, std::vector<sim::Time>& out) -> Coro<void> {
      co_await c.wait();
      out.push_back(eng.now());
    }(cond, e, wakes));
  }
  e.spawn([](sim::Condition& c, Engine& eng) -> Coro<void> {
    co_await eng.delay(sim::ns(50));
    c.notify_all(sim::ns(80));  // event happens later than "now"
  }(cond, e));
  e.run();
  ASSERT_EQ(wakes.size(), 3u);
  for (auto t : wakes) EXPECT_EQ(t, sim::ns(80));
}

TEST(Mailbox, DeliversAtArrivalTimeInArrivalOrder) {
  Engine e;
  sim::Mailbox<int> box(e);
  std::vector<std::pair<sim::Time, int>> got;
  e.spawn([](sim::Mailbox<int>& b, Engine& eng, auto& out) -> Coro<void> {
    for (int i = 0; i < 3; ++i) {
      const int v = co_await b.receive();
      out.emplace_back(eng.now(), v);
    }
  }(box, e, got));
  e.spawn([](sim::Mailbox<int>& b, Engine& eng) -> Coro<void> {
    co_await eng.delay(sim::ns(10));
    b.push(sim::ns(30), 1);  // arrives later
    b.push(sim::ns(15), 2);  // arrives sooner despite later push
    co_await eng.delay(sim::ns(90));
    b.push(eng.now(), 3);
  }(box, e));
  e.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(sim::ns(15), 2));
  EXPECT_EQ(got[1], std::make_pair(sim::ns(30), 1));
  EXPECT_EQ(got[2], std::make_pair(sim::ns(100), 3));
}

TEST(Semaphore, BlocksUntilRelease) {
  Engine e;
  sim::Semaphore sem(e, 0);
  sim::Time acquired = -1;
  e.spawn([](sim::Semaphore& s, Engine& eng, sim::Time& out) -> Coro<void> {
    co_await s.acquire();
    out = eng.now();
  }(sem, e, acquired));
  e.spawn([](sim::Semaphore& s, Engine& eng) -> Coro<void> {
    co_await eng.delay(sim::ns(25));
    s.release(eng.now());
  }(sem, e));
  e.run();
  EXPECT_EQ(acquired, sim::ns(25));
  EXPECT_EQ(sem.count(), 0);
}

TEST(PhaseBarrier, AllPartiesLeaveTogetherAndItIsReusable) {
  Engine e;
  constexpr int kParties = 5;
  sim::PhaseBarrier bar(e, kParties);
  std::vector<sim::Time> leave;
  for (int i = 0; i < kParties; ++i) {
    e.spawn([](sim::PhaseBarrier& b, Engine& eng, int id, auto& out) -> Coro<void> {
      co_await eng.delay(sim::ns(10 * (id + 1)));
      co_await b.arrive_and_wait();
      out.push_back(eng.now());
      co_await eng.delay(sim::ns(5 * (kParties - id)));
      co_await b.arrive_and_wait();
      out.push_back(eng.now());
    }(bar, e, i, leave));
  }
  e.run();
  ASSERT_EQ(leave.size(), 2u * kParties);
  // First phase: everyone leaves at the slowest arrival (50 ns).
  for (int i = 0; i < kParties; ++i) EXPECT_EQ(leave[i] % sim::ns(50), 0);
  EXPECT_TRUE(e.all_done());
}

TEST(Rng, DeterministicAndUniform) {
  sim::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  sim::Xoshiro256 r(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedEnough) {
  sim::Xoshiro256 r(99);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[r.below(kBound)];
  for (auto c : counts) EXPECT_NEAR(c, kN / kBound, kN / kBound * 0.1);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  sim::RunningStats s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.total(), 15.0);
}

TEST(Stats, MergeEdgeCasesMatchOneShotAccumulation) {
  // Merging into an empty accumulator equals the one-shot result exactly.
  sim::RunningStats one_shot, empty, filled;
  for (double x : {4.0, -1.0, 2.5}) {
    one_shot.add(x);
    filled.add(x);
  }
  empty.merge(filled);
  EXPECT_EQ(empty.count(), one_shot.count());
  EXPECT_DOUBLE_EQ(empty.mean(), one_shot.mean());
  EXPECT_DOUBLE_EQ(empty.variance(), one_shot.variance());
  EXPECT_DOUBLE_EQ(empty.min(), one_shot.min());
  EXPECT_DOUBLE_EQ(empty.max(), one_shot.max());
  EXPECT_DOUBLE_EQ(empty.total(), one_shot.total());
  // Merging an empty accumulator is a no-op.
  sim::RunningStats nothing;
  filled.merge(nothing);
  EXPECT_EQ(filled.count(), one_shot.count());
  EXPECT_DOUBLE_EQ(filled.mean(), one_shot.mean());
  EXPECT_DOUBLE_EQ(filled.variance(), one_shot.variance());
  // Two empties stay empty (and harmless).
  nothing.merge(sim::RunningStats{});
  EXPECT_EQ(nothing.count(), 0u);
  EXPECT_DOUBLE_EQ(nothing.mean(), 0.0);
}

TEST(Stats, MergeEqualsSinglePass) {
  sim::Xoshiro256 r(5);
  sim::RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3, 9);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, HarmonicMean) {
  EXPECT_DOUBLE_EQ(sim::harmonic_mean({2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(sim::harmonic_mean({1.0, 2.0, 4.0}), 3.0 / (1.0 + 0.5 + 0.25));
  EXPECT_DOUBLE_EQ(sim::harmonic_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sim::harmonic_mean({1.0, 0.0}), 0.0);
}

TEST(Stats, LogHistogramBucketsAndQuantiles) {
  sim::LogHistogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.buckets()[0], 2u);  // 0,1
  EXPECT_EQ(h.buckets()[1], 2u);  // 2,3
  EXPECT_EQ(h.buckets()[2], 1u);  // 4
  EXPECT_GT(h.quantile(0.99), 500.0);
}

TEST(Stats, LogHistogramZeroQuantileSkipsEmptyLeadingBuckets) {
  // All mass in bucket 2 ([4,8)): q=0 must report that bucket's lower edge,
  // not the midpoint of the empty leading bucket 0.
  sim::LogHistogram h;
  h.add(4);
  h.add(5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  // Quantiles with mass behind them still use the bucket midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
  // With mass in bucket 0, q=0 is that bucket's lower edge (zero).
  sim::LogHistogram h0;
  h0.add(1);
  EXPECT_DOUBLE_EQ(h0.quantile(0.0), 0.0);
  // An empty histogram stays at zero.
  EXPECT_DOUBLE_EQ(sim::LogHistogram{}.quantile(0.0), 0.0);
}

TEST(Stats, LogHistogramTailQuantileBoundedByLastNonEmptyBucket) {
  // Sparse inserts far apart: every quantile — q = 1.0 especially — must
  // land inside the last bucket that has mass, never at the upper edge of
  // the bucket vector (the old fall-through reported 2^size, an estimate
  // above every recorded sample).
  sim::LogHistogram h;
  h.add(1);                     // bucket 0: [0, 2)
  h.add(std::uint64_t{1} << 40);  // bucket 40: [2^40, 2^41)
  EXPECT_DOUBLE_EQ(h.quantile(1.0),
                   (std::ldexp(1.0, 40) + std::ldexp(1.0, 41)) / 2.0);
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_LE(h.quantile(q), std::ldexp(1.0, 41)) << "q = " << q;
  }
  // A single huge sample: the tail quantile is its bucket's midpoint.
  sim::LogHistogram g;
  g.add(std::uint64_t{1} << 62);
  EXPECT_DOUBLE_EQ(g.quantile(1.0),
                   (std::ldexp(1.0, 62) + std::ldexp(1.0, 63)) / 2.0);
}

TEST(Trace, SummaryAndRegularity) {
  sim::Tracer t(true);
  t.record_state(0, sim::NodeState::kCompute, 0, sim::ns(80));
  t.record_state(0, sim::NodeState::kSend, sim::ns(80), sim::ns(100));
  // Source 0 always sends to node 1 -> perfectly regular.
  for (int i = 0; i < 64; ++i) t.record_message(0, 1, i, i + 5, 8, 0);
  auto sum = t.state_summary();
  EXPECT_DOUBLE_EQ(sum[0].fraction(sim::NodeState::kCompute), 0.8);
  EXPECT_DOUBLE_EQ(t.destination_regularity(64), 1.0);
}

TEST(Trace, ScatteredTrafficHasLowRegularity) {
  sim::Tracer t(true);
  sim::Xoshiro256 r(3);
  constexpr int kNodes = 16;
  for (int i = 0; i < 64 * 32; ++i) {
    t.record_message(0, 1 + static_cast<int>(r.below(kNodes - 1)), i, i + 5, 8, 0);
  }
  // Uniform scatter over 15 destinations: max share in a 64-window is small.
  EXPECT_LT(t.destination_regularity(64), 0.25);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  sim::Tracer t(false);
  t.record_state(0, sim::NodeState::kCompute, 0, 100);
  t.record_message(0, 1, 0, 1, 8, 0);
  EXPECT_TRUE(t.states().empty());
  EXPECT_TRUE(t.messages().empty());
}

TEST(Trace, AsciiTimelineRenders) {
  sim::Tracer t(true);
  t.record_state(0, sim::NodeState::kCompute, 0, sim::ns(50));
  t.record_state(1, sim::NodeState::kWait, 0, sim::ns(50));
  const auto s = t.ascii_timeline(20);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);
}

}  // namespace
