// Tests for the report layer: Table CSV escaping and round-trip, the Json
// value type, and the structured ResultSink (golden-file schema check).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "json_lite.hpp"
#include "runtime/report.hpp"

namespace runtime = dvx::runtime;
using dvx::testing::jsonlite::is_valid_json;

namespace {

// -- CSV ---------------------------------------------------------------------

/// A straightforward RFC-4180 CSV reader, independent of the writer.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(ch);
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      row.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\n') {
      row.push_back(std::move(cell));
      cell.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      cell.push_back(ch);
    }
  }
  return rows;
}

TEST(ReportCsv, EscapesCommasQuotesAndNewlines) {
  EXPECT_EQ(runtime::csv_escape("plain"), "plain");
  EXPECT_EQ(runtime::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(runtime::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(runtime::csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(ReportCsv, TableRoundTripsThroughAParser) {
  runtime::Table t("tricky", {"name", "value"});
  t.row({"plain", "1"})
      .row({"with,comma", "2"})
      .row({"with \"quotes\"", "3"})
      .row({"multi\nline", "4"});
  std::ostringstream os;
  t.print_csv(os);
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"with,comma", "2"}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"with \"quotes\"", "3"}));
  EXPECT_EQ(rows[4], (std::vector<std::string>{"multi\nline", "4"}));
}

TEST(ReportCsv, PlainTablesKeepTheLegacyFormat) {
  runtime::Table t("demo", {"nodes", "GUPS"});
  t.row({"4", "0.12"}).row({"32", "1.20"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "nodes,GUPS\n4,0.12\n32,1.20\n");
}

// -- Json --------------------------------------------------------------------

TEST(ReportJson, ScalarsAndNesting) {
  runtime::Json j;
  j["str"] = "va\"lue\n";
  j["int"] = 42;
  j["neg"] = -7;
  j["real"] = 0.25;
  j["yes"] = true;
  j["null_member"];  // stays null
  j["arr"].push_back(1);
  j["arr"].push_back("two");
  j["obj"]["inner"] = 3;
  const std::string compact = j.dump();
  EXPECT_EQ(compact,
            "{\"str\": \"va\\\"lue\\n\", \"int\": 42, \"neg\": -7, \"real\": 0.25, "
            "\"yes\": true, \"null_member\": null, \"arr\": [1, \"two\"], "
            "\"obj\": {\"inner\": 3}}");
  EXPECT_TRUE(is_valid_json(compact));
  EXPECT_TRUE(is_valid_json(j.dump(2)));
}

TEST(ReportJson, NonFiniteDoublesBecomeNull) {
  runtime::Json j;
  j["nan"] = std::numeric_limits<double>::quiet_NaN();
  j["inf"] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(j.dump(), "{\"nan\": null, \"inf\": null}");
  EXPECT_TRUE(is_valid_json(j.dump()));
}

TEST(ReportJson, IntegerValuedDoublesPrintWithoutExponent) {
  runtime::Json j;
  j["big"] = 262144.0;
  j["small"] = 0.5;
  EXPECT_EQ(j.dump(), "{\"big\": 262144, \"small\": 0.5}");
}

TEST(ReportJson, KeysKeepInsertionOrder) {
  runtime::Json j;
  j["z"] = 1;
  j["a"] = 2;
  j["m"] = 3;
  EXPECT_EQ(j.dump(), "{\"z\": 1, \"a\": 2, \"m\": 3}");
}

// -- ResultSink --------------------------------------------------------------

runtime::ResultSink make_reference_sink() {
  runtime::ResultSink sink;
  sink.fast = true;
  sink.seed = 42;
  runtime::BenchRecord dv;
  dv.figure = "fig6";
  dv.workload = "gups";
  dv.backend = "dv";
  dv.nodes = 4;
  dv.config = {{"buffer_limit", 1024}, {"updates_per_node", 8192}};
  dv.metrics = {{"gups", 0.25}, {"roi_seconds", 0.0078125}};
  sink.add(dv);
  runtime::BenchRecord ratio;
  ratio.figure = "fig6";
  ratio.workload = "gups";
  ratio.backend = "derived";
  ratio.variant = "ratio";
  ratio.nodes = 4;
  ratio.metrics = {{"dv_ib_ratio", 1.5}};
  sink.add(ratio);
  runtime::AnchorCheck a;
  a.figure = "fig6";
  a.name = "dv_above_ib_at_scale";
  a.observed = 1.5;
  a.expected = 1.0;
  a.pass = true;
  a.detail = "DV aggregate rate above IB";
  sink.add_anchor(a);
  return sink;
}

TEST(ResultSink, MatchesGoldenDocument) {
  const auto sink = make_reference_sink();
  std::ifstream golden(std::string(DVX_GOLDEN_DIR) + "/result_sink.json");
  ASSERT_TRUE(golden.is_open()) << "missing golden file under " << DVX_GOLDEN_DIR;
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(sink.to_json().dump(2) + "\n", want.str());
  EXPECT_TRUE(is_valid_json(want.str()));
}

TEST(ResultSink, FigureFilterAndFigureList) {
  auto sink = make_reference_sink();
  runtime::BenchRecord other;
  other.figure = "fig7";
  other.workload = "fft1d";
  other.backend = "mpi";
  other.nodes = 8;
  other.metrics = {{"gflops", 12.5}};
  sink.add(other);
  EXPECT_EQ(sink.figures(), (std::vector<std::string>{"fig6", "fig7"}));
  const std::string fig7 = sink.figure_json("fig7").dump();
  EXPECT_TRUE(is_valid_json(fig7));
  EXPECT_NE(fig7.find("fft1d"), std::string::npos);
  EXPECT_EQ(fig7.find("gups"), std::string::npos);
  // The fig6 anchor must not leak into the fig7 document.
  EXPECT_EQ(fig7.find("dv_above_ib_at_scale"), std::string::npos);
}

TEST(ResultSink, WritesFigureFile) {
  const auto sink = make_reference_sink();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(sink.write_figure_file("fig6", dir));
  std::ifstream in(dir + "/BENCH_fig6.json");
  ASSERT_TRUE(in.is_open());
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_TRUE(is_valid_json(got.str()));
  EXPECT_NE(got.str().find("\"schema\": \"dvx-bench/v1\""), std::string::npos);
}

}  // namespace
