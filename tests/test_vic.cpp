// Tests for the VIC substrate: packet codec, DV memory, group counters,
// surprise FIFO, PCIe link, DMA engines, and the assembled fabric.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "vic/vic.hpp"

namespace sim = dvx::sim;
namespace vic = dvx::vic;
using sim::Coro;
using sim::Engine;

namespace {

TEST(PacketCodec, RoundTripsRandomHeaders) {
  sim::Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    vic::Header h;
    h.dst_vic = static_cast<std::uint16_t>(rng.below(1 << 16));
    h.kind = static_cast<vic::DestKind>(rng.below(4));
    h.counter = static_cast<std::uint8_t>(rng.below(256));
    h.addr = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(vic::decode_header(vic::encode_header(h)), h);
  }
}

TEST(DvMemory, DefaultCapacityIs32MB) {
  vic::DvMemory m;
  EXPECT_EQ(m.bytes(), 32u << 20);
  EXPECT_EQ(m.words(), (32u << 20) / 8);
}

TEST(DvMemory, ReadWriteAndBounds) {
  vic::DvMemory m(128);
  m.write(5, 0xdeadbeef);
  EXPECT_EQ(m.read(5), 0xdeadbeefu);
  EXPECT_EQ(m.read(6), 0u);
  EXPECT_THROW(m.read(128), std::out_of_range);
  EXPECT_THROW(m.write(128, 1), std::out_of_range);
  EXPECT_THROW(vic::DvMemory(0), std::invalid_argument);
}

TEST(DvMemory, BlockOpsAndBounds) {
  vic::DvMemory m(64);
  const std::vector<std::uint64_t> src = {1, 2, 3, 4};
  m.write_block(10, src);
  std::vector<std::uint64_t> dst(4);
  m.read_block(10, dst);
  EXPECT_EQ(src, dst);
  std::vector<std::uint64_t> big(5);
  EXPECT_THROW(m.write_block(60, big), std::out_of_range);
}

TEST(DvMemory, SparseSegmentsMaterializeOnWrite) {
  vic::DvMemory m;  // full 32 MB card
  EXPECT_EQ(m.resident_segments(), 0u);
  EXPECT_EQ(m.read(3'000'000), 0u);  // untouched words read as zero
  EXPECT_EQ(m.resident_segments(), 0u);
  m.write(3'000'000, 7);
  EXPECT_EQ(m.resident_segments(), 1u);
  EXPECT_EQ(m.read(3'000'000), 7u);
}

TEST(DvMemory, BlockOpsCrossSegmentBoundaries) {
  vic::DvMemory m(vic::DvMemory::kSegmentWords * 2);
  std::vector<std::uint64_t> src(100);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = i + 1;
  const auto base = static_cast<std::uint32_t>(vic::DvMemory::kSegmentWords - 50);
  m.write_block(base, src);
  std::vector<std::uint64_t> dst(100);
  m.read_block(base, dst);
  EXPECT_EQ(src, dst);
  EXPECT_EQ(m.resident_segments(), 2u);
}

TEST(GroupCounter, WaiterResumesAtSettleTime) {
  Engine e;
  vic::GroupCounter gc(e);
  sim::Time woke = -1;
  bool ok = false;
  e.spawn([](Engine& eng, vic::GroupCounter& c, sim::Time& t, bool& res) -> Coro<void> {
    c.set(eng.now(), 3);
    res = co_await c.wait_zero();
    t = eng.now();
  }(e, gc, woke, ok));
  e.spawn([](Engine& eng, vic::GroupCounter& c) -> Coro<void> {
    co_await eng.delay(sim::us(1));
    c.decrement(sim::us(5));          // registered now, lands later
    c.decrement(sim::us(2));
    c.decrement(sim::us(9));          // latest arrival dominates
  }(e, gc));
  e.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(woke, sim::us(9));
  EXPECT_EQ(gc.value(), 0u);
  EXPECT_EQ(gc.lost_decrements(), 0u);
}

TEST(GroupCounter, TimeoutExpires) {
  Engine e;
  vic::GroupCounter gc(e);
  bool ok = true;
  sim::Time woke = -1;
  e.spawn([](Engine& eng, vic::GroupCounter& c, bool& res, sim::Time& t) -> Coro<void> {
    c.set(eng.now(), 2);
    c.decrement(eng.now());  // only one of two arrives
    res = co_await c.wait_zero(sim::us(4));
    t = eng.now();
  }(e, gc, ok, woke));
  e.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(woke, sim::us(4));
  EXPECT_EQ(gc.value(), 1u);
}

TEST(GroupCounter, DecrementAgainstZeroIsLost) {
  // Reproduces the documented race: data packets arriving before the
  // "set group counter" control packet are lost, so the counter never
  // reaches the expected zero.
  Engine e;
  vic::GroupCounter gc(e);
  bool ok = true;
  e.spawn([](Engine& eng, vic::GroupCounter& c, bool& res) -> Coro<void> {
    c.decrement(eng.now());      // arrives before the set
    c.set(eng.now(), 1);         // now expects 1 packet that already came
    res = co_await c.wait_zero(sim::us(10));
  }(e, gc, ok));
  e.run();
  EXPECT_FALSE(ok) << "lost arrival must leave the counter nonzero";
  EXPECT_EQ(gc.lost_decrements(), 1u);
  EXPECT_EQ(gc.value(), 1u);
}

TEST(GroupCounter, BatchDecrementUsesLastArrival) {
  Engine e;
  vic::GroupCounter gc(e);
  sim::Time woke = -1;
  e.spawn([](Engine& eng, vic::GroupCounter& c, sim::Time& t) -> Coro<void> {
    c.set(eng.now(), 100);
    c.decrement(sim::us(7), 100);
    co_await c.wait_zero();
    t = eng.now();
  }(e, gc, woke));
  e.run();
  EXPECT_EQ(woke, sim::us(7));
}

TEST(GroupCounterFile, ReservedIdsAndBounds) {
  Engine e;
  vic::GroupCounterFile file(e);
  EXPECT_NO_THROW(file.at(vic::kScratchCounter));
  EXPECT_NO_THROW(file.at(vic::kBarrierCounterA));
  EXPECT_NO_THROW(file.at(vic::kBarrierCounterB));
  EXPECT_THROW(file.at(64), std::out_of_range);
  EXPECT_THROW(file.at(-1), std::out_of_range);
  EXPECT_EQ(vic::kFirstUserCounter, 1);
}

TEST(SurpriseFifo, ArrivalTimeOrderingAcrossSenders) {
  Engine e;
  vic::SurpriseFifo fifo(e, 16);
  std::vector<std::uint64_t> got;
  e.spawn([]([[maybe_unused]] Engine& eng, vic::SurpriseFifo& f, auto& out) -> Coro<void> {
    // Out-of-order deposits: arrival times decide visibility order.
    f.deposit(sim::us(5), vic::Packet{{}, 50});
    f.deposit(sim::us(2), vic::Packet{{}, 20});
    f.deposit(sim::us(8), vic::Packet{{}, 80});
    while (out.size() < 3) {
      auto batch = co_await f.wait_packets();
      for (const auto& p : batch) out.push_back(p.payload);
    }
  }(e, fifo, got));
  e.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{20, 50, 80}));
}

TEST(SurpriseFifo, PollOnlyReturnsVisiblePackets) {
  Engine e;
  vic::SurpriseFifo fifo(e, 16);
  e.spawn([](Engine& eng, vic::SurpriseFifo& f) -> Coro<void> {
    f.deposit(sim::us(1), vic::Packet{{}, 1});
    f.deposit(sim::us(100), vic::Packet{{}, 2});
    co_await eng.delay(sim::us(2));
    auto now_visible = f.poll();
    EXPECT_EQ(now_visible.size(), 1u);
    EXPECT_EQ(now_visible[0].payload, 1u);
    EXPECT_FALSE(f.ready());
    EXPECT_EQ(f.buffered(), 1u);
  }(e, fifo));
  e.run();
}

TEST(SurpriseFifo, OverflowDropsAndCounts) {
  Engine e;
  vic::SurpriseFifo fifo(e, 4);
  for (int i = 0; i < 10; ++i) fifo.deposit(0, vic::Packet{{}, 0});
  EXPECT_EQ(fifo.buffered(), 4u);
  EXPECT_EQ(fifo.dropped(), 6u);
  EXPECT_EQ(fifo.total_deposited(), 4u);
}

TEST(PcieLink, DirectionsAreIndependent) {
  vic::PcieLink link(vic::PcieParams{});
  const auto down = link.occupy(vic::PcieDir::kHostToVic, 1 << 20, 5.5e9, 0);
  const auto up = link.occupy(vic::PcieDir::kVicToHost, 1 << 20, 6.0e9, 0);
  EXPECT_NEAR(sim::to_seconds(down), (1 << 20) / 5.5e9, 1e-7);
  EXPECT_NEAR(sim::to_seconds(up), (1 << 20) / 6.0e9, 1e-7);
  // Neither waited for the other.
  EXPECT_LT(std::max(down, up), down + up);
}

TEST(PcieLink, DirectWriteMatches500MBs) {
  vic::PcieLink link(vic::PcieParams{});
  const std::int64_t bytes = 100 << 20;
  const auto t = link.direct_write(bytes, 0);
  EXPECT_NEAR(sim::rate_bytes_per_sec(bytes, t), 0.5e9, 0.01e9);
}

TEST(PcieLink, DirectReadSlowerThanWrite) {
  vic::PcieLink link(vic::PcieParams{});
  const auto w = link.direct_write(1 << 20, 0);
  vic::PcieLink link2(vic::PcieParams{});
  const auto r = link2.direct_read(1 << 20, 0);
  EXPECT_GT(r, w);
}

TEST(Dma, RatesAreSeveralTimesDirectPaths) {
  vic::PcieParams p{};
  vic::PcieLink link(p);
  vic::DmaEngine down(link, vic::PcieDir::kHostToVic);
  const std::int64_t bytes = 64 << 20;
  const auto res = down.transfer(bytes, 0);
  const double dma_bw = sim::rate_bytes_per_sec(bytes, res.complete - res.start);
  EXPECT_GT(dma_bw, 4.4e9);  // must be able to feed the fabric at line rate
  EXPECT_GT(dma_bw, 4 * 0.5e9);  // "up to 4x faster than direct writes"
}

TEST(Dma, TableRefillCostsExtraSetup) {
  vic::PcieParams p{};
  p.dma_entry_bytes = 64;
  p.dma_table_entries = 4;  // tiny table: 256 B per refill
  vic::PcieLink link(p);
  vic::DmaEngine eng(link, vic::PcieDir::kHostToVic);
  const auto one = eng.transfer(256, 0);
  vic::PcieLink link2(p);
  vic::DmaEngine eng2(link2, vic::PcieDir::kHostToVic);
  const auto two = eng2.transfer(512, 0);  // needs two refills
  const auto d1 = one.complete - one.start;
  const auto d2 = two.complete - two.start;
  EXPECT_GE(d2, 2 * d1 - sim::ns(1));  // two setups + double payload
}

TEST(Dma, InAndOutOverlap) {
  vic::PcieParams p{};
  vic::PcieLink link(p);
  vic::DmaEngine down(link, vic::PcieDir::kHostToVic);
  vic::DmaEngine up(link, vic::PcieDir::kVicToHost);
  const std::int64_t bytes = 32 << 20;
  const auto a = down.transfer(bytes, 0);
  const auto b = up.transfer(bytes, 0);
  // Overlapped: combined completion far less than serialized sum.
  EXPECT_LT(std::max(a.complete, b.complete),
            (a.complete - a.start) + (b.complete - b.start));
}

TEST(DvFabric, MemoryPacketWritesRemoteWordAndDecrementsCounter) {
  Engine e;
  vic::DvFabric fabric(e, 4);
  e.spawn([](Engine& eng, vic::DvFabric& f) -> Coro<void> {
    f.vic(2).counters().at(5).set(eng.now(), 1);
    vic::Packet p;
    p.header = vic::Header{2, vic::DestKind::kDvMemory, 5, 1234};
    p.payload = 777;
    const auto t = f.transmit(0, std::span<const vic::Packet>(&p, 1), eng.now());
    EXPECT_GT(t.first_arrival, eng.now());
    const bool ok = co_await f.vic(2).counters().at(5).wait_zero();
    EXPECT_TRUE(ok);
    EXPECT_EQ(eng.now(), t.first_arrival);
    EXPECT_EQ(f.vic(2).memory().read(1234), 777u);
  }(e, fabric));
  e.run();
  EXPECT_TRUE(e.all_done());
}

TEST(DvFabric, QueryTriggersHostFreeReply) {
  Engine e;
  vic::DvFabric fabric(e, 4);
  e.spawn([](Engine& eng, vic::DvFabric& f) -> Coro<void> {
    f.vic(3).memory().write(50, 0xabcdef);
    // Query VIC 3, addr 50; reply goes to VIC 1's FIFO (not the sender!).
    vic::Packet q;
    q.header = vic::Header{3, vic::DestKind::kQuery, vic::kNoCounter, 50};
    q.payload = vic::encode_header(vic::Header{1, vic::DestKind::kFifo, vic::kNoCounter, 0});
    f.transmit(0, std::span<const vic::Packet>(&q, 1), eng.now());
    auto got = co_await f.vic(1).fifo().wait_packets();
    EXPECT_EQ(got.size(), 1u);  // ASSERT_* cannot be used in a coroutine
    if (!got.empty()) {
      EXPECT_EQ(got[0].payload, 0xabcdefu);
    }
  }(e, fabric));
  e.run();
  EXPECT_TRUE(e.all_done());
}

TEST(DvFabric, TransmitCoalescesRunsToSameDestination) {
  Engine e;
  vic::DvFabric fabric(e, 4);
  std::vector<vic::Packet> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(vic::Packet{vic::Header{1, vic::DestKind::kDvMemory, vic::kNoCounter,
                                            static_cast<std::uint32_t>(i)},
                                static_cast<std::uint64_t>(i)});
  }
  const auto t = fabric.transmit(0, batch, 0);
  // 100 words through one port: ~100 word-times end to end.
  const auto wt = fabric.model().word_time();
  EXPECT_GE(t.last_arrival - t.first_arrival, 99 * wt);
  EXPECT_LT(t.last_arrival, 120 * wt + fabric.model().base_latency());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fabric.vic(1).memory().read(static_cast<std::uint32_t>(i)),
              static_cast<std::uint64_t>(i));
  }
}

TEST(DvFabric, IntrinsicBarrierIsNearlyFlatInNodeCount) {
  auto barrier_cost = [](int nodes) {
    Engine e;
    vic::DvFabric fabric(e, nodes);
    for (int r = 0; r < nodes; ++r) {
      e.spawn([](vic::DvFabric& f, int rank) -> Coro<void> {
        co_await f.intrinsic_barrier(rank);
      }(fabric, r));
    }
    return e.run();
  };
  const auto t2 = barrier_cost(2);
  const auto t32 = barrier_cost(32);
  EXPECT_GT(t2, 0);
  EXPECT_LT(sim::to_us(t32), 1.6) << "DV barrier should stay ~1us at 32 nodes";
  EXPECT_LT(static_cast<double>(t32) / static_cast<double>(t2), 1.4)
      << "barrier latency must be nearly flat in node count";
}

TEST(DvFabric, BarrierIsReusableAcrossPhases) {
  Engine e;
  vic::DvFabric fabric(e, 3);
  std::vector<sim::Time> done;
  for (int r = 0; r < 3; ++r) {
    e.spawn([](Engine& eng, vic::DvFabric& f, int rank, auto& out) -> Coro<void> {
      for (int phase = 0; phase < 3; ++phase) {
        co_await eng.delay(sim::us(rank + 1));
        co_await f.intrinsic_barrier(rank);
      }
      out.push_back(eng.now());
    }(e, fabric, r, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], done[1]);
  EXPECT_EQ(done[1], done[2]);
}

}  // namespace
