// Tests for the hot-path overhaul (DESIGN.md §10): the slab-backed 4-ary
// event heap must dispatch in exactly the documented (time, insertion-seq)
// order; steady-state dispatch and switch stepping must not touch the
// allocator; deep per-port backlogs must drain in bounded host time (the
// O(n) pop-front regression); and the delivery statistics must be exact
// whether or not the per-delivery log is recording.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>  // det-lint: allow(system_clock) -- host-time drain bound only
#include <cstdint>
#include <cstdlib>
#include <new>
#include <queue>
#include <vector>

#include "dvnet/cycle_switch.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;

// ---------------------------------------------------------------------------
// Global operator new/delete counting hooks. Every allocation in the test
// binary bumps the counter; the allocation-freedom tests snapshot it around
// a steady-state window and require a zero delta.

namespace {
// Atomic (relaxed) because the sharded-engine equivalence test below runs
// engine workers on std::threads, and every thread allocates through these
// hooks.
std::atomic<std::uint64_t> g_alloc_count{0};
std::uint64_t allocation_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  n = (n + align - 1) / align * align;  // C11 aligned_alloc size contract
  if (void* p = std::aligned_alloc(align, n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// ---------------------------------------------------------------------------
// Scheduler equivalence: the engine's dispatch order must match a reference
// (time, insertion-seq) min-heap across randomized interleavings of plain
// callbacks, self-rescheduling callback chains, and coroutine delay chains.

constexpr int kChainFires = 24;
constexpr int kCoroHops = 24;

struct RefEvent {
  sim::Time t;
  std::uint64_t seq;
  int id;
};
struct RefLater {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }
};

struct EqChain {
  sim::Engine* engine;
  sim::Xoshiro256 rng{0};
  int fires_left = 0;
  int id = 0;
  std::vector<int>* observed = nullptr;
};

void eq_chain_fire(EqChain* ch) {
  ch->observed->push_back(ch->id);
  if (--ch->fires_left == 0) return;
  const auto d = sim::ns(static_cast<double>(1 + ch->rng.below(64)));
  ch->engine->schedule(ch->engine->now() + d, [ch] { eq_chain_fire(ch); });
}

sim::Coro<void> eq_coro(sim::Engine& engine, sim::Xoshiro256 rng, int id,
                        std::vector<int>& observed) {
  for (int h = 0; h < kCoroHops; ++h) {
    observed.push_back(id);
    co_await engine.delay(sim::ns(static_cast<double>(1 + rng.below(64))));
  }
  observed.push_back(id);
}

TEST(SchedulerEquivalence, MatchesReferenceHeapAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    constexpr int kChains = 8;
    constexpr int kCoros = 6;
    constexpr int kOneShots = 32;

    // --- engine run ---
    sim::Engine engine;
    engine.set_audit_interval(0);
    std::vector<int> observed;
    std::vector<EqChain> chains(kChains);
    sim::Xoshiro256 setup(seed);

    // Interleave the three kinds of setup ops in a seeded random order so
    // the insertion-seq assignment itself is part of what the test varies.
    std::vector<int> ops;  // 0..kChains-1 chain, 100+j coro, 200+k one-shot
    for (int i = 0; i < kChains; ++i) ops.push_back(i);
    for (int j = 0; j < kCoros; ++j) ops.push_back(100 + j);
    for (int k = 0; k < kOneShots; ++k) ops.push_back(200 + k);
    for (std::size_t i = ops.size(); i > 1; --i) {
      std::swap(ops[i - 1], ops[setup.below(i)]);
    }

    sim::Xoshiro256 times(seed ^ 0x9E3779B97F4A7C15ull);
    std::vector<sim::Time> oneshot_times(kOneShots);
    for (auto& t : oneshot_times) {
      t = sim::ns(static_cast<double>(times.below(512)));
    }

    for (const int op : ops) {
      if (op < 100) {
        EqChain& ch = chains[static_cast<std::size_t>(op)];
        ch.engine = &engine;
        ch.rng = sim::Xoshiro256(seed * 1000 + static_cast<std::uint64_t>(op));
        ch.fires_left = kChainFires;
        ch.id = op;
        ch.observed = &observed;
        const auto d = sim::ns(static_cast<double>(1 + ch.rng.below(64)));
        EqChain* p = &ch;
        engine.schedule(d, [p] { eq_chain_fire(p); });
      } else if (op < 200) {
        const int j = op - 100;
        engine.spawn(eq_coro(engine,
                             sim::Xoshiro256(seed * 2000 +
                                             static_cast<std::uint64_t>(j)),
                             1000 + j, observed));
      } else {
        const int k = op - 200;
        engine.schedule(oneshot_times[static_cast<std::size_t>(k)],
                        [k, &observed] { observed.push_back(2000 + k); });
      }
    }
    const std::uint64_t processed_before = engine.events_processed();
    engine.run();

    // --- reference model, mirroring the exact same schedule sequence ---
    std::vector<int> expected;
    std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> ref;
    std::uint64_t ref_seq = 0;
    std::vector<sim::Xoshiro256> chain_rng;
    std::vector<int> chain_left;
    std::vector<sim::Xoshiro256> coro_rng(kCoros, sim::Xoshiro256(0));
    std::vector<int> coro_left(kCoros, 0);
    for (int i = 0; i < kChains; ++i) {
      chain_rng.emplace_back(seed * 1000 + static_cast<std::uint64_t>(i));
      chain_left.push_back(kChainFires);
    }
    for (const int op : ops) {
      if (op < 100) {
        auto& rng = chain_rng[static_cast<std::size_t>(op)];
        const auto d = sim::ns(static_cast<double>(1 + rng.below(64)));
        ref.push(RefEvent{d, ref_seq++, op});
      } else if (op < 200) {
        const int j = op - 100;
        coro_rng[static_cast<std::size_t>(j)] =
            sim::Xoshiro256(seed * 2000 + static_cast<std::uint64_t>(j));
        coro_left[static_cast<std::size_t>(j)] = kCoroHops;
        ref.push(RefEvent{0, ref_seq++, 1000 + j});  // spawn resume at t=0
      } else {
        ref.push(RefEvent{oneshot_times[static_cast<std::size_t>(op - 200)],
                          ref_seq++, 2000 + (op - 200)});
      }
    }
    std::uint64_t ref_processed = 0;
    while (!ref.empty()) {
      const RefEvent ev = ref.top();
      ref.pop();
      ++ref_processed;
      expected.push_back(ev.id);
      if (ev.id < 100) {  // chain: reschedules until its fires run out
        const auto i = static_cast<std::size_t>(ev.id);
        if (--chain_left[i] != 0) {
          const auto d = sim::ns(static_cast<double>(1 + chain_rng[i].below(64)));
          ref.push(RefEvent{ev.t + d, ref_seq++, ev.id});
        }
      } else if (ev.id < 2000) {  // coro: one wake per remaining hop
        const auto j = static_cast<std::size_t>(ev.id - 1000);
        if (coro_left[j]-- != 0) {
          const auto d = sim::ns(static_cast<double>(1 + coro_rng[j].below(64)));
          ref.push(RefEvent{ev.t + d, ref_seq++, ev.id});
        }
      }
    }

    EXPECT_EQ(observed, expected) << "seed " << seed;
    EXPECT_EQ(engine.events_processed() - processed_before, ref_processed)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Sharded-scheduler equivalence: the windowed sharded path (DESIGN.md §12)
// must match a reference model of per-shard (time, insertion-seq) heaps
// advanced in lookahead windows with the documented (time, source-shard,
// stage-order) boundary merge — and must match it at every worker count.

constexpr int kShShards = 4;
constexpr int kShChainsPerShard = 6;
constexpr int kShFires = 48;
const sim::Duration kShLookahead = sim::us(1);

struct ShChain {
  sim::Engine* engine;
  sim::Xoshiro256 rng{0};
  int shard = 0;
  int id = 0;
  int fires_left = 0;
  std::vector<std::vector<int>>* observed = nullptr;  // one log per shard
};

void sh_chain_fire(ShChain* ch) {
  (*ch->observed)[static_cast<std::size_t>(ch->shard)].push_back(ch->id);
  if (--ch->fires_left == 0) return;
  if (ch->fires_left % 4 == 0) {
    // Cross-shard one-shot: lands at now + lookahead (+ jitter), which is
    // always at/after the window end because now >= the window floor.
    const int dst = (ch->shard + 1) % kShShards;
    const int xid = 1000 + ch->id * 100 + ch->fires_left;
    const auto at = ch->engine->now() + kShLookahead +
                    sim::ns(static_cast<double>(1 + ch->rng.below(32)));
    auto* obs = ch->observed;
    ch->engine->schedule(
        at, [obs, dst, xid] { (*obs)[static_cast<std::size_t>(dst)].push_back(xid); },
        dst);
  }
  const auto d = sim::ns(static_cast<double>(1 + ch->rng.below(64)));
  ch->engine->schedule(ch->engine->now() + d, [ch] { sh_chain_fire(ch); }, ch->shard);
}

TEST(SchedulerEquivalence, ShardedPathMatchesReferenceWindowModel) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    // --- reference: per-shard heaps + window loop in plain code ---
    struct RefStaged {
      sim::Time t;
      int src;
      std::size_t idx;  // append order within the (src, dst) outbox
      int xid;
    };
    std::vector<std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater>>
        heaps(kShShards);
    std::vector<std::uint64_t> seqs(kShShards, 0);
    std::vector<sim::Xoshiro256> rngs;
    std::vector<int> fires(kShShards * kShChainsPerShard, kShFires);
    std::vector<std::vector<int>> expected(kShShards);
    for (int c = 0; c < kShShards * kShChainsPerShard; ++c) {
      rngs.emplace_back(seed * 777 + static_cast<std::uint64_t>(c));
      const int shard = c / kShChainsPerShard;
      const auto d = sim::ns(static_cast<double>(1 + rngs.back().below(64)));
      heaps[static_cast<std::size_t>(shard)].push(
          RefEvent{d, seqs[static_cast<std::size_t>(shard)]++, c});
    }
    std::uint64_t ref_events = 0;
    for (;;) {
      sim::Time t0 = -1;
      for (const auto& h : heaps) {
        if (!h.empty() && (t0 < 0 || h.top().t < t0)) t0 = h.top().t;
      }
      if (t0 < 0) break;
      const sim::Time wend = t0 + kShLookahead;
      // outboxes[src][dst], staged in dispatch order per pair
      std::vector<std::vector<std::vector<RefStaged>>> outboxes(
          kShShards, std::vector<std::vector<RefStaged>>(kShShards));
      for (int s = 0; s < kShShards; ++s) {
        auto& heap = heaps[static_cast<std::size_t>(s)];
        while (!heap.empty() && heap.top().t < wend) {
          const RefEvent ev = heap.top();
          heap.pop();
          ++ref_events;
          expected[static_cast<std::size_t>(s)].push_back(ev.id);
          if (ev.id >= 1000) continue;  // staged one-shot: no reschedule
          auto& rng = rngs[static_cast<std::size_t>(ev.id)];
          auto& left = fires[static_cast<std::size_t>(ev.id)];
          if (--left == 0) continue;
          if (left % 4 == 0) {
            const int dst = (s + 1) % kShShards;
            const int xid = 1000 + ev.id * 100 + left;
            const auto at =
                ev.t + kShLookahead + sim::ns(static_cast<double>(1 + rng.below(32)));
            auto& box = outboxes[static_cast<std::size_t>(s)][static_cast<std::size_t>(dst)];
            box.push_back(RefStaged{at, s, box.size(), xid});
          }
          const auto d = sim::ns(static_cast<double>(1 + rng.below(64)));
          heap.push(RefEvent{ev.t + d, seqs[static_cast<std::size_t>(s)]++, ev.id});
        }
      }
      // Boundary merge: (time, source shard, stage order), then destination
      // seqs assigned in exactly that order.
      for (int dst = 0; dst < kShShards; ++dst) {
        std::vector<RefStaged> merged;
        for (int src = 0; src < kShShards; ++src) {
          const auto& box =
              outboxes[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
          merged.insert(merged.end(), box.begin(), box.end());
        }
        std::sort(merged.begin(), merged.end(),
                  [](const RefStaged& a, const RefStaged& b) {
                    if (a.t != b.t) return a.t < b.t;
                    if (a.src != b.src) return a.src < b.src;
                    return a.idx < b.idx;
                  });
        for (const RefStaged& st : merged) {
          heaps[static_cast<std::size_t>(dst)].push(
              RefEvent{st.t, seqs[static_cast<std::size_t>(dst)]++, st.xid});
        }
      }
    }

    // --- engine runs at several worker counts; all must match the model ---
    for (const int threads : {1, 2, 4}) {
      sim::Engine engine;
      engine.set_audit_interval(0);
      engine.configure_sharding(
          {.shards = kShShards, .threads = threads, .lookahead = kShLookahead});
      std::vector<std::vector<int>> observed(kShShards);
      std::vector<ShChain> chains(kShShards * kShChainsPerShard);
      for (int c = 0; c < kShShards * kShChainsPerShard; ++c) {
        ShChain& ch = chains[static_cast<std::size_t>(c)];
        ch.engine = &engine;
        ch.rng = sim::Xoshiro256(seed * 777 + static_cast<std::uint64_t>(c));
        ch.shard = c / kShChainsPerShard;
        ch.id = c;
        ch.fires_left = kShFires;
        ch.observed = &observed;
        const auto d = sim::ns(static_cast<double>(1 + ch.rng.below(64)));
        ShChain* p = &ch;
        engine.schedule(d, [p] { sh_chain_fire(p); }, ch.shard);
      }
      engine.run();
      EXPECT_EQ(engine.events_processed(), ref_events)
          << "seed " << seed << " threads " << threads;
      for (int s = 0; s < kShShards; ++s) {
        EXPECT_EQ(observed[static_cast<std::size_t>(s)],
                  expected[static_cast<std::size_t>(s)])
            << "seed " << seed << " threads " << threads << " shard " << s;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Allocation freedom: once slabs, heap storage, and switch buffers are
// warmed, dispatching events and stepping the switch must never reach the
// allocator.

struct AllocChain {
  sim::Engine* engine;
  int n = 0;
  std::uint64_t at_warm = 0;
  std::uint64_t at_end = 0;
};
constexpr int kAllocWarm = 2000;
constexpr int kAllocTotal = 6000;

void alloc_chain_tick(AllocChain* st) {
  ++st->n;
  if (st->n == kAllocWarm) st->at_warm = allocation_count();
  if (st->n == kAllocTotal) {
    st->at_end = allocation_count();
    return;
  }
  st->engine->schedule(st->engine->now() + sim::ns(3), [st] { alloc_chain_tick(st); });
}

TEST(AllocationFree, EngineSteadyStateDispatch) {
  // The counting hook must actually be linked in, or the zero-delta
  // assertions below would pass vacuously.
  const std::uint64_t sanity = allocation_count();
  std::vector<int> probe(64);
  ASSERT_GT(allocation_count(), sanity);
  probe.clear();

  sim::Engine engine;
  engine.set_audit_interval(0);
  AllocChain st{&engine};
  AllocChain* p = &st;
  engine.schedule(sim::ns(1), [p] { alloc_chain_tick(p); });
  // A coroutine delay chain alongside, so the handle-slab path is inside
  // the measured window too. Its frame is allocated at spawn (warm-up).
  engine.spawn([](sim::Engine& eng) -> sim::Coro<void> {
    for (int h = 0; h < kAllocTotal; ++h) co_await eng.delay(sim::ns(2));
  }(engine));
  engine.run();
  ASSERT_EQ(st.n, kAllocTotal);
  EXPECT_EQ(st.at_end, st.at_warm)
      << "Engine::run() dispatch allocated in the steady-state window";
}

TEST(AllocationFree, CycleSwitchStepSteadyState) {
  dvnet::CycleSwitch sw(dvnet::Geometry{8, 4});
  const int ports = sw.geometry().ports();
  sim::Xoshiro256 rng(5);
  // Warm-up at full saturation: every buffer, slab, and worklist reaches a
  // high-water mark no sub-saturation steady state will exceed.
  for (int round = 0; round < 64; ++round) {
    for (int p = 0; p < ports; ++p) {
      sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(ports))));
    }
    sw.step();
  }
  ASSERT_TRUE(sw.drain());
  const std::uint64_t before = allocation_count();
  for (int cyc = 0; cyc < 4096; ++cyc) {
    for (int p = 0; p < ports; ++p) {
      if (rng.chance(0.15)) {
        sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(ports))));
      }
    }
    sw.step();
  }
  ASSERT_TRUE(sw.drain());
  EXPECT_EQ(allocation_count(), before)
      << "CycleSwitch::step() allocated in the steady-state window";
}

// ---------------------------------------------------------------------------
// Deep per-port backlog: with head-indexed ring queues a drain's cost is
// linear in the backlog. Before the rework, pop-front was an O(n) erase and
// this workload (tens of thousands of packets queued on two ports) took
// quadratic time in the queue depth.

TEST(CycleSwitchPerf, DeepPerPortBacklogDrainsInBoundedTime) {
  dvnet::CycleSwitch sw(dvnet::Geometry{8, 4});
  const int ports = sw.geometry().ports();
  sim::Xoshiro256 rng(11);
  constexpr int kPerPort = 1 << 15;
  const auto host_start = std::chrono::steady_clock::now();  // det-lint: allow(system_clock) -- host-time drain bound only
  for (int i = 0; i < kPerPort; ++i) {
    for (int p = 0; p < 2; ++p) {
      sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(ports))));
    }
  }
  EXPECT_EQ(sw.queued(), static_cast<std::size_t>(2 * kPerPort));
  ASSERT_TRUE(sw.drain(500'000)) << "deep backlog failed to drain";
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -  // det-lint: allow(system_clock) -- host-time drain bound only
                                    host_start)
          .count();
  EXPECT_EQ(sw.queued(), 0u);
  EXPECT_EQ(sw.injected_total(), static_cast<std::uint64_t>(2 * kPerPort));
  EXPECT_EQ(sw.delivered_total(), sw.injected_total());
  // Generous for shared CI machines; the quadratic behavior this guards
  // against took minutes at this depth.
  EXPECT_LT(host_seconds, 30.0);
}

// ---------------------------------------------------------------------------
// queued() running counter and delivery-statistics exactness.

TEST(CycleSwitch, QueuedCounterTracksBacklog) {
  dvnet::CycleSwitch sw(dvnet::Geometry{8, 4});
  const int ports = sw.geometry().ports();
  for (int i = 0; i < 100; ++i) {
    sw.inject(i % ports, (i * 7) % ports);
  }
  EXPECT_EQ(sw.queued(), 100u);
  EXPECT_EQ(sw.injected_total(), 0u);  // still queued, not yet in the fabric
  sw.step();
  EXPECT_LT(sw.queued(), 100u);
  EXPECT_EQ(sw.queued() + sw.in_flight() + sw.delivered_total(), 100u);
  ASSERT_TRUE(sw.drain());
  EXPECT_EQ(sw.queued(), 0u);
  EXPECT_EQ(sw.delivered_total(), 100u);
}

void expect_stats_equal(const sim::RunningStats& a, const sim::RunningStats& b,
                        const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
  EXPECT_EQ(a.total(), b.total()) << what;
}

TEST(CycleSwitch, StatsExactWithDeliveryLogDisabled) {
  dvnet::CycleSwitch logged(dvnet::Geometry{8, 4});
  dvnet::CycleSwitch bare(dvnet::Geometry{8, 4});
  logged.record_deliveries(true);
  EXPECT_TRUE(logged.deliveries_recorded());
  EXPECT_FALSE(bare.deliveries_recorded());

  const int ports = logged.geometry().ports();
  sim::Xoshiro256 rng(99);
  for (int cyc = 0; cyc < 2000; ++cyc) {
    for (int p = 0; p < ports; ++p) {
      if (rng.chance(0.3)) {
        const int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(ports)));
        logged.inject(p, dst);
        bare.inject(p, dst);
      }
    }
    logged.step();
    bare.step();
  }
  ASSERT_TRUE(logged.drain());
  ASSERT_TRUE(bare.drain());

  ASSERT_EQ(logged.delivered_total(), bare.delivered_total());
  ASSERT_GT(logged.delivered_total(), 0u);
  EXPECT_EQ(logged.deliveries().size(), logged.delivered_total());
  EXPECT_TRUE(bare.deliveries().empty());

  // Identical traffic => bitwise-identical statistics, log or no log.
  expect_stats_equal(logged.latency_stats(), bare.latency_stats(), "latency");
  expect_stats_equal(logged.hop_stats(), bare.hop_stats(), "hops");
  expect_stats_equal(logged.deflection_stats(), bare.deflection_stats(),
                     "deflections");

  // The log replays to exactly the incremental statistics (same fold order).
  sim::RunningStats replay;
  for (const auto& d : logged.deliveries()) {
    replay.add(static_cast<double>(d.eject_cycle - d.inject_cycle));
  }
  expect_stats_equal(replay, logged.latency_stats(), "latency replay");

  // clear_deliveries resets both the log and the since-last-clear stats.
  logged.clear_deliveries();
  EXPECT_TRUE(logged.deliveries().empty());
  EXPECT_EQ(logged.latency_stats().count(), 0u);
  EXPECT_EQ(logged.hop_stats().count(), 0u);
}

}  // namespace
