// Tests for the Data Vortex switch: geometry math, cycle-accurate deflection
// routing, the analytic fabric model, and their cross-validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "dvnet/geometry.hpp"
#include "dvnet/traffic.hpp"
#include "sim/rng.hpp"

namespace dvnet = dvx::dvnet;
namespace sim = dvx::sim;

namespace {

TEST(Geometry, CylinderCountFollowsLog2H) {
  dvnet::Geometry g{8, 4};
  EXPECT_EQ(g.height_bits(), 3);
  EXPECT_EQ(g.cylinders(), 4);  // C = log2(H) + 1
  EXPECT_EQ(g.ports(), 32);
  EXPECT_EQ(g.nodes(), 32 * 4);  // A*H*C
}

TEST(Geometry, PortMappingRoundTrips) {
  dvnet::Geometry g{16, 3};
  for (int p = 0; p < g.ports(); ++p) {
    EXPECT_EQ(g.port_of(g.port_height(p), g.port_angle(p)), p);
  }
}

TEST(Geometry, ForPortsRoundsHeightUpToPowerOfTwo) {
  auto g = dvnet::Geometry::for_ports(32, 4);
  EXPECT_EQ(g.heights, 8);
  EXPECT_EQ(g.angles, 4);
  auto g2 = dvnet::Geometry::for_ports(33, 4);
  EXPECT_EQ(g2.heights, 16);
  EXPECT_GE(g2.ports(), 33);
}

TEST(Geometry, ValidateRejectsBadShapes) {
  EXPECT_THROW((dvnet::Geometry{6, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((dvnet::Geometry{8, 0}.validate()), std::invalid_argument);
  EXPECT_THROW(dvnet::Geometry::for_ports(0), std::invalid_argument);
}

TEST(CycleSwitch, SinglePacketReachesItsDestination) {
  dvnet::CycleSwitch sw(dvnet::Geometry{8, 4});
  sw.record_deliveries(true);  // the per-delivery log is opt-in
  sw.inject(0, 17, /*tag=*/99);
  ASSERT_TRUE(sw.drain());
  ASSERT_EQ(sw.deliveries().size(), 1u);
  const auto& d = sw.deliveries()[0];
  EXPECT_EQ(d.src_port, 0);
  EXPECT_EQ(d.dst_port, 17);
  EXPECT_EQ(d.tag, 99u);
  EXPECT_EQ(d.deflections, 0);  // empty fabric: no contention
  EXPECT_GE(d.hops, sw.geometry().height_bits());
}

TEST(CycleSwitch, SelfSendIsDelivered) {
  dvnet::CycleSwitch sw(dvnet::Geometry{4, 2});
  sw.record_deliveries(true);
  sw.inject(3, 3);
  ASSERT_TRUE(sw.drain());
  ASSERT_EQ(sw.deliveries().size(), 1u);
  EXPECT_EQ(sw.deliveries()[0].dst_port, 3);
}

TEST(CycleSwitch, InjectRejectsBadPorts) {
  dvnet::CycleSwitch sw(dvnet::Geometry{4, 2});
  EXPECT_THROW(sw.inject(-1, 0), std::out_of_range);
  EXPECT_THROW(sw.inject(0, 8), std::out_of_range);
}

struct SwitchShape {
  int heights;
  int angles;
};

class CycleSwitchProperty : public ::testing::TestWithParam<SwitchShape> {};

// Property: under uniform random traffic every injected packet is delivered
// exactly once, to the right port, and each output port ejects at most one
// packet per cycle.
TEST_P(CycleSwitchProperty, RandomTrafficLosslessAndRateLimited) {
  const auto shape = GetParam();
  dvnet::Geometry g{shape.heights, shape.angles};
  dvnet::CycleSwitch sw(g);
  sw.record_deliveries(true);
  sim::Xoshiro256 rng(1234);
  const int kPackets = 40 * g.ports();
  std::map<std::uint64_t, int> expected;  // tag -> dst
  for (int i = 0; i < kPackets; ++i) {
    const int src = static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports())));
    const int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports())));
    sw.inject(src, dst, static_cast<std::uint64_t>(i));
    expected[static_cast<std::uint64_t>(i)] = dst;
  }
  ASSERT_TRUE(sw.drain(2'000'000));
  ASSERT_EQ(sw.deliveries().size(), static_cast<std::size_t>(kPackets));
  std::set<std::uint64_t> seen;
  std::map<std::pair<int, std::uint64_t>, int> ejections_per_port_cycle;
  for (const auto& d : sw.deliveries()) {
    EXPECT_TRUE(seen.insert(d.tag).second) << "duplicate delivery of tag " << d.tag;
    EXPECT_EQ(expected.at(d.tag), d.dst_port);
    const auto key = std::make_pair(d.dst_port, d.eject_cycle);
    EXPECT_LE(++ejections_per_port_cycle[key], 1);
  }
}

// Property: a full port permutation (everyone sends to a distinct target)
// drains without loss — the congestion-free claim for admissible traffic.
TEST_P(CycleSwitchProperty, PermutationTrafficDrains) {
  const auto shape = GetParam();
  dvnet::Geometry g{shape.heights, shape.angles};
  dvnet::CycleSwitch sw(g);
  const int n = g.ports();
  for (int burst = 0; burst < 8; ++burst) {
    for (int p = 0; p < n; ++p) {
      sw.inject(p, (p + 7 * burst + 1) % n, static_cast<std::uint64_t>(burst * n + p));
    }
  }
  ASSERT_TRUE(sw.drain(1'000'000));
  // Delivery log left off: the running totals alone prove losslessness.
  EXPECT_EQ(sw.delivered_total(), static_cast<std::uint64_t>(8 * n));
  EXPECT_TRUE(sw.deliveries().empty());
}

INSTANTIATE_TEST_SUITE_P(Shapes, CycleSwitchProperty,
                         ::testing::Values(SwitchShape{4, 2}, SwitchShape{8, 4},
                                           SwitchShape{16, 2}, SwitchShape{16, 4},
                                           SwitchShape{32, 4}, SwitchShape{8, 1}),
                         [](const auto& shape_info) {
                           return "H" + std::to_string(shape_info.param.heights) + "A" +
                                  std::to_string(shape_info.param.angles);
                         });

TEST(CycleSwitch, HotspotTrafficStillDrainsWithDeflections) {
  dvnet::Geometry g{8, 4};
  dvnet::CycleSwitch sw(g);
  // Everyone hammers port 5: ejection serialization forces deflections.
  for (int round = 0; round < 16; ++round) {
    for (int p = 0; p < g.ports(); ++p) sw.inject(p, 5);
  }
  ASSERT_TRUE(sw.drain(2'000'000));
  EXPECT_EQ(sw.delivered_total(), static_cast<std::uint64_t>(16 * g.ports()));
  EXPECT_GT(sw.deflection_stats().max(), 0.0);
}

TEST(CycleSwitch, LightLoadLatencyMatchesAnalyticBaseHops) {
  dvnet::Geometry g{8, 4};
  dvnet::CycleSwitch sw(g);
  sim::Xoshiro256 rng(7);
  // One packet at a time: measure uncontended latency.
  sim::RunningStats lat;
  for (int i = 0; i < 400; ++i) {
    sw.inject(static_cast<int>(rng.below(32)), static_cast<int>(rng.below(32)));
    ASSERT_TRUE(sw.drain());
  }
  lat = sw.latency_stats();
  dvnet::FabricParams fp{.geometry = g};
  const double analytic = fp.derived_base_hops();
  EXPECT_NEAR(lat.mean(), analytic, 0.4 * analytic)
      << "cycle-accurate mean latency " << lat.mean() << " cycles vs analytic "
      << analytic;
}

// Helper: run uniform random traffic at a given offered load (packets per
// port per fabric cycle) and return (sustained throughput, mean latency).
std::pair<double, double> run_uniform_load(double load, std::uint64_t cycles,
                                           std::uint64_t seed = 99) {
  dvnet::Geometry g{8, 4};
  dvnet::CycleSwitch sw(g);
  sim::Xoshiro256 rng(seed);
  std::uint64_t offered = 0;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (int p = 0; p < g.ports(); ++p) {
      if (rng.uniform() < load) {
        sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))));
        ++offered;
      }
    }
    sw.step();
  }
  if (!sw.drain(8'000'000)) return {0.0, 0.0};
  if (sw.delivered_total() != offered) return {0.0, 0.0};  // loss = failure
  const double thr = static_cast<double>(sw.delivered_total()) /
                     (static_cast<double>(sw.cycle()) * g.ports());
  return {thr, sw.latency_stats().mean()};
}

TEST(CycleSwitch, SustainedFullOfferedLoadIsLossless) {
  // 100% offered uniform load: a deflection fabric saturates well below one
  // packet per fabric slot (the electronic implementation compensates with
  // internal speedup over the port clock), but it must remain lossless and
  // keep a useful sustained rate.
  const auto [thr, lat] = run_uniform_load(1.0, 800);
  ASSERT_GT(thr, 0.0) << "drain failed or packets were lost";
  EXPECT_GT(thr, 0.15) << "sustained throughput collapsed";
  EXPECT_GT(lat, 0.0);
}

TEST(CycleSwitch, LatencyStaysFlatBeyondSaturation) {
  // The paper (and the original optical-switch studies) credit the Data
  // Vortex with "robust throughput and latency ... under nonuniform and
  // bursty traffic" thanks to inherent traffic smoothing: once injection
  // backpressure engages, in-fabric latency stays nearly constant instead of
  // diverging the way buffered fabrics do.
  const auto [thr_lo, lat_lo] = run_uniform_load(0.25, 800);
  const auto [thr_hi, lat_hi] = run_uniform_load(1.00, 800);
  ASSERT_GT(thr_lo, 0.0);
  ASSERT_GT(thr_hi, 0.0);
  EXPECT_LT(lat_hi, 2.0 * lat_lo)
      << "in-fabric latency should not blow up past saturation (smoothing)";
  EXPECT_GE(thr_hi, thr_lo * 0.9);  // throughput holds at saturation
}

TEST(FabricModel, UncontendedSingleWordLatency) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  const auto t = fm.send_burst(0, 9, 1, sim::us(1));
  EXPECT_EQ(t.first_arrival, t.last_arrival);
  EXPECT_EQ(t.first_arrival, sim::us(1) + fm.word_time() + fm.base_latency());
}

TEST(FabricModel, PortBandwidthMatchesNominal44GBs) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  EXPECT_NEAR(fm.port_bandwidth(), 4.4e9, 0.01e9);
  const std::int64_t kWords = 1 << 20;
  const auto t = fm.send_burst(0, 1, kWords, 0);
  const double bw = sim::rate_bytes_per_sec(kWords * 8, t.last_arrival);
  EXPECT_NEAR(bw, 4.4e9, 0.05e9);
}

TEST(FabricModel, InjectionPortSerializesConsecutiveBursts) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  const auto a = fm.send_burst(0, 1, 1000, 0);
  const auto b = fm.send_burst(0, 2, 1000, 0);  // same source, different dst
  EXPECT_GE(b.first_arrival, 1000 * fm.word_time());  // waits for port
  EXPECT_GT(b.last_arrival, a.last_arrival);
}

TEST(FabricModel, EjectionPortSerializesConvergingBursts) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  const auto a = fm.send_burst(0, 5, 1000, 0);
  const auto b = fm.send_burst(1, 5, 1000, 0);  // different source, same dst
  // Combined ejection cannot beat 2000 word times through one port.
  EXPECT_GE(std::max(a.last_arrival, b.last_arrival), 2000 * fm.word_time());
}

TEST(FabricModel, DisjointPairsDoNotInterfere) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  const auto a = fm.send_burst(0, 1, 1 << 16, 0);
  const auto b = fm.send_burst(2, 3, 1 << 16, 0);
  EXPECT_EQ(a.last_arrival, b.last_arrival);  // fully parallel paths
}

TEST(FabricModel, ContentionAddsDeflectionPenalty) {
  dvnet::FabricParams fp{.geometry = {8, 4}};
  dvnet::FabricModel fm(fp);
  const auto first = fm.send_burst(0, 1, 1, 0);
  // Immediately behind the first: the source port is still busy -> extra hops.
  const auto second = fm.send_burst(0, 1, 1, 0);
  const auto gap = second.first_arrival - first.first_arrival;
  EXPECT_GE(gap, fm.word_time());  // at least serialized
  const auto uncontended_gap = fm.word_time();
  EXPECT_GT(gap, uncontended_gap);  // plus the ~2-hop penalty
}

TEST(FabricModel, ZeroWordBurstIsFree) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  const auto t = fm.send_burst(0, 1, 0, sim::us(3));
  EXPECT_EQ(t.first_arrival, sim::us(3));
  EXPECT_EQ(t.last_arrival, sim::us(3));
  EXPECT_EQ(fm.words_sent(), 0u);
}

TEST(FabricModel, ResetClearsBacklog) {
  dvnet::FabricModel fm(dvnet::FabricParams{.geometry = {8, 4}});
  fm.send_burst(0, 1, 1 << 20, 0);
  fm.reset();
  EXPECT_EQ(fm.injection_free(0), 0);
  EXPECT_EQ(fm.ejection_free(1), 0);
  EXPECT_EQ(fm.words_sent(), 0u);
}

// -- synthetic traffic cross-checks ------------------------------------------

TEST(Traffic, PermutationPatternsAreDeterministicAndInRange) {
  sim::Xoshiro256 rng(1);
  dvnet::TrafficConfig cfg;
  for (auto p : {dvnet::TrafficPattern::kTranspose, dvnet::TrafficPattern::kBitReverse}) {
    cfg.pattern = p;
    for (int src = 0; src < 32; ++src) {
      const int d1 = dvnet::traffic_destination(cfg, src, 32, rng);
      const int d2 = dvnet::traffic_destination(cfg, src, 32, rng);
      EXPECT_EQ(d1, d2);  // permutations ignore the RNG
      EXPECT_GE(d1, 0);
      EXPECT_LT(d1, 32);
    }
  }
}

TEST(Traffic, UniformTrafficStaysNearTheUncontendedBase) {
  const dvnet::Geometry g = dvnet::Geometry::for_ports(32, 4);
  dvnet::CycleSwitch sw(g);
  dvnet::TrafficConfig cfg;
  cfg.pattern = dvnet::TrafficPattern::kUniform;
  cfg.offered_load = 0.08;
  const auto r = dvnet::run_synthetic(sw, cfg, 4000, 23);
  ASSERT_GT(r.delivered, 0u);
  EXPECT_TRUE(r.drained);
  const double base = dvnet::FabricParams{.geometry = g}.derived_base_hops();
  // Benign traffic: measured traversal within one hop of the analytic mean.
  EXPECT_LT(std::abs(r.hops.mean() - base), 1.0);
}

TEST(Traffic, HotspotExtraHopsStraddleTheAnalyticDeflectionPenalty) {
  // The cycle-accurate switch and the analytic FabricModel were calibrated
  // independently; this pins the §II claim that ties them together. Under
  // the bench's calibrated hotspot point (hot-port offered rate ~0.77 of
  // its ejection capacity), measured mean extra hops must straddle
  // FabricParams::contended_extra_hops = 2.0.
  const dvnet::Geometry g = dvnet::Geometry::for_ports(32, 4);
  dvnet::CycleSwitch sw(g);
  dvnet::TrafficConfig cfg;
  cfg.pattern = dvnet::TrafficPattern::kHotspot;
  cfg.offered_load = 0.08;
  cfg.hotspot_fraction = 0.3;
  const auto r = dvnet::run_synthetic(sw, cfg, 4000, 23);
  ASSERT_GT(r.delivered, 0u);
  const dvnet::FabricParams fp{.geometry = g};
  const double extra = r.hops.mean() - fp.derived_base_hops();
  EXPECT_GE(extra, fp.contended_extra_hops - 0.5);
  EXPECT_LE(extra, fp.contended_extra_hops + 0.5);
  // Deflections are what buys those hops: contention must show up here too.
  EXPECT_GT(r.deflections.mean(), 0.5);
}

}  // namespace
