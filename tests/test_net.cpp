// Property tests for the net::Interconnect seam and its two MPI-side
// implementations: the routing/contention behavior the seam refactor must
// preserve in ib::Fabric, mirrored for the new torus::Fabric.

#include <gtest/gtest.h>

#include <array>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ib/topology.hpp"
#include "mpi/comm.hpp"
#include "net/interconnect.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "torus/fabric.hpp"

namespace sim = dvx::sim;
namespace net = dvx::net;
namespace ib = dvx::ib;
namespace torus = dvx::torus;
namespace mpi = dvx::mpi;

namespace {

/// First-arrival of one `bytes` message src -> dst on a fresh fabric.
sim::Time fresh_latency(net::Interconnect& fab, int src, int dst,
                        std::int64_t bytes) {
  fab.reset();
  return fab.send_message(src, dst, bytes, 0).first_arrival;
}

// --- ib::Fabric: properties the seam must preserve ---------------------------

TEST(IbSeam, PathLinksSameLeafVsCrossLeaf) {
  ib::Fabric fab(32);  // leaves of 8
  EXPECT_EQ(fab.path_links(0, 0), 0);
  EXPECT_EQ(fab.path_links(0, 7), 2);   // same leaf: up + down
  EXPECT_EQ(fab.path_links(0, 8), 4);   // cross leaf: up + 2 spine hops + down
  EXPECT_EQ(fab.path_links(31, 1), 4);
  EXPECT_THROW(fab.path_links(0, 32), std::out_of_range);
}

TEST(IbSeam, CrossLeafLatencyExceedsSameLeaf) {
  ib::Fabric fab(32);
  const auto near = fresh_latency(fab, 0, 7, 8);
  const auto far = fresh_latency(fab, 0, 8, 8);
  EXPECT_GT(far, near);
}

TEST(IbSeam, ConcurrentFlowsSharingDownLinkSerialize) {
  // Flows 1->0 and 2->0 share the leaf->node down link into 0; the second
  // message must wait out the first one's serialization there.
  ib::Fabric fab(32);
  const std::int64_t kBytes = 1 << 20;
  fab.reset();
  const auto alone = fab.send_message(2, 0, kBytes, 0).last_arrival;
  fab.reset();
  fab.send_message(1, 0, kBytes, 0);
  const auto contended = fab.send_message(2, 0, kBytes, 0).last_arrival;
  EXPECT_GT(contended, alone + sim::us(50));
  // A flow touching none of those links is unaffected.
  fab.reset();
  const auto disjoint_alone = fab.send_message(9, 10, kBytes, 0).last_arrival;
  fab.reset();
  fab.send_message(1, 0, kBytes, 0);
  EXPECT_EQ(fab.send_message(9, 10, kBytes, 0).last_arrival, disjoint_alone);
}

TEST(IbSeam, MessageRateGateSpacesTinySends) {
  ib::Fabric fab(2);
  const int kMsgs = 1000;
  sim::Time last = 0;
  for (int i = 0; i < kMsgs; ++i) {
    last = fab.send_message(0, 1, 8, 0).last_arrival;
  }
  // 100 M msgs/s => 10 ns spacing dominates 999 queued tiny messages.
  EXPECT_GE(last, sim::ns(10) * (kMsgs - 1));
}

TEST(IbSeam, SeamDispatchMatchesDirectCalls) {
  ib::Fabric direct(32);
  std::unique_ptr<net::Interconnect> seam = std::make_unique<ib::Fabric>(32);
  sim::Xoshiro256 rng(42);
  for (int i = 0; i < 200; ++i) {
    const int src = static_cast<int>(rng.below(32));
    const int dst = static_cast<int>(rng.below(32));
    const auto bytes = static_cast<std::int64_t>(rng.below(1 << 16)) + 1;
    const auto ready = static_cast<sim::Time>(i) * sim::ns(100);
    const auto a = direct.send_message(src, dst, bytes, ready);
    const auto b = seam->send_message(src, dst, bytes, ready);
    ASSERT_EQ(a.first_arrival, b.first_arrival);
    ASSERT_EQ(a.last_arrival, b.last_arrival);
  }
  EXPECT_EQ(direct.bytes_sent(), seam->bytes_sent());
}

// --- torus::Fabric: mirrored properties --------------------------------------

TEST(TorusFabric, AutoFactorizationIsNearCubic) {
  EXPECT_EQ(torus::Fabric(64).dims(), (std::array<int, 3>{4, 4, 4}));
  EXPECT_EQ(torus::Fabric(32).dims(), (std::array<int, 3>{2, 4, 4}));
  EXPECT_EQ(torus::Fabric(8).dims(), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(torus::Fabric(7).dims(), (std::array<int, 3>{1, 1, 7}));  // ring
}

TEST(TorusFabric, ValidatesConstruction) {
  EXPECT_THROW(torus::Fabric(0), std::invalid_argument);
  torus::TorusParams p;
  p.dims = {4, 4, 4};
  EXPECT_NO_THROW(torus::Fabric(64, p));
  EXPECT_THROW(torus::Fabric(32, p), std::invalid_argument);  // product mismatch
  p.dims = {4, 4, 0};
  EXPECT_THROW(torus::Fabric(64, p), std::invalid_argument);  // partial dims
  torus::Fabric ok(64);
  EXPECT_THROW(ok.send_message(0, 64, 8, 0), std::out_of_range);
}

TEST(TorusFabric, CoordsRoundTrip) {
  torus::Fabric fab(32);
  for (int n = 0; n < 32; ++n) {
    const auto c = fab.coords(n);
    EXPECT_EQ(fab.node_at(c[0], c[1], c[2]), n);
  }
}

TEST(TorusFabric, DimensionOrderPathLengths) {
  torus::Fabric fab(64);  // 4 x 4 x 4
  const int origin = fab.node_at(0, 0, 0);
  EXPECT_EQ(fab.hops(origin, origin), 0);
  EXPECT_EQ(fab.hops(origin, fab.node_at(1, 0, 0)), 1);
  EXPECT_EQ(fab.hops(origin, fab.node_at(3, 0, 0)), 1);  // wraparound -x
  EXPECT_EQ(fab.hops(origin, fab.node_at(2, 0, 0)), 2);  // half the ring
  EXPECT_EQ(fab.hops(origin, fab.node_at(1, 1, 0)), 2);
  EXPECT_EQ(fab.hops(origin, fab.node_at(2, 2, 2)), 6);  // torus diameter
  EXPECT_EQ(fab.dim_hops(origin, fab.node_at(3, 1, 2)),
            (std::array<int, 3>{1, 1, 2}));
}

TEST(TorusFabric, WraparoundSymmetry) {
  torus::Fabric fab(60);  // 3 x 4 x 5: odd and even rings
  for (int a = 0; a < 60; ++a) {
    for (int b = 0; b < 60; ++b) {
      EXPECT_EQ(fab.hops(a, b), fab.hops(b, a));
    }
  }
}

TEST(TorusFabric, LatencyScalesWithManhattanDistance) {
  torus::Fabric fab(64);
  const int origin = fab.node_at(0, 0, 0);
  const auto one = fresh_latency(fab, origin, fab.node_at(1, 0, 0), 8);
  const auto wrap = fresh_latency(fab, origin, fab.node_at(3, 0, 0), 8);
  const auto three = fresh_latency(fab, origin, fab.node_at(1, 1, 1), 8);
  const auto six = fresh_latency(fab, origin, fab.node_at(2, 2, 2), 8);
  EXPECT_EQ(one, wrap);  // both a single hop, one of them wrapped
  EXPECT_LT(one, three);
  EXPECT_LT(three, six);
}

TEST(TorusFabric, SharedLinkSerializesDisjointDoesNot) {
  // Dimension-order in 4x4x4: 0->(2,0,0) goes +x through (1,0,0) — the tie
  // at half the ring resolves positive — so it shares (1,0,0)'s +x link
  // with flow (1,0,0)->(2,0,0).
  torus::Fabric fab(64);
  const std::int64_t kBytes = 1 << 20;
  const int mid = fab.node_at(1, 0, 0);
  const int dst = fab.node_at(2, 0, 0);
  fab.reset();
  const auto alone = fab.send_message(mid, dst, kBytes, 0).last_arrival;
  fab.reset();
  fab.send_message(0, dst, kBytes, 0);
  EXPECT_GT(fab.send_message(mid, dst, kBytes, 0).last_arrival,
            alone + sim::us(50));
  // A flow on another y-row touches none of those links.
  const int a = fab.node_at(0, 1, 0);
  const int b = fab.node_at(1, 1, 0);
  fab.reset();
  const auto disjoint_alone = fab.send_message(a, b, kBytes, 0).last_arrival;
  fab.reset();
  fab.send_message(0, dst, kBytes, 0);
  EXPECT_EQ(fab.send_message(a, b, kBytes, 0).last_arrival, disjoint_alone);
}

TEST(TorusFabric, MessageRateGateSpacesTinySends) {
  torus::Fabric fab(8);
  const int kMsgs = 1000;
  sim::Time last = 0;
  for (int i = 0; i < kMsgs; ++i) {
    last = fab.send_message(0, 1, 8, 0).last_arrival;
  }
  EXPECT_GE(last, sim::ns(10) * (kMsgs - 1));
}

TEST(TorusFabric, LoopbackUsesSharedMemory) {
  torus::Fabric fab(8);
  const auto t = fab.send_message(3, 3, 1 << 20, 0);
  EXPECT_EQ(t.first_arrival, t.last_arrival);
  // 1 MiB at 8 GB/s host copy ~ 131 us; far below one network hop per MTU.
  EXPECT_LT(t.last_arrival, sim::us(200));
}

TEST(TorusFabric, LinkByteConservation) {
  // Every payload byte is serialized on exactly hops(src, dst) links.
  torus::Fabric fab(60);
  sim::Xoshiro256 rng(7);
  std::int64_t expected = 0;
  for (int i = 0; i < 500; ++i) {
    const int src = static_cast<int>(rng.below(60));
    const int dst = static_cast<int>(rng.below(60));
    const auto bytes = static_cast<std::int64_t>(rng.below(1 << 15)) + 1;
    fab.send_message(src, dst, bytes, 0);
    if (src != dst) expected += bytes * fab.hops(src, dst);
  }
  EXPECT_EQ(fab.link_bytes(), expected);
  fab.reset();
  EXPECT_EQ(fab.link_bytes(), 0);
  EXPECT_EQ(fab.bytes_sent(), 0);
}

TEST(TorusFabric, EvenDimensionTieRoutesPositive) {
  // On an even-extent dimension, a distance of exactly dims[d]/2 is the same
  // length both ways. The documented tie-break is the positive direction —
  // this pins it as a property over every node and dimension of a 4x4x4
  // torus, so a future routing change cannot silently flip it (the links are
  // directional, so a flip would move contention without failing any
  // latency test).
  torus::Fabric fab(64);
  ASSERT_EQ(fab.dims(), (std::array<int, 3>{4, 4, 4}));
  std::vector<std::size_t> path;
  for (int node = 0; node < fab.nodes(); ++node) {
    const auto c = fab.coords(node);
    for (int d = 0; d < 3; ++d) {
      auto want = c;
      want[static_cast<std::size_t>(d)] = (c[static_cast<std::size_t>(d)] + 2) % 4;
      const int dst = fab.node_at(want[0], want[1], want[2]);
      path.clear();
      fab.build_path(node, dst, path);
      ASSERT_EQ(path.size(), 2u) << "node " << node << " dim " << d;
      // First hop: the source's own positive link in dimension d; second
      // hop: the positive link of the intermediate node.
      auto mid = c;
      mid[static_cast<std::size_t>(d)] = (c[static_cast<std::size_t>(d)] + 1) % 4;
      EXPECT_EQ(path[0], fab.link_id(node, d, /*positive=*/true))
          << "node " << node << " dim " << d;
      EXPECT_EQ(path[1],
                fab.link_id(fab.node_at(mid[0], mid[1], mid[2]), d,
                            /*positive=*/true))
          << "node " << node << " dim " << d;
    }
  }
  // Sanity that distances past the tie still take the genuinely shorter
  // (negative) direction: 3 hops positive is 1 hop negative.
  path.clear();
  fab.build_path(fab.node_at(0, 0, 0), fab.node_at(3, 0, 0), path);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], fab.link_id(fab.node_at(0, 0, 0), 0, /*positive=*/false));
}

TEST(NetSeam, LookaheadBoundsAreConservative) {
  // The sharded engine's window width comes from these (DESIGN.md §12), so
  // each backend's bound must be positive and no larger than any actual
  // cross-node first-arrival latency.
  ib::Fabric ib_fab(16);
  torus::Fabric torus_fab(16);
  for (net::Interconnect* fab :
       std::initializer_list<net::Interconnect*>{&ib_fab, &torus_fab}) {
    ASSERT_GT(fab->lookahead(), 0);
    for (int dst = 1; dst < fab->nodes(); ++dst) {
      fab->reset();
      const auto t = fab->send_message(0, dst, 8, 0);
      EXPECT_GE(t.first_arrival, fab->lookahead()) << "dst " << dst;
    }
  }
}

// --- MiniMPI over the seam ---------------------------------------------------

TEST(NetSeam, MiniMpiRunsOverTorus) {
  sim::Engine engine;
  mpi::MpiWorld world(engine, std::make_unique<torus::Fabric>(8), 8);
  for (int r = 0; r < 8; ++r) {
    engine.spawn([](mpi::Comm comm) -> sim::Coro<void> {
      const int n = comm.size();
      const int right = (comm.rank() + 1) % n;
      const int left = (comm.rank() - 1 + n) % n;
      std::vector<std::uint64_t> payload = {static_cast<std::uint64_t>(comm.rank())};
      auto msg = co_await comm.sendrecv(right, 1, std::move(payload), left, 1);
      EXPECT_EQ(msg.data.at(0), static_cast<std::uint64_t>(left));
      co_await comm.barrier();
    }(world.comm(r)));
  }
  engine.run();
  EXPECT_TRUE(engine.all_done()) << "a rank deadlocked over the torus";
  EXPECT_GT(world.fabric().bytes_sent(), 0);
}

TEST(NetSeam, MpiWorldRejectsNullAndOversizedWorlds) {
  sim::Engine engine;
  EXPECT_THROW(mpi::MpiWorld(engine, nullptr, 4), std::invalid_argument);
  EXPECT_THROW(mpi::MpiWorld(engine, std::make_unique<torus::Fabric>(2), 4),
               std::invalid_argument);
}

}  // namespace
