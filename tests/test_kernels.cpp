// Tests for the computational kernels: FFT, Kronecker generator, CSR/BFS,
// GUPS table, and stencil helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "kernels/csr.hpp"
#include "kernels/fft.hpp"
#include "kernels/gups_table.hpp"
#include "kernels/kronecker.hpp"
#include "kernels/stencil.hpp"
#include "sim/rng.hpp"

namespace kernels = dvx::kernels;
namespace sim = dvx::sim;
using kernels::Complex;

namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  sim::Xoshiro256 rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = 1u << GetParam();
  auto sig = random_signal(n, 7);
  auto expect = kernels::naive_dft(sig);
  kernels::fft(sig);
  EXPECT_LT(kernels::max_abs_diff(sig, expect), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, ForwardInverseRoundTrips) {
  const std::size_t n = 1u << GetParam();
  const auto orig = random_signal(n, 11);
  auto sig = orig;
  kernels::fft(sig);
  kernels::fft(sig, /*inverse=*/true);
  EXPECT_LT(kernels::max_abs_diff(sig, orig), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Pow2, FftSizes, ::testing::Values(0, 1, 2, 4, 6, 8, 10),
                         ::testing::PrintToStringParamName());

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(6);
  EXPECT_THROW(kernels::fft(v), std::invalid_argument);
}

TEST(Fft, SixStepEqualsDirectFft) {
  for (auto [n1, n2] : {std::pair{4, 8}, std::pair{8, 8}, std::pair{16, 4}}) {
    const auto orig = random_signal(static_cast<std::size_t>(n1 * n2), 23);
    auto direct = orig;
    kernels::fft(direct);
    const auto six = kernels::six_step_fft(orig, n1, n2);
    EXPECT_LT(kernels::max_abs_diff(six, direct), 1e-9 * n1 * n2)
        << "n1=" << n1 << " n2=" << n2;
  }
}

TEST(Fft, SixStepInverseRoundTrips) {
  const int n1 = 8, n2 = 16;
  const auto orig = random_signal(static_cast<std::size_t>(n1 * n2), 31);
  const auto f = kernels::six_step_fft(orig, n1, n2);
  const auto b = kernels::six_step_fft(f, n1, n2, /*inverse=*/true);
  EXPECT_LT(kernels::max_abs_diff(b, orig), 1e-10 * n1 * n2);
}

TEST(Fft, TransposeRoundTrips) {
  const auto m = random_signal(12, 3);
  const auto t = kernels::transpose(m, 3, 4);
  const auto tt = kernels::transpose(t, 4, 3);
  EXPECT_LT(kernels::max_abs_diff(tt, m), 0.0 + 1e-300);
  EXPECT_THROW(kernels::transpose(m, 5, 4), std::invalid_argument);
}

TEST(Fft, FlopConventionIs5NLogN) {
  EXPECT_DOUBLE_EQ(kernels::fft_flops(1 << 10), 5.0 * 1024 * 10);
  EXPECT_DOUBLE_EQ(kernels::fft_flops(1), 0.0);
}

TEST(Kronecker, DeterministicAndInRange) {
  kernels::KroneckerGenerator gen({.scale = 10, .edge_factor = 8, .seed = 5});
  kernels::KroneckerGenerator gen2({.scale = 10, .edge_factor = 8, .seed = 5});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto e = gen.edge(i);
    const auto e2 = gen2.edge(i);
    EXPECT_EQ(e.u, e2.u);
    EXPECT_EQ(e.v, e2.v);
    EXPECT_LT(e.u, gen.vertices());
    EXPECT_LT(e.v, gen.vertices());
  }
}

TEST(Kronecker, SliceMatchesPointwiseGeneration) {
  kernels::KroneckerGenerator gen({.scale = 8, .edge_factor = 4});
  const auto s = gen.slice(100, 200);
  ASSERT_EQ(s.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(s[i].u, gen.edge(100 + i).u);
    EXPECT_EQ(s[i].v, gen.edge(100 + i).v);
  }
  EXPECT_THROW(gen.slice(10, 5), std::out_of_range);
}

TEST(Kronecker, DegreeDistributionIsSkewed) {
  // R-MAT graphs follow a power law: the max degree should far exceed the
  // mean, and a large fraction of vertices should see few or no edges.
  kernels::KroneckerParams p{.scale = 12, .edge_factor = 16};
  kernels::KroneckerGenerator gen(p);
  std::vector<std::uint64_t> degree(gen.vertices(), 0);
  for (std::uint64_t i = 0; i < gen.edges(); ++i) {
    const auto e = gen.edge(i);
    ++degree[e.u];
    ++degree[e.v];
  }
  const double mean = 2.0 * static_cast<double>(gen.edges()) /
                      static_cast<double>(gen.vertices());
  const auto max_deg = *std::max_element(degree.begin(), degree.end());
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * mean);
  const auto isolated = static_cast<double>(std::count(degree.begin(), degree.end(), 0ull));
  EXPECT_GT(isolated / static_cast<double>(gen.vertices()), 0.05);
}

TEST(Kronecker, RejectsBadParams) {
  EXPECT_THROW(kernels::KroneckerGenerator({.scale = 0}), std::invalid_argument);
  EXPECT_THROW(kernels::KroneckerGenerator({.scale = 8, .edge_factor = 0}),
               std::invalid_argument);
  EXPECT_THROW(kernels::KroneckerGenerator({.scale = 8, .a = 0.6, .b = 0.3, .c = 0.2}),
               std::invalid_argument);
}

TEST(Csr, BuildsUndirectedAndDropsSelfLoops) {
  const std::vector<kernels::Edge> edges = {{0, 1}, {1, 2}, {2, 2}, {0, 1}};
  kernels::Csr g(4, edges);
  EXPECT_EQ(g.vertices(), 4u);
  EXPECT_EQ(g.edges_stored(), 6u);  // 3 kept edges, both directions
  EXPECT_EQ(g.degree(0), 2u);       // duplicate edge kept
  EXPECT_EQ(g.degree(2), 1u);       // self-loop dropped
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Csr, SerialBfsFindsShortestLevels) {
  // Path 0-1-2-3 plus shortcut 0-3: parent tree must use level-1 shortcut.
  const std::vector<kernels::Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  kernels::Csr g(5, edges);
  const auto parent = kernels::bfs_serial(g, 0);
  EXPECT_EQ(parent[0], 0u);
  EXPECT_EQ(parent[3], 0u);  // direct edge wins over the long path
  EXPECT_EQ(parent[4], kernels::kNoParent);
  EXPECT_TRUE(kernels::validate_bfs(g, 0, parent).empty());
  EXPECT_DOUBLE_EQ(kernels::traversed_edges(g, parent), 4.0);
}

TEST(Csr, ValidationCatchesCorruptTrees) {
  const std::vector<kernels::Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  kernels::Csr g(4, edges);
  auto parent = kernels::bfs_serial(g, 0);
  auto bad = parent;
  bad[3] = 1;  // claims tree edge (3,1) which does not exist
  EXPECT_FALSE(kernels::validate_bfs(g, 0, bad).empty());
  bad = parent;
  bad[2] = kernels::kNoParent;  // reachability mismatch
  EXPECT_FALSE(kernels::validate_bfs(g, 0, bad).empty());
  bad = parent;
  bad[0] = 1;  // root must be its own parent
  EXPECT_FALSE(kernels::validate_bfs(g, 0, bad).empty());
}

TEST(Csr, ValidatesBfsOnKroneckerGraph) {
  kernels::KroneckerGenerator gen({.scale = 10, .edge_factor = 8});
  const auto edges = gen.slice(0, gen.edges());
  kernels::Csr g(gen.vertices(), edges);
  const auto parent = kernels::bfs_serial(g, gen.edge(0).u);
  EXPECT_TRUE(kernels::validate_bfs(g, gen.edge(0).u, parent).empty());
  EXPECT_GT(kernels::traversed_edges(g, parent), 0.0);
}

TEST(Gups, LfsrStreamIsNonDegenerate) {
  std::uint64_t a = kernels::gups_start(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    a = kernels::gups_next(a);
    seen.insert(a);
  }
  EXPECT_GT(seen.size(), 9990u);  // essentially no repeats in a short window
}

TEST(Gups, XorUpdatesAreAnInvolution) {
  constexpr int kRanks = 4;
  constexpr std::uint64_t kLocal = 1024;
  std::vector<kernels::GupsTable> tables;
  for (int r = 0; r < kRanks; ++r) {
    tables.emplace_back(kLocal);
    tables.back().init(static_cast<std::uint64_t>(r) * kLocal);
  }
  auto run_stream = [&] {
    for (int r = 0; r < kRanks; ++r) {
      std::uint64_t a = kernels::gups_start(static_cast<std::uint64_t>(r));
      for (int i = 0; i < 5000; ++i) {
        a = kernels::gups_next(a);
        const auto t = kernels::gups_target(a, kRanks, kLocal);
        tables[static_cast<std::size_t>(t.owner)].apply(t.offset, a);
      }
    }
  };
  run_stream();
  std::uint64_t mid_errors = 0;
  for (int r = 0; r < kRanks; ++r) {
    mid_errors += tables[static_cast<std::size_t>(r)].errors(
        static_cast<std::uint64_t>(r) * kLocal);
  }
  EXPECT_GT(mid_errors, 0u) << "updates must actually change the table";
  run_stream();  // XOR twice restores everything
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(tables[static_cast<std::size_t>(r)].errors(
                  static_cast<std::uint64_t>(r) * kLocal),
              0u);
  }
}

TEST(Gups, TargetsCoverAllRanks) {
  std::set<int> owners;
  std::uint64_t a = kernels::gups_start(0);
  for (int i = 0; i < 1000; ++i) {
    a = kernels::gups_next(a);
    const auto t = kernels::gups_target(a, 8, 4096);
    EXPECT_GE(t.owner, 0);
    EXPECT_LT(t.owner, 8);
    EXPECT_LT(t.offset, 4096u);
    owners.insert(t.owner);
  }
  EXPECT_EQ(owners.size(), 8u);
}

TEST(Gups, TableRejectsBadSize) {
  EXPECT_THROW(kernels::GupsTable(0), std::invalid_argument);
  EXPECT_THROW(kernels::GupsTable(100), std::invalid_argument);
}

TEST(Stencil, ProcessGridIsExactFactorization) {
  for (int n : {1, 2, 3, 4, 8, 12, 16, 32}) {
    const auto g = kernels::process_grid_3d(n);
    EXPECT_EQ(g[0] * g[1] * g[2], n);
  }
  const auto g8 = kernels::process_grid_3d(8);
  EXPECT_EQ(g8[0] * g8[1] * g8[2], 8);
  EXPECT_LE(std::max({g8[0], g8[1], g8[2]}), 2);  // 2x2x2, near-cubic
}

TEST(Stencil, BlockRangeTilesExactly) {
  for (int parts : {1, 3, 7}) {
    std::int64_t covered = 0;
    std::int64_t prev_end = 0;
    for (int p = 0; p < parts; ++p) {
      const auto [b, e] = kernels::block_range(100, parts, p);
      EXPECT_EQ(b, prev_end);
      covered += e - b;
      prev_end = e;
    }
    EXPECT_EQ(covered, 100);
  }
}

TEST(Stencil, PackUnpackRoundTripsEachFace) {
  kernels::HaloGrid3 g(3, 4, 5);
  for (int k = 1; k <= 5; ++k) {
    for (int j = 1; j <= 4; ++j) {
      for (int i = 1; i <= 3; ++i) g.at(i, j, k) = i * 100 + j * 10 + k;
    }
  }
  for (int face = 0; face < 6; ++face) {
    const auto packed = g.pack_face(face);
    EXPECT_EQ(static_cast<std::int64_t>(packed.size()), g.face_cells(face));
    kernels::HaloGrid3 h(3, 4, 5);
    h.unpack_halo(face, packed);
    // Spot-check one halo value against the source boundary layer.
    if (face == 1) {
      EXPECT_EQ(h.at(4, 2, 3), g.at(3, 2, 3));
    }
    if (face == 4) {
      EXPECT_EQ(h.at(2, 2, 0), g.at(2, 2, 1));
    }
  }
}

TEST(Stencil, HeatStepConservesEnergyWithReflectingBoundaries) {
  kernels::HaloGrid3 a(6, 6, 6), b(6, 6, 6);
  sim::Xoshiro256 rng(5);
  double total0 = 0.0;
  for (int k = 1; k <= 6; ++k) {
    for (int j = 1; j <= 6; ++j) {
      for (int i = 1; i <= 6; ++i) {
        a.at(i, j, k) = rng.uniform(0, 10);
        total0 += a.at(i, j, k);
      }
    }
  }
  for (int step = 0; step < 20; ++step) {
    for (int f = 0; f < 6; ++f) a.reflect_boundary(f);
    kernels::heat_step(a, b, 1.0 / 6.0);
    std::swap(a, b);
  }
  double total1 = 0.0;
  double spread = 0.0;
  const double mean = total0 / 216.0;
  for (int k = 1; k <= 6; ++k) {
    for (int j = 1; j <= 6; ++j) {
      for (int i = 1; i <= 6; ++i) {
        total1 += a.at(i, j, k);
        spread = std::max(spread, std::abs(a.at(i, j, k) - mean));
      }
    }
  }
  EXPECT_NEAR(total1, total0, 1e-9 * total0);  // insulated box conserves heat
  EXPECT_LT(spread, 2.0);                      // and diffuses towards the mean
}

TEST(Stencil, HeatStepMatchesManualStencil) {
  kernels::HaloGrid3 a(3, 3, 3), b(3, 3, 3);
  a.at(2, 2, 2) = 6.0;
  const double delta = kernels::heat_step(a, b, 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(b.at(2, 2, 2), 0.0);  // 6 + (0*6 - 36)/6
  EXPECT_DOUBLE_EQ(b.at(1, 2, 2), 1.0);  // gains one unit from the center
  EXPECT_DOUBLE_EQ(delta, 6.0);
}

}  // namespace
