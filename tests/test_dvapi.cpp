// Tests for the dvapi programming model: send paths, remote memory,
// query/reply, counters, FIFO messaging, barriers, and word collectives.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <vector>

#include "dvapi/collectives.hpp"
#include "dvapi/context.hpp"
#include "sim/engine.hpp"

namespace sim = dvx::sim;
namespace vic = dvx::vic;
namespace dvapi = dvx::dvapi;
using sim::Coro;
using sim::Engine;

namespace {

/// Runs `body(ctx)` as one simulated process per rank; returns finish time.
template <typename Body>
sim::Time run_nodes(int nodes, Body body, vic::DvFabricParams params = {}) {
  Engine engine;
  vic::DvFabric fabric(engine, nodes, params);
  std::deque<dvapi::DvContext> ctxs;
  for (int r = 0; r < nodes; ++r) ctxs.emplace_back(engine, fabric, r);
  for (int r = 0; r < nodes; ++r) {
    engine.spawn(body(ctxs[static_cast<std::size_t>(r)]));
  }
  const auto t = engine.run();
  EXPECT_TRUE(engine.all_done()) << "some rank deadlocked";
  return t;
}

TEST(DvApi, PutMakesDataVisibleAfterCounterWait) {
  run_nodes(2, [](dvapi::DvContext& ctx) -> Coro<void> {
    constexpr int kCtr = dvapi::kFirstFreeCounter;
    constexpr std::uint32_t kAddr = 4096;
    if (ctx.rank() == 1) co_await ctx.counter_set_local(kCtr, 8);
    co_await ctx.barrier();
    if (ctx.rank() == 0) {
      std::vector<std::uint64_t> words = {10, 11, 12, 13, 14, 15, 16, 17};
      co_await ctx.put(1, kAddr, words, kCtr);
    } else {
      const bool ok = co_await ctx.counter_wait_zero(kCtr);
      EXPECT_TRUE(ok);
      std::vector<std::uint64_t> got(8);
      co_await ctx.dma_read_dv(kAddr, got);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], 10u + i);
    }
    co_await ctx.barrier();
  });
}

TEST(DvApi, QueryReadsRemoteWord) {
  run_nodes(3, [](dvapi::DvContext& ctx) -> Coro<void> {
    constexpr std::uint32_t kAddr = 1000;
    if (ctx.rank() == 2) {
      const std::vector<std::uint64_t> words = {0xfeedface};
      co_await ctx.dma_write_dv(kAddr, words);
    }
    co_await ctx.barrier();
    if (ctx.rank() == 0) {
      const auto v = co_await ctx.query(2, kAddr);
      EXPECT_EQ(v, 0xfeedfaceu);
    }
    co_await ctx.barrier();
  });
}

TEST(DvApi, FifoCarriesSurprseMessages) {
  run_nodes(4, [](dvapi::DvContext& ctx) -> Coro<void> {
    // Everyone sends its rank to rank 0's FIFO.
    if (ctx.rank() != 0) {
      co_await ctx.send_fifo(0, static_cast<std::uint64_t>(ctx.rank()));
    } else {
      std::uint64_t sum = 0;
      int got = 0;
      while (got < 3) {
        auto batch = co_await ctx.fifo_wait();
        for (const auto& p : batch) {
          sum += p.payload;
          ++got;
        }
      }
      EXPECT_EQ(sum, 1u + 2 + 3);
    }
    co_await ctx.barrier();
  });
}

TEST(DvApi, RemoteCounterSetArrivesAsControlPacket) {
  run_nodes(2, [](dvapi::DvContext& ctx) -> Coro<void> {
    constexpr int kCtr = dvapi::kFirstFreeCounter;
    if (ctx.rank() == 0) {
      co_await ctx.counter_set_remote(1, kCtr, 0);  // release peer
    } else {
      const bool ok = co_await ctx.counter_wait_zero(kCtr, sim::ms(1));
      EXPECT_TRUE(ok);
    }
    co_await ctx.barrier();
  });
}

// --- send-path bandwidth ordering (the physics behind Fig. 3) --------------

double path_bandwidth(int which, std::int64_t words) {
  // Receiver-visible bandwidth: counter armed for `words` arrivals, timed
  // from the post-barrier instant to the counter settling at zero.
  double out = 0.0;
  run_nodes(2, [&out, which, words](dvapi::DvContext& ctx) -> Coro<void> {
    constexpr int kCtr = dvapi::kFirstFreeCounter;
    if (ctx.rank() == 1) {
      co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
    }
    co_await ctx.barrier();
    const sim::Time t0 = ctx.engine().now();
    if (ctx.rank() == 0) {
      std::vector<vic::Packet> batch(static_cast<std::size_t>(words));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].header = vic::Header{1, vic::DestKind::kDvMemory,
                                      static_cast<std::uint8_t>(kCtr),
                                      static_cast<std::uint32_t>(4096 + i)};
        batch[i].payload = i;
      }
      switch (which) {
        case 0: co_await ctx.send_direct_batch(batch); break;
        case 1: co_await ctx.send_cached_batch(batch); break;
        default: co_await ctx.send_dma_batch(batch); break;
      }
    } else {
      EXPECT_TRUE(co_await ctx.counter_wait_zero(kCtr));
      out = sim::rate_bytes_per_sec(words * 8, ctx.engine().now() - t0);
    }
    co_await ctx.barrier();
  });
  return out;
}

TEST(DvApi, SendPathBandwidthOrderingMatchesPaper) {
  const std::int64_t kWords = 256 * 1024;
  const double direct = path_bandwidth(0, kWords);
  const double cached = path_bandwidth(1, kWords);
  const double dma = path_bandwidth(2, kWords);
  // Fig. 3a: DWr/NoCached < DWr/Cached << DMA/Cached.
  EXPECT_LT(direct, cached);
  EXPECT_LT(cached, dma);
  // Direct write limited by the PCIe lane: 16 B cross for 8 B of payload.
  EXPECT_NEAR(direct, 0.25e9, 0.03e9);
  EXPECT_NEAR(cached, 0.5e9, 0.05e9);
  // DMA path approaches the 4.4 GB/s network peak (99.4% at 256 Ki words).
  EXPECT_GT(dma, 0.97 * 4.4e9);
  EXPECT_LT(dma, 1.01 * 4.4e9);
}

TEST(DvApi, FastBarrierSynchronizesAndIsReusable) {
  std::vector<sim::Time> finish;
  std::vector<sim::Time> last_arrival;
  run_nodes(8, [&](dvapi::DvContext& ctx) -> Coro<void> {
    for (int phase = 0; phase < 4; ++phase) {
      // Stagger arrivals so the barrier actually has to wait.
      co_await ctx.engine().delay(sim::us(ctx.rank() == 3 ? 10 : 1));
      if (ctx.rank() == 3) last_arrival.push_back(ctx.engine().now());
      co_await ctx.fast_barrier();
    }
    finish.push_back(ctx.engine().now());
  });
  ASSERT_EQ(finish.size(), 8u);
  // No rank exits before the slowest rank arrived at the final phase.
  for (auto t : finish) EXPECT_GE(t, last_arrival.back());
  // Releases are not simultaneous (counters settle per rank as the
  // all-to-all words land) but the spread stays well under a microsecond.
  const auto [lo, hi] = std::minmax_element(finish.begin(), finish.end());
  EXPECT_LT(*hi - *lo, sim::us(1));
}

TEST(DvApi, FastBarrierCostsMoreThanIntrinsicAndGrowsWithNodes) {
  auto cost = [](int nodes, bool fast) {
    // Measure the second barrier (the first one pays priming).
    sim::Time mark = 0;
    const auto total = run_nodes(nodes, [&mark, fast](dvapi::DvContext& ctx) -> Coro<void> {
      if (fast) {
        co_await ctx.fast_barrier();
      } else {
        co_await ctx.barrier();
      }
      if (ctx.rank() == 0) mark = ctx.engine().now();
      if (fast) {
        co_await ctx.fast_barrier();
      } else {
        co_await ctx.barrier();
      }
    });
    return total - mark;
  };
  const auto intrinsic32 = cost(32, false);
  const auto fast8 = cost(8, true);
  const auto fast32 = cost(32, true);
  EXPECT_GT(fast32, intrinsic32);  // Fig. 4: FastBarrier above the intrinsic
  EXPECT_GT(fast32, fast8);        // all-to-all grows with node count
  EXPECT_LT(sim::to_us(fast32), 10.0);  // but stays in the microsecond range
}

TEST(DvApi, AlltoallWordsExchangesEveryPair) {
  run_nodes(6, [](dvapi::DvContext& ctx) -> Coro<void> {
    std::vector<std::uint64_t> send(6);
    for (int peer = 0; peer < 6; ++peer) {
      send[static_cast<std::size_t>(peer)] =
          static_cast<std::uint64_t>(ctx.rank() * 100 + peer);
    }
    const auto got = co_await dvapi::alltoall_words(ctx, send);
    for (int src = 0; src < 6; ++src) {
      EXPECT_EQ(got[static_cast<std::size_t>(src)],
                static_cast<std::uint64_t>(src * 100 + ctx.rank()));
    }
    co_await ctx.barrier();
  });
}

TEST(DvApi, AllreduceAndBroadcast) {
  run_nodes(5, [](dvapi::DvContext& ctx) -> Coro<void> {
    const auto sum =
        co_await dvapi::allreduce_sum(ctx, static_cast<std::uint64_t>(ctx.rank() + 1));
    EXPECT_EQ(sum, 15u);  // 1+2+3+4+5
    const auto mx =
        co_await dvapi::allreduce_max(ctx, static_cast<std::uint64_t>(ctx.rank() * 7));
    EXPECT_EQ(mx, 28u);
    const auto b = co_await dvapi::broadcast_word(
        ctx, ctx.rank() == 2 ? 0xabcull : 0ull, /*root=*/2);
    EXPECT_EQ(b, 0xabcu);
    co_await ctx.barrier();
  });
}

TEST(DvApi, AlltoallRejectsWrongArity) {
  run_nodes(3, [](dvapi::DvContext& ctx) -> Coro<void> {
    std::vector<std::uint64_t> bad(2);  // needs 3
    bool threw = false;
    try {
      co_await dvapi::alltoall_words(ctx, bad);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    co_await ctx.barrier();
  });
}

TEST(DvApi, MixedDestinationDmaBatchLandsEverywhere) {
  // "Aggregation at source": one DMA batch fans out to many nodes.
  run_nodes(8, [](dvapi::DvContext& ctx) -> Coro<void> {
    constexpr int kCtr = dvapi::kFirstFreeCounter;
    co_await ctx.counter_set_local(kCtr, 7);  // expect one word from each peer
    co_await ctx.barrier();
    std::vector<vic::Packet> batch;
    for (int peer = 0; peer < 8; ++peer) {
      if (peer == ctx.rank()) continue;
      batch.push_back(vic::Packet{
          vic::Header{static_cast<std::uint16_t>(peer), vic::DestKind::kDvMemory,
                      static_cast<std::uint8_t>(kCtr),
                      static_cast<std::uint32_t>(2000 + ctx.rank())},
          static_cast<std::uint64_t>(ctx.rank() + 1)});
    }
    co_await ctx.send_dma_batch(batch);
    EXPECT_TRUE(co_await ctx.counter_wait_zero(kCtr));
    std::vector<std::uint64_t> got(8);
    co_await ctx.dma_read_dv(2000, got);
    for (int src = 0; src < 8; ++src) {
      if (src == ctx.rank()) continue;
      EXPECT_EQ(got[static_cast<std::size_t>(src)], static_cast<std::uint64_t>(src + 1));
    }
    co_await ctx.barrier();
  });
}

TEST(DvApi, PacketsSentAccounting) {
  run_nodes(2, [](dvapi::DvContext& ctx) -> Coro<void> {
    if (ctx.rank() == 0) {
      co_await ctx.send_fifo(1, 1);
      co_await ctx.send_fifo(1, 2);
      EXPECT_EQ(ctx.packets_sent(), 2u);
    }
    co_await ctx.barrier();
  });
}

}  // namespace
