// dvx::serve — arrival determinism, sub-seed stability, admission
// conservation, SLO tail honesty, and session smoke on all three backends.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "serve/session.hpp"
#include "serve/slo.hpp"
#include "sim/stats.hpp"

namespace serve = dvx::serve;
namespace sim = dvx::sim;
namespace runtime = dvx::runtime;

namespace {

serve::ArrivalConfig small_config() {
  serve::ArrivalConfig cfg;
  cfg.seed = 99;
  cfg.nodes = 8;
  cfg.horizon_us = 120.0;
  cfg.unit_rate_rps = 6.0e5;  // default mix (weight 5.25) offers ~3.15M rps
  return cfg;
}

}  // namespace

TEST(ServeArrival, SameConfigIsByteIdentical) {
  const auto a = serve::generate_arrivals(small_config());
  const auto b = serve::generate_arrivals(small_config());
  ASSERT_GT(a.offered(), 100u);
  EXPECT_EQ(serve::trace_to_string(a), serve::trace_to_string(b));
}

TEST(ServeArrival, SeedChangesTrace) {
  auto cfg = small_config();
  const auto a = serve::generate_arrivals(cfg);
  cfg.seed = 100;
  const auto b = serve::generate_arrivals(cfg);
  EXPECT_NE(serve::trace_to_string(a), serve::trace_to_string(b));
}

TEST(ServeArrival, CanonicalOrderAndPartition) {
  const auto trace = serve::generate_arrivals(small_config());
  std::uint64_t sum = 0;
  for (std::uint64_t n : trace.offered_per_tenant) sum += n;
  EXPECT_EQ(sum, trace.offered());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(trace.requests[i].id, i);
    if (i > 0) {
      EXPECT_LE(trace.requests[i - 1].arrival, trace.requests[i].arrival);
    }
    for (std::uint16_t p : trace.requests[i].peers) {
      EXPECT_NE(p, trace.requests[i].home);
      EXPECT_LT(p, 8);
    }
  }
}

// Sub-seed stability: streams are keyed by tenant NAME, so removing one
// tenant leaves every other tenant's per-node arrival stream unchanged.
TEST(ServeArrival, TenantStreamsAreStableUnderRemoval) {
  auto cfg = small_config();
  cfg.tenants = serve::default_tenants();
  const auto all = serve::generate_arrivals(cfg);
  cfg.tenants.erase(cfg.tenants.begin());  // drop the "hot" tenant
  const auto without_hot = serve::generate_arrivals(cfg);

  const auto stream_of = [](const serve::ArrivalTrace& t, const std::string& name) {
    std::vector<std::pair<std::uint64_t, std::uint16_t>> s;
    for (const serve::Request& r : t.requests) {
      if (t.tenants[r.tenant].name == name) {
        s.emplace_back(static_cast<std::uint64_t>(r.arrival), r.home);
      }
    }
    return s;
  };
  for (const char* name : {"vic_a", "vic_b", "bulk"}) {
    EXPECT_EQ(stream_of(all, name), stream_of(without_hot, name)) << name;
  }
}

// Distinct tenants draw decorrelated streams even at identical rates.
TEST(ServeArrival, DistinctTenantsAreDecorrelated) {
  EXPECT_NE(serve::tenant_stream_seed(7, "a", 0), serve::tenant_stream_seed(7, "b", 0));
  EXPECT_NE(serve::tenant_stream_seed(7, "a", 0), serve::tenant_stream_seed(7, "a", 1));

  auto cfg = small_config();
  cfg.unit_rate_rps = 3.0e6;
  cfg.tenants = {
      {.name = "t0", .rate_weight = 1.0, .fanout = 2, .payload_words = 1},
      {.name = "t1", .rate_weight = 1.0, .fanout = 2, .payload_words = 1},
  };
  const auto trace = serve::generate_arrivals(cfg);
  std::vector<sim::Time> a0, a1;
  for (const serve::Request& r : trace.requests) {
    (r.tenant == 0 ? a0 : a1).push_back(r.arrival);
  }
  ASSERT_GT(a0.size(), 50u);
  ASSERT_GT(a1.size(), 50u);
  const std::size_t n = std::min(a0.size(), a1.size());
  std::size_t equal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a0[i] == a1[i]) ++equal;
  }
  EXPECT_LT(equal, n / 10);
}

TEST(ServeArrival, BurstinessPreservesOfferedRate) {
  auto cfg = small_config();
  cfg.unit_rate_rps = 3.0e6;
  cfg.tenants = {{.name = "calm", .rate_weight = 1.0, .burstiness = 0.0,
                  .fanout = 1, .payload_words = 1}};
  const auto calm = serve::generate_arrivals(cfg);
  cfg.tenants = {{.name = "bursty", .rate_weight = 1.0, .burstiness = 4.0,
                  .fanout = 1, .payload_words = 1}};
  const auto bursty = serve::generate_arrivals(cfg);
  // Same mean rate within 25% (different stream, same expectation).
  const double ratio = static_cast<double>(bursty.offered()) /
                       static_cast<double>(calm.offered());
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.25);
}

TEST(ServeAdmission, TokenBucketRefillsInVirtualTime) {
  serve::TokenBucket bucket(1.0 / 1000.0, 2.0);  // 1 token per 1000 ps, burst 2
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(500));
  EXPECT_TRUE(bucket.try_take(1000));
  // Refill caps at burst: a long gap buys at most two tokens.
  EXPECT_TRUE(bucket.try_take(1000000));
  EXPECT_TRUE(bucket.try_take(1000000));
  EXPECT_FALSE(bucket.try_take(1000000));
}

TEST(ServeSlo, QuantileUpperBoundHonestOnSparseTail) {
  // 999 fast samples and one slow outlier: the p999 must be bounded by the
  // exact max (1500), not the outlier bucket's upper edge (2048).
  serve::TailLatency lat;
  for (int i = 0; i < 999; ++i) lat.record_ns(10);
  lat.record_ns(1500);
  EXPECT_LE(lat.p999_ns(), 1500.0);
  EXPECT_GE(lat.p999_ns(), 10.0);
  EXPECT_EQ(lat.max_ns(), 1500.0);
  // The midpoint estimator can under-report a tail; the bound cannot.
  sim::LogHistogram h;
  for (int i = 0; i < 999; ++i) h.add(10);
  h.add(1500);
  EXPECT_LE(h.quantile(0.999), h.quantile_upper_bound(0.999));
}

TEST(ServeSlo, JainIndexBounds) {
  EXPECT_DOUBLE_EQ(serve::jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(serve::jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(serve::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  const double mixed = serve::jain_index({1.0, 0.5, 0.25, 0.125});
  EXPECT_GT(mixed, 0.25);
  EXPECT_LT(mixed, 1.0);
}

namespace {

serve::ArrivalTrace session_trace() {
  serve::ArrivalConfig cfg;
  cfg.seed = 7;
  cfg.nodes = 4;
  cfg.horizon_us = 60.0;
  cfg.unit_rate_rps = 3.0e5;  // default mix offers ~1.6M rps aggregate
  return serve::generate_arrivals(cfg);
}

std::string report_fingerprint(const serve::ServeReport& rep) {
  std::string s;
  for (const serve::TenantOutcome& t : rep.tenants) {
    s += t.name + ":" + std::to_string(t.admission.offered) + "/" +
         std::to_string(t.admission.accepted) + "/" +
         std::to_string(t.admission.shed()) + "/" + std::to_string(t.served) +
         "/" + std::to_string(t.latency.p99_ns()) + "/" +
         std::to_string(t.latency.mean_ns()) + ";";
  }
  s += "roi=" + std::to_string(rep.roi_seconds);
  return s;
}

}  // namespace

TEST(ServeSession, MpiServesEverythingWithoutAdmission) {
  const auto trace = session_trace();
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  const auto rep = serve::run_serve_mpi(cluster, trace, serve::SessionConfig{});
  EXPECT_EQ(rep.offered(), trace.offered());
  EXPECT_EQ(rep.shed(), 0u);
  EXPECT_EQ(rep.served(), trace.offered());
  EXPECT_GT(rep.roi_seconds, 0.0);
  for (const serve::TenantOutcome& t : rep.tenants) {
    if (t.served > 0) EXPECT_GT(t.latency.p99_ns(), 0.0) << t.name;
  }
}

TEST(ServeSession, DvServesEverythingWithoutAdmission) {
  const auto trace = session_trace();
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  const auto rep = serve::run_serve_dv(cluster, trace, serve::SessionConfig{});
  EXPECT_EQ(rep.offered(), trace.offered());
  EXPECT_EQ(rep.served(), trace.offered());
  for (const serve::TenantOutcome& t : rep.tenants) {
    if (t.served > 0) EXPECT_GT(t.latency.p99_ns(), 0.0) << t.name;
  }
}

TEST(ServeSession, TorusServesEverything) {
  const auto trace = session_trace();
  runtime::ClusterConfig config{.nodes = 4};
  config.mpi_fabric = runtime::MpiFabric::kTorus;
  runtime::Cluster cluster(config);
  const auto rep = serve::run_serve_mpi(cluster, trace, serve::SessionConfig{});
  EXPECT_EQ(rep.served(), trace.offered());
}

TEST(ServeSession, AdmissionConservationUnderOverload) {
  serve::ArrivalConfig acfg;
  acfg.seed = 13;
  acfg.nodes = 4;
  acfg.horizon_us = 60.0;
  acfg.unit_rate_rps = 1.2e6;  // well past capacity so both shed paths fire
  const auto trace = serve::generate_arrivals(acfg);

  serve::SessionConfig scfg;
  scfg.admission.token_bucket = true;
  scfg.admission.bucket_rate_frac = 0.5;
  scfg.admission.bucket_burst = 4.0;
  scfg.admission.queue_shed = true;
  scfg.admission.max_queue_depth = 8;

  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 4});
  const auto rep = serve::run_serve_mpi(cluster, trace, scfg);
  EXPECT_GT(rep.shed(), 0u);
  EXPECT_EQ(rep.offered(), rep.accepted() + rep.shed());
  EXPECT_EQ(rep.served(), rep.accepted());
  for (const serve::TenantOutcome& t : rep.tenants) {
    EXPECT_EQ(t.admission.offered, t.admission.accepted + t.admission.shed())
        << t.name;
  }
}

// Engine execution parallelism must not change a session's results
// (DESIGN.md §12: engine threads are pure execution parallelism).
TEST(ServeSession, ByteIdenticalAcrossEngineThreads) {
  const auto trace = session_trace();
  std::string fp1, fp4;
  {
    runtime::ClusterConfig config{.nodes = 4};
    config.engine_threads = 1;
    runtime::Cluster cluster(config);
    fp1 = report_fingerprint(serve::run_serve_mpi(cluster, trace, {}));
  }
  {
    runtime::ClusterConfig config{.nodes = 4};
    config.engine_threads = 4;
    runtime::Cluster cluster(config);
    fp4 = report_fingerprint(serve::run_serve_mpi(cluster, trace, {}));
  }
  EXPECT_EQ(fp1, fp4);
}

TEST(ServeSession, RepeatRunsAreDeterministic) {
  const auto trace = session_trace();
  runtime::Cluster a(runtime::ClusterConfig{.nodes = 4});
  runtime::Cluster b(runtime::ClusterConfig{.nodes = 4});
  EXPECT_EQ(report_fingerprint(serve::run_serve_dv(a, trace, {})),
            report_fingerprint(serve::run_serve_dv(b, trace, {})));
}
