#pragma once
// A minimal recursive-descent JSON syntax validator for tests: enough to
// assert that documents emitted by runtime::Json / ResultSink are valid
// JSON (CI does the same check with `python3 -m json.tool`). Not a general
// parser — it builds no tree, it only accepts or rejects.

#include <cctype>
#include <string>
#include <string_view>

namespace dvx::testing::jsonlite {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control char
      if (ch == '"') { ++pos_; return true; }
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool is_valid_json(std::string_view text) { return Validator(text).valid(); }

}  // namespace dvx::testing::jsonlite
