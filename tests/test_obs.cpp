// Tests for dvx::obs: registry get-or-create semantics, the disabled-mode
// contract, the ambient collector scope, golden-file checks for the
// dvx-metrics/v1 snapshot and the Chrome-trace export, and the --jobs
// byte-identity contract extended to metrics/trace output files.
//
// Regenerate the golden files after an intentional format change with
//   DVX_UPDATE_GOLDEN=1 ./build/tests/test_obs

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "exp/driver.hpp"
#include "exp/workload.hpp"
#include "json_lite.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace_export.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace obs = dvx::obs;
namespace sim = dvx::sim;
namespace exp = dvx::exp;
namespace fs = std::filesystem;
using dvx::testing::jsonlite::is_valid_json;

namespace {

// -- registry ----------------------------------------------------------------

TEST(Registry, FactoriesGetOrCreateAndShare) {
  obs::Registry r;
  obs::Counter* a = r.counter("dv.fabric.words");
  obs::Counter* b = r.counter("dv.fabric.words");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same (name, labels) -> same object
  a->add(3);
  b->inc();
  EXPECT_EQ(a->value(), 4u);
  // Different labels are a different family member.
  obs::Counter* labeled = r.counter("dv.fabric.words", {{"node", "1"}});
  EXPECT_NE(labeled, a);
  EXPECT_EQ(labeled->value(), 0u);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry r;
  r.counter("metric.x");
  EXPECT_THROW(r.gauge("metric.x"), std::logic_error);
  EXPECT_THROW(r.histogram("metric.x"), std::logic_error);
  // Same name with different labels is a different key: allowed.
  EXPECT_NE(r.gauge("metric.x", {{"k", "v"}}), nullptr);
}

TEST(Registry, DisabledRegistryHandsOutNullptr) {
  obs::Registry r(false);
  EXPECT_FALSE(r.enabled());
  EXPECT_EQ(r.counter("c"), nullptr);
  EXPECT_EQ(r.gauge("g"), nullptr);
  EXPECT_EQ(r.histogram("h"), nullptr);
  EXPECT_EQ(r.size(), 0u);
}

TEST(Registry, GaugeTracksHighWaterMark) {
  obs::Registry r;
  obs::Gauge* g = r.gauge("vic.fifo.depth", {{"node", "0"}});
  g->sample(2);
  g->sample(7);
  g->sample(1);
  EXPECT_EQ(g->last(), 1.0);
  EXPECT_EQ(g->stats().max(), 7.0);
  EXPECT_EQ(g->stats().count(), 3u);
}

// -- ambient collector -------------------------------------------------------

TEST(Collector, AmbientScopeOpensAndRestores) {
  EXPECT_EQ(obs::current_collector(), nullptr);
  EXPECT_EQ(obs::metrics(), nullptr);
  EXPECT_FALSE(obs::trace_wanted());
  obs::Collector outer;
  {
    const obs::ScopedCollector s1(outer);
    EXPECT_EQ(obs::current_collector(), &outer);
    EXPECT_EQ(obs::metrics(), &outer.registry);
    obs::Collector inner;
    inner.want_trace = true;
    {
      const obs::ScopedCollector s2(inner);
      EXPECT_EQ(obs::metrics(), &inner.registry);
      EXPECT_TRUE(obs::trace_wanted());
    }
    EXPECT_EQ(obs::current_collector(), &outer);
  }
  EXPECT_EQ(obs::metrics(), nullptr);
}

TEST(Collector, AbsorbTraceCopiesOnlyTheSuffix) {
  sim::Tracer src(true);
  src.record_state(0, sim::NodeState::kCompute, 0, sim::us(1));
  src.record_message(0, 1, 0, sim::us(1), 8, 0);
  obs::Collector c;
  c.want_trace = true;
  const obs::ScopedCollector scope(c);
  // Records present before the capture window must not be absorbed.
  const sim::TraceMark mark = src.mark();
  src.record_state(1, sim::NodeState::kWait, 0, sim::us(2));
  obs::absorb_trace(src, mark);
  ASSERT_EQ(c.trace.states().size(), 1u);
  EXPECT_EQ(c.trace.states()[0].node, 1);
  EXPECT_TRUE(c.trace.messages().empty());
}

// -- golden files ------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Compares `got` against the golden file; rewrites the golden instead when
/// DVX_UPDATE_GOLDEN is set in the environment.
void expect_matches_golden(const std::string& got, const std::string& file) {
  const std::string path = std::string(DVX_GOLDEN_DIR) + "/" + file;
  const char* update = std::getenv("DVX_UPDATE_GOLDEN");
  if (update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot rewrite " << path;
    out << got;
    return;
  }
  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing golden file " << path;
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(got, want.str()) << "regenerate with DVX_UPDATE_GOLDEN=1 if the "
                                "format change is intentional";
}

void fill_reference_registry(obs::Registry& r) {
  r.counter("dv.fabric.words")->add(1024);
  r.counter("dv.switch.deflections", {{"angle", "0"}, {"cylinder", "1"}})->add(3);
  obs::Gauge* depth = r.gauge("vic.fifo.depth", {{"node", "0"}});
  depth->sample(2);
  depth->sample(5);
  depth->sample(1);
  obs::Histogram* h = r.histogram("mpi.msg.bytes");
  h->observe(8);
  h->observe(8);
  h->observe(4096);
}

TEST(Snapshot, MatchesGoldenDocument) {
  obs::Registry r;
  fill_reference_registry(r);
  std::ostringstream os;
  obs::write_snapshot(r, os);
  EXPECT_TRUE(is_valid_json(os.str()));
  EXPECT_NE(os.str().find("\"schema\": \"dvx-metrics/v1\""), std::string::npos);
  expect_matches_golden(os.str(), "metrics_snapshot.json");
}

TEST(Snapshot, AttachOrderDoesNotChangeTheBytes) {
  obs::Registry forward;
  fill_reference_registry(forward);
  // Same metrics, created in reverse order with the values applied the
  // same way: the sorted-key serialization must produce identical bytes.
  obs::Registry backward;
  obs::Histogram* h = backward.histogram("mpi.msg.bytes");
  h->observe(8);
  h->observe(8);
  h->observe(4096);
  obs::Gauge* depth = backward.gauge("vic.fifo.depth", {{"node", "0"}});
  depth->sample(2);
  depth->sample(5);
  depth->sample(1);
  backward.counter("dv.switch.deflections", {{"angle", "0"}, {"cylinder", "1"}})->add(3);
  backward.counter("dv.fabric.words")->add(1024);
  std::ostringstream a, b;
  obs::write_snapshot(forward, a);
  obs::write_snapshot(backward, b);
  EXPECT_EQ(a.str(), b.str());
}

sim::Tracer make_reference_tracer() {
  sim::Tracer t(true);
  t.record_state(0, sim::NodeState::kCompute, 0, sim::us(2));
  t.record_state(1, sim::NodeState::kWait, 0, sim::us(1));
  t.record_state(1, sim::NodeState::kRecv, sim::us(1), sim::us(2));
  t.record_message(0, 1, sim::us(1), sim::us(2), 64, 7);
  return t;
}

TEST(ChromeTrace, MatchesGoldenDocument) {
  const sim::Tracer t = make_reference_tracer();
  std::ostringstream os;
  obs::write_chrome_trace(t, os);
  EXPECT_TRUE(is_valid_json(os.str()));
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(os.str().find("\"dvx-trace/v1\""), std::string::npos);
  expect_matches_golden(os.str(), "chrome_trace.json");
}

TEST(ChromeTrace, EmptyTracerStillProducesAValidDocument) {
  const sim::Tracer t(true);
  const std::string doc = obs::chrome_trace_json(t).dump();
  EXPECT_TRUE(is_valid_json(doc));
  // Only the process-metadata event; no duration or flow events.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(doc.find("\"ph\": \"s\""), std::string::npos);
}

// -- end-to-end: bench output files ------------------------------------------

/// Runs fig4 through the parallel driver with metrics/trace output into
/// fresh directories and returns {filename -> bytes} for both outputs.
std::map<std::string, std::string> run_with_outputs(int jobs,
                                                    const std::string& base) {
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2};
  std::ostringstream tables;
  opt.out = &tables;
  opt.metrics_dir = base + "/metrics";
  opt.trace_dir = base + "/trace";
  const auto* w = exp::Registry::instance().find("fig4");
  EXPECT_NE(w, nullptr);
  dvx::runtime::ResultSink sink;
  EXPECT_EQ(exp::run_workloads({w}, opt, jobs, sink), 0);
  std::map<std::string, std::string> files;
  for (const std::string& dir : {opt.metrics_dir, opt.trace_dir}) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      files[entry.path().filename().string()] = slurp(entry.path().string());
    }
  }
  return files;
}

TEST(BenchOutputs, MetricsAndTracesAreByteIdenticalAcrossJobsLevels) {
  const std::string base = ::testing::TempDir() + "/dvx_obs_jobs";
  fs::remove_all(base);
  const auto serial = run_with_outputs(1, base + "/j1");
  const auto parallel = run_with_outputs(4, base + "/j4");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);  // same names, same bytes
  bool saw_metrics = false, saw_trace = false;
  for (const auto& [name, bytes] : serial) {
    EXPECT_TRUE(is_valid_json(bytes)) << name;
    if (name.rfind("METRICS_", 0) == 0) {
      saw_metrics = true;
      EXPECT_NE(bytes.find("\"schema\": \"dvx-metrics/v1\""), std::string::npos)
          << name;
      // The instrumented engine ran: the event tally cannot be zero.
      EXPECT_NE(bytes.find("sim.engine.events"), std::string::npos) << name;
    }
    if (name.rfind("TRACE_", 0) == 0) {
      saw_trace = true;
      EXPECT_NE(bytes.find("\"traceEvents\""), std::string::npos) << name;
    }
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_trace);
  fs::remove_all(base);
}

TEST(BenchOutputs, NoCollectorMeansNoAmbientRegistry) {
  // Production benches without --metrics-out must not observe any ambient
  // collector after a run (the scope is strictly point-local).
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2};
  std::ostringstream tables;
  opt.out = &tables;
  const auto* w = exp::Registry::instance().find("fig4");
  ASSERT_NE(w, nullptr);
  dvx::runtime::ResultSink sink;
  EXPECT_EQ(exp::run_workloads({w}, opt, 1, sink), 0);
  EXPECT_EQ(obs::current_collector(), nullptr);
}

}  // namespace
