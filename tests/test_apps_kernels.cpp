// End-to-end tests of the kernel applications (GUPS, FFT-1D, BFS) on BOTH
// network backends: numerics verified, plus DV-vs-MPI cross-checks and the
// paper's qualitative performance relations.

#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/fft1d.hpp"
#include "apps/gups.hpp"
#include "runtime/cluster.hpp"

namespace apps = dvx::apps;
namespace runtime = dvx::runtime;

namespace {

runtime::Cluster make_cluster(int nodes) {
  return runtime::Cluster(runtime::ClusterConfig{.nodes = nodes});
}

TEST(GupsApp, DvVerifiesByXorInvolution) {
  auto cluster = make_cluster(4);
  apps::GupsParams gp{.local_table_words = 1 << 12,
                      .updates_per_node = 1 << 12,
                      .verify = true};
  const auto res = apps::run_gups_dv(cluster, gp);
  EXPECT_EQ(res.errors, 0u);
  EXPECT_GT(res.gups(), 0.0);
  EXPECT_GT(res.seconds, 0.0);
}

TEST(GupsApp, MpiVerifiesByXorInvolution) {
  auto cluster = make_cluster(4);
  apps::GupsParams gp{.local_table_words = 1 << 12,
                      .updates_per_node = 1 << 12,
                      .verify = true};
  const auto res = apps::run_gups_mpi(cluster, gp);
  EXPECT_EQ(res.errors, 0u);
  EXPECT_GT(res.gups(), 0.0);
}

TEST(GupsApp, DataVortexBeatsMpiAndGapWidens) {
  // Fig. 6: DV GUPS above MPI, and the advantage grows with node count.
  apps::GupsParams gp{.local_table_words = 1 << 12, .updates_per_node = 1 << 13};
  auto c4 = make_cluster(4);
  auto c16 = make_cluster(16);
  const double dv4 = apps::run_gups_dv(c4, gp).gups();
  const double ib4 = apps::run_gups_mpi(c4, gp).gups();
  const double dv16 = apps::run_gups_dv(c16, gp).gups();
  const double ib16 = apps::run_gups_mpi(c16, gp).gups();
  EXPECT_GT(dv4, ib4);
  EXPECT_GT(dv16, ib16);
  EXPECT_GT(dv16 / ib16, dv4 / ib4) << "performance gap should widen with nodes";
}

TEST(GupsApp, RejectsNonPowerOfTwoNodes) {
  auto cluster = make_cluster(3);
  EXPECT_THROW(apps::run_gups_dv(cluster, {}), std::invalid_argument);
  EXPECT_THROW(apps::run_gups_mpi(cluster, {}), std::invalid_argument);
}

class FftAppBackends : public ::testing::TestWithParam<int> {};

TEST_P(FftAppBackends, DistributedMatchesSerialSixStep) {
  const int nodes = GetParam();
  auto cluster = make_cluster(nodes);
  apps::FftParams fp{.log_size = 12, .verify = true};
  const auto dv = apps::run_fft_dv(cluster, fp);
  EXPECT_LT(dv.max_error, 1e-8) << "DV FFT numerics broken";
  const auto mpi = apps::run_fft_mpi(cluster, fp);
  EXPECT_LT(mpi.max_error, 1e-8) << "MPI FFT numerics broken";
  EXPECT_GT(dv.gflops(), 0.0);
  EXPECT_GT(mpi.gflops(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Nodes, FftAppBackends, ::testing::Values(1, 2, 4, 8),
                         ::testing::PrintToStringParamName());

TEST(FftApp, DataVortexWinsAtScale) {
  // Fig. 7: DV aggregate GFLOPS above MPI at larger node counts.
  apps::FftParams fp{.log_size = 16};
  auto c16 = make_cluster(16);
  const auto dv = apps::run_fft_dv(c16, fp);
  const auto mpi = apps::run_fft_mpi(c16, fp);
  EXPECT_GT(dv.gflops(), mpi.gflops());
}

TEST(BfsApp, BothBackendsProduceValidTrees) {
  apps::BfsParams bp{.scale = 10, .edge_factor = 8, .searches = 2, .validate = true};
  auto cluster = make_cluster(4);
  const auto dv = apps::run_bfs_dv(cluster, bp);
  EXPECT_TRUE(dv.validated) << dv.validation_error;
  EXPECT_GT(dv.harmonic_mean_teps, 0.0);
  const auto mpi = apps::run_bfs_mpi(cluster, bp);
  EXPECT_TRUE(mpi.validated) << mpi.validation_error;
  EXPECT_GT(mpi.harmonic_mean_teps, 0.0);
}

TEST(BfsApp, SingleNodeStillWorks) {
  apps::BfsParams bp{.scale = 9, .edge_factor = 8, .searches = 1, .validate = true};
  auto cluster = make_cluster(1);
  const auto dv = apps::run_bfs_dv(cluster, bp);
  EXPECT_TRUE(dv.validated) << dv.validation_error;
}

TEST(BfsApp, DataVortexBeatsMpiAtScale) {
  // Fig. 8: DV TEPS consistently above MPI.
  apps::BfsParams bp{.scale = 12, .edge_factor = 8, .searches = 2};
  auto c8 = make_cluster(8);
  const auto dv = apps::run_bfs_dv(c8, bp);
  const auto mpi = apps::run_bfs_mpi(c8, bp);
  EXPECT_GT(dv.harmonic_mean_teps, mpi.harmonic_mean_teps);
}

}  // namespace
