// Tests for the experiment layer: workload registry completeness, parameter
// resolution, per-point entry points, and the dvx_bench driver end-to-end
// (CLI parsing, table output, and machine-readable JSON emission).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/driver.hpp"
#include "exp/workload.hpp"
#include "json_lite.hpp"

namespace exp = dvx::exp;
using dvx::testing::jsonlite::is_valid_json;

namespace {

int cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"dvx_bench"};
  argv.insert(argv.end(), args.begin(), args.end());
  return exp::run_cli(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Registry, AllPaperFiguresAndAblationsRegistered) {
  const auto all = exp::Registry::instance().all();
  ASSERT_EQ(all.size(), 9u);
  for (const char* fig : {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                          "ablation_aggregation", "ablation_fabric"}) {
    EXPECT_NE(exp::Registry::instance().find(fig), nullptr) << fig;
  }
  for (const char* name : {"pingpong", "barrier", "gups_trace", "gups", "fft1d", "bfs",
                           "apps", "ablation_aggregation", "ablation_fabric"}) {
    EXPECT_NE(exp::Registry::instance().find(name), nullptr) << name;
  }
  EXPECT_EQ(exp::Registry::instance().find("fig42"), nullptr);
}

TEST(Registry, WorkloadsDeclareParamsAndMetrics) {
  for (const auto* w : exp::Registry::instance().all()) {
    EXPECT_FALSE(w->name().empty());
    EXPECT_FALSE(w->figure().empty());
    EXPECT_FALSE(w->title().empty());
    EXPECT_FALSE(w->metric_specs().empty()) << w->name();
    EXPECT_FALSE(w->default_nodes(false).empty()) << w->name();
    for (const auto& p : w->param_specs()) {
      EXPECT_FALSE(p.key.empty()) << w->name();
      EXPECT_FALSE(p.description.empty()) << w->name() << "." << p.key;
    }
  }
}

TEST(Registry, FastDefaultsShrinkTheGupsProblem) {
  const auto* gups = exp::Registry::instance().find("gups");
  ASSERT_NE(gups, nullptr);
  const auto full = gups->default_params(false);
  const auto fast = gups->default_params(true);
  EXPECT_LT(fast.at("updates_per_node"), full.at("updates_per_node"));
  EXPECT_EQ(fast.at("buffer_limit"), 1024);
}

TEST(Workload, BarrierRunBackendMeasuresBothNetworks) {
  const auto* barrier = exp::Registry::instance().find("barrier");
  ASSERT_NE(barrier, nullptr);
  auto params = barrier->default_params(true);
  const auto dv = barrier->run_backend(exp::Backend::kDv, 2, params);
  const auto mpi = barrier->run_backend(exp::Backend::kMpi, 2, params);
  EXPECT_GT(dv.at("latency_us"), 0.0);
  EXPECT_GT(mpi.at("latency_us"), 0.0);
  // The same point is deterministic across calls.
  EXPECT_EQ(barrier->run_backend(exp::Backend::kDv, 2, params).at("latency_us"),
            dv.at("latency_us"));
}

TEST(Workload, TraceWorkloadIsMpiOnly) {
  const auto* trace = exp::Registry::instance().find("gups_trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->has_backend(exp::Backend::kMpi));
  EXPECT_FALSE(trace->has_backend(exp::Backend::kDv));
  EXPECT_TRUE(trace->run_backend(exp::Backend::kDv, 8, trace->default_params(true)).empty());
}

TEST(Driver, RejectsUnknownArgumentsAndFigures) {
  EXPECT_EQ(cli({"--bogus"}), 2);
  EXPECT_EQ(cli({"--figure", "fig42"}), 2);
  EXPECT_EQ(cli({"--nodes", "banana", "--figure", "fig4"}), 2);
  EXPECT_EQ(cli({}), 2);  // no selection
}

TEST(Driver, ListSucceeds) { EXPECT_EQ(cli({"--list"}), 0); }

TEST(Driver, FigureRunEmitsValidJsonMatchingTheTables) {
  const std::string dir = ::testing::TempDir();
  const std::string combined = dir + "/dvx_bench_test_out.json";
  std::remove(combined.c_str());

  // fig4 at tiny node counts: quick, exercises both backends and a sweep.
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--nodes", "2,4", "--no-figure-json",
                 "--json", combined.c_str()}),
            0);
  const std::string doc = slurp(combined);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"schema\": \"dvx-bench/v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"figure\": \"fig4\""), std::string::npos);
  EXPECT_NE(doc.find("\"workload\": \"barrier\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"dv\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"mpi\""), std::string::npos);
  EXPECT_NE(doc.find("latency_us"), std::string::npos);
  std::remove(combined.c_str());
}

TEST(Driver, WritesPerFigureBenchFile) {
  const auto* w = exp::Registry::instance().find("fig4");
  ASSERT_NE(w, nullptr);
  dvx::runtime::ResultSink sink;
  std::ostringstream tables;
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2};
  opt.out = &tables;
  w->run(opt, sink);
  ASSERT_FALSE(sink.records().empty());
  // Table text and JSON metrics come from the same measurement: the DV
  // latency formatted into the table appears verbatim in the table dump.
  const double dv_us = sink.records().front().metrics.at("latency_us");
  EXPECT_NE(tables.str().find(dvx::runtime::fmt(dv_us)), std::string::npos);

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(sink.write_figure_file("fig4", dir));
  const std::string doc = slurp(dir + "/BENCH_fig4.json");
  EXPECT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"figure\": \"fig4\""), std::string::npos);
}

}  // namespace
