// Tests for the experiment layer: workload registry completeness, parameter
// resolution, per-point entry points, the plan/execute/report split with its
// parallel point scheduler, and the dvx_bench driver end-to-end (CLI
// parsing, table output, and machine-readable JSON emission).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/driver.hpp"
#include "exp/scheduler.hpp"
#include "exp/workload.hpp"
#include "json_lite.hpp"

namespace exp = dvx::exp;
using dvx::testing::jsonlite::is_valid_json;

namespace {

int cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"dvx_bench"};
  argv.insert(argv.end(), args.begin(), args.end());
  return exp::run_cli(static_cast<int>(argv.size()), argv.data());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Registry, AllPaperFiguresAndAblationsRegistered) {
  const auto all = exp::Registry::instance().all();
  ASSERT_EQ(all.size(), 11u);
  for (const char* fig : {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                          "ablation_aggregation", "ablation_fabric", "traffic",
                          "serving"}) {
    EXPECT_NE(exp::Registry::instance().find(fig), nullptr) << fig;
  }
  for (const char* name : {"pingpong", "barrier", "gups_trace", "gups", "fft1d", "bfs",
                           "apps", "ablation_aggregation", "ablation_fabric",
                           "traffic", "serving"}) {
    EXPECT_NE(exp::Registry::instance().find(name), nullptr) << name;
  }
  EXPECT_EQ(exp::Registry::instance().find("fig42"), nullptr);
}

TEST(Registry, WorkloadsDeclareParamsAndMetrics) {
  for (const auto* w : exp::Registry::instance().all()) {
    EXPECT_FALSE(w->name().empty());
    EXPECT_FALSE(w->figure().empty());
    EXPECT_FALSE(w->title().empty());
    EXPECT_FALSE(w->metric_specs().empty()) << w->name();
    EXPECT_FALSE(w->default_nodes(false).empty()) << w->name();
    for (const auto& p : w->param_specs()) {
      EXPECT_FALSE(p.key.empty()) << w->name();
      EXPECT_FALSE(p.description.empty()) << w->name() << "." << p.key;
    }
  }
}

TEST(Registry, FastDefaultsShrinkTheGupsProblem) {
  const auto* gups = exp::Registry::instance().find("gups");
  ASSERT_NE(gups, nullptr);
  const auto full = gups->default_params(false);
  const auto fast = gups->default_params(true);
  EXPECT_LT(fast.at("updates_per_node"), full.at("updates_per_node"));
  EXPECT_EQ(fast.at("buffer_limit"), 1024);
}

TEST(Workload, BarrierRunBackendMeasuresBothNetworks) {
  const auto* barrier = exp::Registry::instance().find("barrier");
  ASSERT_NE(barrier, nullptr);
  auto params = barrier->default_params(true);
  const auto dv = barrier->run_backend(exp::Backend::kDv, 2, params);
  const auto mpi = barrier->run_backend(exp::Backend::kMpiIb, 2, params);
  EXPECT_GT(dv.at("latency_us"), 0.0);
  EXPECT_GT(mpi.at("latency_us"), 0.0);
  // The same point is deterministic across calls.
  EXPECT_EQ(barrier->run_backend(exp::Backend::kDv, 2, params).at("latency_us"),
            dv.at("latency_us"));
}

TEST(Workload, TraceWorkloadIsMpiOnly) {
  const auto* trace = exp::Registry::instance().find("gups_trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->has_backend(exp::Backend::kMpiIb));
  EXPECT_FALSE(trace->has_backend(exp::Backend::kDv));
  EXPECT_FALSE(trace->has_backend(exp::Backend::kMpiTorus));
  EXPECT_TRUE(trace->run_backend(exp::Backend::kDv, 8, trace->default_params(true)).empty());
}

TEST(Workload, BackendIdsRoundTripAndAliasParses) {
  EXPECT_STREQ(exp::to_string(exp::Backend::kDv), "dv");
  EXPECT_STREQ(exp::to_string(exp::Backend::kMpiIb), "mpi");  // legacy wire id
  EXPECT_STREQ(exp::to_string(exp::Backend::kMpiTorus), "mpi-torus");
  EXPECT_EQ(exp::parse_backend("dv"), exp::Backend::kDv);
  EXPECT_EQ(exp::parse_backend("mpi"), exp::Backend::kMpiIb);
  EXPECT_EQ(exp::parse_backend("mpi-ib"), exp::Backend::kMpiIb);  // CLI alias
  EXPECT_EQ(exp::parse_backend("mpi-torus"), exp::Backend::kMpiTorus);
  EXPECT_THROW(exp::parse_backend("ethernet"), std::invalid_argument);
  EXPECT_THROW(exp::parse_backend(""), std::invalid_argument);
  for (const exp::Backend b : exp::all_backends()) {
    EXPECT_EQ(exp::parse_backend(exp::to_string(b)), b);
    EXPECT_STRNE(exp::display_name(b), "");
  }
}

TEST(Workload, SelectedBackendsFiltersAndKeepsCanonicalOrder) {
  const auto* gups = exp::Registry::instance().find("gups");
  ASSERT_NE(gups, nullptr);
  exp::RunOptions opt;
  // Empty filter: the legacy dv+mpi default, torus only on request.
  auto def = gups->selected_backends(opt);
  ASSERT_EQ(def.size(), 2u);
  EXPECT_EQ(def[0], exp::Backend::kDv);
  EXPECT_EQ(def[1], exp::Backend::kMpiIb);
  // Explicit filter: canonical order regardless of CLI order, deduplicated.
  opt.backends = {exp::Backend::kMpiTorus, exp::Backend::kDv, exp::Backend::kDv};
  auto three = gups->selected_backends(opt);
  ASSERT_EQ(three.size(), 2u);
  EXPECT_EQ(three[0], exp::Backend::kDv);
  EXPECT_EQ(three[1], exp::Backend::kMpiTorus);
  // Workloads without a backend drop it silently.
  const auto* trace = exp::Registry::instance().find("gups_trace");
  ASSERT_NE(trace, nullptr);
  opt.backends = {exp::Backend::kDv, exp::Backend::kMpiTorus};
  EXPECT_TRUE(trace->selected_backends(opt).empty());
}

TEST(Workload, EveryWorkloadDeclaresItsBackendsExplicitly) {
  for (const auto* w : exp::Registry::instance().all()) {
    bool any = false;
    for (const exp::Backend b : exp::all_backends()) any |= w->has_backend(b);
    EXPECT_TRUE(any) << w->name();
    EXPECT_FALSE(w->default_backends().empty()) << w->name();
  }
}

TEST(Driver, RejectsUnknownArgumentsAndFigures) {
  EXPECT_EQ(cli({"--bogus"}), 2);
  EXPECT_EQ(cli({"--figure", "fig42"}), 2);
  EXPECT_EQ(cli({"--nodes", "banana", "--figure", "fig4"}), 2);
  EXPECT_EQ(cli({}), 2);  // no selection
}

TEST(Driver, RejectsNumbersWithTrailingGarbage) {
  // std::stoi used to accept "8x" as 8; strict parsing must refuse it.
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--nodes", "8x"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--seed", "7q"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--jobs", "2x"}), 2);
}

TEST(Driver, RejectsNegativeSeedInsteadOfWrapping) {
  // std::stoull used to wrap "-1" to 2^64-1.
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--seed", "-1"}), 2);
}

TEST(Driver, RejectsEmptyCsvFieldsInsteadOfDroppingThem) {
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--nodes", "4,,8"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--nodes", ",4"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--nodes", "4,"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4,,fig6"}), 2);
}

TEST(Driver, RejectsBadJobsValues) {
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--jobs", "0"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--jobs", "-3"}), 2);
}

TEST(Driver, RejectsUnknownBackends) {
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--backends", "ethernet"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--backends", "dv,,mpi"}), 2);
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--backends", ""}), 2);
}

TEST(Driver, ThreeWayTrafficEmitsDistinctBackendIds) {
  const std::string combined =
      ::testing::TempDir() + "/dvx_bench_three_way.json";
  std::remove(combined.c_str());
  EXPECT_EQ(cli({"--figure", "traffic", "--fast", "--backends", "dv,mpi-ib,mpi-torus",
                 "--no-figure-json", "--json", combined.c_str()}),
            0);
  const std::string doc = slurp(combined);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"backend\": \"dv\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"mpi\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"mpi-torus\""), std::string::npos);
  std::remove(combined.c_str());
}

TEST(Driver, BackendFilterSkipsUnsupportedSeries) {
  // fig3 has no torus series: asking for torus alone runs an empty plan.
  const std::string combined =
      ::testing::TempDir() + "/dvx_bench_torus_only.json";
  std::remove(combined.c_str());
  EXPECT_EQ(cli({"--figure", "fig3", "--fast", "--backends", "mpi-torus",
                 "--no-figure-json", "--json", combined.c_str()}),
            0);
  const std::string doc = slurp(combined);
  EXPECT_TRUE(is_valid_json(doc));
  EXPECT_EQ(doc.find("\"backend\": \"mpi-torus\""), std::string::npos);
  std::remove(combined.c_str());
}

TEST(Driver, HelpWinsButDoesNotSwallowGarbage) {
  EXPECT_EQ(cli({"--help"}), 0);
  EXPECT_EQ(cli({"--help", "--figure", "fig4"}), 0);  // help wins, nothing runs
  // --help used to return early from parsing, silently accepting any
  // arguments after it; they must still be validated.
  EXPECT_EQ(cli({"--help", "--bogus"}), 2);
  EXPECT_EQ(cli({"--help", "--nodes", "8x"}), 2);
}

TEST(Driver, JsonWithoutSelectionPrintsUsage) {
  const std::string path = ::testing::TempDir() + "/dvx_bench_no_selection.json";
  std::remove(path.c_str());
  EXPECT_EQ(cli({"--json", path.c_str()}), 2);
  // Usage error: the combined document must not have been written.
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

TEST(Driver, ListSucceeds) { EXPECT_EQ(cli({"--list"}), 0); }

TEST(Driver, FigureRunEmitsValidJsonMatchingTheTables) {
  const std::string dir = ::testing::TempDir();
  const std::string combined = dir + "/dvx_bench_test_out.json";
  std::remove(combined.c_str());

  // fig4 at tiny node counts: quick, exercises both backends and a sweep.
  EXPECT_EQ(cli({"--figure", "fig4", "--fast", "--nodes", "2,4", "--no-figure-json",
                 "--json", combined.c_str()}),
            0);
  const std::string doc = slurp(combined);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"schema\": \"dvx-bench/v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"figure\": \"fig4\""), std::string::npos);
  EXPECT_NE(doc.find("\"workload\": \"barrier\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"dv\""), std::string::npos);
  EXPECT_NE(doc.find("\"backend\": \"mpi\""), std::string::npos);
  EXPECT_NE(doc.find("latency_us"), std::string::npos);
  std::remove(combined.c_str());
}

TEST(Driver, WritesPerFigureBenchFile) {
  const auto* w = exp::Registry::instance().find("fig4");
  ASSERT_NE(w, nullptr);
  dvx::runtime::ResultSink sink;
  std::ostringstream tables;
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2};
  opt.out = &tables;
  w->run(opt, sink);
  ASSERT_FALSE(sink.records().empty());
  // Table text and JSON metrics come from the same measurement: the DV
  // latency formatted into the table appears verbatim in the table dump.
  const double dv_us = sink.records().front().metrics.at("latency_us");
  EXPECT_NE(tables.str().find(dvx::runtime::fmt(dv_us)), std::string::npos);

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(sink.write_figure_file("fig4", dir));
  const std::string doc = slurp(dir + "/BENCH_fig4.json");
  EXPECT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"figure\": \"fig4\""), std::string::npos);
}

// -- parallel point execution ------------------------------------------------

TEST(Scheduler, RunsEveryTaskExactlyOnce) {
  std::vector<int> hits(257, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });  // disjoint slots, no race
  }
  exp::PointScheduler(4).run(tasks);
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(exp::PointScheduler(0).jobs(), 1);  // clamped
  EXPECT_GE(exp::PointScheduler::default_jobs(), 1);
}

/// Runs `figures` through the parallel driver and returns the combined
/// JSON document plus the concatenated table output.
std::pair<std::string, std::string> run_parallel(
    const std::vector<std::string>& figures, int jobs, std::uint64_t seed = 0) {
  std::vector<const exp::Workload*> selected;
  for (const auto& f : figures) {
    const auto* w = exp::Registry::instance().find(f);
    EXPECT_NE(w, nullptr) << f;
    selected.push_back(w);
  }
  std::ostringstream tables;
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2, 4};
  opt.seed = seed;
  opt.out = &tables;
  dvx::runtime::ResultSink sink;
  sink.fast = opt.fast;
  sink.seed = opt.seed;
  EXPECT_EQ(exp::run_workloads(selected, opt, jobs, sink), 0);
  return {sink.to_json().dump(2), tables.str()};
}

TEST(Parallel, JobsLevelDoesNotChangeJsonOrTables) {
  // fig4 (three variants per node count), fig6 (dv/mpi pairs + derived
  // ratios), fig8 (consumes the root --seed): byte-identical documents and
  // tables at --jobs 1 vs --jobs 4, including derived sub-seeds.
  const auto serial = run_parallel({"fig4", "fig6", "fig8"}, 1, 1234);
  const auto parallel = run_parallel({"fig4", "fig6", "fig8"}, 4, 1234);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_TRUE(is_valid_json(parallel.first));
  // The root seed is echoed at document level.
  EXPECT_NE(parallel.first.find("\"seed\": 1234"), std::string::npos);
}

/// Two points; the 2-node one throws during execution.
class FailingWorkload final : public exp::Workload {
 public:
  std::string name() const override { return "failing"; }
  std::string figure() const override { return "failing_fig"; }
  std::string title() const override { return "synthetic failing workload"; }
  std::string paper_anchor() const override { return "none"; }
  std::vector<exp::ParamSpec> param_specs() const override { return {}; }
  std::vector<exp::MetricSpec> metric_specs() const override {
    return {{"value", "", "synthetic metric"}};
  }
  bool has_backend(exp::Backend b) const override { return b == exp::Backend::kDv; }
  exp::MetricMap run_backend(exp::Backend, int nodes,
                             const exp::ParamMap&) const override {
    if (nodes == 2) throw std::runtime_error("injected point failure");
    return {{"value", static_cast<double>(nodes)}};
  }
  std::vector<exp::RunPoint> plan(const exp::RunOptions& opt) const override {
    exp::PlanBuilder builder(*this, opt);
    builder.add(exp::Backend::kDv, 2, {});
    builder.add(exp::Backend::kDv, 4, {});
    return builder.take();
  }
  void report(const exp::RunOptions&, const std::vector<exp::PointResult>& results,
              dvx::runtime::ResultSink& sink) const override {
    for (const auto& r : results) sink.add(make_record(r));
  }
};

TEST(Parallel, ThrowingPointFailsOnlyItsOwnFigure) {
  FailingWorkload failing;
  const auto* fig4 = exp::Registry::instance().find("fig4");
  ASSERT_NE(fig4, nullptr);
  std::ostringstream tables;
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2};
  opt.out = &tables;
  dvx::runtime::ResultSink sink;
  int reported = 0, reported_ok = 0;
  const int failures = exp::run_workloads(
      {&failing, fig4}, opt, 4, sink, [&](const exp::Workload&, bool ok) {
        ++reported;
        reported_ok += ok ? 1 : 0;
      });
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(reported, 2);
  EXPECT_EQ(reported_ok, 1);
  // The sibling figure still produced its full canonical record set; the
  // failed figure produced none.
  bool any_failing = false, any_fig4 = false;
  for (const auto& r : sink.records()) {
    any_failing |= r.figure == "failing_fig";
    any_fig4 |= r.figure == "fig4";
  }
  EXPECT_FALSE(any_failing);
  EXPECT_TRUE(any_fig4);
}

TEST(Parallel, SequentialRunSurfacesPointFailuresAfterSiblingsRan) {
  FailingWorkload failing;
  exp::RunOptions opt;
  std::ostringstream tables;
  opt.out = &tables;
  dvx::runtime::ResultSink sink;
  EXPECT_THROW(failing.run(opt, sink), std::runtime_error);
  EXPECT_TRUE(sink.records().empty());
}

TEST(Parallel, SubSeedsAreDerivedPerPointAndStable) {
  const auto* fig8 = exp::Registry::instance().find("fig8");
  ASSERT_NE(fig8, nullptr);
  exp::RunOptions opt;
  opt.fast = true;
  opt.nodes = {2, 4};
  opt.seed = 99;
  const auto plan_a = fig8->plan(opt);
  const auto plan_b = fig8->plan(opt);
  ASSERT_EQ(plan_a.size(), 4u);  // dv/mpi pairs at two node counts
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].seed, plan_b[i].seed) << i;   // stable across plans
    EXPECT_NE(plan_a[i].seed, 0u) << i;
  }
  EXPECT_NE(plan_a[0].seed, plan_a[1].seed);  // distinct streams per point
  // The dv/mpi pair at one node count searches the same graph...
  EXPECT_EQ(plan_a[0].params.at("seed"), plan_a[1].params.at("seed"));
  // ...and different node counts get different graphs, none the default 2.
  EXPECT_NE(plan_a[0].params.at("seed"), plan_a[2].params.at("seed"));
  EXPECT_NE(plan_a[0].params.at("seed"), 2.0);
  // Without a root seed, sub-seeds stay unset and defaults apply.
  opt.seed = 0;
  const auto plan_default = fig8->plan(opt);
  EXPECT_EQ(plan_default[0].seed, 0u);
  EXPECT_EQ(plan_default[0].params.at("seed"), 2.0);
}

}  // namespace
