#pragma once
// Abstract interconnect seam (DESIGN.md §9).
//
// Every network backend the MPI runtime can run over — the InfiniBand
// fat-tree (ib::Fabric), the 3D torus (torus::Fabric), and whatever comes
// next — implements this interface. The contract is deliberately tiny and
// purely functional over virtual time:
//
//   * send_message(src, dst, bytes, ready) answers "when does a message
//     injected at `ready` first/last arrive", mutating only the model's
//     internal next-free-time state. No coroutines, no engine callbacks:
//     the caller (mpi::MpiWorld, a workload) owns the event scheduling.
//   * Determinism: the result may depend only on constructor parameters and
//     the sequence of prior send_message calls. Implementations must not
//     read wall-clock time or unseeded entropy (tools/lint_determinism.py
//     enforces the ban), so the same call sequence yields byte-identical
//     timings on every host.
//   * The DES guarantees nondecreasing `ready` values per source; models
//     may rely on that the way ib::Fabric's link bank does. In windowed
//     partition mode (DESIGN.md §15) mpi::MpiWorld stages wire transfers
//     and replays them at window closes sorted by (ready, src, seq); since
//     every event left pending after window W is at or past W's end, ready
//     values stay nondecreasing across batches too, and the property holds
//     globally. Loopback (src == dst) calls are the one exception: they run
//     concurrently on the calling shard mid-window, so that branch may
//     touch only thread-safe state (see ib/torus byte tallies).
//
// Adding a backend = implement this class, add an exp::Backend id, and
// register the construction in runtime::Cluster. Nothing in src/mpi changes.

#include <cstdint>

#include "sim/time.hpp"

namespace dvx::net {

/// First/last byte arrival of one message, in virtual time.
struct MsgTiming {
  sim::Time first_arrival;
  sim::Time last_arrival;
};

class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Number of endpoints; valid node ids are [0, nodes()).
  virtual int nodes() const noexcept = 0;

  /// Moves `bytes` from `src` to `dst`, first byte injectable at `ready`.
  /// Must model src == dst as a local (host memory) copy. Throws
  /// std::out_of_range when either node id is outside [0, nodes()).
  virtual MsgTiming send_message(int src, int dst, std::int64_t bytes,
                                 sim::Time ready) = 0;

  /// Total bytes offered to the fabric so far (diagnostics).
  virtual std::int64_t bytes_sent() const noexcept = 0;

  /// Clears all contention state (link next-free times, NIC gates, counters)
  /// back to construction values.
  virtual void reset() = 0;

  /// Conservative lower bound on cross-node delivery latency: no message
  /// injected at time t may arrive at another node before t + lookahead().
  /// A sharded sim::Engine uses this as its synchronization window width
  /// (DESIGN.md §12), so the bound must be safe, not tight — 0 (the
  /// default) means "no bound known" and forces serial execution.
  virtual sim::Duration lookahead() const noexcept { return 0; }
};

}  // namespace dvx::net
