#pragma once
// The deterministic shard-access race detector (DESIGN.md §13).
//
// ShardAccessRecorder accumulates the (shard, object, read|write, window)
// tuples emitted by DVX_SHARD_ACCESS instrumentation points and answers the
// question the fabric-partitioning plan needs answered: *which shared
// structures are touched by more than one shard inside one lookahead
// window, with at least one write?* Those are exactly the structures that
// must be partitioned (or proven read-only) before cluster runs can flip to
// `shards > 1`; everything else is already safe.
//
// Storage is one bucket per shard (plus one for accesses outside engine
// dispatch, e.g. construction). The engine guarantees a shard never runs on
// two threads at once and windows are separated by barriers, so buckets are
// written race-free without locks; buckets are 64-byte aligned so
// concurrently-dispatching shards never share a cache line. Reports are
// sorted maps serialized with ordered keys — byte-identical for the same
// simulation trajectory regardless of worker-thread interleaving.
//
// The recorder observes and never steers: installing one cannot change any
// simulation output.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analyze/shard_access.hpp"

namespace dvx::analyze {

/// Access counts for one (object, instance) within one (epoch, window) on
/// one shard.
struct WindowAccess {
  std::uint64_t epoch = 0;
  std::uint64_t window = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// One shard's view of one object across the run.
struct ShardAccess {
  int shard = -1;  ///< -1: outside engine dispatch (construction, teardown)
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t windows = 0;  ///< distinct (epoch, window) pairs touched
};

/// Aggregated per-object summary.
struct ObjectSummary {
  std::string object;
  int instance = -1;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::vector<ShardAccess> shards;  ///< ordered by shard id (-1 first)
};

/// A window in which >= 2 shards touched the same object and at least one
/// of them wrote: the concrete race that blocks `shards > 1`.
struct Conflict {
  std::string object;
  int instance = -1;
  std::uint64_t epoch = 0;
  std::uint64_t window = 0;
  std::vector<WindowAccess> per_shard;  ///< epoch/window repeated; ordered by shard
  std::vector<int> shards;              ///< the conflicting shard ids, ascending
};

class ShardAccessRecorder {
 public:
  /// Shards at or above `max_shards` are folded into the last bucket (and
  /// counted in folded_records()); 64 covers every configuration in the
  /// tree with room to spare.
  static constexpr int kDefaultMaxShards = 64;

  explicit ShardAccessRecorder(int max_shards = kDefaultMaxShards);
  ~ShardAccessRecorder();
  ShardAccessRecorder(const ShardAccessRecorder&) = delete;
  ShardAccessRecorder& operator=(const ShardAccessRecorder&) = delete;

  /// Instrumentation entry (usually reached via DVX_SHARD_ACCESS). Resolves
  /// the calling thread's dispatch shard and lookahead window from
  /// sim::Engine; safe to call concurrently from engine window workers.
  void record(const char* object, int instance, Mode mode) noexcept;

  /// Bumps the epoch; see analyze::next_epoch().
  void advance_epoch() noexcept { epoch_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t epoch() const noexcept { return epoch_.load(std::memory_order_relaxed); }

  /// Total tuples recorded / folded into the overflow bucket.
  std::uint64_t total_records() const noexcept;
  std::uint64_t folded_records() const noexcept { return folded_.load(std::memory_order_relaxed); }

  // Analysis (call only while no simulation is dispatching).

  /// Every instrumented object touched, sorted by (object, instance).
  std::vector<ObjectSummary> objects() const;
  /// Cross-shard write conflicts, sorted by (object, instance, epoch,
  /// window). Accesses outside dispatch (shard -1) never conflict.
  std::vector<Conflict> conflicts() const;

  /// The `dvx-analyze/v1` report: schema tag, compiled check level, object
  /// inventory, conflicts, and the summary list of structures blocking
  /// `shards > 1` (objects written at all — shared mutable state that must
  /// be partitioned or proven read-only). Deterministic byte-for-byte for a
  /// given simulation trajectory.
  std::string report_json() const;

 private:
  struct KeyLess {
    bool operator()(const std::pair<const char*, int>& a,
                    const std::pair<const char*, int>& b) const noexcept;
  };
  /// Per-object log within one bucket: ordered by arrival; windows are
  /// monotone per shard within an epoch, so the common case appends to or
  /// merges with the last entry.
  using ObjectLog = std::map<std::pair<const char*, int>, std::vector<WindowAccess>, KeyLess>;

  struct alignas(64) Bucket {
    ObjectLog log;
  };

  /// bucket 0 = outside dispatch (shard -1); bucket s+1 = shard s.
  std::vector<Bucket> buckets_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> folded_{0};
};

/// RAII: installs `r` as the process-global recorder DVX_SHARD_ACCESS sites
/// feed, restoring the previous (usually none) on destruction. Install
/// before the run starts and uninstall after it drains — never mid-run.
class ScopedShardRecorder {
 public:
  explicit ScopedShardRecorder(ShardAccessRecorder& r) noexcept;
  ~ScopedShardRecorder();
  ScopedShardRecorder(const ScopedShardRecorder&) = delete;
  ScopedShardRecorder& operator=(const ScopedShardRecorder&) = delete;

 private:
  ShardAccessRecorder* prev_;
};

}  // namespace dvx::analyze
