#include "analyze/recorder.hpp"

#include <cstring>
#include <sstream>

#include "sim/engine.hpp"

namespace dvx::analyze {

namespace detail {

std::atomic<ShardAccessRecorder*> g_recorder{nullptr};

void record(const char* object, int instance, Mode mode) noexcept {
  if (ShardAccessRecorder* r = g_recorder.load(std::memory_order_relaxed)) {
    r->record(object, instance, mode);
  }
}

}  // namespace detail

void next_epoch() noexcept {
  if (ShardAccessRecorder* r = detail::g_recorder.load(std::memory_order_relaxed)) {
    r->advance_epoch();
  }
}

bool ShardAccessRecorder::KeyLess::operator()(
    const std::pair<const char*, int>& a,
    const std::pair<const char*, int>& b) const noexcept {
  // Compare by contents, not pointer identity: the same literal may have
  // distinct addresses across translation units.
  const int c = std::strcmp(a.first, b.first);
  if (c != 0) return c < 0;
  return a.second < b.second;
}

ShardAccessRecorder::ShardAccessRecorder(int max_shards) {
  if (max_shards < 1) max_shards = 1;
  buckets_.resize(static_cast<std::size_t>(max_shards) + 1);
}

ShardAccessRecorder::~ShardAccessRecorder() = default;

void ShardAccessRecorder::record(const char* object, int instance,
                                 Mode mode) noexcept {
  const int shard = sim::Engine::current_shard();
  std::size_t bucket = static_cast<std::size_t>(shard + 1);
  if (bucket >= buckets_.size()) {
    bucket = buckets_.size() - 1;
    folded_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t window = sim::Engine::current_window();
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  try {
    auto& log = buckets_[bucket].log[{object, instance}];
    if (!log.empty() && log.back().epoch == epoch && log.back().window == window) {
      (mode == Mode::kWrite ? log.back().writes : log.back().reads) += 1;
    } else {
      WindowAccess wa;
      wa.epoch = epoch;
      wa.window = window;
      (mode == Mode::kWrite ? wa.writes : wa.reads) = 1;
      log.push_back(wa);
    }
  } catch (...) {
    // Allocation failure in a diagnostics path must never take down the
    // simulation; the tuple is simply lost.
  }
}

std::uint64_t ShardAccessRecorder::total_records() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) {
    for (const auto& [key, log] : b.log) {
      for (const auto& wa : log) n += wa.reads + wa.writes;
    }
  }
  return n;
}

std::vector<ObjectSummary> ShardAccessRecorder::objects() const {
  // (object, instance) -> shard -> totals; std::map keeps everything sorted.
  std::map<std::pair<std::string, int>, std::map<int, ShardAccess>> agg;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const int shard = static_cast<int>(b) - 1;
    for (const auto& [key, log] : buckets_[b].log) {
      auto& sa = agg[{key.first, key.second}][shard];
      sa.shard = shard;
      for (const auto& wa : log) {
        sa.reads += wa.reads;
        sa.writes += wa.writes;
        ++sa.windows;
      }
    }
  }
  std::vector<ObjectSummary> out;
  out.reserve(agg.size());
  for (const auto& [key, shards] : agg) {
    ObjectSummary s;
    s.object = key.first;
    s.instance = key.second;
    for (const auto& [shard, sa] : shards) {
      s.reads += sa.reads;
      s.writes += sa.writes;
      s.shards.push_back(sa);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Conflict> ShardAccessRecorder::conflicts() const {
  std::vector<Conflict> out;
  // (object, instance) -> (epoch, window) -> shard -> WindowAccess.
  std::map<std::pair<std::string, int>,
           std::map<std::pair<std::uint64_t, std::uint64_t>,
                    std::map<int, WindowAccess>>>
      agg;
  for (std::size_t b = 1; b < buckets_.size(); ++b) {  // skip shard -1
    const int shard = static_cast<int>(b) - 1;
    for (const auto& [key, log] : buckets_[b].log) {
      auto& windows = agg[{key.first, key.second}];
      for (const auto& wa : log) {
        auto& cell = windows[{wa.epoch, wa.window}][shard];
        cell.epoch = wa.epoch;
        cell.window = wa.window;
        cell.reads += wa.reads;
        cell.writes += wa.writes;
      }
    }
  }
  for (const auto& [key, windows] : agg) {
    for (const auto& [ew, per_shard] : windows) {
      if (per_shard.size() < 2) continue;
      std::uint64_t writes = 0;
      for (const auto& [shard, wa] : per_shard) writes += wa.writes;
      if (writes == 0) continue;  // concurrent reads are shard-safe
      Conflict c;
      c.object = key.first;
      c.instance = key.second;
      c.epoch = ew.first;
      c.window = ew.second;
      for (const auto& [shard, wa] : per_shard) {
        c.shards.push_back(shard);
        c.per_shard.push_back(wa);
      }
      out.push_back(std::move(c));
    }
  }
  return out;
}

namespace {

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string ShardAccessRecorder::report_json() const {
  const auto objs = objects();
  const auto confl = conflicts();
  std::ostringstream os;
  os << "{\n  \"schema\": \"dvx-analyze/v1\",\n";
  os << "  \"check_level\": " << check::compiled_level() << ",\n";
  os << "  \"folded_records\": " << folded_records() << ",\n";
  os << "  \"objects\": [";
  for (std::size_t i = 0; i < objs.size(); ++i) {
    const auto& o = objs[i];
    os << (i ? ",\n    " : "\n    ") << "{\"object\": ";
    json_string(os, o.object);
    os << ", \"instance\": " << o.instance << ", \"reads\": " << o.reads
       << ", \"writes\": " << o.writes << ", \"shards\": [";
    for (std::size_t s = 0; s < o.shards.size(); ++s) {
      const auto& sa = o.shards[s];
      os << (s ? ", " : "") << "{\"shard\": " << sa.shard
         << ", \"reads\": " << sa.reads << ", \"writes\": " << sa.writes
         << ", \"windows\": " << sa.windows << "}";
    }
    os << "]}";
  }
  os << (objs.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"conflicts\": [";
  for (std::size_t i = 0; i < confl.size(); ++i) {
    const auto& c = confl[i];
    os << (i ? ",\n    " : "\n    ") << "{\"object\": ";
    json_string(os, c.object);
    os << ", \"instance\": " << c.instance << ", \"epoch\": " << c.epoch
       << ", \"window\": " << c.window << ", \"shards\": [";
    for (std::size_t s = 0; s < c.per_shard.size(); ++s) {
      const auto& wa = c.per_shard[s];
      os << (s ? ", " : "") << "{\"shard\": " << c.shards[s]
         << ", \"reads\": " << wa.reads << ", \"writes\": " << wa.writes << "}";
    }
    os << "]}";
  }
  os << (confl.empty() ? "]" : "\n  ]") << ",\n";
  // The actionable output: every object written at all is shared mutable
  // state a shards > 1 cluster run would have to partition or lock.
  os << "  \"blocking_shards_gt1\": [";
  bool first = true;
  for (const auto& o : objs) {
    if (o.writes == 0) continue;
    if (!first) os << ", ";
    first = false;
    std::ostringstream name;
    name << o.object;
    if (o.instance >= 0) name << "#" << o.instance;
    json_string(os, name.str());
  }
  os << "],\n";
  os << "  \"summary\": {\"objects\": " << objs.size() << ", \"mutated\": ";
  std::size_t mutated = 0;
  for (const auto& o : objs) mutated += o.writes != 0 ? 1 : 0;
  os << mutated << ", \"conflicts\": " << confl.size() << "}\n}\n";
  return os.str();
}

ScopedShardRecorder::ScopedShardRecorder(ShardAccessRecorder& r) noexcept
    : prev_(detail::g_recorder.exchange(&r, std::memory_order_relaxed)) {}

ScopedShardRecorder::~ScopedShardRecorder() {
  detail::g_recorder.store(prev_, std::memory_order_relaxed);
}

}  // namespace dvx::analyze
