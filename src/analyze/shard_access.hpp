#pragma once
// Shard-access instrumentation points (DESIGN.md §13).
//
// The sharded engine (DESIGN.md §12) can only flip cluster runs to
// `shards > 1` once every structure the shards would share — the fabric
// models, the VIC assemblies, the MPI world — is either partitioned or
// proven read-only. `DVX_SHARD_ACCESS(object, instance, mode)` marks the
// places where that shared mutable state is touched; when an
// analyze::ShardAccessRecorder is installed, each hit records a
// (shard, object, read|write, window) tuple, and the recorder's report is
// the measured (not guessed) list of cross-shard aliasing sites.
//
// Cost model, following the dvx::obs ambient-collector precedent:
//   * below DVX_CHECK_LEVEL 2 the macro compiles to nothing — the
//     calibrated perf sweeps and the default build pay zero;
//   * at level >= 2 with no recorder installed, one relaxed atomic load
//     and one predictable branch per site;
//   * recording itself is only ever done in analysis runs
//     (`dvx_bench --analyze-out`, tests), never in production sweeps.
//
// `DVX_SHARD_GUARDED(object, instance)` is the annotation form the static
// pass (tools/dvx_analyze, rule `shard-safety`) keys on: every mutating
// public method of a class marked `// dvx-analyze: shared-across-shards`
// must carry one of these macros (or an explicit suppression), so the
// static annotation and the dynamic measurement can never drift apart —
// the same macro is both.
//
// The macros only ever *observe* state: simulation output is byte-identical
// with and without a recorder installed, at every check level.

#include <atomic>
#include <cstdint>

#include "check/check.hpp"

namespace dvx::analyze {

enum class Mode : std::uint8_t { kRead = 0, kWrite = 1 };

class ShardAccessRecorder;

namespace detail {

/// The installed recorder (process-global; see ScopedShardRecorder in
/// recorder.hpp). Relaxed atomics: installation happens strictly before a
/// run starts and removal strictly after it drains, so instrumented sites
/// never race the pointer swap itself.
extern std::atomic<ShardAccessRecorder*> g_recorder;

/// Out-of-line so instrumented translation units only pay a call when a
/// recorder is actually installed. Resolves (shard, window) from the
/// engine's dispatch thread-locals.
void record(const char* object, int instance, Mode mode) noexcept;

}  // namespace detail

/// True when a ShardAccessRecorder is currently installed.
inline bool recording() noexcept {
  return detail::g_recorder.load(std::memory_order_relaxed) != nullptr;
}

/// Advances the recorder's epoch (a run/measurement-point boundary): window
/// indices from different epochs are never merged, so sequential runs that
/// each restart their engine's window counter cannot alias. No-op when no
/// recorder is installed.
void next_epoch() noexcept;

}  // namespace dvx::analyze

// `object` must be a string literal naming the shared structure
// ("vic.DvFabric"); `instance` an int distinguishing peers (node id, -1 for
// singletons); `mode` is kRead or kWrite (unqualified — the macro scopes it).
#if DVX_CHECK_LEVEL >= 2
#define DVX_SHARD_ACCESS(object, instance, mode)                             \
  do {                                                                       \
    if (::dvx::analyze::detail::g_recorder.load(std::memory_order_relaxed) != \
        nullptr) {                                                           \
      ::dvx::analyze::detail::record((object), (instance),                   \
                                     ::dvx::analyze::Mode::mode);            \
    }                                                                        \
  } while (0)
#else
#define DVX_SHARD_ACCESS(object, instance, mode) ((void)0)
#endif

/// Annotation form for mutating methods of `// dvx-analyze:
/// shared-across-shards` classes: a write-mode access point the static
/// shard-safety rule recognizes as the method's guard.
#define DVX_SHARD_GUARDED(object, instance) DVX_SHARD_ACCESS(object, instance, kWrite)
