#pragma once
// dvapi — the Data Vortex programming model (paper §III).
//
// A DvContext is one node program's handle on its VIC. It exposes the API
// families the paper describes:
//   * three send paths with very different PCIe cost profiles:
//       - send_direct_batch  : header+payload PIO from host (DWr/NoCached)
//       - send_cached_batch  : headers pre-cached in DV memory (DWr/Cached)
//       - send_dma_batch     : DMA payloads + cached headers (DMA/Cached)
//   * remote DV-memory puts and host-free query/reply reads
//   * globally settable group counters with wait-for-zero (+timeout)
//   * the surprise FIFO (poll and wait)
//   * the intrinsic two-counter barrier and an in-house all-to-all
//     "FastBarrier"
//   * bulk DMA between host and DV memory
//
// Batches may mix destinations freely — that is the "aggregation at source"
// scheme the paper's GUPS/BFS ports rely on: one PCIe crossing covers
// packets bound for many different nodes.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "vic/vic.hpp"

namespace dvx::dvapi {

/// Counter ids reserved by convention on top of the hardware reservations
/// (scratch #0, intrinsic barrier #62/#63).
inline constexpr int kQueryCounter = 1;        ///< used by DvContext::query
inline constexpr int kFastBarrierA = 2;        ///< FastBarrier, even phases
inline constexpr int kFastBarrierB = 3;        ///< FastBarrier, odd phases
/// First counter id free for applications using dvapi.
inline constexpr int kFirstAppCounter = 4;

/// DV-memory words reserved by dvapi (per VIC, from the top of the card).
inline constexpr std::uint32_t kScratchSlot = 0;  ///< sink for barrier traffic
inline constexpr std::uint32_t kQueryReplySlot = 1;

struct DvApiParams {
  /// Host-side software cost of assembling a packet (header build, map
  /// lookup); charged per batch op, not per word.
  sim::Duration host_op_overhead = sim::ns(60);
  /// Host-side cost of one FIFO poll of the host ring buffer.
  sim::Duration fifo_poll_overhead = sim::ns(80);
  /// PIO batches cross PCIe in chunks of this many packets so the fabric
  /// pipelines behind the (slower) PCIe stream.
  int pio_chunk_packets = 64;
};

class DvContext {
 public:
  DvContext(sim::Engine& engine, vic::DvFabric& fabric, int rank,
            sim::Tracer* tracer = nullptr, DvApiParams params = {});

  int rank() const noexcept { return rank_; }
  int nodes() const noexcept { return fabric_.nodes(); }
  sim::Engine& engine() noexcept { return engine_; }
  vic::Vic& vic() { return fabric_.vic(rank_); }
  vic::DvFabric& fabric() noexcept { return fabric_; }
  const DvApiParams& params() const noexcept { return params_; }

  // --- send paths (return when the host-side hand-off completes) -----------

  /// One packet, header+payload PIO'd from host memory (16 B over PCIe).
  sim::Coro<void> send_direct(const vic::Packet& p);

  /// PIO batch, headers travel with payloads (DWr/NoCached path).
  sim::Coro<void> send_direct_batch(std::span<const vic::Packet> batch);

  /// PIO batch with pre-cached destination headers in the sending VIC's DV
  /// memory: only payloads (8 B/word) cross PCIe (DWr/Cached path).
  sim::Coro<void> send_cached_batch(std::span<const vic::Packet> batch);

  /// DMA batch with cached headers (DMA/Cached path): payloads stream at DMA
  /// bandwidth; the fabric (4.4 GB/s/port) becomes the bottleneck.
  sim::Coro<void> send_dma_batch(std::span<const vic::Packet> batch);

  // --- remote memory ---------------------------------------------------------

  /// Writes `words` into `dst`'s DV memory at `addr` (DMA/Cached path). Each
  /// word optionally decrements group counter `counter` on arrival.
  sim::Coro<void> put(int dst, std::uint32_t addr, std::span<const std::uint64_t> words,
                      int counter = vic::kNoCounter);

  /// Host-free remote read: query packet out, reply lands in this VIC's
  /// reply slot and decrements the query counter.
  sim::Coro<std::uint64_t> query(int dst, std::uint32_t addr);

  // --- group counters --------------------------------------------------------

  /// Presets a local counter (one posted PCIe write).
  sim::Coro<void> counter_set_local(int counter, std::uint64_t value);

  /// Sets a counter on another VIC via a control packet.
  sim::Coro<void> counter_set_remote(int dst, int counter, std::uint64_t value);

  /// Waits for a local counter to reach zero; `timeout` < 0 waits forever.
  /// Cheap on the host side: the VIC pushes its zero-counter list into host
  /// memory during idle PCIe cycles, so no PCIe read is needed.
  sim::Coro<bool> counter_wait_zero(int counter, sim::Duration timeout = -1);

  // --- surprise FIFO ---------------------------------------------------------

  /// Sends one word to `dst`'s surprise FIFO (PIO path).
  sim::Coro<void> send_fifo(int dst, std::uint64_t payload);

  /// Drains every packet currently visible in the local FIFO.
  sim::Coro<std::vector<vic::Packet>> fifo_poll();

  /// Waits until the local FIFO has at least one packet, then drains it.
  sim::Coro<std::vector<vic::Packet>> fifo_wait();

  // --- barriers --------------------------------------------------------------

  /// The intrinsic whole-system barrier (two reserved group counters,
  /// completed by the VICs without host round trips).
  sim::Coro<void> barrier();

  /// The in-house all-to-all barrier from the paper's Fig. 4 ("Fast
  /// Barrier"): every node decrements a preset counter on every other node.
  sim::Coro<void> fast_barrier();

  // --- bulk host <-> DV-memory DMA -------------------------------------------

  /// Moves `words.size()` words from host memory into local DV memory.
  sim::Coro<void> dma_write_dv(std::uint32_t addr, std::span<const std::uint64_t> words);

  /// Moves words from local DV memory into host memory.
  sim::Coro<void> dma_read_dv(std::uint32_t addr, std::span<std::uint64_t> out);

  /// Multi-buffered variant: queues the DV-memory -> host DMA and returns
  /// its completion time WITHOUT blocking on it (paper §III: "incoming and
  /// outgoing DMA transfers can be overlapped, and multi-buffered DMAs
  /// enable better overlap ... with host computations"). The copy into
  /// `out` happens immediately in simulation terms; virtual completion is
  /// the returned time, and later DMA reads queue behind it.
  sim::Time dma_read_dv_async(std::uint32_t addr, std::span<std::uint64_t> out);

  // --- statistics -------------------------------------------------------------

  std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  /// Sense-reversal state shared by the word collectives (collectives.hpp).
  struct CollectiveState {
    std::uint64_t phase = 0;
    bool primed = false;
  };
  CollectiveState& collective_state() noexcept { return collective_state_; }

 private:
  sim::Coro<void> pio_batch(std::span<const vic::Packet> batch,
                            std::int64_t bytes_per_packet);
  void trace_state(sim::NodeState s, sim::Time begin);

  sim::Engine& engine_;
  vic::DvFabric& fabric_;
  int rank_;
  sim::Tracer* tracer_;
  DvApiParams params_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t fast_barrier_phase_ = 0;
  bool fast_barrier_primed_ = false;
  CollectiveState collective_state_{};
};

}  // namespace dvx::dvapi
