// Barriers (paper §V, Fig. 4).
//
// barrier() is the API intrinsic: it uses the two reserved group counters
// and completes inside the VICs, so its latency is nearly flat in node
// count. fast_barrier() is the paper's in-house alternative built on
// all-to-all single-word traffic against preset user counters with sense
// reversal; its cost emerges from the PCIe and fabric models.

#include "dvapi/context.hpp"

namespace dvx::dvapi {

sim::Coro<void> DvContext::barrier() {
  const sim::Time t0 = engine_.now();
  // Arming the hardware barrier costs one posted PCIe write.
  const sim::Time armed = vic().pcie().direct_write(8, t0);
  co_await engine_.resume_at(armed);
  co_await fabric_.intrinsic_barrier(rank_);
  trace_state(sim::NodeState::kBarrier, t0);
}

sim::Coro<void> DvContext::fast_barrier() {
  const sim::Time t0 = engine_.now();
  const auto n = static_cast<std::uint64_t>(nodes());

  if (!fast_barrier_primed_) {
    // Preset both sense counters, then synchronize once on the intrinsic
    // barrier so no decrement can race an unarmed counter (paper §III:
    // "typically the developer will set up the communication by presetting
    // a group counter ... and invoke a barrier").
    co_await counter_set_local(kFastBarrierA, n - 1);
    co_await counter_set_local(kFastBarrierB, n - 1);
    fast_barrier_primed_ = true;
    co_await fabric_.intrinsic_barrier(rank_);
  }

  const int ctr = (fast_barrier_phase_ % 2 == 0) ? kFastBarrierA : kFastBarrierB;
  ++fast_barrier_phase_;

  // Notify everyone else: one word each, aimed at their sense counter.
  std::vector<vic::Packet> batch;
  batch.reserve(static_cast<std::size_t>(nodes() - 1));
  for (int peer = 0; peer < nodes(); ++peer) {
    if (peer == rank_) continue;
    batch.push_back(vic::Packet{
        vic::Header{static_cast<std::uint16_t>(peer), vic::DestKind::kDvMemory,
                    static_cast<std::uint8_t>(ctr), kScratchSlot},
        0});
  }
  co_await send_direct_batch(batch);
  co_await counter_wait_zero(ctr);
  // Re-arm for the next same-sense phase. Safe: a peer can only reach that
  // phase after receiving our *next* (other-sense) notification, which we
  // send after this line runs.
  co_await counter_set_local(ctr, n - 1);
  trace_state(sim::NodeState::kBarrier, t0);
}

}  // namespace dvx::dvapi
