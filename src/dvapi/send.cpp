// Send paths and remote-memory operations of the Data Vortex API.
//
// The three paths differ only in how bytes reach the VIC: PIO with headers
// (16 B/packet at direct-write bandwidth), PIO with pre-cached headers
// (8 B/packet), or DMA with pre-cached headers (8 B/packet at DMA bandwidth,
// at which point the fabric's 4.4 GB/s port becomes the bottleneck). In all
// cases the fabric pipelines behind the PCIe stream: chunks are handed to
// the switch as they land on the card, not after the whole batch crosses.

#include "dvapi/context.hpp"

namespace dvx::dvapi {

sim::Coro<void> DvContext::send_direct(const vic::Packet& p) {
  co_await send_direct_batch(std::span<const vic::Packet>(&p, 1));
}

sim::Coro<void> DvContext::pio_batch(std::span<const vic::Packet> batch,
                                     std::int64_t bytes_per_packet) {
  if (batch.empty()) co_return;
  const sim::Time t0 = engine_.now();
  co_await engine_.delay(params_.host_op_overhead);
  sim::Time last = engine_.now();
  std::size_t i = 0;
  while (i < batch.size()) {
    const std::size_t n =
        std::min(batch.size() - i, static_cast<std::size_t>(params_.pio_chunk_packets));
    last = vic().pcie().direct_write(static_cast<std::int64_t>(n) * bytes_per_packet,
                                     engine_.now());
    fabric_.transmit(rank_, batch.subspan(i, n), last);
    i += n;
  }
  packets_sent_ += batch.size();
  // PIO writes are posted but the lane's pace throttles the writing core.
  co_await engine_.resume_at(last);
  trace_state(sim::NodeState::kSend, t0);
}

sim::Coro<void> DvContext::send_direct_batch(std::span<const vic::Packet> batch) {
  co_await pio_batch(batch, vic::kPacketBytes);  // header + payload cross PCIe
}

sim::Coro<void> DvContext::send_cached_batch(std::span<const vic::Packet> batch) {
  co_await pio_batch(batch, vic::kWordBytes);  // headers already on the card
}

sim::Coro<void> DvContext::send_dma_batch(std::span<const vic::Packet> batch) {
  if (batch.empty()) co_return;
  const sim::Time t0 = engine_.now();
  co_await engine_.delay(params_.host_op_overhead);

  const auto bytes = static_cast<std::int64_t>(batch.size()) * vic::kWordBytes;
  const auto& pp = vic().pcie().params();
  const auto res = vic().dma_to_vic().transfer(bytes, engine_.now());
  // Hand the batch to the fabric in DMA-entry-sized chunks, each at the
  // virtual time it lands on the card. The co_await per chunk matters: it
  // puts every sender's chunk hand-offs into the global event order, so
  // concurrent scatters interleave chronologically on shared ejection ports
  // instead of reserving whole batches in rank order. The sender is paced by
  // the (faster-than-fabric) DMA stream, which is what multi-buffering buys.
  const auto chunk_packets =
      static_cast<std::size_t>(pp.dma_entry_bytes / vic::kWordBytes);
  sim::Time ready = res.start + pp.dma_setup;
  for (std::size_t i = 0; i < batch.size(); i += chunk_packets) {
    const std::size_t n = std::min(chunk_packets, batch.size() - i);
    ready += sim::transfer_time(static_cast<std::int64_t>(n) * vic::kWordBytes,
                                pp.dma_to_vic_bw);
    co_await engine_.resume_at(ready);
    fabric_.transmit(rank_, batch.subspan(i, n), engine_.now());
  }
  packets_sent_ += batch.size();
  trace_state(sim::NodeState::kSend, t0);
}

sim::Coro<void> DvContext::put(int dst, std::uint32_t addr,
                               std::span<const std::uint64_t> words, int counter) {
  std::vector<vic::Packet> batch;
  batch.reserve(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    batch.push_back(vic::Packet{
        vic::Header{static_cast<std::uint16_t>(dst), vic::DestKind::kDvMemory,
                    static_cast<std::uint8_t>(counter),
                    addr + static_cast<std::uint32_t>(i)},
        words[i]});
  }
  co_await send_dma_batch(batch);
}

sim::Coro<std::uint64_t> DvContext::query(int dst, std::uint32_t addr) {
  // Arm the reply counter strictly before the query leaves: the reply cannot
  // overtake a packet we have not sent yet.
  co_await counter_set_local(kQueryCounter, 1);
  vic::Packet q;
  q.header = vic::Header{static_cast<std::uint16_t>(dst), vic::DestKind::kQuery,
                         vic::kNoCounter, addr};
  q.payload = vic::encode_header(vic::Header{static_cast<std::uint16_t>(rank_),
                                             vic::DestKind::kDvMemory,
                                             static_cast<std::uint8_t>(kQueryCounter),
                                             kQueryReplySlot});
  co_await send_direct(q);
  co_await counter_wait_zero(kQueryCounter);
  // Pull the reply word across PCIe (an explicit read).
  const sim::Time done = vic().pcie().direct_read(8, engine_.now());
  const std::uint64_t value = vic().memory().read(kQueryReplySlot);
  co_await engine_.resume_at(done);
  co_return value;
}

}  // namespace dvx::dvapi
