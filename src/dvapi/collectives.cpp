#include "dvapi/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace dvx::dvapi {

sim::Coro<std::vector<std::uint64_t>> alltoall_words(DvContext& ctx,
                                                     std::span<const std::uint64_t> send) {
  const int n = ctx.nodes();
  if (send.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("alltoall_words: need one word per peer");
  }
  auto& st = ctx.collective_state();
  if (!st.primed) {
    // Arm both sense counters once, then one barrier so no word can race an
    // unarmed counter. Every later collective re-arms its counter after use
    // (sense reversal), so the steady-state cost has no barrier at all.
    co_await ctx.counter_set_local(kCollectiveCounterA, static_cast<std::uint64_t>(n - 1));
    co_await ctx.counter_set_local(kCollectiveCounterB, static_cast<std::uint64_t>(n - 1));
    st.primed = true;
    co_await ctx.barrier();
  }
  const bool odd = (st.phase % 2) != 0;
  const int ctr = odd ? kCollectiveCounterB : kCollectiveCounterA;
  const std::uint32_t base = kCollectiveBase + (odd ? kCollectiveStride : 0);
  ++st.phase;

  std::vector<vic::Packet> batch;
  batch.reserve(static_cast<std::size_t>(n - 1));
  for (int peer = 0; peer < n; ++peer) {
    if (peer == ctx.rank()) continue;
    batch.push_back(vic::Packet{
        vic::Header{static_cast<std::uint16_t>(peer), vic::DestKind::kDvMemory,
                    static_cast<std::uint8_t>(ctr),
                    base + static_cast<std::uint32_t>(ctx.rank())},
        send[static_cast<std::size_t>(peer)]});
  }
  co_await ctx.send_direct_batch(batch);
  co_await ctx.counter_wait_zero(ctr);
  // Re-arm for the next same-sense call; safe because a peer reaches it only
  // after receiving our next (other-sense) contribution, sent after this.
  co_await ctx.counter_set_local(ctr, static_cast<std::uint64_t>(n - 1));

  std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
  co_await ctx.dma_read_dv(base, out);
  out[static_cast<std::size_t>(ctx.rank())] = send[static_cast<std::size_t>(ctx.rank())];
  co_return out;
}

sim::Coro<std::uint64_t> allreduce_sum(DvContext& ctx, std::uint64_t value) {
  std::vector<std::uint64_t> send(static_cast<std::size_t>(ctx.nodes()), value);
  const auto all = co_await alltoall_words(ctx, send);
  std::uint64_t acc = 0;
  for (auto v : all) acc += v;
  co_return acc;
}

sim::Coro<std::uint64_t> allreduce_max(DvContext& ctx, std::uint64_t value) {
  std::vector<std::uint64_t> send(static_cast<std::size_t>(ctx.nodes()), value);
  const auto all = co_await alltoall_words(ctx, send);
  std::uint64_t acc = 0;
  for (auto v : all) acc = std::max(acc, v);
  co_return acc;
}

sim::Coro<std::uint64_t> broadcast_word(DvContext& ctx, std::uint64_t value, int root) {
  std::vector<std::uint64_t> send(static_cast<std::size_t>(ctx.nodes()),
                                  ctx.rank() == root ? value : 0);
  const auto all = co_await alltoall_words(ctx, send);
  co_return all[static_cast<std::size_t>(root)];
}

}  // namespace dvx::dvapi
