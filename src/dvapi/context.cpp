#include "dvapi/context.hpp"

#include <stdexcept>

namespace dvx::dvapi {

DvContext::DvContext(sim::Engine& engine, vic::DvFabric& fabric, int rank,
                     sim::Tracer* tracer, DvApiParams params)
    : engine_(engine), fabric_(fabric), rank_(rank), tracer_(tracer), params_(params) {
  if (rank < 0 || rank >= fabric.nodes()) {
    throw std::out_of_range("DvContext: rank out of range");
  }
}

void DvContext::trace_state(sim::NodeState s, sim::Time begin) {
  if (tracer_ != nullptr) tracer_->record_state(rank_, s, begin, engine_.now());
}

sim::Coro<void> DvContext::counter_set_local(int counter, std::uint64_t value) {
  const sim::Time t0 = engine_.now();
  const sim::Time done = vic().pcie().direct_write(8, t0);
  vic().counters().at(counter).set(done, value);
  co_await engine_.delay(params_.host_op_overhead);  // posted: host moves on
  trace_state(sim::NodeState::kSend, t0);
}

sim::Coro<void> DvContext::counter_set_remote(int dst, int counter, std::uint64_t value) {
  vic::Packet p;
  p.header = vic::Header{static_cast<std::uint16_t>(dst), vic::DestKind::kGroupCounter,
                         vic::kNoCounter, static_cast<std::uint32_t>(counter)};
  p.payload = value;
  co_await send_direct(p);
}

sim::Coro<bool> DvContext::counter_wait_zero(int counter, sim::Duration timeout) {
  const sim::Time t0 = engine_.now();
  const bool ok = co_await vic().counters().at(counter).wait_zero(timeout);
  trace_state(sim::NodeState::kWait, t0);
  co_return ok;
}

sim::Coro<void> DvContext::send_fifo(int dst, std::uint64_t payload) {
  vic::Packet p;
  p.header =
      vic::Header{static_cast<std::uint16_t>(dst), vic::DestKind::kFifo, vic::kNoCounter, 0};
  p.payload = payload;
  co_await send_direct(p);
}

sim::Time DvContext::dma_read_dv_async(std::uint32_t addr,
                                       std::span<std::uint64_t> out) {
  vic().memory().read_block(addr, out);
  const auto bytes = static_cast<std::int64_t>(out.size()) * 8;
  return vic().dma_from_vic().transfer(bytes, engine_.now()).complete;
}

sim::Coro<std::vector<vic::Packet>> DvContext::fifo_poll() {
  co_await engine_.delay(params_.fifo_poll_overhead);
  co_return vic().fifo().poll();
}

sim::Coro<std::vector<vic::Packet>> DvContext::fifo_wait() {
  const sim::Time t0 = engine_.now();
  co_await engine_.delay(params_.fifo_poll_overhead);
  auto out = co_await vic().fifo().wait_packets();
  trace_state(sim::NodeState::kWait, t0);
  co_return out;
}

sim::Coro<void> DvContext::dma_write_dv(std::uint32_t addr,
                                        std::span<const std::uint64_t> words) {
  const sim::Time t0 = engine_.now();
  vic().memory().write_block(addr, words);
  const auto res =
      vic().dma_to_vic().transfer(static_cast<std::int64_t>(words.size()) * 8, t0);
  co_await engine_.resume_at(res.complete);
  trace_state(sim::NodeState::kSend, t0);
}

sim::Coro<void> DvContext::dma_read_dv(std::uint32_t addr, std::span<std::uint64_t> out) {
  const sim::Time t0 = engine_.now();
  vic().memory().read_block(addr, out);
  const auto bytes = static_cast<std::int64_t>(out.size()) * 8;
  // Tiny reads beat the DMA setup cost with plain PIO loads (the VIC's
  // host-pushed status lists exist for the same reason); big reads DMA.
  sim::Time done;
  if (bytes <= 32 * 8) {
    done = vic().pcie().direct_read(bytes, t0);
  } else {
    done = vic().dma_from_vic().transfer(bytes, t0).complete;
  }
  co_await engine_.resume_at(done);
  trace_state(sim::NodeState::kRecv, t0);
}

}  // namespace dvx::dvapi
