#pragma once
// Collective helpers built from Data Vortex primitives.
//
// MPI-style collectives do not exist in dvapi; these are the idiomatic
// patterns the paper's ports use instead: preset a group counter, barrier,
// put single words into peers' DV memory, wait for zero. Word slots
// [kCollectiveBase, kCollectiveBase + nodes) of every VIC and group counter
// kCollectiveCounter are reserved for them.

#include <cstdint>
#include <span>
#include <vector>

#include "dvapi/context.hpp"

namespace dvx::dvapi {

/// Group counters used by the word collectives below (sense-alternating so
/// repeated collectives need no barrier after the first).
inline constexpr int kCollectiveCounterA = 4;
inline constexpr int kCollectiveCounterB = 5;
/// First DV-memory word of the collective exchange regions (one per sense,
/// strided for up to 64 nodes). dvapi reserves DV words [0, 256) in total;
/// applications should place their regions at 256 or above.
inline constexpr std::uint32_t kCollectiveBase = 16;
inline constexpr std::uint32_t kCollectiveStride = 64;
inline constexpr std::uint32_t kFirstFreeDvWord = 256;
/// First counter id truly free for applications.
inline constexpr int kFirstFreeCounter = 6;

/// Every rank contributes one word per peer (`send.size() == nodes`);
/// returns the word each peer addressed to this rank (`out[i]` from rank i).
sim::Coro<std::vector<std::uint64_t>> alltoall_words(DvContext& ctx,
                                                     std::span<const std::uint64_t> send);

/// Sum of every rank's value (built on alltoall_words).
sim::Coro<std::uint64_t> allreduce_sum(DvContext& ctx, std::uint64_t value);

/// Maximum of every rank's value.
sim::Coro<std::uint64_t> allreduce_max(DvContext& ctx, std::uint64_t value);

/// Root's value delivered to every rank.
sim::Coro<std::uint64_t> broadcast_word(DvContext& ctx, std::uint64_t value, int root);

}  // namespace dvx::dvapi
