// MiniMPI point-to-point: eager + rendezvous protocol over the IB model.
//
// Eager (size <= threshold): the payload goes on the wire immediately and
// the send completes locally; the receiver matches it on arrival or queues
// it as unexpected. Rendezvous: a small RTS travels first; the receiver
// answers CTS when a matching recv is posted; the payload moves after the
// CTS reaches the sender. All deferred protocol steps run as DES events at
// their virtual arrival times, so matching decisions happen in causal order.

#include "mpi/comm.hpp"

#include "analyze/shard_access.hpp"

namespace dvx::mpi {

Request MpiWorld::start_send(int src, int dst, int tag, std::vector<std::uint64_t> data) {
  DVX_SHARD_GUARDED("mpi.MpiWorld", src);
  auto op = std::make_shared<Op>(engine_);
  const auto bytes =
      static_cast<std::int64_t>(data.size()) * 8 + params_.envelope_bytes;
  const sim::Time now = engine_.now();

  if (bytes <= params_.eager_threshold) {
    WireOp wire{src, dst, bytes, now, /*acct_bytes=*/bytes, /*eager=*/true,
                /*traced=*/tracer_ != nullptr, tag};
    Message msg{src, tag, std::move(data)};
    fabric_send(std::move(wire),
                [this, dst, m = std::move(msg)](const net::MsgTiming& t) mutable {
                  engine_.schedule(
                      t.last_arrival,
                      [this, dst, m2 = std::move(m)]() mutable {
                        deliver_eager(dst, std::move(m2));
                      },
                      shard_of(dst));
                });
    // Eager sends complete once the payload is handed to the NIC; model that
    // as the source-side injection cost (first chunk formation).
    complete(op, now + params_.sw_overhead);
    return op;
  }

  // Rendezvous: RTS control packet now; data moves when the CTS comes back.
  auto pending = std::make_shared<PendingSend>();
  pending->src = src;
  pending->dst = dst;
  pending->tag = tag;
  pending->data = std::move(data);
  pending->op = op;
  WireOp rts_wire{src, dst, params_.envelope_bytes, now, /*acct_bytes=*/bytes,
                  /*eager=*/false, /*traced=*/false, tag};
  fabric_send(std::move(rts_wire),
              [this, dst, src, tag, pending](const net::MsgTiming& rts_t) {
                engine_.schedule(
                    rts_t.last_arrival,
                    [this, dst, src, tag, pending, rts_t] {
                      handle_rts(dst, Rts{src, tag, rts_t.last_arrival, pending});
                    },
                    shard_of(dst));
              });
  return op;
}

Request MpiWorld::start_recv(int rank, int src, int tag) {
  DVX_SHARD_GUARDED("mpi.MpiWorld", rank);
  auto op = std::make_shared<Op>(engine_);
  auto& ep = endpoints_[static_cast<std::size_t>(rank)];

  // Unexpected eager message already here?
  for (auto it = ep.unexpected.begin(); it != ep.unexpected.end(); ++it) {
    if (matches(src, tag, it->src, it->tag)) {
      op->msg = std::move(*it);
      ep.unexpected.erase(it);
      complete(op, engine_.now());
      return op;
    }
  }
  // Unexpected rendezvous announcement?
  for (auto it = ep.unexpected_rts.begin(); it != ep.unexpected_rts.end(); ++it) {
    if (matches(src, tag, it->src, it->tag)) {
      Rts rts = *it;
      ep.unexpected_rts.erase(it);
      grant_rts(rank, rts, op);
      return op;
    }
  }
  ep.posted.push_back(PostedRecv{src, tag, op});
  return op;
}

void MpiWorld::deliver_eager(int dst, Message msg) {
  // Runs as a DES event at the arrival time, on dst's shard in partition
  // mode — this is where cross-shard aliasing on the endpoint tables would
  // actually bite, so it records too.
  DVX_SHARD_ACCESS("mpi.MpiWorld", dst, kWrite);
  auto& ep = endpoints_[static_cast<std::size_t>(dst)];
  for (auto it = ep.posted.begin(); it != ep.posted.end(); ++it) {
    if (matches(it->src, it->tag, msg.src, msg.tag)) {
      Request op = it->op;
      ep.posted.erase(it);
      op->msg = std::move(msg);
      complete(op, engine_.now());
      return;
    }
  }
  ep.unexpected.push_back(std::move(msg));
}

void MpiWorld::handle_rts(int dst, Rts rts) {
  DVX_SHARD_ACCESS("mpi.MpiWorld", dst, kWrite);
  auto& ep = endpoints_[static_cast<std::size_t>(dst)];
  for (auto it = ep.posted.begin(); it != ep.posted.end(); ++it) {
    if (matches(it->src, it->tag, rts.src, rts.tag)) {
      Request op = it->op;
      ep.posted.erase(it);
      grant_rts(dst, rts, op);
      return;
    }
  }
  ep.unexpected_rts.push_back(std::move(rts));
}

void MpiWorld::grant_rts(int dst, const Rts& rts, const Request& recv_op) {
  // CTS back to the sender, then the bulk payload to the receiver. Both legs
  // run through fabric_send; the CTS continuation hops to the sender's shard
  // before issuing the payload so the protocol stays rank-local throughout.
  auto pending = rts.sender;
  WireOp cts{dst, rts.src, params_.envelope_bytes, engine_.now()};
  fabric_send(std::move(cts), [this, pending, recv_op](const net::MsgTiming& cts_t) {
    engine_.schedule(
        cts_t.last_arrival,
        [this, pending, recv_op] {
          const auto bytes = static_cast<std::int64_t>(pending->data.size()) * 8 +
                             params_.envelope_bytes;
          WireOp payload{pending->src, pending->dst,    bytes, engine_.now(),
                         /*acct_bytes=*/-1, /*eager=*/false,
                         /*traced=*/tracer_ != nullptr, pending->tag};
          fabric_send(std::move(payload),
                      [this, pending, recv_op](const net::MsgTiming& t) {
                        // The sender unblocks once the payload drained its NIC.
                        complete(pending->op, t.last_arrival);
                        Message msg{pending->src, pending->tag,
                                    std::move(pending->data)};
                        engine_.schedule(
                            t.last_arrival,
                            [this, recv_op, m = std::move(msg)]() mutable {
                              recv_op->msg = std::move(m);
                              complete(recv_op, engine_.now());
                            },
                            shard_of(pending->dst));
                      });
        },
        shard_of(pending->src));
  });
}

// --- Comm wrappers -----------------------------------------------------------

Request Comm::isend(int dst, int tag, std::vector<std::uint64_t> data) {
  return world_->start_send(rank_, dst, tag, std::move(data));
}

Request Comm::irecv(int src, int tag) { return world_->start_recv(rank_, src, tag); }

sim::Coro<void> Comm::wait(const Request& req) {
  const sim::Time t0 = engine().now();
  while (!req->done) co_await req->cond.wait();
  if (auto* tr = world_->tracer(); tr != nullptr) {
    tr->record_state(rank_, sim::NodeState::kWait, t0, engine().now());
  }
}

sim::Coro<void> Comm::wait_all(std::vector<Request> reqs) {
  for (auto& r : reqs) co_await wait(r);
}

sim::Coro<void> Comm::send(int dst, int tag, std::vector<std::uint64_t> data) {
  co_await engine().delay(world_->params().sw_overhead);
  auto req = isend(dst, tag, std::move(data));
  const sim::Time t0 = engine().now();
  while (!req->done) co_await req->cond.wait();
  if (auto* tr = world_->tracer(); tr != nullptr) {
    tr->record_state(rank_, sim::NodeState::kSend, t0, engine().now());
  }
}

sim::Coro<Message> Comm::recv(int src, int tag) {
  co_await engine().delay(world_->params().sw_overhead);
  auto req = irecv(src, tag);
  const sim::Time t0 = engine().now();
  while (!req->done) co_await req->cond.wait();
  if (auto* tr = world_->tracer(); tr != nullptr) {
    tr->record_state(rank_, sim::NodeState::kRecv, t0, engine().now());
  }
  co_return std::move(req->msg);
}

sim::Coro<Message> Comm::sendrecv(int dst, int send_tag, std::vector<std::uint64_t> data,
                                  int src, int recv_tag) {
  co_await engine().delay(world_->params().sw_overhead);
  auto rreq = irecv(src, recv_tag);
  auto sreq = isend(dst, send_tag, std::move(data));
  co_await wait(sreq);
  co_await wait(rreq);
  co_return std::move(rreq->msg);
}

}  // namespace dvx::mpi
