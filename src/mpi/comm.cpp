#include "mpi/comm.hpp"

#include <stdexcept>

#include "obs/collector.hpp"

namespace dvx::mpi {

MpiWorld::MpiWorld(sim::Engine& engine, ib::Fabric& fabric, int ranks, MpiParams params,
                   sim::Tracer* tracer)
    : engine_(engine), fabric_(fabric), ranks_(ranks), params_(params), tracer_(tracer) {
  if (ranks <= 0 || ranks > fabric.nodes()) {
    throw std::invalid_argument("MpiWorld: rank count must fit the fabric");
  }
  endpoints_.resize(static_cast<std::size_t>(ranks));
  if (obs::Registry* m = obs::metrics()) {
    obs_msg_bytes_ = m->histogram("mpi.msg.bytes");
    obs_eager_msgs_ = m->counter("mpi.msgs", {{"protocol", "eager"}});
    obs_rendezvous_msgs_ = m->counter("mpi.msgs", {{"protocol", "rendezvous"}});
  }
}

int Comm::size() const noexcept { return world_->size(); }

sim::Engine& Comm::engine() const noexcept { return world_->engine(); }

void MpiWorld::complete(const Request& op, sim::Time at) {
  if (at < engine_.now()) at = engine_.now();
  op->done = true;
  op->done_at = at;
  op->cond.notify_all(at);
}

}  // namespace dvx::mpi
