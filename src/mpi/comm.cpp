#include "mpi/comm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"
#include "obs/collector.hpp"

namespace dvx::mpi {

MpiWorld::MpiWorld(sim::Engine& engine, std::unique_ptr<net::Interconnect> fabric,
                   int ranks, MpiParams params, sim::Tracer* tracer)
    : engine_(engine), fabric_(std::move(fabric)), ranks_(ranks), params_(params),
      tracer_(tracer) {
  if (!fabric_) {
    throw std::invalid_argument("MpiWorld: interconnect must not be null");
  }
  if (ranks <= 0 || ranks > fabric_->nodes()) {
    throw std::invalid_argument("MpiWorld: rank count must fit the fabric");
  }
  endpoints_.resize(static_cast<std::size_t>(ranks));
  if (obs::Registry* m = obs::metrics()) {
    obs_msg_bytes_ = m->histogram("mpi.msg.bytes");
    obs_eager_msgs_ = m->counter("mpi.msgs", {{"protocol", "eager"}});
    obs_rendezvous_msgs_ = m->counter("mpi.msgs", {{"protocol", "rendezvous"}});
  }
}

MpiWorld::~MpiWorld() {
  if (windowed_) engine_.remove_window_hook(this);
}

// dvx-analyze: allow(shard-partitioned) -- config-time, before any rank runs
void MpiWorld::configure_partition(std::vector<int> node_to_shard) {
  DVX_CHECK(static_cast<int>(node_to_shard.size()) == ranks_)
      << "node->shard map must cover every rank";
  DVX_CHECK(engine_.sharding().windowed)
      << "MpiWorld::configure_partition requires a windowed engine";
  int shards = 0;
  for (int s : node_to_shard) shards = std::max(shards, s + 1);
  DVX_CHECK(shards >= 1 && shards <= engine_.shards())
      << "node->shard map names a shard the engine does not have";
  windowed_ = true;
  node_to_shard_ = std::move(node_to_shard);
  staged_.assign(static_cast<std::size_t>(engine_.shards()), {});
  stage_seq_.assign(static_cast<std::size_t>(ranks_), 0);
  engine_.add_window_hook(this, [this] { resolve_window(); });
}

void MpiWorld::account(const WireOp& op, const net::MsgTiming& t) {
  if (op.acct_bytes >= 0 && obs_msg_bytes_ != nullptr) {
    obs_msg_bytes_->observe(static_cast<std::uint64_t>(op.acct_bytes));
    (op.eager ? obs_eager_msgs_ : obs_rendezvous_msgs_)->inc();
  }
  if (op.traced && tracer_ != nullptr) {
    // The message line carries the ORIGINAL send time: in windowed mode the
    // engine clock at resolution sits at the window floor, not at op.ready.
    tracer_->record_message(op.src, op.dst, op.ready, t.last_arrival, op.bytes,
                            op.tag);
  }
}

void MpiWorld::fabric_send(WireOp op, std::function<void(const net::MsgTiming&)> k) {
  if (!windowed_) {
    const net::MsgTiming t = fabric_->send_message(op.src, op.dst, op.bytes, op.ready);
    account(op, t);
    if (k) k(t);
    return;
  }
  const int cur = sim::Engine::current_shard();
  auto& box = staged_[static_cast<std::size_t>(cur < 0 ? 0 : cur)];
  const std::uint64_t seq = stage_seq_[static_cast<std::size_t>(op.src)]++;
  if (op.src == op.dst) {
    // Loopback rides only local state (an atomic byte tally + stateless
    // memcpy timing), so the timing is computed synchronously on the calling
    // shard — the continuation may schedule into the current window, which a
    // window-close resolution could not do. The obs/tracer accounting still
    // goes through the staged ledger so its order stays canonical.
    const net::MsgTiming t = fabric_->send_message(op.src, op.dst, op.bytes, op.ready);
    if (op.acct_bytes >= 0 || op.traced) {
      StagedOp staged;
      staged.op = op;
      staged.seq = seq;
      staged.loopback = true;
      staged.timing = t;
      box.push_back(std::move(staged));
    }
    if (k) k(t);
    return;
  }
  StagedOp staged;
  staged.op = std::move(op);
  staged.seq = seq;
  staged.k = std::move(k);
  box.push_back(std::move(staged));
}

void MpiWorld::resolve_window() {
  // Window-close resolution (coordinator thread): replay every staged wire
  // transfer against the shared interconnect in canonical (ready, src,
  // per-src seq) order — a pure function of the window's simulation content,
  // identical at every shard layout and worker count. Continuations only
  // schedule protocol events onto explicit destination shards (at physical
  // times >= the window end) and never re-enter fabric_send.
  std::vector<StagedOp> batch;
  for (auto& box : staged_) {
    std::move(box.begin(), box.end(), std::back_inserter(batch));
    box.clear();
  }
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(), [](const StagedOp& a, const StagedOp& b) {
    if (a.op.ready != b.op.ready) return a.op.ready < b.op.ready;
    if (a.op.src != b.op.src) return a.op.src < b.op.src;
    return a.seq < b.seq;
  });
  for (StagedOp& s : batch) {
    const net::MsgTiming t =
        s.loopback ? s.timing
                   : fabric_->send_message(s.op.src, s.op.dst, s.op.bytes, s.op.ready);
    account(s.op, t);
    if (s.k) s.k(t);
  }
}

int Comm::size() const noexcept { return world_->size(); }

sim::Engine& Comm::engine() const noexcept { return world_->engine(); }

void MpiWorld::complete(const Request& op, sim::Time at) {
  if (at < engine_.now()) at = engine_.now();
  op->done = true;
  op->done_at = at;
  op->cond.notify_all(at);
}

}  // namespace dvx::mpi
