#include "mpi/comm.hpp"

#include <stdexcept>
#include <utility>

#include "obs/collector.hpp"

namespace dvx::mpi {

MpiWorld::MpiWorld(sim::Engine& engine, std::unique_ptr<net::Interconnect> fabric,
                   int ranks, MpiParams params, sim::Tracer* tracer)
    : engine_(engine), fabric_(std::move(fabric)), ranks_(ranks), params_(params),
      tracer_(tracer) {
  if (!fabric_) {
    throw std::invalid_argument("MpiWorld: interconnect must not be null");
  }
  if (ranks <= 0 || ranks > fabric_->nodes()) {
    throw std::invalid_argument("MpiWorld: rank count must fit the fabric");
  }
  endpoints_.resize(static_cast<std::size_t>(ranks));
  if (obs::Registry* m = obs::metrics()) {
    obs_msg_bytes_ = m->histogram("mpi.msg.bytes");
    obs_eager_msgs_ = m->counter("mpi.msgs", {{"protocol", "eager"}});
    obs_rendezvous_msgs_ = m->counter("mpi.msgs", {{"protocol", "rendezvous"}});
  }
}

int Comm::size() const noexcept { return world_->size(); }

sim::Engine& Comm::engine() const noexcept { return world_->engine(); }

void MpiWorld::complete(const Request& op, sim::Time at) {
  if (at < engine_.now()) at = engine_.now();
  op->done = true;
  op->done_at = at;
  op->cond.notify_all(at);
}

}  // namespace dvx::mpi
