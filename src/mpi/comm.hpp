#pragma once
// MiniMPI — a small MPI implementation over an abstract interconnect.
//
// Provides the semantics the paper's baseline codes rely on: blocking and
// nonblocking point-to-point with (source, tag) matching including
// wildcards, eager and rendezvous protocols with an OpenMPI-like switchover,
// unexpected-message queues, and the collectives used by HPCC/Graph500-style
// benchmarks (barrier, bcast, reduce, allreduce, gather, allgather,
// alltoall(v)) built from point-to-point with standard algorithms.
//
// Payloads are vectors of 64-bit words: applications move real data (so
// results are testable), while all timing flows through the fabric model.
// The runtime is generic over the network: it owns a net::Interconnect and
// never names a concrete fabric, so the same protocol engine runs over the
// InfiniBand fat-tree, the 3D torus, or any future backend.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/interconnect.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace dvx::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct MpiParams {
  /// Eager/rendezvous switchover (OpenMPI's default is ~12 KB for openib).
  std::int64_t eager_threshold = 12 * 1024;
  /// Software cost of entering an MPI call.
  sim::Duration sw_overhead = sim::ns(500);
  /// Envelope bytes carried by every message / control packet.
  std::int64_t envelope_bytes = 64;
};

struct Message {
  int src = kAnySource;
  int tag = kAnyTag;
  std::vector<std::uint64_t> data;
};

class MpiWorld;

/// Completion state shared between the caller and the protocol engine.
struct Op {
  explicit Op(sim::Engine& engine) : cond(engine) {}
  sim::Condition cond;
  bool done = false;
  sim::Time done_at = 0;
  Message msg;  // filled for receives
};
using Request = std::shared_ptr<Op>;

/// One rank's handle on the world (cheap to copy around a node program).
class Comm {
 public:
  Comm(MpiWorld& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept;
  sim::Engine& engine() const noexcept;

  // --- point to point -------------------------------------------------------
  sim::Coro<void> send(int dst, int tag, std::vector<std::uint64_t> data);
  sim::Coro<Message> recv(int src = kAnySource, int tag = kAnyTag);
  Request isend(int dst, int tag, std::vector<std::uint64_t> data);
  Request irecv(int src = kAnySource, int tag = kAnyTag);
  sim::Coro<void> wait(const Request& req);
  sim::Coro<void> wait_all(std::vector<Request> reqs);
  /// Combined exchange (deadlock-free pairwise swap).
  sim::Coro<Message> sendrecv(int dst, int send_tag, std::vector<std::uint64_t> data,
                              int src, int recv_tag);

  // --- collectives ----------------------------------------------------------
  sim::Coro<void> barrier();
  sim::Coro<std::vector<std::uint64_t>> bcast(std::vector<std::uint64_t> data, int root);
  using ReduceFn = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;
  sim::Coro<std::vector<std::uint64_t>> allreduce(std::vector<std::uint64_t> data,
                                                  const ReduceFn& op);
  sim::Coro<std::uint64_t> allreduce_sum(std::uint64_t v);
  sim::Coro<std::uint64_t> allreduce_max(std::uint64_t v);
  sim::Coro<double> allreduce_sum_double(double v);
  sim::Coro<double> allreduce_max_double(double v);
  /// Gathers each rank's vector at root (others get an empty result).
  sim::Coro<std::vector<std::vector<std::uint64_t>>> gather(
      std::vector<std::uint64_t> data, int root);
  sim::Coro<std::vector<std::vector<std::uint64_t>>> allgather(
      std::vector<std::uint64_t> data);
  /// Personalized all-to-all: send[i] goes to rank i; returns out[i] from i.
  sim::Coro<std::vector<std::vector<std::uint64_t>>> alltoall(
      std::vector<std::vector<std::uint64_t>> send);

 private:
  MpiWorld* world_;
  int rank_;
};

/// Owns the per-rank endpoints, the interconnect the bytes travel over, and
/// runs the eager/rendezvous protocol.
///
/// Partitioned operation (DESIGN.md §15): configure_partition() rank-
/// partitions the world across engine shards. Endpoint tables are per rank
/// and only ever touched on the owning rank's shard (protocol events are
/// scheduled onto the destination's shard explicitly); the shared
/// interconnect is reached exclusively through fabric_send(), which stages
/// non-loopback wire transfers into per-shard ledgers resolved at the
/// engine's window barrier in canonical (ready, src, per-src seq) order.
// dvx-analyze: shard-partitioned
class MpiWorld {
 public:
  MpiWorld(sim::Engine& engine, std::unique_ptr<net::Interconnect> fabric,
           int ranks, MpiParams params = {}, sim::Tracer* tracer = nullptr);
  ~MpiWorld();

  int size() const noexcept { return ranks_; }
  sim::Engine& engine() noexcept { return engine_; }
  net::Interconnect& fabric() noexcept { return *fabric_; }
  const MpiParams& params() const noexcept { return params_; }
  sim::Tracer* tracer() noexcept { return tracer_; }
  Comm comm(int rank) { return Comm(*this, rank); }

  /// Switches the world into windowed-partition mode: rank r's protocol
  /// events run on shard node_to_shard[r], wire transfers are staged and
  /// resolved at window closes. Call after Engine::configure_sharding
  /// ({.windowed = true}) and before any traffic.
  void configure_partition(std::vector<int> node_to_shard);
  bool windowed() const noexcept { return windowed_; }

  // Protocol entry points (used by Comm).
  Request start_send(int src, int dst, int tag, std::vector<std::uint64_t> data);
  Request start_recv(int rank, int src, int tag);

 private:
  struct PendingSend {  // rendezvous in flight, waiting for CTS
    int src, dst, tag;
    std::vector<std::uint64_t> data;
    Request op;
  };
  struct Rts {  // unexpected rendezvous announcement
    int src, tag;
    sim::Time arrival;
    std::shared_ptr<PendingSend> sender;
  };
  struct PostedRecv {
    int src, tag;
    Request op;
  };
  struct Endpoint {
    std::deque<PostedRecv> posted;
    std::deque<Message> unexpected;       // eager payloads already here
    std::deque<Rts> unexpected_rts;
  };

  static bool matches(int want_src, int want_tag, int src, int tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  /// One wire transfer routed through fabric_send. `acct_bytes >= 0` carries
  /// the obs per-message accounting (full message size + protocol counter);
  /// `traced` records the tracer message line when the timing is known.
  struct WireOp {
    int src = 0;
    int dst = 0;
    std::int64_t bytes = 0;  ///< on-the-wire bytes of this transfer
    sim::Time ready = 0;
    std::int64_t acct_bytes = -1;
    bool eager = false;
    bool traced = false;
    int tag = 0;
  };
  /// A wire transfer parked in its shard's ledger until window close.
  struct StagedOp {
    WireOp op;
    std::uint64_t seq = 0;  ///< per-src monotone stage order
    bool loopback = false;  ///< timing precomputed; resolution only accounts
    net::MsgTiming timing{};  ///< valid when loopback
    std::function<void(const net::MsgTiming&)> k;  ///< nullable continuation
  };

  /// Single gateway to the interconnect. Non-windowed: synchronous
  /// send_message, inline accounting, k invoked immediately. Windowed:
  /// loopback (src == dst; purely local timing) still computes synchronously
  /// on the calling shard, while remote transfers stage {op, seq, k} and the
  /// window-close resolution replays them in (ready, src, seq) order.
  void fabric_send(WireOp op, std::function<void(const net::MsgTiming&)> k);
  void account(const WireOp& op, const net::MsgTiming& t);
  void resolve_window();
  /// Destination shard for rank r's protocol events (-1 = default shard
  /// resolution outside partition mode).
  int shard_of(int rank) const noexcept {
    return windowed_ ? node_to_shard_[static_cast<std::size_t>(rank)] : -1;
  }

  void deliver_eager(int dst, Message msg);
  void handle_rts(int dst, Rts rts);
  void grant_rts(int dst, const Rts& rts, const Request& recv_op);
  void complete(const Request& op, sim::Time at);

  sim::Engine& engine_;
  std::unique_ptr<net::Interconnect> fabric_;
  int ranks_;
  MpiParams params_;
  sim::Tracer* tracer_;
  // obs instrumentation (null when nothing collects): on-the-wire message
  // size distribution and per-protocol message counts.
  obs::Histogram* obs_msg_bytes_ = nullptr;
  obs::Counter* obs_eager_msgs_ = nullptr;
  obs::Counter* obs_rendezvous_msgs_ = nullptr;
  std::vector<Endpoint> endpoints_;

  // Windowed-partition state (empty/false outside partition mode).
  bool windowed_ = false;
  std::vector<int> node_to_shard_;
  std::vector<std::vector<StagedOp>> staged_;  ///< per shard
  std::vector<std::uint64_t> stage_seq_;       ///< per src rank
};

}  // namespace dvx::mpi
