// MiniMPI collectives, built from point-to-point with the standard
// algorithms real MPI implementations use at these scales: dissemination
// barrier, binomial broadcast/reduce, ring allgather, pairwise alltoall.

#include <bit>

#include "mpi/comm.hpp"

namespace dvx::mpi {

namespace {
// Tag space reserved for collective internals; applications should use
// small non-negative tags.
constexpr int kBarrierTag = 1 << 20;
constexpr int kBcastTag = 2 << 20;
constexpr int kReduceTag = 3 << 20;
constexpr int kGatherTag = 4 << 20;
constexpr int kAllgatherTag = 5 << 20;
constexpr int kAlltoallTag = 6 << 20;
}  // namespace

sim::Coro<void> Comm::barrier() {
  const sim::Time t0 = engine().now();
  const int n = size();
  // Dissemination barrier: ceil(log2 n) rounds, works for any n.
  for (int k = 1; k < n; k <<= 1) {
    const int to = (rank_ + k) % n;
    const int from = (rank_ - k % n + n) % n;
    co_await sendrecv(to, kBarrierTag + k, {}, from, kBarrierTag + k);
  }
  if (auto* tr = world_->tracer(); tr != nullptr) {
    tr->record_state(rank_, sim::NodeState::kBarrier, t0, engine().now());
  }
}

sim::Coro<std::vector<std::uint64_t>> Comm::bcast(std::vector<std::uint64_t> data,
                                                  int root) {
  const int n = size();
  const int vrank = (rank_ - root + n) % n;  // binomial tree rooted at `root`
  // Standard binomial broadcast: receive across the lowest set bit, then
  // fan out across every lower bit.
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int parent = ((vrank - mask) + root) % n;
      auto msg = co_await recv(parent, kBcastTag);
      data = std::move(msg.data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int child = ((vrank + mask) + root) % n;
      co_await send(child, kBcastTag, data);
    }
    mask >>= 1;
  }
  co_return data;
}

sim::Coro<std::vector<std::uint64_t>> Comm::allreduce(std::vector<std::uint64_t> data,
                                                      const ReduceFn& op) {
  const int n = size();
  // Binomial reduce to rank 0, then broadcast (robust for any n and size).
  for (int bit = 1; bit < n; bit <<= 1) {
    if ((rank_ & bit) != 0) {
      co_await send(rank_ - bit, kReduceTag + bit, std::move(data));
      data.clear();
      break;
    }
    if (rank_ + bit < n) {
      auto msg = co_await recv(rank_ + bit, kReduceTag + bit);
      for (std::size_t i = 0; i < data.size() && i < msg.data.size(); ++i) {
        data[i] = op(data[i], msg.data[i]);
      }
    }
  }
  co_return co_await bcast(std::move(data), 0);
}

// Note: single-element vectors and the ReduceFn are hoisted into named
// locals; GCC 12 miscompiles braced-init temporaries inside co_await
// expressions ("array used as initializer").

sim::Coro<std::uint64_t> Comm::allreduce_sum(std::uint64_t v) {
  std::vector<std::uint64_t> in(1, v);
  const ReduceFn op = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  auto out = co_await allreduce(std::move(in), op);
  co_return out.at(0);
}

sim::Coro<std::uint64_t> Comm::allreduce_max(std::uint64_t v) {
  std::vector<std::uint64_t> in(1, v);
  const ReduceFn op = [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; };
  auto out = co_await allreduce(std::move(in), op);
  co_return out.at(0);
}

sim::Coro<double> Comm::allreduce_sum_double(double v) {
  std::vector<std::uint64_t> in(1, std::bit_cast<std::uint64_t>(v));
  const ReduceFn op = [](std::uint64_t a, std::uint64_t b) {
    return std::bit_cast<std::uint64_t>(std::bit_cast<double>(a) +
                                        std::bit_cast<double>(b));
  };
  auto out = co_await allreduce(std::move(in), op);
  co_return std::bit_cast<double>(out.at(0));
}

sim::Coro<double> Comm::allreduce_max_double(double v) {
  std::vector<std::uint64_t> in(1, std::bit_cast<std::uint64_t>(v));
  const ReduceFn op = [](std::uint64_t a, std::uint64_t b) {
    const double da = std::bit_cast<double>(a);
    const double db = std::bit_cast<double>(b);
    return std::bit_cast<std::uint64_t>(da > db ? da : db);
  };
  auto out = co_await allreduce(std::move(in), op);
  co_return std::bit_cast<double>(out.at(0));
}

sim::Coro<std::vector<std::vector<std::uint64_t>>> Comm::gather(
    std::vector<std::uint64_t> data, int root) {
  const int n = size();
  std::vector<std::vector<std::uint64_t>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(n));
    out[static_cast<std::size_t>(rank_)] = std::move(data);
    for (int i = 0; i < n - 1; ++i) {
      auto msg = co_await recv(kAnySource, kGatherTag);
      out[static_cast<std::size_t>(msg.src)] = std::move(msg.data);
    }
  } else {
    co_await send(root, kGatherTag, std::move(data));
  }
  co_return out;
}

sim::Coro<std::vector<std::vector<std::uint64_t>>> Comm::allgather(
    std::vector<std::uint64_t> data) {
  const int n = size();
  std::vector<std::vector<std::uint64_t>> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(rank_)] = std::move(data);
  // Ring: in step s we forward the block that originated s hops upstream.
  const int right = (rank_ + 1) % n;
  const int left = (rank_ - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_origin = (rank_ - s + n) % n;
    const int recv_origin = (rank_ - s - 1 + n) % n;
    auto msg = co_await sendrecv(right, kAllgatherTag + s,
                                 out[static_cast<std::size_t>(send_origin)], left,
                                 kAllgatherTag + s);
    out[static_cast<std::size_t>(recv_origin)] = std::move(msg.data);
  }
  co_return out;
}

sim::Coro<std::vector<std::vector<std::uint64_t>>> Comm::alltoall(
    std::vector<std::vector<std::uint64_t>> send_blocks) {
  const int n = size();
  std::vector<std::vector<std::uint64_t>> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(rank_)] =
      std::move(send_blocks[static_cast<std::size_t>(rank_)]);
  // Pairwise exchange: step s swaps with rank+s / rank-s.
  for (int s = 1; s < n; ++s) {
    const int to = (rank_ + s) % n;
    const int from = (rank_ - s + n) % n;
    auto msg = co_await sendrecv(to, kAlltoallTag + s,
                                 std::move(send_blocks[static_cast<std::size_t>(to)]),
                                 from, kAlltoallTag + s);
    out[static_cast<std::size_t>(from)] = std::move(msg.data);
  }
  co_return out;
}

}  // namespace dvx::mpi
