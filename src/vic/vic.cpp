#include "vic/vic.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "analyze/shard_access.hpp"
#include "check/check.hpp"

namespace dvx::vic {

Vic::Vic(sim::Engine& engine, DvFabric& fabric, int id, const VicParams& params)
    : engine_(engine),
      fabric_(fabric),
      id_(id),
      memory_(params.dv_memory_words),
      counters_(engine, id),
      fifo_(engine, params.fifo_capacity, id),
      pcie_(params.pcie),
      dma_down_(pcie_, PcieDir::kHostToVic, id),
      dma_up_(pcie_, PcieDir::kVicToHost, id) {}

void Vic::deliver(const Packet& p, sim::Time arrival) {
  DVX_SHARD_GUARDED("vic.Vic", id_);
  const check::ScopedNode check_node(id_);
  DVX_CHECK(static_cast<int>(p.header.dst_vic) == id_)
      << "packet for VIC " << p.header.dst_vic << " delivered to VIC " << id_;
  switch (p.header.kind) {
    case DestKind::kDvMemory:
      memory_.write(p.header.addr, p.payload);
      break;
    case DestKind::kFifo:
      fifo_.deposit(arrival, p);
      break;
    case DestKind::kGroupCounter:
      counters_.at(static_cast<int>(p.header.addr)).set(arrival, p.payload);
      break;
    case DestKind::kQuery: {
      // Remote read without host intervention (paper §III): the payload is
      // the header of the reply, whose payload is the requested word. The
      // reply destination need not be the original sender.
      Packet reply;
      reply.header = decode_header(p.payload);
      reply.payload = memory_.read(p.header.addr);
      fabric_.transmit(id_, std::span<const Packet>(&reply, 1), arrival);
      break;
    }
  }
  if (p.header.counter != kNoCounter && p.header.kind != DestKind::kGroupCounter) {
    counters_.at(static_cast<int>(p.header.counter)).decrement(arrival);
  }
}

DvFabric::DvFabric(sim::Engine& engine, int nodes, DvFabricParams params)
    : engine_(engine),
      params_(params),
      model_([&] {
        auto fp = params.fabric;
        if (fp.geometry.ports() < nodes) {
          fp.geometry = dvnet::Geometry::for_ports(nodes, fp.geometry.angles);
        }
        return fp;
      }()),
      barrier_cond_(engine) {
  if (nodes <= 0) throw std::invalid_argument("DvFabric: need at least one node");
  vics_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    vics_.push_back(std::make_unique<Vic>(engine, *this, i, params.vic));
  }
  engine_.add_auditor(this);
}

DvFabric::~DvFabric() { engine_.remove_auditor(this); }

void DvFabric::audit(std::int64_t now_ps) {
  DVX_SHARD_ACCESS("vic.DvFabric", -1, kRead);
  (void)now_ps;
  DVX_CHECK(barrier_arrived_ >= 0 && barrier_arrived_ < nodes())
      << "intrinsic barrier arrival count out of range: " << barrier_arrived_;
  for (const auto& v : vics_) {
    const check::ScopedNode check_node(v->id());
    const SurpriseFifo& fifo = v->fifo();
    DVX_CHECK(fifo.buffered() <= fifo.capacity()) << "FIFO over capacity";
    DVX_CHECK_EQ(fifo.total_deposited(), fifo.total_drained() + fifo.buffered())
        << "surprise FIFO lost packets. ";
  }
}

dvnet::BurstTiming DvFabric::transmit(int src, std::span<const Packet> packets,
                                      sim::Time ready) {
  DVX_SHARD_GUARDED("vic.DvFabric", -1);
  if (packets.empty()) return dvnet::BurstTiming{ready, ready};
  dvnet::BurstTiming whole{0, 0};
  bool first_run = true;
  std::size_t i = 0;
  while (i < packets.size()) {
    // Coalesce a run of packets to the same destination into one burst.
    std::size_t j = i + 1;
    const int dst = packets[i].header.dst_vic;
    while (j < packets.size() && packets[j].header.dst_vic == dst) ++j;
    const auto n = static_cast<std::int64_t>(j - i);
    const auto timing = model_.send_burst(src, dst, n, ready);
    if (first_run) {
      whole.first_arrival = timing.first_arrival;
      first_run = false;
    }
    whole.last_arrival = std::max(whole.last_arrival, timing.last_arrival);

    // Apply per-packet effects; arrival times interpolated across the run.
    Vic& target = vic(dst);
    for (std::size_t k = i; k < j; ++k) {
      const auto idx = static_cast<std::int64_t>(k - i);
      const sim::Time at =
          n == 1 ? timing.first_arrival
                 : timing.first_arrival +
                       (timing.last_arrival - timing.first_arrival) * idx / (n - 1);
      target.deliver(packets[k], at);
    }
    i = j;
  }
  return whole;
}

sim::Coro<void> DvFabric::intrinsic_barrier(int rank) {
  DVX_SHARD_GUARDED("vic.DvFabric", -1);
  (void)rank;  // every VIC participates exactly once per phase
  const std::uint64_t my_phase = barrier_phase_;
  // Barrier-epoch sanity: arrivals never exceed the party count within one
  // phase, and the release time cannot precede the last arrival.
  DVX_CHECK(barrier_arrived_ < nodes())
      << "barrier over-arrival in phase " << barrier_phase_;
  barrier_latest_ = std::max(barrier_latest_, engine_.now());
  if (++barrier_arrived_ == nodes()) {
    // Hardware completes the AND-tree: base cost plus a little per level.
    const int levels = std::bit_width(static_cast<unsigned>(nodes() - 1));
    const sim::Time release = barrier_latest_ + params_.barrier_base +
                              static_cast<sim::Duration>(levels) * params_.barrier_per_level;
    DVX_CHECK(release >= engine_.now()) << "barrier released into the past";
    barrier_arrived_ = 0;
    barrier_latest_ = 0;
    ++barrier_phase_;
    barrier_cond_.notify_all(release);
    co_await engine_.resume_at(release);
    co_return;
  }
  while (barrier_phase_ == my_phase) co_await barrier_cond_.wait();
  DVX_CHECK(barrier_phase_ > my_phase) << "barrier phase went backwards";
}

}  // namespace dvx::vic
