#include "vic/vic.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "analyze/shard_access.hpp"
#include "check/check.hpp"

namespace dvx::vic {

Vic::Vic(sim::Engine& engine, DvFabric& fabric, int id, const VicParams& params)
    : engine_(engine),
      fabric_(fabric),
      id_(id),
      memory_(params.dv_memory_words),
      counters_(engine, id),
      fifo_(engine, params.fifo_capacity, id),
      pcie_(params.pcie),
      dma_down_(pcie_, PcieDir::kHostToVic, id),
      dma_up_(pcie_, PcieDir::kVicToHost, id) {}

void Vic::deliver(const Packet& p, sim::Time arrival) {
  DVX_SHARD_GUARDED("vic.Vic", id_);
  const check::ScopedNode check_node(id_);
  DVX_CHECK(static_cast<int>(p.header.dst_vic) == id_)
      << "packet for VIC " << p.header.dst_vic << " delivered to VIC " << id_;
  switch (p.header.kind) {
    case DestKind::kDvMemory:
      memory_.write(p.header.addr, p.payload);
      break;
    case DestKind::kFifo:
      fifo_.deposit(arrival, p);
      break;
    case DestKind::kGroupCounter:
      counters_.at(static_cast<int>(p.header.addr)).set(arrival, p.payload);
      break;
    case DestKind::kQuery: {
      // Remote read without host intervention (paper §III): the payload is
      // the header of the reply, whose payload is the requested word. The
      // reply destination need not be the original sender.
      Packet reply;
      reply.header = decode_header(p.payload);
      reply.payload = memory_.read(p.header.addr);
      fabric_.transmit(id_, std::span<const Packet>(&reply, 1), arrival);
      break;
    }
  }
  if (p.header.counter != kNoCounter && p.header.kind != DestKind::kGroupCounter) {
    counters_.at(static_cast<int>(p.header.counter)).decrement(arrival);
  }
}

DvFabric::DvFabric(sim::Engine& engine, int nodes, DvFabricParams params)
    : engine_(engine),
      params_(params),
      model_([&] {
        auto fp = params.fabric;
        if (fp.geometry.ports() < nodes) {
          fp.geometry = dvnet::Geometry::for_ports(nodes, fp.geometry.angles);
        }
        return fp;
      }()),
      barrier_cond_(engine) {
  if (nodes <= 0) throw std::invalid_argument("DvFabric: need at least one node");
  vics_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    vics_.push_back(std::make_unique<Vic>(engine, *this, i, params.vic));
  }
  engine_.add_auditor(this);
}

DvFabric::~DvFabric() {
  engine_.remove_auditor(this);
  if (windowed_) engine_.remove_window_hook(this);
}

// dvx-analyze: allow(shard-partitioned) -- config-time, before any rank runs
void DvFabric::configure_partition(int shards) {
  DVX_CHECK(shards >= 1) << "partition needs at least one shard";
  DVX_CHECK(engine_.sharding().windowed)
      << "DvFabric::configure_partition requires a windowed engine";
  windowed_ = true;
  staged_.assign(static_cast<std::size_t>(shards), {});
  barrier_staged_.assign(static_cast<std::size_t>(shards), {});
  stage_seq_.assign(static_cast<std::size_t>(nodes()), 0);
  barrier_conds_.clear();
  barrier_conds_.reserve(static_cast<std::size_t>(nodes()));
  for (int i = 0; i < nodes(); ++i) {
    barrier_conds_.push_back(std::make_unique<sim::Condition>(engine_));
  }
  engine_.add_window_hook(this, [this] { resolve_window(); });
}

void DvFabric::audit(std::int64_t now_ps) {
  DVX_SHARD_ACCESS("vic.DvFabric", -1, kRead);
  (void)now_ps;
  DVX_CHECK(barrier_arrived_ >= 0 && barrier_arrived_ < nodes())
      << "intrinsic barrier arrival count out of range: " << barrier_arrived_;
  for (const auto& v : vics_) {
    const check::ScopedNode check_node(v->id());
    const SurpriseFifo& fifo = v->fifo();
    DVX_CHECK(fifo.buffered() <= fifo.capacity()) << "FIFO over capacity";
    DVX_CHECK_EQ(fifo.total_deposited(), fifo.total_drained() + fifo.buffered())
        << "surprise FIFO lost packets. ";
  }
}

dvnet::BurstTiming DvFabric::transmit(int src, std::span<const Packet> packets,
                                      sim::Time ready) {
  if (packets.empty()) return dvnet::BurstTiming{ready, ready};
  if (windowed_) {
    if (resolving_) {
      // A query reply emitted while the resolution replays deliveries: defer
      // it to the in-resolution fixpoint queue (its ready time is already a
      // physical arrival >= the closing window's end).
      resolve_pending_.push_back(StagedBurst{
          ready, src, 0, std::vector<Packet>(packets.begin(), packets.end())});
      return dvnet::BurstTiming{ready, ready};
    }
    // Rank context: stage into the calling shard's ledger. Each src rank is
    // dispatched by exactly one shard, so the per-src seq counter and the
    // ledger slot are both single-writer.
    DVX_SHARD_ACCESS("vic.DvFabric", src, kWrite);
    const int cur = sim::Engine::current_shard();
    auto& box = staged_[static_cast<std::size_t>(cur < 0 ? 0 : cur)];
    box.push_back(
        StagedBurst{ready, src, stage_seq_[static_cast<std::size_t>(src)]++,
                    std::vector<Packet>(packets.begin(), packets.end())});
    return dvnet::BurstTiming{ready, ready};
  }
  return transmit_now(src, packets, ready);
}

dvnet::BurstTiming DvFabric::transmit_now(int src, std::span<const Packet> packets,
                                          sim::Time ready) {
  DVX_SHARD_GUARDED("vic.DvFabric", -1);
  if (packets.empty()) return dvnet::BurstTiming{ready, ready};
  dvnet::BurstTiming whole{0, 0};
  bool first_run = true;
  std::size_t i = 0;
  while (i < packets.size()) {
    // Coalesce a run of packets to the same destination into one burst.
    std::size_t j = i + 1;
    const int dst = packets[i].header.dst_vic;
    while (j < packets.size() && packets[j].header.dst_vic == dst) ++j;
    const auto n = static_cast<std::int64_t>(j - i);
    const auto timing = model_.send_burst(src, dst, n, ready);
    if (first_run) {
      whole.first_arrival = timing.first_arrival;
      first_run = false;
    }
    whole.last_arrival = std::max(whole.last_arrival, timing.last_arrival);

    // Apply per-packet effects; arrival times interpolated across the run.
    Vic& target = vic(dst);
    for (std::size_t k = i; k < j; ++k) {
      const auto idx = static_cast<std::int64_t>(k - i);
      const sim::Time at =
          n == 1 ? timing.first_arrival
                 : timing.first_arrival +
                       (timing.last_arrival - timing.first_arrival) * idx / (n - 1);
      target.deliver(packets[k], at);
    }
    i = j;
  }
  return whole;
}

void DvFabric::resolve_window() {
  // Window-close resolution (coordinator thread, outside any shard context):
  // replay every staged burst against the switch model in canonical
  // (ready, src, per-src seq) order — a pure function of the window's
  // simulation content, identical at every shard layout and worker count.
  std::vector<StagedBurst> batch;
  for (auto& box : staged_) {
    std::move(box.begin(), box.end(), std::back_inserter(batch));
    box.clear();
  }
  if (!batch.empty()) {
    std::sort(batch.begin(), batch.end(),
              [](const StagedBurst& a, const StagedBurst& b) {
                if (a.ready != b.ready) return a.ready < b.ready;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    resolving_ = true;
    for (const StagedBurst& b : batch) {
      transmit_now(b.src, b.packets, b.ready);
    }
    // Fixpoint over query replies: delivering a kQuery packet re-transmits
    // through the fabric; those bursts append to resolve_pending_ and are
    // replayed in emission order (itself canonical) until none remain.
    for (std::size_t i = 0; i < resolve_pending_.size(); ++i) {
      const StagedBurst b = std::move(resolve_pending_[i]);
      transmit_now(b.src, b.packets, b.ready);
    }
    resolve_pending_.clear();
    resolving_ = false;
  }
  resolve_barrier_arrivals();
}

void DvFabric::resolve_barrier_arrivals() {
  std::vector<BarrierArrival> arrivals;
  for (auto& box : barrier_staged_) {
    arrivals.insert(arrivals.end(), box.begin(), box.end());
    box.clear();
  }
  if (arrivals.empty()) return;
  std::sort(arrivals.begin(), arrivals.end(),
            [](const BarrierArrival& a, const BarrierArrival& b) {
              return a.at != b.at ? a.at < b.at : a.rank < b.rank;
            });
  for (const BarrierArrival& a : arrivals) {
    DVX_CHECK(barrier_arrived_ < nodes())
        << "barrier over-arrival in phase " << barrier_phase_;
    barrier_latest_ = std::max(barrier_latest_, a.at);
    if (++barrier_arrived_ == nodes()) {
      const int levels = std::bit_width(static_cast<unsigned>(nodes() - 1));
      sim::Time release = barrier_latest_ + params_.barrier_base +
                          static_cast<sim::Duration>(levels) * params_.barrier_per_level;
      // Defensive clamp: the release must not land behind any shard's clock.
      // window_end() is layout-invariant, so the clamp (almost never active —
      // the barrier base cost exceeds the fabric lookahead) cannot break the
      // shards-1-vs-N identity.
      release = std::max(release, engine_.window_end());
      barrier_arrived_ = 0;
      barrier_latest_ = 0;
      ++barrier_phase_;
      for (auto& cond : barrier_conds_) cond->notify_all(release);
    }
  }
}

sim::Coro<void> DvFabric::intrinsic_barrier(int rank) {
  if (windowed_) {
    // Stage the arrival in the calling shard's ledger; the VIC-side AND-tree
    // completes at the window-close resolution, which computes the release
    // time and wakes every rank through its own (rank-local) condition.
    DVX_SHARD_ACCESS("vic.DvFabric", rank, kWrite);
    const std::uint64_t my_phase = barrier_phase_;
    const int cur = sim::Engine::current_shard();
    barrier_staged_[static_cast<std::size_t>(cur < 0 ? 0 : cur)].push_back(
        BarrierArrival{engine_.now(), rank});
    sim::Condition& cond = *barrier_conds_[static_cast<std::size_t>(rank)];
    while (barrier_phase_ == my_phase) co_await cond.wait();
    DVX_CHECK(barrier_phase_ > my_phase) << "barrier phase went backwards";
    co_return;
  }
  DVX_SHARD_GUARDED("vic.DvFabric", -1);
  (void)rank;  // every VIC participates exactly once per phase
  const std::uint64_t my_phase = barrier_phase_;
  // Barrier-epoch sanity: arrivals never exceed the party count within one
  // phase, and the release time cannot precede the last arrival.
  DVX_CHECK(barrier_arrived_ < nodes())
      << "barrier over-arrival in phase " << barrier_phase_;
  barrier_latest_ = std::max(barrier_latest_, engine_.now());
  if (++barrier_arrived_ == nodes()) {
    // Hardware completes the AND-tree: base cost plus a little per level.
    const int levels = std::bit_width(static_cast<unsigned>(nodes() - 1));
    const sim::Time release = barrier_latest_ + params_.barrier_base +
                              static_cast<sim::Duration>(levels) * params_.barrier_per_level;
    DVX_CHECK(release >= engine_.now()) << "barrier released into the past";
    barrier_arrived_ = 0;
    barrier_latest_ = 0;
    ++barrier_phase_;
    barrier_cond_.notify_all(release);
    co_await engine_.resume_at(release);
    co_return;
  }
  while (barrier_phase_ == my_phase) co_await barrier_cond_.wait();
  DVX_CHECK(barrier_phase_ > my_phase) << "barrier phase went backwards";
}

}  // namespace dvx::vic
