#include "vic/dma.hpp"

#include <algorithm>
#include <string>

#include "obs/collector.hpp"

namespace dvx::vic {

DmaEngine::DmaEngine(PcieLink& link, PcieDir dir, int node) : link_(link), dir_(dir) {
  if (obs::Registry* m = obs::metrics()) {
    const obs::Labels labels{
        {"dir", dir == PcieDir::kHostToVic ? "to_vic" : "from_vic"},
        {"node", std::to_string(node)}};
    obs_bytes_ = m->counter("vic.dma.bytes", labels);
    obs_transactions_ = m->counter("vic.dma.transactions", labels);
  }
}

DmaResult DmaEngine::transfer(std::int64_t bytes, sim::Time ready) {
  const auto& p = link_.params();
  if (bytes <= 0) return DmaResult{ready, ready};
  ++transactions_;
  moved_ += bytes;
  if (obs_bytes_ != nullptr) {
    obs_bytes_->add(static_cast<std::uint64_t>(bytes));
    obs_transactions_->inc();
  }

  const double bw =
      dir_ == PcieDir::kHostToVic ? p.dma_to_vic_bw : p.dma_from_vic_bw;
  const std::int64_t table_span =
      static_cast<std::int64_t>(p.dma_table_entries) * p.dma_entry_bytes;

  sim::Time t = std::max(ready, busy_);
  const sim::Time start = t;
  std::int64_t remaining = bytes;
  while (remaining > 0) {
    const std::int64_t batch = std::min(remaining, table_span);
    t += p.dma_setup;  // program the table (once per refill)
    // Chunk at entry granularity so concurrent traffic on the shared PCIe
    // direction interleaves rather than being lumped behind one giant burst.
    std::int64_t left = batch;
    while (left > 0) {
      const std::int64_t chunk = std::min(left, p.dma_entry_bytes);
      t = link_.occupy(dir_, chunk, bw, t);
      left -= chunk;
    }
    remaining -= batch;
  }
  busy_ = t;
  return DmaResult{start, t};
}

}  // namespace dvx::vic
