#include "vic/dma.hpp"

#include <algorithm>

namespace dvx::vic {

DmaResult DmaEngine::transfer(std::int64_t bytes, sim::Time ready) {
  const auto& p = link_.params();
  if (bytes <= 0) return DmaResult{ready, ready};
  ++transactions_;
  moved_ += bytes;

  const double bw =
      dir_ == PcieDir::kHostToVic ? p.dma_to_vic_bw : p.dma_from_vic_bw;
  const std::int64_t table_span =
      static_cast<std::int64_t>(p.dma_table_entries) * p.dma_entry_bytes;

  sim::Time t = std::max(ready, busy_);
  const sim::Time start = t;
  std::int64_t remaining = bytes;
  while (remaining > 0) {
    const std::int64_t batch = std::min(remaining, table_span);
    t += p.dma_setup;  // program the table (once per refill)
    // Chunk at entry granularity so concurrent traffic on the shared PCIe
    // direction interleaves rather than being lumped behind one giant burst.
    std::int64_t left = batch;
    while (left > 0) {
      const std::int64_t chunk = std::min(left, p.dma_entry_bytes);
      t = link_.occupy(dir_, chunk, bw, t);
      left -= chunk;
    }
    remaining -= batch;
  }
  busy_ = t;
  return DmaResult{start, t};
}

}  // namespace dvx::vic
