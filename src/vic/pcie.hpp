#pragma once
// PCI Express 3.0 link between a host node and its VIC.
//
// The paper's measured behaviour this model encodes (§V, Fig. 3):
//  * direct (programmed-I/O) writes of packets to the network are limited by
//    the PCIe lane read bandwidth — about 500 MB/s, one lane;
//  * direct reads are slower still (reads are non-posted round trips);
//  * DMA transfers run several times faster ("up to 4x faster than direct
//    writes ... up to 8x faster than direct reads") and incoming/outgoing
//    DMA can overlap because the directions are independent;
//  * with DMA + pre-cached headers the VIC can feed the fabric at its
//    nominal 4.4 GB/s for large transfers (the paper measures 99.4% of peak
//    at 256 Ki words).
//
// The link is modelled as two independent directions (host->VIC "down",
// VIC->host "up"), each a serialized resource with a next-free time.

#include <cstdint>

#include "sim/time.hpp"

namespace dvx::vic {

struct PcieParams {
  /// Programmed-I/O write path (header+payload pushed by the CPU).
  double direct_write_bw = 0.5e9;  // bytes/s — paper: "500 MB/s, one lane"
  /// Programmed-I/O read path (non-posted PCIe round trips).
  double direct_read_bw = 0.25e9;
  /// DMA host memory -> DV memory. Must exceed the fabric's 4.4 GB/s port
  /// rate so DMA/Cached ping-pong can reach 99.4% of network peak (Fig. 3b).
  double dma_to_vic_bw = 5.5e9;
  /// DMA DV memory -> host memory.
  double dma_from_vic_bw = 6.0e9;
  /// Per-transaction latencies.
  sim::Duration posted_write_latency = sim::ns(150);
  sim::Duration read_latency = sim::ns(700);
  sim::Duration dma_setup = sim::us(1.2);
  /// DMA-table entry coverage; transfers are chunked at this granularity so
  /// that concurrent flows interleave realistically.
  std::int64_t dma_entry_bytes = 4096;
  /// The VIC DMA table holds 8192 entries; a transaction needing more incurs
  /// an extra setup per table refill.
  int dma_table_entries = 8192;
};

enum class PcieDir : int { kHostToVic = 0, kVicToHost = 1 };

class PcieLink {
 public:
  explicit PcieLink(PcieParams params) : params_(params) {}

  const PcieParams& params() const noexcept { return params_; }

  /// Serializes `bytes` on one direction at `bw` starting no earlier than
  /// `ready`; returns the completion time. Monotone in call order.
  sim::Time occupy(PcieDir dir, std::int64_t bytes, double bw, sim::Time ready);

  /// Programmed-I/O write of `bytes` (posted; pipelined at direct_write_bw).
  sim::Time direct_write(std::int64_t bytes, sim::Time ready);

  /// Programmed-I/O read of `bytes` (adds the round-trip read latency).
  sim::Time direct_read(std::int64_t bytes, sim::Time ready);

  sim::Time dir_free(PcieDir dir) const noexcept {
    return free_[static_cast<int>(dir)];
  }

  std::int64_t bytes_down() const noexcept { return bytes_[0]; }
  std::int64_t bytes_up() const noexcept { return bytes_[1]; }

 private:
  PcieParams params_;
  sim::Time free_[2] = {0, 0};
  std::int64_t bytes_[2] = {0, 0};
};

}  // namespace dvx::vic
