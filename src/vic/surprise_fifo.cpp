#include "vic/surprise_fifo.hpp"

#include <stdexcept>
#include <string>

#include "analyze/shard_access.hpp"
#include "check/check.hpp"
#include "obs/collector.hpp"

namespace dvx::vic {

SurpriseFifo::SurpriseFifo(sim::Engine& engine, std::size_t capacity, int node)
    : engine_(engine), cond_(engine), node_(node), capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SurpriseFifo: zero capacity");
  if (obs::Registry* m = obs::metrics()) {
    const obs::Labels labels{{"node", std::to_string(node)}};
    obs_depth_ = m->gauge("vic.fifo.depth", labels);
    obs_deposits_ = m->counter("vic.fifo.deposits", labels);
    obs_dropped_ = m->counter("vic.fifo.dropped", labels);
  }
}

void SurpriseFifo::deposit(sim::Time at, Packet p) {
  DVX_SHARD_GUARDED("vic.SurpriseFifo", node_);
  if (heap_.size() >= capacity_) {
    ++dropped_;
    if (obs_dropped_ != nullptr) obs_dropped_->inc();
    return;
  }
  if (at < engine_.now()) at = engine_.now();
  heap_.push(Entry{at, seq_++, p});
  ++deposited_;
  if (obs_deposits_ != nullptr) {
    obs_deposits_->inc();
    obs_depth_->sample(static_cast<double>(heap_.size()));
  }
  // Windowed engines deposit from the window-close resolution, where the
  // engine clock sits at the window floor — behind the waiters' shard
  // clocks. Notifying at the (physical, >= window end) arrival time keeps
  // the wake-up legal on every shard; serial mode keeps the immediate
  // notify so waiters re-evaluate the heap right away.
  cond_.notify_all(engine_.sharding().windowed ? at : engine_.now());
}

std::vector<Packet> SurpriseFifo::poll() {
  DVX_SHARD_GUARDED("vic.SurpriseFifo", node_);
  std::vector<Packet> out;
  while (!heap_.empty() && heap_.top().at <= engine_.now()) {
    out.push_back(heap_.top().packet);
    heap_.pop();
  }
  drained_ += out.size();
  // Message conservation: every deposited packet is drained, still
  // buffered, or was counted as dropped — nothing vanishes silently.
  DVX_CHECK_EQ(deposited_, drained_ + heap_.size())
      << "surprise FIFO lost packets. ";
  return out;
}

bool SurpriseFifo::ready() const {
  DVX_SHARD_ACCESS("vic.SurpriseFifo", node_, kRead);
  return !heap_.empty() && heap_.top().at <= engine_.now();
}

sim::Coro<std::vector<Packet>> SurpriseFifo::wait_packets() {
  for (;;) {
    if (ready()) co_return poll();
    if (!heap_.empty()) {
      co_await cond_.wait_until(heap_.top().at);
    } else {
      co_await cond_.wait();
    }
  }
}

}  // namespace dvx::vic
