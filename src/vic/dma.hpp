#pragma once
// VIC DMA engines (paper §III): two engines move data between host memory,
// DV memory, and the network. Transactions are described by DMA-table
// entries (8192 available); large transfers are chunked at entry granularity
// and a transfer needing more entries than the table holds pays an extra
// setup per refill. Requires HugeTLB-backed host buffers on the real system;
// here that constraint surfaces only as the registration API in dvapi.

#include <cstdint>

#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "vic/pcie.hpp"

namespace dvx::vic {

struct DmaResult {
  sim::Time start;     ///< when the engine began moving data
  sim::Time complete;  ///< when the last byte landed
};

class DmaEngine {
 public:
  /// `node` labels this engine's obs metrics (the owning VIC's id).
  DmaEngine(PcieLink& link, PcieDir dir, int node = -1);

  /// Schedules a DMA of `bytes`; returns start/completion times. Serializes
  /// on both this engine and the PCIe direction it uses. Monotone in call
  /// order.
  DmaResult transfer(std::int64_t bytes, sim::Time ready);

  PcieDir direction() const noexcept { return dir_; }
  sim::Time busy_until() const noexcept { return busy_; }
  std::int64_t bytes_moved() const noexcept { return moved_; }
  std::uint64_t transactions() const noexcept { return transactions_; }

 private:
  PcieLink& link_;
  PcieDir dir_;
  // obs instrumentation (null when nothing collects).
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_transactions_ = nullptr;
  sim::Time busy_ = 0;
  std::int64_t moved_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace dvx::vic
