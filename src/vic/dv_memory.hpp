#pragma once
// The VIC's on-board QDR SRAM ("DV memory", paper §II): 32 MB of word-
// addressable storage reachable from both the host (over PCIe) and the
// network. Slots store single 64-bit words; only the last-written value can
// be read (no queueing — that is what the surprise FIFO is for).
//
// Storage is segment-sparse: a simulated cluster instantiates one DvMemory
// per node, and most runs touch a fraction of the 4 Mi words, so segments
// materialize on first write (untouched words read as zero, matching
// power-on state).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dvx::vic {

class DvMemory {
 public:
  /// Default capacity: 32 MB = 4 Mi words, matching the current VIC.
  static constexpr std::size_t kDefaultWords = (32u << 20) / 8;
  /// Allocation granularity (64 Ki words = 512 KB).
  static constexpr std::size_t kSegmentWords = 64 * 1024;

  explicit DvMemory(std::size_t words = kDefaultWords);

  std::size_t words() const noexcept { return words_; }
  std::size_t bytes() const noexcept { return words_ * 8; }

  std::uint64_t read(std::uint32_t addr) const;
  void write(std::uint32_t addr, std::uint64_t value);

  /// Bulk accessors used by the DMA engines.
  void write_block(std::uint32_t addr, std::span<const std::uint64_t> values);
  void read_block(std::uint32_t addr, std::span<std::uint64_t> out) const;

  /// Number of materialized segments (diagnostics).
  std::size_t resident_segments() const noexcept;

 private:
  void check(std::uint32_t addr, std::size_t count) const;
  std::uint64_t* segment_for_write(std::size_t seg);

  std::size_t words_;
  mutable std::vector<std::unique_ptr<std::uint64_t[]>> segments_;
};

}  // namespace dvx::vic
