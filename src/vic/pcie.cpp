#include "vic/pcie.hpp"

#include <algorithm>

namespace dvx::vic {

sim::Time PcieLink::occupy(PcieDir dir, std::int64_t bytes, double bw, sim::Time ready) {
  if (bytes <= 0) return ready;
  auto& free = free_[static_cast<int>(dir)];
  const sim::Time start = std::max(ready, free);
  free = start + sim::transfer_time(bytes, bw);
  bytes_[static_cast<int>(dir)] += bytes;
  return free;
}

sim::Time PcieLink::direct_write(std::int64_t bytes, sim::Time ready) {
  return occupy(PcieDir::kHostToVic, bytes, params_.direct_write_bw,
                ready + params_.posted_write_latency);
}

sim::Time PcieLink::direct_read(std::int64_t bytes, sim::Time ready) {
  return occupy(PcieDir::kVicToHost, bytes, params_.direct_read_bw,
                ready + params_.read_latency);
}

}  // namespace dvx::vic
