#pragma once
// The VIC's "surprise packet" FIFO (paper §II/§III): a network-addressable
// input queue that non-destructively buffers thousands of 8-byte messages
// with no pre-arranged DV-memory slot. Arrival order across the network is
// not guaranteed; the developer polls and handles reordering.
//
// A background DMA process drains the hardware FIFO into a host-side ring
// buffer, so host polls are cheap (no PCIe round trip); that is why poll()
// here exposes packets by arrival time without an extra read latency.

#include <cstdint>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "vic/packet.hpp"

namespace dvx::vic {

// dvx-analyze: shard-partitioned
class SurpriseFifo {
 public:
  /// "thousands of 8-byte messages": default ring of 64 Ki entries.
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  /// `node` labels this FIFO's obs metrics (the owning VIC's id); pass the
  /// default for standalone FIFOs outside a cluster.
  explicit SurpriseFifo(sim::Engine& engine, std::size_t capacity = kDefaultCapacity,
                        int node = -1);

  /// Network-side deposit: the packet becomes visible to the host at `at`.
  /// On overflow the packet is dropped (counted in dropped()).
  void deposit(sim::Time at, Packet p);

  /// Host-side poll: removes and returns every packet visible now.
  std::vector<Packet> poll();

  /// Waits until at least one packet is visible, then returns all of them.
  sim::Coro<std::vector<Packet>> wait_packets();

  /// True if a packet is visible at the current virtual time.
  bool ready() const;

  std::size_t buffered() const noexcept { return heap_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t total_deposited() const noexcept { return deposited_; }
  std::uint64_t total_drained() const noexcept { return drained_; }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t seq;  // preserves deposit order among equal arrival times
    Packet packet;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  sim::Engine& engine_;
  sim::Condition cond_;
  int node_;  ///< owning VIC id (-1 standalone); labels shard-access records
  // obs instrumentation (null when nothing collects); the depth gauge's max
  // is the FIFO's high-water mark.
  obs::Gauge* obs_depth_ = nullptr;
  obs::Counter* obs_deposits_ = nullptr;
  obs::Counter* obs_dropped_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::size_t capacity_;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t deposited_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace dvx::vic
