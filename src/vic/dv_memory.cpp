#include "vic/dv_memory.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace dvx::vic {

DvMemory::DvMemory(std::size_t words) : words_(words) {
  if (words == 0) throw std::invalid_argument("DvMemory: zero capacity");
  segments_.resize((words + kSegmentWords - 1) / kSegmentWords);
}

void DvMemory::check(std::uint32_t addr, std::size_t count) const {
  if (static_cast<std::size_t>(addr) + count > words_) {
    throw std::out_of_range("DvMemory: access [" + std::to_string(addr) + ", +" +
                            std::to_string(count) + ") beyond " +
                            std::to_string(words_) + " words");
  }
}

std::uint64_t* DvMemory::segment_for_write(std::size_t seg) {
  auto& p = segments_[seg];
  if (!p) {
    p = std::make_unique<std::uint64_t[]>(kSegmentWords);
    std::memset(p.get(), 0, kSegmentWords * sizeof(std::uint64_t));
  }
  return p.get();
}

std::uint64_t DvMemory::read(std::uint32_t addr) const {
  check(addr, 1);
  const auto& p = segments_[addr / kSegmentWords];
  return p ? p[addr % kSegmentWords] : 0;
}

void DvMemory::write(std::uint32_t addr, std::uint64_t value) {
  check(addr, 1);
  segment_for_write(addr / kSegmentWords)[addr % kSegmentWords] = value;
}

void DvMemory::write_block(std::uint32_t addr, std::span<const std::uint64_t> values) {
  check(addr, values.size());
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t a = addr + i;
    const std::size_t seg = a / kSegmentWords;
    const std::size_t off = a % kSegmentWords;
    const std::size_t n = std::min(values.size() - i, kSegmentWords - off);
    std::copy_n(values.begin() + static_cast<std::ptrdiff_t>(i), n,
                segment_for_write(seg) + off);
    i += n;
  }
}

void DvMemory::read_block(std::uint32_t addr, std::span<std::uint64_t> out) const {
  check(addr, out.size());
  std::size_t i = 0;
  while (i < out.size()) {
    const std::size_t a = addr + i;
    const std::size_t seg = a / kSegmentWords;
    const std::size_t off = a % kSegmentWords;
    const std::size_t n = std::min(out.size() - i, kSegmentWords - off);
    const auto& p = segments_[seg];
    if (p) {
      std::copy_n(p.get() + off, n, out.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(i), n, 0);
    }
    i += n;
  }
}

std::size_t DvMemory::resident_segments() const noexcept {
  std::size_t n = 0;
  for (const auto& p : segments_) n += p ? 1 : 0;
  return n;
}

}  // namespace dvx::vic
