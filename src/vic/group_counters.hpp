#pragma once
// VIC group counters (paper §II/§III).
//
// A group counter counts down the words of an in-flight transfer: the
// receiver (or any VIC — counters are globally settable) presets it to the
// expected word count, arriving packets that name the counter decrement it,
// and the application waits for zero (with an optional timeout). The current
// VIC exposes 64 counters; #0 is reserved as a scratch counter and the last
// two are reserved for the intrinsic barrier.
//
// Timing model: operations are registered in nondecreasing *call* time (the
// DES guarantees this) but carry their own *effective* times — the virtual
// instant the packet reaches the counter. A waiter resumes at the settle
// time: the latest effective time among the operations that drove the value
// to zero. Decrementing a counter already at zero reproduces the documented
// hardware hazard ("the initial packet arrival is lost"): the decrement is
// dropped and counted in lost_decrements().

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dvx::vic {

inline constexpr int kNumGroupCounters = 64;
/// Counter #0 is the scratch counter ("does not need to be checked").
inline constexpr int kScratchCounter = 0;
/// The last two counters are reserved by the intrinsic barrier.
inline constexpr int kBarrierCounterA = kNumGroupCounters - 2;
inline constexpr int kBarrierCounterB = kNumGroupCounters - 1;
/// First counter id free for applications.
inline constexpr int kFirstUserCounter = 1;

class GroupCounter {
 public:
  /// `node` labels wait metrics (the owning VIC's id); all 64 counters of a
  /// file share one (node-labeled) wait tally.
  explicit GroupCounter(sim::Engine& engine, int node = -1);

  /// Sets the counter to `v`, effective at time `at`.
  void set(sim::Time at, std::uint64_t v);

  /// Registers `n` packet arrivals whose last word lands at time `at_last`.
  void decrement(sim::Time at_last, std::uint64_t n = 1);

  /// Waits until the counter settles at zero. `timeout` < 0 waits forever.
  /// Returns true on zero, false on timeout (mirrors the dvapi call).
  sim::Coro<bool> wait_zero(sim::Duration timeout = -1);

  std::uint64_t value() const noexcept { return value_; }
  sim::Time settle_time() const noexcept { return settle_; }
  std::uint64_t lost_decrements() const noexcept { return lost_; }

 private:
  sim::Engine& engine_;
  sim::Condition cond_;
  // obs instrumentation (null when nothing collects): completed waits, time
  // spent blocked in wait_zero, and waits that timed out.
  obs::Counter* obs_waits_ = nullptr;
  obs::Counter* obs_wait_ps_ = nullptr;
  obs::Counter* obs_timeouts_ = nullptr;
  std::uint64_t value_ = 0;
  sim::Time settle_ = 0;
  std::uint64_t lost_ = 0;
};

/// The 64-counter file of one VIC.
class GroupCounterFile {
 public:
  explicit GroupCounterFile(sim::Engine& engine, int node = -1);
  GroupCounterFile(const GroupCounterFile&) = delete;
  GroupCounterFile& operator=(const GroupCounterFile&) = delete;

  GroupCounter& at(int id);
  const GroupCounter& at(int id) const;

 private:
  std::vector<std::unique_ptr<GroupCounter>> counters_;
};

}  // namespace dvx::vic
