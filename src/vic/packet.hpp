#pragma once
// Data Vortex packet format (paper §II/§III).
//
// Every packet is a 64-bit header plus a 64-bit payload. The header names the
// destination VIC, an optional group counter to decrement on arrival, and a
// destination address that can be a DV-memory word slot, the surprise-packet
// FIFO, a group counter (to set it remotely), or a query (remote read that
// triggers a reply without host intervention).

#include <cstdint>
#include <stdexcept>

namespace dvx::vic {

enum class DestKind : std::uint8_t {
  kDvMemory = 0,      ///< payload written to DV-memory word `addr`
  kFifo = 1,          ///< payload appended to the surprise FIFO
  kGroupCounter = 2,  ///< group counter `addr` is *set* to payload
  kQuery = 3,         ///< DV-memory word `addr` is read; payload is the reply header
};

/// No-group-counter sentinel for Header::counter.
inline constexpr std::uint8_t kNoCounter = 0xff;

struct Header {
  std::uint16_t dst_vic = 0;
  DestKind kind = DestKind::kDvMemory;
  std::uint8_t counter = kNoCounter;  ///< group counter decremented on arrival
  std::uint32_t addr = 0;             ///< DV-memory word index / counter id

  friend bool operator==(const Header&, const Header&) = default;
};

struct Packet {
  Header header;
  std::uint64_t payload = 0;
};

/// Encodes a header into its 64-bit wire form:
/// [63:48] dst_vic | [47:46] kind | [45:38] counter | [31:0] addr.
constexpr std::uint64_t encode_header(const Header& h) {
  return (static_cast<std::uint64_t>(h.dst_vic) << 48) |
         (static_cast<std::uint64_t>(h.kind) << 46) |
         (static_cast<std::uint64_t>(h.counter) << 38) |
         static_cast<std::uint64_t>(h.addr);
}

/// Inverse of encode_header.
constexpr Header decode_header(std::uint64_t w) {
  Header h;
  h.dst_vic = static_cast<std::uint16_t>(w >> 48);
  h.kind = static_cast<DestKind>((w >> 46) & 0x3);
  h.counter = static_cast<std::uint8_t>((w >> 38) & 0xff);
  h.addr = static_cast<std::uint32_t>(w & 0xffffffffULL);
  return h;
}

/// Bytes a packet occupies on the wire and on the PCIe bus when the header
/// travels with the payload (direct, non-cached sends).
inline constexpr std::int64_t kPacketBytes = 16;
/// Bytes per payload word (header pre-cached in DV memory).
inline constexpr std::int64_t kWordBytes = 8;

}  // namespace dvx::vic
