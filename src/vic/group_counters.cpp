#include "vic/group_counters.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/collector.hpp"

namespace dvx::vic {

GroupCounter::GroupCounter(sim::Engine& engine, int node)
    : engine_(engine), cond_(engine) {
  if (obs::Registry* m = obs::metrics()) {
    const obs::Labels labels{{"node", std::to_string(node)}};
    obs_waits_ = m->counter("vic.counter.waits", labels);
    obs_wait_ps_ = m->counter("vic.counter.wait_ps", labels);
    obs_timeouts_ = m->counter("vic.counter.timeouts", labels);
  }
}

void GroupCounter::set(sim::Time at, std::uint64_t v) {
  value_ = v;
  settle_ = std::max(settle_, std::max(at, engine_.now()));
  // Waiters re-evaluate immediately; they sleep towards the settle time.
  // Windowed engines mutate counters from the window-close resolution (clock
  // at the window floor, behind the waiters' shards), so the notify carries
  // the physical settle time instead.
  cond_.notify_all(engine_.sharding().windowed ? settle_ : engine_.now());
}

void GroupCounter::decrement(sim::Time at_last, std::uint64_t n) {
  if (n == 0) return;
  if (value_ == 0) {
    // Hardware hazard reproduced: arrivals against a zero counter are lost
    // (paper §III: "the initial packet arrival is lost").
    lost_ += n;
    return;
  }
  const std::uint64_t applied = std::min(value_, n);
  lost_ += n - applied;
  value_ -= applied;
  settle_ = std::max(settle_, std::max(at_last, engine_.now()));
  cond_.notify_all(engine_.sharding().windowed ? settle_ : engine_.now());
}

sim::Coro<bool> GroupCounter::wait_zero(sim::Duration timeout) {
  const sim::Time begin = engine_.now();
  const sim::Time deadline =
      timeout < 0 ? std::numeric_limits<sim::Time>::max() : engine_.now() + timeout;
  for (;;) {
    if (value_ == 0 && settle_ <= engine_.now()) {
      if (obs_waits_ != nullptr) {
        obs_waits_->inc();
        obs_wait_ps_->add(static_cast<std::uint64_t>(engine_.now() - begin));
      }
      co_return true;
    }
    if (engine_.now() >= deadline) {
      if (obs_waits_ != nullptr) {
        obs_waits_->inc();
        obs_wait_ps_->add(static_cast<std::uint64_t>(engine_.now() - begin));
        obs_timeouts_->inc();
      }
      co_return false;
    }
    const sim::Time target = value_ == 0 ? std::min(settle_, deadline) : deadline;
    if (target == std::numeric_limits<sim::Time>::max()) {
      // No finite wake-up target: a timed wait would park a far-future event
      // in the queue and drag the final engine clock out to it.
      co_await cond_.wait();
    } else {
      co_await cond_.wait_until(target);
    }
  }
}

GroupCounterFile::GroupCounterFile(sim::Engine& engine, int node) {
  counters_.reserve(kNumGroupCounters);
  for (int i = 0; i < kNumGroupCounters; ++i) {
    counters_.push_back(std::make_unique<GroupCounter>(engine, node));
  }
}

GroupCounter& GroupCounterFile::at(int id) {
  if (id < 0 || id >= kNumGroupCounters) {
    throw std::out_of_range("GroupCounterFile: bad counter id " + std::to_string(id));
  }
  return *counters_[static_cast<std::size_t>(id)];
}

const GroupCounter& GroupCounterFile::at(int id) const {
  if (id < 0 || id >= kNumGroupCounters) {
    throw std::out_of_range("GroupCounterFile: bad counter id " + std::to_string(id));
  }
  return *counters_[static_cast<std::size_t>(id)];
}

}  // namespace dvx::vic
