#pragma once
// The Vortex Interface Controller (VIC) and the cluster-wide Data Vortex
// fabric assembly.
//
// A Vic bundles the components of one PCIe card (paper Fig. 2): the DV
// memory, the group-counter file, the surprise FIFO, the PCIe link, and two
// DMA engines. DvFabric owns one Vic per node plus the switch timing model
// and moves packets between them.
//
// Data-vs-time convention: packet *data effects* (DV-memory writes, counter
// sets) are applied eagerly when the sender transmits, while their *timing*
// is carried by arrival times on group counters and the FIFO. A conforming
// Data Vortex program only reads data after synchronizing on a counter,
// barrier, or FIFO arrival, so the early visibility is unobservable; it is
// what lets the simulator move bursts in O(1) instead of per-packet events.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "check/audit.hpp"
#include "dvnet/fabric_model.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "vic/dma.hpp"
#include "vic/dv_memory.hpp"
#include "vic/group_counters.hpp"
#include "vic/packet.hpp"
#include "vic/pcie.hpp"
#include "vic/surprise_fifo.hpp"

namespace dvx::vic {

struct VicParams {
  std::size_t dv_memory_words = DvMemory::kDefaultWords;
  std::size_t fifo_capacity = SurpriseFifo::kDefaultCapacity;
  PcieParams pcie{};
};

class DvFabric;

// dvx-analyze: shard-partitioned
class Vic {
 public:
  Vic(sim::Engine& engine, DvFabric& fabric, int id, const VicParams& params);

  int id() const noexcept { return id_; }
  DvMemory& memory() noexcept { return memory_; }
  GroupCounterFile& counters() noexcept { return counters_; }
  SurpriseFifo& fifo() noexcept { return fifo_; }
  PcieLink& pcie() noexcept { return pcie_; }
  DmaEngine& dma_to_vic() noexcept { return dma_down_; }
  DmaEngine& dma_from_vic() noexcept { return dma_up_; }

  /// Network ingress: applies one packet whose last bit lands at `arrival`.
  /// Query packets trigger a host-free reply through the fabric.
  void deliver(const Packet& p, sim::Time arrival);

 private:
  sim::Engine& engine_;
  DvFabric& fabric_;
  int id_;
  DvMemory memory_;
  GroupCounterFile counters_;
  SurpriseFifo fifo_;
  PcieLink pcie_;
  DmaEngine dma_down_;
  DmaEngine dma_up_;
};

struct DvFabricParams {
  dvnet::FabricParams fabric{};
  VicParams vic{};
  /// Intrinsic hardware barrier (two reserved group counters, handled by the
  /// VICs without host round trips): nearly flat in node count (Fig. 4).
  sim::Duration barrier_base = sim::ns(900);
  sim::Duration barrier_per_level = sim::ns(40);
};

/// The whole Data Vortex side of the cluster: one switch + N VICs.
///
/// Partitioned operation (DESIGN.md §15): configure_partition() switches the
/// fabric into windowed mode, where rank-context transmits and barrier
/// arrivals are staged into per-shard ledgers and resolved at the engine's
/// window barrier in canonical (ready, src, per-src seq) order — the shared
/// switch model and the destination VICs are then only ever mutated on the
/// single resolution thread, making `shards > 1` legal with byte-identical
/// output at any shard count.
// dvx-analyze: shard-partitioned
class DvFabric : public check::InvariantAuditor {
 public:
  DvFabric(sim::Engine& engine, int nodes, DvFabricParams params = {});
  ~DvFabric() override;

  int nodes() const noexcept { return static_cast<int>(vics_.size()); }
  Vic& vic(int id) { return *vics_.at(static_cast<std::size_t>(id)); }
  dvnet::FabricModel& model() noexcept { return model_; }
  sim::Engine& engine() noexcept { return engine_; }
  const DvFabricParams& params() const noexcept { return params_; }

  /// Injects a batch of packets from `src`'s VIC, already resident on the
  /// card, first word able to enter the switch at `ready`. Consecutive
  /// packets to the same destination share one fabric burst. Returns the
  /// (first, last) ejection times of the whole batch. In windowed-partition
  /// mode the burst is staged for the window-close resolution instead and
  /// the returned timing is the placeholder (ready, ready) — no caller
  /// consumes it (senders are paced by their PCIe/DMA hand-off times).
  dvnet::BurstTiming transmit(int src, std::span<const Packet> packets,
                              sim::Time ready);

  /// Switches the fabric into windowed-partition mode for `shards` engine
  /// shards. Call after Engine::configure_sharding({.windowed = true}) and
  /// before any traffic; registers the window-close resolution hook with the
  /// engine. Staged operations resolve in (ready, src, per-src seq) order,
  /// which is a pure function of the simulation content — never of the
  /// shard layout or worker count.
  void configure_partition(int shards);
  bool windowed() const noexcept { return windowed_; }

  /// Hardware barrier built on the two reserved counters: rank's VIC arrives
  /// at the current virtual time; resumes when every VIC has arrived plus
  /// the (small, log-depth) hardware latency.
  sim::Coro<void> intrinsic_barrier(int rank);

  /// Conservative lower bound on remote delivery latency, the DV analogue
  /// of net::Interconnect::lookahead(): a packet already resident on the
  /// source card still pays at least the uncontended fabric traversal
  /// before it can eject anywhere (PCIe/DMA time only adds to that). A
  /// sharded sim::Engine uses this as its window width (DESIGN.md §12).
  sim::Duration min_remote_latency() const noexcept {
    return model_.base_latency();
  }

  /// Epoch invariants across the fabric assembly (DESIGN.md §7): barrier
  /// arrival count within bounds, and per-VIC surprise-FIFO conservation
  /// (deposited == drained + buffered, buffered <= capacity). Registered
  /// with the engine at construction; runs on its audit cadence.
  void audit(std::int64_t now_ps) override;

 private:
  /// One rank-context injection parked in its shard's ledger until the
  /// window-close resolution replays it against the switch model.
  struct StagedBurst {
    sim::Time ready;
    int src;
    std::uint64_t seq;  ///< per-src monotone stage order
    std::vector<Packet> packets;  ///< owned copy: caller spans die early
  };
  struct BarrierArrival {
    sim::Time at;
    int rank;
  };

  dvnet::BurstTiming transmit_now(int src, std::span<const Packet> packets,
                                  sim::Time ready);
  void resolve_window();
  void resolve_barrier_arrivals();

  sim::Engine& engine_;
  DvFabricParams params_;
  dvnet::FabricModel model_;
  std::vector<std::unique_ptr<Vic>> vics_;

  // Intrinsic barrier bookkeeping.
  sim::Condition barrier_cond_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_phase_ = 0;
  sim::Time barrier_latest_ = 0;

  // Windowed-partition state (empty/false outside partition mode).
  bool windowed_ = false;
  bool resolving_ = false;  ///< inside resolve_window (query replies re-enter)
  std::vector<std::vector<StagedBurst>> staged_;          ///< per shard
  std::vector<std::vector<BarrierArrival>> barrier_staged_;  ///< per shard
  std::vector<std::uint64_t> stage_seq_;                  ///< per src rank
  std::vector<StagedBurst> resolve_pending_;  ///< replies emitted mid-resolve
  /// Per-rank barrier conditions: each is touched only by its own rank's
  /// coroutine (in-window) and the resolution thread (at the barrier), so no
  /// two shards ever mutate one concurrently.
  std::vector<std::unique_ptr<sim::Condition>> barrier_conds_;
};

}  // namespace dvx::vic
