#include "ib/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "analyze/shard_access.hpp"

namespace dvx::ib {

Fabric::Fabric(int nodes, IbParams params) : nodes_(nodes), params_(params) {
  if (nodes <= 0) throw std::invalid_argument("ib::Fabric: need at least one node");
  if (params_.nodes_per_leaf <= 0) {
    throw std::invalid_argument("ib::Fabric: nodes_per_leaf must be positive");
  }
  leaves_ = (nodes + params_.nodes_per_leaf - 1) / params_.nodes_per_leaf;
  // Full-bisection two-level tree: one spine per leaf down-port would be
  // non-blocking; real deployments taper. Use half as many spines as leaf
  // down-ports (2:1 oversubscription) with at least one spine.
  spines_ = leaves_ > 1 ? std::max(1, params_.nodes_per_leaf / 2) : 0;
  const std::size_t links =
      static_cast<std::size_t>(2 * nodes_) +
      static_cast<std::size_t>(leaves_) * static_cast<std::size_t>(std::max(spines_, 1)) * 2;
  link_free_.assign(links, 0);
  nic_gate_.assign(static_cast<std::size_t>(nodes_), 0);
}

void Fabric::reset() {
  DVX_SHARD_GUARDED("ib.Fabric", -1);
  std::fill(link_free_.begin(), link_free_.end(), 0);
  std::fill(nic_gate_.begin(), nic_gate_.end(), 0);
  bytes_sent_.store(0, std::memory_order_relaxed);
}

int Fabric::path_links(int src, int dst) const {
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_) {
    throw std::out_of_range("ib::Fabric::path_links: node out of range");
  }
  if (src == dst) return 0;
  return leaf_of(src) == leaf_of(dst) ? 2 : 4;
}

MsgTiming Fabric::send_message(int src, int dst, std::int64_t bytes, sim::Time ready) {
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_) {
    throw std::out_of_range("ib::Fabric::send_message: node out of range");
  }
  if (bytes <= 0) bytes = 1;
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);

  if (src == dst) {
    // Loopback: the MPI runtime short-circuits through shared memory. Pure
    // local math plus the atomic tally above, so this path may run on the
    // caller's shard mid-window (recorded per source rank, not as a write
    // to the shared ledgers).
    DVX_SHARD_ACCESS("ib.Fabric", src, kWrite);
    const sim::Time done = ready + sim::transfer_time(bytes, params_.memcpy_bw);
    return MsgTiming{done, done};
  }

  // Everything below mutates the shared link/NIC ledgers: windowed runs
  // reach here only from the canonical window-close replay.
  DVX_SHARD_GUARDED("ib.Fabric", -1);

  // Message-rate gate: the NIC cannot start messages faster than msg_rate.
  auto& gate = nic_gate_[static_cast<std::size_t>(src)];
  const auto gap = static_cast<sim::Duration>(1e12 / params_.msg_rate);
  sim::Time start = std::max(ready, gate);
  gate = start + gap;

  const int src_leaf = leaf_of(src);
  const int dst_leaf = leaf_of(dst);
  // Static (destination-based) routing: flows to the same destination pick
  // the same spine, which is exactly what creates fat-tree hotspots.
  const int spine = spines_ > 0 ? dst % spines_ : 0;

  std::vector<std::size_t> path;
  path.push_back(up_link(src));
  if (src_leaf != dst_leaf) {
    path.push_back(leaf_spine(src_leaf, spine));
    path.push_back(spine_leaf(dst_leaf, spine));
  }
  path.push_back(down_link(dst));

  const auto hop_lat =
      params_.switch_hop * static_cast<sim::Duration>(path.size() - 1);
  MsgTiming out{0, 0};
  std::int64_t remaining = bytes;
  sim::Time chunk_ready = start;
  bool first = true;
  while (remaining > 0) {
    const std::int64_t chunk = std::min(remaining, params_.mtu);
    // Per-chunk NIC processing (packet formation) before serialization.
    sim::Time t = chunk_ready + params_.chunk_overhead;
    for (std::size_t link : path) {
      auto& free = link_free_[link];
      t = std::max(t, free);
      t += sim::transfer_time(chunk, params_.link_bw);
      free = t;
    }
    t += hop_lat + params_.wire_latency;
    if (first) {
      out.first_arrival = t;
      first = false;
    }
    out.last_arrival = t;
    // Next chunk can start forming once this one left the source NIC.
    chunk_ready = link_free_[path.front()];
    remaining -= chunk;
  }
  return out;
}

}  // namespace dvx::ib
