#pragma once
// FDR InfiniBand fabric model: a two-level fat-tree with static routing.
//
// This is the reference network the paper compares against (§IV, §VIII):
//   * FDR 4x: 54.54 Gb/s signalling, ~6.8 GB/s usable per port — but multi-KB
//     messages are needed to approach it (packet-formation overheads), and
//     even the best devices top out near 100 M messages/s;
//   * fat-tree + static routing: concurrent flows that hash onto the same
//     up/down link contend (Hoefler et al., "Multistage switches are not
//     crossbars"), which is what hurts unstructured traffic;
//   * per-chunk NIC processing keeps large-transfer efficiency near the ~72%
//     of peak the paper measures at 256 Ki words.
//
// Like the Data Vortex FabricModel, this is pure timing math over per-link
// next-free times, with messages chunked at MTU granularity so concurrent
// flows interleave; the DES guarantees nondecreasing call times (in windowed
// partition mode the MPI world's canonical window-close replay preserves
// that order). It is one implementation of the net::Interconnect seam the
// MPI runtime is built on.

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/interconnect.hpp"
#include "sim/time.hpp"

namespace dvx::ib {

struct IbParams {
  double link_bw = 6.8e9;              ///< usable bytes/s per FDR 4x port
  std::int64_t mtu = 4096;             ///< chunk granularity
  sim::Duration chunk_overhead = sim::ns(190);  ///< NIC per-chunk processing
  sim::Duration switch_hop = sim::ns(110);      ///< per-switch latency
  sim::Duration wire_latency = sim::ns(500);    ///< NIC-to-NIC base (PCIe+serdes)
  double msg_rate = 100e6;             ///< NIC message-rate cap (msgs/s)
  double memcpy_bw = 8.0e9;            ///< host copy bandwidth (loopback, eager copies)
  int nodes_per_leaf = 8;              ///< down ports per leaf switch
};

using MsgTiming = net::MsgTiming;

// Partitioned contract (DESIGN.md §15): the link/NIC ledgers are touched
// only from the window-close resolution (MpiWorld::resolve_window, instance
// -1); loopback sends run concurrently on the caller's shard but reach only
// the atomic byte tally before returning.
// dvx-analyze: shard-partitioned
class Fabric final : public net::Interconnect {
 public:
  explicit Fabric(int nodes, IbParams params = {});

  int nodes() const noexcept override { return nodes_; }
  const IbParams& params() const noexcept { return params_; }
  int leaves() const noexcept { return leaves_; }
  int spines() const noexcept { return spines_; }

  /// Number of links on the static route src -> dst: 2 within a leaf,
  /// 4 across leaves (up, leaf->spine, spine->leaf, down), 0 loopback.
  int path_links(int src, int dst) const;

  /// Moves `bytes` from `src` to `dst`, first byte injectable at `ready`.
  /// Chunks at MTU, serializes on every link of the statically routed path,
  /// and enforces the NIC message-rate gap. src == dst is a host memcpy.
  MsgTiming send_message(int src, int dst, std::int64_t bytes,
                         sim::Time ready) override;

  /// Total bytes offered to the fabric so far (diagnostics).
  std::int64_t bytes_sent() const noexcept override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  void reset() override;

  /// Conservative cross-node latency bound (net::Interconnect contract):
  /// even the intra-leaf path pays the NIC-to-NIC wire latency plus one
  /// switch hop before the first byte can land on another node.
  sim::Duration lookahead() const noexcept override {
    return params_.wire_latency + params_.switch_hop;
  }

 private:
  int leaf_of(int node) const noexcept { return node / params_.nodes_per_leaf; }

  // Link bank layout: [0, nodes)                node->leaf (up)
  //                   [nodes, 2*nodes)          leaf->node (down)
  //                   then per (leaf, spine): leaf->spine, spine->leaf.
  std::size_t up_link(int node) const { return static_cast<std::size_t>(node); }
  std::size_t down_link(int node) const {
    return static_cast<std::size_t>(nodes_ + node);
  }
  std::size_t leaf_spine(int leaf, int spine) const {
    return static_cast<std::size_t>(2 * nodes_ + (leaf * spines_ + spine) * 2);
  }
  std::size_t spine_leaf(int leaf, int spine) const {
    return leaf_spine(leaf, spine) + 1;
  }

  int nodes_;
  IbParams params_;
  int leaves_;
  int spines_;
  std::vector<sim::Time> link_free_;
  std::vector<sim::Time> nic_gate_;  ///< message-rate gate per NIC
  // Atomic so loopback sends can tally from any shard mid-window.
  std::atomic<std::int64_t> bytes_sent_{0};
};

}  // namespace dvx::ib
