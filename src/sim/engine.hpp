#pragma once
// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-seq) order.
// Top-level simulated processes are Coro<void> coroutines registered through
// spawn(); they suspend on awaitables (delay, conditions, communication ops)
// and the engine resumes them at the correct virtual time.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "check/audit.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dvx::sim {

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Registers a top-level process; it starts at virtual time `start`.
  void spawn(Coro<void> coro, Time start = -1);

  /// Schedules a coroutine resume at absolute time t (must be >= now()).
  void schedule_handle(Time t, std::coroutine_handle<> h);

  /// Schedules a plain callback at absolute time t (must be >= now()).
  void schedule(Time t, std::function<void()> fn);

  /// Runs until the event queue drains. Returns the final virtual time.
  /// Rethrows the first exception that escaped any spawned process.
  Time run();

  /// True when every spawned process has run to completion.
  bool all_done() const noexcept;

  /// Number of processes spawned so far.
  std::size_t spawned() const noexcept { return roots_.size(); }

  /// Total events dispatched (diagnostics / microbenchmarks).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// High-water mark of the event queue (diagnostics; harvested into obs
  /// metrics by the cluster runtime — the engine sits below dvx_obs and
  /// cannot attach itself).
  std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }

  /// Registers an invariant auditor; audit() runs every audit_interval()
  /// dispatched events and once when the event queue drains. Observational
  /// only — auditors must not mutate simulation state (DESIGN.md §7).
  void add_auditor(check::InvariantAuditor* auditor);
  /// Unregisters; no-op when the auditor was never added.
  void remove_auditor(check::InvariantAuditor* auditor) noexcept;

  /// Events between automatic audit sweeps; 0 disables the cadence (the
  /// drain-time sweep still runs). Defaults to check::default_audit_interval()
  /// — 4096 in DVX_CHECK_LEVEL >= 2 builds, 0 otherwise.
  void set_audit_interval(std::uint64_t events) noexcept { audit_interval_ = events; }
  std::uint64_t audit_interval() const noexcept { return audit_interval_; }

  /// Number of audit sweeps performed (each sweep visits every auditor).
  std::uint64_t audits_run() const noexcept { return audits_run_; }

  /// Awaitable: suspend the current coroutine for `d` of virtual time.
  auto delay(Duration d) {
    struct Awaiter {
      Engine& engine;
      Time wake;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_handle(wake, h); }
      void await_resume() const noexcept {}
    };
    if (d < 0) d = 0;
    return Awaiter{*this, now_ + d};
  }

  /// Awaitable: reschedule the current coroutine at absolute time t
  /// (clamped to now()). Used to resume a waiter at a computed arrival time.
  auto resume_at(Time t) {
    struct Awaiter {
      Engine& engine;
      Time wake;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_handle(wake, h); }
      void await_resume() const noexcept {}
    };
    if (t < now_) t = now_;
    return Awaiter{*this, t};
  }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> handle{};   // either handle ...
    std::function<void()> fn{};         // ... or callback is set
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  struct Root {
    Coro<void>::Handle handle{};
    bool done = false;
  };

  void run_audits();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::deque<Root> roots_;  // deque: &done must stay stable
  std::vector<check::InvariantAuditor*> auditors_;
  std::uint64_t audit_interval_ = 0;  // ctor sets the level-dependent default
  std::uint64_t audits_run_ = 0;
};

}  // namespace dvx::sim
