#pragma once
// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-seq) order.
// Top-level simulated processes are Coro<void> coroutines registered through
// spawn(); they suspend on awaitables (delay, conditions, communication ops)
// and the engine resumes them at the correct virtual time.
//
// Hot-path layout (DESIGN.md §10): the ready queue is an index-based 4-ary
// min-heap over 16-byte POD entries — sift operations move (time, key) pairs,
// never payloads. Payloads live in recycled side-slabs (one for coroutine
// handles, one for the rarer std::function callbacks) addressed by a slot id
// packed into the low bits of the comparison key, so steady-state dispatch
// performs zero heap allocations.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <new>
#include <vector>

#include "check/audit.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dvx::sim {

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Registers a top-level process; it starts at virtual time `start`.
  void spawn(Coro<void> coro, Time start = -1);

  /// Schedules a coroutine resume at absolute time t (must be >= now()).
  void schedule_handle(Time t, std::coroutine_handle<> h);

  /// Schedules a plain callback at absolute time t (must be >= now()).
  void schedule(Time t, std::function<void()> fn);

  /// Runs until the event queue drains. Returns the final virtual time.
  /// Rethrows the first exception that escaped any spawned process.
  Time run();

  /// True when every spawned process has run to completion.
  bool all_done() const noexcept;

  /// Number of processes spawned so far.
  std::size_t spawned() const noexcept { return roots_.size(); }

  /// Total events dispatched (diagnostics / microbenchmarks).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// High-water mark of the event queue (diagnostics; harvested into obs
  /// metrics by the cluster runtime — the engine sits below dvx_obs and
  /// cannot attach itself).
  std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }

  /// Registers an invariant auditor; audit() runs every audit_interval()
  /// dispatched events and once when the event queue drains. Observational
  /// only — auditors must not mutate simulation state (DESIGN.md §7).
  void add_auditor(check::InvariantAuditor* auditor);
  /// Unregisters; no-op when the auditor was never added.
  void remove_auditor(check::InvariantAuditor* auditor) noexcept;

  /// Events between automatic audit sweeps; 0 disables the cadence (the
  /// drain-time sweep still runs). Defaults to check::default_audit_interval()
  /// — 4096 in DVX_CHECK_LEVEL >= 2 builds, 0 otherwise.
  void set_audit_interval(std::uint64_t events) noexcept { audit_interval_ = events; }
  std::uint64_t audit_interval() const noexcept { return audit_interval_; }

  /// Number of audit sweeps performed (each sweep visits every auditor).
  std::uint64_t audits_run() const noexcept { return audits_run_; }

  /// Awaitable: suspend the current coroutine for `d` of virtual time.
  auto delay(Duration d) {
    struct Awaiter {
      Engine& engine;
      Time wake;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_handle(wake, h); }
      void await_resume() const noexcept {}
    };
    if (d < 0) d = 0;
    return Awaiter{*this, now_ + d};
  }

  /// Awaitable: reschedule the current coroutine at absolute time t
  /// (clamped to now()). Used to resume a waiter at a computed arrival time.
  auto resume_at(Time t) {
    struct Awaiter {
      Engine& engine;
      Time wake;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_handle(wake, h); }
      void await_resume() const noexcept {}
    };
    if (t < now_) t = now_;
    return Awaiter{*this, t};
  }

 private:
  /// 16-byte heap entry. `key` packs (seq << kKeyShift) | kind | slot: seq in
  /// the high bits makes lexicographic (t, key) comparison reproduce the
  /// documented (time, insertion-seq) dispatch order, while the low bits
  /// locate the payload without a third word the sift would have to move.
  struct HeapEntry {
    Time t;
    std::uint64_t key;
  };
  static_assert(sizeof(HeapEntry) == 16);

  static constexpr int kSlotBits = 25;  ///< 32M outstanding events per kind
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kCallbackBit = std::uint64_t{1} << kSlotBits;
  static constexpr int kKeyShift = kSlotBits + 1;
  /// Insertion sequences per busy period (the counter resets whenever the
  /// heap drains, so this bound is per uninterrupted run, not per Engine).
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kKeyShift);

  struct Root {
    Coro<void>::Handle handle{};
    bool done = false;
  };

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.t != b.t ? a.t < b.t : a.key < b.key;
  }

  /// Backing-store allocator that hands out 64-byte-aligned blocks so the
  /// heap's cache-line geometry (see kHeapPad) survives vector growth.
  template <class T>
  struct CacheAlignedAlloc {
    using value_type = T;
    CacheAlignedAlloc() = default;
    template <class U>
    CacheAlignedAlloc(const CacheAlignedAlloc<U>&) noexcept {}
    T* allocate(std::size_t n) {
      return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, std::size_t) noexcept {
      ::operator delete(p, std::align_val_t{64});
    }
    bool operator==(const CacheAlignedAlloc&) const noexcept { return true; }
  };

  /// The heap array starts with kHeapPad unused entries. With logical node i
  /// stored at heap_[i + kHeapPad], a node's 4-child group (logical 4i+1 ..
  /// 4i+4, i.e. byte offset 64(i+1) from the 64-byte-aligned base) occupies
  /// exactly one cache line, so each sift level costs one line instead of
  /// two straddled ones.
  static constexpr std::size_t kHeapPad = 3;

  void heap_push(Time t, std::uint64_t key);
  HeapEntry heap_pop();
  std::uint64_t make_key(bool callback, std::uint32_t slot);

  void run_audits();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t max_queue_depth_ = 0;
  // 4-ary min-heap; logical root at heap_[kHeapPad] (see kHeapPad above).
  std::vector<HeapEntry, CacheAlignedAlloc<HeapEntry>> heap_;
  // Payload side-slabs; freed slots are recycled through the free lists so
  // steady-state scheduling touches no allocator.
  std::vector<std::coroutine_handle<>> handle_slab_;
  std::vector<std::uint32_t> handle_free_;
  std::vector<std::function<void()>> fn_slab_;
  std::vector<std::uint32_t> fn_free_;
  std::deque<Root> roots_;  // deque: &done must stay stable
  std::vector<check::InvariantAuditor*> auditors_;
  std::uint64_t audit_interval_ = 0;  // ctor sets the level-dependent default
  std::uint64_t audits_run_ = 0;
};

}  // namespace dvx::sim
