#pragma once
// Discrete-event simulation engine.
//
// Deterministic: events fire in (time, insertion-seq) order within one
// event-ordering shard. Top-level simulated processes are Coro<void>
// coroutines registered through spawn(); they suspend on awaitables (delay,
// conditions, communication ops) and the engine resumes them at the correct
// virtual time.
//
// Hot-path layout (DESIGN.md §10): each shard's ready queue is an
// index-based 4-ary min-heap over 16-byte POD entries — sift operations
// move (time, key) pairs, never payloads. Payloads live in recycled
// side-slabs (one for coroutine handles, one for the rarer std::function
// callbacks) addressed by a slot id packed into the low bits of the
// comparison key, so steady-state dispatch performs zero heap allocations.
//
// Sharded execution (DESIGN.md §12): configure_sharding() splits the engine
// into S independent shards, each owning a private heap/slab set, a local
// clock, and a local insertion-seq counter. run() then advances in
// conservative lookahead windows [T0, T0 + lookahead): all shards dispatch
// their events inside the window concurrently on up to `threads` workers
// (shard state is disjoint, so no locks), and any event one shard schedules
// onto another is staged into a per-destination mailbox. At the window
// barrier the mailboxes are merged in deterministic (time, source-shard,
// stage-order) order and only then assigned destination insertion-seqs, so
// the dispatch trajectory depends on the shard layout alone — never on the
// worker-thread count. Cross-shard events must land at or after the window
// end; the lookahead is derived from the minimum cross-node latency of the
// network models (net::Interconnect::lookahead, vic::DvFabric::
// min_remote_latency), which makes the conservative guarantee physical.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <new>
#include <vector>

#include "check/audit.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dvx::sim {

/// How Engine::run() executes: `shards` independent event-ordering domains
/// advanced in conservative `lookahead` windows by up to `threads` workers.
/// The dispatch trajectory (and therefore every simulation output) is a
/// function of `shards` and `lookahead` only; `threads` is pure execution
/// parallelism and never changes results. The default (1/1/0) is the
/// classic single-heap serial engine.
struct ShardingConfig {
  int shards = 1;        ///< event-ordering domains (>= 1)
  int threads = 1;       ///< worker threads inside a window (>= 1)
  Duration lookahead = 0;  ///< window width; must be > 0 when windowed
  /// Forces the windowed (lookahead + barrier) execution path even at
  /// shards == 1. Partitioned fabric models resolve their staged operations
  /// at window boundaries, so a cluster run at any shard count must use the
  /// same windowed trajectory for its output to be shard-count-invariant.
  bool windowed = false;
};

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time: the dispatching shard's clock when called from
  /// inside an event, the engine-wide clock otherwise.
  Time now() const noexcept;

  /// Selects the sharded execution mode. Must be called while no events are
  /// pending (typically right after construction); reconfiguring with a
  /// loaded queue would strand events in the old shard layout.
  void configure_sharding(const ShardingConfig& config);
  const ShardingConfig& sharding() const noexcept { return sharding_; }
  int shards() const noexcept { return static_cast<int>(shards_.size()); }

  /// Registers a top-level process; it starts at virtual time `start` on
  /// shard `shard` (-1 = the scheduling shard, shard 0 outside dispatch).
  void spawn(Coro<void> coro, Time start = -1, int shard = -1);

  /// Schedules a coroutine resume at absolute time t (must be >= now()) on
  /// shard `shard` (-1 = the scheduling shard). Cross-shard schedules from
  /// inside a window must satisfy the conservative bound t >= window end.
  void schedule_handle(Time t, std::coroutine_handle<> h, int shard = -1);

  /// Schedules a plain callback at absolute time t; same shard rules.
  void schedule(Time t, std::function<void()> fn, int shard = -1);

  /// Runs until every shard's event queue drains. Returns the final virtual
  /// time. Rethrows the first exception that escaped any spawned process.
  Time run();

  /// True when every spawned process has run to completion.
  bool all_done() const noexcept;

  /// Number of processes spawned so far.
  std::size_t spawned() const noexcept { return roots_.size(); }

  /// Total events dispatched across all shards (diagnostics).
  std::uint64_t events_processed() const noexcept;

  /// High-water mark of any shard's event queue (diagnostics; harvested
  /// into obs metrics by the cluster runtime — the engine sits below
  /// dvx_obs and cannot attach itself).
  std::size_t max_queue_depth() const noexcept;

  /// Registers an invariant auditor; audit() runs every audit_interval()
  /// dispatched events (at window boundaries in sharded mode) and once when
  /// the event queue drains. Observational only — auditors must not mutate
  /// simulation state (DESIGN.md §7).
  void add_auditor(check::InvariantAuditor* auditor);
  /// Unregisters; no-op when the auditor was never added.
  void remove_auditor(check::InvariantAuditor* auditor) noexcept;

  /// Registers a window-close hook keyed by `owner` (one hook per owner).
  /// Hooks run on the coordinator thread at every window barrier — after all
  /// shards finished the window, before the engine mailbox merge — in
  /// registration order. Partitioned fabric models use them to resolve their
  /// per-shard staged operations in a canonical order; every event a hook
  /// schedules must land at or after the closing window's end. Only
  /// meaningful in windowed mode (serial runs never invoke hooks).
  void add_window_hook(const void* owner, std::function<void()> hook);
  /// Unregisters; no-op when the owner never added a hook.
  void remove_window_hook(const void* owner) noexcept;

  /// Exclusive upper bound of the window being closed (valid inside window
  /// hooks); hooks use it to clamp resolution-scheduled times.
  Time window_end() const noexcept { return window_end_; }

  /// Events between automatic audit sweeps; 0 disables the cadence (the
  /// drain-time sweep still runs). Defaults to check::default_audit_interval()
  /// — 4096 in DVX_CHECK_LEVEL >= 2 builds, 0 otherwise.
  void set_audit_interval(std::uint64_t events) noexcept { audit_interval_ = events; }
  std::uint64_t audit_interval() const noexcept { return audit_interval_; }

  /// Number of audit sweeps performed (each sweep visits every auditor).
  std::uint64_t audits_run() const noexcept { return audits_run_; }

  /// The shard the calling thread is currently dispatching for, or -1 when
  /// the thread is outside engine dispatch. Static (thread-identity, not
  /// engine-identity) so instrumentation points deep inside the network
  /// models (analyze::ShardAccessRecorder) can attribute an access without
  /// holding an Engine reference.
  static int current_shard() noexcept;

  /// Monotone index of the lookahead window the calling thread is currently
  /// dispatching. 0 outside dispatch and in serial (shards == 1) mode —
  /// there a single ordering domain makes window attribution meaningless.
  static std::uint64_t current_window() noexcept;

  /// Awaitable: suspend the current coroutine for `d` of virtual time.
  auto delay(Duration d) {
    struct Awaiter {
      Engine& engine;
      Time wake;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_handle(wake, h); }
      void await_resume() const noexcept {}
    };
    if (d < 0) d = 0;
    return Awaiter{*this, now() + d};
  }

  /// Awaitable: reschedule the current coroutine at absolute time t
  /// (clamped to now()). Used to resume a waiter at a computed arrival time.
  auto resume_at(Time t) {
    struct Awaiter {
      Engine& engine;
      Time wake;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.schedule_handle(wake, h); }
      void await_resume() const noexcept {}
    };
    const Time now_t = now();
    if (t < now_t) t = now_t;
    return Awaiter{*this, t};
  }

  // Key-packing limits, public so overflow tests can probe the edges.
  static constexpr int kSlotBits = 25;  ///< 32M outstanding events per kind
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr int kKeyShift = kSlotBits + 1;
  /// Insertion sequences per busy period (the counter resets whenever the
  /// heap drains, so this bound is per uninterrupted run, not per Engine).
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kKeyShift);

  /// Test hook: forces a shard's insertion-seq counter so the overflow
  /// guards can be exercised without dispatching 2^38 events. Never call
  /// outside tests — a forged counter breaks tie-break ordering with any
  /// events already in the heap.
  void set_next_seq_for_test(std::uint64_t seq, int shard = 0);

 private:
  /// 16-byte heap entry. `key` packs (seq << kKeyShift) | kind | slot: seq in
  /// the high bits makes lexicographic (t, key) comparison reproduce the
  /// documented (time, insertion-seq) dispatch order, while the low bits
  /// locate the payload without a third word the sift would have to move.
  struct HeapEntry {
    Time t;
    std::uint64_t key;
  };
  static_assert(sizeof(HeapEntry) == 16);

  static constexpr std::uint64_t kCallbackBit = std::uint64_t{1} << kSlotBits;

  struct Root {
    Coro<void>::Handle handle{};
    bool done = false;
  };

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.t != b.t ? a.t < b.t : a.key < b.key;
  }

  /// Backing-store allocator that hands out 64-byte-aligned blocks so the
  /// heap's cache-line geometry (see kHeapPad) survives vector growth.
  template <class T>
  struct CacheAlignedAlloc {
    using value_type = T;
    CacheAlignedAlloc() = default;
    template <class U>
    CacheAlignedAlloc(const CacheAlignedAlloc<U>&) noexcept {}
    T* allocate(std::size_t n) {
      return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, std::size_t) noexcept {
      ::operator delete(p, std::align_val_t{64});
    }
    bool operator==(const CacheAlignedAlloc&) const noexcept { return true; }
  };

  /// The heap array starts with kHeapPad unused entries. With logical node i
  /// stored at heap_[i + kHeapPad], a node's 4-child group (logical 4i+1 ..
  /// 4i+4, i.e. byte offset 64(i+1) from the 64-byte-aligned base) occupies
  /// exactly one cache line, so each sift level costs one line instead of
  /// two straddled ones.
  static constexpr std::size_t kHeapPad = 3;

  /// A cross-shard event parked in its source shard's outbox until the
  /// window barrier merges it into the destination heap.
  struct Staged {
    Time t;
    std::coroutine_handle<> h{};  ///< non-null: coroutine resume
    std::function<void()> fn{};   ///< otherwise: plain callback
  };

  /// One event-ordering domain: private heap, slabs, clock, seq counter.
  /// 64-byte aligned so concurrently-dispatching shards never share a line.
  struct alignas(64) Shard {
    std::vector<HeapEntry, CacheAlignedAlloc<HeapEntry>> heap;
    std::vector<std::coroutine_handle<>> handle_slab;
    std::vector<std::uint32_t> handle_free;
    std::vector<std::function<void()>> fn_slab;
    std::vector<std::uint32_t> fn_free;
    std::vector<std::vector<Staged>> outbox;  ///< one per destination shard
    Time now = 0;                  ///< last dispatched event time
    std::uint64_t next_seq = 0;    ///< local insertion-seq counter
    std::uint64_t events = 0;      ///< events dispatched by this shard
    std::size_t max_depth = 0;     ///< heap high-water mark
    std::exception_ptr failure{};  ///< first escape from a window dispatch
  };

  void heap_push(Shard& s, Time t, std::uint64_t key);
  HeapEntry heap_pop(Shard& s);
  std::uint64_t make_key(Shard& s, bool callback, std::uint32_t slot);
  void push_event(Shard& s, Time t, bool callback, std::coroutine_handle<> h,
                  std::function<void()> fn);
  int resolve_shard(int shard) const;
  void dispatch_one(Shard& s);

  Time run_serial();
  Time run_sharded();
  Time next_window_floor() const noexcept;
  void run_shard_window(int shard, Time window_end);
  void merge_mailboxes();
  void rethrow_shard_failure();
  Time finish_run();

  void run_audits();

  Time now_ = 0;             ///< engine-wide clock (window floor when sharded)
  Time window_end_ = 0;      ///< exclusive bound of the executing window
  std::uint64_t window_seq_ = 0;  ///< windows opened (sharded mode; monotone)
  ShardingConfig sharding_{};
  std::vector<Shard> shards_;  ///< always >= 1; shard 0 is the serial heap
  std::deque<Root> roots_;     // deque: &done must stay stable
  std::mutex spawn_mutex_;     // spawn() may be called from window workers
  std::vector<check::InvariantAuditor*> auditors_;
  std::vector<std::pair<const void*, std::function<void()>>> window_hooks_;
  std::uint64_t audit_interval_ = 0;  // ctor sets the level-dependent default
  std::uint64_t audits_run_ = 0;
  std::uint64_t last_audit_events_ = 0;  ///< sharded-mode cadence bookkeeping
};

}  // namespace dvx::sim
