#include "sim/engine.hpp"

#include <stdexcept>

namespace dvx::sim {

Engine::~Engine() {
  for (auto& r : roots_) {
    if (r.handle) r.handle.destroy();
  }
}

void Engine::spawn(Coro<void> coro, Time start) {
  assert(coro.valid());
  roots_.push_back(Root{coro.release(), false});
  Root& root = roots_.back();
  root.handle.promise().done_flag = &root.done;
  schedule_handle(start < now_ ? now_ : start, root.handle);
}

void Engine::schedule_handle(Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, h, {}});
}

void Engine::schedule(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, {}, std::move(fn)});
}

Time Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++events_processed_;
    if (ev.handle) {
      ev.handle.resume();
    } else {
      ev.fn();
    }
  }
  // Surface failures from simulated processes to the caller (tests rely on it).
  for (auto& r : roots_) {
    if (r.handle && r.handle.promise().exception) {
      std::rethrow_exception(r.handle.promise().exception);
    }
  }
  return now_;
}

bool Engine::all_done() const noexcept {
  for (const auto& r : roots_) {
    if (!r.done) return false;
  }
  return true;
}

}  // namespace dvx::sim
