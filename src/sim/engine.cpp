#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <stdexcept>
#include <thread>
#include <utility>

#include "check/check.hpp"

namespace dvx::sim {

namespace {
// The shard a worker thread is currently dispatching for, so that now() and
// default-shard scheduling resolve to the executing shard. Cleared outside
// windows; the engine pointer disambiguates nested/foreign engines.
thread_local const Engine* tls_engine = nullptr;
thread_local int tls_shard = -1;
// The lookahead-window index published to analyze:: instrumentation while a
// shard window dispatches. Stays 0 in serial mode: one ordering domain has
// no cross-shard windows to attribute accesses to.
thread_local std::uint64_t tls_window = 0;
}  // namespace

int Engine::current_shard() noexcept { return tls_shard; }

std::uint64_t Engine::current_window() noexcept { return tls_window; }

Engine::Engine() : audit_interval_(check::default_audit_interval()) {
  shards_.resize(1);
  shards_[0].heap.resize(kHeapPad);  // front pad: aligns 4-child groups
  shards_[0].outbox.resize(1);
}

Engine::~Engine() {
  for (auto& r : roots_) {
    if (r.handle) r.handle.destroy();
  }
}

Time Engine::now() const noexcept {
  if (tls_engine == this && tls_shard >= 0) {
    return shards_[static_cast<std::size_t>(tls_shard)].now;
  }
  return now_;
}

void Engine::configure_sharding(const ShardingConfig& config) {
  DVX_CHECK(config.shards >= 1) << "sharding needs at least one shard";
  DVX_CHECK(config.threads >= 1) << "sharding needs at least one thread";
  DVX_CHECK((config.shards == 1 && !config.windowed) || config.lookahead > 0)
      << "sharded/windowed execution needs a positive conservative lookahead";
  for (const auto& s : shards_) {
    DVX_CHECK(s.heap.size() <= kHeapPad)
        << "cannot reconfigure sharding with events pending";
  }
  sharding_ = config;
  shards_.resize(static_cast<std::size_t>(config.shards));
  for (auto& s : shards_) {
    if (s.heap.size() < kHeapPad) s.heap.resize(kHeapPad);
    s.outbox.resize(static_cast<std::size_t>(config.shards));
    s.now = now_;
  }
}

int Engine::resolve_shard(int shard) const {
  if (shard < 0) {
    return (tls_engine == this && tls_shard >= 0) ? tls_shard : 0;
  }
  DVX_CHECK(shard < static_cast<int>(shards_.size()))
      << "shard " << shard << " out of range (engine has " << shards_.size()
      << ")";
  return shard;
}

void Engine::spawn(Coro<void> coro, Time start, int shard) {
  DVX_CHECK(coro.valid()) << "spawn of an empty/moved-from coroutine";
  const Time now_t = now();
  Root* root = nullptr;
  {
    // Workers may spawn during a window; the deque keeps &done stable, the
    // lock only guards the push. Uncontended in the serial engine.
    const std::lock_guard<std::mutex> lock(spawn_mutex_);
    roots_.push_back(Root{coro.release(), false});
    root = &roots_.back();
  }
  root->handle.promise().done_flag = &root->done;
  schedule_handle(start < now_t ? now_t : start, root->handle, shard);
}

// Logical heap index i lives at heap[i + kHeapPad]; children of logical i
// are logical 4i+1 .. 4i+4. All index arithmetic below is in logical terms
// with the pad applied at the subscript.

void Engine::heap_push(Shard& s, Time t, std::uint64_t key) {
  auto& heap = s.heap;
  std::size_t i = heap.size() - kHeapPad;
  heap.push_back(HeapEntry{t, key});
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    const HeapEntry p = heap[parent + kHeapPad];
    if (p.t < t || (p.t == t && p.key < key)) break;
    heap[i + kHeapPad] = p;
    i = parent;
  }
  heap[i + kHeapPad] = HeapEntry{t, key};
  s.max_depth = std::max(s.max_depth, heap.size() - kHeapPad);
}

Engine::HeapEntry Engine::heap_pop(Shard& s) {
  auto& heap = s.heap;
  const HeapEntry top = heap[kHeapPad];
  const HeapEntry last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size() - kHeapPad;
  if (n != 0) {
    // Sift the hole along the min-child path all the way to a leaf, then
    // bubble `last` back up. Compared to the textbook early-exit sift-down
    // this trades a couple of extra moves for the removal of one
    // unpredictable branch per level: the min-of-4 selection compiles to
    // conditional moves and the only data-dependent branches are in the
    // short (expected O(1) levels) bubble-up.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first + 4 <= n) {  // full child group: branch-free min selection
        std::size_t best = first;
        best = entry_before(heap[first + 1 + kHeapPad], heap[best + kHeapPad])
                   ? first + 1
                   : best;
        best = entry_before(heap[first + 2 + kHeapPad], heap[best + kHeapPad])
                   ? first + 2
                   : best;
        best = entry_before(heap[first + 3 + kHeapPad], heap[best + kHeapPad])
                   ? first + 3
                   : best;
#if defined(__GNUC__) || defined(__clang__)
        // The winner's own child group is the next line the walk reads.
        if (4 * best + 1 + kHeapPad < heap.size()) {
          __builtin_prefetch(&heap[4 * best + 1 + kHeapPad]);
        }
#endif
        heap[i + kHeapPad] = heap[best + kHeapPad];
        i = best;
      } else if (first < n) {  // partial group at the frontier
        std::size_t best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (entry_before(heap[c + kHeapPad], heap[best + kHeapPad])) best = c;
        }
        heap[i + kHeapPad] = heap[best + kHeapPad];
        i = best;
        break;
      } else {
        break;
      }
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!entry_before(last, heap[parent + kHeapPad])) break;
      heap[i + kHeapPad] = heap[parent + kHeapPad];
      i = parent;
    }
    heap[i + kHeapPad] = last;
  }
  return top;
}

std::uint64_t Engine::make_key(Shard& s, bool callback, std::uint32_t slot) {
  // Both packed fields are guarded here, at the single point where the key
  // is assembled: a slot above kSlotMask or a seq at kMaxSeq would silently
  // corrupt the (time, insertion-seq) comparison order.
  DVX_CHECK(slot <= kSlotMask)
      << "event slot " << slot << " overflows the " << kSlotBits
      << "-bit key field";
  DVX_CHECK(s.next_seq < kMaxSeq) << "event sequence space exhausted";
  const std::uint64_t seq = s.next_seq++;
  return (seq << kKeyShift) | (callback ? kCallbackBit : 0) | slot;
}

void Engine::push_event(Shard& s, Time t, bool callback,
                        std::coroutine_handle<> h, std::function<void()> fn) {
  std::uint32_t slot;
  if (!callback) {
    if (!s.handle_free.empty()) {
      slot = s.handle_free.back();
      s.handle_free.pop_back();
      s.handle_slab[slot] = h;
    } else {
      slot = static_cast<std::uint32_t>(s.handle_slab.size());
      DVX_CHECK(slot <= kSlotMask) << "too many outstanding coroutine events";
      s.handle_slab.push_back(h);
    }
  } else {
    if (!s.fn_free.empty()) {
      slot = s.fn_free.back();
      s.fn_free.pop_back();
      s.fn_slab[slot] = std::move(fn);
    } else {
      slot = static_cast<std::uint32_t>(s.fn_slab.size());
      DVX_CHECK(slot <= kSlotMask) << "too many outstanding callback events";
      s.fn_slab.push_back(std::move(fn));
    }
  }
  heap_push(s, t, make_key(s, callback, slot));
}

void Engine::schedule_handle(Time t, std::coroutine_handle<> h, int shard) {
  const int dst = resolve_shard(shard);
  const int cur = (tls_engine == this) ? tls_shard : -1;
  if (cur >= 0 && dst != cur) {
    // Cross-shard from inside a window: stage for the barrier merge. The
    // conservative guarantee — nothing scheduled inside a window may land
    // before the window ends — is what makes concurrent shard execution
    // equivalent to the global (time, seq) order.
    DVX_CHECK(t >= window_end_)
        << "cross-shard event violates the lookahead window: t=" << t
        << " window_end=" << window_end_ << " (lookahead too large?)";
    shards_[static_cast<std::size_t>(cur)]
        .outbox[static_cast<std::size_t>(dst)]
        .push_back(Staged{t, h, {}});
    return;
  }
  Shard& s = shards_[static_cast<std::size_t>(dst)];
  DVX_CHECK(t >= s.now) << "cannot schedule into the past: t=" << t
                        << " now=" << s.now;
  push_event(s, t, /*callback=*/false, h, {});
}

void Engine::schedule(Time t, std::function<void()> fn, int shard) {
  const int dst = resolve_shard(shard);
  const int cur = (tls_engine == this) ? tls_shard : -1;
  if (cur >= 0 && dst != cur) {
    DVX_CHECK(t >= window_end_)
        << "cross-shard event violates the lookahead window: t=" << t
        << " window_end=" << window_end_ << " (lookahead too large?)";
    shards_[static_cast<std::size_t>(cur)]
        .outbox[static_cast<std::size_t>(dst)]
        .push_back(Staged{t, {}, std::move(fn)});
    return;
  }
  Shard& s = shards_[static_cast<std::size_t>(dst)];
  DVX_CHECK(t >= s.now) << "cannot schedule into the past: t=" << t
                        << " now=" << s.now;
  push_event(s, t, /*callback=*/true, {}, std::move(fn));
}

void Engine::add_window_hook(const void* owner, std::function<void()> hook) {
  DVX_CHECK(owner != nullptr && hook != nullptr);
  remove_window_hook(owner);
  window_hooks_.emplace_back(owner, std::move(hook));
}

void Engine::remove_window_hook(const void* owner) noexcept {
  std::erase_if(window_hooks_,
                [owner](const auto& h) { return h.first == owner; });
}

void Engine::add_auditor(check::InvariantAuditor* auditor) {
  DVX_CHECK(auditor != nullptr);
  auditors_.push_back(auditor);
}

void Engine::remove_auditor(check::InvariantAuditor* auditor) noexcept {
  auditors_.erase(std::remove(auditors_.begin(), auditors_.end(), auditor),
                  auditors_.end());
}

void Engine::run_audits() {
  // Level-2 headroom audit: the per-shard seq counters must stay inside the
  // representable key range (make_key aborts the run at the edge; this
  // catches a counter drifting toward it between dispatches).
  for (const auto& s : shards_) {
    DVX_CHECK_SOON(s.next_seq < kMaxSeq)
        << "insertion-seq counter left the representable range";
  }
  if (auditors_.empty()) return;
  ++audits_run_;
  for (auto* a : auditors_) a->audit(now_);
}

void Engine::set_next_seq_for_test(std::uint64_t seq, int shard) {
  shards_.at(static_cast<std::size_t>(shard)).next_seq = seq;
}

void Engine::dispatch_one(Shard& s) {
#if defined(__GNUC__) || defined(__clang__)
  {
    // Start the payload fetch before the sift-down: the slab slot of the
    // event about to fire is random relative to insertion order, and the
    // O(log n) sift gives the line time to arrive.
    const std::uint64_t top_key = s.heap[kHeapPad].key;
    const auto top_slot = static_cast<std::uint32_t>(top_key & kSlotMask);
    if ((top_key & kCallbackBit) == 0) {
      __builtin_prefetch(&s.handle_slab[top_slot]);
    } else {
      __builtin_prefetch(&s.fn_slab[top_slot]);
    }
  }
#endif
  const HeapEntry ev = heap_pop(s);
  // Event-time monotonicity: the queue must never yield an event behind
  // the clock (would reorder causally dependent wake-ups).
  DVX_CHECK(ev.t >= s.now) << "non-monotonic event: t=" << ev.t
                           << " behind now=" << s.now;
  s.now = ev.t;
#if DVX_CHECK_LEVEL >= 1
  check::context().sim_time_ps = ev.t;
#endif
  ++s.events;
  const auto slot = static_cast<std::uint32_t>(ev.key & kSlotMask);
  if ((ev.key & kCallbackBit) == 0) {
    // Free the slot before resuming: the resumed coroutine may schedule
    // again and should find its own slot first on the free list.
    const std::coroutine_handle<> h = s.handle_slab[slot];
    s.handle_slab[slot] = {};
    s.handle_free.push_back(slot);
    h.resume();
  } else {
    // Move the callback out first — running it may schedule into the slab
    // and invalidate references. Moving never allocates; the slot object
    // is recycled for the next callback of this size class.
    std::function<void()> fn = std::move(s.fn_slab[slot]);
    s.fn_slab[slot] = nullptr;
    s.fn_free.push_back(slot);
    fn();
  }
}

Time Engine::run() {
  return (shards_.size() == 1 && !sharding_.windowed) ? run_serial()
                                                      : run_sharded();
}

Time Engine::run_serial() {
  Shard& s = shards_[0];
  // The serial loop still publishes the thread-locals: now() and default
  // shard resolution inside dispatched events go through the same path as
  // in sharded mode, so behavior cannot diverge between the modes.
  tls_engine = this;
  tls_shard = 0;
  struct TlsReset {
    ~TlsReset() {
      tls_engine = nullptr;
      tls_shard = -1;
    }
  } reset;
  while (s.heap.size() > kHeapPad) {
    dispatch_one(s);
    now_ = s.now;
    if (audit_interval_ != 0 && s.events % audit_interval_ == 0) {
      run_audits();
    }
  }
  return finish_run();
}

Time Engine::next_window_floor() const noexcept {
  Time t0 = -1;
  for (const auto& s : shards_) {
    if (s.heap.size() > kHeapPad) {
      const Time top = s.heap[kHeapPad].t;
      if (t0 < 0 || top < t0) t0 = top;
    }
  }
  return t0;  // -1: every shard drained
}

void Engine::run_shard_window(int shard, Time window_end) {
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  tls_engine = this;
  tls_shard = shard;
  // window_seq_ was advanced by the coordinator before the phase-A barrier,
  // so this read is ordered and every shard of one window sees the same id.
  tls_window = window_seq_;
  try {
    while (s.heap.size() > kHeapPad && s.heap[kHeapPad].t < window_end) {
      dispatch_one(s);
    }
  } catch (...) {
    if (!s.failure) s.failure = std::current_exception();
  }
  tls_engine = nullptr;
  tls_shard = -1;
  tls_window = 0;
}

void Engine::rethrow_shard_failure() {
  for (auto& s : shards_) {
    if (s.failure) {
      std::exception_ptr e = std::exchange(s.failure, nullptr);
      std::rethrow_exception(e);
    }
  }
}

void Engine::merge_mailboxes() {
  // Deterministic boundary merge: for each destination, staged events from
  // every source outbox are ordered by (time, source shard, stage order)
  // and only then assigned destination insertion-seqs. The order is a pure
  // function of the window's simulation content — worker interleaving
  // cannot touch it, which is what keeps output byte-identical at any
  // thread count.
  struct MergeRef {
    Time t;
    int src;
    std::size_t idx;
  };
  std::vector<MergeRef> order;
  const auto n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    order.clear();
    for (std::size_t src = 0; src < n; ++src) {
      const auto& box = shards_[src].outbox[dst];
      for (std::size_t i = 0; i < box.size(); ++i) {
        order.push_back(MergeRef{box[i].t, static_cast<int>(src), i});
      }
    }
    if (order.empty()) continue;
    std::sort(order.begin(), order.end(),
              [](const MergeRef& a, const MergeRef& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.src != b.src) return a.src < b.src;
                return a.idx < b.idx;
              });
    Shard& d = shards_[dst];
    for (const MergeRef& ref : order) {
      Staged& e = shards_[static_cast<std::size_t>(ref.src)].outbox[dst][ref.idx];
      DVX_CHECK(e.t >= d.now)
          << "merged cross-shard event behind the destination clock";
      if (e.h) {
        push_event(d, e.t, /*callback=*/false, e.h, {});
      } else {
        push_event(d, e.t, /*callback=*/true, {}, std::move(e.fn));
      }
    }
    for (std::size_t src = 0; src < n; ++src) {
      shards_[src].outbox[dst].clear();
    }
  }
}

Time Engine::run_sharded() {
  DVX_CHECK(sharding_.lookahead > 0)
      << "sharded engine needs a positive lookahead";
  const int nshards = static_cast<int>(shards_.size());
  const int workers =
      std::max(1, std::min(sharding_.threads, nshards));

  auto after_window = [this] {
    rethrow_shard_failure();
    // Window hooks run in registration order on this (coordinator) thread,
    // outside any shard context: fabric models resolve their staged
    // cross-shard operations here in a canonical, layout-invariant order.
    for (auto& [owner, hook] : window_hooks_) hook();
    merge_mailboxes();
    if (audit_interval_ != 0) {
      const std::uint64_t total = events_processed();
      if (total - last_audit_events_ >= audit_interval_) {
        run_audits();
        last_audit_events_ = total;
      }
    }
  };

  if (workers == 1) {
    // Windowed sequential execution: identical window sequence, shard
    // order, and merge order as the parallel path — the reference a
    // threads-N run must reproduce byte for byte.
    for (;;) {
      const Time t0 = next_window_floor();
      if (t0 < 0) break;
      window_end_ = t0 + sharding_.lookahead;
      ++window_seq_;
      now_ = std::max(now_, t0);
      for (int i = 0; i < nshards; ++i) run_shard_window(i, window_end_);
      after_window();
    }
    return finish_run();
  }

  std::barrier<> window_barrier(workers);
  std::atomic<bool> stop{false};
  Time window_end_shared = 0;  // published by the coordinator before phase A

  auto worker_fn = [&, this](int w) {
    for (;;) {
      window_barrier.arrive_and_wait();  // phase A: window published
      if (stop.load(std::memory_order_relaxed)) return;
      for (int i = w; i < nshards; i += workers) {
        run_shard_window(i, window_end_shared);
      }
      window_barrier.arrive_and_wait();  // phase B: window complete
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) pool.emplace_back(worker_fn, w);

  std::exception_ptr coordinator_failure;
  for (;;) {
    const Time t0 = next_window_floor();
    if (t0 < 0) break;
    window_end_ = t0 + sharding_.lookahead;
    ++window_seq_;
    window_end_shared = window_end_;
    now_ = std::max(now_, t0);
    window_barrier.arrive_and_wait();  // phase A
    for (int i = 0; i < nshards; i += workers) {
      run_shard_window(i, window_end_shared);
    }
    window_barrier.arrive_and_wait();  // phase B
    try {
      after_window();
    } catch (...) {
      coordinator_failure = std::current_exception();
      break;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  window_barrier.arrive_and_wait();  // release workers parked at phase A
  for (auto& th : pool) th.join();
  if (coordinator_failure) std::rethrow_exception(coordinator_failure);
  return finish_run();
}

Time Engine::finish_run() {
  for (auto& s : shards_) {
    now_ = std::max(now_, s.now);
    // The heap drained: no live entry can tie with a future one, so the
    // tie-break counter rewinds and kMaxSeq bounds a busy period, not a run.
    s.next_seq = 0;
  }
  last_audit_events_ = events_processed();
  run_audits();  // drain-time sweep: short runs get audited too
  // Surface failures from simulated processes to the caller (tests rely on it).
  for (auto& r : roots_) {
    if (r.handle && r.handle.promise().exception) {
      std::rethrow_exception(r.handle.promise().exception);
    }
  }
  return now_;
}

std::uint64_t Engine::events_processed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.events;
  return total;
}

std::size_t Engine::max_queue_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& s : shards_) depth = std::max(depth, s.max_depth);
  return depth;
}

bool Engine::all_done() const noexcept {
  for (const auto& r : roots_) {
    if (!r.done) return false;
  }
  return true;
}

}  // namespace dvx::sim
