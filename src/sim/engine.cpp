#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/check.hpp"

namespace dvx::sim {

Engine::Engine() : audit_interval_(check::default_audit_interval()) {}

Engine::~Engine() {
  for (auto& r : roots_) {
    if (r.handle) r.handle.destroy();
  }
}

void Engine::spawn(Coro<void> coro, Time start) {
  DVX_CHECK(coro.valid()) << "spawn of an empty/moved-from coroutine";
  roots_.push_back(Root{coro.release(), false});
  Root& root = roots_.back();
  root.handle.promise().done_flag = &root.done;
  schedule_handle(start < now_ ? now_ : start, root.handle);
}

void Engine::schedule_handle(Time t, std::coroutine_handle<> h) {
  DVX_CHECK(t >= now_) << "cannot schedule into the past: t=" << t
                       << " now=" << now_;
  queue_.push(Event{t, next_seq_++, h, {}});
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
}

void Engine::schedule(Time t, std::function<void()> fn) {
  DVX_CHECK(t >= now_) << "cannot schedule into the past: t=" << t
                       << " now=" << now_;
  queue_.push(Event{t, next_seq_++, {}, std::move(fn)});
  max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
}

void Engine::add_auditor(check::InvariantAuditor* auditor) {
  DVX_CHECK(auditor != nullptr);
  auditors_.push_back(auditor);
}

void Engine::remove_auditor(check::InvariantAuditor* auditor) noexcept {
  auditors_.erase(std::remove(auditors_.begin(), auditors_.end(), auditor),
                  auditors_.end());
}

void Engine::run_audits() {
  if (auditors_.empty()) return;
  ++audits_run_;
  for (auto* a : auditors_) a->audit(now_);
}

Time Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    // Event-time monotonicity: the queue must never yield an event behind
    // the clock (would reorder causally dependent wake-ups).
    DVX_CHECK(ev.t >= now_) << "non-monotonic event: t=" << ev.t
                            << " behind now=" << now_;
    now_ = ev.t;
#if DVX_CHECK_LEVEL >= 1
    check::context().sim_time_ps = now_;
#endif
    ++events_processed_;
    if (ev.handle) {
      ev.handle.resume();
    } else {
      ev.fn();
    }
    if (audit_interval_ != 0 && events_processed_ % audit_interval_ == 0) {
      run_audits();
    }
  }
  run_audits();  // drain-time sweep: short runs get audited too
  // Surface failures from simulated processes to the caller (tests rely on it).
  for (auto& r : roots_) {
    if (r.handle && r.handle.promise().exception) {
      std::rethrow_exception(r.handle.promise().exception);
    }
  }
  return now_;
}

bool Engine::all_done() const noexcept {
  for (const auto& r : roots_) {
    if (!r.done) return false;
  }
  return true;
}

}  // namespace dvx::sim
