#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "check/check.hpp"

namespace dvx::sim {

Engine::Engine() : audit_interval_(check::default_audit_interval()) {
  heap_.resize(kHeapPad);  // front pad: aligns every 4-child group to a line
}

Engine::~Engine() {
  for (auto& r : roots_) {
    if (r.handle) r.handle.destroy();
  }
}

void Engine::spawn(Coro<void> coro, Time start) {
  DVX_CHECK(coro.valid()) << "spawn of an empty/moved-from coroutine";
  roots_.push_back(Root{coro.release(), false});
  Root& root = roots_.back();
  root.handle.promise().done_flag = &root.done;
  schedule_handle(start < now_ ? now_ : start, root.handle);
}

// Logical heap index i lives at heap_[i + kHeapPad]; children of logical i
// are logical 4i+1 .. 4i+4. All index arithmetic below is in logical terms
// with the pad applied at the subscript.

void Engine::heap_push(Time t, std::uint64_t key) {
  std::size_t i = heap_.size() - kHeapPad;
  heap_.push_back(HeapEntry{t, key});
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    const HeapEntry p = heap_[parent + kHeapPad];
    if (p.t < t || (p.t == t && p.key < key)) break;
    heap_[i + kHeapPad] = p;
    i = parent;
  }
  heap_[i + kHeapPad] = HeapEntry{t, key};
  max_queue_depth_ = std::max(max_queue_depth_, heap_.size() - kHeapPad);
}

Engine::HeapEntry Engine::heap_pop() {
  const HeapEntry top = heap_[kHeapPad];
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size() - kHeapPad;
  if (n != 0) {
    // Sift the hole along the min-child path all the way to a leaf, then
    // bubble `last` back up. Compared to the textbook early-exit sift-down
    // this trades a couple of extra moves for the removal of one
    // unpredictable branch per level: the min-of-4 selection compiles to
    // conditional moves and the only data-dependent branches are in the
    // short (expected O(1) levels) bubble-up.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first + 4 <= n) {  // full child group: branch-free min selection
        std::size_t best = first;
        best = entry_before(heap_[first + 1 + kHeapPad], heap_[best + kHeapPad])
                   ? first + 1
                   : best;
        best = entry_before(heap_[first + 2 + kHeapPad], heap_[best + kHeapPad])
                   ? first + 2
                   : best;
        best = entry_before(heap_[first + 3 + kHeapPad], heap_[best + kHeapPad])
                   ? first + 3
                   : best;
#if defined(__GNUC__) || defined(__clang__)
        // The winner's own child group is the next line the walk reads.
        if (4 * best + 1 + kHeapPad < heap_.size()) {
          __builtin_prefetch(&heap_[4 * best + 1 + kHeapPad]);
        }
#endif
        heap_[i + kHeapPad] = heap_[best + kHeapPad];
        i = best;
      } else if (first < n) {  // partial group at the frontier
        std::size_t best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (entry_before(heap_[c + kHeapPad], heap_[best + kHeapPad])) best = c;
        }
        heap_[i + kHeapPad] = heap_[best + kHeapPad];
        i = best;
        break;
      } else {
        break;
      }
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!entry_before(last, heap_[parent + kHeapPad])) break;
      heap_[i + kHeapPad] = heap_[parent + kHeapPad];
      i = parent;
    }
    heap_[i + kHeapPad] = last;
  }
  return top;
}

std::uint64_t Engine::make_key(bool callback, std::uint32_t slot) {
  DVX_CHECK(next_seq_ < kMaxSeq) << "event sequence space exhausted";
  const std::uint64_t seq = next_seq_++;
  return (seq << kKeyShift) | (callback ? kCallbackBit : 0) | slot;
}

void Engine::schedule_handle(Time t, std::coroutine_handle<> h) {
  DVX_CHECK(t >= now_) << "cannot schedule into the past: t=" << t
                       << " now=" << now_;
  std::uint32_t slot;
  if (!handle_free_.empty()) {
    slot = handle_free_.back();
    handle_free_.pop_back();
    handle_slab_[slot] = h;
  } else {
    slot = static_cast<std::uint32_t>(handle_slab_.size());
    DVX_CHECK(slot <= kSlotMask) << "too many outstanding coroutine events";
    handle_slab_.push_back(h);
  }
  heap_push(t, make_key(/*callback=*/false, slot));
}

void Engine::schedule(Time t, std::function<void()> fn) {
  DVX_CHECK(t >= now_) << "cannot schedule into the past: t=" << t
                       << " now=" << now_;
  std::uint32_t slot;
  if (!fn_free_.empty()) {
    slot = fn_free_.back();
    fn_free_.pop_back();
    fn_slab_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(fn_slab_.size());
    DVX_CHECK(slot <= kSlotMask) << "too many outstanding callback events";
    fn_slab_.push_back(std::move(fn));
  }
  heap_push(t, make_key(/*callback=*/true, slot));
}

void Engine::add_auditor(check::InvariantAuditor* auditor) {
  DVX_CHECK(auditor != nullptr);
  auditors_.push_back(auditor);
}

void Engine::remove_auditor(check::InvariantAuditor* auditor) noexcept {
  auditors_.erase(std::remove(auditors_.begin(), auditors_.end(), auditor),
                  auditors_.end());
}

void Engine::run_audits() {
  if (auditors_.empty()) return;
  ++audits_run_;
  for (auto* a : auditors_) a->audit(now_);
}

Time Engine::run() {
  while (heap_.size() > kHeapPad) {
#if defined(__GNUC__) || defined(__clang__)
    {
      // Start the payload fetch before the sift-down: the slab slot of the
      // event about to fire is random relative to insertion order, and the
      // O(log n) sift gives the line time to arrive.
      const std::uint64_t top_key = heap_[kHeapPad].key;
      const auto top_slot = static_cast<std::uint32_t>(top_key & kSlotMask);
      if ((top_key & kCallbackBit) == 0) {
        __builtin_prefetch(&handle_slab_[top_slot]);
      } else {
        __builtin_prefetch(&fn_slab_[top_slot]);
      }
    }
#endif
    const HeapEntry ev = heap_pop();
    // Event-time monotonicity: the queue must never yield an event behind
    // the clock (would reorder causally dependent wake-ups).
    DVX_CHECK(ev.t >= now_) << "non-monotonic event: t=" << ev.t
                            << " behind now=" << now_;
    now_ = ev.t;
#if DVX_CHECK_LEVEL >= 1
    check::context().sim_time_ps = now_;
#endif
    ++events_processed_;
    const auto slot = static_cast<std::uint32_t>(ev.key & kSlotMask);
    if ((ev.key & kCallbackBit) == 0) {
      // Free the slot before resuming: the resumed coroutine may schedule
      // again and should find its own slot first on the free list.
      const std::coroutine_handle<> h = handle_slab_[slot];
      handle_slab_[slot] = {};
      handle_free_.push_back(slot);
      h.resume();
    } else {
      // Move the callback out first — running it may schedule into the slab
      // and invalidate references. Moving never allocates; the slot object
      // is recycled for the next callback of this size class.
      std::function<void()> fn = std::move(fn_slab_[slot]);
      fn_slab_[slot] = nullptr;
      fn_free_.push_back(slot);
      fn();
    }
    if (audit_interval_ != 0 && events_processed_ % audit_interval_ == 0) {
      run_audits();
    }
  }
  // The heap drained: no live entry can tie with a future one, so the
  // tie-break counter rewinds and kMaxSeq bounds a busy period, not a run.
  next_seq_ = 0;
  run_audits();  // drain-time sweep: short runs get audited too
  // Surface failures from simulated processes to the caller (tests rely on it).
  for (auto& r : roots_) {
    if (r.handle && r.handle.promise().exception) {
      std::rethrow_exception(r.handle.promise().exception);
    }
  }
  return now_;
}

bool Engine::all_done() const noexcept {
  for (const auto& r : roots_) {
    if (!r.done) return false;
  }
  return true;
}

}  // namespace dvx::sim
