#pragma once
// Deterministic random number generation for workloads and traffic models.
//
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64: fast, high quality,
// and — unlike std::mt19937 across standard libraries — bit-for-bit stable, so
// simulated runs are reproducible everywhere.

#include <cstdint>

namespace dvx::sim {

/// SplitMix64 step; used both standalone (hashing) and to seed xoshiro.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (for hashing vertex ids, addresses, ...).
constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Derives an independent sub-seed for stream `stream` of a root seed.
/// Used by the experiment layer to give every planned measurement point its
/// own RNG stream: the derivation depends only on (root, stream), never on
/// execution order, so results are identical at any parallelism level.
constexpr std::uint64_t derive_seed(std::uint64_t root, std::uint64_t stream) {
  std::uint64_t state = root ^ mix64(stream + 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace dvx::sim
