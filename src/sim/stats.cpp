#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace dvx::sim {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void LogHistogram::add(std::uint64_t value) {
  const unsigned b = value < 2 ? 0u : static_cast<unsigned>(std::bit_width(value) - 1);
  if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Anchor the tail to the last bucket that actually has mass, not to
  // buckets_.size(): if the scan falls through (floating-point rounding of
  // `target`, or trailing buckets left empty by a future resize path), the
  // reported edge must still bound a recorded sample — the old fall-through
  // reported the vector's upper edge, which can lie above every sample.
  std::size_t last = buckets_.size();
  while (last > 0 && buckets_[last - 1] == 0) --last;
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (std::size_t b = 0; b < last; ++b) {
    if (buckets_[b] == 0) continue;  // never report a bucket with no mass
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
    // q == 0 (target already met): the lower edge of the first bucket with
    // mass, not the midpoint of whatever empty buckets precede it.
    if (target <= seen) return lo;
    seen += static_cast<double>(buckets_[b]);
    if (seen >= target) {
      const double hi = std::ldexp(1.0, static_cast<int>(b + 1));
      return (lo + hi) / 2.0;
    }
  }
  // Rounding pushed target past the accumulated mass: the upper edge of the
  // last non-empty bucket bounds every recorded sample.
  return std::ldexp(1.0, static_cast<int>(last));
}

double LogHistogram::quantile_upper_bound(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::size_t last = buckets_.size();
  while (last > 0 && buckets_[last - 1] == 0) --last;
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (std::size_t b = 0; b < last; ++b) {
    if (buckets_[b] == 0) continue;
    seen += static_cast<double>(buckets_[b]);
    // The q-th sample lies in this bucket: its upper edge bounds it. q == 0
    // lands here too (first non-empty bucket), which is still a bound.
    if (seen >= target) return std::ldexp(1.0, static_cast<int>(b + 1));
  }
  // Rounding pushed target past the accumulated mass; the upper edge of the
  // last non-empty bucket bounds every recorded sample.
  return std::ldexp(1.0, static_cast<int>(last));
}

std::string LogHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    os << "[2^" << b << ",2^" << b + 1 << "): " << buckets_[b] << "\n";
  }
  return os.str();
}

double harmonic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double denom = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / denom;
}

}  // namespace dvx::sim
