#pragma once
// Virtual-time types for the discrete-event simulation.
//
// All simulated clocks are 64-bit signed picosecond counts. Picoseconds give
// sub-nanosecond resolution (the Data Vortex switch cycle is a few ns) while
// still covering ~106 days of simulated time, far beyond any run here.

#include <cstdint>

namespace dvx::sim {

/// Absolute virtual time in picoseconds since the start of the simulation.
using Time = std::int64_t;
/// A span of virtual time in picoseconds.
using Duration = std::int64_t;

inline constexpr Duration kPicosecond = 1;
inline constexpr Duration kNanosecond = 1'000;
inline constexpr Duration kMicrosecond = 1'000'000;
inline constexpr Duration kMillisecond = 1'000'000'000;
inline constexpr Duration kSecond = 1'000'000'000'000;

/// Builds a Duration from a (possibly fractional) count of nanoseconds.
constexpr Duration ns(double v) { return static_cast<Duration>(v * kNanosecond); }
/// Builds a Duration from a (possibly fractional) count of microseconds.
constexpr Duration us(double v) { return static_cast<Duration>(v * kMicrosecond); }
/// Builds a Duration from a (possibly fractional) count of milliseconds.
constexpr Duration ms(double v) { return static_cast<Duration>(v * kMillisecond); }
/// Builds a Duration from a (possibly fractional) count of seconds.
constexpr Duration seconds(double v) { return static_cast<Duration>(v * kSecond); }

/// Converts a virtual time span to floating-point seconds (for reporting).
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / kSecond; }
/// Converts a virtual time span to floating-point microseconds (for reporting).
constexpr double to_us(Duration d) { return static_cast<double>(d) / kMicrosecond; }
/// Converts a virtual time span to floating-point nanoseconds (for reporting).
constexpr double to_ns(Duration d) { return static_cast<double>(d) / kNanosecond; }

/// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole picosecond.
/// A small relative tolerance absorbs floating-point noise so that exact
/// multiples (1 byte at 1 GB/s = 1000 ps) do not round up spuriously.
constexpr Duration transfer_time(std::int64_t bytes, double bytes_per_sec) {
  if (bytes <= 0) return 0;
  const double secs = static_cast<double>(bytes) / bytes_per_sec;
  const double psd = secs * static_cast<double>(kSecond);
  const double adjusted = psd * (1.0 - 1e-9);
  const auto whole = static_cast<Duration>(adjusted);
  return whole + (static_cast<double>(whole) < adjusted ? 1 : 0);
}

/// Sustained rate implied by moving `bytes` in `d` (bytes/second).
constexpr double rate_bytes_per_sec(std::int64_t bytes, Duration d) {
  if (d <= 0) return 0.0;
  return static_cast<double>(bytes) / to_seconds(d);
}

}  // namespace dvx::sim
