#include "sim/sync.hpp"

#include "check/check.hpp"

namespace dvx::sim {

void Condition::notify_all(Time at) {
  if (at < engine_.now()) at = engine_.now();
  std::vector<std::shared_ptr<Waiter>> woken;
  woken.swap(waiters_);
  for (auto& rec : woken) {
    DVX_CHECK(rec != nullptr);
    if (!rec->fired) {
      rec->fired = true;
      engine_.schedule_handle(at, rec->handle, rec->shard);
    }
  }
}

void Condition::notify_one(Time at) {
  if (at < engine_.now()) at = engine_.now();
  while (!waiters_.empty()) {
    auto rec = waiters_.front();
    waiters_.erase(waiters_.begin());
    DVX_CHECK(rec != nullptr);
    if (!rec->fired) {
      rec->fired = true;
      engine_.schedule_handle(at, rec->handle, rec->shard);
      return;
    }
  }
}

Coro<void> Semaphore::acquire() {
  while (count_ <= 0) co_await cond_.wait();
  // The wake-up contract: a waiter only resumes once a unit is available.
  DVX_CHECK(count_ > 0) << "semaphore resumed with no unit available";
  --count_;
}

void Semaphore::release(Time at, std::int64_t n) {
  DVX_CHECK(n > 0) << "release of " << n << " units";
  count_ += n;
  cond_.notify_all(at);
}

Coro<void> PhaseBarrier::arrive_and_wait() {
  const std::uint64_t my_phase = phase_;
  // Epoch sanity: no party may arrive twice before the phase flips.
  DVX_CHECK(arrived_ < parties_)
      << "barrier over-arrival: " << arrived_ + 1 << " of " << parties_
      << " parties in phase " << phase_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++phase_;
    cond_.notify_all(engine_.now());
    co_return;
  }
  while (phase_ == my_phase) co_await cond_.wait();
  DVX_CHECK(phase_ > my_phase) << "barrier phase went backwards";
}

}  // namespace dvx::sim
