#include "sim/sync.hpp"

namespace dvx::sim {

void Condition::notify_all(Time at) {
  if (at < engine_.now()) at = engine_.now();
  std::vector<std::shared_ptr<Waiter>> woken;
  woken.swap(waiters_);
  for (auto& rec : woken) {
    if (!rec->fired) {
      rec->fired = true;
      engine_.schedule_handle(at, rec->handle);
    }
  }
}

void Condition::notify_one(Time at) {
  if (at < engine_.now()) at = engine_.now();
  while (!waiters_.empty()) {
    auto rec = waiters_.front();
    waiters_.erase(waiters_.begin());
    if (!rec->fired) {
      rec->fired = true;
      engine_.schedule_handle(at, rec->handle);
      return;
    }
  }
}

Coro<void> Semaphore::acquire() {
  while (count_ <= 0) co_await cond_.wait();
  --count_;
}

void Semaphore::release(Time at, std::int64_t n) {
  count_ += n;
  cond_.notify_all(at);
}

Coro<void> PhaseBarrier::arrive_and_wait() {
  const std::uint64_t my_phase = phase_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++phase_;
    cond_.notify_all(engine_.now());
    co_return;
  }
  while (phase_ == my_phase) co_await cond_.wait();
}

}  // namespace dvx::sim
