#pragma once
// Execution tracer modeled on what the paper extracts with Extrae (Fig. 5):
// per-node state intervals (compute vs communication) and point-to-point
// message lines. Benches render the trace as CSV plus summary statistics,
// including a destination-regularity metric quantifying the paper's
// observation that GUPS traffic has "no exploitable regularity for
// aggregating messages directed to the same destination".

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dvx::sim {

enum class NodeState : std::uint8_t {
  kCompute,
  kSend,
  kRecv,
  kWait,     // blocked in a wait/poll (MPI_Wait, group-counter wait, FIFO poll)
  kBarrier,
  kNumStates,  // sentinel — keep last; sizes every per-state array
};

/// Number of real states; per-state arrays (summaries, glyph tables) size
/// themselves from this so adding a state cannot silently truncate them.
inline constexpr std::size_t kNodeStateCount =
    static_cast<std::size_t>(NodeState::kNumStates);

const char* to_string(NodeState s);

struct StateInterval {
  int node;
  NodeState state;
  Time begin;
  Time end;
};

struct MessageRecord {
  int src;
  int dst;
  Time send_time;
  Time recv_time;
  std::int64_t bytes;
  int tag;
};

struct StateSummary {
  Duration per_state[kNodeStateCount] = {};
  Duration total() const;
  double fraction(NodeState s) const;
};

/// Snapshot of a tracer's append positions (per-node state counts plus the
/// message count). obs::absorb_trace copies everything recorded after a
/// mark, so one collector point can run the cluster several times and keep
/// only the current run's records.
struct TraceMark {
  std::vector<std::size_t> states_per_node;
  std::size_t messages = 0;
};

/// Concurrency contract (DESIGN.md §15): state intervals are bucketed per
/// node, so rank coroutines on different engine shards may record_state
/// concurrently — each touches only its own node's bucket — provided
/// ensure_nodes() pre-sized the outer vector. record_message and every
/// reader (states(), summaries, CSV) are single-threaded: messages are only
/// recorded from window-close resolutions and serial contexts. The flat
/// states() view is rebuilt lazily in canonical node-major order (node id,
/// then per-node record order), which is a pure function of the simulation
/// content — identical at every shard layout.
class Tracer {
 public:
  /// A disabled tracer drops records with near-zero cost.
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}

  // The atomic dirty flag deletes the defaulted copy/move operations;
  // single-threaded transfers (factory returns, test fixtures) stay legal
  // through these explicit ones. Never copy/move a tracer mid-run.
  Tracer(const Tracer& other)
      : enabled_(other.enabled_),
        states_by_node_(other.states_by_node_),
        messages_(other.messages_),
        flat_dirty_(true) {}
  Tracer(Tracer&& other) noexcept
      : enabled_(other.enabled_),
        states_by_node_(std::move(other.states_by_node_)),
        messages_(std::move(other.messages_)),
        flat_dirty_(true) {}
  Tracer& operator=(const Tracer& other) {
    enabled_ = other.enabled_;
    states_by_node_ = other.states_by_node_;
    messages_ = other.messages_;
    flat_states_.clear();
    flat_dirty_.store(true, std::memory_order_relaxed);
    return *this;
  }
  Tracer& operator=(Tracer&& other) noexcept {
    enabled_ = other.enabled_;
    states_by_node_ = std::move(other.states_by_node_);
    messages_ = std::move(other.messages_);
    flat_states_.clear();
    flat_dirty_.store(true, std::memory_order_relaxed);
    return *this;
  }

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  /// Pre-sizes the per-node buckets; required before concurrent recording.
  void ensure_nodes(int nodes);

  void record_state(int node, NodeState s, Time begin, Time end);
  void record_message(int src, int dst, Time send_time, Time recv_time,
                      std::int64_t bytes, int tag);

  /// Flat node-major view of every state interval (lazily rebuilt).
  const std::vector<StateInterval>& states() const;
  const std::vector<MessageRecord>& messages() const noexcept { return messages_; }
  const std::vector<std::vector<StateInterval>>& states_by_node() const noexcept {
    return states_by_node_;
  }

  /// Current append positions, for later suffix extraction.
  TraceMark mark() const;

  /// Per-node time-in-state totals.
  std::map<int, StateSummary> state_summary() const;

  /// Mean over sources of (largest per-destination share within consecutive
  /// windows of `window` sends). 1.0 = perfectly aggregatable by destination;
  /// ~1/(nodes-1) = uniformly scattered (GUPS-like).
  double destination_regularity(std::size_t window = 64) const;

  /// Writes "state,node,state_name,begin_ps,end_ps" and
  /// "msg,src,dst,send_ps,recv_ps,bytes,tag" rows.
  void write_csv(const std::string& path) const;

  /// ASCII timeline (one row per node, `columns` buckets wide), Fig.5-style.
  std::string ascii_timeline(int columns = 100) const;

  void clear();

 private:
  bool enabled_;
  std::vector<std::vector<StateInterval>> states_by_node_;
  std::vector<MessageRecord> messages_;
  // Lazy flat cache for states(); the dirty flag is atomic only so
  // concurrent record_state calls may all set it without a race.
  mutable std::vector<StateInterval> flat_states_;
  mutable std::atomic<bool> flat_dirty_{false};
};

/// RAII helper charging a state interval on scope exit.
class ScopedState {
 public:
  ScopedState(Tracer& tracer, int node, NodeState s, const Time& now_ref)
      : tracer_(tracer), node_(node), state_(s), now_(now_ref), begin_(now_ref) {}
  ~ScopedState() { tracer_.record_state(node_, state_, begin_, now_); }
  ScopedState(const ScopedState&) = delete;
  ScopedState& operator=(const ScopedState&) = delete;

 private:
  Tracer& tracer_;
  int node_;
  NodeState state_;
  const Time& now_;
  Time begin_;
};

}  // namespace dvx::sim
