#pragma once
// Execution tracer modeled on what the paper extracts with Extrae (Fig. 5):
// per-node state intervals (compute vs communication) and point-to-point
// message lines. Benches render the trace as CSV plus summary statistics,
// including a destination-regularity metric quantifying the paper's
// observation that GUPS traffic has "no exploitable regularity for
// aggregating messages directed to the same destination".

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dvx::sim {

enum class NodeState : std::uint8_t {
  kCompute,
  kSend,
  kRecv,
  kWait,     // blocked in a wait/poll (MPI_Wait, group-counter wait, FIFO poll)
  kBarrier,
  kNumStates,  // sentinel — keep last; sizes every per-state array
};

/// Number of real states; per-state arrays (summaries, glyph tables) size
/// themselves from this so adding a state cannot silently truncate them.
inline constexpr std::size_t kNodeStateCount =
    static_cast<std::size_t>(NodeState::kNumStates);

const char* to_string(NodeState s);

struct StateInterval {
  int node;
  NodeState state;
  Time begin;
  Time end;
};

struct MessageRecord {
  int src;
  int dst;
  Time send_time;
  Time recv_time;
  std::int64_t bytes;
  int tag;
};

struct StateSummary {
  Duration per_state[kNodeStateCount] = {};
  Duration total() const;
  double fraction(NodeState s) const;
};

class Tracer {
 public:
  /// A disabled tracer drops records with near-zero cost.
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  void record_state(int node, NodeState s, Time begin, Time end);
  void record_message(int src, int dst, Time send_time, Time recv_time,
                      std::int64_t bytes, int tag);

  const std::vector<StateInterval>& states() const noexcept { return states_; }
  const std::vector<MessageRecord>& messages() const noexcept { return messages_; }

  /// Per-node time-in-state totals.
  std::map<int, StateSummary> state_summary() const;

  /// Mean over sources of (largest per-destination share within consecutive
  /// windows of `window` sends). 1.0 = perfectly aggregatable by destination;
  /// ~1/(nodes-1) = uniformly scattered (GUPS-like).
  double destination_regularity(std::size_t window = 64) const;

  /// Writes "state,node,state_name,begin_ps,end_ps" and
  /// "msg,src,dst,send_ps,recv_ps,bytes,tag" rows.
  void write_csv(const std::string& path) const;

  /// ASCII timeline (one row per node, `columns` buckets wide), Fig.5-style.
  std::string ascii_timeline(int columns = 100) const;

  void clear();

 private:
  bool enabled_;
  std::vector<StateInterval> states_;
  std::vector<MessageRecord> messages_;
};

/// RAII helper charging a state interval on scope exit.
class ScopedState {
 public:
  ScopedState(Tracer& tracer, int node, NodeState s, const Time& now_ref)
      : tracer_(tracer), node_(node), state_(s), now_(now_ref), begin_(now_ref) {}
  ~ScopedState() { tracer_.record_state(node_, state_, begin_, now_); }
  ScopedState(const ScopedState&) = delete;
  ScopedState& operator=(const ScopedState&) = delete;

 private:
  Tracer& tracer_;
  int node_;
  NodeState state_;
  const Time& now_;
  Time begin_;
};

}  // namespace dvx::sim
