#pragma once
// Coroutine synchronization primitives on top of the DES engine.
//
// All wake-ups carry an explicit virtual time: a notifier that models an event
// happening at time t resumes waiters at max(now, t), never earlier.

#include <coroutine>
#include <cstddef>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dvx::sim {

/// Broadcast condition: processes wait() or wait_until(t); notify_all(at)
/// wakes all current waiters. A waiter record is tombstoned on first wake so
/// a notify and a timeout can never double-resume the same coroutine.
class Condition {
 public:
  explicit Condition(Engine& engine) : engine_(engine) {}

  /// Awaitable parking the current coroutine until the next notify.
  auto wait() {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cond.waiters_.push_back(
            std::make_shared<Waiter>(Waiter{h, false, Engine::current_shard()}));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Awaitable parking the current coroutine until the next notify OR until
  /// virtual time `deadline`, whichever comes first.
  auto wait_until(Time deadline) {
    struct Awaiter {
      Condition& cond;
      Time deadline;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        auto rec =
            std::make_shared<Waiter>(Waiter{h, false, Engine::current_shard()});
        cond.waiters_.push_back(rec);
        Engine& eng = cond.engine_;
        const Time t = deadline < eng.now() ? eng.now() : deadline;
        eng.schedule(
            t,
            [rec, &eng] {
              if (!rec->fired) {
                rec->fired = true;
                eng.schedule_handle(eng.now(), rec->handle, rec->shard);
              }
            },
            rec->shard);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, deadline};
  }

  /// Wakes every current waiter at virtual time `at` (clamped to now).
  void notify_all(Time at);

  /// Wakes the oldest still-pending waiter at virtual time `at`.
  void notify_one(Time at);

  std::size_t waiting() const noexcept { return waiters_.size(); }
  Engine& engine() noexcept { return engine_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    bool fired;
    /// The shard the waiter suspended on (Engine::current_shard() at
    /// await_suspend; -1 outside dispatch). Notifiers resume the waiter on
    /// its own shard so a cross-shard notify (e.g. from a window hook) never
    /// migrates a rank coroutine off its home shard.
    int shard;
  };
  friend struct WaiterAccess;

  Engine& engine_;
  std::vector<std::shared_ptr<Waiter>> waiters_;
};

/// Counting semaphore with timed releases.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_(engine), count_(initial), cond_(engine) {}

  /// Acquires one unit, suspending while the count is zero.
  Coro<void> acquire();

  /// Releases `n` units at virtual time `at` (clamped to now).
  void release(Time at, std::int64_t n = 1);

  std::int64_t count() const noexcept { return count_; }

 private:
  Engine& engine_;
  std::int64_t count_;
  Condition cond_;
};

/// Typed message queue: values become visible at their arrival time.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine), cond_(engine) {}

  /// Deposits a value that becomes receivable at time `at`. Waiting
  /// receivers re-evaluate immediately (a later push can carry an earlier
  /// arrival than the one a receiver is currently sleeping towards).
  void push(Time at, T value) {
    if (at < engine_.now()) at = engine_.now();
    items_.push_back(Item{at, std::move(value)});
    cond_.notify_all(engine_.now());
  }

  /// Receives the earliest-arriving value, waiting for virtual arrival time.
  Coro<T> receive() {
    for (;;) {
      if (!items_.empty()) {
        // Earliest arrival wins; FIFO among equal times (stable scan).
        std::size_t best = 0;
        for (std::size_t i = 1; i < items_.size(); ++i) {
          if (items_[i].at < items_[best].at) best = i;
        }
        const Time at = items_[best].at;
        if (at <= engine_.now()) {
          T v = std::move(items_[best].value);
          items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(best));
          co_return v;
        }
        // Sleep to the earliest known arrival, but wake early if a new push
        // lands so the target arrival can be re-evaluated.
        co_await cond_.wait_until(at);
        continue;
      }
      co_await cond_.wait();
    }
  }

  /// Non-waiting probe: true if a value is receivable right now.
  bool ready() const noexcept {
    for (const auto& it : items_) {
      if (it.at <= engine_.now()) return true;
    }
    return false;
  }

  std::size_t size() const noexcept { return items_.size(); }

 private:
  struct Item {
    Time at;
    T value;
  };
  Engine& engine_;
  Condition cond_;
  std::deque<Item> items_;
};

/// N-party reusable barrier (test utility; the simulated networks implement
/// their own barriers with network traffic).
class PhaseBarrier {
 public:
  PhaseBarrier(Engine& engine, std::size_t parties)
      : engine_(engine), parties_(parties), cond_(engine) {}

  Coro<void> arrive_and_wait();

 private:
  Engine& engine_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t phase_ = 0;
  Condition cond_;
};

}  // namespace dvx::sim
