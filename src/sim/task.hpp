#pragma once
// Lazy coroutine task used for all simulated node programs and sub-routines.
//
// Coro<T> is a lazily-started coroutine: creating one does nothing until it is
// either co_await-ed by another coroutine (symmetric transfer wires the caller
// up as the continuation) or handed to Engine::spawn() as a top-level process.

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace dvx::sim {

template <typename T>
class Coro;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};  // resumed when this coroutine finishes
  std::exception_ptr exception{};
  bool* done_flag = nullptr;  // set by Engine::spawn for root tasks

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.done_flag != nullptr) *p.done_flag = true;
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value{};
  Coro<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Coro<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T>
class [[nodiscard]] Coro {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Coro() = default;
  explicit Coro(Handle h) : handle_(h) {}
  Coro(Coro&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Coro& operator=(Coro&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Releases ownership of the raw handle (used by Engine::spawn).
  Handle release() noexcept { return std::exchange(handle_, {}); }
  Handle handle() const noexcept { return handle_; }

  /// Awaiting a Coro starts it and resumes the awaiter when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
        h.promise().continuation = caller;
        return h;  // symmetric transfer: start the child now
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {
template <typename T>
Coro<T> Promise<T>::get_return_object() noexcept {
  return Coro<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}
inline Coro<void> Promise<void>::get_return_object() noexcept {
  return Coro<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}
}  // namespace detail

}  // namespace dvx::sim
