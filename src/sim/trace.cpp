#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dvx::sim {

const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::kCompute: return "compute";
    case NodeState::kSend: return "send";
    case NodeState::kRecv: return "recv";
    case NodeState::kWait: return "wait";
    case NodeState::kBarrier: return "barrier";
    case NodeState::kNumStates: break;  // sentinel, never recorded
  }
  return "?";
}

Duration StateSummary::total() const {
  Duration t = 0;
  for (Duration d : per_state) t += d;
  return t;
}

double StateSummary::fraction(NodeState s) const {
  const Duration t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(per_state[static_cast<int>(s)]) / static_cast<double>(t);
}

void Tracer::ensure_nodes(int nodes) {
  if (nodes > 0 && static_cast<std::size_t>(nodes) > states_by_node_.size()) {
    states_by_node_.resize(static_cast<std::size_t>(nodes));
  }
}

void Tracer::record_state(int node, NodeState s, Time begin, Time end) {
  if (!enabled_ || end <= begin) return;
  const auto idx = static_cast<std::size_t>(node < 0 ? 0 : node);
  // Growth happens only in single-threaded contexts; concurrent recorders
  // must have been preceded by ensure_nodes().
  if (idx >= states_by_node_.size()) states_by_node_.resize(idx + 1);
  states_by_node_[idx].push_back(StateInterval{node, s, begin, end});
  flat_dirty_.store(true, std::memory_order_relaxed);
}

void Tracer::record_message(int src, int dst, Time send_time, Time recv_time,
                            std::int64_t bytes, int tag) {
  if (!enabled_) return;
  messages_.push_back(MessageRecord{src, dst, send_time, recv_time, bytes, tag});
}

const std::vector<StateInterval>& Tracer::states() const {
  if (flat_dirty_.exchange(false, std::memory_order_relaxed)) {
    flat_states_.clear();
    std::size_t total = 0;
    for (const auto& bucket : states_by_node_) total += bucket.size();
    flat_states_.reserve(total);
    for (const auto& bucket : states_by_node_) {
      flat_states_.insert(flat_states_.end(), bucket.begin(), bucket.end());
    }
  }
  return flat_states_;
}

TraceMark Tracer::mark() const {
  TraceMark m;
  m.states_per_node.reserve(states_by_node_.size());
  for (const auto& bucket : states_by_node_) {
    m.states_per_node.push_back(bucket.size());
  }
  m.messages = messages_.size();
  return m;
}

std::map<int, StateSummary> Tracer::state_summary() const {
  std::map<int, StateSummary> out;
  for (const auto& iv : states()) {
    out[iv.node].per_state[static_cast<int>(iv.state)] += iv.end - iv.begin;
  }
  return out;
}

double Tracer::destination_regularity(std::size_t window) const {
  if (window == 0 || messages_.empty()) return 0.0;
  // Group sends per source in emission order (messages_ is already in
  // nondecreasing send-time order because the DES runs in time order).
  // Ordered maps: the accumulation below sums doubles, and unordered
  // iteration order would make the report value platform-dependent.
  std::map<int, std::vector<int>> per_src;
  for (const auto& m : messages_) per_src[m.src].push_back(m.dst);

  double acc = 0.0;
  std::size_t windows = 0;
  for (const auto& [src, dsts] : per_src) {
    for (std::size_t base = 0; base + window <= dsts.size(); base += window) {
      std::map<int, std::size_t> counts;
      std::size_t best = 0;
      for (std::size_t i = 0; i < window; ++i) {
        best = std::max(best, ++counts[dsts[base + i]]);
      }
      acc += static_cast<double>(best) / static_cast<double>(window);
      ++windows;
    }
  }
  return windows ? acc / static_cast<double>(windows) : 0.0;
}

void Tracer::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Tracer: cannot open " + path);
  f << "kind,a,b,t0_ps,t1_ps,bytes,tag\n";
  for (const auto& iv : states()) {
    f << "state," << iv.node << ',' << to_string(iv.state) << ',' << iv.begin << ','
      << iv.end << ",,\n";
  }
  for (const auto& m : messages_) {
    f << "msg," << m.src << ',' << m.dst << ',' << m.send_time << ',' << m.recv_time << ','
      << m.bytes << ',' << m.tag << "\n";
  }
}

std::string Tracer::ascii_timeline(int columns) const {
  const auto& all = states();
  if (all.empty()) return "(empty trace)\n";
  Time t0 = all.front().begin, t1 = all.front().end;
  int max_node = 0;
  for (const auto& iv : all) {
    t0 = std::min(t0, iv.begin);
    t1 = std::max(t1, iv.end);
    max_node = std::max(max_node, iv.node);
  }
  if (t1 <= t0) t1 = t0 + 1;
  // One char per bucket: the state covering the majority of the bucket.
  // compute='#', send='>', recv='<', wait='.', barrier='|'
  static constexpr char glyph[] = {'#', '>', '<', '.', '|'};
  static_assert(sizeof(glyph) == kNodeStateCount,
                "glyph table must cover every NodeState");
  std::vector<std::vector<Duration>> cover(
      static_cast<std::size_t>(max_node + 1),
      std::vector<Duration>(static_cast<std::size_t>(columns) * kNodeStateCount, 0));
  const double scale = static_cast<double>(columns) / static_cast<double>(t1 - t0);
  for (const auto& iv : all) {
    int c0 = static_cast<int>(static_cast<double>(iv.begin - t0) * scale);
    int c1 = static_cast<int>(static_cast<double>(iv.end - t0) * scale);
    c0 = std::clamp(c0, 0, columns - 1);
    c1 = std::clamp(c1, c0, columns - 1);
    for (int c = c0; c <= c1; ++c) {
      cover[static_cast<std::size_t>(iv.node)]
           [static_cast<std::size_t>(c) * kNodeStateCount +
            static_cast<std::size_t>(iv.state)] += iv.end - iv.begin;
    }
  }
  std::ostringstream os;
  os << "legend: #=compute >=send <=recv .=wait |=barrier\n";
  for (int n = 0; n <= max_node; ++n) {
    os << "node " << (n < 10 ? " " : "") << n << " ";
    for (int c = 0; c < columns; ++c) {
      int best = -1;
      Duration best_d = 0;
      for (std::size_t s = 0; s < kNodeStateCount; ++s) {
        const Duration d = cover[static_cast<std::size_t>(n)]
                                [static_cast<std::size_t>(c) * kNodeStateCount + s];
        if (d > best_d) {
          best_d = d;
          best = static_cast<int>(s);
        }
      }
      os << (best < 0 ? ' ' : glyph[best]);
    }
    os << "\n";
  }
  return os.str();
}

void Tracer::clear() {
  states_by_node_.clear();
  messages_.clear();
  flat_states_.clear();
  flat_dirty_.store(false, std::memory_order_relaxed);
}

}  // namespace dvx::sim
