#pragma once
// Streaming statistics used by network models, benches, and reports.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dvx::sim {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double total() const noexcept { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latencies / sizes.
class LogHistogram {
 public:
  void add(std::uint64_t value);
  /// Folds another histogram in (bucketwise sum). Exact: the result equals
  /// replaying both add() streams in any order.
  void merge(const LogHistogram& other);
  std::uint64_t count() const noexcept { return total_; }
  /// Bucket b counts values in [2^b, 2^(b+1)) (bucket 0 holds 0 and 1).
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }
  /// Approximate p-quantile (q in [0,1]) from bucket midpoints. A midpoint
  /// can sit ABOVE every recorded sample of its bucket, so this estimate is
  /// for central quantiles; tail reporting (p99/p999) should use
  /// quantile_upper_bound and clamp to an exact max (obs::Histogram does).
  double quantile(double q) const;
  /// Upper bound of the p-quantile: the UPPER edge of the bucket holding
  /// the q-th sample. Guaranteed >= the true quantile (the midpoint
  /// estimate is not), which is the honest direction for SLO tails.
  double quantile_upper_bound(double q) const;
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Harmonic mean of a sample set (Graph500 reports harmonic-mean TEPS).
double harmonic_mean(const std::vector<double>& xs);

}  // namespace dvx::sim
