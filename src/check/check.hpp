#pragma once
// Build-gated invariant checks for the simulator core (DESIGN.md §7).
//
// Three levels, selected per translation unit by DVX_CHECK_LEVEL (CMake
// option of the same name; the default is 1):
//   0 — every macro compiles to nothing; the condition is type-checked but
//       never evaluated (zero runtime cost, for calibrated perf sweeps).
//   1 — DVX_CHECK / DVX_CHECK_EQ are live: cheap O(1) invariants on hot
//       paths plus explicit audit entry points. On in release builds.
//   2 — additionally DVX_CHECK_SOON is live: expensive audit-epoch checks
//       (full conservation scans, per-packet position legality, FIFO-order
//       tracking maps), and the engine/fabric automatic audit cadences
//       default on. Used by tests and the CI check-level-2 sweep.
//
// A failed check builds a structured Failure (expression, file:line,
// message, simulated time, node id, backend) from the thread-local Context
// maintained by the engine and cluster, hands it to the installed handler
// (default: print a structured report to stderr, then throw CheckError),
// and — macros only ever *observe* state — never mutates simulation state,
// so benchmark output is byte-identical across check levels.
//
// Style: DVX_CHECK(cond) << "extra context " << value; the message stream
// is only evaluated on failure. Checks belong in .cpp files (or test TUs),
// never in shared headers, so one build has one coherent level per library.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#ifndef DVX_CHECK_LEVEL
#define DVX_CHECK_LEVEL 1
#endif

#if DVX_CHECK_LEVEL < 0 || DVX_CHECK_LEVEL > 2
#error "DVX_CHECK_LEVEL must be 0, 1, or 2"
#endif

namespace dvx::check {

/// Everything known about one failed invariant.
struct Failure {
  std::string expression;  ///< stringified condition
  std::string file;
  int line = 0;
  std::string message;      ///< streamed extra context ("" = none)
  std::int64_t sim_time_ps = -1;  ///< virtual time; -1 = no engine running
  int node = -1;                  ///< simulated node id; -1 = unknown
  std::string backend;            ///< "dv", "mpi", or "" when outside a run
};

/// Human-readable multi-line report (also embedded in CheckError::what()).
std::string format(const Failure& failure);

/// Thrown by the default handler (and by fail() when a custom handler
/// returns without throwing nothing is rethrown — see set_handler).
class CheckError : public std::logic_error {
 public:
  explicit CheckError(Failure failure);
  const Failure& failure() const noexcept { return failure_; }

 private:
  Failure failure_;
};

/// Per-thread context stamped into failures. The engine keeps sim_time_ps
/// current; ScopedNode / ScopedBackend scope the other two fields.
struct Context {
  std::int64_t sim_time_ps = -1;
  int node = -1;
  const char* backend = "";
};
Context& context() noexcept;

/// RAII: names the simulated node whose invariants run in this scope.
class ScopedNode {
 public:
  explicit ScopedNode(int node) noexcept : prev_(context().node) {
    context().node = node;
  }
  ~ScopedNode() { context().node = prev_; }
  ScopedNode(const ScopedNode&) = delete;
  ScopedNode& operator=(const ScopedNode&) = delete;

 private:
  int prev_;
};

/// RAII: names the backend ("dv" / "mpi") active in this scope.
class ScopedBackend {
 public:
  explicit ScopedBackend(const char* backend) noexcept
      : prev_(context().backend) {
    context().backend = backend;
  }
  ~ScopedBackend() { context().backend = prev_; }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const char* prev_;
};

/// Failure sink. The handler may throw (aborting the simulated run with its
/// own exception) or return, in which case fail() throws CheckError — an
/// invariant violation never continues silently. Returns the previous
/// handler; pass nullptr to restore the default. Process-global: tests that
/// install a capturing handler must restore it (see ScopedHandler).
using Handler = void (*)(const Failure&);
Handler set_handler(Handler handler) noexcept;

/// RAII handler swap for tests.
class ScopedHandler {
 public:
  explicit ScopedHandler(Handler handler) noexcept
      : prev_(set_handler(handler)) {}
  ~ScopedHandler() { set_handler(prev_); }
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;

 private:
  Handler prev_;
};

/// Builds the Failure from the thread-local context and dispatches it.
/// Always throws (CheckError unless the handler threw first).
[[noreturn]] void fail(const char* expression, const char* file, int line,
                       const std::string& message);

/// The check level check.cpp itself was compiled at — the library's level,
/// which governs engine/fabric audit-cadence defaults at runtime.
int compiled_level() noexcept;

/// Default automatic audit cadence (events between engine audit sweeps):
/// nonzero only when the library is compiled at level >= 2.
std::uint64_t default_audit_interval() noexcept;

namespace detail {

/// Accumulates the streamed failure message; fired by Voidify::operator&.
class FailStream {
 public:
  FailStream(const char* expression, const char* file, int line) noexcept
      : expression_(expression), file_(file), line_(line) {}
  template <typename T>
  FailStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  const char* expression_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

struct Voidify {
  [[noreturn]] void operator&(FailStream& s) {
    fail(s.expression_, s.file_, s.line_, s.os_.str());
  }
  [[noreturn]] void operator&(FailStream&& s) {
    fail(s.expression_, s.file_, s.line_, s.os_.str());
  }
};

}  // namespace detail
}  // namespace dvx::check

// The ternary keeps the condition and the message stream fully type-checked
// at every level while guaranteeing neither is evaluated when the check is
// compiled out (the constant fold removes the dead branch). `&` binds looser
// than `<<`, so trailing `<< ...` message parts attach to the FailStream.
#define DVX_CHECK_AT_(level, cond)                                         \
  ((DVX_CHECK_LEVEL < (level)) || (cond))                                  \
      ? (void)0                                                            \
      : ::dvx::check::detail::Voidify{} &                                  \
            ::dvx::check::detail::FailStream(#cond, __FILE__, __LINE__)

/// Cheap O(1) invariant; live at DVX_CHECK_LEVEL >= 1.
#define DVX_CHECK(cond) DVX_CHECK_AT_(1, cond)

/// Equality invariant reporting both operands; live at level >= 1.
#define DVX_CHECK_EQ(a, b)                                                 \
  DVX_CHECK_AT_(1, (a) == (b)) << "lhs " #a " = " << (a) << ", rhs " #b    \
                               << " = " << (b) << ". "

/// Audit-epoch invariant — a condition that need only hold "soon" (at the
/// next audit epoch, e.g. conservation totals that are transiently split
/// across in-flight state). Expensive; live only at level >= 2.
#define DVX_CHECK_SOON(cond) DVX_CHECK_AT_(2, cond)

/// Equality form of DVX_CHECK_SOON.
#define DVX_CHECK_SOON_EQ(a, b)                                            \
  DVX_CHECK_AT_(2, (a) == (b)) << "lhs " #a " = " << (a) << ", rhs " #b    \
                               << " = " << (b) << ". "
