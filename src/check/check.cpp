#include "check/check.hpp"

#include <atomic>
#include <iostream>
#include <sstream>

namespace dvx::check {

namespace {

void default_handler(const Failure& failure) {
  std::cerr << format(failure) << std::flush;
}

std::atomic<Handler> g_handler{&default_handler};

}  // namespace

Context& context() noexcept {
  thread_local Context ctx;
  return ctx;
}

std::string format(const Failure& failure) {
  std::ostringstream os;
  os << "DVX_CHECK failed: " << failure.expression << "\n";
  os << "  at " << failure.file << ":" << failure.line << "\n";
  if (!failure.message.empty()) os << "  detail: " << failure.message << "\n";
  if (failure.sim_time_ps >= 0) {
    os << "  sim time: " << failure.sim_time_ps << " ps\n";
  }
  if (failure.node >= 0) os << "  node: " << failure.node << "\n";
  if (!failure.backend.empty()) os << "  backend: " << failure.backend << "\n";
  return os.str();
}

CheckError::CheckError(Failure failure)
    : std::logic_error(format(failure)), failure_(std::move(failure)) {}

Handler set_handler(Handler handler) noexcept {
  if (handler == nullptr) handler = &default_handler;
  return g_handler.exchange(handler);
}

void fail(const char* expression, const char* file, int line,
          const std::string& message) {
  Failure failure;
  failure.expression = expression;
  failure.file = file;
  failure.line = line;
  failure.message = message;
  const Context& ctx = context();
  failure.sim_time_ps = ctx.sim_time_ps;
  failure.node = ctx.node;
  failure.backend = ctx.backend;
  g_handler.load()(failure);
  // A handler that returns still aborts the violating run: an invariant
  // violation must never continue silently.
  throw CheckError(std::move(failure));
}

int compiled_level() noexcept { return DVX_CHECK_LEVEL; }

std::uint64_t default_audit_interval() noexcept {
  return DVX_CHECK_LEVEL >= 2 ? 4096 : 0;
}

}  // namespace dvx::check
