#pragma once
// Invariant-audit hook interface (DESIGN.md §7).
//
// Components whose invariants only hold at epoch boundaries (conservation
// totals split across in-flight state, order-tracking maps) implement
// InvariantAuditor and register with the owning sim::Engine. The engine
// invokes audit() every `audit_interval` dispatched events (default: 4096
// when the library is built at DVX_CHECK_LEVEL >= 2, disabled otherwise —
// see check::default_audit_interval) and once more when the event queue
// drains, so short runs are audited too. Audit bodies are made of DVX_CHECK
// / DVX_CHECK_SOON statements and must not mutate simulation state.

#include <cstdint>

namespace dvx::check {

class InvariantAuditor {
 public:
  virtual ~InvariantAuditor() = default;

  /// Verifies the component's epoch invariants at virtual time `now_ps`.
  /// Must be observational: no simulation state may change.
  virtual void audit(std::int64_t now_ps) = 0;
};

}  // namespace dvx::check
