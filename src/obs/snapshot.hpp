#pragma once
// Snapshot serializer for the obs metrics registry: a versioned
// `dvx-metrics/v1` JSON document (DESIGN.md §8). Metrics serialize in
// sorted (name, labels) order with insertion-ordered keys inside each
// entry, so two registries holding the same values produce byte-identical
// documents regardless of attach order — the property the bench driver's
// `--jobs` determinism contract extends to metrics files.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/report.hpp"

namespace dvx::obs {

inline constexpr const char* kMetricsSchema = "dvx-metrics/v1";

/// The full document:
///   {"schema": "dvx-metrics/v1", "metrics": [<entry>...]}
/// where an entry is {"name", "labels", "type", ...kind-specific fields}:
///   counter   — "value"
///   gauge     — "last", "count", "mean", "min", "max"
///   histogram — "count", "mean", "min", "max", "p50", "p90", "p99",
///               "buckets": [[bucket_index, count]...] (nonzero buckets;
///               bucket b counts values in [2^b, 2^(b+1)), bucket 0 holds
///               0 and 1, matching sim::LogHistogram)
runtime::Json snapshot_json(const Registry& registry);

/// Serializes snapshot_json() with 2-space indentation plus a trailing
/// newline (the layout the golden tests pin down).
void write_snapshot(const Registry& registry, std::ostream& os);

/// Writes the document to `path`. Returns false on I/O failure.
bool write_snapshot_file(const Registry& registry, const std::string& path);

}  // namespace dvx::obs
