#pragma once
// Chrome-trace exporter for sim::Tracer (DESIGN.md §8).
//
// Renders the Extrae-style execution trace the paper shows in Fig. 5 —
// per-node compute/communication state intervals plus point-to-point
// message lines — as a Chrome Trace Event Format JSON object loadable by
// chrome://tracing and Perfetto (ui.perfetto.dev):
//   * one "thread" (tid) per simulated node, named via "M" metadata events;
//   * each StateInterval becomes a complete ("X") duration event whose
//     timestamp/duration are the *simulated* times in microseconds;
//   * each MessageRecord becomes a flow ("s" -> "f") event pair from the
//     sender's row at send time to the receiver's row at receive time,
//     carrying bytes/tag as args — the message arrows of Fig. 5b.
// Event order in the file is deterministic (metadata, then states, then
// messages, each in record order), so exports are byte-stable.

#include <iosfwd>
#include <string>

#include "runtime/report.hpp"
#include "sim/trace.hpp"

namespace dvx::obs {

inline constexpr const char* kTraceSchema = "dvx-trace/v1";

/// The {"traceEvents": [...], "displayTimeUnit": "ns", "otherData": {...}}
/// JSON object for one recorded trace.
runtime::Json chrome_trace_json(const sim::Tracer& tracer);

/// Serializes chrome_trace_json() with 2-space indentation and a trailing
/// newline (the layout the golden tests pin down).
void write_chrome_trace(const sim::Tracer& tracer, std::ostream& os);

/// Writes the document to `path`. Returns false on I/O failure.
bool write_chrome_trace_file(const sim::Tracer& tracer, const std::string& path);

}  // namespace dvx::obs
