#include "obs/snapshot.hpp"

#include <fstream>
#include <ostream>

namespace dvx::obs {
namespace {

runtime::Json labels_json(const Labels& labels) {
  runtime::Json out = runtime::Json::object();
  for (const auto& [k, v] : labels) out[k] = v;
  return out;
}

runtime::Json entry_json(const Registry::Key& key, const Registry::Metric& metric) {
  runtime::Json e = runtime::Json::object();
  e["name"] = key.first;
  e["labels"] = labels_json(key.second);
  if (const auto* c = std::get_if<Counter>(&metric)) {
    e["type"] = "counter";
    e["value"] = c->value();
  } else if (const auto* g = std::get_if<Gauge>(&metric)) {
    e["type"] = "gauge";
    e["last"] = g->last();
    e["count"] = g->stats().count();
    e["mean"] = g->stats().mean();
    e["min"] = g->stats().min();
    e["max"] = g->stats().max();
  } else {
    const auto& h = std::get<Histogram>(metric);
    e["type"] = "histogram";
    e["count"] = h.stats().count();
    e["mean"] = h.stats().mean();
    e["min"] = h.stats().min();
    e["max"] = h.stats().max();
    e["p50"] = h.buckets().quantile(0.50);
    e["p90"] = h.buckets().quantile(0.90);
    e["p99"] = h.buckets().quantile(0.99);
    runtime::Json buckets = runtime::Json::array();
    const auto& bs = h.buckets().buckets();
    for (std::size_t b = 0; b < bs.size(); ++b) {
      if (bs[b] == 0) continue;
      runtime::Json pair = runtime::Json::array();
      pair.push_back(static_cast<std::int64_t>(b));
      pair.push_back(bs[b]);
      buckets.push_back(std::move(pair));
    }
    e["buckets"] = std::move(buckets);
  }
  return e;
}

}  // namespace

runtime::Json snapshot_json(const Registry& registry) {
  runtime::Json doc = runtime::Json::object();
  doc["schema"] = kMetricsSchema;
  runtime::Json metrics = runtime::Json::array();
  for (const auto& [key, metric] : registry.metrics()) {
    metrics.push_back(entry_json(key, metric));
  }
  doc["metrics"] = std::move(metrics);
  return doc;
}

void write_snapshot(const Registry& registry, std::ostream& os) {
  snapshot_json(registry).dump(os, 2);
  os << "\n";
}

bool write_snapshot_file(const Registry& registry, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_snapshot(registry, f);
  return f.good();
}

}  // namespace dvx::obs
