#include "obs/metrics.hpp"

#include <stdexcept>
#include <utility>

namespace dvx::obs {

template <typename T>
T* Registry::get_or_create(std::string name, Labels labels) {
  if (!enabled_) return nullptr;
  Key key{std::move(name), std::move(labels)};
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::move(key), Metric{std::in_place_type<T>}).first;
  }
  T* metric = std::get_if<T>(&it->second);
  if (metric == nullptr) {
    throw std::logic_error("obs::Registry: metric '" + it->first.first +
                           "' requested with a different kind than it was created");
  }
  return metric;
}

Counter* Registry::counter(std::string name, Labels labels) {
  return get_or_create<Counter>(std::move(name), std::move(labels));
}

Gauge* Registry::gauge(std::string name, Labels labels) {
  return get_or_create<Gauge>(std::move(name), std::move(labels));
}

Histogram* Registry::histogram(std::string name, Labels labels) {
  return get_or_create<Histogram>(std::move(name), std::move(labels));
}

}  // namespace dvx::obs
