#pragma once
// Ambient per-thread collection scope (DESIGN.md §8).
//
// The bench driver measures each point on whichever worker thread the
// PointScheduler hands it to; threading a registry pointer through every
// workload, cluster, and device constructor would touch every signature in
// the repo. Instead — following the precedent of check::Context — the
// active Collector is thread-local ambient state: the exp layer opens a
// ScopedCollector around one measurement point, and instrumented
// components consult obs::metrics() / obs::trace_wanted() at construction
// time to attach themselves. Each worker thread scopes its own collector,
// so collectors are never shared across threads and need no locking;
// that plus the registry's sorted serialization is what makes
// `--jobs 1` and `--jobs N` metrics output byte-identical.
//
// When no collector is open (production benches without --metrics-out),
// obs::metrics() returns nullptr and components keep null metric pointers:
// the disabled cost is one branch per instrumented site.

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace dvx::obs {

/// Everything one measurement point collects: its private metrics registry
/// and, when tracing was requested, an accumulated execution trace.
struct Collector {
  Registry registry;
  bool want_trace = false;
  sim::Tracer trace{true};
};

/// The collector open on this thread, or nullptr.
Collector* current_collector() noexcept;

/// Shorthand: the ambient registry, or nullptr when none is open.
Registry* metrics() noexcept;

/// True when the ambient collector wants an execution trace recorded.
bool trace_wanted() noexcept;

/// Appends the suffix of `src`'s records past `mark` (see sim::TraceMark)
/// to the ambient collector's trace. The cluster runtime uses this to
/// absorb only the records produced by the current run when one point runs
/// the cluster several times. No-op when no collector is open or tracing
/// was not requested.
void absorb_trace(const sim::Tracer& src, const sim::TraceMark& mark);

/// Opens `c` as the ambient collector for the current scope, restoring the
/// previous one (usually none) on exit.
class ScopedCollector {
 public:
  explicit ScopedCollector(Collector& c) noexcept;
  ~ScopedCollector();
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  Collector* prev_;
};

}  // namespace dvx::obs
