#include "obs/collector.hpp"

namespace dvx::obs {
namespace {

thread_local Collector* g_collector = nullptr;

}  // namespace

Collector* current_collector() noexcept { return g_collector; }

Registry* metrics() noexcept {
  return g_collector != nullptr ? &g_collector->registry : nullptr;
}

bool trace_wanted() noexcept {
  return g_collector != nullptr && g_collector->want_trace;
}

void absorb_trace(const sim::Tracer& src, const sim::TraceMark& mark) {
  if (!trace_wanted()) return;
  sim::Tracer& dst = g_collector->trace;
  const auto& by_node = src.states_by_node();
  for (std::size_t n = 0; n < by_node.size(); ++n) {
    const std::size_t first =
        n < mark.states_per_node.size() ? mark.states_per_node[n] : 0;
    for (std::size_t i = first; i < by_node[n].size(); ++i) {
      const auto& iv = by_node[n][i];
      dst.record_state(iv.node, iv.state, iv.begin, iv.end);
    }
  }
  const auto& messages = src.messages();
  for (std::size_t i = mark.messages; i < messages.size(); ++i) {
    const auto& m = messages[i];
    dst.record_message(m.src, m.dst, m.send_time, m.recv_time, m.bytes, m.tag);
  }
}

ScopedCollector::ScopedCollector(Collector& c) noexcept : prev_(g_collector) {
  g_collector = &c;
}

ScopedCollector::~ScopedCollector() { g_collector = prev_; }

}  // namespace dvx::obs
