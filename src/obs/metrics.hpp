#pragma once
// dvx::obs — deterministic metrics registry (DESIGN.md §8).
//
// The paper's contribution is *characterization*: it explains the GUPS/BFS
// wins via latency distributions and deflection behaviour, not just
// end-to-end numbers. This registry is how the simulator exposes those
// internals. Three metric kinds cover every instrumented site:
//   * Counter   — monotone event/byte/cycle tallies (deflections, DMA bytes);
//   * Gauge     — sampled level with min/mean/max/last (FIFO depth, switch
//                 occupancy) — the max doubles as a high-water mark;
//   * Histogram — sim::LogHistogram-backed distribution with exact running
//                 moments (packet hop counts, MPI message sizes).
// Metrics are identified by (name, labels); labels are an ordered map so a
// family ("dv.switch.deflections" by {cylinder, angle}) serializes in one
// deterministic order no matter when its members were created.
//
// Cost contract: instrumented components hold plain pointers that are null
// when nothing collects (see collector.hpp), so a disabled run pays one
// branch per site. A Registry constructed disabled hands out nullptr from
// the factories, which keeps attach code uniform. The registry is NOT
// thread-safe by design: every measurement point of the bench driver owns a
// private registry (exp layer), so under `--jobs N` no two threads ever
// share one — that is what makes metrics output byte-identical at any job
// count. The one concession to sharded engines (DESIGN.md §15): Counter
// add/inc are relaxed atomics, so commutative tallies may tick from any
// shard; Gauge/Histogram mutation stays single-threaded (order-dependent
// Welford moments), which partitioned components honour by staging observes
// into per-shard ledgers and folding at window closes or run end.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "sim/stats.hpp"

namespace dvx::obs {

/// Ordered label set; deterministic serialization order comes for free.
using Labels = std::map<std::string, std::string>;

/// Monotone 64-bit tally. add/inc are relaxed atomic so sharded components
/// may tick counters concurrently; the final value is order-independent.
class Counter {
 public:
  Counter() = default;
  // Copyable so the Registry's variant storage stays movable; copies only
  // ever happen single-threaded (metric construction).
  Counter(const Counter& other) noexcept : value_(other.value()) {}
  Counter& operator=(const Counter& other) noexcept {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() noexcept { value_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Sampled level: last value plus running min/mean/max over all samples.
class Gauge {
 public:
  void sample(double v) noexcept {
    last_ = v;
    stats_.add(v);
  }
  double last() const noexcept { return last_; }
  /// max() is the high-water mark of everything ever sampled.
  const sim::RunningStats& stats() const noexcept { return stats_; }

 private:
  double last_ = 0.0;
  sim::RunningStats stats_;
};

/// Power-of-two bucketed distribution with exact running moments.
class Histogram {
 public:
  void observe(std::uint64_t v) {
    buckets_.add(v);
    stats_.add(static_cast<double>(v));
  }
  /// Folds another histogram in: exact bucket counts; the Welford moments
  /// merge pairwise (same result as RunningStats::merge elsewhere). Used by
  /// partitioned components that keep per-rank histograms and fold once at
  /// a deterministic point (rank order, run end).
  void absorb(const Histogram& other) {
    buckets_.merge(other.buckets_);
    stats_.merge(other.stats_);
  }
  const sim::LogHistogram& buckets() const noexcept { return buckets_; }
  const sim::RunningStats& stats() const noexcept { return stats_; }

  /// Honest tail quantile for SLO reporting (DESIGN.md §14): the bucket
  /// UPPER edge of the q-quantile, clamped to the exact maximum ever
  /// observed. Unlike the midpoint estimate of buckets().quantile(), the
  /// result both bounds the true quantile from above and never exceeds a
  /// value that was actually recorded — a p999 over a sparse tail (few
  /// samples in the top bucket) stays meaningful.
  double quantile_upper_bound(double q) const {
    if (stats_.count() == 0) return 0.0;
    return std::min(buckets_.quantile_upper_bound(q), stats_.max());
  }

  /// Exact largest observed value (not a bucket edge).
  double max_value() const noexcept { return stats_.max(); }

 private:
  sim::LogHistogram buckets_;
  sim::RunningStats stats_;
};

/// Owns every metric of one collection scope (one bench measurement point).
/// Factories are get-or-create: asking twice for the same (name, labels)
/// returns the same object, so independently attached components can share
/// a tally. Asking for an existing metric with a different kind throws.
class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Factories return nullptr when the registry is disabled.
  Counter* counter(std::string name, Labels labels = {});
  Gauge* gauge(std::string name, Labels labels = {});
  Histogram* histogram(std::string name, Labels labels = {});

  using Metric = std::variant<Counter, Gauge, Histogram>;
  using Key = std::pair<std::string, Labels>;

  /// All metrics in sorted (name, labels) order — the snapshot order.
  const std::map<Key, Metric>& metrics() const noexcept { return metrics_; }

  std::size_t size() const noexcept { return metrics_.size(); }

 private:
  template <typename T>
  T* get_or_create(std::string name, Labels labels);

  bool enabled_;
  // std::map: node-based, so returned pointers stay stable, and iteration
  // order is the sorted key order the snapshot serializer relies on.
  std::map<Key, Metric> metrics_;
};

}  // namespace dvx::obs
