#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

namespace dvx::obs {
namespace {

/// Chrome trace timestamps are microseconds; simulated time is picoseconds.
double to_us(sim::Time t) { return static_cast<double>(t) / 1e6; }

runtime::Json event_base(const char* name, const char* cat, const char* ph, int tid,
                         sim::Time ts) {
  runtime::Json e = runtime::Json::object();
  e["name"] = name;
  e["cat"] = cat;
  e["ph"] = ph;
  e["pid"] = 0;
  e["tid"] = tid;
  e["ts"] = to_us(ts);
  return e;
}

}  // namespace

runtime::Json chrome_trace_json(const sim::Tracer& tracer) {
  runtime::Json events = runtime::Json::array();

  // Row naming: one pid for the cluster, one tid per simulated node.
  std::vector<int> nodes;
  for (const auto& iv : tracer.states()) nodes.push_back(iv.node);
  for (const auto& m : tracer.messages()) {
    nodes.push_back(m.src);
    nodes.push_back(m.dst);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  {
    runtime::Json proc = runtime::Json::object();
    proc["name"] = "process_name";
    proc["ph"] = "M";
    proc["pid"] = 0;
    proc["args"]["name"] = "dvx simulated cluster";
    events.push_back(std::move(proc));
  }
  for (const int n : nodes) {
    runtime::Json thread = runtime::Json::object();
    thread["name"] = "thread_name";
    thread["ph"] = "M";
    thread["pid"] = 0;
    thread["tid"] = n;
    thread["args"]["name"] = "node " + std::to_string(n);
    events.push_back(std::move(thread));
  }

  for (const auto& iv : tracer.states()) {
    runtime::Json e = event_base(sim::to_string(iv.state), "state", "X", iv.node, iv.begin);
    e["dur"] = to_us(iv.end - iv.begin);
    events.push_back(std::move(e));
  }

  // Messages as flow arrows: start on the sender's row at send time,
  // finish on the receiver's row at receive time.
  std::int64_t flow_id = 0;
  for (const auto& m : tracer.messages()) {
    ++flow_id;
    runtime::Json s = event_base("msg", "msg", "s", m.src, m.send_time);
    s["id"] = flow_id;
    s["args"]["dst"] = m.dst;
    s["args"]["bytes"] = m.bytes;
    s["args"]["tag"] = m.tag;
    events.push_back(std::move(s));
    runtime::Json f = event_base("msg", "msg", "f", m.dst, m.recv_time);
    f["id"] = flow_id;
    f["bp"] = "e";  // bind to the enclosing slice, Perfetto's arrow anchor
    events.push_back(std::move(f));
  }

  runtime::Json doc = runtime::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ns";
  doc["otherData"]["schema"] = kTraceSchema;
  return doc;
}

void write_chrome_trace(const sim::Tracer& tracer, std::ostream& os) {
  chrome_trace_json(tracer).dump(os, 2);
  os << "\n";
}

bool write_chrome_trace_file(const sim::Tracer& tracer, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(tracer, f);
  return f.good();
}

}  // namespace dvx::obs
