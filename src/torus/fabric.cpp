#include "torus/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "analyze/shard_access.hpp"
#include "check/check.hpp"
#include "obs/collector.hpp"

namespace dvx::torus {

namespace {

/// Deterministic near-cubic factorization: the largest divisor <= cbrt(n)
/// becomes X, the largest divisor of the rest <= sqrt(rest) becomes Y.
/// Prime counts degenerate to a 1 x 1 x n ring, which is still a torus.
std::array<int, 3> factorize(int n) {
  int dx = 1;
  for (int f = 1; static_cast<std::int64_t>(f) * f * f <= n; ++f) {
    if (n % f == 0) dx = f;
  }
  const int rest = n / dx;
  int dy = 1;
  for (int f = 1; static_cast<std::int64_t>(f) * f <= rest; ++f) {
    if (rest % f == 0) dy = f;
  }
  return {dx, dy, rest / dy};
}

}  // namespace

Fabric::Fabric(int nodes, TorusParams params) : nodes_(nodes), params_(params) {
  if (nodes <= 0) {
    throw std::invalid_argument("torus::Fabric: need at least one node");
  }
  const auto& d = params_.dims;
  if (d[0] == 0 && d[1] == 0 && d[2] == 0) {
    dims_ = factorize(nodes);
  } else {
    if (d[0] <= 0 || d[1] <= 0 || d[2] <= 0) {
      throw std::invalid_argument(
          "torus::Fabric: set all three dims (or none to auto-factorize)");
    }
    if (static_cast<std::int64_t>(d[0]) * d[1] * d[2] != nodes) {
      throw std::invalid_argument(
          "torus::Fabric: dims product must equal the node count");
    }
    dims_ = d;
  }
  link_free_.assign(static_cast<std::size_t>(nodes_) * 6, 0);
  nic_gate_.assign(static_cast<std::size_t>(nodes_), 0);
  if (obs::Registry* m = obs::metrics()) {
    obs_hops_[0] = m->counter("torus.hops", {{"dim", "x"}});
    obs_hops_[1] = m->counter("torus.hops", {{"dim", "y"}});
    obs_hops_[2] = m->counter("torus.hops", {{"dim", "z"}});
    obs_msgs_ = m->counter("torus.msgs");
    obs_link_wait_ns_ = m->histogram("torus.link.wait_ns");
  }
}

void Fabric::reset() {
  DVX_SHARD_GUARDED("torus.Fabric", -1);
  std::fill(link_free_.begin(), link_free_.end(), 0);
  std::fill(nic_gate_.begin(), nic_gate_.end(), 0);
  bytes_sent_.store(0, std::memory_order_relaxed);
  link_bytes_ = 0;
  expected_link_bytes_ = 0;
}

std::array<int, 3> Fabric::coords(int node) const {
  if (node < 0 || node >= nodes_) {
    throw std::out_of_range("torus::Fabric::coords: node out of range");
  }
  return {node % dims_[0], (node / dims_[0]) % dims_[1],
          node / (dims_[0] * dims_[1])};
}

int Fabric::node_at(int x, int y, int z) const {
  if (x < 0 || x >= dims_[0] || y < 0 || y >= dims_[1] || z < 0 || z >= dims_[2]) {
    throw std::out_of_range("torus::Fabric::node_at: coordinate out of range");
  }
  return x + dims_[0] * (y + dims_[1] * z);
}

std::array<int, 3> Fabric::dim_hops(int src, int dst) const {
  const auto a = coords(src);
  const auto b = coords(dst);
  std::array<int, 3> out{};
  for (int d = 0; d < 3; ++d) {
    int delta = b[static_cast<std::size_t>(d)] - a[static_cast<std::size_t>(d)];
    if (delta < 0) delta += dims_[static_cast<std::size_t>(d)];
    out[static_cast<std::size_t>(d)] =
        std::min(delta, dims_[static_cast<std::size_t>(d)] - delta);
  }
  return out;
}

int Fabric::hops(int src, int dst) const {
  const auto h = dim_hops(src, dst);
  return h[0] + h[1] + h[2];
}

void Fabric::build_path(int src, int dst, std::vector<std::size_t>& path) const {
  auto cur = coords(src);
  const auto want = coords(dst);
  int node = src;
  for (int d = 0; d < 3; ++d) {
    const int dim = dims_[static_cast<std::size_t>(d)];
    int delta = want[static_cast<std::size_t>(d)] - cur[static_cast<std::size_t>(d)];
    if (delta < 0) delta += dim;
    if (delta == 0) continue;
    // Shortest wraparound direction; the tie on even dimensions (delta ==
    // dim/2) goes positive so routing stays deterministic.
    const bool positive = 2 * delta <= dim;
    const int steps = positive ? delta : dim - delta;
    for (int s = 0; s < steps; ++s) {
      path.push_back(link_id(node, d, positive));
      auto& c = cur[static_cast<std::size_t>(d)];
      c = (c + (positive ? 1 : dim - 1)) % dim;
      node = node_at(cur[0], cur[1], cur[2]);
    }
  }
}

MsgTiming Fabric::send_message(int src, int dst, std::int64_t bytes,
                               sim::Time ready) {
  if (src < 0 || src >= nodes_ || dst < 0 || dst >= nodes_) {
    throw std::out_of_range("torus::Fabric::send_message: node out of range");
  }
  if (bytes <= 0) bytes = 1;
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);

  if (src == dst) {
    // Loopback: the MPI runtime short-circuits through shared memory. Pure
    // local math plus the atomic tally above, so this path may run on the
    // caller's shard mid-window (recorded per source rank, not as a write
    // to the shared ledgers).
    DVX_SHARD_ACCESS("torus.Fabric", src, kWrite);
    const sim::Time done = ready + sim::transfer_time(bytes, params_.memcpy_bw);
    return MsgTiming{done, done};
  }

  // Everything below mutates the shared link/NIC ledgers, conservation
  // counters and obs instruments: windowed runs reach here only from the
  // canonical window-close replay.
  DVX_SHARD_GUARDED("torus.Fabric", -1);

  // Message-rate gate: the NIC cannot start messages faster than msg_rate.
  auto& gate = nic_gate_[static_cast<std::size_t>(src)];
  const auto gap = static_cast<sim::Duration>(1e12 / params_.msg_rate);
  const sim::Time start = std::max(ready, gate);
  gate = start + gap;

  std::vector<std::size_t> path;
  build_path(src, dst, path);
  const auto per_dim = dim_hops(src, dst);
  // Dimension-order routing is minimal: the path is exactly the wraparound
  // Manhattan distance, never more than half of each dimension.
  DVX_CHECK_EQ(path.size(),
               static_cast<std::size_t>(per_dim[0] + per_dim[1] + per_dim[2]))
      << "torus route is not minimal";
  DVX_CHECK(2 * per_dim[0] <= dims_[0] && 2 * per_dim[1] <= dims_[1] &&
            2 * per_dim[2] <= dims_[2])
      << "torus per-dimension hops exceed half the ring";
  for (int d = 0; d < 3; ++d) {
    auto* c = obs_hops_[static_cast<std::size_t>(d)];
    if (c != nullptr) c->add(static_cast<std::uint64_t>(per_dim[static_cast<std::size_t>(d)]));
  }
  if (obs_msgs_ != nullptr) obs_msgs_->inc();

  // Every traversed link ends in a router (or the destination NIC), so the
  // head pays hop_latency per link on top of per-link serialization.
  const auto hop_lat =
      params_.hop_latency * static_cast<sim::Duration>(path.size());
  MsgTiming out{0, 0};
  std::int64_t remaining = bytes;
  sim::Time chunk_ready = start;
  bool first = true;
  while (remaining > 0) {
    const std::int64_t chunk = std::min(remaining, params_.mtu);
    // Per-chunk NIC processing (packet formation) before serialization.
    sim::Time t = chunk_ready + params_.chunk_overhead;
    for (std::size_t link : path) {
      auto& free = link_free_[link];
      if (obs_link_wait_ns_ != nullptr && free > t) {
        obs_link_wait_ns_->observe(static_cast<std::uint64_t>((free - t) / 1000));
      }
      t = std::max(t, free);
      t += sim::transfer_time(chunk, params_.link_bw);
      free = t;
      link_bytes_ += chunk;
    }
    t += hop_lat + params_.wire_latency;
    if (first) {
      out.first_arrival = t;
      first = false;
    }
    out.last_arrival = t;
    // Next chunk can start forming once this one left the source NIC.
    chunk_ready = link_free_[path.front()];
    remaining -= chunk;
  }
  expected_link_bytes_ += bytes * static_cast<std::int64_t>(path.size());
  // Conservation: every payload byte is serialized on exactly hops() links —
  // nothing vanishes and nothing is double-counted.
  DVX_CHECK_SOON_EQ(link_bytes_, expected_link_bytes_)
      << "torus link-byte conservation broken";
  DVX_CHECK(out.first_arrival >= start && out.last_arrival >= out.first_arrival)
      << "torus arrivals not monotonic";
  return out;
}

}  // namespace dvx::torus
