#pragma once
// 3D-torus fabric model: dimension-order routing over per-link next-free
// times.
//
// This is the third network point between Data Vortex deflection routing and
// the InfiniBand fat-tree (ROADMAP item 4). Parameters follow APEnet+
// (arXiv:1102.3796) and the INFN FPGA-based Torus Communication Network
// (arXiv:1102.2346): a 3D torus of point-to-point links, ~34 Gb/s raw per
// link direction (~3 GB/s usable), and a per-hop router latency in the
// 100–200 ns range. What distinguishes it from both paper fabrics:
//
//   * distance matters — latency and link occupancy scale with the
//     wraparound Manhattan distance, where the fat-tree is distance-flat
//     (2 vs 4 links) and DV pays per deflection, not per hop;
//   * dimension-order routing is static and minimal — no path diversity, so
//     irregular traffic that funnels through a link serializes there, but
//     nearest-neighbour traffic never leaves its dimension.
//
// Like ib::Fabric this is pure timing math: messages chunk at MTU
// granularity, serialize on every directed link of the dimension-order
// path, and pay a NIC message-rate gap. It implements net::Interconnect, so
// mpi::MpiWorld runs over it unchanged.

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "net/interconnect.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dvx::torus {

struct TorusParams {
  /// Grid dimensions (X, Y, Z). All zero (the default) derives a near-cubic
  /// factorization of the node count; if set, the product must equal it.
  std::array<int, 3> dims = {0, 0, 0};
  double link_bw = 3.0e9;              ///< usable bytes/s per directed link (APEnet+ ~34 Gb/s raw)
  std::int64_t mtu = 4096;             ///< chunk granularity
  sim::Duration chunk_overhead = sim::ns(190);  ///< NIC per-chunk processing
  sim::Duration hop_latency = sim::ns(150);     ///< per-router forwarding latency
  sim::Duration wire_latency = sim::ns(500);    ///< NIC-to-NIC base (PCIe+serdes)
  double msg_rate = 100e6;             ///< NIC message-rate cap (msgs/s)
  double memcpy_bw = 8.0e9;            ///< host copy bandwidth (loopback)
};

using MsgTiming = net::MsgTiming;

// Partitioned contract (DESIGN.md §15): the link/NIC ledgers, conservation
// counters and obs instruments are touched only from the window-close
// resolution (MpiWorld::resolve_window, instance -1); loopback sends run
// concurrently on the caller's shard but reach only the atomic byte tally.
// dvx-analyze: shard-partitioned
class Fabric final : public net::Interconnect {
 public:
  explicit Fabric(int nodes, TorusParams params = {});

  int nodes() const noexcept override { return nodes_; }
  const TorusParams& params() const noexcept { return params_; }
  /// Resolved grid dimensions (params().dims with zeros factorized).
  const std::array<int, 3>& dims() const noexcept { return dims_; }

  /// Grid coordinates of `node` (x fastest-varying).
  std::array<int, 3> coords(int node) const;
  /// Node id at grid coordinates (inverse of coords()).
  int node_at(int x, int y, int z) const;

  /// Shortest-wraparound hop count per dimension for src -> dst.
  std::array<int, 3> dim_hops(int src, int dst) const;
  /// Total wraparound Manhattan distance (sum of dim_hops), the number of
  /// links a dimension-order-routed message traverses.
  int hops(int src, int dst) const;

  /// Moves `bytes` from `src` to `dst`, first byte injectable at `ready`.
  /// Routes dimension-order (X, then Y, then Z), taking the shortest
  /// wraparound direction per dimension (ties go positive, so routing is
  /// deterministic), chunks at MTU, and serializes on every directed link
  /// of the path. src == dst is a host memcpy.
  MsgTiming send_message(int src, int dst, std::int64_t bytes,
                         sim::Time ready) override;

  /// Total bytes offered to the fabric so far (diagnostics).
  std::int64_t bytes_sent() const noexcept override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Total bytes serialized across all directed links. Conservation: equals
  /// the sum over messages of bytes * hops(src, dst); audited at check
  /// level 2 and exposed for the property tests.
  std::int64_t link_bytes() const noexcept { return link_bytes_; }

  void reset() override;

  /// Conservative cross-node latency bound (net::Interconnect contract):
  /// every remote message pays the NIC-to-NIC wire latency plus at least
  /// one router forwarding delay before it can arrive anywhere.
  sim::Duration lookahead() const noexcept override {
    return params_.wire_latency + params_.hop_latency;
  }

  // Directed links: 6 per node, ordered +x, -x, +y, -y, +z, -z. Public so
  // the routing property tests can name exact links on the expected path.
  std::size_t link_id(int node, int dim, bool positive) const {
    return static_cast<std::size_t>(node) * 6 +
           static_cast<std::size_t>(2 * dim + (positive ? 0 : 1));
  }
  /// Appends the dimension-order route src -> dst to `path` as directed
  /// link ids. Deterministic: each dimension takes the shortest wraparound
  /// direction, and the even-extent tie (distance exactly dims[d]/2 both
  /// ways) always routes positive. Public for the test that pins that.
  void build_path(int src, int dst, std::vector<std::size_t>& path) const;

 private:

  int nodes_;
  TorusParams params_;
  std::array<int, 3> dims_;
  std::vector<sim::Time> link_free_;
  std::vector<sim::Time> nic_gate_;  ///< message-rate gate per NIC
  // Atomic so loopback sends can tally from any shard mid-window.
  std::atomic<std::int64_t> bytes_sent_{0};
  std::int64_t link_bytes_ = 0;           ///< bytes serialized over links
  std::int64_t expected_link_bytes_ = 0;  ///< sum of bytes * hops per message
  // obs instrumentation (null when nothing collects): per-dimension hop
  // counts and the busy wait a chunk spends queued behind a shared link.
  std::array<obs::Counter*, 3> obs_hops_ = {nullptr, nullptr, nullptr};
  obs::Counter* obs_msgs_ = nullptr;
  obs::Histogram* obs_link_wait_ns_ = nullptr;
};

}  // namespace dvx::torus
