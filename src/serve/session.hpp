#pragma once
// The serving session layer (DESIGN.md §14): replays an offered ArrivalTrace
// open-loop against a runtime::Cluster. Per rank, three coroutines run:
//   injector   — wakes at each offered arrival, applies admission control
//                (token bucket / queue shed), enqueues accepted requests;
//   server     — FIFO single-server queue: fans each request out to its
//                peers and waits for every reply (request latency = reply
//                completion minus offered arrival);
//   dispatcher — serves remote requests (service compute + reply) until a
//                count learned via all-to-all says every sent request was
//                received (the GUPS termination idiom).
// The DV side speaks fifo words + remote puts through dvapi; the MPI side
// speaks tagged messages, so payload size picks eager vs rendezvous. Which
// fabric MPI rides (fat-tree or torus) is the cluster's choice — serve
// never names a concrete network.

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "serve/slo.hpp"

namespace dvx::serve {

/// Host-compute knobs of the service model.
struct ServiceCosts {
  /// Home-side software cost per request (parse, route, session lookup).
  double request_flops = 400.0;
  /// Peer-side compute per payload word served (touches the word once).
  double serve_flops_per_word = 4.0;
};

struct SessionConfig {
  AdmissionConfig admission;
  ServiceCosts costs;
};

/// Per-tenant outcome of one session.
struct TenantOutcome {
  std::string name;
  AdmissionCounters admission;
  std::uint64_t served = 0;
  TailLatency latency;  ///< offered-arrival -> last-reply latency, ns
};

struct ServeReport {
  std::vector<TenantOutcome> tenants;
  double roi_seconds = 0.0;  ///< open-loop window plus drain (cluster ROI)

  std::uint64_t offered() const noexcept;
  std::uint64_t accepted() const noexcept;
  std::uint64_t shed() const noexcept;
  std::uint64_t served() const noexcept;
};

/// Replays `trace` over the Data Vortex backend of `cluster`.
ServeReport run_serve_dv(runtime::Cluster& cluster, const ArrivalTrace& trace,
                         const SessionConfig& cfg);

/// Replays `trace` over MiniMPI on the cluster's configured fabric
/// (ClusterConfig::mpi_fabric: fat-tree or torus).
ServeReport run_serve_mpi(runtime::Cluster& cluster, const ArrivalTrace& trace,
                          const SessionConfig& cfg);

}  // namespace dvx::serve
