#include "serve/session.hpp"

#include <memory>
#include <utility>

#include "check/check.hpp"
#include "dvapi/collectives.hpp"
#include "obs/collector.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"

namespace dvx::serve {
namespace {

/// Application tags (MiniMPI reserves the collective tag space at >= 1<<20).
constexpr int kReqTag = 11;
constexpr int kRepTag = 12;

/// One header word rides in front of every request (MPI word 0 / the DV
/// fifo word itself): kind (2 bits) | source rank (16 bits) | payload words.
enum class MsgKind : std::uint64_t { kRequest = 1, kReply = 2, kTerm = 3 };

constexpr std::uint64_t kWordsMask = (std::uint64_t{1} << 46) - 1;

constexpr std::uint64_t encode_word(MsgKind k, int src, std::uint64_t words) {
  return (static_cast<std::uint64_t>(k) << 62) |
         (static_cast<std::uint64_t>(src) << 46) | (words & kWordsMask);
}
constexpr std::uint64_t word_kind(std::uint64_t w) { return w >> 62; }
constexpr int word_src(std::uint64_t w) {
  return static_cast<int>((w >> 46) & 0xFFFF);
}
constexpr std::uint64_t word_words(std::uint64_t w) { return w & kWordsMask; }

/// Per-rank payload landing zone in DV memory, above everything dvapi
/// reserves; sized for the largest tenant payload.
constexpr std::uint32_t kPayloadSlotWords = 4096;
constexpr std::uint32_t payload_addr(int src_rank) {
  return dvapi::kFirstFreeDvWord +
         static_cast<std::uint32_t>(src_rank) * kPayloadSlotWords;
}

/// Ambient obs mirrors, indexed by tenant (null when nothing collects).
/// Counters are relaxed-atomic, so injectors on any shard tick them inline;
/// the latency histogram is order-dependent and is folded once at finish()
/// from the per-rank trackers (DESIGN.md §15).
struct Tally {
  std::vector<obs::Histogram*> obs_latency;
  std::vector<obs::Counter*> obs_accepted;
  std::vector<obs::Counter*> obs_shed;
};

struct RankState {
  RankState(sim::Engine& engine, int nodes)
      : queue(engine), reply_cond(engine), done_cond(engine) {
    sent_to.assign(static_cast<std::size_t>(nodes), 0);
  }
  // Per-tenant tallies, rank-local so sharded cluster runs never share
  // them; finish() merges in rank order (layout-invariant).
  std::vector<AdmissionCounters> admission;
  std::vector<std::uint64_t> served;
  std::vector<TailLatency> latency;
  sim::Mailbox<const Request*> queue;  ///< admitted requests (null = no more)
  std::vector<TokenBucket> buckets;    ///< per tenant; empty when bucket off
  std::int64_t queue_len = 0;          ///< admitted but unfinished
  std::int64_t replies_pending = 0;    ///< current request's missing replies
  sim::Condition reply_cond;
  bool dispatcher_done = false;
  sim::Condition done_cond;
  std::vector<std::uint64_t> sent_to;  ///< request messages sent per peer
  std::uint64_t received = 0;          ///< request messages served
  std::uint64_t expected = 0;          ///< learned via all-to-all at teardown
  bool term_seen = false;
};

struct Session {
  Session(const ArrivalTrace& t, const SessionConfig& c, int nodes)
      : trace(t), cfg(c) {
    const std::size_t nt = t.tenants.size();
    tally.obs_latency.assign(nt, nullptr);
    tally.obs_accepted.assign(nt, nullptr);
    tally.obs_shed.assign(nt, nullptr);
    if (obs::Registry* reg = obs::metrics()) {
      for (std::size_t i = 0; i < nt; ++i) {
        const obs::Labels labels{{"tenant", t.tenants[i].name}};
        tally.obs_latency[i] = reg->histogram("serve.request.latency_ns", labels);
        tally.obs_accepted[i] = reg->counter("serve.admission.accepted", labels);
        tally.obs_shed[i] = reg->counter("serve.admission.shed", labels);
      }
    }
    local.assign(static_cast<std::size_t>(nodes), {});
    for (const Request& r : t.requests) {
      local[r.home].push_back(&r);
    }
    // Token-bucket refill: a fraction of this tenant's own per-node offered
    // rate, derived from the trace itself so the policy tracks the sweep.
    const double horizon_ps = t.horizon_us * 1e6;
    bucket_rate.assign(t.tenants.size(), 0.0);
    for (std::size_t i = 0; i < nt; ++i) {
      bucket_rate[i] = c.admission.bucket_rate_frac *
                       static_cast<double>(t.offered_per_tenant[i]) /
                       (horizon_ps * nodes);
    }
  }

  const ArrivalTrace& trace;
  const SessionConfig& cfg;
  Tally tally;
  std::vector<std::vector<const Request*>> local;  ///< per-rank trace slice
  std::vector<double> bucket_rate;                 ///< tokens/ps per tenant
  std::vector<std::unique_ptr<RankState>> ranks;
};

void init_rank(Session& s, RankState& st) {
  const std::size_t nt = s.trace.tenants.size();
  st.admission.assign(nt, {});
  st.served.assign(nt, 0);
  st.latency.assign(nt, {});
  if (!s.cfg.admission.token_bucket) return;
  st.buckets.reserve(nt);
  for (double rate : s.bucket_rate) {
    st.buckets.emplace_back(rate, s.cfg.admission.bucket_burst);
  }
}

void record_latency(RankState& st, const Request& r, sim::Duration lat_ps) {
  const auto ns =
      static_cast<std::uint64_t>(lat_ps < 0 ? 0 : lat_ps) / 1000;
  st.latency[r.tenant].record_ns(ns);
  ++st.served[r.tenant];
}

/// Open-loop injection: wake at each offered arrival, admit or shed, hand
/// accepted requests to the server queue. A null sentinel closes the queue.
sim::Coro<void> injector(sim::Engine& engine, Session& s, RankState& st,
                         int rank, sim::Time t0) {
  const AdmissionConfig& adm = s.cfg.admission;
  for (const Request* r : s.local[static_cast<std::size_t>(rank)]) {
    co_await engine.resume_at(t0 + r->arrival);
    AdmissionCounters& counters = st.admission[r->tenant];
    ++counters.offered;
    if (adm.queue_shed && st.queue_len >= adm.max_queue_depth) {
      ++counters.shed_queue;
      if (s.tally.obs_shed[r->tenant]) s.tally.obs_shed[r->tenant]->inc();
      continue;
    }
    if (adm.token_bucket && !st.buckets[r->tenant].try_take(engine.now())) {
      ++counters.shed_bucket;
      if (s.tally.obs_shed[r->tenant]) s.tally.obs_shed[r->tenant]->inc();
      continue;
    }
    ++counters.accepted;
    if (s.tally.obs_accepted[r->tenant]) s.tally.obs_accepted[r->tenant]->inc();
    ++st.queue_len;
    st.queue.push(engine.now(), r);
  }
  st.queue.push(engine.now(), nullptr);
}

/// Deterministic payload filler (content is irrelevant to timing, but real
/// words keep the data path honest).
std::uint64_t filler(const Request& r, std::uint32_t w) {
  return sim::mix64(r.id * 1315423911ULL + w);
}

// --------------------------------------------------------------------------
// MPI side: tagged messages; payload size picks eager vs rendezvous.
// --------------------------------------------------------------------------

sim::Coro<void> serve_one_mpi(mpi::Comm comm, runtime::NodeCtx& node,
                              Session& s, RankState& st, const Request& r,
                              sim::Time t0) {
  co_await node.compute_flops(s.cfg.costs.request_flops);
  std::vector<mpi::Request> ops;
  ops.reserve(r.peers.size() * 2);
  for (std::uint16_t peer : r.peers) ops.push_back(comm.irecv(peer, kRepTag));
  for (std::uint16_t peer : r.peers) {
    std::vector<std::uint64_t> data(r.payload_words);
    data[0] = encode_word(MsgKind::kRequest, comm.rank(), r.payload_words);
    for (std::uint32_t w = 1; w < r.payload_words; ++w) data[w] = filler(r, w);
    ++st.sent_to[peer];
    ops.push_back(comm.isend(peer, kReqTag, std::move(data)));
  }
  co_await comm.wait_all(std::move(ops));
  record_latency(st, r, node.now() - (t0 + r.arrival));
  --st.queue_len;
}

sim::Coro<void> dispatcher_mpi(mpi::Comm comm, runtime::NodeCtx& node,
                               Session& s, RankState& st) {
  for (;;) {
    if (st.term_seen && st.received >= st.expected) break;
    mpi::Message msg = co_await comm.recv(mpi::kAnySource, kReqTag);
    const std::uint64_t head = msg.data.at(0);
    if (word_kind(head) == static_cast<std::uint64_t>(MsgKind::kTerm)) {
      st.term_seen = true;
      continue;
    }
    ++st.received;
    co_await node.compute_flops(s.cfg.costs.serve_flops_per_word *
                                static_cast<double>(word_words(head)));
    std::vector<std::uint64_t> reply{encode_word(MsgKind::kReply, comm.rank(), 0)};
    co_await comm.send(msg.src, kRepTag, std::move(reply));
  }
  st.dispatcher_done = true;
  st.done_cond.notify_all(comm.engine().now());
}

// --------------------------------------------------------------------------
// DV side: fifo words carry headers; payloads > 1 word travel as remote
// puts (DMA/Cached) into a per-sender landing zone before the fifo notify.
// --------------------------------------------------------------------------

sim::Coro<void> serve_one_dv(dvapi::DvContext& ctx, runtime::NodeCtx& node,
                             Session& s, RankState& st, const Request& r,
                             sim::Time t0, std::vector<std::uint64_t>& scratch) {
  co_await node.compute_flops(s.cfg.costs.request_flops);
  // Set before the first send: a reply can race the remaining fan-out.
  st.replies_pending = static_cast<std::int64_t>(r.peers.size());
  for (std::uint16_t peer : r.peers) {
    if (r.payload_words > 1) {
      scratch.resize(r.payload_words - 1);
      for (std::uint32_t w = 0; w + 1 < r.payload_words; ++w) {
        scratch[w] = filler(r, w + 1);
      }
      co_await ctx.put(peer, payload_addr(ctx.rank()), scratch);
    }
    ++st.sent_to[peer];
    co_await ctx.send_fifo(
        peer, encode_word(MsgKind::kRequest, ctx.rank(), r.payload_words));
  }
  while (st.replies_pending > 0) co_await st.reply_cond.wait();
  record_latency(st, r, node.now() - (t0 + r.arrival));
  --st.queue_len;
}

sim::Coro<void> dispatcher_dv(dvapi::DvContext& ctx, runtime::NodeCtx& node,
                              Session& s, RankState& st) {
  sim::Engine& engine = ctx.engine();
  for (;;) {
    if (st.term_seen && st.received >= st.expected) break;
    const auto packets = co_await ctx.fifo_wait();
    for (const auto& p : packets) {
      const std::uint64_t w = p.payload;
      if (word_kind(w) == static_cast<std::uint64_t>(MsgKind::kRequest)) {
        ++st.received;
        co_await node.compute_flops(s.cfg.costs.serve_flops_per_word *
                                    static_cast<double>(word_words(w)));
        co_await ctx.send_fifo(word_src(w),
                               encode_word(MsgKind::kReply, ctx.rank(), 0));
      } else if (word_kind(w) == static_cast<std::uint64_t>(MsgKind::kReply)) {
        --st.replies_pending;
        st.reply_cond.notify_all(engine.now());
      } else {
        st.term_seen = true;
      }
    }
  }
  st.dispatcher_done = true;
  st.done_cond.notify_all(engine.now());
}

ServeReport finish(Session& s, double roi_seconds) {
  // Merge the rank-local tallies in rank order — a deterministic fold that
  // does not depend on how ranks were laid out across shards.
  const std::size_t nt = s.trace.tenants.size();
  std::vector<AdmissionCounters> admission(nt);
  std::vector<std::uint64_t> served(nt, 0);
  std::vector<TailLatency> latency(nt);
  for (const auto& rank : s.ranks) {
    if (!rank || rank->admission.empty()) continue;
    for (std::size_t i = 0; i < nt; ++i) {
      admission[i].merge(rank->admission[i]);
      served[i] += rank->served[i];
      latency[i].merge(rank->latency[i]);
    }
  }
  ServeReport report;
  report.roi_seconds = roi_seconds;
  report.tenants.reserve(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    const AdmissionCounters& adm = admission[i];
    // Conservation invariants (ISSUE: level-1): every offered request was
    // either accepted or shed, and every accepted request was served —
    // the session never silently drops work.
    DVX_CHECK_EQ(adm.offered, adm.accepted + adm.shed())
        << "serve admission conservation violated for tenant "
        << s.trace.tenants[i].name << ". ";
    DVX_CHECK_EQ(adm.offered, s.trace.offered_per_tenant[i])
        << "serve injector lost offered requests for tenant "
        << s.trace.tenants[i].name << ". ";
    DVX_CHECK_EQ(served[i], adm.accepted)
        << "serve session dropped accepted requests for tenant "
        << s.trace.tenants[i].name << ". ";
    if (s.tally.obs_latency[i] != nullptr) {
      s.tally.obs_latency[i]->absorb(latency[i].histogram());
    }
    TenantOutcome out;
    out.name = s.trace.tenants[i].name;
    out.admission = adm;
    out.served = served[i];
    out.latency = latency[i];
    report.tenants.push_back(std::move(out));
  }
  return report;
}

}  // namespace

std::uint64_t ServeReport::offered() const noexcept {
  std::uint64_t n = 0;
  for (const TenantOutcome& t : tenants) n += t.admission.offered;
  return n;
}
std::uint64_t ServeReport::accepted() const noexcept {
  std::uint64_t n = 0;
  for (const TenantOutcome& t : tenants) n += t.admission.accepted;
  return n;
}
std::uint64_t ServeReport::shed() const noexcept {
  std::uint64_t n = 0;
  for (const TenantOutcome& t : tenants) n += t.admission.shed();
  return n;
}
std::uint64_t ServeReport::served() const noexcept {
  std::uint64_t n = 0;
  for (const TenantOutcome& t : tenants) n += t.served;
  return n;
}

ServeReport run_serve_mpi(runtime::Cluster& cluster, const ArrivalTrace& trace,
                          const SessionConfig& cfg) {
  const int nodes = cluster.nodes();
  Session s(trace, cfg, nodes);
  s.ranks.resize(static_cast<std::size_t>(nodes));
  const auto run = cluster.run_mpi(
      [&](mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
        const int rank = comm.rank();
        sim::Engine& engine = comm.engine();
        s.ranks[static_cast<std::size_t>(rank)] =
            std::make_unique<RankState>(engine, nodes);
        RankState& st = *s.ranks[static_cast<std::size_t>(rank)];
        init_rank(s, st);
        co_await comm.barrier();
        const sim::Time t0 = engine.now();
        node.roi_begin();
        engine.spawn(injector(engine, s, st, rank, t0));
        engine.spawn(dispatcher_mpi(comm, node, s, st));
        for (;;) {
          const Request* r = co_await st.queue.receive();
          if (r == nullptr) break;
          co_await serve_one_mpi(comm, node, s, st, *r, t0);
        }
        // Teardown (the GUPS idiom): learn how many requests each peer sent
        // us, then wake our dispatcher with a loopback terminator; it exits
        // once that count is fully served.
        std::vector<std::vector<std::uint64_t>> counts(
            static_cast<std::size_t>(nodes));
        for (int p = 0; p < nodes; ++p) {
          counts[static_cast<std::size_t>(p)] = {
              st.sent_to[static_cast<std::size_t>(p)]};
        }
        const auto incoming = co_await comm.alltoall(std::move(counts));
        st.expected = 0;
        for (int p = 0; p < nodes; ++p) {
          if (p != rank) st.expected += incoming[static_cast<std::size_t>(p)][0];
        }
        std::vector<std::uint64_t> term{encode_word(MsgKind::kTerm, rank, 0)};
        co_await comm.send(rank, kReqTag, std::move(term));
        while (!st.dispatcher_done) co_await st.done_cond.wait();
        DVX_CHECK_EQ(st.received, st.expected)
            << "serve request conservation violated (mpi, rank " << rank << "). ";
        co_await comm.barrier();
        node.roi_end();
      });
  return finish(s, run.roi_seconds());
}

ServeReport run_serve_dv(runtime::Cluster& cluster, const ArrivalTrace& trace,
                         const SessionConfig& cfg) {
  const int nodes = cluster.nodes();
  Session s(trace, cfg, nodes);
  s.ranks.resize(static_cast<std::size_t>(nodes));
  const auto run = cluster.run_dv(
      [&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
        const int rank = ctx.rank();
        sim::Engine& engine = ctx.engine();
        s.ranks[static_cast<std::size_t>(rank)] =
            std::make_unique<RankState>(engine, nodes);
        RankState& st = *s.ranks[static_cast<std::size_t>(rank)];
        init_rank(s, st);
        co_await ctx.barrier();
        const sim::Time t0 = engine.now();
        node.roi_begin();
        engine.spawn(injector(engine, s, st, rank, t0));
        engine.spawn(dispatcher_dv(ctx, node, s, st));
        std::vector<std::uint64_t> scratch;
        for (;;) {
          const Request* r = co_await st.queue.receive();
          if (r == nullptr) break;
          co_await serve_one_dv(ctx, node, s, st, *r, t0, scratch);
        }
        const auto incoming = co_await dvapi::alltoall_words(ctx, st.sent_to);
        st.expected = 0;
        for (int p = 0; p < nodes; ++p) {
          if (p != rank) st.expected += incoming[static_cast<std::size_t>(p)];
        }
        co_await ctx.send_fifo(rank, encode_word(MsgKind::kTerm, rank, 0));
        while (!st.dispatcher_done) co_await st.done_cond.wait();
        DVX_CHECK_EQ(st.received, st.expected)
            << "serve request conservation violated (dv, rank " << rank << "). ";
        co_await ctx.barrier();
        node.roi_end();
      });
  return finish(s, run.roi_seconds());
}

}  // namespace dvx::serve
