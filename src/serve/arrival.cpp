#include "serve/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/check.hpp"
#include "sim/rng.hpp"

namespace dvx::serve {
namespace {

/// FNV-1a over the tenant name: stable across runs and platforms, so the
/// stream seed follows the tenant, not its position in the config list.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Exponential inter-arrival draw with mean `mean_ps` (inverse-CDF; the
/// 1 - u keeps the argument of log strictly positive).
double exp_draw(sim::Xoshiro256& rng, double mean_ps) {
  return -std::log(1.0 - rng.uniform()) * mean_ps;
}

struct StreamRequest {
  Request req;
  std::uint64_t seq;  ///< per-(tenant, node) sequence, for canonical ties
};

}  // namespace

const char* to_string(TenantClass c) noexcept {
  switch (c) {
    case TenantClass::kSmallUpdate:
      return "small-update";
    case TenantClass::kFrontier:
      return "frontier";
    case TenantClass::kBulk:
      return "bulk";
  }
  return "?";
}

std::vector<TenantSpec> default_tenants() {
  return {
      // A bursty hot tenant concentrating fan-out on a small hot node set:
      // the congestion source of the victim-flow study.
      {.name = "hot",
       .cls = TenantClass::kSmallUpdate,
       .rate_weight = 3.0,
       .burstiness = 3.0,
       .fanout = 4,
       .payload_words = 1,
       .hotspot = true},
      // Two well-behaved victims with uniform BFS-like exchanges.
      {.name = "vic_a",
       .cls = TenantClass::kFrontier,
       .rate_weight = 1.0,
       .burstiness = 0.0,
       .fanout = 4,
       .payload_words = 32,
       .hotspot = false},
      {.name = "vic_b",
       .cls = TenantClass::kFrontier,
       .rate_weight = 1.0,
       .burstiness = 0.0,
       .fanout = 2,
       .payload_words = 32,
       .hotspot = false},
      // Rare heavy payloads (DMA on DV, rendezvous on MPI) — ROADMAP item 5's
      // bulk class riding along.
      {.name = "bulk",
       .cls = TenantClass::kBulk,
       .rate_weight = 0.25,
       .burstiness = 0.0,
       .fanout = 1,
       .payload_words = 2048,
       .hotspot = false},
  };
}

std::uint64_t tenant_stream_seed(std::uint64_t root, std::string_view tenant,
                                 int node) {
  return sim::derive_seed(sim::derive_seed(root, fnv1a(tenant)),
                          static_cast<std::uint64_t>(node));
}

ArrivalTrace generate_arrivals(const ArrivalConfig& cfg) {
  if (cfg.nodes <= 1) throw std::invalid_argument("generate_arrivals: need >= 2 nodes");
  if (cfg.horizon_us <= 0.0 || cfg.unit_rate_rps <= 0.0) {
    throw std::invalid_argument("generate_arrivals: horizon and rate must be positive");
  }
  ArrivalTrace trace;
  trace.tenants = cfg.tenants.empty() ? default_tenants() : cfg.tenants;
  trace.horizon_us = cfg.horizon_us;

  const double horizon_ps = cfg.horizon_us * 1e6;
  const int hot_nodes = std::max(1, cfg.nodes / 8);
  std::vector<StreamRequest> all;

  for (std::size_t ti = 0; ti < trace.tenants.size(); ++ti) {
    const TenantSpec& t = trace.tenants[ti];
    if (t.fanout <= 0 || t.payload_words <= 0 || t.rate_weight < 0.0) {
      throw std::invalid_argument("generate_arrivals: bad tenant spec: " + t.name);
    }
    // Per-node offered rate of this tenant, in requests per picosecond —
    // a function of the tenant's own spec only (sub-seed stability).
    const double rate_pps = cfg.unit_rate_rps * t.rate_weight / cfg.nodes / 1e12;
    if (rate_pps <= 0.0) continue;
    // Batches of mean size 1 + b arrive at gaps stretched by the same
    // factor, keeping the offered rate independent of burstiness.
    const double mean_gap_ps = (1.0 + t.burstiness) / rate_pps;
    const double batch_p = t.burstiness / (1.0 + t.burstiness);

    for (int node = 0; node < cfg.nodes; ++node) {
      sim::Xoshiro256 rng(tenant_stream_seed(cfg.seed, t.name, node));
      std::uint64_t seq = 0;
      double at = exp_draw(rng, mean_gap_ps);
      while (at < horizon_ps) {
        std::uint64_t batch = 1;
        while (batch_p > 0.0 && rng.chance(batch_p)) ++batch;
        for (std::uint64_t b = 0; b < batch; ++b) {
          Request r;
          r.tenant = static_cast<std::uint16_t>(ti);
          r.home = static_cast<std::uint16_t>(node);
          r.arrival = static_cast<sim::Time>(at);
          r.payload_words = static_cast<std::uint32_t>(t.payload_words);
          r.peers.reserve(static_cast<std::size_t>(t.fanout));
          for (int f = 0; f < t.fanout; ++f) {
            int peer;
            if (t.hotspot) {
              peer = static_cast<int>(rng.below(static_cast<std::uint64_t>(hot_nodes)));
              // A hot-set member skips itself by stepping to its neighbour.
              if (peer == node) peer = (peer + 1) % cfg.nodes;
            } else {
              // Uniform over the other nodes: skip `node` by shifting.
              peer = static_cast<int>(
                  rng.below(static_cast<std::uint64_t>(cfg.nodes - 1)));
              if (peer >= node) ++peer;
            }
            r.peers.push_back(static_cast<std::uint16_t>(peer));
          }
          all.push_back(StreamRequest{std::move(r), seq++});
        }
        at += exp_draw(rng, mean_gap_ps);
      }
    }
  }

  // Canonical order: arrival time, then home rank, then tenant, then the
  // per-stream sequence — a total order, so the sort is deterministic.
  std::sort(all.begin(), all.end(), [](const StreamRequest& a, const StreamRequest& b) {
    if (a.req.arrival != b.req.arrival) return a.req.arrival < b.req.arrival;
    if (a.req.home != b.req.home) return a.req.home < b.req.home;
    if (a.req.tenant != b.req.tenant) return a.req.tenant < b.req.tenant;
    return a.seq < b.seq;
  });

  trace.requests.reserve(all.size());
  trace.offered_per_tenant.assign(trace.tenants.size(), 0);
  std::uint64_t id = 0;
  for (StreamRequest& s : all) {
    s.req.id = id++;
    ++trace.offered_per_tenant[s.req.tenant];
    trace.requests.push_back(std::move(s.req));
  }
  std::uint64_t sum = 0;
  for (std::uint64_t n : trace.offered_per_tenant) sum += n;
  DVX_CHECK_EQ(sum, trace.requests.size())
      << "arrival trace: per-tenant offered counts partition the trace. ";
  return trace;
}

std::string trace_to_string(const ArrivalTrace& trace) {
  std::ostringstream os;
  for (const Request& r : trace.requests) {
    os << r.id << ' ' << trace.tenants[r.tenant].name << ' ' << r.home << ' '
       << r.arrival << ' ' << r.payload_words << ':';
    for (std::uint16_t p : r.peers) os << ' ' << p;
    os << '\n';
  }
  return os.str();
}

}  // namespace dvx::serve
