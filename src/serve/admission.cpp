#include "serve/admission.hpp"

#include <algorithm>

namespace dvx::serve {

bool TokenBucket::try_take(sim::Time now) {
  if (now > last_) {
    tokens_ = std::min(burst_, tokens_ + rate_ * static_cast<double>(now - last_));
    last_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

}  // namespace dvx::serve
