#pragma once
// SLO accounting for the serving layer (DESIGN.md §14): per-tenant request
// latency tails from obs::Histogram with honest upper-bound quantiles, and
// the Jain fairness index over per-tenant service ratios.

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace dvx::serve {

/// Request-latency tail tracker. Values are recorded in nanoseconds; the
/// median uses the bucket-midpoint estimate, while the SLO tails (p99,
/// p999, pmax) use obs::Histogram::quantile_upper_bound, which clamps the
/// bucket upper edge to the exact maximum ever observed — a sparse tail can
/// therefore never report a latency no request actually reached.
class TailLatency {
 public:
  void record_ns(std::uint64_t ns) { hist_.observe(ns); }

  /// Folds another tracker in (exact buckets, pairwise-merged moments).
  /// Partitioned serve sessions keep per-rank trackers and fold in rank
  /// order at session end, so the result is shard-layout-invariant.
  void merge(const TailLatency& other) { hist_.absorb(other.hist_); }

  std::uint64_t count() const noexcept { return hist_.stats().count(); }
  double mean_ns() const noexcept { return hist_.stats().mean(); }
  double p50_ns() const { return hist_.buckets().quantile(0.5); }
  double p99_ns() const { return hist_.quantile_upper_bound(0.99); }
  double p999_ns() const { return hist_.quantile_upper_bound(0.999); }
  double max_ns() const noexcept { return hist_.max_value(); }

  const obs::Histogram& histogram() const noexcept { return hist_; }

 private:
  obs::Histogram hist_;
};

/// Jain's fairness index over per-tenant allocations: (sum x)^2 / (n sum
/// x^2). 1.0 = perfectly fair, 1/n = one tenant takes everything. Empty or
/// all-zero input returns 1.0 (nothing to be unfair about).
double jain_index(const std::vector<double>& xs);

}  // namespace dvx::serve
