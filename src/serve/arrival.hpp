#pragma once
// dvx::serve — open-loop multi-tenant serving layer (DESIGN.md §14).
//
// Arrival-process generation: every tenant owns a family of seeded
// exponential (optionally bursty) inter-arrival streams, one per node, and
// a generated trace is a pure function of (ArrivalConfig) — independent of
// execution order, `--jobs`, and engine threads. Sub-seeds are derived from
// the tenant NAME (FNV-1a) rather than its list position, so adding or
// removing one tenant leaves every other tenant's stream byte-identical
// (sub-seed stability).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dvx::serve {

/// The irregular-traffic shape one request fans out (paper kernels recast
/// as service classes; ROADMAP item 3 + the item-5 heavy-payload class).
enum class TenantClass {
  kSmallUpdate,  ///< GUPS-like: fanout single-word remote updates
  kFrontier,     ///< BFS-like: fanout medium frontier exchanges
  kBulk,         ///< checkpoint-like: few heavy payloads (DMA/rendezvous)
};

const char* to_string(TenantClass c) noexcept;

struct TenantSpec {
  std::string name;
  TenantClass cls = TenantClass::kSmallUpdate;
  /// Offered-rate multiplier on ArrivalConfig::unit_rate_rps. Absolute per
  /// tenant (not normalized over the list), so streams are independent.
  double rate_weight = 1.0;
  /// 0 = Poisson arrivals; b > 0 = geometric batches with mean size 1 + b
  /// (inter-batch gaps stretched by the same factor, so the offered rate is
  /// unchanged — only the clumping).
  double burstiness = 0.0;
  /// Peers touched per request (destinations drawn per request).
  int fanout = 4;
  /// Payload words per fanout message.
  int payload_words = 1;
  /// Concentrate destinations on a small hot node set (victim-tenant study).
  bool hotspot = false;
};

/// The canonical four-tenant mix used by the `serving` workload: one hot
/// bursty tenant, two uniform victims, one bulk tenant.
std::vector<TenantSpec> default_tenants();

struct ArrivalConfig {
  std::uint64_t seed = 0x5EEDBA5EULL;
  int nodes = 8;
  /// Open-loop injection window (requests arriving in [0, horizon)).
  double horizon_us = 200.0;
  /// Offered request rate per unit of TenantSpec::rate_weight, cluster-wide
  /// (a weight-w tenant offers w * unit_rate_rps req/s spread over the
  /// nodes). Deliberately NOT normalized over the tenant list: a tenant's
  /// stream depends only on its own spec, so adding or removing tenants
  /// leaves every other stream byte-identical. The aggregate offered rate
  /// is unit_rate_rps * sum(rate_weight).
  double unit_rate_rps = 2.0e5;
  std::vector<TenantSpec> tenants;  ///< empty = default_tenants()
};

/// One offered request: arrives at `home` at `arrival` (offset from the
/// open-loop origin) and fans `payload_words`-word messages to `peers`.
struct Request {
  std::uint64_t id = 0;       ///< global id in canonical trace order
  std::uint16_t tenant = 0;   ///< index into ArrivalTrace::tenants
  std::uint16_t home = 0;     ///< rank the request arrives at
  sim::Time arrival = 0;      ///< ps offset from the open-loop origin
  std::uint32_t payload_words = 0;
  std::vector<std::uint16_t> peers;  ///< fanout destinations (may repeat)
};

struct ArrivalTrace {
  std::vector<TenantSpec> tenants;
  /// Sorted by (arrival, home, tenant, per-stream sequence); ids assigned
  /// in that order, so the trace is canonical.
  std::vector<Request> requests;
  double horizon_us = 0.0;
  std::vector<std::uint64_t> offered_per_tenant;  ///< parallel to tenants

  std::uint64_t offered() const noexcept { return requests.size(); }
};

/// The per-(tenant, node) stream seed: keyed by tenant name, not index.
std::uint64_t tenant_stream_seed(std::uint64_t root, std::string_view tenant,
                                 int node);

/// Generates the canonical offered trace for `cfg`. Pure function of the
/// config: same config -> byte-identical trace at any parallelism.
ArrivalTrace generate_arrivals(const ArrivalConfig& cfg);

/// Canonical one-line-per-request serialization (determinism diffs/tests).
std::string trace_to_string(const ArrivalTrace& trace);

}  // namespace dvx::serve
