#pragma once
// Admission control for the serving layer (DESIGN.md §14): a per-tenant
// token bucket plus global queue-depth shedding, both OFF by default, with
// shed/accept counters. Everything is evaluated in virtual time, so the
// decisions are deterministic.

#include <cstdint>

#include "sim/time.hpp"

namespace dvx::serve {

struct AdmissionConfig {
  /// Per-tenant token bucket: refill at `bucket_rate_frac` times the
  /// tenant's own offered rate, capacity `bucket_burst` tokens.
  bool token_bucket = false;
  double bucket_rate_frac = 1.2;
  double bucket_burst = 16.0;
  /// Global (per-node) queue-depth shedding: reject when the node already
  /// holds `max_queue_depth` admitted-but-unfinished requests.
  bool queue_shed = false;
  int max_queue_depth = 64;

  bool any() const noexcept { return token_bucket || queue_shed; }
};

/// Deterministic virtual-time token bucket (starts full).
class TokenBucket {
 public:
  TokenBucket(double tokens_per_ps, double burst)
      : rate_(tokens_per_ps), burst_(burst), tokens_(burst) {}

  /// Refills to `now` and takes one token if a whole one is available.
  bool try_take(sim::Time now);

  double tokens() const noexcept { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  sim::Time last_ = 0;
};

/// Per-tenant admission tallies; conservation (offered == accepted + shed)
/// is a level-1 DVX_CHECK invariant at session teardown.
struct AdmissionCounters {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed_bucket = 0;
  std::uint64_t shed_queue = 0;

  std::uint64_t shed() const noexcept { return shed_bucket + shed_queue; }

  void merge(const AdmissionCounters& o) noexcept {
    offered += o.offered;
    accepted += o.accepted;
    shed_bucket += o.shed_bucket;
    shed_queue += o.shed_queue;
  }
};

}  // namespace dvx::serve
