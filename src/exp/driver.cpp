#include "exp/driver.hpp"

#include <charconv>
#include <cstdint>
#include <exception>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string_view>

#include "analyze/recorder.hpp"
#include "check/check.hpp"
#include "exp/scheduler.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

void print_usage(std::ostream& os) {
  os << "dvx_bench — unified driver for every paper-figure reproduction\n"
        "\n"
        "usage:\n"
        "  dvx_bench --list                      describe the registered workloads\n"
        "  dvx_bench --figure fig6[,fig7,...]    run specific figures (tag or name)\n"
        "  dvx_bench --all                       run every registered workload\n"
        "\n"
        "options:\n"
        "  --nodes 4,8,16,32    override the node sweep (figures with a sweep)\n"
        "  --backends LIST      restrict figures to these comma-separated network\n"
        "                       backends: dv, mpi-ib (alias mpi), mpi-torus.\n"
        "                       Default: each figure's paper pairing (dv + mpi-ib;\n"
        "                       the torus only runs when asked for)\n"
        "  --fast               shrink problem sizes (same as DVX_BENCH_FAST=1)\n"
        "  --seed N             root RNG seed; each measurement point derives its\n"
        "                       own SplitMix64 sub-seed from it (0 = workload defaults)\n"
        "  --jobs N             run measurement points on N threads (default: the\n"
        "                       DVX_BENCH_JOBS env var, else hardware concurrency;\n"
        "                       results are identical at any N, --jobs 1 = serial)\n"
        "  --engine-threads N   worker threads inside each simulation's sharded\n"
        "                       DES engine (default: the DVX_ENGINE_THREADS env\n"
        "                       var, else 1; results are identical at any N —\n"
        "                       see DESIGN.md §12)\n"
        "  --json PATH          also write the combined JSON document to PATH\n"
        "  --no-figure-json     skip the per-figure BENCH_<figure>.json files\n"
        "  --metrics-out DIR    collect obs metrics per measurement point and write\n"
        "                       METRICS_<figure>_p<N>.json (schema dvx-metrics/v1)\n"
        "                       into DIR (created if missing)\n"
        "  --trace-out DIR      record per-point execution traces and write\n"
        "                       TRACE_<figure>_p<N>.json (Chrome trace format,\n"
        "                       loadable in Perfetto) into DIR (created if missing)\n"
        "  --analyze-out FILE   install the shard-access race detector and write\n"
        "                       its report (schema dvx-analyze/v1) to FILE after\n"
        "                       the run: per-object shard access counts and the\n"
        "                       cross-shard write conflicts that block shards > 1.\n"
        "                       Forces --jobs 1 (one engine at a time attributes\n"
        "                       records unambiguously); needs DVX_CHECK_LEVEL >= 2\n"
        "                       builds for the instrumentation to be compiled in\n"
        "  --help               this text\n"
        "\n"
        "Every run prints the paper-figure tables and, unless suppressed, writes\n"
        "one BENCH_<figure>.json per figure (schema: DESIGN.md §6).\n";
}

/// Strict decimal parse of the whole string: rejects empty input, trailing
/// garbage ("8x"), and — via the unsigned overload — negative values ("-1").
template <typename Int>
bool parse_number(std::string_view s, Int& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size() && !s.empty();
}

/// Splits on commas. Returns false (leaving a message in `err`) when a field
/// is empty ("4,,8", ",4", "4,"), which previously was silently dropped.
bool split_csv(std::string_view s, std::vector<std::string>& out, std::string& err) {
  std::string cur;
  std::size_t fields = 0;
  for (std::size_t i = 0;; ++i) {
    if (i == s.size() || s[i] == ',') {
      if (cur.empty()) {
        err = "empty field " + std::to_string(fields + 1);
        return false;
      }
      out.push_back(std::move(cur));
      cur.clear();
      ++fields;
      if (i == s.size()) return true;
    } else {
      cur.push_back(s[i]);
    }
  }
}

void print_list(std::ostream& os) {
  runtime::Table t("registered workloads", {"figure", "name", "default nodes", "metrics"});
  for (const auto* w : Registry::instance().all()) {
    std::ostringstream nodes;
    const auto ns = w->default_nodes(false);
    for (std::size_t i = 0; i < ns.size(); ++i) nodes << (i ? "," : "") << ns[i];
    std::ostringstream metrics;
    const auto ms = w->metric_specs();
    for (std::size_t i = 0; i < ms.size(); ++i) metrics << (i ? "," : "") << ms[i].key;
    t.row({w->figure(), w->name(), nodes.str(), metrics.str()});
  }
  t.print(os);
  os << "\nparameters (full / fast defaults):\n";
  for (const auto* w : Registry::instance().all()) {
    os << "  " << w->figure() << " (" << w->name() << "):\n";
    for (const auto& p : w->param_specs()) {
      os << "    " << p.key << " = " << p.full_value << " / " << p.fast_value << "  — "
         << p.description << "\n";
    }
  }
}

struct CliOptions {
  bool list = false;
  bool all = false;
  bool help = false;
  std::vector<std::string> figures;
  RunOptions run;
  int jobs = 0;  ///< 0 = PointScheduler::default_jobs()
  int engine_threads = 0;  ///< 0 = runtime::default_engine_threads()
  std::string json_path;
  std::string analyze_path;
  bool figure_json = true;
};

/// Returns true when every argument parsed cleanly; on failure prints the
/// problem and returns false. Never returns early: `--help --bogus` still
/// reports the bogus flag instead of silently accepting it.
bool parse_args(int argc, const char* const* argv, CliOptions& opt, std::ostream& err) {
  bool ok = true;
  auto need_value = [&](int& i, std::string_view flag) -> const char* {
    if (i + 1 >= argc) {
      err << "dvx_bench: " << flag << " requires a value\n";
      ok = false;
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--all") {
      opt.all = true;
    } else if (arg == "--fast") {
      opt.run.fast = true;
    } else if (arg == "--no-figure-json") {
      opt.figure_json = false;
    } else if (arg == "--figure") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      std::vector<std::string> fields;
      std::string csv_err;
      if (!split_csv(v, fields, csv_err)) {
        err << "dvx_bench: bad --figure value '" << v << "' (" << csv_err << ")\n";
        ok = false;
        continue;
      }
      for (auto& f : fields) {
        if (f == "all") {
          opt.all = true;
        } else {
          opt.figures.push_back(std::move(f));
        }
      }
    } else if (arg == "--nodes") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      std::vector<std::string> fields;
      std::string csv_err;
      if (!split_csv(v, fields, csv_err)) {
        err << "dvx_bench: bad --nodes value '" << v << "' (" << csv_err << ")\n";
        ok = false;
        continue;
      }
      for (const auto& n : fields) {
        int nodes = 0;
        if (!parse_number(n, nodes)) {
          err << "dvx_bench: bad --nodes value '" << n << "'\n";
          ok = false;
          continue;
        }
        if (nodes < 2) {
          err << "dvx_bench: --nodes values must be >= 2\n";
          ok = false;
          continue;
        }
        opt.run.nodes.push_back(nodes);
      }
    } else if (arg == "--backends") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      std::vector<std::string> fields;
      std::string csv_err;
      if (!split_csv(v, fields, csv_err)) {
        err << "dvx_bench: bad --backends value '" << v << "' (" << csv_err << ")\n";
        ok = false;
        continue;
      }
      for (const auto& b : fields) {
        try {
          opt.run.backends.push_back(parse_backend(b));
        } catch (const std::invalid_argument& e) {
          err << "dvx_bench: bad --backends value: " << e.what() << "\n";
          ok = false;
        }
      }
    } else if (arg == "--seed") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      if (!parse_number(std::string_view(v), opt.run.seed)) {
        err << "dvx_bench: bad --seed value '" << v
            << "' (must be a non-negative integer)\n";
        ok = false;
      }
    } else if (arg == "--jobs") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      if (!parse_number(std::string_view(v), opt.jobs) || opt.jobs < 1) {
        err << "dvx_bench: bad --jobs value '" << v << "' (must be an integer >= 1)\n";
        ok = false;
      }
    } else if (arg == "--engine-threads") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      if (!parse_number(std::string_view(v), opt.engine_threads) ||
          opt.engine_threads < 1) {
        err << "dvx_bench: bad --engine-threads value '" << v
            << "' (must be an integer >= 1)\n";
        ok = false;
      }
    } else if (arg == "--json") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      opt.json_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      opt.run.metrics_dir = v;
    } else if (arg == "--trace-out") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      opt.run.trace_dir = v;
    } else if (arg == "--analyze-out") {
      const char* v = need_value(i, arg);
      if (!v) continue;
      opt.analyze_path = v;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      err << "dvx_bench: unknown argument '" << arg << "'\n";
      ok = false;
    }
  }
  return ok;
}

int run_with(CliOptions opt) {
  std::ostream& os = opt.run.out ? *opt.run.out : std::cout;
  if (opt.list) {
    print_list(os);
    return 0;
  }

  std::vector<const Workload*> selected;
  if (opt.all) {
    selected = Registry::instance().all();
  } else {
    for (const auto& f : opt.figures) {
      const Workload* w = Registry::instance().find(f);
      if (!w) {
        std::cerr << "dvx_bench: unknown figure or workload '" << f
                  << "' (try --list)\n";
        return 2;
      }
      selected.push_back(w);
    }
  }
  if (selected.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  if (!opt.run.fast) opt.run.fast = fast_mode_env();
  int jobs = opt.jobs > 0 ? opt.jobs : PointScheduler::default_jobs();
  if (opt.engine_threads > 0) {
    runtime::set_default_engine_threads(opt.engine_threads);
  }

  // The recorder is process-global and attributes records by engine shard
  // id, so only one simulation may dispatch at a time while it is
  // installed: two concurrent points would alias each other's shards.
  std::optional<analyze::ShardAccessRecorder> recorder;
  std::optional<analyze::ScopedShardRecorder> scoped;
  if (!opt.analyze_path.empty()) {
    if (jobs != 1) {
      std::cerr << "[dvx_bench] --analyze-out forces --jobs 1 (was " << jobs
                << ")\n";
      jobs = 1;
    }
    if (check::compiled_level() < 2) {
      std::cerr << "[dvx_bench] warning: built with DVX_CHECK_LEVEL "
                << check::compiled_level()
                << "; DVX_SHARD_ACCESS instrumentation is compiled out and "
                   "the analyze report will be empty\n";
    }
    recorder.emplace();
    scoped.emplace(*recorder);
  }

  runtime::ResultSink sink;
  sink.fast = opt.run.fast;
  sink.seed = opt.run.seed;
  int failures = 0;
  failures += run_workloads(selected, opt.run, jobs, sink,
                            [&](const Workload& w, bool figure_ok) {
                              if (!figure_ok || !opt.figure_json) return;
                              if (sink.write_figure_file(w.figure())) {
                                os << "\n[dvx_bench] wrote BENCH_" << w.figure()
                                   << ".json\n";
                              } else {
                                std::cerr << "dvx_bench: could not write BENCH_"
                                          << w.figure() << ".json\n";
                                ++failures;
                              }
                            });
  if (!opt.json_path.empty()) {
    if (sink.write_file(opt.json_path)) {
      os << "[dvx_bench] wrote " << opt.json_path << " (" << sink.records().size()
         << " records, " << sink.anchors().size() << " anchors)\n";
    } else {
      std::cerr << "dvx_bench: could not write " << opt.json_path << "\n";
      ++failures;
    }
  }
  if (recorder) {
    scoped.reset();  // uninstall before serializing: no site may still fire
    std::ofstream f(opt.analyze_path, std::ios::binary);
    f << recorder->report_json();
    if (f.good()) {
      os << "[dvx_bench] wrote " << opt.analyze_path << " ("
         << recorder->objects().size() << " objects, "
         << recorder->conflicts().size() << " cross-shard write conflicts)\n";
    } else {
      std::cerr << "dvx_bench: could not write " << opt.analyze_path << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int run_workloads(const std::vector<const Workload*>& workloads, const RunOptions& opt,
                  int jobs, runtime::ResultSink& sink,
                  const std::function<void(const Workload&, bool ok)>& per_figure) {
  for (const std::string& dir : {opt.metrics_dir, opt.trace_dir}) {
    if (dir.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::cerr << "dvx_bench: cannot create output directory '" << dir
                << "': " << ec.message() << "\n";
      return static_cast<int>(workloads.size());
    }
  }
  struct PlannedFigure {
    const Workload* workload = nullptr;
    std::vector<RunPoint> points;
    std::vector<PointResult> results;
    std::string plan_error;
  };
  std::vector<PlannedFigure> figures(workloads.size());
  for (std::size_t f = 0; f < workloads.size(); ++f) {
    figures[f].workload = workloads[f];
    try {
      figures[f].points = workloads[f]->plan(opt);
    } catch (const std::exception& e) {
      figures[f].plan_error = e.what();
    }
    figures[f].results.resize(figures[f].points.size());
  }

  // One task per point across every selected figure; slots are preallocated
  // so workers never touch a shared container.
  std::vector<std::function<void()>> tasks;
  for (std::size_t f = 0; f < figures.size(); ++f) {
    for (std::size_t i = 0; i < figures[f].points.size(); ++i) {
      tasks.push_back([&figures, &opt, f, i] {
        // Each point is its own recorder epoch: every run restarts its
        // engine's window counter at 0, and epochs keep those from aliasing.
        // No-op unless a ShardAccessRecorder is installed.
        analyze::next_epoch();
        figures[f].results[i] =
            execute_point(*figures[f].workload, figures[f].points[i], opt);
      });
    }
  }
  PointScheduler scheduler(jobs);
  if (scheduler.jobs() > 1 && tasks.size() > 1) {
    std::cerr << "[dvx_bench] running " << tasks.size() << " points across "
              << figures.size() << " figure(s) on " << scheduler.jobs()
              << " threads\n";
  }
  scheduler.run(tasks);

  // Report in selection order, so tables, JSON records, and anchors come out
  // in the canonical plan order no matter how execution interleaved. A
  // figure with a failed point (or a failing plan/report) fails alone.
  int failures = 0;
  for (auto& fig : figures) {
    const Workload& w = *fig.workload;
    bool figure_ok = fig.plan_error.empty();
    if (!fig.plan_error.empty()) {
      std::cerr << "dvx_bench: " << w.figure() << " failed to plan: " << fig.plan_error
                << "\n";
    }
    for (const auto& r : fig.results) {
      if (!r.failed()) continue;
      figure_ok = false;
      std::cerr << "dvx_bench: " << w.figure() << " point " << r.point.index << " ("
                << to_string(r.point.backend) << ", " << r.point.nodes << " nodes"
                << (r.point.variant.empty() ? "" : ", " + r.point.variant)
                << ") failed: " << r.error << "\n";
    }
    if (figure_ok) {
      try {
        w.report(opt, fig.results, sink);
      } catch (const std::exception& e) {
        std::cerr << "dvx_bench: " << w.figure() << " failed to report: " << e.what()
                  << "\n";
        figure_ok = false;
      }
    }
    if (!figure_ok) ++failures;
    if (per_figure) per_figure(w, figure_ok);
  }
  return failures;
}

int run_cli(int argc, const char* const* argv) {
  CliOptions opt;
  if (!parse_args(argc, argv, opt, std::cerr)) return 2;
  if (opt.help) {
    // --help wins over any (valid) selection; garbage was rejected above.
    print_usage(std::cerr);
    return 0;
  }
  if (!opt.list && !opt.all && opt.figures.empty()) {
    // No figure selection — even with --json or other options, there is
    // nothing to run: print usage instead of reaching run_with.
    print_usage(std::cerr);
    return 2;
  }
  return run_with(std::move(opt));
}

int run_figures(const std::vector<std::string>& figures) {
  CliOptions opt;
  opt.figures = figures;
  return run_with(std::move(opt));
}

}  // namespace dvx::exp
