#include "exp/driver.hpp"

#include <cstdint>
#include <exception>
#include <iostream>
#include <sstream>
#include <string_view>

#include "exp/workload.hpp"

namespace dvx::exp {
namespace {

void print_usage(std::ostream& os) {
  os << "dvx_bench — unified driver for every paper-figure reproduction\n"
        "\n"
        "usage:\n"
        "  dvx_bench --list                      describe the registered workloads\n"
        "  dvx_bench --figure fig6[,fig7,...]    run specific figures (tag or name)\n"
        "  dvx_bench --all                       run every registered workload\n"
        "\n"
        "options:\n"
        "  --nodes 4,8,16,32    override the node sweep (figures with a sweep)\n"
        "  --fast               shrink problem sizes (same as DVX_BENCH_FAST=1)\n"
        "  --seed N             override the RNG seed (workloads that use one)\n"
        "  --json PATH          also write the combined JSON document to PATH\n"
        "  --no-figure-json     skip the per-figure BENCH_<figure>.json files\n"
        "  --help               this text\n"
        "\n"
        "Every run prints the paper-figure tables and, unless suppressed, writes\n"
        "one BENCH_<figure>.json per figure (schema: DESIGN.md §6).\n";
}

std::vector<std::string> split_csv(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

void print_list(std::ostream& os) {
  runtime::Table t("registered workloads", {"figure", "name", "default nodes", "metrics"});
  for (const auto* w : Registry::instance().all()) {
    std::ostringstream nodes;
    const auto ns = w->default_nodes(false);
    for (std::size_t i = 0; i < ns.size(); ++i) nodes << (i ? "," : "") << ns[i];
    std::ostringstream metrics;
    const auto ms = w->metric_specs();
    for (std::size_t i = 0; i < ms.size(); ++i) metrics << (i ? "," : "") << ms[i].key;
    t.row({w->figure(), w->name(), nodes.str(), metrics.str()});
  }
  t.print(os);
  os << "\nparameters (full / fast defaults):\n";
  for (const auto* w : Registry::instance().all()) {
    os << "  " << w->figure() << " (" << w->name() << "):\n";
    for (const auto& p : w->param_specs()) {
      os << "    " << p.key << " = " << p.full_value << " / " << p.fast_value << "  — "
         << p.description << "\n";
    }
  }
}

struct CliOptions {
  bool list = false;
  bool all = false;
  std::vector<std::string> figures;
  RunOptions run;
  std::string json_path;
  bool figure_json = true;
};

/// Returns true on success; on failure prints the problem and returns false.
bool parse_args(int argc, const char* const* argv, CliOptions& opt, std::ostream& err) {
  auto need_value = [&](int& i, std::string_view flag) -> const char* {
    if (i + 1 >= argc) {
      err << "dvx_bench: " << flag << " requires a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--all") {
      opt.all = true;
    } else if (arg == "--fast") {
      opt.run.fast = true;
    } else if (arg == "--no-figure-json") {
      opt.figure_json = false;
    } else if (arg == "--figure") {
      const char* v = need_value(i, arg);
      if (!v) return false;
      for (auto& f : split_csv(v)) {
        if (f == "all") {
          opt.all = true;
        } else {
          opt.figures.push_back(std::move(f));
        }
      }
    } else if (arg == "--nodes") {
      const char* v = need_value(i, arg);
      if (!v) return false;
      for (const auto& n : split_csv(v)) {
        try {
          opt.run.nodes.push_back(std::stoi(n));
        } catch (const std::exception&) {
          err << "dvx_bench: bad --nodes value '" << n << "'\n";
          return false;
        }
        if (opt.run.nodes.back() < 2) {
          err << "dvx_bench: --nodes values must be >= 2\n";
          return false;
        }
      }
    } else if (arg == "--seed") {
      const char* v = need_value(i, arg);
      if (!v) return false;
      try {
        opt.run.seed = std::stoull(v);
      } catch (const std::exception&) {
        err << "dvx_bench: bad --seed value '" << v << "'\n";
        return false;
      }
    } else if (arg == "--json") {
      const char* v = need_value(i, arg);
      if (!v) return false;
      opt.json_path = v;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(err);
      opt.list = false;
      opt.all = false;
      opt.figures.clear();
      opt.json_path.clear();
      return true;
    } else {
      err << "dvx_bench: unknown argument '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

int run_with(CliOptions opt) {
  std::ostream& os = opt.run.out ? *opt.run.out : std::cout;
  if (opt.list) {
    print_list(os);
    return 0;
  }

  std::vector<const Workload*> selected;
  if (opt.all) {
    selected = Registry::instance().all();
  } else {
    for (const auto& f : opt.figures) {
      const Workload* w = Registry::instance().find(f);
      if (!w) {
        std::cerr << "dvx_bench: unknown figure or workload '" << f
                  << "' (try --list)\n";
        return 2;
      }
      selected.push_back(w);
    }
  }
  if (selected.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  if (!opt.run.fast) opt.run.fast = fast_mode_env();

  runtime::ResultSink sink;
  sink.fast = opt.run.fast;
  sink.seed = opt.run.seed;
  int failures = 0;
  for (const auto* w : selected) {
    try {
      w->run(opt.run, sink);
    } catch (const std::exception& e) {
      std::cerr << "dvx_bench: " << w->figure() << " failed: " << e.what() << "\n";
      ++failures;
      continue;
    }
    if (opt.figure_json) {
      if (sink.write_figure_file(w->figure())) {
        os << "\n[dvx_bench] wrote BENCH_" << w->figure() << ".json\n";
      } else {
        std::cerr << "dvx_bench: could not write BENCH_" << w->figure() << ".json\n";
        ++failures;
      }
    }
  }
  if (!opt.json_path.empty()) {
    if (sink.write_file(opt.json_path)) {
      os << "[dvx_bench] wrote " << opt.json_path << " (" << sink.records().size()
         << " records, " << sink.anchors().size() << " anchors)\n";
    } else {
      std::cerr << "dvx_bench: could not write " << opt.json_path << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int run_cli(int argc, const char* const* argv) {
  CliOptions opt;
  if (!parse_args(argc, argv, opt, std::cerr)) return 2;
  if (!opt.list && !opt.all && opt.figures.empty() && opt.json_path.empty()) {
    // `--help`, or no selection at all: parse_args already printed usage for
    // --help; print it here for the bare invocation.
    bool was_help = false;
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i];
      if (a == "--help" || a == "-h") was_help = true;
    }
    if (!was_help) print_usage(std::cerr);
    return was_help ? 0 : 2;
  }
  return run_with(std::move(opt));
}

int run_figures(const std::vector<std::string>& figures) {
  CliOptions opt;
  opt.figures = figures;
  return run_with(std::move(opt));
}

}  // namespace dvx::exp
