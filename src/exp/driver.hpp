#pragma once
// The unified benchmark driver behind the `dvx_bench` binary (and the
// legacy per-figure wrapper binaries). One command reproduces any paper
// figure:
//
//   dvx_bench --list
//   dvx_bench --figure fig6 --nodes 4,8,16,32 --fast --json out.json
//   dvx_bench --all
//
// Every run prints the legacy tables and writes one machine-readable
// `BENCH_<figure>.json` per figure (schema in DESIGN.md §6); `--json PATH`
// additionally writes the combined document.

#include <string>
#include <vector>

namespace dvx::exp {

/// Full CLI entry point; argv[0] is ignored. Returns a process exit code
/// (0 = success, 1 = a figure failed to run, 2 = usage error).
int run_cli(int argc, const char* const* argv);

/// Legacy-wrapper entry: runs the given figures with default options
/// (fast mode from DVX_BENCH_FAST, default node sweeps, tables to stdout,
/// per-figure BENCH_*.json files).
int run_figures(const std::vector<std::string>& figures);

}  // namespace dvx::exp
