#pragma once
// The unified benchmark driver behind the `dvx_bench` binary (and the
// legacy per-figure wrapper binaries). One command reproduces any paper
// figure:
//
//   dvx_bench --list
//   dvx_bench --figure fig6 --nodes 4,8,16,32 --fast --json out.json
//   dvx_bench --all --jobs 8
//
// Every run prints the legacy tables and writes one machine-readable
// `BENCH_<figure>.json` per figure (schema in DESIGN.md §6); `--json PATH`
// additionally writes the combined document. Measurement points run on a
// PointScheduler thread pool (`--jobs N` / DVX_BENCH_JOBS, default
// hardware_concurrency); output is byte-identical at any parallelism.

#include <functional>
#include <string>
#include <vector>

#include "exp/workload.hpp"

namespace dvx::exp {

/// Full CLI entry point; argv[0] is ignored. Returns a process exit code
/// (0 = success, 1 = a figure failed to run, 2 = usage error).
int run_cli(int argc, const char* const* argv);

/// Legacy-wrapper entry: runs the given figures with default options
/// (fast mode from DVX_BENCH_FAST, default node sweeps, tables to stdout,
/// per-figure BENCH_*.json files).
int run_figures(const std::vector<std::string>& figures);

/// Embedding/testing entry point, also the core of run_cli: plans every
/// workload, executes all points on a `jobs`-wide PointScheduler, then
/// reports each figure in selection order into `sink` (canonical plan-order
/// records, so output does not depend on `jobs`). A point that throws fails
/// only its own figure: its error is printed to std::cerr after all points
/// ran, sibling figures still report. `per_figure`, when set, is invoked
/// after each figure's report (ok == false for a failed figure) — the CLI
/// uses it to write the per-figure BENCH_*.json files. Returns the number
/// of failed figures.
int run_workloads(const std::vector<const Workload*>& workloads,
                  const RunOptions& opt, int jobs, runtime::ResultSink& sink,
                  const std::function<void(const Workload&, bool ok)>& per_figure = {});

}  // namespace dvx::exp
