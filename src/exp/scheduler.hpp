#pragma once
// Point-level parallel execution for the experiment layer (DESIGN.md §6).
//
// A `dvx_bench --all` sweep is ~118 independent (workload, backend, nodes,
// seed) simulation points, each owning its own `sim::Engine` /
// `runtime::Cluster`. The PointScheduler fans them out over a fixed-size
// thread pool: tasks are claimed from a shared atomic cursor, so long points
// (fig9 apps at 32 nodes) and short ones (fig3 small messages) pack tightly
// regardless of plan order. Determinism is the planner's job — every task
// must be pure — the scheduler only guarantees each task runs exactly once
// and that run() returns after all of them finished.

#include <functional>
#include <vector>

namespace dvx::exp {

class PointScheduler {
 public:
  /// `jobs` worker threads; values < 1 are clamped to 1. At jobs == 1 no
  /// thread is spawned: tasks run inline on the caller, in index order,
  /// exactly like the historical sequential driver.
  explicit PointScheduler(int jobs);

  int jobs() const noexcept { return jobs_; }

  /// Runs every task exactly once; blocks until all completed. The calling
  /// thread participates as one of the workers. Tasks must not throw —
  /// capture failures into your result slot (see exp::execute_point).
  void run(const std::vector<std::function<void()>>& tasks) const;

  /// The default parallelism: DVX_BENCH_JOBS when set to a valid positive
  /// integer, otherwise std::thread::hardware_concurrency() (min 1).
  static int default_jobs();

 private:
  int jobs_;
};

}  // namespace dvx::exp
