#include "exp/workload.hpp"

#include <cstdlib>
#include <iostream>

#include "runtime/constants.hpp"

namespace dvx::exp {

const char* to_string(Backend b) { return b == Backend::kDv ? "dv" : "mpi"; }

bool Workload::has_backend(Backend) const { return true; }

std::vector<int> Workload::default_nodes(bool) const { return paper_node_counts(); }

ParamMap Workload::default_params(bool fast) const {
  ParamMap out;
  for (const auto& spec : param_specs()) {
    out[spec.key] = fast ? spec.fast_value : spec.full_value;
  }
  return out;
}

void Workload::banner(std::ostream& os) const {
  runtime::figure_banner(os, title(), paper_anchor());
}

runtime::BenchRecord Workload::make_record(Backend backend, int nodes,
                                           const ParamMap& params, MetricMap metrics,
                                           std::string variant) const {
  runtime::BenchRecord r;
  r.figure = figure();
  r.workload = name();
  r.backend = to_string(backend);
  r.variant = std::move(variant);
  r.nodes = nodes;
  r.config = params;
  r.metrics = std::move(metrics);
  return r;
}

runtime::BenchRecord Workload::make_derived_record(int nodes, MetricMap metrics,
                                                   std::string variant) const {
  runtime::BenchRecord r;
  r.figure = figure();
  r.workload = name();
  r.backend = "derived";
  r.variant = std::move(variant);
  r.nodes = nodes;
  r.metrics = std::move(metrics);
  return r;
}

runtime::AnchorCheck Workload::make_anchor(std::string name, double observed,
                                           double expected, bool pass,
                                           std::string detail) const {
  runtime::AnchorCheck a;
  a.figure = figure();
  a.name = std::move(name);
  a.observed = observed;
  a.expected = expected;
  a.pass = pass;
  a.detail = std::move(detail);
  return a;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->add(make_pingpong_workload());
    r->add(make_barrier_workload());
    r->add(make_gups_trace_workload());
    r->add(make_gups_workload());
    r->add(make_fft1d_workload());
    r->add(make_bfs_workload());
    r->add(make_apps_workload());
    r->add(make_ablation_aggregation_workload());
    r->add(make_ablation_fabric_workload());
    return r;
  }();
  return *registry;
}

void Registry::add(std::unique_ptr<Workload> workload) {
  workloads_.push_back(std::move(workload));
}

const Workload* Registry::find(std::string_view name_or_figure) const {
  for (const auto& w : workloads_) {
    if (w->name() == name_or_figure || w->figure() == name_or_figure) return w.get();
  }
  return nullptr;
}

std::vector<const Workload*> Registry::all() const {
  std::vector<const Workload*> out;
  out.reserve(workloads_.size());
  for (const auto& w : workloads_) out.push_back(w.get());
  return out;
}

std::vector<int> paper_node_counts(int first) {
  std::vector<int> out;
  for (int n = first; n <= runtime::paper::kMaxNodes; n *= 2) out.push_back(n);
  return out;
}

bool fast_mode_env() {
  const char* v = std::getenv("DVX_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace dvx::exp
