#include "exp/workload.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "obs/collector.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace_export.hpp"
#include "runtime/constants.hpp"
#include "sim/rng.hpp"

namespace dvx::exp {
namespace {

/// FNV-1a, used to fold the figure tag into the seed-derivation stream so
/// two figures never share a sub-seed sequence.
std::uint64_t hash_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kDv:
      return "dv";
    case Backend::kMpiIb:
      return "mpi";
    case Backend::kMpiTorus:
      return "mpi-torus";
  }
  return "?";  // unreachable; keeps -Wreturn-type quiet
}

Backend parse_backend(std::string_view id) {
  if (id == "dv") return Backend::kDv;
  if (id == "mpi" || id == "mpi-ib") return Backend::kMpiIb;
  if (id == "mpi-torus") return Backend::kMpiTorus;
  throw std::invalid_argument("unknown backend '" + std::string(id) +
                              "' (expected dv, mpi-ib/mpi, or mpi-torus)");
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> kAll = {Backend::kDv, Backend::kMpiIb,
                                            Backend::kMpiTorus};
  return kAll;
}

const char* display_name(Backend b) {
  switch (b) {
    case Backend::kDv:
      return "Data Vortex";
    case Backend::kMpiIb:
      return "Infiniband";
    case Backend::kMpiTorus:
      return "3D Torus";
  }
  return "?";  // unreachable; keeps -Wreturn-type quiet
}

std::vector<Backend> Workload::default_backends() const {
  std::vector<Backend> out;
  for (Backend b : {Backend::kDv, Backend::kMpiIb}) {
    if (has_backend(b)) out.push_back(b);
  }
  return out;
}

std::vector<Backend> Workload::selected_backends(const RunOptions& opt) const {
  if (opt.backends.empty()) return default_backends();
  std::vector<Backend> out;
  for (Backend b : all_backends()) {  // canonical order, deduplicated
    if (!has_backend(b)) continue;
    for (Backend want : opt.backends) {
      if (want == b) {
        out.push_back(b);
        break;
      }
    }
  }
  return out;
}

std::vector<int> Workload::default_nodes(bool) const { return paper_node_counts(); }

MetricMap Workload::execute(const RunPoint& point, std::ostream&) const {
  return run_backend(point.backend, point.nodes, point.params);
}

void Workload::run(const RunOptions& opt, runtime::ResultSink& sink) const {
  const auto points = plan(opt);
  std::vector<PointResult> results;
  results.reserve(points.size());
  for (const auto& p : points) results.push_back(execute_point(*this, p, opt));
  std::string errors;
  for (const auto& r : results) {
    if (!r.failed()) continue;
    if (!errors.empty()) errors += "; ";
    errors += "point " + std::to_string(r.point.index) + " (" +
              to_string(r.point.backend) + ", " + std::to_string(r.point.nodes) +
              " nodes): " + r.error;
  }
  if (!errors.empty()) throw std::runtime_error(errors);
  report(opt, results, sink);
}

ParamMap Workload::default_params(bool fast) const {
  ParamMap out;
  for (const auto& spec : param_specs()) {
    out[spec.key] = fast ? spec.fast_value : spec.full_value;
  }
  return out;
}

void Workload::banner(std::ostream& os) const {
  runtime::figure_banner(os, title(), paper_anchor());
}

runtime::BenchRecord Workload::make_record(Backend backend, int nodes,
                                           const ParamMap& params, MetricMap metrics,
                                           std::string variant) const {
  runtime::BenchRecord r;
  r.figure = figure();
  r.workload = name();
  r.backend = to_string(backend);
  r.variant = std::move(variant);
  r.nodes = nodes;
  r.config = params;
  r.metrics = std::move(metrics);
  return r;
}

runtime::BenchRecord Workload::make_record(const PointResult& result) const {
  return make_record(result.point.backend, result.point.nodes, result.point.params,
                     result.metrics, result.point.variant);
}

runtime::BenchRecord Workload::make_derived_record(int nodes, MetricMap metrics,
                                                   std::string variant) const {
  runtime::BenchRecord r;
  r.figure = figure();
  r.workload = name();
  r.backend = "derived";
  r.variant = std::move(variant);
  r.nodes = nodes;
  r.metrics = std::move(metrics);
  return r;
}

runtime::AnchorCheck Workload::make_anchor(std::string name, double observed,
                                           double expected, bool pass,
                                           std::string detail) const {
  runtime::AnchorCheck a;
  a.figure = figure();
  a.name = std::move(name);
  a.observed = observed;
  a.expected = expected;
  a.pass = pass;
  a.detail = std::move(detail);
  return a;
}

PlanBuilder::PlanBuilder(const Workload& workload, const RunOptions& opt) {
  if (opt.seed != 0) {
    figure_seed_ = sim::derive_seed(opt.seed, hash_string(workload.figure()));
  }
}

void PlanBuilder::add(Backend backend, int nodes, const ParamMap& params,
                      std::string variant) {
  RunPoint p;
  p.index = points_.size();
  p.backend = backend;
  p.nodes = nodes;
  p.params = params;
  p.variant = std::move(variant);
  p.seed = figure_seed_ == 0 ? 0 : sim::derive_seed(figure_seed_, p.index);
  points_.push_back(std::move(p));
}

const PointResult* find_result(const std::vector<PointResult>& results,
                               Backend backend, int nodes,
                               std::string_view variant) {
  for (const auto& r : results) {
    if (r.point.backend == backend && r.point.nodes == nodes &&
        r.point.variant == variant) {
      return &r;
    }
  }
  return nullptr;
}

PointResult execute_point(const Workload& workload, const RunPoint& point) {
  PointResult result;
  result.point = point;
  std::ostringstream log;
  try {
    result.metrics = workload.execute(point, log);
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  result.log = log.str();
  return result;
}

PointResult execute_point(const Workload& workload, const RunPoint& point,
                          const RunOptions& opt) {
  const bool want_metrics = !opt.metrics_dir.empty();
  const bool want_trace = !opt.trace_dir.empty();
  if (!want_metrics && !want_trace) return execute_point(workload, point);

  obs::Collector collector;
  collector.want_trace = want_trace;
  PointResult result;
  {
    const obs::ScopedCollector scope(collector);
    result = execute_point(workload, point);
  }
  // Only successful points leave files behind, so the output directory's
  // content is a pure function of the plan (the --jobs determinism contract).
  if (result.failed()) return result;
  const std::string tag = workload.figure() + "_p" + std::to_string(point.index);
  if (want_metrics) {
    const std::string path = opt.metrics_dir + "/METRICS_" + tag + ".json";
    if (!obs::write_snapshot_file(collector.registry, path)) {
      result.error = "could not write " + path;
    }
  }
  if (want_trace && !result.failed()) {
    const std::string path = opt.trace_dir + "/TRACE_" + tag + ".json";
    if (!obs::write_chrome_trace_file(collector.trace, path)) {
      result.error = "could not write " + path;
    }
  }
  return result;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->add(make_pingpong_workload());
    r->add(make_barrier_workload());
    r->add(make_gups_trace_workload());
    r->add(make_gups_workload());
    r->add(make_fft1d_workload());
    r->add(make_bfs_workload());
    r->add(make_apps_workload());
    r->add(make_ablation_aggregation_workload());
    r->add(make_ablation_fabric_workload());
    r->add(make_traffic_workload());
    r->add(make_serving_workload());
    return r;
  }();
  return *registry;
}

void Registry::add(std::unique_ptr<Workload> workload) {
  workloads_.push_back(std::move(workload));
}

const Workload* Registry::find(std::string_view name_or_figure) const {
  for (const auto& w : workloads_) {
    if (w->name() == name_or_figure || w->figure() == name_or_figure) return w.get();
  }
  return nullptr;
}

std::vector<const Workload*> Registry::all() const {
  std::vector<const Workload*> out;
  out.reserve(workloads_.size());
  for (const auto& w : workloads_) out.push_back(w.get());
  return out;
}

std::vector<int> paper_node_counts(int first) {
  std::vector<int> out;
  for (int n = first; n <= runtime::paper::kMaxNodes; n *= 2) out.push_back(n);
  return out;
}

bool fast_mode_env() {
  const char* v = std::getenv("DVX_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace dvx::exp
