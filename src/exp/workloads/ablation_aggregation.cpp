// Ablation — how much the paper's "lessons learned" optimizations matter.
//
//  1. Source aggregation (GUPS): sweep the update-buffer size. Small
//     buffers mean one PCIe DMA per few packets — the I/O latency is not
//     amortized and the DV advantage collapses (paper §VI: batches "can be
//     aggregated for transfer across the PCIe bus").
//  2. Send-path choice (bulk puts): the same 64 KiB put issued through the
//     three API paths — the DMA/Cached path is the only one that feeds the
//     fabric at line rate (paper §V).

#include <iostream>
#include <vector>

#include "apps/gups.hpp"
#include "dvapi/collectives.hpp"
#include "dvapi/context.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

namespace sim = dvx::sim;
namespace vic = dvx::vic;
namespace dvapi = dvx::dvapi;
namespace runtime = dvx::runtime;
using sim::Coro;

constexpr const char* kPathNames[3] = {"dwr_nocached", "dwr_cached", "dma_cached"};

double put_path_seconds(int which, std::int64_t words) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 2});
  double out = 0.0;
  constexpr int kCtr = dvapi::kFirstFreeCounter;
  cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    if (ctx.rank() == 1) {
      co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
    }
    co_await ctx.barrier();
    const sim::Time t0 = node.now();
    if (ctx.rank() == 0) {
      std::vector<vic::Packet> batch(static_cast<std::size_t>(words));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].header =
            vic::Header{1, vic::DestKind::kDvMemory, static_cast<std::uint8_t>(kCtr),
                        dvapi::kFirstFreeDvWord + static_cast<std::uint32_t>(i)};
        batch[i].payload = i;
      }
      switch (which) {
        case 0: co_await ctx.send_direct_batch(batch); break;
        case 1: co_await ctx.send_cached_batch(batch); break;
        default: co_await ctx.send_dma_batch(batch); break;
      }
    } else {
      co_await ctx.counter_wait_zero(kCtr);
      out = sim::to_seconds(node.now() - t0);
    }
    co_await ctx.barrier();
  });
  return out;
}

class AblationAggregationWorkload final : public Workload {
 public:
  std::string name() const override { return "ablation_aggregation"; }
  std::string figure() const override { return "ablation_aggregation"; }
  std::string title() const override {
    return "Ablation — aggregation and send-path choices";
  }
  std::string paper_anchor() const override {
    return "quantifies the paper's 'lessons learned'";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"local_table_words", 1 << 14, 1 << 14, "GUPS table words per node"},
        {"updates_per_node", 1 << 14, 1 << 12, "GUPS updates per node"},
        {"buffer_limit", 1024, 1024, "GUPS source-side batch size (swept)"},
        {"put_words", 64 * 1024, 64 * 1024, "words in the bulk-put comparison"},
        {"path", 2, 2, "DV send path for the put: 0/1/2 (swept)"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"aggregate_mups", "MUPS", "GUPS sweep: aggregate update rate"},
        {"put_seconds", "s", "put sweep: receiver-visible completion time"},
        {"put_bytes_per_sec", "B/s", "put sweep: effective bandwidth"},
    };
  }

  std::vector<int> default_nodes(bool) const override { return {16}; }

  // The ablation probes Data Vortex API choices; there is no network
  // comparison in it, so it only has a dv series.
  bool has_backend(Backend b) const override { return b == Backend::kDv; }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    if (backend != Backend::kDv) return {};  // the ablation probes DV choices
    runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes});
    dvx::apps::GupsParams gp{
        .local_table_words = static_cast<std::uint64_t>(params.at("local_table_words")),
        .updates_per_node = static_cast<std::uint64_t>(params.at("updates_per_node")),
        .buffer_limit = static_cast<int>(params.at("buffer_limit")),
    };
    const auto res = dvx::apps::run_gups_dv(cluster, gp);
    return {{"aggregate_mups", res.gups() * 1e3}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    if (selected_backends(opt).empty()) return builder.take();  // dv filtered out
    ParamMap params = default_params(opt.fast);
    const int nodes = opt.nodes.empty() ? default_nodes(opt.fast).front() : opt.nodes.front();
    for (int buf : {1024, 128, 16}) {
      params["buffer_limit"] = buf;
      builder.add(Backend::kDv, nodes, params, "buffer_sweep");
    }
    params["buffer_limit"] = 1024;
    for (int p = 0; p < 3; ++p) {
      params["path"] = p;
      builder.add(Backend::kDv, 2, params, kPathNames[p]);
    }
    return builder.take();
  }

  // The put-path points measure a bulk put outside run_backend's GUPS probe;
  // dispatch on the variant the plan assigned.
  MetricMap execute(const RunPoint& point, std::ostream& log) const override {
    if (point.variant == "buffer_sweep") return Workload::execute(point, log);
    const auto words = static_cast<std::int64_t>(point.params.at("put_words"));
    const double s =
        put_path_seconds(static_cast<int>(point.params.at("path")), words);
    return {{"put_seconds", s},
            {"put_bytes_per_sec", static_cast<double>(words * 8) / s}};
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    if (results.empty()) {  // e.g. --backends without dv
      os << "\n(no points: this ablation only has a dv series)\n";
      return;
    }
    const int nodes = opt.nodes.empty() ? default_nodes(opt.fast).front() : opt.nodes.front();

    runtime::Table t1("GUPS-DV vs PCIe aggregation (" + std::to_string(nodes) +
                          " nodes): update-buffer sweep",
                      {"buffer (updates)", "aggregate MUPS", "vs 1024-buffer"});
    double base = 0.0, smallest = 0.0;
    const int bufs[3] = {1024, 128, 16};
    for (int i = 0; i < 3; ++i) {
      const PointResult& point = results[static_cast<std::size_t>(i)];
      const double mups = point.metrics.at("aggregate_mups");
      if (bufs[i] == 1024) base = mups;
      smallest = mups;
      t1.row({std::to_string(bufs[i]), runtime::fmt(mups), runtime::fmt(mups / base)});
      sink.add(make_record(point));
    }
    t1.print(os);

    runtime::Table t2("64 Ki-word put through each send path (receiver-visible time)",
                      {"path", "time", "effective bandwidth"});
    const char* names[3] = {"DWr/NoCached", "DWr/Cached", "DMA/Cached"};
    double path_bw[3] = {0, 0, 0};
    for (int p = 0; p < 3; ++p) {
      const PointResult& point = results[static_cast<std::size_t>(3 + p)];
      const double s = point.metrics.at("put_seconds");
      path_bw[p] = point.metrics.at("put_bytes_per_sec");
      t2.row({names[p], runtime::fmt_us(s * 1e6), runtime::fmt_gbs(path_bw[p])});
      sink.add(make_record(point));
    }
    t2.print(os);

    os << "\nreading: shrinking the source-side batch multiplies per-DMA\n"
          "setup costs into the update stream; PIO paths cap at the PCIe\n"
          "lane rate regardless of batching. Both effects motivate the\n"
          "paper's 'aggregation at source' restructuring.\n";

    sink.add_anchor(make_anchor("small_buffers_collapse_rate", smallest / base, 1.0,
                                smallest < 0.5 * base,
                                "16-update buffers lose >2x vs the 1024-update cap"));
    sink.add_anchor(make_anchor("dma_only_line_rate", path_bw[2], path_bw[1],
                                path_bw[2] > 2.0 * path_bw[1],
                                "DMA/Cached far above both PIO paths on a bulk put"));
  }
};

}  // namespace

std::unique_ptr<Workload> make_ablation_aggregation_workload() {
  return std::make_unique<AblationAggregationWorkload>();
}

}  // namespace dvx::exp
