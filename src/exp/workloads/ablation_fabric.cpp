// Ablation — cycle-accurate switch vs analytic fabric model (DESIGN.md §5),
// plus a three-way routing-model signature probe.
//
// Applications run on the O(1)-per-burst FabricModel; this workload
// validates that choice by comparing it against the cycle-accurate
// deflection-routing simulator on the same offered traffic: uncontended
// latency, latency under uniform load, and hotspot behaviour.
//
// When --backends explicitly selects networks, one "contention" point per
// backend measures what separates the three routing models:
//   * distance — farthest/nearest idle latency (torus pays per hop, the
//     fat-tree is 2-vs-4 links, DV is position-insensitive);
//   * crossing flows — slowdown of a victim message when a flow with
//     different endpoints shares a mid-path link (fat-tree up links and
//     torus ring links serialize; DV has no fixed path to share);
//   * hotspot — the Data Vortex absorbs converging traffic as deflections
//     (~2 extra hops, paper §II) instead of queueing delay.

#include <algorithm>
#include <iostream>
#include <string>

#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "dvnet/traffic.hpp"
#include "exp/workload.hpp"
#include "ib/topology.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "torus/fabric.hpp"

namespace dvx::exp {
namespace {

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
namespace runtime = dvx::runtime;

struct LoadPoint {
  double cycle_latency;      // cycles, mean, cycle-accurate switch
  double cycle_deflections;  // mean deflections per packet
  double analytic_latency;   // cycles, FabricModel equivalent
};

LoadPoint measure(double load, std::uint64_t cycles) {
  dvnet::Geometry g{8, 4};
  LoadPoint out{0, 0, 0};
  // Cycle-accurate measurement.
  {
    dvnet::CycleSwitch sw(g);
    sim::Xoshiro256 rng(7);
    for (std::uint64_t c = 0; c < cycles; ++c) {
      for (int p = 0; p < g.ports(); ++p) {
        if (rng.uniform() < load) {
          sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))));
        }
      }
      sw.step();
    }
    sw.drain(10'000'000);
    out.cycle_latency = sw.latency_stats().mean();
    out.cycle_deflections = sw.deflection_stats().mean();
  }
  // Analytic equivalent: same per-port word rate; latency in cycle units.
  {
    dvnet::FabricParams fp{.geometry = g};
    dvnet::FabricModel fm(fp);
    sim::Xoshiro256 rng(7);
    sim::RunningStats lat;
    sim::Time now = 0;
    const auto word = fm.word_time();
    for (std::uint64_t c = 0; c < cycles; ++c) {
      for (int p = 0; p < g.ports(); ++p) {
        if (rng.uniform() < load) {
          const auto t = fm.send_burst(
              p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))), 1,
              now);
          lat.add(static_cast<double>(t.first_arrival - now) / static_cast<double>(word));
        }
      }
      now += word;
    }
    out.analytic_latency = lat.mean();
  }
  return out;
}

// ---- three-way routing-model signatures (variant "contention") ----------

/// Bulk probe size: big enough that link serialization, not fixed
/// overheads, dominates the with/without-interferer comparison.
constexpr std::int64_t kProbeBytes = 64 * 1024;

/// Latency probe size: a single word, so fixed per-hop costs — not link
/// serialization — dominate the far-vs-near comparison.
constexpr std::int64_t kLatencyProbeBytes = 8;

struct Signatures {
  double near_far = 1.0;     // farthest / nearest idle latency
  double crossing = 1.0;     // victim slowdown from a crossing flow
  double uniform_defl = 0.0; // DV only: deflections/pkt, uniform traffic
  double hotspot_defl = 0.0; // DV only: deflections/pkt, hotspot traffic
  double hotspot_extra_hops = 0.0;  // DV only: mean hops above base
};

double switch_single_packet_cycles(const dvnet::Geometry& g, int dst) {
  dvnet::CycleSwitch sw(g);
  sw.inject(0, dst);
  sw.drain(100'000);
  return sw.latency_stats().mean();
}

Signatures signatures_dv(int nodes, std::uint64_t cycles) {
  const dvnet::Geometry g = dvnet::Geometry::for_ports(nodes, 4);
  Signatures out;
  out.near_far = switch_single_packet_cycles(g, g.ports() - 1) /
                 switch_single_packet_cycles(g, 1);
  // Crossing flows: the analytic model the applications run on serializes
  // only on endpoint ports, so disjoint-endpoint flows never interact —
  // the multipath/deflection assumption the cycle-accurate traffic
  // measurements below justify statistically.
  {
    dvnet::FabricModel alone(dvnet::FabricParams{.geometry = g});
    const sim::Time solo = alone.send_burst(0, 8, kProbeBytes / 8, 0).last_arrival;
    dvnet::FabricModel shared(dvnet::FabricParams{.geometry = g});
    shared.send_burst(1, 16, kProbeBytes / 8, 0);
    out.crossing =
        static_cast<double>(shared.send_burst(0, 8, kProbeBytes / 8, 0).last_arrival) /
        static_cast<double>(solo);
  }
  // Hotspot: same calibrated stable-regime config as the traffic figure
  // (hot-port offered rate ~0.77 of ejection capacity).
  dvnet::TrafficConfig uni{.pattern = dvnet::TrafficPattern::kUniform,
                           .offered_load = 0.08,
                           .hotspot_fraction = 0.3};
  dvnet::TrafficConfig hot = uni;
  hot.pattern = dvnet::TrafficPattern::kHotspot;
  const double base = dvnet::FabricParams{.geometry = g}.derived_base_hops();
  {
    dvnet::CycleSwitch sw(g);
    out.uniform_defl = dvnet::run_synthetic(sw, uni, cycles, 29).deflections.mean();
  }
  {
    dvnet::CycleSwitch sw(g);
    const auto r = dvnet::run_synthetic(sw, hot, cycles, 29);
    out.hotspot_defl = r.deflections.mean();
    out.hotspot_extra_hops = r.hops.mean() - base;
  }
  return out;
}

/// Idle-fabric completion time of one message src -> dst.
double idle_latency(net::Interconnect& f, int src, int dst, std::int64_t bytes) {
  f.reset();
  return static_cast<double>(f.send_message(src, dst, bytes, 0).last_arrival);
}

Signatures signatures_ib(int nodes) {
  Signatures out;
  ib::Fabric probe(nodes);
  // Nearest / farthest by fat-tree path length (2 links same-leaf, 4 across).
  int near = 1, far = 1;
  for (int v = 1; v < nodes; ++v) {
    if (probe.path_links(0, v) < probe.path_links(0, near)) near = v;
    if (probe.path_links(0, v) > probe.path_links(0, far)) far = v;
  }
  out.near_far = idle_latency(probe, 0, far, kLatencyProbeBytes) /
                 idle_latency(probe, 0, near, kLatencyProbeBytes);
  // Crossing flows: victim 0 -> first cross-leaf node, interferer from the
  // same leaf into a third leaf. Distinct endpoints, shared leaf-0 up link.
  int leaf = nodes;
  for (int v = 1; v < nodes; ++v) {
    if (probe.path_links(0, v) > 2) {
      leaf = v;
      break;
    }
  }
  if (leaf < nodes) {
    const int other = 2 * leaf < nodes ? 2 * leaf : leaf;
    const double solo = idle_latency(probe, 0, leaf, kProbeBytes);
    probe.reset();
    probe.send_message(1, other, kProbeBytes, 0);
    out.crossing =
        static_cast<double>(probe.send_message(0, leaf, kProbeBytes, 0).last_arrival) /
        solo;
  }
  return out;
}

Signatures signatures_torus(int nodes) {
  Signatures out;
  torus::Fabric probe(nodes);
  // Nearest / farthest by wraparound Manhattan distance.
  int near = 1, far = 1;
  for (int v = 1; v < nodes; ++v) {
    if (probe.hops(0, v) < probe.hops(0, near)) near = v;
    if (probe.hops(0, v) > probe.hops(0, far)) far = v;
  }
  out.near_far = idle_latency(probe, 0, far, kLatencyProbeBytes) /
                 idle_latency(probe, 0, near, kLatencyProbeBytes);
  // Crossing flows along the longest ring: victim rides 2 hops, the
  // interferer (distinct endpoints) shares the middle link of its path.
  const auto& dims = probe.dims();
  int d = 0;
  for (int i = 1; i < 3; ++i) {
    if (dims[i] > dims[d]) d = i;
  }
  if (dims[d] >= 4) {
    const auto at = [&](int i) {
      std::array<int, 3> c = {0, 0, 0};
      c[static_cast<std::size_t>(d)] = i;
      return probe.node_at(c[0], c[1], c[2]);
    };
    const double solo = idle_latency(probe, at(0), at(2), kProbeBytes);
    probe.reset();
    probe.send_message(at(1), at(3), kProbeBytes, 0);
    out.crossing = static_cast<double>(
                       probe.send_message(at(0), at(2), kProbeBytes, 0).last_arrival) /
                   solo;
  }
  return out;
}

class AblationFabricWorkload final : public Workload {
 public:
  std::string name() const override { return "ablation_fabric"; }
  std::string figure() const override { return "ablation_fabric"; }
  std::string title() const override {
    return "Ablation — cycle-accurate switch vs analytic model";
  }
  std::string paper_anchor() const override {
    return "validates running applications on the O(1) FabricModel";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"cycles", 2000, 400, "fabric cycles of offered traffic per load point"},
        {"offered_load", 0.10, 0.10, "packets/port/cycle of one point (swept)"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"cycle_latency", "cycles", "mean latency, cycle-accurate switch"},
        {"cycle_deflections", "", "mean deflections per packet"},
        {"analytic_latency", "cycles", "mean latency, analytic FabricModel"},
        {"latency_ratio", "", "analytic over cycle-accurate"},
        {"near_far_ratio", "", "contention probe: farthest/nearest idle latency"},
        {"crossing_interference", "",
         "contention probe: victim slowdown from a crossing flow"},
        {"uniform_deflections", "", "contention probe (DV): deflections/pkt, uniform"},
        {"hotspot_deflections", "", "contention probe (DV): deflections/pkt, hotspot"},
        {"hotspot_extra_hops", "", "contention probe (DV): hops above base, hotspot"},
    };
  }

  // The model-validation sweep is DV-only; the "contention" signature probe
  // (added when --backends explicitly selects networks) runs on all three.
  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
      case Backend::kMpiTorus:
        return true;
    }
    return false;
  }
  std::vector<int> default_nodes(bool) const override { return {32}; }

  MetricMap run_backend(Backend backend, int /*nodes*/,
                        const ParamMap& params) const override {
    if (backend != Backend::kDv) return {};
    const auto p = measure(params.at("offered_load"),
                           static_cast<std::uint64_t>(params.at("cycles")));
    return {{"cycle_latency", p.cycle_latency},
            {"cycle_deflections", p.cycle_deflections},
            {"analytic_latency", p.analytic_latency},
            {"latency_ratio", p.analytic_latency / p.cycle_latency}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    const auto backends = selected_backends(opt);
    const bool want_dv =
        std::find(backends.begin(), backends.end(), Backend::kDv) != backends.end();
    if (want_dv) {
      for (double load : {0.02, 0.05, 0.10, 0.15, 0.20}) {
        params["offered_load"] = load;
        builder.add(Backend::kDv, 32, params);
      }
    }
    // The three-way signature probe only runs when the CLI asked for
    // specific backends; the default figure stays the dv model validation.
    if (!opt.backends.empty()) {
      params = default_params(opt.fast);
      for (const Backend b : backends) builder.add(b, 32, params, "contention");
    }
    return builder.take();
  }

  // The "contention" points measure fabric signatures outside run_backend's
  // model-validation probe; dispatch on the variant the plan assigned.
  MetricMap execute(const RunPoint& point, std::ostream& log) const override {
    if (point.variant != "contention") return Workload::execute(point, log);
    const auto cycles = static_cast<std::uint64_t>(point.params.at("cycles"));
    Signatures s;
    switch (point.backend) {
      case Backend::kDv:
        s = signatures_dv(point.nodes, cycles);
        break;
      case Backend::kMpiIb:
        s = signatures_ib(point.nodes);
        break;
      case Backend::kMpiTorus:
        s = signatures_torus(point.nodes);
        break;
    }
    return {{"near_far_ratio", s.near_far},
            {"crossing_interference", s.crossing},
            {"uniform_deflections", s.uniform_defl},
            {"hotspot_deflections", s.hotspot_defl},
            {"hotspot_extra_hops", s.hotspot_extra_hops}};
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    (void)opt;

    runtime::Table t("uniform random traffic, 32-port (H=8, A=4) switch",
                     {"offered load", "cycle lat (cyc)", "defl/pkt", "analytic lat (cyc)",
                      "ratio"});
    bool all_within = true;
    bool have_sweep = false;
    for (const PointResult& point : results) {
      if (!point.point.variant.empty()) continue;
      have_sweep = true;
      const double ratio = point.metrics.at("latency_ratio");
      t.row({runtime::fmt(point.point.params.at("offered_load")),
             runtime::fmt(point.metrics.at("cycle_latency"), 1),
             runtime::fmt(point.metrics.at("cycle_deflections")),
             runtime::fmt(point.metrics.at("analytic_latency"), 1), runtime::fmt(ratio)});
      if (ratio < 0.5 || ratio > 2.0) all_within = false;
      sink.add(make_record(point));
    }
    if (have_sweep) {
      t.print(os);
      os << "\nreading: below saturation (~0.2 packets/port/fabric-cycle) the analytic\n"
            "model tracks the cycle-accurate switch within tens of percent while being\n"
            "orders of magnitude cheaper; in-fabric latency stays flat under load\n"
            "(deflection smoothing), which is what the constant-plus-penalty analytic\n"
            "form assumes. Applications never drive the per-port word rate past the\n"
            "PCIe-limited injection rates, so they sit in the validated regime.\n";

      sink.add_anchor(make_anchor("analytic_tracks_cycle_accurate",
                                  all_within ? 1.0 : 0.0, 1.0, all_within,
                                  "analytic/cycle-accurate latency ratio within 2x at "
                                  "every sub-saturation load"));
    }

    report_contention(results, os, sink);
  }

 private:
  void report_contention(const std::vector<PointResult>& results, std::ostream& os,
                         runtime::ResultSink& sink) const {
    std::vector<const PointResult*> cont;
    for (const PointResult& p : results) {
      if (p.point.variant == "contention") cont.push_back(&p);
    }
    if (cont.empty()) return;

    runtime::Table t(
        "three-way routing-model signatures (1-word latency / 64 KiB crossing probes)",
                     {"fabric", "far/near latency", "crossing-flow slowdown",
                      "hotspot defl/pkt"});
    for (const PointResult* p : cont) {
      const bool dv = p->point.backend == Backend::kDv;
      t.row({display_name(p->point.backend), runtime::fmt(p->metrics.at("near_far_ratio")),
             runtime::fmt(p->metrics.at("crossing_interference")),
             dv ? runtime::fmt(p->metrics.at("uniform_deflections")) + " -> " +
                      runtime::fmt(p->metrics.at("hotspot_deflections"))
                : "-"});
      sink.add(make_record(*p));
      switch (p->point.backend) {
        case Backend::kDv: {
          const double uni = p->metrics.at("uniform_deflections");
          const double hot = p->metrics.at("hotspot_deflections");
          sink.add_anchor(make_anchor("dv_deflects_under_hotspot", hot, uni, hot > uni,
                                      "converging traffic absorbed as deflections "
                                      "(~2 extra hops), not queueing"));
          break;
        }
        case Backend::kMpiIb:
          sink.add_anchor(make_anchor("fat_tree_shared_uplink_serializes",
                                      p->metrics.at("crossing_interference"), 2.0,
                                      p->metrics.at("crossing_interference") > 1.5,
                                      "flows with distinct endpoints serialize on a "
                                      "shared up link"));
          break;
        case Backend::kMpiTorus:
          sink.add_anchor(make_anchor("torus_latency_scales_with_distance",
                                      p->metrics.at("near_far_ratio"), 1.7,
                                      p->metrics.at("near_far_ratio") > 1.3,
                                      "idle latency grows with wraparound Manhattan "
                                      "distance"));
          break;
      }
    }
    t.print(os);
    os << "\nreading: the torus pays per hop (distance scaling) and serializes on\n"
          "dimension-order path links; the fat-tree is distance-flat but crossing\n"
          "flows queue on shared up/down links; the Data Vortex is insensitive to\n"
          "both — contention shows up as ~2 extra deflection hops under hotspot\n"
          "traffic instead of queueing delay.\n";
  }
};

}  // namespace

std::unique_ptr<Workload> make_ablation_fabric_workload() {
  return std::make_unique<AblationFabricWorkload>();
}

}  // namespace dvx::exp
