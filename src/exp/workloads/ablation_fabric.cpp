// Ablation — cycle-accurate switch vs analytic fabric model (DESIGN.md §5).
//
// Applications run on the O(1)-per-burst FabricModel; this workload
// validates that choice by comparing it against the cycle-accurate
// deflection-routing simulator on the same offered traffic: uncontended
// latency, latency under uniform load, and hotspot behaviour.

#include <iostream>

#include "dvnet/cycle_switch.hpp"
#include "dvnet/fabric_model.hpp"
#include "exp/workload.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dvx::exp {
namespace {

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
namespace runtime = dvx::runtime;

struct LoadPoint {
  double cycle_latency;      // cycles, mean, cycle-accurate switch
  double cycle_deflections;  // mean deflections per packet
  double analytic_latency;   // cycles, FabricModel equivalent
};

LoadPoint measure(double load, std::uint64_t cycles) {
  dvnet::Geometry g{8, 4};
  LoadPoint out{0, 0, 0};
  // Cycle-accurate measurement.
  {
    dvnet::CycleSwitch sw(g);
    sim::Xoshiro256 rng(7);
    for (std::uint64_t c = 0; c < cycles; ++c) {
      for (int p = 0; p < g.ports(); ++p) {
        if (rng.uniform() < load) {
          sw.inject(p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))));
        }
      }
      sw.step();
    }
    sw.drain(10'000'000);
    out.cycle_latency = sw.latency_stats().mean();
    out.cycle_deflections = sw.deflection_stats().mean();
  }
  // Analytic equivalent: same per-port word rate; latency in cycle units.
  {
    dvnet::FabricParams fp{.geometry = g};
    dvnet::FabricModel fm(fp);
    sim::Xoshiro256 rng(7);
    sim::RunningStats lat;
    sim::Time now = 0;
    const auto word = fm.word_time();
    for (std::uint64_t c = 0; c < cycles; ++c) {
      for (int p = 0; p < g.ports(); ++p) {
        if (rng.uniform() < load) {
          const auto t = fm.send_burst(
              p, static_cast<int>(rng.below(static_cast<std::uint64_t>(g.ports()))), 1,
              now);
          lat.add(static_cast<double>(t.first_arrival - now) / static_cast<double>(word));
        }
      }
      now += word;
    }
    out.analytic_latency = lat.mean();
  }
  return out;
}

class AblationFabricWorkload final : public Workload {
 public:
  std::string name() const override { return "ablation_fabric"; }
  std::string figure() const override { return "ablation_fabric"; }
  std::string title() const override {
    return "Ablation — cycle-accurate switch vs analytic model";
  }
  std::string paper_anchor() const override {
    return "validates running applications on the O(1) FabricModel";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"cycles", 2000, 400, "fabric cycles of offered traffic per load point"},
        {"offered_load", 0.10, 0.10, "packets/port/cycle of one point (swept)"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"cycle_latency", "cycles", "mean latency, cycle-accurate switch"},
        {"cycle_deflections", "", "mean deflections per packet"},
        {"analytic_latency", "cycles", "mean latency, analytic FabricModel"},
        {"latency_ratio", "", "analytic over cycle-accurate"},
    };
  }

  // The ablation compares two DV fabric models on one switch; there is no
  // MPI side and no node sweep.
  bool has_backend(Backend b) const override { return b == Backend::kDv; }
  std::vector<int> default_nodes(bool) const override { return {32}; }

  MetricMap run_backend(Backend backend, int /*nodes*/,
                        const ParamMap& params) const override {
    if (backend != Backend::kDv) return {};
    const auto p = measure(params.at("offered_load"),
                           static_cast<std::uint64_t>(params.at("cycles")));
    return {{"cycle_latency", p.cycle_latency},
            {"cycle_deflections", p.cycle_deflections},
            {"analytic_latency", p.analytic_latency},
            {"latency_ratio", p.analytic_latency / p.cycle_latency}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    for (double load : {0.02, 0.05, 0.10, 0.15, 0.20}) {
      params["offered_load"] = load;
      builder.add(Backend::kDv, 32, params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    (void)opt;

    runtime::Table t("uniform random traffic, 32-port (H=8, A=4) switch",
                     {"offered load", "cycle lat (cyc)", "defl/pkt", "analytic lat (cyc)",
                      "ratio"});
    bool all_within = true;
    for (const PointResult& point : results) {
      const double ratio = point.metrics.at("latency_ratio");
      t.row({runtime::fmt(point.point.params.at("offered_load")),
             runtime::fmt(point.metrics.at("cycle_latency"), 1),
             runtime::fmt(point.metrics.at("cycle_deflections")),
             runtime::fmt(point.metrics.at("analytic_latency"), 1), runtime::fmt(ratio)});
      if (ratio < 0.5 || ratio > 2.0) all_within = false;
      sink.add(make_record(point));
    }
    t.print(os);
    os << "\nreading: below saturation (~0.2 packets/port/fabric-cycle) the analytic\n"
          "model tracks the cycle-accurate switch within tens of percent while being\n"
          "orders of magnitude cheaper; in-fabric latency stays flat under load\n"
          "(deflection smoothing), which is what the constant-plus-penalty analytic\n"
          "form assumes. Applications never drive the per-port word rate past the\n"
          "PCIe-limited injection rates, so they sit in the validated regime.\n";

    sink.add_anchor(make_anchor("analytic_tracks_cycle_accurate", all_within ? 1.0 : 0.0,
                                1.0, all_within,
                                "analytic/cycle-accurate latency ratio within 2x at "
                                "every sub-saturation load"));
  }
};

}  // namespace

std::unique_ptr<Workload> make_ablation_fabric_workload() {
  return std::make_unique<AblationFabricWorkload>();
}

}  // namespace dvx::exp
