// Figure 8 — Graph500 BFS harmonic-mean TEPS (paper §VI).
//
// Kronecker graph, level-synchronous BFS over multiple random roots.
// MPI aggregates candidates per destination (alltoall); the Data Vortex
// streams single-packet candidates with source-only aggregation. Paper:
// DV consistently above IB, gap widening with nodes. (Paper runs 64
// searches on the largest graph that fits; reproduction scales down.)

#include <algorithm>
#include <iostream>

#include "apps/bfs.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"
#include "sim/rng.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;

class BfsWorkload final : public Workload {
 public:
  std::string name() const override { return "bfs"; }
  std::string figure() const override { return "fig8"; }
  std::string title() const override {
    return "Figure 8 — BFS harmonic-mean TEPS (Graph500)";
  }
  std::string paper_anchor() const override {
    return "DV consistently above IB; the gap widens with node count";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"scale", 15, 13, "2^scale vertices"},
        {"edge_factor", 16, 16, "Graph500 default edges per vertex"},
        {"searches", 4, 2, "BFS roots timed (paper runs 64)"},
        {"seed", 2, 2, "graph/root RNG seed"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"harmonic_mean_teps", "TEPS", "Graph500 headline metric"},
        {"graph_edges", "", "edges in the generated graph"},
    };
  }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
      case Backend::kMpiTorus:
        return true;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    runtime::ClusterConfig config{.nodes = nodes};
    if (backend == Backend::kMpiTorus) config.mpi_fabric = runtime::MpiFabric::kTorus;
    runtime::Cluster cluster(config);
    dvx::apps::BfsParams bp{
        .scale = static_cast<int>(params.at("scale")),
        .edge_factor = static_cast<int>(params.at("edge_factor")),
        .searches = static_cast<int>(params.at("searches")),
        .seed = static_cast<std::uint64_t>(params.at("seed")),
    };
    const auto r = backend == Backend::kDv ? dvx::apps::run_bfs_dv(cluster, bp)
                                           : dvx::apps::run_bfs_mpi(cluster, bp);
    return {{"harmonic_mean_teps", r.harmonic_mean_teps},
            {"graph_edges", static_cast<double>(r.graph_edges)}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      // Each sweep position gets its own SplitMix64 sub-seed of the root
      // --seed; the DV and MPI points share it so both search the same
      // graph. Folded to 32 bits so the value survives the double-typed
      // ParamMap exactly.
      if (opt.seed != 0) {
        params["seed"] = static_cast<double>(
            dvx::sim::derive_seed(opt.seed, static_cast<std::uint64_t>(i)) >> 32);
      }
      // Every backend at this sweep position shares the seed, so all of
      // them search the same graph.
      for (const Backend b : selected_backends(opt)) builder.add(b, nodes[i], params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;

    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    const bool dv_ib = has(Backend::kDv) && has(Backend::kMpiIb);

    std::vector<std::string> cols{"nodes"};
    for (const Backend b : backends) cols.push_back(display_name(b));
    if (dv_ib) cols.push_back("DV/IB");
    runtime::Table t("Fig 8 — harmonic-mean MTEPS vs nodes", cols);
    double first_ratio = 0, last_ratio = 0;
    bool dv_always_ahead = true;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const int n = nodes[i];
      std::vector<std::string> row{std::to_string(n)};
      for (const Backend b : backends) {
        const PointResult* r = find_result(results, b, n);
        row.push_back(runtime::fmt(r->metrics.at("harmonic_mean_teps") / 1e6));
        sink.add(make_record(*r));
      }
      if (dv_ib) {
        const double ratio =
            find_result(results, Backend::kDv, n)->metrics.at("harmonic_mean_teps") /
            find_result(results, Backend::kMpiIb, n)->metrics.at("harmonic_mean_teps");
        row.push_back(runtime::fmt(ratio));
        sink.add(make_derived_record(n, {{"dv_ib_ratio", ratio}}));
        if (ratio <= 1.0) dv_always_ahead = false;
        if (i == 0) first_ratio = ratio;
        last_ratio = ratio;
      }
      t.row(row);
    }
    t.print(os);
    os << "\npaper anchors: DV TEPS above IB at every node count, and the\n"
          "DV/IB ratio grows as nodes are added.\n";

    if (dv_ib && nodes.size() >= 2) {
      sink.add_anchor(make_anchor("dv_above_ib_everywhere", dv_always_ahead ? 1.0 : 0.0,
                                  1.0, dv_always_ahead,
                                  "DV harmonic-mean TEPS above IB at every node count"));
      sink.add_anchor(make_anchor("dv_ib_gap_widens", last_ratio, first_ratio,
                                  last_ratio > first_ratio,
                                  "DV/IB TEPS ratio grows with node count"));
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_bfs_workload() { return std::make_unique<BfsWorkload>(); }

}  // namespace dvx::exp
