// Figure 3 — ping-pong network bandwidth vs message size (paper §V).
//
// Reproduces both panels: (a) absolute bandwidth for the three Data Vortex
// send paths (DWr/NoCached, DWr/Cached, DMA/Cached) and MPI-over-IB;
// (b) the same as a percentage of each network's nominal peak (DV 4.4 GB/s,
// IB 6.8 GB/s). Paper anchors: DV DMA reaches 99.4% of peak at 256 Ki
// words; IB reaches only ~72%; direct writes plateau at the 0.5 GB/s PCIe
// lane limit; IB leads in the 32-128-word range and beyond 512 words.

#include <algorithm>
#include <iostream>
#include <vector>

#include "dvapi/collectives.hpp"
#include "dvapi/context.hpp"
#include "exp/workload.hpp"
#include "mpi/comm.hpp"
#include "runtime/cluster.hpp"
#include "runtime/constants.hpp"

namespace dvx::exp {
namespace {

namespace sim = dvx::sim;
namespace vic = dvx::vic;
namespace dvapi = dvx::dvapi;
namespace runtime = dvx::runtime;
using sim::Coro;

// DV send paths, in ParamMap "path" encoding order.
enum class Path { kDirect = 0, kCached = 1, kDma = 2 };
constexpr const char* kPathNames[3] = {"dwr_nocached", "dwr_cached", "dma_cached"};

/// One-way bandwidth of a ping-pong with `words`-word messages.
double pingpong_bw_mpi(std::int64_t words, int reps) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 2});
  double out = 0.0;
  cluster.run_mpi([&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
    std::vector<std::uint64_t> payload(static_cast<std::size_t>(words), 7);
    co_await comm.barrier();
    const sim::Time t0 = node.now();
    for (int r = 0; r < reps; ++r) {
      if (comm.rank() == 0) {
        co_await comm.send(1, 0, payload);
        auto back = co_await comm.recv(1, 1);
        payload = std::move(back.data);
      } else {
        auto msg = co_await comm.recv(0, 0);
        co_await comm.send(0, 1, std::move(msg.data));
      }
    }
    if (comm.rank() == 0) {
      const double rtts = sim::to_seconds(node.now() - t0) / reps;
      out = static_cast<double>(words * 8) / (rtts / 2.0);
    }
  });
  return out;
}

double pingpong_bw_dv(Path path, std::int64_t words, int reps) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = 2});
  double out = 0.0;
  constexpr int kCtr = dvapi::kFirstFreeCounter;
  cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    const int peer = 1 - ctx.rank();
    std::vector<vic::Packet> batch(static_cast<std::size_t>(words));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].header = vic::Header{static_cast<std::uint16_t>(peer),
                                    vic::DestKind::kDvMemory,
                                    static_cast<std::uint8_t>(kCtr),
                                    dvapi::kFirstFreeDvWord + static_cast<std::uint32_t>(i)};
      batch[i].payload = i;
    }
    auto send_one = [&]() -> Coro<void> {
      switch (path) {
        case Path::kDirect: co_await ctx.send_direct_batch(batch); break;
        case Path::kCached: co_await ctx.send_cached_batch(batch); break;
        default: co_await ctx.send_dma_batch(batch); break;
      }
    };
    co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
    co_await ctx.barrier();
    const sim::Time t0 = node.now();
    for (int r = 0; r < reps; ++r) {
      if (ctx.rank() == 0) {
        co_await send_one();
        co_await ctx.counter_wait_zero(kCtr);
        co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
        // Copy the received words back to host memory (paper's rule: the
        // whole message must land in host memory each hop). Multi-buffered:
        // the drain DMA overlaps the next iteration's traffic; successive
        // drains queue on the engine, so sustained rates stay honest.
        std::vector<std::uint64_t> host(static_cast<std::size_t>(words));
        ctx.dma_read_dv_async(dvapi::kFirstFreeDvWord, host);
      } else {
        co_await ctx.counter_wait_zero(kCtr);
        co_await ctx.counter_set_local(kCtr, static_cast<std::uint64_t>(words));
        std::vector<std::uint64_t> host(static_cast<std::size_t>(words));
        ctx.dma_read_dv_async(dvapi::kFirstFreeDvWord, host);
        co_await send_one();
      }
    }
    if (ctx.rank() == 0) {
      const double rtts = sim::to_seconds(node.now() - t0) / reps;
      out = static_cast<double>(words * 8) / (rtts / 2.0);
    }
    co_await ctx.barrier();
  });
  return out;
}

class PingpongWorkload final : public Workload {
 public:
  std::string name() const override { return "pingpong"; }
  std::string figure() const override { return "fig3"; }
  std::string title() const override {
    return "Figure 3 — ping-pong bandwidth vs message size";
  }
  std::string paper_anchor() const override {
    return "DV DMA/Cached hits 99.4% of 4.4 GB/s at 256Ki words; IB ~72% "
           "of 6.8 GB/s; direct writes capped by the 0.5 GB/s PCIe lane";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"max_log_words", 18, 14, "largest message is 2^max_log_words words"},
        {"reps", 3, 3, "timed ping-pong repetitions per point"},
        {"words", 0, 0, "message size of one point (set per point by the sweep)"},
        {"path", 2, 2, "DV send path: 0=DWr/NoCached 1=DWr/Cached 2=DMA/Cached"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"bytes_per_sec", "B/s", "one-way ping-pong bandwidth"},
        {"fraction_of_peak", "", "bandwidth over the network's nominal peak"},
    };
  }

  std::vector<int> default_nodes(bool) const override { return {2}; }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
        return true;
      case Backend::kMpiTorus:
        // The peak-fraction panel is defined against the two nominal peaks
        // the paper states; the torus has no paper peak to normalize by.
        return false;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int /*nodes*/,
                        const ParamMap& params) const override {
    const auto words = static_cast<std::int64_t>(params.at("words"));
    const int reps = static_cast<int>(params.at("reps"));
    double bw = 0.0;
    double peak = runtime::paper::kDvPeakBw;
    if (backend == Backend::kMpiIb) {
      bw = pingpong_bw_mpi(words, reps);
      peak = runtime::paper::kIbPeakBw;
    } else {
      bw = pingpong_bw_dv(static_cast<Path>(static_cast<int>(params.at("path"))), words,
                          reps);
    }
    return {{"bytes_per_sec", bw}, {"fraction_of_peak", bw / peak}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    const int max_log = static_cast<int>(params.at("max_log_words"));
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    for (int lg = 0; lg <= max_log; lg += 2) {
      params["words"] = static_cast<double>(1LL << lg);
      if (has(Backend::kDv)) {
        for (int p = 0; p < 3; ++p) {
          params["path"] = p;
          builder.add(Backend::kDv, 2, params, kPathNames[p]);
        }
      }
      if (has(Backend::kMpiIb)) builder.add(Backend::kMpiIb, 2, params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const int max_log = static_cast<int>(default_params(opt.fast).at("max_log_words"));
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    const bool dv = has(Backend::kDv);
    const bool ib = has(Backend::kMpiIb);

    std::vector<std::string> cols{"words"};
    if (dv) cols.insert(cols.end(), {"DWr/NoCached", "DWr/Cached", "DMA/Cached"});
    if (ib) cols.push_back("MPI");
    runtime::Table abs("Fig 3a — absolute ping-pong bandwidth (GB/s)", cols);
    runtime::Table rel("Fig 3b — percentage of nominal peak bandwidth", cols);
    double last_bw[4] = {0, 0, 0, 0};       // per series, at the largest size
    double last_frac[4] = {0, 0, 0, 0};
    std::size_t r = 0;  // mirrors plan order: DV path series, then MPI
    for (int lg = 0; lg <= max_log; lg += 2) {
      std::vector<std::string> abs_row{std::to_string(1LL << lg)};
      std::vector<std::string> rel_row{std::to_string(1LL << lg)};
      auto take = [&](int series) {
        const PointResult& point = results[r++];
        last_bw[series] = point.metrics.at("bytes_per_sec");
        last_frac[series] = point.metrics.at("fraction_of_peak");
        abs_row.push_back(runtime::fmt(last_bw[series] / 1e9, 3));
        rel_row.push_back(runtime::fmt(100 * last_frac[series], 1));
        sink.add(make_record(point));
      };
      if (dv) {
        for (int series = 0; series < 3; ++series) take(series);
      }
      if (ib) take(3);
      abs.row(std::move(abs_row));
      rel.row(std::move(rel_row));
    }
    abs.print(os);
    rel.print(os);
    os << "\npaper anchors: DV DMA 99.4% @256Ki words; IB ~72% @256Ki words;\n"
          "direct-write plateau ~0.5 GB/s; IB leads for 32-128 and >512 words.\n";

    // Anchors at the largest message measured. The peak-fraction claims are
    // only meaningful at the paper's 256 Ki-word point, i.e. not in fast mode.
    if (dv) {
      sink.add_anchor(make_anchor(
          "dv_dma_beats_pio_paths", last_bw[2], last_bw[1], last_bw[2] > last_bw[1],
          "DMA/Cached above DWr/Cached at the largest message"));
      sink.add_anchor(make_anchor(
          "direct_write_pcie_cap", last_bw[0], runtime::paper::kPcieDirectWriteBw,
          last_bw[0] <= 1.2 * runtime::paper::kPcieDirectWriteBw,
          "DWr/NoCached capped by the 0.5 GB/s PCIe lane"));
    }
    if (max_log >= 18) {
      if (dv) {
        sink.add_anchor(make_anchor("dv_dma_fraction_of_peak", last_frac[2],
                                    runtime::paper::kDvPeakFraction256k,
                                    last_frac[2] > 0.95,
                                    "paper: 99.4% of DV peak at 256 Ki words"));
      }
      if (ib) {
        sink.add_anchor(make_anchor("ib_fraction_of_peak", last_frac[3],
                                    runtime::paper::kIbPeakFraction256k,
                                    last_frac[3] < 0.85,
                                    "paper: IB only ~72% of its peak"));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_pingpong_workload() {
  return std::make_unique<PingpongWorkload>();
}

}  // namespace dvx::exp
