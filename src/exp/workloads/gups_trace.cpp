// Figure 5 — GUPS execution trace (paper §VI).
//
// The paper instruments the HPCC MPI GUPS with Extrae and shows (a) the
// whole run and (b) a zoom: computation interleaved with MPI exchanges and
// message lines with "no exploitable regularity for aggregating messages
// directed to the same destination". This workload reproduces the trace
// with the built-in tracer: an ASCII timeline, per-state time breakdown,
// and a destination-regularity statistic (1.0 = perfectly aggregatable,
// ~1/(P-1) = uniformly scattered). The full trace is also written as CSV.

#include <algorithm>
#include <array>
#include <iostream>

#include "apps/gups.hpp"
#include "exp/workload.hpp"
#include "kernels/gups_table.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;
namespace sim = dvx::sim;

struct TraceOut {
  MetricMap metrics;
};

/// Runs the traced MPI GUPS; prints the figure panels when `os` is set.
TraceOut run_trace(int nodes, const ParamMap& params, std::ostream* os) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes, .trace = true});
  dvx::apps::GupsParams gp{
      .local_table_words = static_cast<std::uint64_t>(params.at("local_table_words")),
      .updates_per_node = static_cast<std::uint64_t>(params.at("updates_per_node")),
  };
  const auto res = dvx::apps::run_gups_mpi(cluster, gp);

  const auto& tracer = cluster.tracer();
  if (os) {
    *os << "\n-- execution timeline (Fig 5a analogue) --\n" << tracer.ascii_timeline(100);
    *os << "\n-- per-node state breakdown --\n";
    for (const auto& [node, summary] : tracer.state_summary()) {
      *os << "node " << node << ":";
      for (std::size_t s = 0; s < sim::kNodeStateCount; ++s) {
        *os << "  " << sim::to_string(static_cast<sim::NodeState>(s)) << "="
            << runtime::fmt(100.0 * summary.fraction(static_cast<sim::NodeState>(s)), 1)
            << "%";
      }
      *os << "\n";
    }
  }

  const double reg = tracer.destination_regularity(16);

  // Update-level irregularity, independent of how the runtime batches them:
  // the fraction of a 1024-update HPCC bucket aimed at the most popular of
  // the P-1 remote nodes.
  double update_reg = 0.0;
  {
    std::uint64_t a = dvx::kernels::gups_start(0);
    const int kWindows = 64;
    for (int w = 0; w < kWindows; ++w) {
      std::vector<int> count(static_cast<std::size_t>(nodes), 0);
      for (int i = 0; i < 1024; ++i) {
        a = dvx::kernels::gups_next(a);
        ++count[static_cast<std::size_t>(
            dvx::kernels::gups_target(a, nodes, gp.local_table_words).owner)];
      }
      update_reg += *std::max_element(count.begin(), count.end()) / 1024.0;
    }
    update_reg /= kWindows;
  }

  if (os) {
    *os << "\n-- message statistics (Fig 5b analogue) --\n";
    *os << "messages traced:        " << tracer.messages().size() << "\n";
    *os << "destination regularity: " << runtime::fmt(reg, 3)
        << "  (1.0 = aggregatable by destination; "
        << runtime::fmt(1.0 / (nodes - 1), 3) << " = uniform scatter over " << nodes - 1
        << " peers)\n";
    *os << "update-level regularity: " << runtime::fmt(update_reg, 3)
        << "  (HPCC rule caps buffering at 1024 updates, so no\n"
           "                         destination accumulates a useful batch)\n";
    const std::string csv = "fig5_gups_trace.csv";
    tracer.write_csv(csv);
    *os << "full trace written to " << csv << "\n";
  }

  return {{
      {"roi_seconds", res.seconds},
      {"messages_traced", static_cast<double>(tracer.messages().size())},
      {"destination_regularity", reg},
      {"update_level_regularity", update_reg},
  }};
}

class GupsTraceWorkload final : public Workload {
 public:
  std::string name() const override { return "gups_trace"; }
  std::string figure() const override { return "fig5"; }
  std::string title() const override {
    return "Figure 5 — GUPS execution trace (MPI/IB, 8 nodes)";
  }
  std::string paper_anchor() const override {
    return "computation (blue in the paper) interleaved with MPI; "
           "messages show no destination regularity";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"local_table_words", 1 << 14, 1 << 14, "GUPS table words per node"},
        {"updates_per_node", 1 << 14, 1 << 12, "updates issued per node"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"roi_seconds", "s", "virtual ROI time of the traced run"},
        {"messages_traced", "", "messages recorded by the tracer"},
        {"destination_regularity", "",
         "peak destination share of a 16-message window (1.0 = aggregatable)"},
        {"update_level_regularity", "",
         "peak destination share of a 1024-update HPCC bucket"},
    };
  }

  // The paper's figure is specifically an Extrae trace of the MPI/IB run;
  // the point is the irregularity of the traffic, not a network comparison.
  bool has_backend(Backend b) const override { return b == Backend::kMpiIb; }
  std::vector<int> default_nodes(bool) const override { return {8}; }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    if (backend != Backend::kMpiIb) return {};
    return run_trace(nodes, params, nullptr).metrics;
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    const int nodes = opt.nodes.empty() ? default_nodes(opt.fast).front() : opt.nodes.front();
    for (const Backend b : selected_backends(opt)) {
      builder.add(b, nodes, default_params(opt.fast));
    }
    return builder.take();
  }

  // The figure panels (timeline, state breakdown, message statistics) come
  // from the same traced run as the metrics, so they are rendered into the
  // per-point log during execution and replayed by report().
  MetricMap execute(const RunPoint& point, std::ostream& log) const override {
    return run_trace(point.nodes, point.params, &log).metrics;
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    if (results.empty()) {  // e.g. --backends without mpi-ib
      os << "\n(no points: this figure only has an mpi-ib series)\n";
      return;
    }
    const PointResult& point = results.front();
    const int nodes = point.point.nodes;
    os << point.log;
    os << "\npaper anchor: the zoomed trace shows messages to ever-changing\n"
          "destinations — exactly the low regularity measured above.\n";

    const double update_reg = point.metrics.at("update_level_regularity");
    const double uniform = 1.0 / (nodes - 1);
    sink.add(make_record(point));
    sink.add_anchor(make_anchor(
        "no_destination_regularity", update_reg, uniform, update_reg < 2.0 * uniform,
        "update destinations are statistically indistinguishable from uniform scatter"));
  }
};

}  // namespace

std::unique_ptr<Workload> make_gups_trace_workload() {
  return std::make_unique<GupsTraceWorkload>();
}

}  // namespace dvx::exp
