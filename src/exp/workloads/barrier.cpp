// Figure 4 — global-barrier latency at scale (paper §V).
//
// Three implementations: the Data Vortex API intrinsic (two reserved group
// counters, completed inside the VICs — nearly flat in node count), the
// in-house all-to-all "FastBarrier", and MPI over InfiniBand (grows
// markedly with node count; ~13 us at 32 nodes in the paper).

#include <algorithm>
#include <iostream>

#include "dvapi/context.hpp"
#include "exp/workload.hpp"
#include "mpi/comm.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

namespace sim = dvx::sim;
namespace runtime = dvx::runtime;
using sim::Coro;

double dv_barrier_us(int nodes, bool fast_barrier, int reps) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes});
  double out = 0.0;
  cluster.run_dv([&](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> Coro<void> {
    // Warm-up (priming for FastBarrier), then timed repetitions.
    if (fast_barrier) {
      co_await ctx.fast_barrier();
    } else {
      co_await ctx.barrier();
    }
    const sim::Time t0 = node.now();
    for (int r = 0; r < reps; ++r) {
      if (fast_barrier) {
        co_await ctx.fast_barrier();
      } else {
        co_await ctx.barrier();
      }
    }
    if (ctx.rank() == 0) out = sim::to_us(node.now() - t0) / reps;
  });
  return out;
}

double mpi_barrier_us(int nodes, int reps) {
  runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes});
  double out = 0.0;
  cluster.run_mpi([&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> Coro<void> {
    co_await comm.barrier();
    const sim::Time t0 = node.now();
    for (int r = 0; r < reps; ++r) co_await comm.barrier();
    if (comm.rank() == 0) out = sim::to_us(node.now() - t0) / reps;
  });
  return out;
}

class BarrierWorkload final : public Workload {
 public:
  std::string name() const override { return "barrier"; }
  std::string figure() const override { return "fig4"; }
  std::string title() const override {
    return "Figure 4 — global barrier latency at scale";
  }
  std::string paper_anchor() const override {
    return "DV barrier nearly flat (~1 us); MPI/IB grows to ~13 us at 32 nodes";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"reps", 10, 10, "timed barrier repetitions per point"},
        {"fast_barrier", 0, 0, "DV only: 1 = the all-to-all FastBarrier variant"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {{"latency_us", "us", "mean barrier latency"}};
  }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
        return true;
      case Backend::kMpiTorus:
        // The figure contrasts the DV intrinsic against the paper's IB
        // measurement; a torus barrier has no paper anchor to land on.
        return false;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    const int reps = static_cast<int>(params.at("reps"));
    if (backend == Backend::kMpiIb) return {{"latency_us", mpi_barrier_us(nodes, reps)}};
    const bool fast_barrier = params.count("fast_barrier") && params.at("fast_barrier") != 0;
    return {{"latency_us", dv_barrier_us(nodes, fast_barrier, reps)}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    for (const int n : nodes) {
      if (has(Backend::kDv)) {
        params["fast_barrier"] = 0;
        builder.add(Backend::kDv, n, params, "intrinsic");
        params["fast_barrier"] = 1;
        builder.add(Backend::kDv, n, params, "fast_barrier");
        params["fast_barrier"] = 0;
      }
      if (has(Backend::kMpiIb)) builder.add(Backend::kMpiIb, n, params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    const bool want_dv = has(Backend::kDv);
    const bool want_ib = has(Backend::kMpiIb);

    std::vector<std::string> cols{"nodes"};
    if (want_dv) cols.insert(cols.end(), {"Data Vortex", "FastBarrier"});
    if (want_ib) cols.push_back("Infiniband");
    runtime::Table t("Fig 4 — barrier latency (us) vs nodes", cols);
    double dv_first = 0, dv_last = 0, mpi_first = 0, mpi_last = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const int n = nodes[i];
      std::vector<std::string> row{std::to_string(n)};
      if (want_dv) {
        const PointResult* dv = find_result(results, Backend::kDv, n, "intrinsic");
        const PointResult* fb = find_result(results, Backend::kDv, n, "fast_barrier");
        sink.add(make_record(*dv));
        sink.add(make_record(*fb));
        row.push_back(runtime::fmt(dv->metrics.at("latency_us")));
        row.push_back(runtime::fmt(fb->metrics.at("latency_us")));
        if (i == 0) dv_first = dv->metrics.at("latency_us");
        dv_last = dv->metrics.at("latency_us");
      }
      if (want_ib) {
        const PointResult* mpi = find_result(results, Backend::kMpiIb, n);
        sink.add(make_record(*mpi));
        row.push_back(runtime::fmt(mpi->metrics.at("latency_us")));
        if (i == 0) mpi_first = mpi->metrics.at("latency_us");
        mpi_last = mpi->metrics.at("latency_us");
      }
      t.row(std::move(row));
    }
    t.print(os);
    os << "\npaper anchors: DV nearly constant with node count; MPI rises\n"
          "steeply past 8 nodes, reaching low-teens of microseconds at 32.\n";

    if (want_dv && want_ib && nodes.size() >= 2 && dv_first > 0 && mpi_first > 0) {
      sink.add_anchor(make_anchor("dv_barrier_flat", dv_last / dv_first, 1.0,
                                  dv_last / dv_first < 1.5,
                                  "DV latency growth across the sweep stays small"));
      sink.add_anchor(make_anchor("mpi_barrier_grows", mpi_last / mpi_first, 1.0,
                                  mpi_last / mpi_first > dv_last / dv_first,
                                  "MPI latency grows faster than DV across the sweep"));
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_barrier_workload() {
  return std::make_unique<BarrierWorkload>();
}

}  // namespace dvx::exp
