// Figure 7 — distributed FFT-1D aggregate GFLOPS (paper §VI).
//
// Six-step 1-D FFT; the three distributed transposes carry all of the
// communication. The Data Vortex folds the redistribution into the network
// operation (scatter into VIC memory with cached headers); MPI packs,
// alltoalls, and unpacks. Paper: DV above IB with a gap that widens with
// node count. (Paper size 2^33 points; reproduction default 2^20.)

#include <iostream>

#include "apps/fft1d.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;

class Fft1dWorkload final : public Workload {
 public:
  std::string name() const override { return "fft1d"; }
  std::string figure() const override { return "fig7"; }
  std::string title() const override { return "Figure 7 — FFT-1D aggregate GFLOPS"; }
  std::string paper_anchor() const override {
    return "DV wins and the gap widens with nodes (paper ran 2^33 points; "
           "this reproduction defaults to 2^20)";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {{"log_size", 20, 16, "N = 2^log_size points"}};
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"roi_seconds", "s", "virtual ROI time of the transform"},
        {"gflops", "GFLOPS", "aggregate floating-point rate"},
    };
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes});
    dvx::apps::FftParams fp{.log_size = static_cast<int>(params.at("log_size"))};
    const auto r = backend == Backend::kDv ? dvx::apps::run_fft_dv(cluster, fp)
                                           : dvx::apps::run_fft_mpi(cluster, fp);
    return {{"roi_seconds", r.seconds}, {"gflops", r.gflops()}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    const ParamMap params = default_params(opt.fast);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    for (const int n : nodes) {
      builder.add(Backend::kDv, n, params);
      builder.add(Backend::kMpi, n, params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;

    runtime::Table t("Fig 7 — aggregate GFLOPS vs nodes",
                     {"nodes", "Data Vortex", "Infiniband", "DV/IB"});
    double first_ratio = 0, last_ratio = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const int n = nodes[i];
      const PointResult& dv = results[2 * i];       // dv/mpi pairs per node count
      const PointResult& ib = results[2 * i + 1];
      const double ratio = dv.metrics.at("gflops") / ib.metrics.at("gflops");
      t.row({std::to_string(n), runtime::fmt(dv.metrics.at("gflops")),
             runtime::fmt(ib.metrics.at("gflops")), runtime::fmt(ratio)});
      sink.add(make_record(dv));
      sink.add(make_record(ib));
      sink.add(make_derived_record(n, {{"dv_ib_ratio", ratio}}));
      if (i == 0) first_ratio = ratio;
      last_ratio = ratio;
    }
    t.print(os);
    os << "\npaper anchors: both curves rise with node count; DV consistently\n"
          "above IB and the DV/IB ratio grows with nodes.\n";

    if (nodes.size() >= 2) {
      // This reproduction observes a crossover at ~16 nodes (EXPERIMENTS.md);
      // the paper-regime anchor is the widening gap and a DV lead at 32.
      sink.add_anchor(make_anchor("dv_ib_gap_widens", last_ratio, first_ratio,
                                  last_ratio > first_ratio,
                                  "DV/IB GFLOPS ratio grows with node count"));
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_fft1d_workload() {
  return std::make_unique<Fft1dWorkload>();
}

}  // namespace dvx::exp
