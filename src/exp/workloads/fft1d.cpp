// Figure 7 — distributed FFT-1D aggregate GFLOPS (paper §VI).
//
// Six-step 1-D FFT; the three distributed transposes carry all of the
// communication. The Data Vortex folds the redistribution into the network
// operation (scatter into VIC memory with cached headers); MPI packs,
// alltoalls, and unpacks. Paper: DV above IB with a gap that widens with
// node count. (Paper size 2^33 points; reproduction default 2^20.)

#include <algorithm>
#include <iostream>

#include "apps/fft1d.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;

class Fft1dWorkload final : public Workload {
 public:
  std::string name() const override { return "fft1d"; }
  std::string figure() const override { return "fig7"; }
  std::string title() const override { return "Figure 7 — FFT-1D aggregate GFLOPS"; }
  std::string paper_anchor() const override {
    return "DV wins and the gap widens with nodes (paper ran 2^33 points; "
           "this reproduction defaults to 2^20)";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {{"log_size", 20, 16, "N = 2^log_size points"}};
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"roi_seconds", "s", "virtual ROI time of the transform"},
        {"gflops", "GFLOPS", "aggregate floating-point rate"},
    };
  }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
      case Backend::kMpiTorus:
        return true;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    runtime::ClusterConfig config{.nodes = nodes};
    if (backend == Backend::kMpiTorus) config.mpi_fabric = runtime::MpiFabric::kTorus;
    runtime::Cluster cluster(config);
    dvx::apps::FftParams fp{.log_size = static_cast<int>(params.at("log_size"))};
    const auto r = backend == Backend::kDv ? dvx::apps::run_fft_dv(cluster, fp)
                                           : dvx::apps::run_fft_mpi(cluster, fp);
    return {{"roi_seconds", r.seconds}, {"gflops", r.gflops()}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    const ParamMap params = default_params(opt.fast);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    for (const int n : nodes) {
      for (const Backend b : backends) builder.add(b, n, params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    const bool dv_ib = has(Backend::kDv) && has(Backend::kMpiIb);

    std::vector<std::string> cols{"nodes"};
    for (const Backend b : backends) cols.push_back(display_name(b));
    if (dv_ib) cols.push_back("DV/IB");
    runtime::Table t("Fig 7 — aggregate GFLOPS vs nodes", cols);
    double first_ratio = 0, last_ratio = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const int n = nodes[i];
      std::vector<std::string> row{std::to_string(n)};
      for (const Backend b : backends) {
        const PointResult* r = find_result(results, b, n);
        row.push_back(runtime::fmt(r->metrics.at("gflops")));
        sink.add(make_record(*r));
      }
      if (dv_ib) {
        const double ratio = find_result(results, Backend::kDv, n)->metrics.at("gflops") /
                             find_result(results, Backend::kMpiIb, n)->metrics.at("gflops");
        row.push_back(runtime::fmt(ratio));
        sink.add(make_derived_record(n, {{"dv_ib_ratio", ratio}}));
        if (i == 0) first_ratio = ratio;
        last_ratio = ratio;
      }
      t.row(row);
    }
    t.print(os);
    os << "\npaper anchors: both curves rise with node count; DV consistently\n"
          "above IB and the DV/IB ratio grows with nodes.\n";

    if (dv_ib && nodes.size() >= 2) {
      // This reproduction observes a crossover at ~16 nodes (EXPERIMENTS.md);
      // the paper-regime anchor is the widening gap and a DV lead at 32.
      sink.add_anchor(make_anchor("dv_ib_gap_widens", last_ratio, first_ratio,
                                  last_ratio > first_ratio,
                                  "DV/IB GFLOPS ratio grows with node count"));
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_fft1d_workload() {
  return std::make_unique<Fft1dWorkload>();
}

}  // namespace dvx::exp
