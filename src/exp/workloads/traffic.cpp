// Synthetic-traffic congestion study (DESIGN.md §8).
//
// Drives the four classic traffic patterns — uniform-random, hotspot,
// transpose-permutation, bit-reversal — through the networks: the
// cycle-accurate Data Vortex switch (measuring hops and deflections
// directly), the InfiniBand fat-tree model, and — when selected via
// --backends — the 3D-torus model (both measuring message latency
// inflation; the torus baseline is distance-aware, so its contention ratio
// isolates queueing from path length). The headline anchor quantifies the
// paper's §II claim that deflection under contention costs "statistically
// two hops": the hotspot point's measured mean extra hops must straddle
// FabricParams::contended_extra_hops = 2.0.

#include <iostream>

#include "dvnet/fabric_model.hpp"
#include "dvnet/traffic.hpp"
#include "exp/workload.hpp"
#include "ib/topology.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "torus/fabric.hpp"

namespace dvx::exp {
namespace {

namespace sim = dvx::sim;
namespace dvnet = dvx::dvnet;
namespace runtime = dvx::runtime;

/// Fixed generator seed: like the fabric ablation, the traffic study pins
/// its offered sequence so the measured contention point is reproducible.
constexpr std::uint64_t kTrafficSeed = 23;

constexpr dvnet::TrafficPattern kPatterns[] = {
    dvnet::TrafficPattern::kUniform,
    dvnet::TrafficPattern::kHotspot,
    dvnet::TrafficPattern::kTranspose,
    dvnet::TrafficPattern::kBitReverse,
};

/// Short network tag for the results table ("mpi"/"mpi-torus" record ids
/// stay the canonical to_string form).
const char* net_label(Backend b) {
  switch (b) {
    case Backend::kDv:
      return "dv";
    case Backend::kMpiIb:
      return "ib";
    case Backend::kMpiTorus:
      return "torus";
  }
  return "?";
}

dvnet::TrafficConfig config_from(const ParamMap& params) {
  dvnet::TrafficConfig cfg;
  cfg.pattern = static_cast<dvnet::TrafficPattern>(
      static_cast<int>(params.at("pattern")));
  cfg.offered_load = params.at("offered_load");
  cfg.hotspot_fraction = params.at("hotspot_fraction");
  return cfg;
}

class TrafficWorkload final : public Workload {
 public:
  std::string name() const override { return "traffic"; }
  std::string figure() const override { return "traffic"; }
  std::string title() const override {
    return "Synthetic traffic — congestion across patterns and networks";
  }
  std::string paper_anchor() const override {
    return "deflection costs ~2 extra hops under contention (paper §II)";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        // Calibrated so the hotspot point sits in the contended-but-stable
        // regime (hot-port offered rate ~0.77 of its ejection capacity):
        // measured mean extra hops land within [1.5, 2.5] in both modes.
        {"cycles", 4000, 1200, "switch cycles (DV) / injection rounds (MPI)"},
        {"offered_load", 0.08, 0.08, "injection probability per port per cycle"},
        {"hotspot_fraction", 0.3, 0.3, "hotspot: fraction of traffic to the hot port"},
        {"pattern", 0, 0, "traffic pattern index (swept 0..3, see variants)"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"delivered", "packets", "packets (DV) / messages (MPI) measured"},
        {"mean_hops", "hops", "mean fabric traversal, cycle-accurate switch (DV)"},
        {"extra_hops", "hops", "mean hops minus the uncontended base (DV)"},
        {"deflections", "", "mean deflections per packet (DV)"},
        {"mean_latency_ns", "ns", "mean message latency (both networks)"},
        {"contention_ratio", "", "pattern latency over its uncontended baseline"},
    };
  }

  std::vector<int> default_nodes(bool) const override { return {32}; }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
      case Backend::kMpiTorus:
        return true;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    const auto cycles = static_cast<std::uint64_t>(params.at("cycles"));
    const dvnet::TrafficConfig cfg = config_from(params);
    switch (backend) {
      case Backend::kDv:
        return run_dv(nodes, cfg, cycles);
      case Backend::kMpiIb:
        return run_mpi(nodes, cfg, cycles);
      case Backend::kMpiTorus:
        return run_torus(nodes, cfg, cycles);
    }
    return {};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    const int nodes = opt.nodes.empty() ? 32 : opt.nodes.front();
    ParamMap params = default_params(opt.fast);
    const auto backends = selected_backends(opt);
    for (std::size_t i = 0; i < std::size(kPatterns); ++i) {
      params["pattern"] = static_cast<double>(i);
      const char* variant = dvnet::to_string(kPatterns[i]);
      for (const Backend b : backends) builder.add(b, nodes, params, variant);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);

    runtime::Table t("synthetic traffic, 32 ports/nodes",
                     {"pattern", "net", "delivered", "hops", "extra", "defl/pkt",
                      "latency (ns)", "vs uncontended"});
    double hotspot_extra = 0.0;
    bool saw_dv = false;
    for (const PointResult& point : results) {
      const bool dv = point.point.backend == Backend::kDv;
      const bool torus = point.point.backend == Backend::kMpiTorus;
      t.row({point.point.variant, net_label(point.point.backend),
             runtime::fmt(point.metrics.at("delivered"), 0),
             dv || torus ? runtime::fmt(point.metrics.at("mean_hops")) : "-",
             dv ? runtime::fmt(point.metrics.at("extra_hops")) : "-",
             dv ? runtime::fmt(point.metrics.at("deflections")) : "-",
             runtime::fmt(point.metrics.at("mean_latency_ns"), 1),
             runtime::fmt(point.metrics.at("contention_ratio"))});
      if (dv) saw_dv = true;
      if (dv && point.point.variant == "hotspot") {
        hotspot_extra = point.metrics.at("extra_hops");
      }
      sink.add(make_record(point));
    }
    t.print(os);
    os << "\nreading: under uniform and permutation traffic the Data Vortex\n"
          "traversal stays near its uncontended base, while converging hotspot\n"
          "traffic forces deflections — costing on the order of the two extra\n"
          "hops the paper quotes — instead of the queueing delay the fat-tree\n"
          "accumulates on its shared links.\n";

    if (saw_dv) {
      const bool pass = hotspot_extra >= 1.5 && hotspot_extra <= 2.5;
      sink.add_anchor(make_anchor(
          "hotspot_extra_hops_straddles_penalty", hotspot_extra, 2.0, pass,
          "mean extra hops under hotspot contention within [1.5, 2.5] of the "
          "analytic contended_extra_hops = 2"));
    }
  }

 private:
  MetricMap run_dv(int nodes, const dvnet::TrafficConfig& cfg,
                   std::uint64_t cycles) const {
    const dvnet::Geometry g = dvnet::Geometry::for_ports(nodes, 4);
    dvnet::CycleSwitch sw(g);
    const dvnet::TrafficResult r =
        dvnet::run_synthetic(sw, cfg, cycles, kTrafficSeed);
    const double base = dvnet::FabricParams{.geometry = g}.derived_base_hops();
    const double cycle_ns = sim::to_seconds(dvnet::FabricParams{}.cycle) * 1e9;
    return {{"delivered", static_cast<double>(r.delivered)},
            {"mean_hops", r.hops.mean()},
            {"extra_hops", r.hops.mean() - base},
            {"deflections", r.deflections.mean()},
            {"mean_latency_ns", r.latency.mean() * cycle_ns},
            {"contention_ratio", r.hops.mean() / base}};
  }

  MetricMap run_mpi(int nodes, const dvnet::TrafficConfig& cfg,
                    std::uint64_t rounds) const {
    // Uncontended baseline: one 8-byte message on an idle fabric.
    double base_ps;
    {
      ib::Fabric idle(nodes);
      base_ps = static_cast<double>(
          idle.send_message(0, nodes > 1 ? 1 : 0, 8, 0).first_arrival);
    }
    ib::Fabric fabric(nodes);
    sim::Xoshiro256 rng(kTrafficSeed);
    sim::RunningStats latency;
    std::uint64_t sent = 0;
    // Rounds tick at the NIC message-rate gap: the same per-port offered
    // rate the DV side sees, expressed in the fat-tree's natural unit.
    const sim::Duration gap =
        static_cast<sim::Duration>(1e12 / ib::IbParams{}.msg_rate);
    sim::Time now = 0;
    for (std::uint64_t c = 0; c < rounds; ++c) {
      for (int n = 0; n < nodes; ++n) {
        if (!rng.chance(cfg.offered_load)) continue;
        const int dst = dvnet::traffic_destination(cfg, n, nodes, rng);
        const auto t = fabric.send_message(n, dst, 8, now);
        latency.add(static_cast<double>(t.first_arrival - now));
        ++sent;
      }
      now += gap;
    }
    return {{"delivered", static_cast<double>(sent)},
            {"mean_hops", 0.0},
            {"extra_hops", 0.0},
            {"deflections", 0.0},
            {"mean_latency_ns", latency.mean() / 1e3},
            {"contention_ratio", latency.mean() / base_ps}};
  }

  MetricMap run_torus(int nodes, const dvnet::TrafficConfig& cfg,
                      std::uint64_t rounds) const {
    // Same round structure as the fat-tree side, over the 3D torus. Torus
    // latency depends on the wraparound Manhattan distance, so the
    // uncontended baseline is measured per message on an idle twin fabric —
    // the contention ratio then isolates link queueing from path length.
    torus::Fabric fabric(nodes);
    torus::Fabric idle(nodes);
    sim::Xoshiro256 rng(kTrafficSeed);
    sim::RunningStats latency;
    sim::RunningStats base;
    sim::RunningStats hops;
    std::uint64_t sent = 0;
    const sim::Duration gap =
        static_cast<sim::Duration>(1e12 / torus::TorusParams{}.msg_rate);
    sim::Time now = 0;
    for (std::uint64_t c = 0; c < rounds; ++c) {
      for (int n = 0; n < nodes; ++n) {
        if (!rng.chance(cfg.offered_load)) continue;
        const int dst = dvnet::traffic_destination(cfg, n, nodes, rng);
        const auto t = fabric.send_message(n, dst, 8, now);
        latency.add(static_cast<double>(t.first_arrival - now));
        idle.reset();
        base.add(static_cast<double>(idle.send_message(n, dst, 8, 0).first_arrival));
        hops.add(static_cast<double>(fabric.hops(n, dst)));
        ++sent;
      }
      now += gap;
    }
    return {{"delivered", static_cast<double>(sent)},
            {"mean_hops", hops.mean()},
            {"extra_hops", 0.0},
            {"deflections", 0.0},
            {"mean_latency_ns", latency.mean() / 1e3},
            {"contention_ratio", latency.mean() / base.mean()}};
  }
};

}  // namespace

std::unique_ptr<Workload> make_traffic_workload() {
  return std::make_unique<TrafficWorkload>();
}

}  // namespace dvx::exp
