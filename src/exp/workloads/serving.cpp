// Open-loop multi-tenant serving study (DESIGN.md §14, ROADMAP item 3).
//
// Reframes the cluster as a service: a deterministic open-loop arrival
// process (four tenants — one hot bursty small-update tenant, two BFS-like
// victims, one bulk heavy-payload tenant) is swept across offered-load
// multipliers on all three backends. Each point reports offered vs achieved
// throughput (locating the saturation knee at the top of the sweep),
// per-tenant SLO latency tails (p50/p99/p999 with honest upper-bound
// quantiles), admission accept/shed counters, and a Jain fairness index
// over per-tenant service ratios. A final top-load point re-runs with
// admission control ON (per-tenant token bucket + queue shedding) so the
// shed path is exercised in every sweep.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <string>

#include "exp/workload.hpp"
#include "runtime/cluster.hpp"
#include "serve/session.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;
namespace serve = dvx::serve;

/// Fixed arrival seed (like the traffic study): every backend at the same
/// load level serves the byte-identical offered stream, so cross-backend
/// rows compare like for like. `--seed` overrides per point.
constexpr std::uint64_t kServingSeed = 41;

/// Offered-load ladder: multiples of the calibrated base rate.
constexpr double kLoadLadder[] = {0.25, 0.5, 1.0, 2.0, 4.0};

std::string load_label(double load) {
  // Canonical short labels: "0.25x", "0.5x", "1x", "2x", "4x".
  const int prec = load == 0.25 ? 2 : (load < 1.0 ? 1 : 0);
  return runtime::fmt(load, prec) + "x";
}

class ServingWorkload final : public Workload {
 public:
  std::string name() const override { return "serving"; }
  std::string figure() const override { return "serving"; }
  std::string title() const override {
    return "Serving — open-loop multi-tenant load sweep with SLO tails";
  }
  std::string paper_anchor() const override {
    return "achieved throughput tracks offered load until the saturation "
           "knee; admission control sheds instead of queueing";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"horizon_us", 1200, 600, "open-loop injection window (us)"},
        {"rate_krps", 1600, 500, "aggregate offered rate at load 1x (krequests/s)"},
        {"load", 1.0, 1.0, "offered-load multiplier (swept, see variants)"},
        {"levels", 5, 5, "load-ladder points planned (0.25x * 2^i)"},
        {"admission", 0, 0, "0 = off, 1 = token bucket, 2 = bucket + queue shed"},
        {"bucket_frac", 1.2, 1.2, "bucket refill as fraction of tenant offered rate"},
        {"bucket_burst", 16, 16, "token bucket capacity"},
        {"queue_depth", 48, 48, "per-node admitted-queue shed threshold"},
    };
  }

  std::vector<MetricSpec> metric_specs() const override {
    std::vector<MetricSpec> specs = {
        {"offered_rps", "req/s", "offered request rate over the injection window"},
        {"achieved_rps", "req/s", "served requests over the ROI (window + drain)"},
        {"offered", "req", "requests offered by the arrival process"},
        {"accepted", "req", "requests admitted"},
        {"shed", "req", "requests shed by admission control"},
        {"served", "req", "requests fully served (== accepted; conservation)"},
        {"p50_us", "us", "median request latency (bucket midpoint)"},
        {"p99_us", "us", "p99 request latency (honest upper bound)"},
        {"p999_us", "us", "p999 request latency (honest upper bound)"},
        {"pmax_us", "us", "exact maximum request latency"},
        {"fairness_jain", "", "Jain index over per-tenant served/offered ratios"},
        {"victim_hot_p99_ratio", "", "worst victim-tenant p99 over hot-tenant p99"},
        {"roi_ms", "ms", "virtual ROI (injection window plus drain)"},
    };
    for (const serve::TenantSpec& t : serve::default_tenants()) {
      specs.push_back({"offered_" + t.name, "req", "requests offered by tenant " + t.name});
      specs.push_back({"served_" + t.name, "req", "requests served for tenant " + t.name});
      specs.push_back({"shed_" + t.name, "req", "requests shed for tenant " + t.name});
      specs.push_back({"p50_us_" + t.name, "us", "tenant " + t.name + " median latency"});
      specs.push_back({"p99_us_" + t.name, "us", "tenant " + t.name + " p99 latency"});
    }
    return specs;
  }

  std::vector<int> default_nodes(bool fast) const override {
    return fast ? std::vector<int>{8} : std::vector<int>{16};
  }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
      case Backend::kMpiTorus:
        return true;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    return run_point(backend, nodes, params, 0);
  }

  MetricMap execute(const RunPoint& point, std::ostream&) const override {
    return run_point(point.backend, point.nodes, point.params, point.seed);
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    const int nodes =
        opt.nodes.empty() ? default_nodes(opt.fast).front() : opt.nodes.front();
    ParamMap params = default_params(opt.fast);
    const auto backends = selected_backends(opt);
    const auto levels = static_cast<std::size_t>(params.at("levels"));
    double top_load = kLoadLadder[0];
    for (std::size_t i = 0; i < std::size(kLoadLadder) && i < levels; ++i) {
      params["load"] = kLoadLadder[i];
      top_load = kLoadLadder[i];
      for (const Backend b : backends) {
        builder.add(b, nodes, params, load_label(kLoadLadder[i]));
      }
    }
    // Top of the ladder once more with admission ON: the shed path runs in
    // every default sweep, so its counters are CI-checkable.
    params["load"] = top_load;
    params["admission"] = 2;
    for (const Backend b : backends) {
      builder.add(b, nodes, params, load_label(top_load) + "+admit");
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);

    runtime::Table t("open-loop serving sweep (per backend x offered load)",
                     {"load", "net", "offered krps", "achieved krps", "p50 us",
                      "p99 us", "p999 us", "shed", "fairness"});
    double conservation_gap = 0.0;
    double shed_admit = 0.0;
    double fairness_min = 1.0;
    double fairness_max = 0.0;
    // Per backend: achieved/offered at the bottom and top of the ladder.
    std::map<std::string, std::pair<double, double>> knee;
    for (const PointResult& point : results) {
      const MetricMap& m = point.metrics;
      t.row({point.point.variant, to_string(point.point.backend),
             runtime::fmt(m.at("offered_rps") / 1e3, 1),
             runtime::fmt(m.at("achieved_rps") / 1e3, 1),
             runtime::fmt(m.at("p50_us"), 1), runtime::fmt(m.at("p99_us"), 1),
             runtime::fmt(m.at("p999_us"), 1), runtime::fmt(m.at("shed"), 0),
             runtime::fmt(m.at("fairness_jain"))});
      sink.add(make_record(point));

      conservation_gap = std::max(
          conservation_gap,
          std::abs(m.at("offered") - m.at("accepted") - m.at("shed")));
      fairness_min = std::min(fairness_min, m.at("fairness_jain"));
      fairness_max = std::max(fairness_max, m.at("fairness_jain"));
      const bool admit = point.point.variant.find("+admit") != std::string::npos;
      if (admit) {
        shed_admit += m.at("shed");
      } else {
        const double ratio = m.at("achieved_rps") / m.at("offered_rps");
        auto& k = knee.try_emplace(to_string(point.point.backend),
                                   std::pair<double, double>{ratio, ratio})
                      .first->second;
        k.first = std::max(k.first, ratio);   // best (low-load) ratio
        k.second = std::min(k.second, ratio); // worst (top-load) ratio
      }
    }
    t.print(os);
    os << "\nreading: at low offered load every backend serves what arrives\n"
          "(achieved ~= offered); past the saturation knee the open-loop queue\n"
          "grows and achieved throughput pins at fabric+service capacity while\n"
          "the latency tail explodes. The +admit row sheds the excess instead:\n"
          "bounded tails at the cost of rejected (mostly hot-tenant) requests.\n";

    for (const auto& [backend, ratios] : knee) {
      const bool pass = ratios.first >= 0.9 && ratios.second <= 0.8;
      sink.add_anchor(make_anchor(
          "saturation_knee_" + backend, ratios.second, 0.8, pass,
          "achieved/offered >= 0.9 at the bottom of the load ladder and <= "
          "0.8 at the top: the knee is inside the sweep"));
    }
    sink.add_anchor(make_anchor(
        "admission_conservation", conservation_gap, 0.0,
        conservation_gap == 0.0, "offered == accepted + shed at every point"));
    sink.add_anchor(make_anchor(
        "admission_sheds_under_overload", shed_admit, 1.0, shed_admit >= 1.0,
        "the top-load admission-on points shed at least one request"));
    sink.add_anchor(make_anchor(
        "fairness_index_valid", fairness_min, 1.0,
        fairness_min > 0.0 && fairness_max <= 1.0,
        "Jain index within (0, 1] at every point"));
  }

 private:
  MetricMap run_point(Backend backend, int nodes, const ParamMap& params,
                      std::uint64_t seed) const {
    serve::ArrivalConfig acfg;
    acfg.seed = seed != 0 ? seed : kServingSeed;
    acfg.nodes = nodes;
    acfg.horizon_us = params.at("horizon_us");
    // rate_krps is the AGGREGATE offered rate across the default tenant mix;
    // unit_rate_rps is per unit weight, so divide by the mix's total weight.
    double total_weight = 0.0;
    for (const serve::TenantSpec& t : serve::default_tenants()) {
      total_weight += t.rate_weight;
    }
    acfg.unit_rate_rps =
        params.at("rate_krps") * 1e3 * params.at("load") / total_weight;
    const serve::ArrivalTrace trace = serve::generate_arrivals(acfg);

    serve::SessionConfig scfg;
    const int admission = static_cast<int>(params.at("admission"));
    scfg.admission.token_bucket = admission >= 1;
    scfg.admission.queue_shed = admission >= 2;
    scfg.admission.bucket_rate_frac = params.at("bucket_frac");
    scfg.admission.bucket_burst = params.at("bucket_burst");
    scfg.admission.max_queue_depth = static_cast<int>(params.at("queue_depth"));

    runtime::ClusterConfig config{.nodes = nodes};
    if (backend == Backend::kMpiTorus) config.mpi_fabric = runtime::MpiFabric::kTorus;
    runtime::Cluster cluster(config);
    const serve::ServeReport rep =
        backend == Backend::kDv ? serve::run_serve_dv(cluster, trace, scfg)
                                : serve::run_serve_mpi(cluster, trace, scfg);
    return metrics_from(trace, rep);
  }

  MetricMap metrics_from(const serve::ArrivalTrace& trace,
                         const serve::ServeReport& rep) const {
    const double horizon_s = trace.horizon_us * 1e-6;
    // Aggregate latency tail over every tenant's tracker (re-observed per
    // tenant would lose exactness; instead take the max-over-tenant bound
    // for the tails and a served-weighted mean for the center).
    double p50 = 0.0, p99 = 0.0, p999 = 0.0, pmax = 0.0;
    std::vector<double> ratios;
    double hot_p99 = 0.0, victim_p99 = 0.0;
    MetricMap m;
    for (const serve::TenantOutcome& t : rep.tenants) {
      p50 = std::max(p50, t.latency.p50_ns());
      p99 = std::max(p99, t.latency.p99_ns());
      p999 = std::max(p999, t.latency.p999_ns());
      pmax = std::max(pmax, t.latency.max_ns());
      ratios.push_back(t.admission.offered == 0
                           ? 1.0
                           : static_cast<double>(t.served) /
                                 static_cast<double>(t.admission.offered));
      if (t.name == "hot") hot_p99 = t.latency.p99_ns();
      if (t.name.rfind("vic", 0) == 0) {
        victim_p99 = std::max(victim_p99, t.latency.p99_ns());
      }
      m["offered_" + t.name] = static_cast<double>(t.admission.offered);
      m["served_" + t.name] = static_cast<double>(t.served);
      m["shed_" + t.name] = static_cast<double>(t.admission.shed());
      m["p50_us_" + t.name] = t.latency.p50_ns() / 1e3;
      m["p99_us_" + t.name] = t.latency.p99_ns() / 1e3;
    }
    m["offered_rps"] = static_cast<double>(rep.offered()) / horizon_s;
    m["achieved_rps"] = rep.roi_seconds > 0.0
                            ? static_cast<double>(rep.served()) / rep.roi_seconds
                            : 0.0;
    m["offered"] = static_cast<double>(rep.offered());
    m["accepted"] = static_cast<double>(rep.accepted());
    m["shed"] = static_cast<double>(rep.shed());
    m["served"] = static_cast<double>(rep.served());
    m["p50_us"] = p50 / 1e3;
    m["p99_us"] = p99 / 1e3;
    m["p999_us"] = p999 / 1e3;
    m["pmax_us"] = pmax / 1e3;
    m["fairness_jain"] = serve::jain_index(ratios);
    m["victim_hot_p99_ratio"] = hot_p99 > 0.0 ? victim_p99 / hot_p99 : 0.0;
    m["roi_ms"] = rep.roi_seconds * 1e3;
    return m;
  }
};

}  // namespace

std::unique_ptr<Workload> make_serving_workload() {
  return std::make_unique<ServingWorkload>();
}

}  // namespace dvx::exp
