// Figure 9 — application speedup, Data Vortex vs MPI-over-InfiniBand
// (paper §VII).
//
// Three applications at 32 nodes:
//   SNAP      — best-effort port (aggregated puts + counters): paper 1.19x
//   Vorticity — aggressive restructuring (spectral solver whose transposes
//               scatter straight into VIC memory)
//   Heat      — aggressive restructuring (one DMA batch for all halos +
//               counter completion)
// The paper reports "between 2.46x and 3.41x" for Vorticity and Heat
// without binding either number to either application; EXPERIMENTS.md
// records the mapping this reproduction observes.

#include <iostream>

#include "apps/heat.hpp"
#include "apps/snap.hpp"
#include "apps/vorticity.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"
#include "runtime/constants.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;

// ParamMap "app" encoding.
enum App { kSnap = 0, kVorticity = 1, kHeat = 2 };
constexpr const char* kAppNames[3] = {"snap", "vorticity", "heat"};

class AppsWorkload final : public Workload {
 public:
  std::string name() const override { return "apps"; }
  std::string figure() const override { return "fig9"; }
  std::string title() const override {
    return "Figure 9 — application speedup w.r.t. MPI-over-Infiniband";
  }
  std::string paper_anchor() const override {
    return "SNAP 1.19x (best-effort port); Vorticity/Heat 2.46x-3.41x (restructured)";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"app", 0, 0, "which application: 0=SNAP 1=Vorticity 2=Heat"},
        {"snap_max_outer", 4, 2, "SNAP source (scattering) iterations"},
        {"vorticity_n", 256, 256, "Vorticity grid points per side"},
        {"vorticity_steps", 8, 3, "Vorticity RK2 time steps"},
        {"heat_n", 24, 24, "Heat global grid points per side"},
        {"heat_steps", 40, 10, "Heat diffusion steps"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {{"roi_seconds", "s", "virtual ROI time of the application run"}};
  }

  std::vector<int> default_nodes(bool) const override { return {32}; }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes});
    const bool dv = backend == Backend::kDv;
    double seconds = 0.0;
    switch (static_cast<App>(static_cast<int>(params.at("app")))) {
      case kSnap: {
        dvx::apps::SnapParams sp{.max_outer = static_cast<int>(params.at("snap_max_outer"))};
        seconds = dv ? dvx::apps::run_snap_dv(cluster, sp).seconds
                     : dvx::apps::run_snap_mpi(cluster, sp).seconds;
        break;
      }
      case kVorticity: {
        dvx::apps::VorticityParams vp{
            .n = static_cast<int>(params.at("vorticity_n")),
            .steps = static_cast<int>(params.at("vorticity_steps"))};
        seconds = dv ? dvx::apps::run_vorticity_dv(cluster, vp).seconds
                     : dvx::apps::run_vorticity_mpi(cluster, vp).seconds;
        break;
      }
      case kHeat: {
        const int n = static_cast<int>(params.at("heat_n"));
        dvx::apps::HeatParams hp{.global_nx = n, .global_ny = n, .global_nz = n,
                                 .steps = static_cast<int>(params.at("heat_steps"))};
        seconds = dv ? dvx::apps::run_heat_dv(cluster, hp).seconds
                     : dvx::apps::run_heat_mpi(cluster, hp).seconds;
        break;
      }
    }
    return {{"roi_seconds", seconds}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    const auto nodes_list = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    for (const int nodes : nodes_list) {
      for (int app = 0; app < 3; ++app) {
        params["app"] = app;
        builder.add(Backend::kDv, nodes, params, kAppNames[app]);
        builder.add(Backend::kMpi, nodes, params, kAppNames[app]);
      }
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes_list = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const double paper_speedup[3] = {runtime::paper::kSnapSpeedup,
                                     runtime::paper::kVorticitySpeedup,
                                     runtime::paper::kHeatSpeedup};
    const char* paper_label[3] = {"1.19", "3.41", "2.46"};

    std::size_t r = 0;  // dv/mpi pairs per app, apps per node count, in plan order
    for (int nodes : nodes_list) {
      runtime::Table t("Fig 9 — Data Vortex speedup over MPI/IB (" +
                           std::to_string(nodes) + " nodes)",
                       {"application", "DV time", "MPI time", "speedup", "paper"});
      for (int app = 0; app < 3; ++app) {
        const PointResult& dv = results[r++];
        const PointResult& mpi = results[r++];
        const double speedup =
            mpi.metrics.at("roi_seconds") / dv.metrics.at("roi_seconds");
        t.row({app == kSnap ? "SNAP" : (app == kVorticity ? "Vorticity" : "Heat"),
               runtime::fmt_us(dv.metrics.at("roi_seconds") * 1e6),
               runtime::fmt_us(mpi.metrics.at("roi_seconds") * 1e6),
               runtime::fmt(speedup), paper_label[app]});
        sink.add(make_record(dv));
        sink.add(make_record(mpi));
        sink.add(make_derived_record(nodes, {{"speedup", speedup}}, kAppNames[app]));
        // The restructured apps must land in the paper's 2.46-3.41x band
        // (loosely) and SNAP near 1.19x; checked at the paper's 32 nodes.
        if (nodes == 32) {
          const bool pass = app == kSnap ? (speedup > 1.0 && speedup < 1.5)
                                         : (speedup > 2.0 && speedup < 4.5);
          sink.add_anchor(make_anchor(std::string(kAppNames[app]) + "_speedup", speedup,
                                      paper_speedup[app], pass,
                                      app == kSnap
                                          ? "best-effort port: small gain near 1.19x"
                                          : "restructured app: within the 2.46-3.41x band"));
        }
      }
      t.print(os);
    }
    os << "\npaper anchors: the best-effort SNAP port yields the smallest gain\n"
          "(1.19x); the two restructured applications land in the 2.5-3.5x\n"
          "band. The 2.46/3.41 assignment to Vorticity/Heat is this\n"
          "reproduction's reading of the unlabeled range in the text.\n";
  }
};

}  // namespace

std::unique_ptr<Workload> make_apps_workload() { return std::make_unique<AppsWorkload>(); }

}  // namespace dvx::exp
