// Figure 9 — application speedup, Data Vortex vs MPI-over-InfiniBand
// (paper §VII).
//
// Three applications at 32 nodes:
//   SNAP      — best-effort port (aggregated puts + counters): paper 1.19x
//   Vorticity — aggressive restructuring (spectral solver whose transposes
//               scatter straight into VIC memory)
//   Heat      — aggressive restructuring (one DMA batch for all halos +
//               counter completion)
// The paper reports "between 2.46x and 3.41x" for Vorticity and Heat
// without binding either number to either application; EXPERIMENTS.md
// records the mapping this reproduction observes.

#include <algorithm>
#include <iostream>

#include "apps/heat.hpp"
#include "apps/snap.hpp"
#include "apps/vorticity.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"
#include "runtime/constants.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;

// ParamMap "app" encoding.
enum App { kSnap = 0, kVorticity = 1, kHeat = 2 };
constexpr const char* kAppNames[3] = {"snap", "vorticity", "heat"};

class AppsWorkload final : public Workload {
 public:
  std::string name() const override { return "apps"; }
  std::string figure() const override { return "fig9"; }
  std::string title() const override {
    return "Figure 9 — application speedup w.r.t. MPI-over-Infiniband";
  }
  std::string paper_anchor() const override {
    return "SNAP 1.19x (best-effort port); Vorticity/Heat 2.46x-3.41x (restructured)";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"app", 0, 0, "which application: 0=SNAP 1=Vorticity 2=Heat"},
        {"snap_max_outer", 4, 2, "SNAP source (scattering) iterations"},
        {"vorticity_n", 256, 256, "Vorticity grid points per side"},
        {"vorticity_steps", 8, 3, "Vorticity RK2 time steps"},
        {"heat_n", 24, 24, "Heat global grid points per side"},
        {"heat_steps", 40, 10, "Heat diffusion steps"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {{"roi_seconds", "s", "virtual ROI time of the application run"}};
  }

  std::vector<int> default_nodes(bool) const override { return {32}; }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
        return true;
      case Backend::kMpiTorus:
        // Figure 9's headline numbers are speedups over the paper's
        // MPI-over-IB baseline; a torus baseline is a different figure.
        return false;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    runtime::Cluster cluster(runtime::ClusterConfig{.nodes = nodes});
    const bool dv = backend == Backend::kDv;
    double seconds = 0.0;
    switch (static_cast<App>(static_cast<int>(params.at("app")))) {
      case kSnap: {
        dvx::apps::SnapParams sp{.max_outer = static_cast<int>(params.at("snap_max_outer"))};
        seconds = dv ? dvx::apps::run_snap_dv(cluster, sp).seconds
                     : dvx::apps::run_snap_mpi(cluster, sp).seconds;
        break;
      }
      case kVorticity: {
        dvx::apps::VorticityParams vp{
            .n = static_cast<int>(params.at("vorticity_n")),
            .steps = static_cast<int>(params.at("vorticity_steps"))};
        seconds = dv ? dvx::apps::run_vorticity_dv(cluster, vp).seconds
                     : dvx::apps::run_vorticity_mpi(cluster, vp).seconds;
        break;
      }
      case kHeat: {
        const int n = static_cast<int>(params.at("heat_n"));
        dvx::apps::HeatParams hp{.global_nx = n, .global_ny = n, .global_nz = n,
                                 .steps = static_cast<int>(params.at("heat_steps"))};
        seconds = dv ? dvx::apps::run_heat_dv(cluster, hp).seconds
                     : dvx::apps::run_heat_mpi(cluster, hp).seconds;
        break;
      }
    }
    return {{"roi_seconds", seconds}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    ParamMap params = default_params(opt.fast);
    const auto nodes_list = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    for (const int nodes : nodes_list) {
      for (int app = 0; app < 3; ++app) {
        params["app"] = app;
        for (const Backend b : backends) builder.add(b, nodes, params, kAppNames[app]);
      }
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes_list = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    const bool want_dv = has(Backend::kDv);
    const bool want_ib = has(Backend::kMpiIb);
    const double paper_speedup[3] = {runtime::paper::kSnapSpeedup,
                                     runtime::paper::kVorticitySpeedup,
                                     runtime::paper::kHeatSpeedup};
    const char* paper_label[3] = {"1.19", "3.41", "2.46"};

    for (int nodes : nodes_list) {
      std::vector<std::string> cols{"application"};
      if (want_dv) cols.push_back("DV time");
      if (want_ib) cols.push_back("MPI time");
      if (want_dv && want_ib) cols.insert(cols.end(), {"speedup", "paper"});
      runtime::Table t("Fig 9 — Data Vortex speedup over MPI/IB (" +
                           std::to_string(nodes) + " nodes)",
                       cols);
      for (int app = 0; app < 3; ++app) {
        const PointResult* dv =
            want_dv ? find_result(results, Backend::kDv, nodes, kAppNames[app]) : nullptr;
        const PointResult* mpi =
            want_ib ? find_result(results, Backend::kMpiIb, nodes, kAppNames[app])
                    : nullptr;
        std::vector<std::string> row{
            app == kSnap ? "SNAP" : (app == kVorticity ? "Vorticity" : "Heat")};
        if (dv) {
          row.push_back(runtime::fmt_us(dv->metrics.at("roi_seconds") * 1e6));
          sink.add(make_record(*dv));
        }
        if (mpi) {
          row.push_back(runtime::fmt_us(mpi->metrics.at("roi_seconds") * 1e6));
          sink.add(make_record(*mpi));
        }
        if (dv && mpi) {
          const double speedup =
              mpi->metrics.at("roi_seconds") / dv->metrics.at("roi_seconds");
          row.push_back(runtime::fmt(speedup));
          row.push_back(paper_label[app]);
          sink.add(make_derived_record(nodes, {{"speedup", speedup}}, kAppNames[app]));
          // The restructured apps must land in the paper's 2.46-3.41x band
          // (loosely) and SNAP near 1.19x; checked at the paper's 32 nodes.
          if (nodes == 32) {
            const bool pass = app == kSnap ? (speedup > 1.0 && speedup < 1.5)
                                           : (speedup > 2.0 && speedup < 4.5);
            sink.add_anchor(make_anchor(
                std::string(kAppNames[app]) + "_speedup", speedup, paper_speedup[app],
                pass,
                app == kSnap ? "best-effort port: small gain near 1.19x"
                             : "restructured app: within the 2.46-3.41x band"));
          }
        }
        t.row(std::move(row));
      }
      t.print(os);
    }
    os << "\npaper anchors: the best-effort SNAP port yields the smallest gain\n"
          "(1.19x); the two restructured applications land in the 2.5-3.5x\n"
          "band. The 2.46/3.41 assignment to Vorticity/Heat is this\n"
          "reproduction's reading of the unlabeled range in the text.\n";
  }
};

}  // namespace

std::unique_ptr<Workload> make_apps_workload() { return std::make_unique<AppsWorkload>(); }

}  // namespace dvx::exp
