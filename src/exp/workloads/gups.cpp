// Figure 6 — GUPS at scale (paper §VI).
//
// (a) updates per second per processing element: ideally flat under weak
// scaling; the MPI/IB implementation declines steadily from 4 to 32 nodes
// while the Data Vortex implementation stays roughly flat.
// (b) aggregate MUPS: DV far above IB, with the gap widening with nodes.

#include <algorithm>
#include <iostream>

#include "apps/gups.hpp"
#include "exp/workload.hpp"
#include "runtime/cluster.hpp"

namespace dvx::exp {
namespace {

namespace runtime = dvx::runtime;

class GupsWorkload final : public Workload {
 public:
  std::string name() const override { return "gups"; }
  std::string figure() const override { return "fig6"; }
  std::string title() const override {
    return "Figure 6 — GUPS (weak scaling, 1024-update buffers)";
  }
  std::string paper_anchor() const override {
    return "DV per-PE rate ~flat; IB declines with node count; aggregate gap widens";
  }

  std::vector<ParamSpec> param_specs() const override {
    return {
        {"local_table_words", 1 << 16, 1 << 16, "GUPS table words per node"},
        {"updates_per_node", 1 << 16, 1 << 13, "updates issued per node (weak scaling)"},
        {"buffer_limit", 1024, 1024, "HPCC aggregation cap"},
    };
  }
  std::vector<MetricSpec> metric_specs() const override {
    return {
        {"roi_seconds", "s", "virtual ROI time of the timed pass"},
        {"gups", "GUPS", "aggregate giga-updates per second"},
        {"mups_per_pe", "MUPS", "mega-updates per second per processing element"},
    };
  }

  std::vector<int> default_nodes(bool) const override { return paper_node_counts(4); }

  bool has_backend(Backend b) const override {
    switch (b) {
      case Backend::kDv:
      case Backend::kMpiIb:
      case Backend::kMpiTorus:
        return true;
    }
    return false;
  }

  MetricMap run_backend(Backend backend, int nodes,
                        const ParamMap& params) const override {
    runtime::ClusterConfig config{.nodes = nodes};
    if (backend == Backend::kMpiTorus) config.mpi_fabric = runtime::MpiFabric::kTorus;
    runtime::Cluster cluster(config);
    dvx::apps::GupsParams gp{
        .local_table_words = static_cast<std::uint64_t>(params.at("local_table_words")),
        .updates_per_node = static_cast<std::uint64_t>(params.at("updates_per_node")),
        .buffer_limit = static_cast<int>(params.at("buffer_limit")),
    };
    const auto r = backend == Backend::kDv ? dvx::apps::run_gups_dv(cluster, gp)
                                           : dvx::apps::run_gups_mpi(cluster, gp);
    return {{"roi_seconds", r.seconds},
            {"gups", r.gups()},
            {"mups_per_pe", r.mups_per_pe(nodes)}};
  }

  std::vector<RunPoint> plan(const RunOptions& opt) const override {
    PlanBuilder builder(*this, opt);
    const ParamMap params = default_params(opt.fast);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    for (const int n : nodes) {
      for (const Backend b : backends) builder.add(b, n, params);
    }
    return builder.take();
  }

  void report(const RunOptions& opt, const std::vector<PointResult>& results,
              runtime::ResultSink& sink) const override {
    std::ostream& os = opt.out ? *opt.out : std::cout;
    banner(os);
    const auto nodes = opt.nodes.empty() ? default_nodes(opt.fast) : opt.nodes;
    const auto backends = selected_backends(opt);
    const auto has = [&](Backend b) {
      return std::find(backends.begin(), backends.end(), b) != backends.end();
    };
    const bool dv_ib = has(Backend::kDv) && has(Backend::kMpiIb);

    std::vector<std::string> pe_cols{"nodes"};
    std::vector<std::string> agg_cols{"nodes"};
    for (const Backend b : backends) {
      pe_cols.push_back(display_name(b));
      agg_cols.push_back(display_name(b));
    }
    if (dv_ib) agg_cols.push_back("DV/IB");
    runtime::Table per_pe("Fig 6a — updates per second per PE (MUPS)", pe_cols);
    runtime::Table agg("Fig 6b — aggregated updates per second (MUPS)", agg_cols);
    double first_ratio = 0, last_ratio = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const int n = nodes[i];
      std::vector<std::string> pe_row{std::to_string(n)};
      std::vector<std::string> agg_row{std::to_string(n)};
      for (const Backend b : backends) {
        const PointResult* r = find_result(results, b, n);
        pe_row.push_back(runtime::fmt(r->metrics.at("mups_per_pe")));
        agg_row.push_back(runtime::fmt(r->metrics.at("gups") * 1e3));
        sink.add(make_record(*r));
      }
      if (dv_ib) {
        const double ratio = find_result(results, Backend::kDv, n)->metrics.at("gups") /
                             find_result(results, Backend::kMpiIb, n)->metrics.at("gups");
        agg_row.push_back(runtime::fmt(ratio));
        sink.add(make_derived_record(n, {{"dv_ib_ratio", ratio}}));
        if (i == 0) first_ratio = ratio;
        last_ratio = ratio;
      }
      per_pe.row(pe_row);
      agg.row(agg_row);
    }
    per_pe.print(os);
    agg.print(os);
    os << "\npaper anchors: IB per-PE MUPS decrease steadily 4 -> 32 nodes;\n"
          "DV stays ~constant (small dip 4 -> 8); the aggregate gap grows\n"
          "with node count.\n";

    if (dv_ib && nodes.size() >= 2) {
      sink.add_anchor(make_anchor("dv_ib_gap_widens", last_ratio, first_ratio,
                                  last_ratio > first_ratio,
                                  "aggregate DV/IB ratio grows with node count"));
      sink.add_anchor(make_anchor("dv_above_ib_at_scale", last_ratio, 1.0,
                                  last_ratio > 1.0,
                                  "DV aggregate rate above IB at the largest sweep point"));
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_gups_workload() { return std::make_unique<GupsWorkload>(); }

}  // namespace dvx::exp
