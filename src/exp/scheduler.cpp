#include "exp/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace dvx::exp {

PointScheduler::PointScheduler(int jobs) : jobs_(std::max(jobs, 1)) {}

void PointScheduler::run(const std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs_), tasks.size()));
  if (workers <= 1) {
    for (const auto& task : tasks) task();
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < tasks.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      tasks[i]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is the last worker
  for (auto& th : pool) th.join();
}

int PointScheduler::default_jobs() {
  if (const char* env = std::getenv("DVX_BENCH_JOBS")) {
    int n = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, n);
    if (ec == std::errc() && ptr == end && n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace dvx::exp
