#pragma once
// The experiment layer (DESIGN.md §6): every paper figure is a `Workload`
// registered once in the `Registry`, and one driver (`dvx_bench`) can list,
// configure, sweep, and run any of them, emitting both the legacy
// human-readable tables and machine-readable JSON records via
// `runtime::ResultSink`.
//
// A workload is a thin adapter over the existing `apps::run_*_dv` /
// `apps::run_*_mpi` entry points. Reproducing a figure is split into three
// phases so independent measurement points can run in parallel
// (DESIGN.md §6, "parallel execution & determinism"):
//
//   plan    — enumerate the figure's `RunPoint`s in canonical order:
//             (backend, nodes, fully resolved params, variant label, and a
//             SplitMix64 sub-seed derived from the root `--seed`).
//   execute — run ONE point. Pure: owns its own `sim::Engine` /
//             `runtime::Cluster`, touches no shared state, writes any
//             human-readable output to the per-point log stream.
//   report  — consume the results (same order as the plan) to print the
//             legacy tables and append records/anchors to the sink.
//
// Because every point is independent and seeded from the plan alone, the
// results — and therefore the emitted JSON — are byte-identical at any
// `--jobs` level.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/report.hpp"

namespace dvx::exp {

/// Every network a figure can run over. kMpiIb is MPI over the InfiniBand
/// fat-tree (the paper's baseline), kMpiTorus is MPI over the APEnet+-style
/// 3D torus. Adding a backend here is a compile-visible event: to_string,
/// parse_backend, all_backends, and every Workload::has_backend switch must
/// be extended before the project builds again.
enum class Backend { kDv, kMpiIb, kMpiTorus };

/// Canonical id used in JSON records, metric labels, and check context:
/// "dv", "mpi", "mpi-torus". The fat-tree keeps the pre-seam id "mpi" so
/// every existing record, golden file, and downstream consumer stays valid.
const char* to_string(Backend b);

/// Parses a backend id for the `--backends` CLI filter. Accepts the
/// canonical ids plus "mpi-ib" as an explicit alias for the fat-tree.
/// Throws std::invalid_argument on anything else.
Backend parse_backend(std::string_view id);

/// All backends in canonical plan order: dv, mpi (ib), mpi-torus.
const std::vector<Backend>& all_backends();

/// Human-readable table-column name: "Data Vortex", "Infiniband", "3D Torus".
const char* display_name(Backend b);

/// One named workload parameter with its defaults. Parameters are doubles
/// (counts, sizes, log-sizes); the fast-mode default shrinks the problem so
/// a full `dvx_bench --all --fast` sweep stays quick.
struct ParamSpec {
  std::string key;
  double full_value = 0.0;
  double fast_value = 0.0;
  std::string description;
};

/// One metric a workload reports per record.
struct MetricSpec {
  std::string key;
  std::string unit;
  std::string description;
};

/// Resolved parameter values, keyed by ParamSpec::key.
using ParamMap = std::map<std::string, double>;

/// Metric values produced by one measurement point.
using MetricMap = std::map<std::string, double>;

/// Driver-level options shared by every workload run.
struct RunOptions {
  bool fast = false;           ///< shrink problem sizes (also via DVX_BENCH_FAST)
  std::uint64_t seed = 0;      ///< 0 = keep each workload's default seed
  std::vector<int> nodes;      ///< empty = the workload's default node sweep
  std::ostream* out = nullptr; ///< table output; nullptr = std::cout
  /// Non-empty: collect obs metrics per point and write one
  /// METRICS_<figure>_p<index>.json (schema dvx-metrics/v1) into this dir.
  std::string metrics_dir;
  /// Non-empty: record an execution trace per point and write one
  /// TRACE_<figure>_p<index>.json (Chrome trace format) into this dir.
  std::string trace_dir;
  /// Non-empty: restrict every figure to these backends (the `--backends`
  /// filter). Empty keeps each workload's default_backends() — the paper's
  /// dv/mpi pairing — so default output is unchanged by backends the
  /// workload could run but was not asked to.
  std::vector<Backend> backends;
};

/// One planned measurement point of a figure.
struct RunPoint {
  std::size_t index = 0;          ///< position in the figure's canonical plan
  Backend backend = Backend::kDv;
  int nodes = 0;
  ParamMap params;                ///< fully resolved parameter values
  std::string variant;            ///< sub-series label ("" = single series)
  std::uint64_t seed = 0;         ///< SplitMix64 sub-seed of the root --seed
                                  ///< (0 when no root seed was given)
};

/// Outcome of executing one RunPoint.
struct PointResult {
  RunPoint point;
  MetricMap metrics;   ///< empty when the point failed
  std::string log;     ///< human-readable output captured during execution
  std::string error;   ///< non-empty: the point threw with this message
  bool failed() const { return !error.empty(); }
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;    ///< e.g. "gups"
  virtual std::string figure() const = 0;  ///< e.g. "fig6"
  virtual std::string title() const = 0;   ///< banner headline
  virtual std::string paper_anchor() const = 0;  ///< banner paper summary

  virtual std::vector<ParamSpec> param_specs() const = 0;
  virtual std::vector<MetricSpec> metric_specs() const = 0;

  /// Whether the workload has an implementation on this network. Pure so
  /// every workload states its support explicitly — a new Backend enumerator
  /// cannot silently "run everywhere".
  virtual bool has_backend(Backend b) const = 0;

  /// The backends this figure plans when RunOptions::backends is empty:
  /// the paper's dv/mpi pairing intersected with has_backend(). The torus
  /// never joins a sweep unasked, which keeps default output stable.
  std::vector<Backend> default_backends() const;

  /// opt.backends (or default_backends() when empty) filtered to the
  /// backends this workload implements, in canonical order.
  std::vector<Backend> selected_backends(const RunOptions& opt) const;

  /// The node counts run() sweeps when RunOptions::nodes is empty.
  virtual std::vector<int> default_nodes(bool fast) const;

  /// Runs ONE measurement point: `nodes` simulated nodes, `backend`'s
  /// implementation, parameters from `params` (missing keys take the
  /// workload defaults per metric_specs/param_specs). Returns the metric
  /// map declared by metric_specs(). Returns an empty map for a backend
  /// the workload does not implement.
  virtual MetricMap run_backend(Backend backend, int nodes,
                                const ParamMap& params) const = 0;

  /// Enumerates the figure's measurement points in canonical order,
  /// honouring `opt.nodes` where the figure has a node sweep.
  virtual std::vector<RunPoint> plan(const RunOptions& opt) const = 0;

  /// Executes ONE planned point. Must be pure with respect to shared state:
  /// the only side channels are the returned metrics and `log` (shown by the
  /// reporting phase, in plan order). The default forwards to run_backend.
  virtual MetricMap execute(const RunPoint& point, std::ostream& log) const;

  /// Prints the figure's banner, tables, and paper-anchor notes from the
  /// executed results (`results[i].point.index == i`, all successful) and
  /// appends one BenchRecord per point (plus AnchorChecks) to `sink`.
  virtual void report(const RunOptions& opt, const std::vector<PointResult>& results,
                      runtime::ResultSink& sink) const = 0;

  /// Runs the full figure reproduction sequentially on the calling thread:
  /// plan, execute every point, then report. Throws std::runtime_error with
  /// the aggregated messages if any point failed (after all points ran).
  void run(const RunOptions& opt, runtime::ResultSink& sink) const;

  // -- helpers shared by implementations --

  /// Defaults for this mode, i.e. {key -> full_value or fast_value}.
  ParamMap default_params(bool fast) const;
  /// Prints the standard banner for this workload.
  void banner(std::ostream& os) const;
  /// A record pre-filled with figure/workload tags.
  runtime::BenchRecord make_record(Backend backend, int nodes,
                                   const ParamMap& params,
                                   MetricMap metrics,
                                   std::string variant = {}) const;
  /// A record for an executed point (same tags, the point's params/variant).
  runtime::BenchRecord make_record(const PointResult& result) const;
  /// A cross-backend ("derived") record, e.g. a DV/IB ratio row.
  runtime::BenchRecord make_derived_record(int nodes, MetricMap metrics,
                                           std::string variant = {}) const;
  /// An anchor check pre-filled with the figure tag.
  runtime::AnchorCheck make_anchor(std::string name, double observed,
                                   double expected, bool pass,
                                   std::string detail = {}) const;
};

/// Accumulates a figure's RunPoints in canonical order, assigning each its
/// index and a sub-seed derived (SplitMix64) from the root `--seed` and the
/// figure tag — a pure function of the plan, independent of `--jobs`.
class PlanBuilder {
 public:
  PlanBuilder(const Workload& workload, const RunOptions& opt);

  /// Appends the next point; `params` are copied as resolved.
  void add(Backend backend, int nodes, const ParamMap& params,
           std::string variant = {});

  std::vector<RunPoint> take() { return std::move(points_); }

 private:
  std::uint64_t figure_seed_ = 0;  ///< 0 = no root seed given
  std::vector<RunPoint> points_;
};

/// The executed point matching (backend, nodes, variant), or nullptr when
/// the plan did not contain it (e.g. a backend filtered out by --backends).
/// Reports use this instead of positional indexing so a figure renders
/// whatever subset of its series was actually planned.
const PointResult* find_result(const std::vector<PointResult>& results,
                               Backend backend, int nodes,
                               std::string_view variant = {});

/// Executes one point with exceptions captured into PointResult::error and
/// log output captured into PointResult::log. Never throws.
PointResult execute_point(const Workload& workload, const RunPoint& point);

/// As above, honouring RunOptions::metrics_dir / trace_dir: the point runs
/// under a private obs::Collector (thread-safe at any --jobs level because
/// nothing is shared) and, on success, its metrics snapshot and Chrome trace
/// are written to the respective directories. A failed write marks the
/// point failed.
PointResult execute_point(const Workload& workload, const RunPoint& point,
                          const RunOptions& opt);

/// The global workload registry. Populated with the built-in workloads on
/// first access; figure tags ("fig3".."fig9", "ablation_*") and workload
/// names ("pingpong", "gups", ...) both resolve.
class Registry {
 public:
  static Registry& instance();

  void add(std::unique_ptr<Workload> workload);

  /// Lookup by workload name OR figure tag; nullptr when unknown.
  const Workload* find(std::string_view name_or_figure) const;

  /// All workloads in registration (figure) order.
  std::vector<const Workload*> all() const;

 private:
  Registry() = default;
  std::vector<std::unique_ptr<Workload>> workloads_;
};

/// The paper's node-count sweep: first, 2*first, ... up to 32.
std::vector<int> paper_node_counts(int first = 2);

/// True when the DVX_BENCH_FAST environment variable is set and non-zero.
bool fast_mode_env();

// Factories for the built-in workloads (one per figure / ablation); called
// by Registry::instance() so registration survives static-library linking.
std::unique_ptr<Workload> make_pingpong_workload();          // fig3
std::unique_ptr<Workload> make_barrier_workload();           // fig4
std::unique_ptr<Workload> make_gups_trace_workload();        // fig5
std::unique_ptr<Workload> make_gups_workload();              // fig6
std::unique_ptr<Workload> make_fft1d_workload();             // fig7
std::unique_ptr<Workload> make_bfs_workload();               // fig8
std::unique_ptr<Workload> make_apps_workload();              // fig9
std::unique_ptr<Workload> make_ablation_aggregation_workload();
std::unique_ptr<Workload> make_ablation_fabric_workload();
std::unique_ptr<Workload> make_traffic_workload();
std::unique_ptr<Workload> make_serving_workload();

}  // namespace dvx::exp
