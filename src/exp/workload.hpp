#pragma once
// The experiment layer (DESIGN.md §6): every paper figure is a `Workload`
// registered once in the `Registry`, and one driver (`dvx_bench`) can list,
// configure, sweep, and run any of them, emitting both the legacy
// human-readable tables and machine-readable JSON records via
// `runtime::ResultSink`.
//
// A workload is a thin adapter over the existing `apps::run_*_dv` /
// `apps::run_*_mpi` entry points: it names its parameters (with full and
// fast-mode defaults), declares its metric schema, exposes a uniform
// per-point `run_backend` entry for both network implementations, and
// orchestrates the figure-level sweep in `run`.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/report.hpp"

namespace dvx::exp {

enum class Backend { kDv, kMpi };

/// "dv" or "mpi" — the strings used in JSON records.
const char* to_string(Backend b);

/// One named workload parameter with its defaults. Parameters are doubles
/// (counts, sizes, log-sizes); the fast-mode default shrinks the problem so
/// a full `dvx_bench --all --fast` sweep stays quick.
struct ParamSpec {
  std::string key;
  double full_value = 0.0;
  double fast_value = 0.0;
  std::string description;
};

/// One metric a workload reports per record.
struct MetricSpec {
  std::string key;
  std::string unit;
  std::string description;
};

/// Resolved parameter values, keyed by ParamSpec::key.
using ParamMap = std::map<std::string, double>;

/// Metric values produced by one measurement point.
using MetricMap = std::map<std::string, double>;

/// Driver-level options shared by every workload run.
struct RunOptions {
  bool fast = false;           ///< shrink problem sizes (also via DVX_BENCH_FAST)
  std::uint64_t seed = 0;      ///< 0 = keep each workload's default seed
  std::vector<int> nodes;      ///< empty = the workload's default node sweep
  std::ostream* out = nullptr; ///< table output; nullptr = std::cout
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;    ///< e.g. "gups"
  virtual std::string figure() const = 0;  ///< e.g. "fig6"
  virtual std::string title() const = 0;   ///< banner headline
  virtual std::string paper_anchor() const = 0;  ///< banner paper summary

  virtual std::vector<ParamSpec> param_specs() const = 0;
  virtual std::vector<MetricSpec> metric_specs() const = 0;

  /// Whether the workload has an implementation on this network.
  virtual bool has_backend(Backend b) const;

  /// The node counts run() sweeps when RunOptions::nodes is empty.
  virtual std::vector<int> default_nodes(bool fast) const;

  /// Runs ONE measurement point: `nodes` simulated nodes, `backend`'s
  /// implementation, parameters from `params` (missing keys take the
  /// workload defaults per metric_specs/param_specs). Returns the metric
  /// map declared by metric_specs(). Returns an empty map for a backend
  /// the workload does not implement.
  virtual MetricMap run_backend(Backend backend, int nodes,
                                const ParamMap& params) const = 0;

  /// Runs the full figure reproduction: sweeps its points (honouring
  /// `opt.nodes` where the figure has a node sweep), prints the legacy
  /// tables and paper-anchor notes to `opt.out`, and appends one
  /// BenchRecord per point (plus AnchorChecks) to `sink`.
  virtual void run(const RunOptions& opt, runtime::ResultSink& sink) const = 0;

  // -- helpers shared by implementations --

  /// Defaults for this mode, i.e. {key -> full_value or fast_value}.
  ParamMap default_params(bool fast) const;
  /// Prints the standard banner for this workload.
  void banner(std::ostream& os) const;
  /// A record pre-filled with figure/workload tags.
  runtime::BenchRecord make_record(Backend backend, int nodes,
                                   const ParamMap& params,
                                   MetricMap metrics,
                                   std::string variant = {}) const;
  /// A cross-backend ("derived") record, e.g. a DV/IB ratio row.
  runtime::BenchRecord make_derived_record(int nodes, MetricMap metrics,
                                           std::string variant = {}) const;
  /// An anchor check pre-filled with the figure tag.
  runtime::AnchorCheck make_anchor(std::string name, double observed,
                                   double expected, bool pass,
                                   std::string detail = {}) const;
};

/// The global workload registry. Populated with the built-in workloads on
/// first access; figure tags ("fig3".."fig9", "ablation_*") and workload
/// names ("pingpong", "gups", ...) both resolve.
class Registry {
 public:
  static Registry& instance();

  void add(std::unique_ptr<Workload> workload);

  /// Lookup by workload name OR figure tag; nullptr when unknown.
  const Workload* find(std::string_view name_or_figure) const;

  /// All workloads in registration (figure) order.
  std::vector<const Workload*> all() const;

 private:
  Registry() = default;
  std::vector<std::unique_ptr<Workload>> workloads_;
};

/// The paper's node-count sweep: first, 2*first, ... up to 32.
std::vector<int> paper_node_counts(int first = 2);

/// True when the DVX_BENCH_FAST environment variable is set and non-zero.
bool fast_mode_env();

// Factories for the built-in workloads (one per figure / ablation); called
// by Registry::instance() so registration survives static-library linking.
std::unique_ptr<Workload> make_pingpong_workload();          // fig3
std::unique_ptr<Workload> make_barrier_workload();           // fig4
std::unique_ptr<Workload> make_gups_trace_workload();        // fig5
std::unique_ptr<Workload> make_gups_workload();              // fig6
std::unique_ptr<Workload> make_fft1d_workload();             // fig7
std::unique_ptr<Workload> make_bfs_workload();               // fig8
std::unique_ptr<Workload> make_apps_workload();              // fig9
std::unique_ptr<Workload> make_ablation_aggregation_workload();
std::unique_ptr<Workload> make_ablation_fabric_workload();

}  // namespace dvx::exp
