#pragma once
// Cycle-accurate simulator of the Data Vortex deflection-routed switch.
//
// Implements the routing rule of paper §II: a packet entering a node on
// cylinder c compares one bit of its destination height against the node's
// height; on a match it descends one cylinder (a "normal path", angle +1), on
// a mismatch it takes a "deflection path" within the same cylinder to a node
// whose height flips that bit (angle +1). Contention is resolved by the
// deflection signal: a node never accepts a packet from the outer cylinder in
// a cycle in which it receives one along its own cylinder, so blocked packets
// keep moving (hot-potato) instead of buffering. Statistically this costs
// about two extra hops under load — the property the analytic FabricModel
// encodes and the ablation bench cross-checks.
//
// Hot-path layout (DESIGN.md §10): step() is O(active) — per-cylinder
// worklists of in-flight slots are carried across cycles (no occupancy
// rescans), the occupancy grid is reset cell-by-cell from last cycle's
// worklist (no O(nodes) fill), port queues are head-indexed rings (O(1)
// pop-front), and delivery statistics are folded in at ejection so nothing
// replays a log. All per-cycle storage is persistent and recycled: the
// steady state allocates nothing.

#include <cstdint>
#include <vector>

#include "check/audit.hpp"
#include "dvnet/geometry.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace dvx::dvnet {

struct CyclePacket {
  int dst_port = 0;
  int src_port = 0;
  std::uint64_t tag = 0;
  // position
  int cylinder = 0;
  int height = 0;
  int angle = 0;
  // destination coordinates, cached at inject (pure cache of
  // geometry.port_height/port_angle so the per-hop path does no div/mod)
  int dst_height = 0;
  int dst_angle = 0;
  // bookkeeping
  std::uint64_t inject_cycle = 0;
  int hops = 0;
  int deflections = 0;
};

struct Delivery {
  int src_port;
  int dst_port;
  std::uint64_t tag;
  std::uint64_t inject_cycle;
  std::uint64_t eject_cycle;
  int hops;
  int deflections;
};

// dvx-analyze: shared-across-shards
class CycleSwitch : public check::InvariantAuditor {
 public:
  explicit CycleSwitch(Geometry geometry);

  const Geometry& geometry() const noexcept { return geometry_; }

  /// Queues a packet at an input port; it enters the fabric when the port's
  /// cylinder-0 node is free (at most one injection per port per cycle).
  void inject(int src_port, int dst_port, std::uint64_t tag = 0);

  /// Advances the fabric by one switch cycle.
  void step();

  /// Steps until all queued and in-flight packets are delivered.
  /// Returns false if `max_cycles` elapsed first (suspected livelock).
  bool drain(std::uint64_t max_cycles = 1'000'000);

  std::uint64_t cycle() const noexcept { return cycle_; }
  std::size_t in_flight() const noexcept { return in_flight_; }
  /// Packets waiting in the injection queues (running counter, O(1)).
  std::size_t queued() const noexcept { return queued_; }

  /// Opt-in per-delivery log. Off by default — the statistics below stay
  /// exact either way (they are folded in at ejection); the log exists for
  /// tests and tools that inspect individual packets, and grows unbounded
  /// while enabled, so production-scale runs should leave it off. The
  /// default is also what keeps multi-shard runs safe by construction:
  /// CycleSwitch is not on the cluster path (DESIGN.md §15 keeps it
  /// shared-across-shards), and with the log off no caller is tempted to
  /// read `deliveries()` from concurrent shard workers.
  // dvx-analyze: allow(shard-safety) -- configuration toggle, set once before any run
  void record_deliveries(bool on) noexcept { record_deliveries_ = on; }
  bool deliveries_recorded() const noexcept { return record_deliveries_; }
  const std::vector<Delivery>& deliveries() const noexcept { return deliveries_; }

  /// Packets that entered the fabric / were ejected since construction.
  std::uint64_t injected_total() const noexcept { return injected_; }
  std::uint64_t delivered_total() const noexcept { return delivered_; }

  /// Verifies the fabric's epoch invariants (DESIGN.md §7): packet
  /// conservation (injected == delivered + in-flight, occupancy grid in
  /// sync with the counters and the active worklist, slot slab accounted
  /// for) and, at DVX_CHECK_LEVEL >= 2, per-packet routing legality
  /// (position in range, the c most-significant height bits of a cylinder-c
  /// packet match its destination, hop count consistent with its age). Runs
  /// automatically every kAuditCycles at level >= 2 and at the end of
  /// drain(); cheap enough to call explicitly from tests at any level >= 1.
  void audit_invariants() const;

  /// check::InvariantAuditor: lets tests drive audits from an Engine cadence.
  void audit(std::int64_t now_ps) override;

  /// TEST ONLY: silently removes one in-flight packet from the occupancy
  /// grid (and the active worklist) without adjusting any counter — a
  /// seeded conservation fault that audit_invariants() must catch. Returns
  /// false when nothing is in flight.
  bool corrupt_drop_one_for_test();

  /// Latency distribution in cycles (inject->eject) of packets delivered
  /// since construction (or the last clear_deliveries()). Maintained
  /// incrementally at ejection — O(1), independent of the delivery log.
  sim::RunningStats latency_stats() const { return latency_rs_; }
  /// Hop-count distribution of delivered packets.
  sim::RunningStats hop_stats() const { return hop_rs_; }
  /// Deflection-count distribution of delivered packets.
  sim::RunningStats deflection_stats() const { return defl_rs_; }

  /// Resets the delivery log and the delivery statistics (which have always
  /// been "since the last clear"); injected/delivered totals are unaffected.
  void clear_deliveries();

 private:
  /// Automatic audit cadence in switch cycles (level >= 2 builds only).
  static constexpr std::uint64_t kAuditCycles = 1024;

  /// One in-flight packet on this cycle's worklist: its slot in packets_
  /// plus its node index *within its cylinder* (h * angles + a). Worklists
  /// are sorted by node before processing so contention resolves in the
  /// same ascending-node order as the historical full-grid scan.
  struct WorkItem {
    std::uint32_t node;
    std::uint32_t slot;
  };

  /// Head-indexed ring storage for one injection port: pop-front is O(1);
  /// the dead prefix is compacted away once it dominates the buffer, so the
  /// storage is bounded by the backlog high-water mark and recycled forever.
  struct PortQueue {
    std::vector<CyclePacket> buf;
    std::size_t head = 0;

    bool empty() const noexcept { return head == buf.size(); }
    std::size_t size() const noexcept { return buf.size() - head; }
    void push(const CyclePacket& p) { buf.push_back(p); }
    CyclePacket pop() {
      CyclePacket p = buf[head++];
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      } else if (head >= 64 && head * 2 >= buf.size()) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      return p;
    }
  };

  int node_index(int c, int h, int a) const noexcept {
    return (c * geometry_.heights + h) * geometry_.angles + a;
  }
  int next_angle(int a) const noexcept {
    const int na = a + 1;
    return na == geometry_.angles ? 0 : na;
  }

  void eject(std::uint32_t slot);
  void place(int cylinder, std::uint32_t in_cylinder_node, std::uint32_t slot);

  Geometry geometry_;
  // obs instrumentation, attached from the ambient collector at
  // construction; all null (one dead branch per site) when nothing collects.
  std::vector<obs::Counter*> deflection_counters_;  // [cylinder * angles + angle]
  obs::Histogram* hops_hist_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  obs::Gauge* occupancy_gauge_ = nullptr;
  obs::Counter* inject_stalls_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  bool record_deliveries_ = false;
  // occupancy_[node] = packet index + 1, or 0 when empty. occupancy_next_
  // is all-zero between steps (dirty cells are reset from the worklist).
  std::vector<std::uint32_t> occupancy_;
  std::vector<std::uint32_t> occupancy_next_;
  std::vector<CyclePacket> packets_;       // slab; freed slots reused
  std::vector<std::uint32_t> free_slots_;
  // Per-cylinder active worklists, double-buffered across cycles. Cleared
  // (capacity kept) rather than reallocated.
  std::vector<std::vector<WorkItem>> worklist_;
  std::vector<std::vector<WorkItem>> worklist_next_;
  std::vector<PortQueue> port_queues_;  // per input port
  sim::RunningStats latency_rs_;
  sim::RunningStats hop_rs_;
  sim::RunningStats defl_rs_;
  std::vector<Delivery> deliveries_;
};

}  // namespace dvx::dvnet
