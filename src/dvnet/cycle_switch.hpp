#pragma once
// Cycle-accurate simulator of the Data Vortex deflection-routed switch.
//
// Implements the routing rule of paper §II: a packet entering a node on
// cylinder c compares one bit of its destination height against the node's
// height; on a match it descends one cylinder (a "normal path", angle +1), on
// a mismatch it takes a "deflection path" within the same cylinder to a node
// whose height flips that bit (angle +1). Contention is resolved by the
// deflection signal: a node never accepts a packet from the outer cylinder in
// a cycle in which it receives one along its own cylinder, so blocked packets
// keep moving (hot-potato) instead of buffering. Statistically this costs
// about two extra hops under load — the property the analytic FabricModel
// encodes and the ablation bench cross-checks.

#include <cstdint>
#include <vector>

#include "check/audit.hpp"
#include "dvnet/geometry.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace dvx::dvnet {

struct CyclePacket {
  int dst_port = 0;
  int src_port = 0;
  std::uint64_t tag = 0;
  // position
  int cylinder = 0;
  int height = 0;
  int angle = 0;
  // bookkeeping
  std::uint64_t inject_cycle = 0;
  int hops = 0;
  int deflections = 0;
};

struct Delivery {
  int src_port;
  int dst_port;
  std::uint64_t tag;
  std::uint64_t inject_cycle;
  std::uint64_t eject_cycle;
  int hops;
  int deflections;
};

class CycleSwitch : public check::InvariantAuditor {
 public:
  explicit CycleSwitch(Geometry geometry);

  const Geometry& geometry() const noexcept { return geometry_; }

  /// Queues a packet at an input port; it enters the fabric when the port's
  /// cylinder-0 node is free (at most one injection per port per cycle).
  void inject(int src_port, int dst_port, std::uint64_t tag = 0);

  /// Advances the fabric by one switch cycle.
  void step();

  /// Steps until all queued and in-flight packets are delivered.
  /// Returns false if `max_cycles` elapsed first (suspected livelock).
  bool drain(std::uint64_t max_cycles = 1'000'000);

  std::uint64_t cycle() const noexcept { return cycle_; }
  std::size_t in_flight() const noexcept { return in_flight_; }
  std::size_t queued() const;
  const std::vector<Delivery>& deliveries() const noexcept { return deliveries_; }

  /// Packets that entered the fabric / were ejected since construction.
  std::uint64_t injected_total() const noexcept { return injected_; }
  std::uint64_t delivered_total() const noexcept { return delivered_; }

  /// Verifies the fabric's epoch invariants (DESIGN.md §7): packet
  /// conservation (injected == delivered + in-flight, occupancy grid in
  /// sync with the counters, slot slab accounted for) and, at
  /// DVX_CHECK_LEVEL >= 2, per-packet routing legality (position in range,
  /// the c most-significant height bits of a cylinder-c packet match its
  /// destination, hop count consistent with its age). Runs automatically
  /// every kAuditCycles at level >= 2 and at the end of drain(); cheap
  /// enough to call explicitly from tests at any level >= 1.
  void audit_invariants() const;

  /// check::InvariantAuditor: lets tests drive audits from an Engine cadence.
  void audit(std::int64_t now_ps) override;

  /// TEST ONLY: silently removes one in-flight packet from the occupancy
  /// grid without adjusting any counter — a seeded conservation fault that
  /// audit_invariants() must catch. Returns false when nothing is in flight.
  bool corrupt_drop_one_for_test();

  /// Latency distribution in cycles (inject->eject) of delivered packets.
  sim::RunningStats latency_stats() const;
  /// Hop-count distribution of delivered packets.
  sim::RunningStats hop_stats() const;
  /// Deflection-count distribution of delivered packets.
  sim::RunningStats deflection_stats() const;

  void clear_deliveries() { deliveries_.clear(); }

 private:
  /// Automatic audit cadence in switch cycles (level >= 2 builds only).
  static constexpr std::uint64_t kAuditCycles = 1024;

  int node_index(int c, int h, int a) const noexcept {
    return (c * geometry_.heights + h) * geometry_.angles + a;
  }
  int next_angle(int a) const noexcept { return (a + 1) % geometry_.angles; }

  Geometry geometry_;
  // obs instrumentation, attached from the ambient collector at
  // construction; all null (one dead branch per site) when nothing collects.
  std::vector<obs::Counter*> deflection_counters_;  // [cylinder * angles + angle]
  obs::Histogram* hops_hist_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  obs::Gauge* occupancy_gauge_ = nullptr;
  obs::Counter* inject_stalls_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_ = 0;
  // occupancy_[node] = packet index + 1, or 0 when empty
  std::vector<std::uint32_t> occupancy_;
  std::vector<std::uint32_t> occupancy_next_;
  std::vector<CyclePacket> packets_;       // slab; freed slots reused
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::vector<CyclePacket>> port_queues_;  // per input port
  std::vector<Delivery> deliveries_;
};

}  // namespace dvx::dvnet
