#include "dvnet/fabric_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/check.hpp"
#include "obs/collector.hpp"

namespace dvx::dvnet {

FabricModel::FabricModel(FabricParams params) : params_(params) {
  params_.geometry.validate();
  if (params_.cycle <= 0) throw std::invalid_argument("FabricModel: cycle must be positive");
  if (obs::Registry* m = obs::metrics()) {
    obs_bursts_ = m->counter("dv.fabric.bursts");
    obs_words_ = m->counter("dv.fabric.words");
    obs_deflection_penalties_ = m->counter("dv.fabric.deflection_penalties");
    obs_inject_wait_ps_ = m->counter("dv.fabric.inject_wait_ps");
    obs_eject_wait_ps_ = m->counter("dv.fabric.eject_wait_ps");
    obs_port_busy_ps_ = m->counter("dv.fabric.port_busy_ps");
  }
  reset();
}

void FabricModel::reset() {
  inj_free_.assign(static_cast<std::size_t>(ports()), 0);
  ej_free_.assign(static_cast<std::size_t>(ports()), 0);
  words_sent_ = 0;
  vc_last_first_arrival_.clear();
}

double FabricModel::port_bandwidth() const noexcept {
  return 8.0 / sim::to_seconds(params_.cycle);
}

sim::Duration FabricModel::base_latency() const noexcept {
  return static_cast<sim::Duration>(params_.derived_base_hops() *
                                    static_cast<double>(params_.cycle));
}

BurstTiming FabricModel::send_burst(int src_port, int dst_port, std::int64_t words,
                                    sim::Time ready) {
  if (src_port < 0 || src_port >= ports() || dst_port < 0 || dst_port >= ports()) {
    throw std::out_of_range("FabricModel::send_burst: port out of range");
  }
  if (words <= 0) return BurstTiming{ready, ready};

  auto& inj = inj_free_[static_cast<std::size_t>(src_port)];
  auto& ej = ej_free_[static_cast<std::size_t>(dst_port)];

  const bool contended = inj > ready || ej > ready;
  const double hops =
      params_.derived_base_hops() + (contended ? params_.contended_extra_hops : 0.0);
  const auto latency =
      static_cast<sim::Duration>(hops * static_cast<double>(params_.cycle));

  const sim::Time start = std::max(ready, inj);
  const sim::Time inj_before = inj;  // snapshots for the monotonicity checks
  const sim::Time ej_before = ej;
  inj = start + words * params_.cycle;

  // First word finishes injecting one cycle after start, then traverses.
  const sim::Time first_at_dst = start + params_.cycle + latency;
  const sim::Time ej_begin = std::max(first_at_dst, ej);
  ej = ej_begin + (words - 1) * params_.cycle;
  words_sent_ += static_cast<std::uint64_t>(words);

  if (obs_bursts_ != nullptr) {
    obs_bursts_->inc();
    obs_words_->add(static_cast<std::uint64_t>(words));
    if (contended) obs_deflection_penalties_->inc();
    obs_inject_wait_ps_->add(static_cast<std::uint64_t>(start - ready));
    obs_eject_wait_ps_->add(static_cast<std::uint64_t>(ej_begin - first_at_dst));
    obs_port_busy_ps_->add(static_cast<std::uint64_t>(words * params_.cycle));
  }

  // Port serialization legality: next-free times only move forward, and the
  // burst ejects strictly after it started injecting.
  DVX_CHECK(inj > inj_before) << "injection port time went backwards";
  DVX_CHECK(ej >= ej_before) << "ejection port time went backwards";
  DVX_CHECK(ej_begin > start) << "burst ejected before it injected";
  DVX_CHECK(ej >= ej_begin);

#if DVX_CHECK_LEVEL >= 2
  // FIFO per (src, dst) virtual channel: a later burst never overtakes an
  // earlier one (follows from monotone port-free times; audited explicitly).
  sim::Time& vc_last = vc_last_first_arrival_[{src_port, dst_port}];
  DVX_CHECK_SOON(ej_begin >= vc_last)
      << "VC (" << src_port << " -> " << dst_port
      << ") burst overtook its predecessor: first_arrival " << ej_begin
      << " < " << vc_last;
  vc_last = ej_begin;
#endif
  return BurstTiming{ej_begin, ej};
}

}  // namespace dvx::dvnet
