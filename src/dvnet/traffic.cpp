#include "dvnet/traffic.hpp"

#include <bit>

namespace dvx::dvnet {
namespace {

/// Index bits the permutation patterns operate on. Port counts are
/// heights * angles and not necessarily a power of two; out-of-range
/// permuted indices wrap, which keeps the traffic valid (if not a strict
/// permutation) for odd geometries.
int index_bits(int ports) {
  return static_cast<int>(std::bit_width(static_cast<unsigned>(ports - 1)));
}

int rotate_index(int src, int ports) {
  const int b = index_bits(ports);
  const int h = b / 2;
  if (h == 0) return src;
  const unsigned mask = (1u << b) - 1u;
  const unsigned u = static_cast<unsigned>(src);
  return static_cast<int>(((u << h | u >> (b - h)) & mask) % static_cast<unsigned>(ports));
}

int reverse_index(int src, int ports) {
  const int b = index_bits(ports);
  unsigned out = 0;
  for (int i = 0; i < b; ++i) {
    out = (out << 1) | ((static_cast<unsigned>(src) >> i) & 1u);
  }
  return static_cast<int>(out % static_cast<unsigned>(ports));
}

}  // namespace

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kBitReverse:
      return "bit_reverse";
  }
  return "?";
}

int traffic_destination(const TrafficConfig& cfg, int src, int ports,
                        sim::Xoshiro256& rng) {
  switch (cfg.pattern) {
    case TrafficPattern::kUniform:
      return static_cast<int>(rng.below(static_cast<std::uint64_t>(ports)));
    case TrafficPattern::kHotspot:
      if (rng.chance(cfg.hotspot_fraction)) return cfg.hot_port;
      return static_cast<int>(rng.below(static_cast<std::uint64_t>(ports)));
    case TrafficPattern::kTranspose:
      return rotate_index(src, ports);
    case TrafficPattern::kBitReverse:
      return reverse_index(src, ports);
  }
  return src;
}

TrafficResult run_synthetic(CycleSwitch& sw, const TrafficConfig& cfg,
                            std::uint64_t cycles, std::uint64_t seed) {
  sw.clear_deliveries();
  const std::uint64_t delivered_before = sw.delivered_total();
  sim::Xoshiro256 rng(seed);
  const int ports = sw.geometry().ports();
  TrafficResult r;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (int p = 0; p < ports; ++p) {
      if (rng.chance(cfg.offered_load)) {
        sw.inject(p, traffic_destination(cfg, p, ports, rng));
        ++r.offered;
      }
    }
    sw.step();
  }
  r.drained = sw.drain();
  r.delivered = sw.delivered_total() - delivered_before;
  r.hops = sw.hop_stats();
  r.deflections = sw.deflection_stats();
  r.latency = sw.latency_stats();
  return r;
}

}  // namespace dvx::dvnet
