#pragma once
// Fast analytic model of the Data Vortex fabric.
//
// Application-scale runs move millions of 8-byte packets; simulating each at
// cycle granularity would dominate wall-clock time without changing the
// outcome, because the fabric's externally visible behaviour is simple:
//   * each port injects and ejects at most one packet (8 B payload) per
//     switch cycle — the cycle time is chosen so one word/cycle equals the
//     4.4 GB/s nominal per-port bandwidth the paper reports;
//   * in-fabric latency is a small, nearly load-independent hop count
//     (deflection adds ~2 hops statistically under contention, per §II).
// FabricModel encodes exactly that: per-port next-free times enforce the
// serialization, a calibrated hop count supplies the latency. The
// bench_ablation_fabric binary and dvnet tests cross-check this model
// against the cycle-accurate CycleSwitch.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dvnet/geometry.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace dvx::dvnet {

struct FabricParams {
  Geometry geometry{};
  /// One 64-bit payload word per port per cycle; 8 B / 4.4 GB/s = 1.818 ns.
  sim::Duration cycle = sim::ns(8.0 / 4.4);
  /// Expected fabric traversal under light load, in hops (switch cycles).
  /// Derived from the routing rule: each of log2(H) levels costs 1 hop on a
  /// height-bit match and 2 on a mismatch (expected 1.5), plus half the ring
  /// circumference on the innermost cylinder, plus the ejection hop.
  /// dvnet tests validate this against the CycleSwitch measurement.
  double base_hops = 0.0;  // 0 = derive from geometry
  /// Statistical deflection penalty under contention (paper: "statistically
  /// by two hops").
  double contended_extra_hops = 2.0;

  double derived_base_hops() const {
    if (base_hops > 0.0) return base_hops;
    return 1.5 * geometry.height_bits() + geometry.angles / 2.0 + 1.0;
  }
};

/// Result of pushing a back-to-back burst of words through the fabric.
struct BurstTiming {
  sim::Time first_arrival;  ///< ejection completion of the first word
  sim::Time last_arrival;   ///< ejection completion of the last word
};

class FabricModel {
 public:
  explicit FabricModel(FabricParams params);

  const FabricParams& params() const noexcept { return params_; }
  int ports() const noexcept { return params_.geometry.ports(); }
  sim::Duration word_time() const noexcept { return params_.cycle; }

  /// Nominal per-port bandwidth in bytes/second (8 B per cycle).
  double port_bandwidth() const noexcept;

  /// Sends `words` fixed-size packets src -> dst, first injectable at
  /// `ready`. Serializes on the source injection port and the destination
  /// ejection port; adds hop latency (plus the deflection penalty when either
  /// port is already backlogged). Callers must invoke this in nondecreasing
  /// `ready` order, which the DES guarantees.
  BurstTiming send_burst(int src_port, int dst_port, std::int64_t words,
                         sim::Time ready);

  /// Pure latency of an uncontended single-word packet.
  sim::Duration base_latency() const noexcept;

  sim::Time injection_free(int port) const { return inj_free_.at(static_cast<std::size_t>(port)); }
  sim::Time ejection_free(int port) const { return ej_free_.at(static_cast<std::size_t>(port)); }

  /// Forgets all port backlog (fresh fabric).
  void reset();

  std::uint64_t words_sent() const noexcept { return words_sent_; }

 private:
  FabricParams params_;
  // obs instrumentation (null when nothing collects): burst/word tallies,
  // contended-burst count (each charged the statistical deflection penalty),
  // and the serialization accounting — time bursts waited on a busy
  // injection/ejection port and total port busy time.
  obs::Counter* obs_bursts_ = nullptr;
  obs::Counter* obs_words_ = nullptr;
  obs::Counter* obs_deflection_penalties_ = nullptr;
  obs::Counter* obs_inject_wait_ps_ = nullptr;
  obs::Counter* obs_eject_wait_ps_ = nullptr;
  obs::Counter* obs_port_busy_ps_ = nullptr;
  std::vector<sim::Time> inj_free_;
  std::vector<sim::Time> ej_free_;
  std::uint64_t words_sent_ = 0;
  // FIFO-order audit state (populated only in DVX_CHECK_LEVEL >= 2 builds):
  // first-arrival time of the latest burst per (src, dst) virtual channel.
  // Bursts on one VC must eject in injection order.
  std::map<std::pair<int, int>, sim::Time> vc_last_first_arrival_;
};

}  // namespace dvx::dvnet
