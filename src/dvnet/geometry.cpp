#include "dvnet/geometry.hpp"

#include <bit>
#include <stdexcept>

namespace dvx::dvnet {

int Geometry::height_bits() const noexcept {
  return std::bit_width(static_cast<unsigned>(heights)) - 1;
}

int Geometry::cylinders() const noexcept { return height_bits() + 1; }

Geometry Geometry::for_ports(int min_ports, int angles) {
  if (min_ports <= 0 || angles <= 0) {
    throw std::invalid_argument("Geometry::for_ports: ports and angles must be positive");
  }
  int h = (min_ports + angles - 1) / angles;
  unsigned rounded = std::bit_ceil(static_cast<unsigned>(h < 2 ? 2 : h));
  Geometry g{static_cast<int>(rounded), angles};
  g.validate();
  return g;
}

void Geometry::validate() const {
  if (heights < 2 || !std::has_single_bit(static_cast<unsigned>(heights))) {
    throw std::invalid_argument("Geometry: heights must be a power of two >= 2");
  }
  if (angles < 1) {
    throw std::invalid_argument("Geometry: angles must be >= 1");
  }
}

}  // namespace dvx::dvnet
