#pragma once
// Synthetic traffic patterns for the Data Vortex switch.
//
// The paper argues the fabric's value shows up under *irregular* traffic:
// deflection routing absorbs contention at the cost of "statistically two
// hops" (§II). These generators create the contention spectrum needed to
// measure that claim directly on the cycle-accurate switch — from benign
// uniform-random to a single-hot-port worst case — and are shared by the
// `traffic` bench workload and the dvnet cross-check tests.

#include <cstdint>

#include "dvnet/cycle_switch.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dvx::dvnet {

enum class TrafficPattern : std::uint8_t {
  kUniform,      ///< independent uniform destination per packet
  kHotspot,      ///< a fraction of traffic converges on one hot port
  kTranspose,    ///< fixed permutation: destination = bit-rotated source
  kBitReverse,   ///< fixed permutation: destination = bit-reversed source
};

const char* to_string(TrafficPattern p);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// Injection probability per port per switch cycle.
  double offered_load = 0.1;
  /// Hotspot only: fraction of packets aimed at `hot_port` (rest uniform).
  double hotspot_fraction = 0.5;
  int hot_port = 0;
};

/// Destination port for one packet from `src` under `cfg`. Permutation
/// patterns ignore the RNG; random patterns consume from it.
int traffic_destination(const TrafficConfig& cfg, int src, int ports,
                        sim::Xoshiro256& rng);

struct TrafficResult {
  std::uint64_t offered = 0;    ///< packets handed to inject()
  std::uint64_t delivered = 0;  ///< packets ejected by the end of the drain
  bool drained = false;         ///< false: drain hit its cycle budget
  sim::RunningStats hops;
  sim::RunningStats deflections;
  sim::RunningStats latency;    ///< inject->eject, in switch cycles
};

/// Offers `cfg` traffic to a fresh-statistics region of `sw` for `cycles`
/// switch cycles, then drains. Deterministic for a given (cfg, cycles, seed).
TrafficResult run_synthetic(CycleSwitch& sw, const TrafficConfig& cfg,
                            std::uint64_t cycles, std::uint64_t seed);

}  // namespace dvx::dvnet
