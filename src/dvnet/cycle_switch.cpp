#include "dvnet/cycle_switch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "analyze/shard_access.hpp"
#include "check/check.hpp"
#include "obs/collector.hpp"

namespace dvx::dvnet {

CycleSwitch::CycleSwitch(Geometry geometry) : geometry_(geometry) {
  geometry_.validate();
  occupancy_.assign(static_cast<std::size_t>(geometry_.nodes()), 0);
  occupancy_next_.assign(occupancy_.size(), 0);
  worklist_.resize(static_cast<std::size_t>(geometry_.cylinders()));
  worklist_next_.resize(static_cast<std::size_t>(geometry_.cylinders()));
  port_queues_.resize(static_cast<std::size_t>(geometry_.ports()));
  if (obs::Registry* m = obs::metrics()) {
    // Deflections happen on the outer cylinders only (the innermost is
    // fully height-routed), but index by (cylinder, angle) over the whole
    // grid so the step() hot path needs no bounds arithmetic.
    deflection_counters_.assign(
        static_cast<std::size_t>(geometry_.cylinders() * geometry_.angles), nullptr);
    for (int c = 0; c + 1 < geometry_.cylinders(); ++c) {
      for (int a = 0; a < geometry_.angles; ++a) {
        deflection_counters_[static_cast<std::size_t>(c * geometry_.angles + a)] =
            m->counter("dv.switch.deflections",
                       {{"cylinder", std::to_string(c)}, {"angle", std::to_string(a)}});
      }
    }
    hops_hist_ = m->histogram("dv.switch.hops");
    latency_hist_ = m->histogram("dv.switch.latency_cycles");
    occupancy_gauge_ = m->gauge("dv.switch.occupancy");
    inject_stalls_ = m->counter("dv.switch.inject_stalls");
  }
}

void CycleSwitch::inject(int src_port, int dst_port, std::uint64_t tag) {
  DVX_SHARD_GUARDED("dvnet.CycleSwitch", -1);
  if (src_port < 0 || src_port >= geometry_.ports() || dst_port < 0 ||
      dst_port >= geometry_.ports()) {
    throw std::out_of_range("CycleSwitch::inject: port out of range");
  }
  CyclePacket p;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.tag = tag;
  p.dst_height = geometry_.port_height(dst_port);
  p.dst_angle = geometry_.port_angle(dst_port);
  port_queues_[static_cast<std::size_t>(src_port)].push(p);
  ++queued_;
}

void CycleSwitch::eject(std::uint32_t slot) {
  CyclePacket& p = packets_[slot];
  // Ejection legality: one hop per in-fabric cycle, deflections are a
  // subset of hops (the (C,H,A) traversal bound per audit epoch).
  DVX_CHECK_EQ(cycle_ - p.inject_cycle, static_cast<std::uint64_t>(p.hops) + 1)
      << "hop count out of sync with in-fabric age. ";
  DVX_CHECK(p.deflections <= p.hops)
      << "deflections=" << p.deflections << " hops=" << p.hops;
  if (record_deliveries_) {
    deliveries_.push_back(Delivery{p.src_port, p.dst_port, p.tag, p.inject_cycle,
                                   cycle_, p.hops, p.deflections});
  }
  latency_rs_.add(static_cast<double>(cycle_ - p.inject_cycle));
  hop_rs_.add(static_cast<double>(p.hops));
  defl_rs_.add(static_cast<double>(p.deflections));
  if (hops_hist_ != nullptr) {
    hops_hist_->observe(static_cast<std::uint64_t>(p.hops));
    latency_hist_->observe(cycle_ - p.inject_cycle);
  }
  free_slots_.push_back(slot);
  --in_flight_;
  ++delivered_;
}

void CycleSwitch::place(int cylinder, std::uint32_t in_cylinder_node,
                        std::uint32_t slot) {
  const std::size_t cell = static_cast<std::size_t>(cylinder) *
                               static_cast<std::size_t>(geometry_.ports()) +
                           in_cylinder_node;
  occupancy_next_[cell] = slot + 1;
  worklist_next_[static_cast<std::size_t>(cylinder)].push_back(
      WorkItem{in_cylinder_node, slot});
}

void CycleSwitch::step() {
  DVX_SHARD_GUARDED("dvnet.CycleSwitch", -1);
  const int kC = geometry_.cylinders();
  const int kBits = geometry_.height_bits();
  const int kA = geometry_.angles;
  const std::size_t kHA = static_cast<std::size_t>(geometry_.ports());

  // occupancy_next_ is all-zero on entry (dirty cells were reset from last
  // cycle's worklist). Process cylinders innermost -> outermost so that a
  // cylinder's same-cylinder moves (which carry the deflection signal) are
  // known before any outer packet tries to descend into it. Each worklist
  // is sorted by node index so contention resolves in the same
  // ascending-node order as the historical full-grid occupancy scan.
  for (int c = kC - 1; c >= 0; --c) {
    auto& wl = worklist_[static_cast<std::size_t>(c)];
    std::sort(wl.begin(), wl.end(),
              [](const WorkItem& a, const WorkItem& b) { return a.node < b.node; });
    if (c == kC - 1) {
      // Innermost cylinder: fully height-routed packets circulate to their
      // destination angle and eject there.
      for (const WorkItem item : wl) {
        CyclePacket& p = packets_[item.slot];
        DVX_CHECK(p.height == p.dst_height)
            << "innermost packets are height-routed: "
            << "height=" << p.height << " dst=" << p.dst_height;
        if (p.height == p.dst_height && p.angle == p.dst_angle) {
          eject(item.slot);
          continue;
        }
        p.angle = next_angle(p.angle);
        ++p.hops;
        place(c, static_cast<std::uint32_t>(p.height * kA + p.angle), item.slot);
      }
    } else {
      // Outer cylinders: descend on a height-bit match when the inner node
      // is free; otherwise traverse the deflection path within the cylinder.
      const int bit_index = kBits - 1 - c;
      const int mask = 1 << bit_index;
      for (const WorkItem item : wl) {
        CyclePacket& p = packets_[item.slot];
        const bool bit_match =
            ((p.dst_height >> bit_index) & 1) == ((p.height >> bit_index) & 1);
        const int na = next_angle(p.angle);
        if (bit_match) {
          const std::uint32_t inner_node =
              static_cast<std::uint32_t>(p.height * kA + na);
          const std::size_t target =
              static_cast<std::size_t>(c + 1) * kHA + inner_node;
          if (occupancy_next_[target] == 0) {
            p.cylinder = c + 1;
            p.angle = na;
            ++p.hops;
            occupancy_next_[target] = item.slot + 1;
            worklist_next_[static_cast<std::size_t>(c + 1)].push_back(
                WorkItem{inner_node, item.slot});
            continue;
          }
          ++p.deflections;  // blocked by the deflection signal: hot-potato on
          if (!deflection_counters_.empty()) {
            deflection_counters_[static_cast<std::size_t>(c * kA + p.angle)]->inc();
          }
        }
        p.height ^= mask;
        p.angle = na;
        ++p.hops;
        place(c, static_cast<std::uint32_t>(p.height * kA + p.angle), item.slot);
      }
    }
  }

  // Injection: one packet per input port per cycle, only into a free node.
  // The running queued_ counter gates the whole loop when every queue is
  // empty (the common case in long drain tails).
  if (queued_ != 0) {
    for (int port = 0; port < geometry_.ports(); ++port) {
      PortQueue& q = port_queues_[static_cast<std::size_t>(port)];
      if (q.empty()) continue;
      const int h = geometry_.port_height(port);
      const int a = geometry_.port_angle(port);
      const std::uint32_t node = static_cast<std::uint32_t>(h * kA + a);
      if (occupancy_next_[node] != 0) {  // backpressured this cycle
        if (inject_stalls_ != nullptr) inject_stalls_->inc();
        continue;
      }
      CyclePacket p = q.pop();
      --queued_;
      p.cylinder = 0;
      p.height = h;
      p.angle = a;
      p.inject_cycle = cycle_;
      std::uint32_t slot;
      if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        packets_[slot] = p;
      } else {
        slot = static_cast<std::uint32_t>(packets_.size());
        packets_.push_back(p);
      }
      occupancy_next_[node] = slot + 1;
      worklist_next_[0].push_back(WorkItem{node, slot});
      ++in_flight_;
      ++injected_;
    }
  }

  occupancy_.swap(occupancy_next_);
  // Dirty-cell reset: the only nonzero cells of the old grid (now
  // occupancy_next_) are exactly last cycle's worklist positions — zero
  // those instead of std::fill over all nodes.
  for (int c = 0; c < kC; ++c) {
    auto& wl = worklist_[static_cast<std::size_t>(c)];
    const std::size_t base = static_cast<std::size_t>(c) * kHA;
    for (const WorkItem item : wl) occupancy_next_[base + item.node] = 0;
    wl.clear();
  }
  worklist_.swap(worklist_next_);
  ++cycle_;
  if (occupancy_gauge_ != nullptr) {
    occupancy_gauge_->sample(static_cast<double>(in_flight_));
  }
#if DVX_CHECK_LEVEL >= 2
  if (cycle_ % kAuditCycles == 0) audit_invariants();
#endif
}

bool CycleSwitch::drain(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while (in_flight_ > 0 || queued_ > 0) {
    if (cycle_ >= limit) return false;
    step();
  }
#if DVX_CHECK_LEVEL >= 1
  audit_invariants();
  DVX_CHECK_EQ(injected_, delivered_) << "drained fabric lost packets. ";
#endif
  return true;
}

void CycleSwitch::clear_deliveries() {
  DVX_SHARD_GUARDED("dvnet.CycleSwitch", -1);
  deliveries_.clear();
  latency_rs_ = sim::RunningStats{};
  hop_rs_ = sim::RunningStats{};
  defl_rs_ = sim::RunningStats{};
}

void CycleSwitch::audit_invariants() const {
  DVX_SHARD_ACCESS("dvnet.CycleSwitch", -1, kRead);
  // Packet conservation: every packet ever injected is delivered or still
  // occupies exactly one fabric node, the active worklist mirrors the
  // grid, and the slot slab is fully accounted.
  std::size_t occupied = 0;
  for (std::uint32_t cell : occupancy_) {
    if (cell != 0) ++occupied;
  }
  DVX_CHECK_EQ(occupied, in_flight_) << "occupancy grid out of sync. ";
  std::size_t active = 0;
  for (const auto& wl : worklist_) active += wl.size();
  DVX_CHECK_EQ(active, in_flight_) << "active worklist out of sync. ";
  DVX_CHECK_EQ(injected_, delivered_ + in_flight_)
      << "packet conservation violated at cycle " << cycle_ << ". ";
  DVX_CHECK_EQ(free_slots_.size() + in_flight_, packets_.size())
      << "slot slab leak. ";

  // Per-packet routing legality (expensive: O(nodes); level-2 audits only).
  const int kC = geometry_.cylinders();
  const int kBits = geometry_.height_bits();
  for (std::size_t node = 0; node < occupancy_.size(); ++node) {
    const std::uint32_t slot1 = occupancy_[node];
    if (slot1 == 0) continue;
    DVX_CHECK_SOON(slot1 - 1 < packets_.size()) << "dangling slot reference";
    const CyclePacket& p = packets_[slot1 - 1];
    DVX_CHECK_SOON(p.cylinder >= 0 && p.cylinder < kC &&      //
                   p.height >= 0 && p.height < geometry_.heights &&
                   p.angle >= 0 && p.angle < geometry_.angles)
        << "packet position out of range: c=" << p.cylinder << " h=" << p.height
        << " a=" << p.angle;
    DVX_CHECK_SOON(static_cast<std::size_t>(
                       node_index(p.cylinder, p.height, p.angle)) == node)
        << "packet position disagrees with its occupancy cell";
    // The cached destination coordinates must stay a pure function of the
    // destination port (the hot path trusts them instead of recomputing).
    DVX_CHECK_SOON(p.dst_height == geometry_.port_height(p.dst_port) &&
                   p.dst_angle == geometry_.port_angle(p.dst_port))
        << "cached destination coordinates diverged from dst_port";
    // Deflection legality: a cylinder-c packet has its c most-significant
    // height bits routed, and a deflection never undoes a routed bit.
    DVX_CHECK_SOON((p.height >> (kBits - p.cylinder)) ==
                   (p.dst_height >> (kBits - p.cylinder)))
        << "routed height-bit prefix lost: c=" << p.cylinder
        << " h=" << p.height << " dst_h=" << p.dst_height;
    DVX_CHECK_SOON(p.deflections <= p.hops);
    // One hop per in-fabric cycle: age bounds the traversal exactly.
    DVX_CHECK_SOON_EQ(static_cast<std::uint64_t>(p.hops),
                      cycle_ - p.inject_cycle - 1)
        << "in-flight hop count out of sync with age. ";
  }
}

void CycleSwitch::audit(std::int64_t now_ps) {
  (void)now_ps;  // the fabric keeps its own cycle clock
  audit_invariants();
}

bool CycleSwitch::corrupt_drop_one_for_test() {
  // dvx-analyze: allow(shard-safety) -- seeded-fault test hook, never in production runs
  const std::size_t kHA = static_cast<std::size_t>(geometry_.ports());
  for (std::size_t cell = 0; cell < occupancy_.size(); ++cell) {
    const std::uint32_t slot1 = occupancy_[cell];
    if (slot1 == 0) continue;
    // The packet vanishes from both the grid and the worklist; counters now
    // disagree with the grid, which the audit must catch.
    occupancy_[cell] = 0;
    auto& wl = worklist_[cell / kHA];
    wl.erase(std::remove_if(
                 wl.begin(), wl.end(),
                 [&](const WorkItem& w) { return w.slot == slot1 - 1; }),
             wl.end());
    return true;
  }
  return false;
}

}  // namespace dvx::dvnet
