#include "dvnet/cycle_switch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "check/check.hpp"
#include "obs/collector.hpp"

namespace dvx::dvnet {

CycleSwitch::CycleSwitch(Geometry geometry) : geometry_(geometry) {
  geometry_.validate();
  occupancy_.assign(static_cast<std::size_t>(geometry_.nodes()), 0);
  occupancy_next_.assign(occupancy_.size(), 0);
  port_queues_.resize(static_cast<std::size_t>(geometry_.ports()));
  if (obs::Registry* m = obs::metrics()) {
    // Deflections happen on the outer cylinders only (the innermost is
    // fully height-routed), but index by (cylinder, angle) over the whole
    // grid so the step() hot path needs no bounds arithmetic.
    deflection_counters_.assign(
        static_cast<std::size_t>(geometry_.cylinders() * geometry_.angles), nullptr);
    for (int c = 0; c + 1 < geometry_.cylinders(); ++c) {
      for (int a = 0; a < geometry_.angles; ++a) {
        deflection_counters_[static_cast<std::size_t>(c * geometry_.angles + a)] =
            m->counter("dv.switch.deflections",
                       {{"cylinder", std::to_string(c)}, {"angle", std::to_string(a)}});
      }
    }
    hops_hist_ = m->histogram("dv.switch.hops");
    latency_hist_ = m->histogram("dv.switch.latency_cycles");
    occupancy_gauge_ = m->gauge("dv.switch.occupancy");
    inject_stalls_ = m->counter("dv.switch.inject_stalls");
  }
}

void CycleSwitch::inject(int src_port, int dst_port, std::uint64_t tag) {
  if (src_port < 0 || src_port >= geometry_.ports() || dst_port < 0 ||
      dst_port >= geometry_.ports()) {
    throw std::out_of_range("CycleSwitch::inject: port out of range");
  }
  CyclePacket p;
  p.src_port = src_port;
  p.dst_port = dst_port;
  p.tag = tag;
  port_queues_[static_cast<std::size_t>(src_port)].push_back(p);
}

std::size_t CycleSwitch::queued() const {
  std::size_t n = 0;
  for (const auto& q : port_queues_) n += q.size();
  return n;
}

void CycleSwitch::step() {
  const int kC = geometry_.cylinders();
  const int kBits = geometry_.height_bits();

  std::fill(occupancy_next_.begin(), occupancy_next_.end(), 0);

  // Bucket in-flight packets by cylinder; process innermost -> outermost so
  // that a cylinder's same-cylinder moves (which carry the deflection signal)
  // are known before any outer packet tries to descend into it.
  std::vector<std::vector<std::uint32_t>> buckets(static_cast<std::size_t>(kC));
  for (std::size_t node = 0; node < occupancy_.size(); ++node) {
    const std::uint32_t slot1 = occupancy_[node];
    if (slot1 == 0) continue;
    buckets[static_cast<std::size_t>(packets_[slot1 - 1].cylinder)].push_back(slot1 - 1);
  }

  // Innermost cylinder: fully height-routed packets circulate to their
  // destination angle and eject there.
  for (std::uint32_t slot : buckets[static_cast<std::size_t>(kC - 1)]) {
    CyclePacket& p = packets_[slot];
    const int dst_h = geometry_.port_height(p.dst_port);
    const int dst_a = geometry_.port_angle(p.dst_port);
    DVX_CHECK(p.height == dst_h) << "innermost packets are height-routed: "
                                 << "height=" << p.height << " dst=" << dst_h;
    if (p.height == dst_h && p.angle == dst_a) {
      // Ejection legality: one hop per in-fabric cycle, deflections are a
      // subset of hops (the (C,H,A) traversal bound per audit epoch).
      DVX_CHECK_EQ(cycle_ - p.inject_cycle, static_cast<std::uint64_t>(p.hops) + 1)
          << "hop count out of sync with in-fabric age. ";
      DVX_CHECK(p.deflections <= p.hops)
          << "deflections=" << p.deflections << " hops=" << p.hops;
      deliveries_.push_back(Delivery{p.src_port, p.dst_port, p.tag, p.inject_cycle, cycle_,
                                     p.hops, p.deflections});
      if (hops_hist_ != nullptr) {
        hops_hist_->observe(static_cast<std::uint64_t>(p.hops));
        latency_hist_->observe(cycle_ - p.inject_cycle);
      }
      free_slots_.push_back(slot);
      --in_flight_;
      ++delivered_;
      continue;
    }
    p.angle = next_angle(p.angle);
    ++p.hops;
    occupancy_next_[static_cast<std::size_t>(node_index(kC - 1, p.height, p.angle))] =
        slot + 1;
  }

  // Outer cylinders: descend on a height-bit match when the inner node is
  // free; otherwise traverse the deflection path within the cylinder.
  for (int c = kC - 2; c >= 0; --c) {
    const int bit_index = kBits - 1 - c;
    const int mask = 1 << bit_index;
    for (std::uint32_t slot : buckets[static_cast<std::size_t>(c)]) {
      CyclePacket& p = packets_[slot];
      const int dst_h = geometry_.port_height(p.dst_port);
      const bool bit_match = ((dst_h >> bit_index) & 1) == ((p.height >> bit_index) & 1);
      const int na = next_angle(p.angle);
      if (bit_match) {
        const std::size_t target =
            static_cast<std::size_t>(node_index(c + 1, p.height, na));
        if (occupancy_next_[target] == 0) {
          p.cylinder = c + 1;
          p.angle = na;
          ++p.hops;
          occupancy_next_[target] = slot + 1;
          continue;
        }
        ++p.deflections;  // blocked by the deflection signal: hot-potato on
        if (!deflection_counters_.empty()) {
          deflection_counters_[static_cast<std::size_t>(c * geometry_.angles +
                                                        p.angle)]
              ->inc();
        }
      }
      p.height ^= mask;
      p.angle = na;
      ++p.hops;
      occupancy_next_[static_cast<std::size_t>(node_index(c, p.height, p.angle))] =
          slot + 1;
    }
  }

  // Injection: one packet per input port per cycle, only into a free node.
  for (int port = 0; port < geometry_.ports(); ++port) {
    auto& q = port_queues_[static_cast<std::size_t>(port)];
    if (q.empty()) continue;
    const int h = geometry_.port_height(port);
    const int a = geometry_.port_angle(port);
    const std::size_t node = static_cast<std::size_t>(node_index(0, h, a));
    if (occupancy_next_[node] != 0) {  // backpressured this cycle
      if (inject_stalls_ != nullptr) inject_stalls_->inc();
      continue;
    }
    CyclePacket p = q.front();
    q.erase(q.begin());
    p.cylinder = 0;
    p.height = h;
    p.angle = a;
    p.inject_cycle = cycle_;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      packets_[slot] = p;
    } else {
      slot = static_cast<std::uint32_t>(packets_.size());
      packets_.push_back(p);
    }
    occupancy_next_[node] = slot + 1;
    ++in_flight_;
    ++injected_;
  }

  occupancy_.swap(occupancy_next_);
  ++cycle_;
  if (occupancy_gauge_ != nullptr) {
    occupancy_gauge_->sample(static_cast<double>(in_flight_));
  }
#if DVX_CHECK_LEVEL >= 2
  if (cycle_ % kAuditCycles == 0) audit_invariants();
#endif
}

bool CycleSwitch::drain(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while (in_flight_ > 0 || queued() > 0) {
    if (cycle_ >= limit) return false;
    step();
  }
#if DVX_CHECK_LEVEL >= 1
  audit_invariants();
  DVX_CHECK_EQ(injected_, delivered_) << "drained fabric lost packets. ";
#endif
  return true;
}

void CycleSwitch::audit_invariants() const {
  // Packet conservation: every packet ever injected is delivered or still
  // occupies exactly one fabric node, and the slot slab is fully accounted.
  std::size_t occupied = 0;
  for (std::uint32_t cell : occupancy_) {
    if (cell != 0) ++occupied;
  }
  DVX_CHECK_EQ(occupied, in_flight_) << "occupancy grid out of sync. ";
  DVX_CHECK_EQ(injected_, delivered_ + in_flight_)
      << "packet conservation violated at cycle " << cycle_ << ". ";
  DVX_CHECK_EQ(free_slots_.size() + in_flight_, packets_.size())
      << "slot slab leak. ";

  // Per-packet routing legality (expensive: O(nodes); level-2 audits only).
  const int kC = geometry_.cylinders();
  const int kBits = geometry_.height_bits();
  for (std::size_t node = 0; node < occupancy_.size(); ++node) {
    const std::uint32_t slot1 = occupancy_[node];
    if (slot1 == 0) continue;
    DVX_CHECK_SOON(slot1 - 1 < packets_.size()) << "dangling slot reference";
    const CyclePacket& p = packets_[slot1 - 1];
    DVX_CHECK_SOON(p.cylinder >= 0 && p.cylinder < kC &&      //
                   p.height >= 0 && p.height < geometry_.heights &&
                   p.angle >= 0 && p.angle < geometry_.angles)
        << "packet position out of range: c=" << p.cylinder << " h=" << p.height
        << " a=" << p.angle;
    DVX_CHECK_SOON(static_cast<std::size_t>(
                       node_index(p.cylinder, p.height, p.angle)) == node)
        << "packet position disagrees with its occupancy cell";
    // Deflection legality: a cylinder-c packet has its c most-significant
    // height bits routed, and a deflection never undoes a routed bit.
    const int dst_h = geometry_.port_height(p.dst_port);
    DVX_CHECK_SOON((p.height >> (kBits - p.cylinder)) ==
                   (dst_h >> (kBits - p.cylinder)))
        << "routed height-bit prefix lost: c=" << p.cylinder
        << " h=" << p.height << " dst_h=" << dst_h;
    DVX_CHECK_SOON(p.deflections <= p.hops);
    // One hop per in-fabric cycle: age bounds the traversal exactly.
    DVX_CHECK_SOON_EQ(static_cast<std::uint64_t>(p.hops),
                      cycle_ - p.inject_cycle - 1)
        << "in-flight hop count out of sync with age. ";
  }
}

void CycleSwitch::audit(std::int64_t now_ps) {
  (void)now_ps;  // the fabric keeps its own cycle clock
  audit_invariants();
}

bool CycleSwitch::corrupt_drop_one_for_test() {
  for (auto& cell : occupancy_) {
    if (cell != 0) {
      cell = 0;  // the packet vanishes; counters now disagree with the grid
      return true;
    }
  }
  return false;
}

sim::RunningStats CycleSwitch::latency_stats() const {
  sim::RunningStats s;
  for (const auto& d : deliveries_) {
    s.add(static_cast<double>(d.eject_cycle - d.inject_cycle));
  }
  return s;
}

sim::RunningStats CycleSwitch::hop_stats() const {
  sim::RunningStats s;
  for (const auto& d : deliveries_) s.add(static_cast<double>(d.hops));
  return s;
}

sim::RunningStats CycleSwitch::deflection_stats() const {
  sim::RunningStats s;
  for (const auto& d : deliveries_) s.add(static_cast<double>(d.deflections));
  return s;
}

}  // namespace dvx::dvnet
