#pragma once
// Data Vortex switch geometry (paper §II).
//
// The switch is a set of C nested cylinders; each cylinder carries H rings of
// A switching nodes. A node is addressed by (cylinder c, height h, angle a).
// C scales with H as C = log2(H) + 1; the fabric exposes Nt = A*H input ports
// (on the outermost cylinder) and Nt output ports (on the innermost), so the
// total switching-node count is A*H*(log2(H)+1) ~ Nt*log2(Nt).

#include <cstdint>

namespace dvx::dvnet {

struct Geometry {
  int heights = 8;  ///< H: nodes along the cylinder height (power of two)
  int angles = 4;   ///< A: nodes along the cylinder circumference

  /// C = log2(H) + 1 routing levels.
  int cylinders() const noexcept;
  /// Nt = A * H injection (and ejection) ports.
  int ports() const noexcept { return heights * angles; }
  /// Total switching nodes A * H * C.
  int nodes() const noexcept { return ports() * cylinders(); }
  /// log2(H): number of height bits resolved while descending.
  int height_bits() const noexcept;

  /// Height (ring) a port attaches to: port p -> h = p % H.
  int port_height(int port) const noexcept { return port % heights; }
  /// Angle a port attaches to: port p -> a = p / H.
  int port_angle(int port) const noexcept { return port / heights; }
  /// Inverse of (port_height, port_angle).
  int port_of(int h, int a) const noexcept { return a * heights + h; }

  /// Builds a geometry exposing at least `min_ports` ports with `angles`
  /// nodes per ring; H is rounded up to a power of two. Throws on bad args.
  static Geometry for_ports(int min_ports, int angles = 4);

  /// Validates invariants (H power of two, positive A). Throws on violation.
  void validate() const;
};

}  // namespace dvx::dvnet
