#pragma once
// 3-D heat equation (paper §VII, Fig. 9 "Heat").
//
// Explicit 7-point diffusion on a domain-decomposed grid with insulated
// (reflecting) boundaries; each step exchanges six face halos and checks a
// convergence residual — "a large number of small messages".
//
//  * MPI: six Isend/Irecv pairs per step plus an allreduce residual check —
//    a dozen latency-bound operations per step.
//  * Data Vortex (restructured, as the paper did): every face is written
//    straight into the neighbor's DV-memory halo region; all six faces ride
//    ONE mixed-destination DMA batch; arrival is detected with two
//    sense-alternating group counters; the residual uses the word
//    collectives. One PCIe crossing where MPI pays twelve message set-ups.

#include <cstdint>

#include "runtime/cluster.hpp"

namespace dvx::apps {

struct HeatParams {
  int global_nx = 48, global_ny = 48, global_nz = 48;
  int steps = 40;
  double alpha = 1.0 / 6.0;  ///< stability bound for unit spacing
  bool verify = false;       ///< compare the final field against a serial run
};

struct HeatResult {
  double seconds = 0.0;
  double total_heat = 0.0;        ///< conserved under insulated boundaries
  double final_residual = 0.0;    ///< max |du| of the last step
  double max_serial_diff = 0.0;   ///< only when verify is set
  std::int64_t cell_updates = 0;  ///< cells * steps (for MCUP/s)
  double mcups() const { return static_cast<double>(cell_updates) / seconds / 1e6; }
};

HeatResult run_heat_dv(runtime::Cluster& cluster, const HeatParams& params);
HeatResult run_heat_mpi(runtime::Cluster& cluster, const HeatParams& params);

}  // namespace dvx::apps
