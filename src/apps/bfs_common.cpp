#include "apps/bfs_common.hpp"

#include <bit>
#include <set>
#include <stdexcept>

namespace dvx::apps::bfs_detail {

std::vector<LocalGraph> build_distribution(const kernels::KroneckerParams& kp, int ranks) {
  if (!std::has_single_bit(static_cast<unsigned>(ranks))) {
    throw std::invalid_argument("bfs: rank count must be a power of two");
  }
  kernels::KroneckerGenerator gen(kp);
  const std::uint64_t verts = gen.vertices();
  if (verts % static_cast<std::uint64_t>(ranks) != 0) {
    throw std::invalid_argument("bfs: vertices must divide rank count");
  }
  const std::uint64_t vpr = verts / static_cast<std::uint64_t>(ranks);

  // Per-rank degree count pass, then fill pass.
  std::vector<LocalGraph> out(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    out[static_cast<std::size_t>(r)].verts_per_rank = vpr;
    out[static_cast<std::size_t>(r)].first_vertex = static_cast<std::uint64_t>(r) * vpr;
    out[static_cast<std::size_t>(r)].row_ptr.assign(vpr + 1, 0);
  }
  const std::uint64_t ne = gen.edges();
  auto owner = [&](std::uint64_t v) { return static_cast<int>(v / vpr); };
  for (std::uint64_t i = 0; i < ne; ++i) {
    const auto e = gen.edge(i);
    if (e.u == e.v) continue;
    ++out[static_cast<std::size_t>(owner(e.u))].row_ptr[e.u % vpr + 1];
    ++out[static_cast<std::size_t>(owner(e.v))].row_ptr[e.v % vpr + 1];
  }
  for (auto& g : out) {
    for (std::uint64_t v = 0; v < vpr; ++v) g.row_ptr[v + 1] += g.row_ptr[v];
    g.col.resize(g.row_ptr[vpr]);
  }
  std::vector<std::vector<std::uint64_t>> cursor(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto& g = out[static_cast<std::size_t>(r)];
    cursor[static_cast<std::size_t>(r)].assign(g.row_ptr.begin(), g.row_ptr.end() - 1);
  }
  for (std::uint64_t i = 0; i < ne; ++i) {
    const auto e = gen.edge(i);
    if (e.u == e.v) continue;
    {
      auto& g = out[static_cast<std::size_t>(owner(e.u))];
      auto& c = cursor[static_cast<std::size_t>(owner(e.u))];
      g.col[c[e.u % vpr]++] = e.v;
    }
    {
      auto& g = out[static_cast<std::size_t>(owner(e.v))];
      auto& c = cursor[static_cast<std::size_t>(owner(e.v))];
      g.col[c[e.v % vpr]++] = e.u;
    }
  }
  return out;
}

std::vector<std::uint64_t> pick_roots(const kernels::KroneckerGenerator& gen, int count) {
  std::vector<std::uint64_t> roots;
  std::set<std::uint64_t> seen;
  std::uint64_t probe = 0;
  while (static_cast<int>(roots.size()) < count) {
    const auto e = gen.edge((probe * 2654435761ULL + 17) % gen.edges());
    ++probe;
    if (e.u == e.v) continue;  // needs an incident non-loop edge
    if (!seen.insert(e.u).second) continue;
    roots.push_back(e.u);
    if (probe > gen.edges() * 4) {
      throw std::runtime_error("bfs: could not find enough distinct roots");
    }
  }
  return roots;
}

std::uint64_t reached_degree_sum(const LocalGraph& g,
                                 const std::vector<std::uint64_t>& parent_local) {
  std::uint64_t sum = 0;
  for (std::uint64_t v = 0; v < g.local_verts(); ++v) {
    if (parent_local[v] != kernels::kNoParent) sum += g.degree(v);
  }
  return sum;
}

std::string validate_distributed(const kernels::KroneckerParams& kp, std::uint64_t root,
                                 const std::vector<std::vector<std::uint64_t>>& slices) {
  kernels::KroneckerGenerator gen(kp);
  const auto edges = gen.slice(0, gen.edges());
  kernels::Csr full(gen.vertices(), edges);
  std::vector<std::uint64_t> parent;
  parent.reserve(gen.vertices());
  for (const auto& s : slices) parent.insert(parent.end(), s.begin(), s.end());
  if (parent.size() != gen.vertices()) return "concatenated parent size mismatch";
  return kernels::validate_bfs(full, root, parent);
}

}  // namespace dvx::apps::bfs_detail
