#include "apps/snap_core.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "kernels/stencil.hpp"

namespace dvx::apps::snap_detail {

int SnapBlock::y_upstream(int sy) const {
  const int c = sy > 0 ? cy - 1 : cy + 1;
  return (c < 0 || c >= py) ? -1 : rank_of(c, cz);
}
int SnapBlock::y_downstream(int sy) const { return y_upstream(-sy); }
int SnapBlock::z_upstream(int sz) const {
  const int c = sz > 0 ? cz - 1 : cz + 1;
  return (c < 0 || c >= pz) ? -1 : rank_of(cy, c);
}
int SnapBlock::z_downstream(int sz) const { return z_upstream(-sz); }

SnapBlock block_for(int rank, int ranks, const SnapParams& p) {
  // Factor ranks into the most square py x pz grid.
  int py = 1;
  for (int f = 1; f * f <= ranks; ++f) {
    if (ranks % f == 0) py = f;
  }
  SnapBlock b;
  b.py = py;
  b.pz = ranks / py;
  b.cy = rank % py;
  b.cz = rank / py;
  const auto [y0, y1] = kernels::block_range(p.ny, b.py, b.cy);
  const auto [z0, z1] = kernels::block_range(p.nz, b.pz, b.cz);
  b.y0 = y0;
  b.ny_l = y1 - y0;
  b.z0 = z0;
  b.nz_l = z1 - z0;
  if (b.ny_l == 0 || b.nz_l == 0) {
    throw std::invalid_argument("snap: mesh too small for the process grid");
  }
  return b;
}

std::array<int, 3> octant_signs(int octant) {
  return {(octant & 1) ? -1 : 1, (octant & 2) ? -1 : 1, (octant & 4) ? -1 : 1};
}

Quadrature make_quadrature(int nang) {
  // Simple positive-octant product quadrature normalized so that the
  // weights of all 8 octants sum to 4*pi (SNAP convention).
  Quadrature q;
  q.mu.resize(static_cast<std::size_t>(nang));
  q.eta.resize(static_cast<std::size_t>(nang));
  q.xi.resize(static_cast<std::size_t>(nang));
  q.w.assign(static_cast<std::size_t>(nang),
             4.0 * std::numbers::pi / (8.0 * static_cast<double>(nang)));
  for (int a = 0; a < nang; ++a) {
    const double t = (static_cast<double>(a) + 0.5) / static_cast<double>(nang);
    const double mu = 0.05 + 0.9 * t;              // in (0, 1)
    const double phi = 0.5 * std::numbers::pi * t;  // azimuth within the octant
    const double s = std::sqrt(std::max(0.0, 1.0 - mu * mu));
    q.mu[static_cast<std::size_t>(a)] = mu;
    q.eta[static_cast<std::size_t>(a)] = std::max(0.05, s * std::cos(phi));
    q.xi[static_cast<std::size_t>(a)] = std::max(0.05, s * std::sin(phi));
  }
  return q;
}

SnapCore::SnapCore(const SnapParams& params, int rank, int ranks)
    : params_(params),
      blk_(block_for(rank, ranks, params)),
      quad_(make_quadrature(params.nang)),
      chunks_((params.nx + params.ichunk - 1) / params.ichunk) {
  const auto cells = static_cast<std::size_t>(params.ng) * params.nx *
                     static_cast<std::size_t>(blk_.ny_l) *
                     static_cast<std::size_t>(blk_.nz_l);
  phi_.assign(cells, 0.0);
  phi_prev_.assign(cells, 0.0);
  qext_.assign(cells, 0.0);
  // External source: unit strength in the central eighth of the global box,
  // scaled down per energy group.
  for (int g = 0; g < params.ng; ++g) {
    for (std::int64_t iz = 0; iz < blk_.nz_l; ++iz) {
      for (std::int64_t iy = 0; iy < blk_.ny_l; ++iy) {
        for (std::int64_t ix = 0; ix < params.nx; ++ix) {
          const std::int64_t gy = blk_.y0 + iy;
          const std::int64_t gz = blk_.z0 + iz;
          const bool inside = ix >= params.nx * 3 / 8 && ix < params.nx * 5 / 8 &&
                              gy >= params.ny * 3 / 8 && gy < params.ny * 5 / 8 &&
                              gz >= params.nz * 3 / 8 && gz < params.nz * 5 / 8;
          if (inside) {
            qext_[cell_index(g, ix, iy, iz)] = 1.0 / static_cast<double>(g + 1);
          }
        }
      }
    }
  }
  psi_x_.assign(static_cast<std::size_t>(params.ng) * blk_.ny_l * blk_.nz_l *
                    static_cast<std::size_t>(params.nang),
                0.0);
}

std::size_t SnapCore::cell_index(int g, std::int64_t ix, std::int64_t iy,
                                 std::int64_t iz) const {
  return ((static_cast<std::size_t>(g) * params_.nx + static_cast<std::size_t>(ix)) *
              static_cast<std::size_t>(blk_.ny_l) +
          static_cast<std::size_t>(iy)) *
             static_cast<std::size_t>(blk_.nz_l) +
         static_cast<std::size_t>(iz);
}

std::pair<std::int64_t, std::int64_t> SnapCore::chunk_range(int c, int sx) const {
  const int idx = sx > 0 ? c : chunks_ - 1 - c;
  const std::int64_t x0 = static_cast<std::int64_t>(idx) * params_.ichunk;
  const std::int64_t x1 = std::min<std::int64_t>(x0 + params_.ichunk, params_.nx);
  return {x0, x1};
}

std::int64_t SnapCore::y_face_len(int c) const {
  const auto [x0, x1] = chunk_range(c, 1);
  return (x1 - x0) * blk_.nz_l * params_.nang * params_.ng;
}

std::int64_t SnapCore::z_face_len(int c) const {
  const auto [x0, x1] = chunk_range(c, 1);
  return (x1 - x0) * blk_.ny_l * params_.nang * params_.ng;
}

void SnapCore::begin_outer() { std::fill(phi_.begin(), phi_.end(), 0.0); }

void SnapCore::begin_octant(int /*octant*/) {
  std::fill(psi_x_.begin(), psi_x_.end(), 0.0);  // vacuum x boundary
}

void SnapCore::sweep_chunk(int octant, int c, std::span<const double> in_y,
                           std::span<const double> in_z, std::vector<double>& out_y,
                           std::vector<double>& out_z) {
  const auto [sx, sy, sz] = octant_signs(octant);
  const auto [x0, x1] = chunk_range(c, sx);
  const int nang = params_.nang;
  const std::int64_t cxl = x1 - x0;
  const std::int64_t ny = blk_.ny_l, nz = blk_.nz_l;

  out_y.assign(static_cast<std::size_t>(cxl * nz * nang * params_.ng), 0.0);
  out_z.assign(static_cast<std::size_t>(cxl * ny * nang * params_.ng), 0.0);
  const bool vac_y = in_y.empty();
  const bool vac_z = in_z.empty();

  const double cx2 = 2.0 / params_.dx;
  const double cy2 = 2.0 / params_.dy;
  const double cz2 = 2.0 / params_.dz;
  const double s_norm = params_.sigma_s / (4.0 * std::numbers::pi);

  for (int g = 0; g < params_.ng; ++g) {
    // Face slices for this group: layout [g][ix][iz|iy][a].
    const std::size_t yg = static_cast<std::size_t>(g) * cxl * nz * nang;
    const std::size_t zg = static_cast<std::size_t>(g) * cxl * ny * nang;
    for (std::int64_t xi_ = 0; xi_ < cxl; ++xi_) {
      const std::int64_t ix = sx > 0 ? x0 + xi_ : x1 - 1 - xi_;
      // Working faces for this plane (updated in place while sweeping).
      std::vector<double> fy(static_cast<std::size_t>(nz * nang));
      std::vector<double> fz(static_cast<std::size_t>(ny * nang));
      if (!vac_y) {
        std::copy_n(in_y.begin() + static_cast<std::ptrdiff_t>(yg + xi_ * nz * nang),
                    nz * nang, fy.begin());
      }
      if (!vac_z) {
        std::copy_n(in_z.begin() + static_cast<std::ptrdiff_t>(zg + xi_ * ny * nang),
                    ny * nang, fz.begin());
      }
      for (std::int64_t zi = 0; zi < nz; ++zi) {
        const std::int64_t iz = sz > 0 ? zi : nz - 1 - zi;
        for (std::int64_t yi = 0; yi < ny; ++yi) {
          const std::int64_t iy = sy > 0 ? yi : ny - 1 - yi;
          const std::size_t cell = cell_index(g, ix, iy, iz);
          const double q = qext_[cell] + s_norm * phi_prev_[cell];
          for (int a = 0; a < nang; ++a) {
            const std::size_t xa =
                ((static_cast<std::size_t>(g) * ny + static_cast<std::size_t>(iy)) * nz +
                 static_cast<std::size_t>(iz)) *
                    static_cast<std::size_t>(nang) +
                static_cast<std::size_t>(a);
            const std::size_t ya =
                static_cast<std::size_t>(iz * nang + a);
            const std::size_t za =
                static_cast<std::size_t>(iy * nang + a);
            const double cmu = cx2 * quad_.mu[static_cast<std::size_t>(a)];
            const double ceta = cy2 * quad_.eta[static_cast<std::size_t>(a)];
            const double cxi = cz2 * quad_.xi[static_cast<std::size_t>(a)];
            const double denom = params_.sigma_t + cmu + ceta + cxi;
            const double psi =
                (q + cmu * psi_x_[xa] + ceta * fy[ya] + cxi * fz[za]) / denom;
            // Diamond difference outgoing fluxes with the set-to-zero
            // negative-flux fixup (SNAP's default transport correction).
            psi_x_[xa] = std::max(0.0, 2.0 * psi - psi_x_[xa]);
            fy[ya] = std::max(0.0, 2.0 * psi - fy[ya]);
            fz[za] = std::max(0.0, 2.0 * psi - fz[za]);
            phi_[cell] += quad_.w[static_cast<std::size_t>(a)] * psi;
            ++updates_;
          }
        }
      }
      std::copy_n(fy.begin(), nz * nang,
                  out_y.begin() + static_cast<std::ptrdiff_t>(yg + xi_ * nz * nang));
      std::copy_n(fz.begin(), ny * nang,
                  out_z.begin() + static_cast<std::ptrdiff_t>(zg + xi_ * ny * nang));
    }
  }
}

double SnapCore::finish_outer() {
  double res = 0.0;
  for (std::size_t i = 0; i < phi_.size(); ++i) {
    res = std::max(res, std::abs(phi_[i] - phi_prev_[i]));
  }
  phi_prev_ = phi_;
  return res;
}

double SnapCore::chunk_flops(int c) const {
  const auto [x0, x1] = chunk_range(c, 1);
  return 20.0 * static_cast<double>((x1 - x0) * blk_.ny_l * blk_.nz_l) *
         params_.nang * params_.ng;
}

double SnapCore::flux_sum() const {
  double s = 0.0;
  for (double v : phi_prev_) s += v;
  return s;
}

double SnapCore::flux_min() const {
  double m = 0.0;
  for (double v : phi_prev_) m = std::min(m, v);
  return m;
}

}  // namespace dvx::apps::snap_detail
