// FFT-1D on the Data Vortex: six-step transform whose three transposes
// scatter elements directly into peers' DV memory with pre-cached headers,
// folding the data redistribution into the communication (paper §VI).

#include "apps/fft1d.hpp"
#include "apps/fft1d_common.hpp"
#include "apps/transpose.hpp"
#include "dvapi/collectives.hpp"
#include "kernels/fft.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
using fft_detail::Shape;
using kernels::Complex;

FftResult run_fft_dv(runtime::Cluster& cluster, const FftParams& params) {
  const int p = cluster.nodes();
  const Shape s = fft_detail::shape_for(params.log_size, p);
  const std::int64_t n = s.n1 * s.n2;

  std::vector<std::vector<Complex>> outputs(static_cast<std::size_t>(p));
  constexpr int kCtr = dvapi::kFirstFreeCounter;
  constexpr std::uint32_t kDvBase = dvapi::kFirstFreeDvWord;

  FftResult result;
  const auto run = cluster.run_dv(
      [&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
        auto local = fft_detail::make_local_input(ctx.rank(), s);
        co_await ctx.barrier();
        node.roi_begin();

        // Step 1: transpose n1 x n2 -> n2 x n1.
        auto work = co_await transpose_dv(ctx, node, local, s.n1, s.n2, kDvBase, kCtr);
        // Step 2: local FFTs of length n1.
        co_await fft_detail::fft_rows(node, work, s.n1);
        // Step 3: twiddle W_N^{row*col}.
        const std::int64_t rows2_local = s.n2 / p;
        co_await fft_detail::twiddle_rows(node, work,
                                          static_cast<std::int64_t>(ctx.rank()) * rows2_local,
                                          s.n1, n);
        // Step 4: transpose back to n1 x n2.
        work = co_await transpose_dv(ctx, node, work, s.n2, s.n1, kDvBase, kCtr);
        // Step 5: local FFTs of length n2.
        co_await fft_detail::fft_rows(node, work, s.n2);
        // Step 6: final transpose for natural order.
        work = co_await transpose_dv(ctx, node, work, s.n1, s.n2, kDvBase, kCtr);

        co_await ctx.barrier();
        node.roi_end();
        outputs[static_cast<std::size_t>(ctx.rank())] = std::move(work);
      });

  result.seconds = run.roi_seconds();
  result.flops = kernels::fft_flops(n);
  if (params.verify) {
    result.max_error = fft_detail::verify_against_serial(s, p, outputs);
  }
  return result;
}

}  // namespace dvx::apps
