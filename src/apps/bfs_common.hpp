#pragma once
// Shared pieces of the two BFS implementations: the 1-D vertex-block
// distribution, per-rank adjacency construction, root selection, candidate
// encoding, and validation glue.

#include <cstdint>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "kernels/csr.hpp"
#include "kernels/kronecker.hpp"

namespace dvx::apps::bfs_detail {

/// Local adjacency: row_ptr over local vertices, neighbor ids are global.
struct LocalGraph {
  std::uint64_t verts_per_rank = 0;
  std::uint64_t first_vertex = 0;
  std::vector<std::uint64_t> row_ptr;
  std::vector<std::uint64_t> col;

  std::uint64_t local_verts() const { return row_ptr.size() - 1; }
  std::span<const std::uint64_t> neighbors(std::uint64_t local_v) const {
    return std::span<const std::uint64_t>(col.data() + row_ptr[local_v],
                                          col.data() + row_ptr[local_v + 1]);
  }
  std::uint64_t degree(std::uint64_t local_v) const {
    return row_ptr[local_v + 1] - row_ptr[local_v];
  }
};

/// Builds every rank's local adjacency from the deterministic generator.
std::vector<LocalGraph> build_distribution(const kernels::KroneckerParams& kp, int ranks);

/// Deterministic search roots with guaranteed nonzero degree.
std::vector<std::uint64_t> pick_roots(const kernels::KroneckerGenerator& gen, int count);

/// Candidate encoding: (vertex, proposed parent) packed into one word.
/// Valid for scale <= 31.
constexpr std::uint64_t pack_candidate(std::uint64_t v, std::uint64_t parent) {
  return (v << 32) | parent;
}
constexpr std::uint64_t candidate_vertex(std::uint64_t packed) { return packed >> 32; }
constexpr std::uint64_t candidate_parent(std::uint64_t packed) {
  return packed & 0xffffffffULL;
}

/// Sum over reached local vertices of their degrees (for the TEPS count:
/// traversed edges = sum/2 by the Graph500 convention).
std::uint64_t reached_degree_sum(const LocalGraph& g,
                                 const std::vector<std::uint64_t>& parent_local);

/// Validates a distributed parent tree (concatenated rank slices) against
/// the full graph; returns the empty string on success.
std::string validate_distributed(const kernels::KroneckerParams& kp, std::uint64_t root,
                                 const std::vector<std::vector<std::uint64_t>>& slices);

}  // namespace dvx::apps::bfs_detail
