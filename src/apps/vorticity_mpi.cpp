// Vorticity over MPI/InfiniBand: the pseudo-spectral solver with
// pack/alltoall/unpack distributed transposes.

#include "apps/transpose.hpp"
#include "apps/vorticity.hpp"
#include "apps/vorticity_core.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
using kernels::Complex;
namespace vd = vort_detail;

VorticityResult run_vorticity_mpi(runtime::Cluster& cluster,
                                  const VorticityParams& params) {
  const int p = cluster.nodes();
  const std::int64_t n = params.n;
  VorticityResult result;
  result.steps = params.steps;

  const auto run = cluster.run_mpi(
      [&](mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
        const std::int64_t rows_local = n / p;
        const std::int64_t row0 = static_cast<std::int64_t>(comm.rank()) * rows_local;
        auto transpose = [&](std::vector<Complex> data, std::int64_t rows,
                             std::int64_t cols) -> sim::Coro<std::vector<Complex>> {
          co_return co_await transpose_mpi(comm, node, data, rows, cols, /*tag=*/20);
        };

        // Initial condition -> spectral state (forward 2-D FFT).
        auto state = vd::initial_rows(comm.rank(), p, n, params.shear_delta,
                                      params.perturbation);
        co_await vd::fft_local_rows(node, state, n, false);
        state = co_await transpose(std::move(state), n, n);
        co_await vd::fft_local_rows(node, state, n, false);

        co_await comm.barrier();
        node.roi_begin();

        auto sums = vd::spectral_sums(state, row0, n);
        const double e0 = co_await comm.allreduce_sum_double(sums.energy);
        const double z0 = co_await comm.allreduce_sum_double(sums.enstrophy);

        for (int step = 0; step < params.steps; ++step) {
          // RK2 (midpoint).
          auto k1 = co_await vd::rhs(node, transpose, state, row0, n, p);
          std::vector<Complex> mid(state.size());
          for (std::size_t i = 0; i < state.size(); ++i) {
            mid[i] = state[i] + 0.5 * params.dt * k1[i];
          }
          auto k2 = co_await vd::rhs(node, transpose, mid, row0, n, p);
          for (std::size_t i = 0; i < state.size(); ++i) {
            state[i] += params.dt * k2[i];
          }
          co_await node.compute_flops(8.0 * static_cast<double>(state.size()));
        }

        sums = vd::spectral_sums(state, row0, n);
        const double e1 = co_await comm.allreduce_sum_double(sums.energy);
        const double z1 = co_await comm.allreduce_sum_double(sums.enstrophy);
        const double cs = co_await comm.allreduce_sum_double(sums.abs_sum);
        co_await comm.barrier();
        node.roi_end();

        if (comm.rank() == 0) {
          result.energy0 = e0;
          result.energy1 = e1;
          result.enstrophy0 = z0;
          result.enstrophy1 = z1;
          result.omega_checksum = cs;
        }
      });

  result.seconds = run.roi_seconds();
  return result;
}

}  // namespace dvx::apps
