#include "apps/heat_common.hpp"

namespace dvx::apps::heat_detail {

std::vector<double> serial_reference(const HeatParams& hp) {
  HaloGrid3 a(hp.global_nx, hp.global_ny, hp.global_nz);
  HaloGrid3 b(hp.global_nx, hp.global_ny, hp.global_nz);
  for (int k = 1; k <= hp.global_nz; ++k) {
    for (int j = 1; j <= hp.global_ny; ++j) {
      for (int i = 1; i <= hp.global_nx; ++i) {
        a.at(i, j, k) = initial_value(i - 1, j - 1, k - 1, hp);
      }
    }
  }
  for (int s = 0; s < hp.steps; ++s) {
    for (int f = 0; f < 6; ++f) a.reflect_boundary(f);
    kernels::heat_step(a, b, hp.alpha);
    std::swap(a, b);
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(hp.global_nx) * hp.global_ny * hp.global_nz);
  for (int k = 1; k <= hp.global_nz; ++k) {
    for (int j = 1; j <= hp.global_ny; ++j) {
      for (int i = 1; i <= hp.global_nx; ++i) out.push_back(a.at(i, j, k));
    }
  }
  return out;
}

double block_vs_reference(const HaloGrid3& g, const Block& b, const HeatParams& hp,
                          const std::vector<double>& ref) {
  double err = 0.0;
  for (std::int64_t k = 1; k <= b.n[2]; ++k) {
    for (std::int64_t j = 1; j <= b.n[1]; ++j) {
      for (std::int64_t i = 1; i <= b.n[0]; ++i) {
        const std::int64_t gi = b.lo[0] + i - 1;
        const std::int64_t gj = b.lo[1] + j - 1;
        const std::int64_t gk = b.lo[2] + k - 1;
        const auto idx = static_cast<std::size_t>(
            (gk * hp.global_ny + gj) * hp.global_nx + gi);
        err = std::max(err, std::abs(g.at(static_cast<int>(i), static_cast<int>(j),
                                          static_cast<int>(k)) -
                                     ref[idx]));
      }
    }
  }
  return err;
}

}  // namespace dvx::apps::heat_detail
