// GUPS on the Data Vortex: one 8-byte FIFO packet per update, batches mixed
// across destinations ("aggregation at source"), offsets recomputed at the
// owner from the LFSR value itself.

#include <bit>
#include <stdexcept>
#include <vector>

#include "apps/gups.hpp"
#include "check/check.hpp"
#include "dvapi/collectives.hpp"
#include "kernels/gups_table.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
namespace kernels = dvx::kernels;

namespace {

/// One full update pass; returns the number of remote updates sent per peer.
sim::Coro<void> gups_pass_dv(dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node,
                             const GupsParams& params, kernels::GupsTable& table) {
  const int n = ctx.nodes();
  const int rank = ctx.rank();
  std::vector<std::uint64_t> sent_to(static_cast<std::size_t>(n), 0);
  std::uint64_t received = 0;

  std::uint64_t a = kernels::gups_start(static_cast<std::uint64_t>(rank));
  std::uint64_t remaining = params.updates_per_node;
  std::vector<vic::Packet> batch;
  batch.reserve(static_cast<std::size_t>(params.buffer_limit));

  auto drain = [&](std::vector<vic::Packet> arrived) -> sim::Coro<void> {
    if (arrived.empty()) co_return;
    for (const auto& p : arrived) {
      const auto t = kernels::gups_target(p.payload, n, params.local_table_words);
      table.apply(t.offset, p.payload);
    }
    ++received;  // keep the counter live even when arrived.size() overflows int
    received += arrived.size() - 1;
    co_await node.compute_random(static_cast<double>(arrived.size()));
  };

  while (remaining > 0) {
    batch.clear();
    const auto burst =
        std::min<std::uint64_t>(remaining, static_cast<std::uint64_t>(params.buffer_limit));
    std::uint64_t local_applied = 0;
    for (std::uint64_t i = 0; i < burst; ++i) {
      a = kernels::gups_next(a);
      const auto t = kernels::gups_target(a, n, params.local_table_words);
      if (t.owner == rank) {
        table.apply(t.offset, a);
        ++local_applied;
        continue;
      }
      ++sent_to[static_cast<std::size_t>(t.owner)];
      batch.push_back(vic::Packet{vic::Header{static_cast<std::uint16_t>(t.owner),
                                              vic::DestKind::kFifo, vic::kNoCounter, 0},
                                  a});
    }
    remaining -= burst;
    // Generation + DV-memory map lookup cost, plus local applies.
    co_await node.compute_flops(4.0 * static_cast<double>(burst));
    co_await node.compute_random(static_cast<double>(local_applied));
    co_await ctx.send_dma_batch(batch);
    co_await drain(co_await ctx.fifo_poll());
  }

  // Termination: learn how many updates each peer aimed at us, then drain.
  auto counts = co_await dvapi::alltoall_words(ctx, sent_to);
  std::uint64_t expected = 0;
  for (int peer = 0; peer < n; ++peer) {
    if (peer != rank) expected += counts[static_cast<std::size_t>(peer)];
  }
  DVX_CHECK_EQ(counts[static_cast<std::size_t>(rank)], sent_to[static_cast<std::size_t>(rank)])
      << "alltoall corrupted the self count. ";
  while (received < expected) {
    co_await drain(co_await ctx.fifo_wait());
  }
  // Update conservation: every remote update aimed at this rank arrived,
  // and no phantom update was applied.
  DVX_CHECK_EQ(received, expected) << "GUPS update conservation violated. ";
  co_await ctx.barrier();
}

}  // namespace

GupsResult run_gups_dv(runtime::Cluster& cluster, const GupsParams& params) {
  const int n = cluster.nodes();
  if (!std::has_single_bit(static_cast<unsigned>(n))) {
    throw std::invalid_argument("gups: node count must be a power of two");
  }
  std::vector<kernels::GupsTable> tables;
  tables.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    tables.emplace_back(params.local_table_words);
    tables.back().init(static_cast<std::uint64_t>(r) * params.local_table_words);
  }

  GupsResult result;
  const auto run = cluster.run_dv(
      [&](dvx::dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
        auto& table = tables[static_cast<std::size_t>(ctx.rank())];
        co_await ctx.barrier();
        node.roi_begin();
        co_await gups_pass_dv(ctx, node, params, table);
        node.roi_end();
        if (params.verify) {
          co_await gups_pass_dv(ctx, node, params, table);
        }
      });
  result.seconds = run.roi_seconds();
  result.total_updates =
      static_cast<double>(params.updates_per_node) * static_cast<double>(n);
  if (params.verify) {
    for (int r = 0; r < n; ++r) {
      result.errors += tables[static_cast<std::size_t>(r)].errors(
          static_cast<std::uint64_t>(r) * params.local_table_words);
    }
  }
  return result;
}

}  // namespace dvx::apps
