#pragma once
// Distributed matrix transpose — the communication core of the FFT-1D
// benchmark and the pseudo-spectral vorticity solver (paper §VI/§VII).
//
// A rows x cols complex matrix is distributed by whole rows over P ranks
// (rows % P == 0, cols % P == 0). The transpose returns each rank's rows of
// the cols x rows result.
//
//  * MPI: pack per-destination sub-blocks, pairwise alltoall, unpack — the
//    standard approach; it pays two extra passes over the data (pack and
//    unpack) plus the alltoall's protocol costs.
//  * Data Vortex: every element is sent straight to its transposed location
//    in the destination VIC's DV memory ("the natural scatter/gather
//    capabilities of the network ... fold redistribution operations into the
//    communication"). The per-element headers form a fixed pattern across
//    invocations, so they are pre-cached in DV memory and only payload words
//    cross PCIe (the DMA/Cached path).

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "dvapi/context.hpp"
#include "kernels/fft.hpp"
#include "mpi/comm.hpp"
#include "runtime/node.hpp"

namespace dvx::apps {

/// MPI distributed transpose; `local` holds this rank's rows/P rows.
sim::Coro<std::vector<kernels::Complex>> transpose_mpi(
    mpi::Comm comm, runtime::NodeCtx& node, std::span<const kernels::Complex> local,
    std::int64_t rows, std::int64_t cols, int tag);

/// Maximum row groups (and thus group counters) a DV transpose uses for its
/// pipelined receive-side drain.
inline constexpr int kTransposeGroups = 16;

/// Data Vortex distributed transpose through DV memory at `dv_base`.
/// Reserves group counters [counter, counter + kTransposeGroups) and needs
/// (cols/P)*rows*2 words of DV memory headroom at dv_base on every VIC.
sim::Coro<std::vector<kernels::Complex>> transpose_dv(
    dvapi::DvContext& ctx, runtime::NodeCtx& node,
    std::span<const kernels::Complex> local, std::int64_t rows, std::int64_t cols,
    std::uint32_t dv_base, int counter);

}  // namespace dvx::apps
