#include "apps/transpose.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "check/check.hpp"

namespace dvx::apps {

namespace {

void check_shape(std::size_t local_size, std::int64_t rows, std::int64_t cols, int ranks) {
  if (rows % ranks != 0 || cols % ranks != 0) {
    throw std::invalid_argument("transpose: rows and cols must divide the rank count");
  }
  if (static_cast<std::int64_t>(local_size) != rows / ranks * cols) {
    throw std::invalid_argument("transpose: local block size mismatch");
  }
}

}  // namespace

sim::Coro<std::vector<kernels::Complex>> transpose_mpi(
    mpi::Comm comm, runtime::NodeCtx& node, std::span<const kernels::Complex> local,
    std::int64_t rows, std::int64_t cols, int tag) {
  const int p = comm.size();
  check_shape(local.size(), rows, cols, p);
  const std::int64_t rows_local = rows / p;
  const std::int64_t cols_block = cols / p;

  // Pack: destination peer owns transposed rows [peer*cols_block, ...), i.e.
  // our columns in that band. Two words (re, im) per element.
  std::vector<std::vector<std::uint64_t>> send(static_cast<std::size_t>(p));
  for (int peer = 0; peer < p; ++peer) {
    auto& blk = send[static_cast<std::size_t>(peer)];
    blk.reserve(static_cast<std::size_t>(rows_local * cols_block * 2));
    for (std::int64_t r = 0; r < rows_local; ++r) {
      for (std::int64_t c = peer * cols_block; c < (peer + 1) * cols_block; ++c) {
        const auto& z = local[static_cast<std::size_t>(r * cols + c)];
        blk.push_back(std::bit_cast<std::uint64_t>(z.real()));
        blk.push_back(std::bit_cast<std::uint64_t>(z.imag()));
      }
    }
  }
  co_await node.compute_stream(16.0 * static_cast<double>(local.size()));  // pack pass

  auto recv = co_await comm.alltoall(std::move(send));
  (void)tag;

  // Unpack: out is cols_block x rows (row-major); the block from `peer`
  // holds elements (r_global = peer*rows_local + r, c_local).
  std::vector<kernels::Complex> out(
      static_cast<std::size_t>(cols_block * rows));
  for (int peer = 0; peer < p; ++peer) {
    const auto& blk = recv[static_cast<std::size_t>(peer)];
    // Block conservation: each peer contributes exactly its rows_local x
    // cols_block band, two words per element — no truncation in alltoall.
    DVX_CHECK_EQ(blk.size(), static_cast<std::size_t>(rows_local * cols_block * 2))
        << "transpose_mpi: peer " << peer << " block truncated. ";
    std::size_t idx = 0;
    for (std::int64_t r = 0; r < rows_local; ++r) {
      const std::int64_t gr = static_cast<std::int64_t>(peer) * rows_local + r;
      for (std::int64_t cl = 0; cl < cols_block; ++cl) {
        const double re = std::bit_cast<double>(blk[idx++]);
        const double im = std::bit_cast<double>(blk[idx++]);
        out[static_cast<std::size_t>(cl * rows + gr)] = kernels::Complex(re, im);
      }
    }
  }
  co_await node.compute_stream(16.0 * static_cast<double>(out.size()));  // unpack pass
  co_return out;
}

sim::Coro<std::vector<kernels::Complex>> transpose_dv(
    dvapi::DvContext& ctx, runtime::NodeCtx& node,
    std::span<const kernels::Complex> local, std::int64_t rows, std::int64_t cols,
    std::uint32_t dv_base, int counter) {
  const int p = ctx.nodes();
  const int rank = ctx.rank();
  check_shape(local.size(), rows, cols, p);
  const std::int64_t rows_local = rows / p;
  const std::int64_t cols_block = cols / p;
  const std::int64_t in_words = cols_block * rows * 2;
  if (dv_base + static_cast<std::uint64_t>(in_words) > ctx.vic().memory().words()) {
    throw std::invalid_argument("transpose_dv: DV memory region out of range");
  }

  // Pipelined drain (the paper's "aggressive restructuring"): the incoming
  // region is split into up to kMaxGroups row groups, each completing on its
  // own sub-counter, so the host-bound DMA chases the arriving stream
  // instead of waiting for the whole transpose. Counters
  // [counter, counter + groups) are reserved for this call.
  const std::int64_t groups =
      std::clamp<std::int64_t>(in_words / 4096, 1, kTransposeGroups);
  const std::int64_t rows_per_group = (cols_block + groups - 1) / groups;
  auto group_of = [&](std::int64_t cl) { return static_cast<int>(cl / rows_per_group); };
  // Counters track REMOTE words only: this rank's own block never rides the
  // network (it is a host-side copy straight into the result).
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int64_t g0 = g * rows_per_group;
    const std::int64_t g1 = std::min(cols_block, g0 + rows_per_group);
    co_await ctx.counter_set_local(
        counter + static_cast<int>(g),
        static_cast<std::uint64_t>((g1 - g0) * (rows - rows_local) * 2));
  }
  co_await ctx.barrier();

  // Scatter every element straight to its transposed slot on the owner VIC.
  // The header pattern is invocation-invariant -> cached headers, payload-only
  // PCIe traffic (send_dma_batch models exactly that).
  // Emission order matters twice: owners are visited in rank-rotated order
  // so the P concurrent scatters do not all hammer ejection port 0 first,
  // and columns (destination rows) go group-major so a receiver's first
  // sub-counter fires after ~1/groups of the stream — that is what lets the
  // drain DMA chase the arrivals.
  std::vector<kernels::Complex> out(static_cast<std::size_t>(cols_block * rows));
  std::vector<vic::Packet> batch;
  batch.reserve(static_cast<std::size_t>(rows_local * (cols - cols_block) * 2));
  const std::int64_t r0 = static_cast<std::int64_t>(rank) * rows_local;
  // Self block: a plain host copy, never on the wire.
  for (std::int64_t r = 0; r < rows_local; ++r) {
    for (std::int64_t cl = 0; cl < cols_block; ++cl) {
      out[static_cast<std::size_t>(cl * rows + (r0 + r))] =
          local[static_cast<std::size_t>(r * cols + rank * cols_block + cl)];
    }
  }
  co_await node.compute_stream(16.0 * static_cast<double>(rows_local * cols_block));
  // Rotated owner-major emission: sender s reaches owner (s+shift)%p at
  // stream position (shift-1)/(p-1), so each receiver's p-1 incoming blocks
  // tile its ejection port back-to-back instead of queueing whole streams
  // behind one another. Within a block, columns ascend, so the receiver's
  // sub-counters fire in order as the final (latest-positioned) block lands.
  for (int shift = 1; shift < p; ++shift) {
    const int owner = (rank + shift) % p;
    for (std::int64_t cl = 0; cl < cols_block; ++cl) {
      const std::int64_t c = static_cast<std::int64_t>(owner) * cols_block + cl;
      const auto ctr = static_cast<std::uint8_t>(counter + group_of(cl));
      for (std::int64_t r = 0; r < rows_local; ++r) {
        const auto slot =
            static_cast<std::uint32_t>(dv_base + (cl * rows + (r0 + r)) * 2);
        const auto& z = local[static_cast<std::size_t>(r * cols + c)];
        batch.push_back(vic::Packet{
            vic::Header{static_cast<std::uint16_t>(owner), vic::DestKind::kDvMemory,
                        ctr, slot},
            std::bit_cast<std::uint64_t>(z.real())});
        batch.push_back(vic::Packet{
            vic::Header{static_cast<std::uint16_t>(owner), vic::DestKind::kDvMemory,
                        ctr, slot + 1},
            std::bit_cast<std::uint64_t>(z.imag())});
      }
    }
  }
  // Word conservation across the scatter: what this rank puts on the wire
  // (its rows minus the self block) must equal what each receiver's group
  // counters were armed for ((rows - rows_local) * cols_block words per
  // rank) — the sender- and receiver-side accountings of the same traffic.
  DVX_CHECK_EQ(batch.size(),
               static_cast<std::size_t>(rows_local * (cols - cols_block) * 2))
      << "transpose_dv: scatter batch does not cover the remote blocks. ";
  DVX_CHECK_EQ(static_cast<std::uint64_t>(rows_local * (cols - cols_block) * 2),
               static_cast<std::uint64_t>((rows - rows_local) * cols_block * 2))
      << "transpose_dv: sender/receiver word accounting diverged. ";
  co_await ctx.send_dma_batch(batch);

  // Drain group by group: each read overlaps the later groups' arrivals.
  std::vector<std::uint64_t> words(static_cast<std::size_t>(in_words));
  sim::Time last_read = ctx.engine().now();
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int64_t g0 = g * rows_per_group;
    const std::int64_t g1 = std::min(cols_block, g0 + rows_per_group);
    co_await ctx.counter_wait_zero(counter + static_cast<int>(g));
    last_read = ctx.dma_read_dv_async(
        static_cast<std::uint32_t>(dv_base + g0 * rows * 2),
        std::span<std::uint64_t>(words.data() + g0 * rows * 2,
                                 static_cast<std::size_t>((g1 - g0) * rows * 2)));
  }
  co_await ctx.engine().resume_at(last_read);

  // Decode remote slots; self rows [r0, r0 + rows_local) were copied above.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto gr = static_cast<std::int64_t>(i) % rows;
    if (gr >= r0 && gr < r0 + rows_local) continue;
    out[i] = kernels::Complex(std::bit_cast<double>(words[2 * i]),
                              std::bit_cast<double>(words[2 * i + 1]));
  }
  co_await node.compute_stream(16.0 * static_cast<double>(out.size()));  // decode pass
  co_return out;
}

}  // namespace dvx::apps
