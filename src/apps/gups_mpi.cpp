// GUPS over MPI/InfiniBand: the HPCC MPIRandomAccess algorithm. Updates are
// routed through a log2(P)-dimensional hypercube of pairwise exchanges,
// bucket by bucket, under the 1,024-update buffering rule. Every bucket
// pays per-stage software+wire latency; cross-leaf stages also contend in
// the fat-tree — the effects behind the declining per-PE curve in Fig. 6a.

#include <bit>
#include <stdexcept>
#include <vector>

#include "apps/gups.hpp"
#include "kernels/gups_table.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
namespace kernels = dvx::kernels;

namespace {

sim::Coro<void> gups_pass_mpi(dvx::mpi::Comm comm, runtime::NodeCtx& node,
                              const GupsParams& params, kernels::GupsTable& table) {
  const int n = comm.size();
  const int rank = comm.rank();
  const int dims = std::bit_width(static_cast<unsigned>(n)) - 1;

  std::uint64_t a = kernels::gups_start(static_cast<std::uint64_t>(rank));
  std::uint64_t remaining = params.updates_per_node;
  // Every rank runs the same number of lockstep bucket rounds.
  const std::uint64_t rounds =
      (params.updates_per_node + params.buffer_limit - 1) /
      static_cast<std::uint64_t>(params.buffer_limit);

  for (std::uint64_t round = 0; round < rounds; ++round) {
    std::vector<std::uint64_t> bucket;
    const auto burst =
        std::min<std::uint64_t>(remaining, static_cast<std::uint64_t>(params.buffer_limit));
    for (std::uint64_t i = 0; i < burst; ++i) {
      a = kernels::gups_next(a);
      bucket.push_back(a);
    }
    remaining -= burst;
    co_await node.compute_flops(2.0 * static_cast<double>(burst));

    // Hypercube routing: after stage d every held update agrees with this
    // rank on owner bits 0..d.
    for (int d = 0; d < dims; ++d) {
      const int partner = rank ^ (1 << d);
      std::vector<std::uint64_t> keep, forward;
      for (std::uint64_t v : bucket) {
        const auto t = kernels::gups_target(v, n, params.local_table_words);
        if (((t.owner ^ rank) & (1 << d)) != 0) {
          forward.push_back(v);
        } else {
          keep.push_back(v);
        }
      }
      co_await node.compute_stream(8.0 * static_cast<double>(bucket.size()));
      auto msg = co_await comm.sendrecv(partner, /*send_tag=*/d, std::move(forward),
                                        partner, /*recv_tag=*/d);
      bucket = std::move(keep);
      bucket.insert(bucket.end(), msg.data.begin(), msg.data.end());
    }

    // Everything left is local now.
    std::uint64_t applied = 0;
    for (std::uint64_t v : bucket) {
      const auto t = kernels::gups_target(v, n, params.local_table_words);
      if (t.owner != rank) continue;  // cannot happen for power-of-two P
      table.apply(t.offset, v);
      ++applied;
    }
    co_await node.compute_random(static_cast<double>(applied));
  }
  co_await comm.barrier();
}

}  // namespace

GupsResult run_gups_mpi(runtime::Cluster& cluster, const GupsParams& params) {
  const int n = cluster.nodes();
  if (!std::has_single_bit(static_cast<unsigned>(n))) {
    throw std::invalid_argument("gups: node count must be a power of two");
  }
  std::vector<kernels::GupsTable> tables;
  tables.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    tables.emplace_back(params.local_table_words);
    tables.back().init(static_cast<std::uint64_t>(r) * params.local_table_words);
  }

  GupsResult result;
  const auto run = cluster.run_mpi(
      [&](dvx::mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
        auto& table = tables[static_cast<std::size_t>(comm.rank())];
        co_await comm.barrier();
        node.roi_begin();
        co_await gups_pass_mpi(comm, node, params, table);
        node.roi_end();
        if (params.verify) {
          co_await gups_pass_mpi(comm, node, params, table);
        }
      });
  result.seconds = run.roi_seconds();
  result.total_updates =
      static_cast<double>(params.updates_per_node) * static_cast<double>(n);
  if (params.verify) {
    for (int r = 0; r < n; ++r) {
      result.errors += tables[static_cast<std::size_t>(r)].errors(
          static_cast<std::uint64_t>(r) * params.local_table_words);
    }
  }
  return result;
}

}  // namespace dvx::apps
