#pragma once
// GUPS / RandomAccess (paper §VI, Figs. 5 and 6).
//
// A table of 2^k words per node is updated with XORs at random global
// locations. Implementation rules cap buffering at 1,024 pending updates, so
// destination aggregation is impossible by construction.
//
//  * MPI (HPCC-style): updates are routed through a log2(P)-dimension
//    hypercube of sendrecv exchanges, bucket by bucket — the classic
//    MPIRandomAccess algorithm. Every bucket pays per-stage message latency
//    and fat-tree contention, which is why per-PE MUPS sink as P grows.
//  * Data Vortex: the LFSR value itself is the payload (the target offset is
//    recomputed at the owner), so each update is one 8-byte packet to the
//    owner's surprise FIFO. Batches mix destinations freely — "aggregation
//    at source" — and cross PCIe with one DMA per bucket.
//
// Verification uses the XOR involution: applying the same update stream a
// second time must restore table[i] == i exactly.

#include <cstdint>

#include "runtime/cluster.hpp"

namespace dvx::apps {

struct GupsParams {
  std::uint64_t local_table_words = 1 << 18;  ///< table words per node
  std::uint64_t updates_per_node = 1 << 16;   ///< weak-scaled update count
  int buffer_limit = 1024;                    ///< HPCC aggregation cap
  bool verify = false;  ///< run the stream twice and count errors (untimed rule)
};

struct GupsResult {
  double seconds = 0.0;        ///< ROI virtual time of the timed pass
  double total_updates = 0.0;  ///< across all nodes
  std::uint64_t errors = 0;    ///< nonzero table mismatches after verify
  double gups() const { return total_updates / seconds / 1e9; }
  double mups_per_pe(int nodes) const {
    return total_updates / seconds / 1e6 / nodes;
  }
};

GupsResult run_gups_dv(runtime::Cluster& cluster, const GupsParams& params);
GupsResult run_gups_mpi(runtime::Cluster& cluster, const GupsParams& params);

}  // namespace dvx::apps
