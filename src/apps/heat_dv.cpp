// Heat equation restructured for the Data Vortex (paper §VII): all six
// faces ride one mixed-destination DMA batch straight into the neighbors'
// DV-memory halo regions; two sense-alternating group counters detect
// arrival; the residual uses the dvapi word collectives. One PCIe crossing
// per step where MPI pays a dozen message set-ups.

#include <bit>
#include <numeric>

#include "apps/heat.hpp"
#include "apps/heat_common.hpp"
#include "dvapi/collectives.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
namespace kernels = dvx::kernels;
using heat_detail::Block;
using kernels::HaloGrid3;

namespace {

constexpr int kCtrEven = dvapi::kFirstFreeCounter;      // steps 0, 2, 4, ...
constexpr int kCtrOdd = dvapi::kFirstFreeCounter + 1;   // steps 1, 3, 5, ...
constexpr std::uint32_t kHaloBase = dvapi::kFirstFreeDvWord;  // DV-memory region

/// Words of one halo region for a block: only faces that actually have a
/// neighbor occupy space, so the read-back DMA moves exactly the words that
/// arrived.
std::uint32_t region_words(const Block& b) {
  HaloGrid3 probe(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                  static_cast<int>(b.n[2]));
  std::uint32_t n = 0;
  for (int f = 0; f < 6; ++f) {
    if (b.neighbor[static_cast<std::size_t>(f)] >= 0) {
      n += static_cast<std::uint32_t>(probe.face_cells(f));
    }
  }
  return n;
}

/// DV-memory offset of `face`'s incoming halo slot within a block. The
/// regions are double-buffered by step parity so a fast neighbor's step k+1
/// faces can never land on a region still being read for step k.
std::uint32_t face_offset(const Block& b, int face, int step) {
  HaloGrid3 probe(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                  static_cast<int>(b.n[2]));
  std::uint32_t off = kHaloBase + (step % 2 == 0 ? 0 : region_words(b));
  for (int f = 0; f < face; ++f) {
    if (b.neighbor[static_cast<std::size_t>(f)] >= 0) {
      off += static_cast<std::uint32_t>(probe.face_cells(f));
    }
  }
  return off;
}

/// Total words a block receives per step (present faces only).
std::uint64_t expected_words(const Block& b) {
  HaloGrid3 probe(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                  static_cast<int>(b.n[2]));
  std::uint64_t n = 0;
  for (int f = 0; f < 6; ++f) {
    if (b.neighbor[static_cast<std::size_t>(f)] >= 0) {
      n += static_cast<std::uint64_t>(probe.face_cells(f));
    }
  }
  return n;
}

}  // namespace

HeatResult run_heat_dv(runtime::Cluster& cluster, const HeatParams& params) {
  const int p = cluster.nodes();
  std::vector<double> rank_sums(static_cast<std::size_t>(p), 0.0);
  std::vector<double> rank_errs(static_cast<std::size_t>(p), 0.0);
  double final_residual = 0.0;
  const auto reference =
      params.verify ? heat_detail::serial_reference(params) : std::vector<double>{};

  const auto run = cluster.run_dv(
      [&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
        const Block b = heat_detail::block_for(ctx.rank(), p, params);
        HaloGrid3 u(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                    static_cast<int>(b.n[2]));
        HaloGrid3 next(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                       static_cast<int>(b.n[2]));
        heat_detail::fill_block(u, b, params);
        const std::uint64_t expect = expected_words(b);

        // Arm both sense counters before anyone may send.
        co_await ctx.counter_set_local(kCtrEven, expect);
        co_await ctx.counter_set_local(kCtrOdd, expect);
        co_await ctx.barrier();
        node.roi_begin();

        double residual = 0.0;
        for (int step = 0; step < params.steps; ++step) {
          const int ctr = (step % 2 == 0) ? kCtrEven : kCtrOdd;

          // Build ONE batch carrying every face to every neighbor.
          std::vector<vic::Packet> batch;
          std::int64_t packed_cells = 0;
          for (int f = 0; f < 6; ++f) {
            const int nb = b.neighbor[static_cast<std::size_t>(f)];
            if (nb < 0) {
              u.reflect_boundary(f);
              continue;
            }
            // Our face f lands in the neighbor's opposite halo region.
            const Block nb_block = heat_detail::block_for(nb, p, params);
            const std::uint32_t dst = face_offset(nb_block, f ^ 1, step);
            const auto face = u.pack_face(f);
            packed_cells += static_cast<std::int64_t>(face.size());
            for (std::size_t i = 0; i < face.size(); ++i) {
              batch.push_back(vic::Packet{
                  vic::Header{static_cast<std::uint16_t>(nb), vic::DestKind::kDvMemory,
                              static_cast<std::uint8_t>(ctr),
                              dst + static_cast<std::uint32_t>(i)},
                  std::bit_cast<std::uint64_t>(face[i])});
            }
          }
          co_await node.compute_stream(16.0 * static_cast<double>(packed_cells));
          co_await ctx.send_dma_batch(batch);

          co_await ctx.counter_wait_zero(ctr);
          // Re-arm for step+2: neighbors cannot reach it before they receive
          // our step+1 faces, which we only send after this line.
          co_await ctx.counter_set_local(ctr, expect);

          // Pull this parity's halo region (present faces only) in one DMA.
          const std::uint32_t base =
              kHaloBase + (step % 2 == 0 ? 0 : region_words(b));
          std::vector<std::uint64_t> region(region_words(b));
          co_await ctx.dma_read_dv(base, region);
          std::uint32_t off = 0;
          for (int f = 0; f < 6; ++f) {
            if (b.neighbor[static_cast<std::size_t>(f)] < 0) continue;
            const auto cells = static_cast<std::size_t>(u.face_cells(f));
            std::vector<double> vals(cells);
            for (std::size_t i = 0; i < cells; ++i) {
              vals[i] = std::bit_cast<double>(region[off + i]);
            }
            u.unpack_halo(f, vals);
            off += static_cast<std::uint32_t>(cells);
          }
          co_await node.compute_stream(16.0 * static_cast<double>(packed_cells));

          const double local_res = kernels::heat_step(u, next, params.alpha);
          std::swap(u, next);
          co_await node.compute_flops(kernels::kHeatFlopsPerCell *
                                      static_cast<double>(u.interior_cells()));
          co_await node.compute_stream(16.0 * static_cast<double>(u.interior_cells()));

          // Residual check through the word collectives (positive doubles
          // order-compatibly under integer max).
          const auto bits = co_await dvapi::allreduce_max(
              ctx, std::bit_cast<std::uint64_t>(local_res));
          residual = std::bit_cast<double>(bits);
        }
        co_await ctx.barrier();
        node.roi_end();

        rank_sums[static_cast<std::size_t>(ctx.rank())] = heat_detail::block_sum(u, b);
        if (ctx.rank() == 0) final_residual = residual;
        if (params.verify) {
          rank_errs[static_cast<std::size_t>(ctx.rank())] =
              heat_detail::block_vs_reference(u, b, params, reference);
        }
      });

  HeatResult result;
  result.seconds = run.roi_seconds();
  for (double s : rank_sums) result.total_heat += s;
  for (double e : rank_errs) result.max_serial_diff = std::max(result.max_serial_diff, e);
  result.final_residual = final_residual;
  result.cell_updates = static_cast<std::int64_t>(params.global_nx) * params.global_ny *
                        params.global_nz * params.steps;
  return result;
}

}  // namespace dvx::apps
