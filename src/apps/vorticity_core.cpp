#include "apps/vorticity_core.hpp"

namespace dvx::apps::vort_detail {

double kh_initial(std::int64_t i, std::int64_t j, std::int64_t n, double delta,
                  double eps) {
  // Double shear layer on the periodic unit box: vorticity sheets at
  // y = 1/4 and y = 3/4 with opposite signs, plus a small sinusoidal seed
  // that triggers the Kelvin-Helmholtz roll-up.
  const double x = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
  const double y = (static_cast<double>(j) + 0.5) / static_cast<double>(n);
  auto sheet = [&](double yc, double sign) {
    const double s = (y - yc) / delta;
    return sign / (delta * std::cosh(s) * std::cosh(s));
  };
  const double base = sheet(0.25, 1.0) + sheet(0.75, -1.0);
  const double seed = eps * std::sin(2.0 * std::numbers::pi * x) *
                      (std::exp(-std::pow((y - 0.25) / delta, 2)) +
                       std::exp(-std::pow((y - 0.75) / delta, 2)));
  return base + seed;
}

std::vector<Complex> initial_rows(int rank, int ranks, std::int64_t n, double delta,
                                  double eps) {
  const std::int64_t rows_local = n / ranks;
  std::vector<Complex> out(static_cast<std::size_t>(rows_local * n));
  const std::int64_t j0 = static_cast<std::int64_t>(rank) * rows_local;
  for (std::int64_t r = 0; r < rows_local; ++r) {
    for (std::int64_t i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(r * n + i)] =
          Complex(kh_initial(i, j0 + r, n, delta, eps), 0.0);
    }
  }
  return out;
}

sim::Coro<void> fft_local_rows(runtime::NodeCtx& node, std::vector<Complex>& data,
                               std::int64_t n, bool inverse) {
  const std::int64_t rows = static_cast<std::int64_t>(data.size()) / n;
  for (std::int64_t r = 0; r < rows; ++r) {
    kernels::fft(std::span<Complex>(data.data() + r * n, static_cast<std::size_t>(n)),
                 inverse);
  }
  co_await node.compute_flops(static_cast<double>(rows) * kernels::fft_flops(n));
}

SpectralSums spectral_sums(const std::vector<Complex>& s, std::int64_t row0,
                           std::int64_t n) {
  SpectralSums out;
  const std::int64_t rows = static_cast<std::int64_t>(s.size()) / n;
  for (std::int64_t r = 0; r < rows; ++r) {
    const double kx = static_cast<double>(wavenumber(row0 + r, n));
    for (std::int64_t c = 0; c < n; ++c) {
      const double ky = static_cast<double>(wavenumber(c, n));
      const double k2 = kx * kx + ky * ky;
      const double w2 = std::norm(s[static_cast<std::size_t>(r * n + c)]);
      out.enstrophy += w2;
      if (k2 > 0.0) out.energy += w2 / k2;
      out.abs_sum += std::sqrt(w2);
    }
  }
  return out;
}

}  // namespace dvx::apps::vort_detail
