// Vorticity restructured for the Data Vortex (paper §VII): the five 2-D
// FFTs per RHS evaluation run their transposes as direct scatters into the
// peers' DV memory ("data reordering and redistribution ... integrated with
// normal data transfers"), with cached headers and counter completion.

#include <bit>

#include "apps/transpose.hpp"
#include "apps/vorticity.hpp"
#include "apps/vorticity_core.hpp"
#include "dvapi/collectives.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
using kernels::Complex;
namespace vd = vort_detail;

namespace {

constexpr int kTransposeCtr = dvapi::kFirstFreeCounter;
constexpr std::uint32_t kDvBase = dvapi::kFirstFreeDvWord;

/// Double-valued sum reduction over the word collectives.
sim::Coro<double> allreduce_sum_double_dv(dvapi::DvContext& ctx, double v) {
  std::vector<std::uint64_t> send(static_cast<std::size_t>(ctx.nodes()),
                                  std::bit_cast<std::uint64_t>(v));
  const auto all = co_await dvapi::alltoall_words(ctx, send);
  double acc = 0.0;
  for (auto w : all) acc += std::bit_cast<double>(w);
  co_return acc;
}

}  // namespace

VorticityResult run_vorticity_dv(runtime::Cluster& cluster,
                                 const VorticityParams& params) {
  const int p = cluster.nodes();
  const std::int64_t n = params.n;
  VorticityResult result;
  result.steps = params.steps;

  const auto run = cluster.run_dv(
      [&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
        const std::int64_t rows_local = n / p;
        const std::int64_t row0 = static_cast<std::int64_t>(ctx.rank()) * rows_local;
        auto transpose = [&](std::vector<Complex> data, std::int64_t rows,
                             std::int64_t cols) -> sim::Coro<std::vector<Complex>> {
          co_return co_await transpose_dv(ctx, node, data, rows, cols, kDvBase,
                                          kTransposeCtr);
        };

        auto state = vd::initial_rows(ctx.rank(), p, n, params.shear_delta,
                                      params.perturbation);
        co_await vd::fft_local_rows(node, state, n, false);
        state = co_await transpose(std::move(state), n, n);
        co_await vd::fft_local_rows(node, state, n, false);

        co_await ctx.barrier();
        node.roi_begin();

        auto sums = vd::spectral_sums(state, row0, n);
        const double e0 = co_await allreduce_sum_double_dv(ctx, sums.energy);
        const double z0 = co_await allreduce_sum_double_dv(ctx, sums.enstrophy);

        for (int step = 0; step < params.steps; ++step) {
          auto k1 = co_await vd::rhs(node, transpose, state, row0, n, p);
          std::vector<Complex> mid(state.size());
          for (std::size_t i = 0; i < state.size(); ++i) {
            mid[i] = state[i] + 0.5 * params.dt * k1[i];
          }
          auto k2 = co_await vd::rhs(node, transpose, mid, row0, n, p);
          for (std::size_t i = 0; i < state.size(); ++i) {
            state[i] += params.dt * k2[i];
          }
          co_await node.compute_flops(8.0 * static_cast<double>(state.size()));
        }

        sums = vd::spectral_sums(state, row0, n);
        const double e1 = co_await allreduce_sum_double_dv(ctx, sums.energy);
        const double z1 = co_await allreduce_sum_double_dv(ctx, sums.enstrophy);
        const double cs = co_await allreduce_sum_double_dv(ctx, sums.abs_sum);
        co_await ctx.barrier();
        node.roi_end();

        if (ctx.rank() == 0) {
          result.energy0 = e0;
          result.energy1 = e1;
          result.enstrophy0 = z0;
          result.enstrophy1 = z1;
          result.omega_checksum = cs;
        }
      });

  result.seconds = run.roi_seconds();
  return result;
}

}  // namespace dvx::apps
