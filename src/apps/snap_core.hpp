#pragma once
// Backend-independent core of the SNAP proxy: mesh decomposition, level-
// symmetric-ish quadrature, the diamond-difference chunk sweep, and the
// source-iteration bookkeeping. The MPI and Data Vortex ports drive this
// core and differ only in how chunk faces move between ranks.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/snap.hpp"

namespace dvx::apps::snap_detail {

/// One rank's block of the y-z decomposition (x stays whole: KBA pencils).
struct SnapBlock {
  int py = 1, pz = 1;  ///< process grid extents
  int cy = 0, cz = 0;  ///< this rank's coordinates
  std::int64_t y0 = 0, ny_l = 0;
  std::int64_t z0 = 0, nz_l = 0;

  /// Upstream/downstream rank in y for sweep direction sy (+1/-1); -1 at
  /// the domain boundary.
  int y_upstream(int sy) const;
  int y_downstream(int sy) const;
  int z_upstream(int sz) const;
  int z_downstream(int sz) const;
  int rank_of(int cy_, int cz_) const { return cz_ * py + cy_; }
};

SnapBlock block_for(int rank, int ranks, const SnapParams& p);

/// Octant direction signs: octant o -> (sx, sy, sz) in {-1, +1}^3.
std::array<int, 3> octant_signs(int octant);

struct Quadrature {
  std::vector<double> mu, eta, xi, w;  ///< per angle, all positive
};
Quadrature make_quadrature(int nang);

class SnapCore {
 public:
  SnapCore(const SnapParams& params, int rank, int ranks);

  const SnapParams& params() const noexcept { return params_; }
  const SnapBlock& block() const noexcept { return blk_; }
  int chunks() const noexcept { return chunks_; }
  /// Global x-range [x0, x1) of chunk `c` in sweep order for direction sx.
  std::pair<std::int64_t, std::int64_t> chunk_range(int c, int sx) const;

  /// Words (doubles) of the y face of one chunk (all angles, all groups).
  std::int64_t y_face_len(int c) const;
  std::int64_t z_face_len(int c) const;

  void begin_outer();                  // zero the flux accumulators
  void begin_octant(int octant);       // vacuum x-boundary angular flux
  /// Sweeps one chunk: consumes incoming faces (empty spans mean vacuum
  /// boundary), produces outgoing faces, accumulates scalar flux.
  void sweep_chunk(int octant, int c, std::span<const double> in_y,
                   std::span<const double> in_z, std::vector<double>& out_y,
                   std::vector<double>& out_z);
  /// Ends a source iteration: returns max |phi - phi_prev| (local).
  double finish_outer();

  /// FLOPs to charge for one chunk sweep.
  double chunk_flops(int c) const;

  double flux_sum() const;
  double flux_min() const;
  std::int64_t cell_angle_updates() const noexcept { return updates_; }

 private:
  std::size_t cell_index(int g, std::int64_t ix, std::int64_t iy, std::int64_t iz) const;

  SnapParams params_;
  SnapBlock blk_;
  Quadrature quad_;
  int chunks_;
  std::vector<double> phi_, phi_prev_, qext_;
  std::vector<double> psi_x_;  // [g][iy][iz][a], persists across chunks
  std::int64_t updates_ = 0;
};

}  // namespace dvx::apps::snap_detail
