#pragma once
// SNAP — the SN (Discrete Ordinates) Application Proxy (paper §VII).
//
// Mimics the computational and communication structure of a neutron
// transport sweep: a 3-D spatial mesh, 8 angular octants with `nang` angles
// each, `ng` energy groups, diamond-difference cell updates, and source
// iteration on the scattering term. The y-z plane is decomposed over a 2-D
// process grid (KBA): sweeps travel pipelined wavefronts of x-chunks, each
// chunk passing its outgoing y/z face angular fluxes downstream.
//
//  * MPI: one receive + one send per (octant, chunk) per upstream/downstream
//    direction — the reference wavefront pipeline.
//  * Data Vortex: a "best-effort port" as the paper describes: face
//    payloads are put into the downstream VIC's DV memory with parity
//    counters and explicit credit packets for flow control, with y and z
//    faces aggregated into a single DMA batch per chunk.

#include <cstdint>

#include "runtime/cluster.hpp"

namespace dvx::apps {

struct SnapParams {
  int nx = 32, ny = 24, nz = 24;  ///< global spatial mesh
  int nang = 16;                  ///< angles per octant (8 octants total)
  int ng = 2;                     ///< energy groups
  int ichunk = 8;                 ///< x-planes per pipelined chunk
  int max_outer = 4;              ///< source (scattering) iterations
  double sigma_t = 1.0;           ///< total cross-section
  double sigma_s = 0.5;           ///< isotropic scattering cross-section
  double dx = 0.5, dy = 0.5, dz = 0.5;
};

struct SnapResult {
  double seconds = 0.0;
  int outer_iterations = 0;
  double residual = 0.0;        ///< final max |phi - phi_prev|
  double flux_sum = 0.0;        ///< checksum of the converged scalar flux
  double min_flux = 0.0;        ///< must stay non-negative
  std::int64_t cell_angle_updates = 0;
  double sweep_rate() const {
    return static_cast<double>(cell_angle_updates) / seconds;
  }
};

SnapResult run_snap_dv(runtime::Cluster& cluster, const SnapParams& params);
SnapResult run_snap_mpi(runtime::Cluster& cluster, const SnapParams& params);

}  // namespace dvx::apps
