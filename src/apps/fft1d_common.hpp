#pragma once
// Shared pieces of the two FFT-1D implementations: deterministic input
// generation, the node-local FFT/twiddle stages with compute charging, and
// verification against the serial six-step transform.

#include <bit>
#include <stdexcept>
#include <vector>

#include "apps/fft1d.hpp"
#include "kernels/fft.hpp"
#include "runtime/node.hpp"
#include "sim/rng.hpp"

namespace dvx::apps::fft_detail {

using kernels::Complex;

struct Shape {
  std::int64_t n1, n2, rows_local;  // input matrix n1 x n2, rows per rank
};

inline Shape shape_for(int log_size, int ranks) {
  const std::int64_t n1 = std::int64_t{1} << ((log_size + 1) / 2);
  const std::int64_t n2 = std::int64_t{1} << (log_size / 2);
  if (n1 % ranks != 0 || n2 % ranks != 0) {
    throw std::invalid_argument("fft1d: rank count must divide both matrix extents");
  }
  return Shape{n1, n2, n1 / ranks};
}

/// Deterministic random point for global index i (same on every rank).
inline Complex input_point(std::uint64_t i) {
  sim::Xoshiro256 rng(sim::mix64(i + 0x5eedULL));
  return Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
}

/// This rank's slice of the input: rows_local rows of length n2.
inline std::vector<Complex> make_local_input(int rank, const Shape& s) {
  std::vector<Complex> out(static_cast<std::size_t>(s.rows_local * s.n2));
  const std::uint64_t base = static_cast<std::uint64_t>(rank) *
                             static_cast<std::uint64_t>(s.rows_local * s.n2);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = input_point(base + i);
  return out;
}

/// Runs (and charges) one local FFT per row of length row_len.
inline sim::Coro<void> fft_rows(runtime::NodeCtx& node, std::vector<Complex>& data,
                                std::int64_t row_len) {
  const std::int64_t rows = static_cast<std::int64_t>(data.size()) / row_len;
  for (std::int64_t r = 0; r < rows; ++r) {
    kernels::fft(std::span<Complex>(data.data() + r * row_len,
                                    static_cast<std::size_t>(row_len)));
  }
  co_await node.compute_flops(static_cast<double>(rows) * kernels::fft_flops(row_len));
}

/// Twiddle stage: element (global row gr, col c) scaled by W_N^{gr*c}.
inline sim::Coro<void> twiddle_rows(runtime::NodeCtx& node, std::vector<Complex>& data,
                                    std::int64_t first_row, std::int64_t row_len,
                                    std::int64_t n) {
  const std::int64_t rows = static_cast<std::int64_t>(data.size()) / row_len;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < row_len; ++c) {
      data[static_cast<std::size_t>(r * row_len + c)] *=
          kernels::twiddle(first_row + r, c, n);
    }
  }
  co_await node.compute_flops(8.0 * static_cast<double>(data.size()));
}

/// Max |distributed - serial| over the full output.
inline double verify_against_serial(const Shape& s, int ranks,
                                    const std::vector<std::vector<Complex>>& outputs) {
  const std::int64_t n = s.n1 * s.n2;
  std::vector<Complex> input(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    input[static_cast<std::size_t>(i)] = input_point(static_cast<std::uint64_t>(i));
  }
  const auto reference = kernels::six_step_fft(input, s.n1, s.n2);
  double err = 0.0;
  const std::int64_t slice = n / ranks;
  for (int r = 0; r < ranks; ++r) {
    const auto& out = outputs[static_cast<std::size_t>(r)];
    if (static_cast<std::int64_t>(out.size()) != slice) return 1e300;
    for (std::int64_t i = 0; i < slice; ++i) {
      err = std::max(err, std::abs(out[static_cast<std::size_t>(i)] -
                                   reference[static_cast<std::size_t>(r * slice + i)]));
    }
  }
  return err;
}

}  // namespace dvx::apps::fft_detail
