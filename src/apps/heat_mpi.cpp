// Heat equation over MPI/InfiniBand: six nonblocking halo exchanges plus an
// allreduce residual check per step — the conventional implementation.

#include <bit>

#include "apps/heat.hpp"
#include "apps/heat_common.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
namespace kernels = dvx::kernels;
using heat_detail::Block;
using kernels::HaloGrid3;

namespace {

std::vector<std::uint64_t> encode(const std::vector<double>& v) {
  std::vector<std::uint64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::bit_cast<std::uint64_t>(v[i]);
  return out;
}

std::vector<double> decode(const std::vector<std::uint64_t>& v) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::bit_cast<double>(v[i]);
  return out;
}

}  // namespace

HeatResult run_heat_mpi(runtime::Cluster& cluster, const HeatParams& params) {
  const int p = cluster.nodes();
  std::vector<double> rank_sums(static_cast<std::size_t>(p), 0.0);
  std::vector<double> rank_errs(static_cast<std::size_t>(p), 0.0);
  double final_residual = 0.0;
  const auto reference =
      params.verify ? heat_detail::serial_reference(params) : std::vector<double>{};

  const auto run = cluster.run_mpi(
      [&](mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
        const Block b = heat_detail::block_for(comm.rank(), p, params);
        HaloGrid3 u(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                    static_cast<int>(b.n[2]));
        HaloGrid3 next(static_cast<int>(b.n[0]), static_cast<int>(b.n[1]),
                       static_cast<int>(b.n[2]));
        heat_detail::fill_block(u, b, params);

        co_await comm.barrier();
        node.roi_begin();
        double residual = 0.0;
        for (int step = 0; step < params.steps; ++step) {
          // Dimension-ordered halo exchange: the classic reference pattern
          // (exchange x, then y, then z with paired Sendrecv). It also keeps
          // edge/corner halos consistent for wider stencils, which is why so
          // many production heat codes ship exactly this structure — and why
          // the paper can describe the workload as "a large number of small
          // messages sent over the network".
          std::int64_t packed_cells = 0;
          for (int dim = 0; dim < 3; ++dim) {
            for (int f = 2 * dim; f < 2 * dim + 2; ++f) {
              const int nb = b.neighbor[static_cast<std::size_t>(f)];
              if (nb < 0) {
                u.reflect_boundary(f);
                continue;
              }
              auto face = u.pack_face(f);
              packed_cells += static_cast<std::int64_t>(face.size());
              auto msg = co_await comm.sendrecv(nb, /*send_tag=*/f, encode(face), nb,
                                                /*recv_tag=*/f ^ 1);
              u.unpack_halo(f, decode(msg.data));
            }
          }
          co_await node.compute_stream(32.0 * static_cast<double>(packed_cells));

          const double local_res = kernels::heat_step(u, next, params.alpha);
          std::swap(u, next);
          co_await node.compute_flops(kernels::kHeatFlopsPerCell *
                                      static_cast<double>(u.interior_cells()));
          co_await node.compute_stream(16.0 * static_cast<double>(u.interior_cells()));
          residual = co_await comm.allreduce_max_double(local_res);
        }
        co_await comm.barrier();
        node.roi_end();

        rank_sums[static_cast<std::size_t>(comm.rank())] = heat_detail::block_sum(u, b);
        if (comm.rank() == 0) final_residual = residual;
        if (params.verify) {
          rank_errs[static_cast<std::size_t>(comm.rank())] =
              heat_detail::block_vs_reference(u, b, params, reference);
        }
      });

  HeatResult result;
  result.seconds = run.roi_seconds();
  for (double s : rank_sums) result.total_heat += s;
  for (double e : rank_errs) result.max_serial_diff = std::max(result.max_serial_diff, e);
  result.final_residual = final_residual;
  result.cell_updates = static_cast<std::int64_t>(params.global_nx) * params.global_ny *
                        params.global_nz * params.steps;
  return result;
}

}  // namespace dvx::apps
