// SNAP "best-effort" port to the Data Vortex (paper §VII): MPI face
// exchanges become DV-memory puts with group counters, y/z faces of a chunk
// aggregated into a single DMA batch ("an aggregation scheme ... to
// minimize the number of PCIe transfers per message").
//
// Flow control is barrier-free so consecutive octant wavefronts overlap the
// way the MPI pipeline does. Chunks are numbered by a GLOBAL sequence
// s = ((outer*8 + octant) * chunks + c); four region/counter slots are
// reused round-robin (K = 4):
//   * data[s%K] counts the combined y+z face words of sequence s;
//   * after consuming sequence s a rank re-arms data[s%K] for s+K and only
//     THEN sends per-direction credit packets to the upstream ranks of
//     sequence s+K;
//   * a sender of sequence s (s >= K) first waits for that credit.
// A data word for s+K therefore cannot reach a counter that is still armed
// for s: the sender is gated by a credit that is emitted strictly after the
// re-arm. One barrier arms the initial K slots; no other barrier exists.

#include <bit>

#include "apps/snap.hpp"
#include "apps/snap_core.hpp"
#include "dvapi/collectives.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
using snap_detail::SnapBlock;
using snap_detail::SnapCore;

namespace {

constexpr int kSlots = 4;  // round-robin depth of region/counter slots
constexpr int kData(int k) { return dvapi::kFirstFreeCounter + k; }  // 6..9
// Credit counters are additionally indexed by the sweep-direction sign: the
// +y and -y downstream neighbors are different nodes whose credits are not
// mutually ordered, so sharing one counter could lose a decrement against a
// not-yet-re-armed counter. Within one (direction, sign, slot) class all
// credits come from a single node and are causally serialized.
constexpr int kCreditY(int k, int sy) {
  return dvapi::kFirstFreeCounter + kSlots + 2 * k + (sy > 0 ? 0 : 1);  // 10..17
}
constexpr int kCreditZ(int k, int sz) {
  return dvapi::kFirstFreeCounter + 3 * kSlots + 2 * k + (sz > 0 ? 0 : 1);  // 18..25
}
constexpr std::uint32_t kRegionBase = dvapi::kFirstFreeDvWord;

}  // namespace

SnapResult run_snap_dv(runtime::Cluster& cluster, const SnapParams& params) {
  const int p = cluster.nodes();
  std::vector<double> flux_sums(static_cast<std::size_t>(p), 0.0);
  std::vector<double> flux_mins(static_cast<std::size_t>(p), 0.0);
  std::vector<std::int64_t> updates(static_cast<std::size_t>(p), 0);
  double residual = 0.0;
  int iterations = 0;

  const auto run = cluster.run_dv(
      [&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
        SnapCore core(params, ctx.rank(), p);
        const auto& blk = core.block();
        const int chunks = core.chunks();
        const int total_seq = params.max_outer * 8 * chunks;

        auto region_words_for = [&](const SnapBlock& b) {
          return static_cast<std::uint32_t>(
              static_cast<std::int64_t>(params.ichunk) * (b.nz_l + b.ny_l) *
              params.nang * params.ng);
        };
        auto slot_base_for = [&](const SnapBlock& b, int k) {
          return kRegionBase + static_cast<std::uint32_t>(k) * region_words_for(b);
        };
        // Decompose a global sequence number.
        auto seq_octant = [&](int s) { return (s / chunks) % 8; };
        auto seq_chunk = [&](int s) { return s % chunks; };
        // Face lengths of sequence s (depend on the octant's x direction).
        auto face_lens = [&](int s) {
          const auto sgn = snap_detail::octant_signs(seq_octant(s));
          const auto [x0, x1] = core.chunk_range(seq_chunk(s), sgn[0]);
          const std::int64_t cxl = x1 - x0;
          return std::pair<std::int64_t, std::int64_t>{
              cxl * blk.nz_l * params.nang * params.ng,
              cxl * blk.ny_l * params.nang * params.ng};
        };
        auto up_y_of = [&](int s) {
          return blk.y_upstream(snap_detail::octant_signs(seq_octant(s))[1]);
        };
        auto up_z_of = [&](int s) {
          return blk.z_upstream(snap_detail::octant_signs(seq_octant(s))[2]);
        };
        auto expected = [&](int s) -> std::uint64_t {
          if (s >= total_seq) return 0;
          const auto [ylen, zlen] = face_lens(s);
          return (up_y_of(s) >= 0 ? static_cast<std::uint64_t>(ylen) : 0) +
                 (up_z_of(s) >= 0 ? static_cast<std::uint64_t>(zlen) : 0);
        };

        // One-time arming of the K initial slots.
        for (int k = 0; k < kSlots; ++k) {
          co_await ctx.counter_set_local(kData(k), expected(k));
          for (int sign : {+1, -1}) {
            co_await ctx.counter_set_local(kCreditY(k, sign), 1);
            co_await ctx.counter_set_local(kCreditZ(k, sign), 1);
          }
        }
        co_await ctx.barrier();
        node.roi_begin();

        double res = 0.0;
        for (int outer = 0; outer < params.max_outer; ++outer) {
          core.begin_outer();
          for (int octant = 0; octant < 8; ++octant) {
            const auto sgn = snap_detail::octant_signs(octant);
            core.begin_octant(octant);
            const int down_y = blk.y_downstream(sgn[1]);
            const int down_z = blk.z_downstream(sgn[2]);

            for (int c = 0; c < chunks; ++c) {
              const int s = (outer * 8 + octant) * chunks + c;
              const int k = s % kSlots;
              const auto [ylen, zlen] = face_lens(s);
              const int up_y = up_y_of(s), up_z = up_z_of(s);

              // --- receive faces for sequence s ---------------------------
              std::vector<double> in_y, in_z;
              if (expected(s) > 0) {
                co_await ctx.counter_wait_zero(kData(k));
                std::vector<std::uint64_t> region(
                    static_cast<std::size_t>(expected(s)));
                co_await ctx.dma_read_dv(slot_base_for(blk, k), region);
                std::size_t off = 0;
                if (up_y >= 0) {
                  in_y.resize(static_cast<std::size_t>(ylen));
                  for (auto& v : in_y) v = std::bit_cast<double>(region[off++]);
                }
                if (up_z >= 0) {
                  in_z.resize(static_cast<std::size_t>(zlen));
                  for (auto& v : in_z) v = std::bit_cast<double>(region[off++]);
                }
              }
              // Slot maintenance happens every sequence, even when nothing
              // was expected: re-arm FIRST, then grant credits for s+K.
              co_await ctx.counter_set_local(kData(k), expected(s + kSlots));
              if (s + kSlots < total_seq) {
                const auto next_sgn =
                    snap_detail::octant_signs(seq_octant(s + kSlots));
                std::vector<vic::Packet> credits;
                if (const int uy = up_y_of(s + kSlots); uy >= 0) {
                  credits.push_back(vic::Packet{
                      vic::Header{static_cast<std::uint16_t>(uy),
                                  vic::DestKind::kDvMemory,
                                  static_cast<std::uint8_t>(kCreditY(k, next_sgn[1])),
                                  dvapi::kScratchSlot},
                      0});
                }
                if (const int uz = up_z_of(s + kSlots); uz >= 0) {
                  credits.push_back(vic::Packet{
                      vic::Header{static_cast<std::uint16_t>(uz),
                                  vic::DestKind::kDvMemory,
                                  static_cast<std::uint8_t>(kCreditZ(k, next_sgn[2])),
                                  dvapi::kScratchSlot},
                      0});
                }
                co_await ctx.send_direct_batch(credits);
              }

              // --- sweep ----------------------------------------------------
              std::vector<double> out_y, out_z;
              core.sweep_chunk(octant, c, in_y, in_z, out_y, out_z);
              co_await node.compute_flops(core.chunk_flops(c));

              // --- send faces for sequence s --------------------------------
              if (down_y >= 0 || down_z >= 0) {
                if (s >= kSlots) {
                  if (down_y >= 0) {
                    co_await ctx.counter_wait_zero(kCreditY(k, sgn[1]));
                    co_await ctx.counter_set_local(kCreditY(k, sgn[1]), 1);
                  }
                  if (down_z >= 0) {
                    co_await ctx.counter_wait_zero(kCreditZ(k, sgn[2]));
                    co_await ctx.counter_set_local(kCreditZ(k, sgn[2]), 1);
                  }
                }
                std::vector<vic::Packet> batch;
                batch.reserve(out_y.size() + out_z.size());
                if (down_y >= 0) {
                  const auto nb = snap_detail::block_for(down_y, p, params);
                  for (std::size_t i = 0; i < out_y.size(); ++i) {
                    batch.push_back(vic::Packet{
                        vic::Header{static_cast<std::uint16_t>(down_y),
                                    vic::DestKind::kDvMemory,
                                    static_cast<std::uint8_t>(kData(k)),
                                    slot_base_for(nb, k) +
                                        static_cast<std::uint32_t>(i)},
                        std::bit_cast<std::uint64_t>(out_y[i])});
                  }
                }
                if (down_z >= 0) {
                  // z faces land after the (possibly absent) y block in the
                  // downstream's slot; the y-block length uses the NEIGHBOR's
                  // dimensions.
                  const auto nb = snap_detail::block_for(down_z, p, params);
                  const bool nb_has_y = nb.y_upstream(sgn[1]) >= 0;
                  const auto [x0c, x1c] = core.chunk_range(c, sgn[0]);
                  const std::uint32_t zoff =
                      nb_has_y ? static_cast<std::uint32_t>(
                                     (x1c - x0c) * nb.nz_l * params.nang * params.ng)
                               : 0;
                  for (std::size_t i = 0; i < out_z.size(); ++i) {
                    batch.push_back(vic::Packet{
                        vic::Header{static_cast<std::uint16_t>(down_z),
                                    vic::DestKind::kDvMemory,
                                    static_cast<std::uint8_t>(kData(k)),
                                    slot_base_for(nb, k) + zoff +
                                        static_cast<std::uint32_t>(i)},
                        std::bit_cast<std::uint64_t>(out_z[i])});
                  }
                }
                co_await ctx.send_dma_batch(batch);
              }
            }
          }
          const auto bits = co_await dvapi::allreduce_max(
              ctx, std::bit_cast<std::uint64_t>(core.finish_outer()));
          res = std::bit_cast<double>(bits);
        }
        co_await ctx.barrier();
        node.roi_end();

        flux_sums[static_cast<std::size_t>(ctx.rank())] = core.flux_sum();
        flux_mins[static_cast<std::size_t>(ctx.rank())] = core.flux_min();
        updates[static_cast<std::size_t>(ctx.rank())] = core.cell_angle_updates();
        if (ctx.rank() == 0) {
          residual = res;
          iterations = params.max_outer;
        }
      });

  SnapResult result;
  result.seconds = run.roi_seconds();
  result.outer_iterations = iterations;
  result.residual = residual;
  for (double s : flux_sums) result.flux_sum += s;
  for (double m : flux_mins) result.min_flux = std::min(result.min_flux, m);
  for (auto u : updates) result.cell_angle_updates += u;
  return result;
}

}  // namespace dvx::apps
