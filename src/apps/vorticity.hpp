#pragma once
// Ideal incompressible flow (paper §VII, Fig. 9 "Vorticity").
//
// 2-D Euler equations in vorticity-streamfunction form, solved pseudo-
// spectrally on a periodic N x N grid with a Kelvin-Helmholtz double shear
// layer initial condition. Each right-hand-side evaluation performs five
// 2-D FFTs (four inverse: u, v, dω/dx, dω/dy; one forward: the nonlinear
// term), exactly the communication profile the paper describes; every 2-D
// FFT costs one distributed matrix transpose.
//
//  * MPI: pack/alltoall/unpack transposes.
//  * Data Vortex (aggressively restructured, as the paper did): transposes
//    scatter elements straight into the peers' VIC DV memory, with cached
//    headers and counter-based completion.

#include <cstdint>

#include "runtime/cluster.hpp"

namespace dvx::apps {

struct VorticityParams {
  int n = 128;       ///< grid points per side (power of two)
  int steps = 8;     ///< RK2 time steps
  double dt = 2e-3;  ///< time step (unit box, |u| ~ 1)
  double shear_delta = 0.05;      ///< shear-layer thickness
  double perturbation = 5e-3;     ///< KH seed amplitude
};

struct VorticityResult {
  double seconds = 0.0;
  int steps = 0;
  double energy0 = 0.0, energy1 = 0.0;        ///< kinetic energy before/after
  double enstrophy0 = 0.0, enstrophy1 = 0.0;  ///< enstrophy before/after
  double omega_checksum = 0.0;                ///< sum |omega_hat| (cross-impl check)
  double energy_drift() const {
    return energy0 != 0.0 ? std::abs(energy1 - energy0) / std::abs(energy0) : 0.0;
  }
  double enstrophy_drift() const {
    return enstrophy0 != 0.0 ? std::abs(enstrophy1 - enstrophy0) / std::abs(enstrophy0)
                             : 0.0;
  }
  double steps_per_second() const { return steps / seconds; }
};

VorticityResult run_vorticity_dv(runtime::Cluster& cluster, const VorticityParams& params);
VorticityResult run_vorticity_mpi(runtime::Cluster& cluster,
                                  const VorticityParams& params);

}  // namespace dvx::apps
