#pragma once
// Distributed 1-D FFT (paper §VI, Fig. 7).
//
// The HPCC-style benchmark: one discrete Fourier transform over N = 2^log
// randomly initialized points spread across the cluster, six-step
// formulation (three distributed transposes + two rounds of node-local
// FFTs + a twiddle scaling). The transposes are the entire communication
// cost, which is what makes this kernel a showcase for folding data
// redistribution into the network operation on the Data Vortex.
//
// The paper runs 2^33 points; this reproduction defaults to 2^20 (the shape
// of the comparison, not the absolute GFLOPS, is the target).

#include <cstdint>

#include "runtime/cluster.hpp"

namespace dvx::apps {

struct FftParams {
  int log_size = 20;    ///< N = 2^log_size points
  bool verify = false;  ///< compare against the serial six-step FFT
};

struct FftResult {
  double seconds = 0.0;
  double flops = 0.0;
  double max_error = 0.0;  ///< only filled when verify is set
  double gflops() const { return flops / seconds / 1e9; }
};

FftResult run_fft_dv(runtime::Cluster& cluster, const FftParams& params);
FftResult run_fft_mpi(runtime::Cluster& cluster, const FftParams& params);

}  // namespace dvx::apps
