// SNAP over MPI/InfiniBand: the reference KBA wavefront pipeline — one
// receive and one send per (octant, chunk) per sweep direction.

#include <bit>

#include "apps/snap.hpp"
#include "apps/snap_core.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
using snap_detail::SnapCore;

namespace {

std::vector<std::uint64_t> encode(const std::vector<double>& v) {
  std::vector<std::uint64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::bit_cast<std::uint64_t>(v[i]);
  return out;
}

std::vector<double> decode(const std::vector<std::uint64_t>& v) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::bit_cast<double>(v[i]);
  return out;
}

int face_tag(int octant, int chunk, int dir) { return ((octant * 256 + chunk) << 1) | dir; }

}  // namespace

SnapResult run_snap_mpi(runtime::Cluster& cluster, const SnapParams& params) {
  const int p = cluster.nodes();
  std::vector<double> flux_sums(static_cast<std::size_t>(p), 0.0);
  std::vector<double> flux_mins(static_cast<std::size_t>(p), 0.0);
  std::vector<std::int64_t> updates(static_cast<std::size_t>(p), 0);
  double residual = 0.0;
  int iterations = 0;

  const auto run = cluster.run_mpi(
      [&](mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
        SnapCore core(params, comm.rank(), p);
        const auto& blk = core.block();
        co_await comm.barrier();
        node.roi_begin();

        double res = 0.0;
        for (int outer = 0; outer < params.max_outer; ++outer) {
          core.begin_outer();
          for (int octant = 0; octant < 8; ++octant) {
            const auto [sx, sy, sz] = snap_detail::octant_signs(octant);
            core.begin_octant(octant);
            for (int c = 0; c < core.chunks(); ++c) {
              std::vector<double> in_y, in_z;
              if (blk.y_upstream(sy) >= 0) {
                auto msg = co_await comm.recv(blk.y_upstream(sy), face_tag(octant, c, 0));
                in_y = decode(msg.data);
              }
              if (blk.z_upstream(sz) >= 0) {
                auto msg = co_await comm.recv(blk.z_upstream(sz), face_tag(octant, c, 1));
                in_z = decode(msg.data);
              }
              std::vector<double> out_y, out_z;
              core.sweep_chunk(octant, c, in_y, in_z, out_y, out_z);
              co_await node.compute_flops(core.chunk_flops(c));
              if (blk.y_downstream(sy) >= 0) {
                co_await comm.send(blk.y_downstream(sy), face_tag(octant, c, 0),
                                   encode(out_y));
              }
              if (blk.z_downstream(sz) >= 0) {
                co_await comm.send(blk.z_downstream(sz), face_tag(octant, c, 1),
                                   encode(out_z));
              }
            }
          }
          res = co_await comm.allreduce_max_double(core.finish_outer());
        }
        co_await comm.barrier();
        node.roi_end();

        flux_sums[static_cast<std::size_t>(comm.rank())] = core.flux_sum();
        flux_mins[static_cast<std::size_t>(comm.rank())] = core.flux_min();
        updates[static_cast<std::size_t>(comm.rank())] = core.cell_angle_updates();
        if (comm.rank() == 0) {
          residual = res;
          iterations = params.max_outer;
        }
      });

  SnapResult result;
  result.seconds = run.roi_seconds();
  result.outer_iterations = iterations;
  result.residual = residual;
  for (double s : flux_sums) result.flux_sum += s;
  for (double m : flux_mins) result.min_flux = std::min(result.min_flux, m);
  for (auto u : updates) result.cell_angle_updates += u;
  return result;
}

}  // namespace dvx::apps
