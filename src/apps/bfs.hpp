#pragma once
// Graph500-style breadth-first search (paper §VI, Fig. 8).
//
// A Kronecker graph (power-law degrees) is distributed over the cluster by
// contiguous vertex blocks; `searches` BFS runs from random roots are timed
// and reported as harmonic-mean TEPS, the Graph500 headline metric.
//
//  * MPI: level-synchronous BFS with per-destination candidate buckets
//    exchanged via alltoall — destination aggregation, the only viable
//    strategy over InfiniBand, but the buckets are small and skewed.
//  * Data Vortex: candidates stream to owners' surprise FIFOs as single
//    8-byte packets in mixed-destination DMA batches; receivers drain their
//    FIFO while still sending ("source aggregation is sufficient to hide
//    most PCIe latency").

#include <cstdint>
#include <vector>

#include "runtime/cluster.hpp"

namespace dvx::apps {

struct BfsParams {
  int scale = 15;        ///< 2^scale vertices
  int edge_factor = 16;  ///< Graph500 default
  int searches = 8;      ///< paper runs 64; scaled down by default
  std::uint64_t seed = 2;
  bool validate = false;  ///< Graph500-validate the last search's tree
};

struct BfsResult {
  std::vector<double> teps;  ///< per-search traversed edges per second
  double harmonic_mean_teps = 0.0;
  std::uint64_t graph_edges = 0;
  bool validated = false;    ///< true when validation ran and passed
  std::string validation_error;  ///< empty unless validation failed
};

BfsResult run_bfs_dv(runtime::Cluster& cluster, const BfsParams& params);
BfsResult run_bfs_mpi(runtime::Cluster& cluster, const BfsParams& params);

}  // namespace dvx::apps
