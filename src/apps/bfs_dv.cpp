// Graph500 BFS on the Data Vortex: candidates stream to the owner's
// surprise FIFO as single 8-byte packets in mixed-destination DMA batches;
// the receiver drains its FIFO concurrently with its own expansion. Only
// "source aggregation" is needed — no per-destination buckets.

#include "apps/bfs.hpp"
#include "apps/bfs_common.hpp"
#include "check/check.hpp"
#include "dvapi/collectives.hpp"
#include "sim/stats.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
namespace kernels = dvx::kernels;
using bfs_detail::LocalGraph;

BfsResult run_bfs_dv(runtime::Cluster& cluster, const BfsParams& params) {
  const int p = cluster.nodes();
  const kernels::KroneckerParams kp{.scale = params.scale,
                                    .edge_factor = params.edge_factor,
                                    .seed = params.seed};
  kernels::KroneckerGenerator gen(kp);
  const auto graphs = bfs_detail::build_distribution(kp, p);
  const auto roots = bfs_detail::pick_roots(gen, params.searches);
  const std::uint64_t vpr = graphs.front().verts_per_rank;

  std::vector<sim::Time> search_marks;
  std::vector<std::uint64_t> reached_sums(roots.size(), 0);
  std::vector<std::vector<std::uint64_t>> last_parents(static_cast<std::size_t>(p));

  cluster.run_dv([&](dvapi::DvContext& ctx, runtime::NodeCtx& node) -> sim::Coro<void> {
    const auto& g = graphs[static_cast<std::size_t>(ctx.rank())];
    co_await ctx.barrier();
    node.roi_begin();
    for (std::size_t search = 0; search < roots.size(); ++search) {
      const std::uint64_t root = roots[search];
      if (ctx.rank() == 0) search_marks.push_back(node.now());

      std::vector<std::uint64_t> parent(g.local_verts(), kernels::kNoParent);
      std::vector<std::uint64_t> frontier;
      if (root / vpr == static_cast<std::uint64_t>(ctx.rank())) {
        parent[root % vpr] = root;
        frontier.push_back(root % vpr);
      }

      for (;;) {
        std::vector<std::uint64_t> next;
        auto absorb = [&](std::uint64_t packed) {
          const std::uint64_t w = bfs_detail::candidate_vertex(packed) % vpr;
          if (parent[w] == kernels::kNoParent) {
            parent[w] = bfs_detail::candidate_parent(packed);
            next.push_back(w);
          }
        };

        // Expand: one packet per remote candidate, any destination order.
        std::vector<std::uint64_t> sent_to(static_cast<std::size_t>(p), 0);
        std::vector<vic::Packet> batch;
        std::uint64_t edges_scanned = 0;
        std::uint64_t local_candidates = 0;
        std::uint64_t received = 0;
        for (std::uint64_t lv : frontier) {
          const std::uint64_t gu = g.first_vertex + lv;
          for (std::uint64_t w : g.neighbors(lv)) {
            ++edges_scanned;
            const int owner = static_cast<int>(w / vpr);
            const std::uint64_t packed = bfs_detail::pack_candidate(w, gu);
            if (owner == ctx.rank()) {
              absorb(packed);
              ++local_candidates;
              continue;
            }
            ++sent_to[static_cast<std::size_t>(owner)];
            batch.push_back(
                vic::Packet{vic::Header{static_cast<std::uint16_t>(owner),
                                        vic::DestKind::kFifo, vic::kNoCounter, 0},
                            packed});
          }
          // Interleave: drain whatever has already landed.
          if (batch.size() >= 4096) {
            co_await ctx.send_dma_batch(batch);
            batch.clear();
            for (const auto& pkt : co_await ctx.fifo_poll()) {
              absorb(pkt.payload);
              ++received;
            }
          }
        }
        co_await node.compute_stream(8.0 * static_cast<double>(edges_scanned));
        co_await node.compute_random(static_cast<double>(local_candidates));
        co_await ctx.send_dma_batch(batch);

        // Termination: learn per-peer counts, drain the remainder.
        auto counts = co_await dvapi::alltoall_words(ctx, sent_to);
        std::uint64_t expected = 0;
        for (int peer = 0; peer < p; ++peer) {
          if (peer != ctx.rank()) expected += counts[static_cast<std::size_t>(peer)];
        }
        DVX_CHECK(received <= expected)
            << "candidates received before the counts were exchanged exceed "
               "the announced total. ";
        while (received < expected) {
          const auto pkts = co_await ctx.fifo_wait();
          for (const auto& pkt : pkts) absorb(pkt.payload);
          received += pkts.size();
        }
        // Candidate conservation per BFS level: every remote candidate aimed
        // at this rank arrived exactly once, none were fabricated.
        DVX_CHECK_EQ(received, expected) << "BFS candidate conservation violated. ";
        co_await node.compute_random(static_cast<double>(received));

        const auto total_next = co_await dvapi::allreduce_sum(
            ctx, static_cast<std::uint64_t>(next.size()));
        frontier = std::move(next);
        if (total_next == 0) break;
      }

      const auto reached = co_await dvapi::allreduce_sum(
          ctx, bfs_detail::reached_degree_sum(g, parent));
      if (ctx.rank() == 0) {
        search_marks.push_back(node.now());
        reached_sums[search] = reached;
      }
      if (params.validate && search + 1 == roots.size()) {
        last_parents[static_cast<std::size_t>(ctx.rank())] = std::move(parent);
      }
    }
    node.roi_end();
  });

  BfsResult result;
  result.graph_edges = gen.edges();
  for (std::size_t search = 0; search < roots.size(); ++search) {
    const auto dt = search_marks[2 * search + 1] - search_marks[2 * search];
    const double traversed = static_cast<double>(reached_sums[search]) / 2.0;
    result.teps.push_back(traversed / sim::to_seconds(dt));
  }
  result.harmonic_mean_teps = sim::harmonic_mean(result.teps);
  if (params.validate) {
    result.validation_error =
        bfs_detail::validate_distributed(kp, roots.back(), last_parents);
    result.validated = result.validation_error.empty();
  }
  return result;
}

}  // namespace dvx::apps
