// Graph500 BFS over MPI/InfiniBand: level-synchronous expansion with
// per-destination candidate buckets exchanged through alltoall — the
// destination-aggregation strategy the paper's reference code uses.

#include "apps/bfs.hpp"
#include "apps/bfs_common.hpp"
#include "sim/stats.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
namespace kernels = dvx::kernels;
using bfs_detail::LocalGraph;

BfsResult run_bfs_mpi(runtime::Cluster& cluster, const BfsParams& params) {
  const int p = cluster.nodes();
  const kernels::KroneckerParams kp{.scale = params.scale,
                                    .edge_factor = params.edge_factor,
                                    .seed = params.seed};
  kernels::KroneckerGenerator gen(kp);
  const auto graphs = bfs_detail::build_distribution(kp, p);
  const auto roots = bfs_detail::pick_roots(gen, params.searches);
  const std::uint64_t vpr = graphs.front().verts_per_rank;

  std::vector<sim::Time> search_marks;  // rank-0 timestamps around searches
  std::vector<std::uint64_t> reached_sums(roots.size(), 0);
  std::vector<std::vector<std::uint64_t>> last_parents(static_cast<std::size_t>(p));

  cluster.run_mpi([&](mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
    const auto& g = graphs[static_cast<std::size_t>(comm.rank())];
    co_await comm.barrier();
    node.roi_begin();
    for (std::size_t search = 0; search < roots.size(); ++search) {
      const std::uint64_t root = roots[search];
      if (comm.rank() == 0) search_marks.push_back(node.now());

      std::vector<std::uint64_t> parent(g.local_verts(), kernels::kNoParent);
      std::vector<std::uint64_t> frontier;  // local vertex ids
      if (root / vpr == static_cast<std::uint64_t>(comm.rank())) {
        parent[root % vpr] = root;
        frontier.push_back(root % vpr);
      }

      for (;;) {
        // Expand: bucket candidates by owner (destination aggregation).
        std::vector<std::vector<std::uint64_t>> buckets(static_cast<std::size_t>(p));
        std::uint64_t edges_scanned = 0;
        for (std::uint64_t lv : frontier) {
          const std::uint64_t gu = g.first_vertex + lv;
          for (std::uint64_t w : g.neighbors(lv)) {
            buckets[static_cast<std::size_t>(w / vpr)].push_back(
                bfs_detail::pack_candidate(w, gu));
            ++edges_scanned;
          }
        }
        co_await node.compute_stream(16.0 * static_cast<double>(edges_scanned));

        auto incoming = co_await comm.alltoall(std::move(buckets));

        // Contract: claim unvisited vertices.
        std::vector<std::uint64_t> next;
        std::uint64_t candidates = 0;
        for (const auto& blk : incoming) {
          for (std::uint64_t packed : blk) {
            ++candidates;
            const std::uint64_t w = bfs_detail::candidate_vertex(packed) % vpr;
            if (parent[w] == kernels::kNoParent) {
              parent[w] = bfs_detail::candidate_parent(packed);
              next.push_back(w);
            }
          }
        }
        co_await node.compute_random(static_cast<double>(candidates));

        const auto total_next =
            co_await comm.allreduce_sum(static_cast<std::uint64_t>(next.size()));
        frontier = std::move(next);
        if (total_next == 0) break;
      }

      const auto reached = co_await comm.allreduce_sum(
          bfs_detail::reached_degree_sum(g, parent));
      if (comm.rank() == 0) {
        search_marks.push_back(node.now());
        reached_sums[search] = reached;
      }
      if (params.validate && search + 1 == roots.size()) {
        last_parents[static_cast<std::size_t>(comm.rank())] = std::move(parent);
      }
    }
    node.roi_end();
  });

  BfsResult result;
  result.graph_edges = gen.edges();
  for (std::size_t search = 0; search < roots.size(); ++search) {
    const auto dt = search_marks[2 * search + 1] - search_marks[2 * search];
    const double traversed = static_cast<double>(reached_sums[search]) / 2.0;
    result.teps.push_back(traversed / sim::to_seconds(dt));
  }
  result.harmonic_mean_teps = sim::harmonic_mean(result.teps);
  if (params.validate) {
    result.validation_error =
        bfs_detail::validate_distributed(kp, roots.back(), last_parents);
    result.validated = result.validation_error.empty();
  }
  return result;
}

}  // namespace dvx::apps
