// FFT-1D over MPI/InfiniBand: six-step transform with pack/alltoall/unpack
// transposes — the HPCC-style reference implementation.

#include "apps/fft1d.hpp"
#include "apps/fft1d_common.hpp"
#include "apps/transpose.hpp"
#include "kernels/fft.hpp"

namespace dvx::apps {

namespace sim = dvx::sim;
using fft_detail::Shape;
using kernels::Complex;

FftResult run_fft_mpi(runtime::Cluster& cluster, const FftParams& params) {
  const int p = cluster.nodes();
  const Shape s = fft_detail::shape_for(params.log_size, p);
  const std::int64_t n = s.n1 * s.n2;

  std::vector<std::vector<Complex>> outputs(static_cast<std::size_t>(p));

  FftResult result;
  const auto run = cluster.run_mpi(
      [&](mpi::Comm comm, runtime::NodeCtx& node) -> sim::Coro<void> {
        auto local = fft_detail::make_local_input(comm.rank(), s);
        co_await comm.barrier();
        node.roi_begin();

        auto work = co_await transpose_mpi(comm, node, local, s.n1, s.n2, /*tag=*/10);
        co_await fft_detail::fft_rows(node, work, s.n1);
        const std::int64_t rows2_local = s.n2 / p;
        co_await fft_detail::twiddle_rows(node, work,
                                          static_cast<std::int64_t>(comm.rank()) * rows2_local,
                                          s.n1, n);
        work = co_await transpose_mpi(comm, node, work, s.n2, s.n1, /*tag=*/11);
        co_await fft_detail::fft_rows(node, work, s.n2);
        work = co_await transpose_mpi(comm, node, work, s.n1, s.n2, /*tag=*/12);

        co_await comm.barrier();
        node.roi_end();
        outputs[static_cast<std::size_t>(comm.rank())] = std::move(work);
      });

  result.seconds = run.roi_seconds();
  result.flops = kernels::fft_flops(n);
  if (params.verify) {
    result.max_error = fft_detail::verify_against_serial(s, p, outputs);
  }
  return result;
}

}  // namespace dvx::apps
